/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. Compression method (live): ADMM block-circulant vs ESE-style
 *     magnitude pruning at matched *effective* storage on the
 *     synthetic ASR task — the Sec. IV argument (structure wins once
 *     indices are paid for).
 *  2. FFT/IFFT decoupling off -> on (computation model).
 *  3. GRU stage-sharing boost off -> on (hardware model).
 *  4. Compute-unit count sweep (latency/throughput trade-off).
 *  5. Quantization bit width sweep at the accelerator level.
 */

#include <iostream>

#include "admm/admm_trainer.hh"
#include "admm/transfer.hh"
#include "base/logging.hh"
#include "bench_util.hh"
#include "circulant/mult_model.hh"
#include "hw/accelerator_model.hh"
#include "nn/gru.hh"
#include "prune/magnitude_pruner.hh"
#include "speech/dataset.hh"
#include "speech/per.hh"

using namespace ernn;
using namespace ernn::bench;

namespace
{

void
compressionAblation()
{
    banner("Ablation 1: block-circulant (ADMM) vs magnitude pruning "
           "at matched effective storage (live)");

    // A deliberately hard task (many phones, heavy noise, fast
    // transitions) so compression differences are visible.
    speech::AsrDataConfig dcfg;
    dcfg.numPhones = 16;
    dcfg.featureDim = 12;
    dcfg.trainUtterances = fullMode() ? 72 : 32;
    dcfg.testUtterances = 24;
    dcfg.emissionNoise = 1.1;
    dcfg.minPhoneLen = 2;
    dcfg.maxPhoneLen = 4;
    const auto data = speech::makeSyntheticAsr(dcfg);

    nn::ModelSpec dense_spec;
    dense_spec.type = nn::ModelType::Gru;
    dense_spec.inputDim = 12;
    dense_spec.numClasses = 16;
    dense_spec.layerSizes = {32};

    auto pretrained = [&](std::uint64_t seed) {
        nn::StackedRnn m = nn::buildModel(dense_spec);
        Rng rng(seed);
        m.initXavier(rng);
        nn::TrainConfig tc;
        tc.epochs = 10;
        tc.lr = 1e-2;
        nn::Trainer(m, tc).train(data.train);
        return m;
    };

    TextTable table("4x effective compression, same training budget");
    table.setHeader({"method", "stored params (weights)",
                     "regular structure", "PER (%)"});

    {
        nn::StackedRnn dense = pretrained(100);
        std::size_t weights = 0;
        auto *gru = dynamic_cast<nn::GruLayer *>(&dense.layer(0));
        for (nn::LinearOp *op :
             {&gru->wzx(), &gru->wrx(), &gru->wcx(), &gru->wzc(),
              &gru->wrc(), &gru->wcc()})
            weights += op->paramCount();
        table.addRow({"dense baseline", std::to_string(weights),
                      "yes",
                      fmtReal(speech::evaluatePer(dense, data.test),
                              2)});
    }

    {
        // Block-circulant at block 4 = exactly 4x, no indices.
        nn::StackedRnn dense = pretrained(100);
        nn::ModelSpec circ = dense_spec;
        circ.blockSizes = {4};
        admm::AdmmConfig acfg;
        acfg.rho = 0.5;
        acfg.rhoGrowth = 1.5;
        acfg.iterations = 6;
        acfg.epochsPerIteration = 3;
        acfg.convergenceTol = 0.02;
        acfg.train.lr = 1e-2;
        acfg.train.batchSize = 2;
        admm::AdmmTrainer trainer(dense, acfg);
        admm::constrainFromSpec(trainer, dense, circ);
        trainer.run(data.train);
        trainer.hardProject();
        nn::StackedRnn compressed = nn::buildModel(circ);
        admm::transferWeights(dense, compressed);
        std::size_t weights = 0;
        auto *gru =
            dynamic_cast<nn::GruLayer *>(&compressed.layer(0));
        for (nn::LinearOp *op :
             {&gru->wzx(), &gru->wrx(), &gru->wcx(), &gru->wzc(),
              &gru->wrc(), &gru->wcc()})
            weights += op->paramCount();
        table.addRow({"block-circulant (ADMM), block 4",
                      std::to_string(weights), "yes",
                      fmtReal(speech::evaluatePer(compressed,
                                                  data.test), 2)});
    }

    {
        // Pruning to 87.5% sparsity: 8x raw = 4x effective once the
        // per-weight index is stored.
        nn::StackedRnn dense = pretrained(100);
        prune::PruneConfig pcfg;
        pcfg.sparsity = 0.875;
        pcfg.iterations = 6;
        pcfg.epochsPerIteration = 3;
        pcfg.train.lr = 1e-2;
        pcfg.train.batchSize = 2;
        prune::MagnitudePruner pruner(dense, pcfg);
        prune::targetAllDense(pruner, dense);
        pruner.run(data.train);
        table.addRow({"magnitude pruning, 87.5% sparse (+indices)",
                      std::to_string(pruner.effectiveParams()), "no",
                      fmtReal(speech::evaluatePer(dense, data.test),
                              2)});
    }
    table.print(std::cout);
    std::cout << "At equal effective storage the structured model "
                 "needs no indices and keeps the regular dataflow "
                 "the FPGA exploits (Sec. IV / Table III).\n";
}

void
decouplingAblation()
{
    banner("Ablation 2: FFT/IFFT decoupling (computation model)");
    TextTable table;
    table.setHeader({"layer", "block", "mults coupled",
                     "mults decoupled", "saving"});
    for (std::size_t layer : {512u, 1024u}) {
        for (std::size_t lb : {8u, 16u}) {
            const auto off = circulant::layerMultCount(
                layer, layer, lb,
                circulant::FftCostConvention::Optimized, false);
            const auto on = circulant::layerMultCount(
                layer, layer, lb,
                circulant::FftCostConvention::Optimized, true);
            table.addRow({std::to_string(layer), std::to_string(lb),
                          fmtGrouped(static_cast<long long>(
                              off.total())),
                          fmtGrouped(static_cast<long long>(
                              on.total())),
                          fmtTimes(static_cast<Real>(off.total()) /
                                       static_cast<Real>(on.total()),
                                   2)});
        }
    }
    table.print(std::cout);
}

void
hardwareAblations()
{
    banner("Ablations 3-5: hardware model design choices "
           "(E-RNN FFT8 workloads, KU060)");

    const nn::ModelSpec lstm = paperLstmLayer(8);
    const nn::ModelSpec gru = paperGruLayer(8);

    // 3. GRU stage-sharing boost.
    hw::HwCalibration no_boost = hw::defaultCalibration();
    no_boost.gruPipelineBoost = 1.0;
    const auto gru_on = hw::evaluateDesign(gru, hw::xcku060());
    const auto gru_off =
        hw::evaluateDesign(gru, hw::xcku060(), 12, no_boost);
    TextTable boost("GRU CU stage sharing (TDM of CGPipe stages "
                    "1-2)");
    boost.setHeader({"configuration", "latency (us)", "FPS"});
    boost.addRow({"dedicated stages (off)",
                  fmtReal(gru_off.latencyUs, 1),
                  fmtGrouped(static_cast<long long>(gru_off.fps))});
    boost.addRow({"TDM-shared stages (on)",
                  fmtReal(gru_on.latencyUs, 1),
                  fmtGrouped(static_cast<long long>(gru_on.fps))});
    boost.print(std::cout);

    // 4. Compute-unit count.
    TextTable cus("Compute units: streams in flight vs per-frame "
                  "latency");
    cus.setHeader({"CUs", "latency (us)", "FPS", "FPS x latency"});
    for (std::size_t n : {1u, 2u, 3u, 4u, 6u}) {
        hw::HwCalibration cal = hw::defaultCalibration();
        cal.computeUnits = n;
        const auto d = hw::evaluateDesign(lstm, hw::xcku060(), 12,
                                          cal);
        cus.addRow({std::to_string(n), fmtReal(d.latencyUs, 1),
                    fmtGrouped(static_cast<long long>(d.fps)),
                    fmtReal(d.fps * d.latencyUs / 1e6, 2)});
    }
    cus.print(std::cout);
    std::cout << "Throughput is CU-invariant (work-conserving PEs); "
                 "more CUs trade per-stream latency for streams in "
                 "flight. The paper's designs sit at 3.\n";

    // 5. Bit width at the accelerator level.
    TextTable bits("Weight bit width (PE datapath cost vs "
                   "throughput)");
    bits.setHeader({"bits", "PEs", "latency (us)", "FPS", "power (W)",
                    "FPS/W"});
    for (int b : {8, 12, 16}) {
        const auto d = hw::evaluateDesign(lstm, hw::xcku060(), b);
        bits.addRow({std::to_string(b), std::to_string(d.numPe),
                     fmtReal(d.latencyUs, 1),
                     fmtGrouped(static_cast<long long>(d.fps)),
                     fmtReal(d.powerWatts, 1),
                     fmtGrouped(static_cast<long long>(
                         d.fpsPerWatt))});
    }
    bits.print(std::cout);
    std::cout << "16 -> 12 bits buys <10% performance (the paper's "
                 "attribution for the C-LSTM gap), while accuracy "
                 "holds (Sec. VII-D).\n";
}

} // namespace

int
main()
{
    setLogQuiet(true);
    compressionAblation();
    decouplingAblation();
    hardwareAblations();
    return 0;
}
