/**
 * @file
 * Fig. 13 reproduction: the high-level synthesis framework end to
 * end — graph generation (with feedback edges removed), operation
 * scheduling under resource constraints, code generation, and a
 * functional check of the generated program via the interpreter.
 */

#include <iostream>

#include "base/logging.hh"
#include "base/random.hh"
#include "bench_util.hh"
#include "hls/codegen.hh"
#include "hls/interpreter.hh"
#include "hls/scheduler.hh"
#include "hls/weight_store.hh"
#include "runtime/session.hh"

using namespace ernn;
using namespace ernn::bench;

int
main()
{
    setLogQuiet(true);
    banner("Fig. 13: HLS framework — graph -> schedule -> code");

    // A deployable-scale GRU (small enough to interpret quickly).
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Gru;
    spec.inputDim = 16;
    spec.numClasses = 8;
    spec.layerSizes = {32};
    spec.blockSizes = {4};

    const hls::OpGraph graph = hls::buildGraph(spec);
    TextTable ops("Operation graph (" + spec.describe() + ")");
    ops.setHeader({"op type", "count"});
    for (auto type : {hls::OpType::MatVec, hls::OpType::PointwiseMul,
                      hls::OpType::PointwiseAdd, hls::OpType::AddBias,
                      hls::OpType::Sigmoid, hls::OpType::Tanh,
                      hls::OpType::StateRead, hls::OpType::StateWrite})
        ops.addRow({hls::opTypeName(type),
                    std::to_string(graph.count(type))});
    ops.print(std::cout);
    std::cout << "nodes: " << graph.size()
              << ", critical path complexity: "
              << fmtReal(graph.criticalPathComplexity(), 2) << "\n";

    const hls::Schedule schedule = hls::scheduleGraph(graph);
    std::cout << "\nschedule makespan: " << schedule.makespan
              << " cycles; matvec utilization "
              << fmtPercent(schedule.utilization(
                     hls::ResourceClass::MatVec, {}))
              << "%\n";

    const std::string code =
        hls::generateCode(graph, &schedule);
    std::cout << "\ngenerated HLS code (" << code.size()
              << " bytes), first lines:\n";
    std::size_t lines = 0, pos = 0;
    while (lines < 18 && pos < code.size()) {
        const std::size_t next = code.find('\n', pos);
        std::cout << "    " << code.substr(pos, next - pos) << "\n";
        pos = next + 1;
        ++lines;
    }
    std::cout << "    ...\n";

    // Functional check: interpret the graph against the serving path
    // (compiled model + inference session).
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(13);
    model.initXavier(rng);
    const hls::WeightStore store =
        hls::WeightStore::fromModel(model, spec);
    hls::Interpreter interp(graph, store);

    nn::Sequence xs(5, Vector(16));
    for (auto &x : xs)
        rng.fillNormal(x, 1.0);
    const runtime::CompiledModel compiled = runtime::compile(model);
    runtime::InferenceSession session = compiled.createSession();
    const nn::Sequence expect = session.logits(xs);
    const nn::Sequence got = interp.run(xs);
    Real worst = 0.0;
    for (std::size_t t = 0; t < got.size(); ++t)
        for (std::size_t k = 0; k < got[t].size(); ++k)
            worst = std::max(worst,
                             std::abs(got[t][k] - expect[t][k]));
    std::cout << "\ninterpreted graph vs nn forward: max |diff| = "
              << fmtReal(worst, 12) << " over " << got.size()
              << " frames\n";
    return 0;
}
