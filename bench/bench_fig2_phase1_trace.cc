/**
 * @file
 * Fig. 2 reproduction: the Phase I algorithm trace on the paper's
 * setting — ESE's LSTM-1024/proj-512 baseline, KU060 BRAM sanity
 * check, block size optimization between the two bounds, the
 * LSTM->GRU switch, and the input/output-matrix fine-tuning — with
 * the training-trial count the paper bounds at ~5.
 */

#include <iostream>

#include "base/logging.hh"
#include "bench_util.hh"
#include "ernn/explorer.hh"

using namespace ernn;
using namespace ernn::bench;

int
main()
{
    setLogQuiet(true);
    banner("Fig. 2: the Phase-I algorithm of E-RNN "
           "(trace on the calibrated TIMIT oracle)");

    nn::ModelSpec baseline;
    baseline.type = nn::ModelType::Lstm;
    baseline.inputDim = 153;
    baseline.numClasses = 39;
    baseline.layerSizes = {1024, 1024};
    baseline.peephole = true;
    baseline.projectionSize = 512;

    for (Real budget : {0.30, 0.10}) {
        std::cout << "\n--- accuracy requirement: max degradation "
                  << fmtReal(budget, 2) << "% ---\n";
        speech::TimitOracle oracle;
        core::Phase1Config cfg;
        cfg.maxPerDegradation = budget;
        core::Phase2Config p2;
        const auto result = core::optimizeDesign(
            oracle, baseline, hw::xcku060(), cfg, p2);
        std::cout << core::renderReport(result);
    }
    return 0;
}
