/**
 * @file
 * Fig. 6 reproduction: the ADMM structured-training procedure — the
 * primal residual ||W - Z|| driving the weights onto the
 * block-circulant set while the task loss keeps improving, followed
 * by the exact hard projection. Runs live on the synthetic ASR task.
 */

#include <iostream>

#include "admm/admm_trainer.hh"
#include "base/logging.hh"
#include "bench_util.hh"
#include "speech/dataset.hh"
#include "speech/per.hh"

using namespace ernn;
using namespace ernn::bench;

int
main()
{
    setLogQuiet(true);
    banner("Fig. 6: ADMM-based structured matrix training "
           "(live, synthetic ASR task)");

    speech::AsrDataConfig dcfg;
    dcfg.numPhones = 8;
    dcfg.featureDim = 16;
    dcfg.trainUtterances = fullMode() ? 96 : 40;
    dcfg.testUtterances = 24;
    const auto data = speech::makeSyntheticAsr(dcfg);

    nn::ModelSpec dense_spec;
    dense_spec.type = nn::ModelType::Gru;
    dense_spec.inputDim = 16;
    dense_spec.numClasses = 8;
    dense_spec.layerSizes = {32};

    nn::StackedRnn model = nn::buildModel(dense_spec);
    Rng rng(2019);
    model.initXavier(rng);

    // Pretrain (ADMM initializes from a pretrained model, Fig. 6).
    nn::TrainConfig pre;
    pre.epochs = 6;
    pre.lr = 1e-2;
    nn::Trainer(model, pre).train(data.train);
    std::cout << "pretrained dense PER: "
              << fmtReal(speech::evaluatePer(model, data.test), 2)
              << "%\n\n";

    nn::ModelSpec circ_spec = dense_spec;
    circ_spec.blockSizes = {4};
    admm::AdmmConfig acfg;
    acfg.rho = 0.5;
    acfg.rhoGrowth = 1.5;
    acfg.iterations = fullMode() ? 12 : 8;
    acfg.epochsPerIteration = 3;
    acfg.convergenceTol = 0.01;
    acfg.train.lr = 1e-2;
    acfg.train.batchSize = 2;

    admm::AdmmTrainer trainer(model, acfg);
    admm::constrainFromSpec(trainer, model, circ_spec);
    const admm::AdmmResult result = trainer.run(data.train);

    TextTable table("ADMM iterations (Z converges && W ~ Z)");
    table.setHeader({"iter", "train loss", "||W-Z||_F",
                     "||W-Z||/||W||"});
    for (const auto &log : result.log) {
        table.addRow({std::to_string(log.iteration),
                      fmtReal(log.trainLoss, 4),
                      fmtReal(log.primalResidual, 4),
                      fmtReal(log.relativeResidual, 4)});
    }
    table.print(std::cout);
    std::cout << (result.converged ?
                      "converged below tolerance\n" :
                      "iteration budget reached\n");

    trainer.hardProject();
    std::cout << "after hard projection, PER: "
              << fmtReal(speech::evaluatePer(model, data.test), 2)
              << "% (retrain-to-structured complete)\n";
    return 0;
}
