/**
 * @file
 * Fig. 7 reproduction: FFT/IFFT decoupling. For a p x q block
 * matrix the naive schedule runs p*q forward and p*q inverse
 * transforms per matvec; pre-computing FFT(x_j) and accumulating in
 * the frequency domain reduces that to q and p. Shown both from the
 * analytic model and by instrumenting the real kernels.
 */

#include <iostream>

#include "base/logging.hh"
#include "base/random.hh"
#include "bench_util.hh"
#include "circulant/block_circulant.hh"
#include "circulant/mult_model.hh"

using namespace ernn;
using namespace ernn::bench;

int
main()
{
    banner("Fig. 7: FFT/IFFT decoupling (p*q -> q FFTs, p*q -> p "
           "IFFTs)");

    TextTable table("Analytic transform counts per matvec");
    table.setHeader({"matrix", "block", "p x q", "FFTs naive",
                     "FFTs decoupled", "IFFTs naive",
                     "IFFTs decoupled", "total mult reduction"});
    const struct
    {
        std::size_t rows, cols, lb;
    } cases[] = {
        {24, 24, 8},        // the paper's 3x3-block demonstration
        {512, 512, 8},      // ASR-scale layers
        {1024, 1024, 16},
        {4096, 672, 8},     // W(ifco)(xr) of the Table III workload
    };
    for (const auto &c : cases) {
        const auto coupled = circulant::layerMultCount(
            c.rows, c.cols, c.lb,
            circulant::FftCostConvention::Optimized, false);
        const auto decoupled = circulant::layerMultCount(
            c.rows, c.cols, c.lb,
            circulant::FftCostConvention::Optimized, true);
        const std::size_t p = c.rows / c.lb, q = c.cols / c.lb;
        table.addRow({std::to_string(c.rows) + "x" +
                          std::to_string(c.cols),
                      std::to_string(c.lb),
                      std::to_string(p) + "x" + std::to_string(q),
                      fmtGrouped(static_cast<long long>(
                          coupled.fftCalls)),
                      fmtGrouped(static_cast<long long>(
                          decoupled.fftCalls)),
                      fmtGrouped(static_cast<long long>(
                          coupled.ifftCalls)),
                      fmtGrouped(static_cast<long long>(
                          decoupled.ifftCalls)),
                      fmtTimes(static_cast<Real>(coupled.total()) /
                                   static_cast<Real>(
                                       decoupled.total()),
                               2)});
    }
    table.print(std::cout);

    // Instrumented proof on the live kernels (3x3 blocks like the
    // paper's demonstration).
    const std::size_t lb = 8;
    circulant::BlockCirculantMatrix w(3 * lb, 3 * lb, lb);
    Rng rng(7);
    w.initXavier(rng);
    Vector x(3 * lb);
    rng.fillNormal(x, 1.0);
    (void)w.matvec(x); // warm the weight-spectrum cache

    fft::OpCountScope scope;
    (void)w.matvec(x);
    const auto counters = scope.counters();
    std::cout << "\ninstrumented kernels, 3x3 blocks: "
              << counters.fftCalls << " FFTs and "
              << counters.ifftCalls
              << " IFFTs per matvec (paper: 3 and 3, a 3x reduction "
                 "from 9).\n";
    return 0;
}
