/**
 * @file
 * Fig. 8 reproduction: normalized multiplication count as a function
 * of block size for layer sizes 512 and 1024.
 *
 * Three series per layer size:
 *  - "measured": real multiplications executed by the instrumented
 *    FFT kernels (trivial twiddles skipped, real-input packing);
 *  - "analytic": the closed-form mirror of those kernels (tests
 *    assert equality);
 *  - "conservative": the hardware-FFT convention under which the
 *    paper's Sec. V observation appears — the reduction converges
 *    around block size 32-64 and rises again for very large blocks.
 */

#include <iostream>

#include "base/logging.hh"
#include "base/random.hh"
#include "bench_util.hh"
#include "circulant/block_circulant.hh"
#include "circulant/mult_model.hh"

using namespace ernn;
using namespace ernn::bench;

namespace
{

Real
measuredNormalized(std::size_t layer, std::size_t lb)
{
    circulant::BlockCirculantMatrix w(layer, layer, lb);
    Rng rng(layer + lb);
    w.initXavier(rng);
    Vector x(layer);
    rng.fillNormal(x, 1.0);
    (void)w.matvec(x); // warm spectra

    fft::OpCountScope scope;
    (void)w.matvec(x);
    return static_cast<Real>(scope.counters().realMults) /
           (static_cast<Real>(layer) * static_cast<Real>(layer));
}

void
sweep(std::size_t layer)
{
    TextTable table("Layer size " + std::to_string(layer) +
                    ": normalized # of multiplications (dense = 1.0)");
    table.setHeader({"Block size", "measured (kernels)",
                     "analytic (mirror)", "conservative (hw FFT)"});
    for (std::size_t lb = 2; lb <= 256; lb <<= 1) {
        const Real analytic = circulant::normalizedMults(
            layer, lb, circulant::FftCostConvention::Optimized);
        const Real conservative = circulant::normalizedMults(
            layer, lb,
            circulant::FftCostConvention::ConservativeComplex);
        // Instrumented runs above block 64 take a while on one
        // core for layer 1024; the analytic mirror is exact anyway.
        const bool run_measured = lb <= 64 || fullMode();
        table.addRow({std::to_string(lb),
                      run_measured ?
                          fmtReal(measuredNormalized(layer, lb), 4) :
                          "= analytic",
                      fmtReal(analytic, 4),
                      fmtReal(conservative, 4)});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    banner("Fig. 8: normalized multiplications vs block size "
           "(Sec. V computation model)");
    sweep(512);
    sweep(1024);
    std::cout << "\nObservations (Sec. V-B):\n"
              << "  - block size 2 halves the multiplications "
                 "(0.5 in all conventions);\n"
              << "  - the reduction converges around block size "
                 "32-64;\n"
              << "  - under the conservative hardware-FFT convention "
                 "the count rises again for very large blocks, which "
                 "caps Phase I's search at 64.\n"
              << "  upper-bound recommendation: layer 512 -> "
              << circulant::blockSizeUpperBound(512)
              << ", layer 1024 -> "
              << circulant::blockSizeUpperBound(1024) << "\n";
    return 0;
}
