/**
 * @file
 * Figs. 9-12 reproduction: the accelerator architecture — PE design,
 * CU coarse-grained pipelines for LSTM (3 dedicated stages) and GRU
 * (stages 1-2 TDM-shared), and the cycle-level simulation against
 * the analytic model.
 */

#include <iostream>

#include "base/logging.hh"
#include "bench_util.hh"
#include "hw/resource_model.hh"
#include "sim/pipeline.hh"

using namespace ernn;
using namespace ernn::bench;

int
main()
{
    setLogQuiet(true);
    banner("Fig. 10: PE design — resource cost per FFT size "
           "(12-bit datapath)");
    TextTable pe_table;
    pe_table.setHeader({"FFT size", "DSP/PE", "LUT/PE",
                        "PEs on KU060", "PEs on 7V3"});
    for (std::size_t lb = 4; lb <= 64; lb <<= 1) {
        const auto cost = hw::peCost(lb, 12);
        pe_table.addRow({std::to_string(lb),
                         fmtReal(cost.dsp, 0),
                         fmtReal(cost.lut, 0),
                         std::to_string(hw::peCount(hw::xcku060(), lb,
                                                    12)),
                         std::to_string(hw::peCount(hw::adm7v3(), lb,
                                                    12))});
    }
    pe_table.print(std::cout);

    banner("Figs. 11-12: CU coarse-grained pipelines "
           "(per-CU stage cycles, Table III workloads)");
    for (auto type : {nn::ModelType::Lstm, nn::ModelType::Gru}) {
        const nn::ModelSpec spec = type == nn::ModelType::Lstm ?
            paperLstmLayer(8) : paperGruLayer(8);
        const std::size_t pe = hw::peCount(hw::xcku060(), 8, 12);
        const auto stages = sim::buildCuStages(spec, pe / 3);

        TextTable table(nn::modelTypeName(type) +
                        " CU (KU060, FFT8, " + std::to_string(pe / 3) +
                        " PEs/CU)");
        table.setHeader({"CGPipe stage", "cycles", "resource"});
        for (const auto &st : stages) {
            table.addRow({st.name, fmtGrouped(
                              static_cast<long long>(st.duration)),
                          "unit " + std::to_string(st.resource)});
        }
        table.print(std::cout);

        const auto one_stream =
            sim::simulatePipeline(stages, 16, true);
        const auto pipelined =
            sim::simulatePipeline(stages, 16, false);
        std::cout << "  one voice stream (recurrent dependency): "
                  << one_stream.steadyInterval
                  << " cycles/frame; double-buffered independent "
                     "frames: "
                  << pipelined.steadyInterval << " cycles/frame\n\n";
    }

    banner("Fig. 9: accelerator (3 CUs) — cycle simulation vs "
           "analytic model");
    TextTable cmp;
    cmp.setHeader({"Design", "Platform", "model latency (us)",
                   "sim latency (us)", "model FPS", "sim FPS"});
    for (auto block : {8u, 16u}) {
        for (auto type : {nn::ModelType::Lstm, nn::ModelType::Gru}) {
            const nn::ModelSpec spec = type == nn::ModelType::Lstm ?
                paperLstmLayer(block) : paperGruLayer(block);
            for (const auto *p : hw::allPlatforms()) {
                const auto model = hw::evaluateDesign(spec, *p);
                const auto sim = sim::simulateAccelerator(spec, *p);
                cmp.addRow({nn::modelTypeName(type) + " FFT" +
                                std::to_string(block),
                            p->name, fmtReal(model.latencyUs, 1),
                            fmtReal(sim.latencyUs, 1),
                            fmtGrouped(static_cast<long long>(
                                model.fps)),
                            fmtGrouped(static_cast<long long>(
                                sim.fps))});
            }
        }
    }
    cmp.print(std::cout);
    return 0;
}
