/**
 * @file
 * Reproduction of the paper's illustrative figures:
 *  - Fig. 1: block-circulant weight representation compresses 27
 *    parameters to 9;
 *  - Fig. 4: FFT-based circulant matvec (with the paper's example
 *    generator) equals the direct dense product;
 *  - Fig. 5: the Euclidean mapping of a 4x4 matrix at block size 2,
 *    with the paper's exact numbers.
 */

#include <iostream>

#include "base/logging.hh"
#include "base/random.hh"
#include "bench_util.hh"
#include "circulant/block_circulant.hh"

using namespace ernn;
using namespace ernn::bench;
using circulant::BlockCirculantMatrix;

int
main()
{
    banner("Fig. 1: block-circulant weight representation");
    // A 3x9 weight matrix of 3x3 circulant blocks: 27 -> 9 params.
    // (Our blocks are powers of two; the 4x12 equivalent shows the
    // same 3x compression per block row.)
    BlockCirculantMatrix fig1(4, 12, 4);
    std::cout << "dense parameters:  " << fig1.rows() * fig1.cols()
              << "\nstored parameters: " << fig1.paramCount()
              << "\ncompression:       "
              << fmtTimes(fig1.compressionRatio(), 1) << "\n";

    banner("Fig. 4: FFT-based circulant matvec");
    BlockCirculantMatrix w(4, 4, 4);
    Real *g = w.generator(0, 0);
    // The paper's example generator w11 = (1.14, -0.69, 0.83, -2.26).
    g[0] = 1.14; g[1] = -0.69; g[2] = 0.83; g[3] = -2.26;
    w.invalidateSpectra();
    const Vector x{-1.11, 0.95, 0.39, 0.78};
    const Vector via_fft = w.matvec(x, circulant::MatvecMode::Fft);
    const Vector via_dense = w.toDense().matvec(x);
    TextTable fig4("a = IFFT(conj(FFT(w)) o FFT(x)) vs dense W x");
    fig4.setHeader({"row", "FFT path", "dense path", "abs diff"});
    for (std::size_t r = 0; r < 4; ++r) {
        fig4.addRow({std::to_string(r), fmtReal(via_fft[r], 6),
                     fmtReal(via_dense[r], 6),
                     fmtReal(std::abs(via_fft[r] - via_dense[r]), 12)});
    }
    fig4.print(std::cout);

    banner("Fig. 5: Euclidean mapping (Eqn. 6), 4x4 matrix, Lb = 2");
    Matrix m(4, 4);
    const Real vals[4][4] = {
        {0.5, 0.4, -1.3, 0.5},
        {1.2, -0.3, 0.1, 0.7},
        {-0.1, 1.4, 0.6, -1.3},
        {0.7, 0.5, -0.9, 1.4},
    };
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            m.at(r, c) = vals[r][c];
    const Matrix z = BlockCirculantMatrix::fromDense(m, 2).toDense();
    std::cout << "input matrix -> projected block-circulant matrix\n";
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c)
            std::cout << padLeft(fmtReal(m.at(r, c), 1), 6);
        std::cout << "    ->";
        for (int c = 0; c < 4; ++c)
            std::cout << padLeft(fmtReal(z.at(r, c), 1), 6);
        std::cout << "\n";
    }
    std::cout << "paper example: top-left block maps to diagonal 0.1,"
                 " off-diagonal 0.8 -> got " << fmtReal(z.at(0, 0), 1)
              << " / " << fmtReal(z.at(0, 1), 1) << "\n";
    return 0;
}
