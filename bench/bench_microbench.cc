/**
 * @file
 * Google-benchmark microbenchmarks of the computational kernels: the
 * FFT engine, dense vs block-circulant matvec across block sizes
 * (the CPU-side analogue of the paper's compression/acceleration
 * trade-off), projection, quantization, the fixed-point matvec in
 * both its native int16 and f64-emulation forms, activations, and
 * the serving path (legacy training-forward inference vs batched
 * InferenceSessions per backend on the paper-scale 2x1024/block-64
 * LSTM — the geometry behind Tables III/IV).
 *
 * Every run also writes BENCH_microbench.json (google-benchmark's
 * JSON reporter) unless --benchmark_out is given explicitly, so CI
 * and local runs alike leave a machine-readable perf data point.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "circulant/block_circulant.hh"
#include "nn/activation.hh"
#include "nn/model_builder.hh"
#include "nn/trainer.hh"
#include "quant/fixed_point.hh"
#include "runtime/artifact.hh"
#include "runtime/session.hh"
#include "serve/inference_server.hh"
#include "speech/ctc_decoder.hh"
#include "speech/frontend.hh"
#include "speech/per.hh"
#include "tensor/fft.hh"
#include "tensor/matrix.hh"
#include "tensor/simd.hh"

using namespace ernn;

namespace
{

Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    rng.fillNormal(v, 1.0);
    return v;
}

void
BM_Rfft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Vector x = randomVector(n, n);
    for (auto _ : state) {
        auto spec = fft::rfft(x);
        benchmark::DoNotOptimize(spec);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Rfft)->RangeMultiplier(4)->Range(8, 2048);

void
BM_Irfft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto spec = fft::rfft(randomVector(n, n));
    for (auto _ : state) {
        auto x = fft::irfft(spec, n);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_Irfft)->RangeMultiplier(4)->Range(8, 2048);

void
BM_DenseMatvec(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    Matrix w(n, n);
    w.initXavier(rng);
    const Vector x = randomVector(n, 2);
    for (auto _ : state) {
        auto y = w.matvec(x);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0) *
        state.range(0));
}
BENCHMARK(BM_DenseMatvec)->Arg(512)->Arg(1024);

void
BM_CirculantMatvec(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto lb = static_cast<std::size_t>(state.range(1));
    Rng rng(3);
    circulant::BlockCirculantMatrix w(n, n, lb);
    w.initXavier(rng);
    const Vector x = randomVector(n, 4);
    (void)w.matvec(x); // warm the spectrum cache
    for (auto _ : state) {
        auto y = w.matvec(x);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0) *
        state.range(0));
}
BENCHMARK(BM_CirculantMatvec)
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({512, 16})
    ->Args({512, 64})
    ->Args({1024, 8})
    ->Args({1024, 16});

void
BM_CirculantProjection(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    Matrix dense(n, n);
    dense.initXavier(rng);
    for (auto _ : state) {
        auto proj = circulant::BlockCirculantMatrix::fromDense(
            dense, 8);
        benchmark::DoNotOptimize(proj);
    }
}
BENCHMARK(BM_CirculantProjection)->Arg(256)->Arg(512);

void
BM_Quantize12Bit(benchmark::State &state)
{
    std::vector<Real> buf = randomVector(
        static_cast<std::size_t>(state.range(0)), 6);
    const auto fmt = quant::chooseFormat(12, 4.0);
    for (auto _ : state) {
        auto copy = buf;
        benchmark::DoNotOptimize(quant::quantizeInPlace(copy, fmt));
    }
}
BENCHMARK(BM_Quantize12Bit)->Arg(1 << 14);

// --- Fixed-point matvec: native int16 vs f64 emulation -----------------

/** Value-grid input vector (what the session feeds the kernels). */
Vector
gridVector(std::size_t n, std::uint64_t seed,
           const quant::FixedPointFormat &vf)
{
    Vector x = randomVector(n, seed);
    for (auto &v : x)
        v = vf.quantize(v);
    return x;
}

/** range(0): n; range(1): block size (0 = dense); range(2): 1 for
 *  the native int16 path, 0 for the f64 emulation. */
void
BM_FixedPointMatvec(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto lb = static_cast<std::size_t>(state.range(1));
    const bool native = state.range(2) != 0;

    Rng rng(9);
    std::unique_ptr<runtime::FixedPointKernel> kernel;
    if (lb == 0) {
        Matrix w(n, n);
        w.initXavier(rng);
        kernel = std::make_unique<runtime::FixedPointKernel>(w, 12);
    } else {
        circulant::BlockCirculantMatrix w(n, n, lb);
        w.initXavier(rng);
        kernel = std::make_unique<runtime::FixedPointKernel>(w, 12);
    }

    const quant::FixedPointFormat vf =
        quant::chooseClampFormat(12, 8.0); // the session's value grid
    runtime::KernelScratch scratch;
    if (native)
        scratch.valueFormat = vf; // arms the int16 datapath

    const Vector x = gridVector(n, 10, vf);
    Vector y(n, 0.0);
    for (auto _ : state) {
        kernel->apply(x, y, scratch);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0) *
        state.range(0));
    state.SetLabel(std::string(lb ? "circulant" : "dense") +
                   (native ? "/int16" : "/f64-emulation"));
}
BENCHMARK(BM_FixedPointMatvec)
    ->Args({1024, 64, 1})
    ->Args({1024, 64, 0})
    ->Args({1024, 0, 1})
    ->Args({1024, 0, 0})
    ->Args({512, 16, 1})
    ->Args({512, 16, 0});

// --- Serving path: legacy per-call inference vs batched session ---

/** The acceptance workload: a 2x1024 LSTM with block-64 circulant
 *  weights (the paper-scale deployed geometry). */
nn::ModelSpec
servingSpec()
{
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 128;
    spec.numClasses = 39;
    spec.layerSizes = {1024, 1024};
    spec.blockSizes = {64, 64};
    return spec;
}

std::vector<nn::Sequence>
servingBatch(std::size_t utterances, std::size_t frames,
             std::size_t dim)
{
    Rng rng(17);
    std::vector<nn::Sequence> batch(utterances);
    for (auto &utt : batch) {
        utt.assign(frames, Vector(dim));
        for (auto &f : utt)
            rng.fillNormal(f, 1.0);
    }
    return batch;
}

/** Old path: StackedRnn::predictFrames per utterance (the training
 *  forward — caches every activation, allocates per matvec). */
void
BM_LegacyPredictFrames(benchmark::State &state)
{
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);
    const auto batch = servingBatch(
        static_cast<std::size_t>(state.range(0)), 4, spec.inputDim);

    for (auto _ : state) {
        for (const auto &utt : batch) {
            auto preds = model.predictFrames(utt);
            benchmark::DoNotOptimize(preds);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0) * 4);
}
BENCHMARK(BM_LegacyPredictFrames)->Arg(4)->Unit(benchmark::kMillisecond);

/** New path: one CompiledModel (CirculantFFT backend), one batched
 *  InferenceSession, zero steady-state allocation. */
void
BM_SessionBatchedRun(benchmark::State &state)
{
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);
    runtime::CompiledModel compiled = runtime::compile(model);
    runtime::InferenceSession session = compiled.createSession();
    const auto batch = servingBatch(
        static_cast<std::size_t>(state.range(0)), 4, spec.inputDim);

    for (auto _ : state) {
        auto result = session.run(batch);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0) * 4);
}
BENCHMARK(BM_SessionBatchedRun)->Arg(4)->Unit(benchmark::kMillisecond);

/**
 * One batched session per backend on the acceptance geometry. The
 * fixed-point pair (native vs emulation) is the PR-gating number:
 * the int16 datapath must be >= 2x faster than the f64 emulation it
 * is bit-identical to.
 */
void
BM_SessionBackend(benchmark::State &state)
{
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);

    runtime::CompileOptions opts;
    const char *label = "";
    switch (state.range(0)) {
      case 0:
        opts.backend = runtime::BackendKind::CirculantFft;
        label = "circulant-fft";
        break;
      case 1:
        opts.backend = runtime::BackendKind::Dense;
        label = "dense";
        break;
      case 2:
        opts.backend = runtime::BackendKind::FixedPoint;
        label = "fixed-point/int16";
        break;
      case 3:
        opts.backend = runtime::BackendKind::FixedPoint;
        opts.fixedPointEmulation = true;
        label = "fixed-point/f64-emulation";
        break;
    }
    runtime::CompiledModel compiled = runtime::compile(model, opts);
    runtime::InferenceSession session = compiled.createSession();
    const auto batch = servingBatch(4, 4, spec.inputDim);

    for (auto _ : state) {
        auto result = session.run(batch);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 4 * 4);
    state.SetLabel(label);
}
BENCHMARK(BM_SessionBackend)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/**
 * Batch-major throughput sweep: frames/s of one session's run() per
 * backend across batch sizes (items_processed = frames, so the JSON
 * carries items_per_second = frames/s). The PR-gating number is the
 * batch-16 over batch-1 speedup on the Dense and FixedPoint
 * backends: dynamic batching must buy compute density (one
 * GEMM-shaped kernel call per time step), not just queueing.
 * range(0): backend (0 circulant-fft, 1 dense, 2 fixed-point int16);
 * range(1): batch size.
 */
void
BM_SessionBatchSweep(benchmark::State &state)
{
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);

    runtime::CompileOptions opts;
    const char *label = "";
    switch (state.range(0)) {
      case 0:
        opts.backend = runtime::BackendKind::CirculantFft;
        label = "circulant-fft";
        break;
      case 1:
        opts.backend = runtime::BackendKind::Dense;
        label = "dense";
        break;
      case 2:
        opts.backend = runtime::BackendKind::FixedPoint;
        label = "fixed-point/int16";
        break;
    }
    runtime::CompiledModel compiled = runtime::compile(model, opts);
    runtime::InferenceSession session = compiled.createSession();

    const auto lanes = static_cast<std::size_t>(state.range(1));
    const std::size_t frames = 4;
    const auto batch = servingBatch(lanes, frames, spec.inputDim);

    for (auto _ : state) {
        auto result = session.run(batch);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(lanes * frames));
    state.SetLabel(std::string(label) + "/batch" +
                   std::to_string(lanes));
}
BENCHMARK(BM_SessionBatchSweep)
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMillisecond);

/**
 * SIMD dispatch toggle on the int16 fixed-point matvec (the paper's
 * deployed kernel). range(0): n; range(1): block size (0 = dense);
 * range(2): 0 forces the scalar oracle, 1 the best detected level.
 * The PR-gating number: on AVX2 hardware the dispatched dense int16
 * matvec must be >= 2x the scalar oracle it is bit-identical to
 * (perf-smoke computes the ratio from the labels).
 */
void
BM_SimdLevelMatvec(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto lb = static_cast<std::size_t>(state.range(1));
    const bool best = state.range(2) != 0;
    const simd::Level level = best ? simd::detect()
                                   : simd::Level::Scalar;
    const simd::Level saved = simd::active();
    simd::setActive(level);

    Rng rng(9);
    std::unique_ptr<runtime::FixedPointKernel> kernel;
    if (lb == 0) {
        Matrix w(n, n);
        w.initXavier(rng);
        kernel = std::make_unique<runtime::FixedPointKernel>(w, 12);
    } else {
        circulant::BlockCirculantMatrix w(n, n, lb);
        w.initXavier(rng);
        kernel = std::make_unique<runtime::FixedPointKernel>(w, 12);
    }

    const quant::FixedPointFormat vf = quant::chooseClampFormat(12, 8.0);
    runtime::KernelScratch scratch;
    scratch.valueFormat = vf; // native int16 datapath

    const Vector x = gridVector(n, 10, vf);
    Vector y(n, 0.0);
    for (auto _ : state) {
        kernel->apply(x, y, scratch);
        benchmark::DoNotOptimize(y.data());
    }
    simd::setActive(saved);
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * state.range(0) *
        state.range(0));
    state.SetLabel(std::string(lb ? "circulant" : "dense") + "/simd-" +
                   simd::levelName(level));
}
// n = 512 dense (512 KB of codes) stays cache-resident — that pair
// is the kernel-speedup ratio; n = 1024 dense (2 MB) streams from
// memory and shows the bandwidth ceiling instead.
BENCHMARK(BM_SimdLevelMatvec)
    ->Args({512, 0, 0})
    ->Args({512, 0, 1})
    ->Args({1024, 0, 0})
    ->Args({1024, 0, 1})
    ->Args({1024, 64, 0})
    ->Args({1024, 64, 1});

/**
 * Intra-session multicore scaling: run() at batch 64 on the
 * acceptance geometry with the session's compute pool at 1..N
 * threads. Row ranges of each timestep GEMM are split across the
 * pool; results are bit-identical at any thread count (see
 * test_simd), so items_per_second is a pure scaling curve.
 * perf-smoke reports the N-thread over 1-thread ratio. range(0):
 * backend (1 dense, 2 fixed-point int16); range(1): threads.
 */
void
BM_SessionThreadSweep(benchmark::State &state)
{
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);

    runtime::CompileOptions opts;
    const char *label = "";
    switch (state.range(0)) {
      case 1:
        opts.backend = runtime::BackendKind::Dense;
        label = "dense";
        break;
      case 2:
        opts.backend = runtime::BackendKind::FixedPoint;
        label = "fixed-point/int16";
        break;
    }
    runtime::CompiledModel compiled = runtime::compile(model, opts);
    const auto threads = static_cast<std::size_t>(state.range(1));
    runtime::InferenceSession session =
        compiled.createSession(threads);

    const std::size_t lanes = 64, frames = 4;
    const auto batch = servingBatch(lanes, frames, spec.inputDim);

    for (auto _ : state) {
        auto result = session.run(batch);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(lanes * frames));
    state.SetLabel(std::string(label) + "/threads" +
                   std::to_string(threads));
}
// UseRealTime: work moves onto pool workers, so the main thread's
// CPU clock would overstate the scaling; wall clock is the honest
// frames/s basis.
BENCHMARK(BM_SessionThreadSweep)
    ->ArgsProduct({{1, 2}, {1, 2, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Training datapath sweep on the acceptance geometry: one epoch over
 * 16 synthetic utterances, vector-at-a-time oracle vs batch-major
 * pooled lanes at several group sizes and thread counts. perf-smoke
 * reports the batch-16-over-batch-1 and 4-thread-over-1-thread
 * epoch-throughput ratios. range(0): lanes per gradient group (0 =
 * the vector oracle datapath, i.e. one lane at a time); range(1):
 * trainer threads.
 */
void
BM_TrainerBatchSweep(benchmark::State &state)
{
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);

    const std::size_t utts = 16, frames = 8;
    nn::SequenceDataset data(utts);
    Rng drng(23);
    for (auto &ex : data) {
        ex.frames.assign(frames, Vector(spec.inputDim));
        for (auto &f : ex.frames)
            drng.fillNormal(f, 1.0);
        ex.labels.resize(frames);
        for (auto &l : ex.labels)
            l = static_cast<int>(drng.index(spec.numClasses));
    }

    nn::TrainConfig tc;
    tc.epochs = 1;
    tc.batchSize = utts;
    tc.optimizer = nn::TrainConfig::Opt::Sgd;
    // Tiny step: epoch timing must not drift as weights evolve
    // across benchmark iterations.
    tc.lr = 1e-6;
    const auto lanes = static_cast<std::size_t>(state.range(0));
    const auto threads = static_cast<std::size_t>(state.range(1));
    tc.threads = threads;
    if (lanes == 0) {
        tc.datapath = nn::TrainConfig::Datapath::Vector;
    } else {
        tc.datapath = nn::TrainConfig::Datapath::Batched;
        tc.batchLanes = lanes;
    }

    nn::Trainer trainer(model, tc);
    for (auto _ : state) {
        auto log = trainer.train(data);
        benchmark::DoNotOptimize(log);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(utts * frames));
    state.SetLabel((lanes == 0 ? std::string("vector")
                               : "lanes" + std::to_string(lanes)) +
                   "/threads" + std::to_string(threads));
}
// UseRealTime for the same reason as the session sweep: gradient
// groups run on pool workers.
BENCHMARK(BM_TrainerBatchSweep)
    ->Args({0, 1})  // vector oracle: the batch-1 baseline
    ->Args({1, 1})  // batched machinery at 1 lane (overhead floor)
    ->Args({16, 1}) // one GEMM group of 16 lanes
    ->Args({4, 1})  // 4 groups of 4 lanes, serial
    ->Args({4, 4})  // 4 groups of 4 lanes, 4 threads
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_ActivationExactVsPwl(benchmark::State &state)
{
    const bool pwl = state.range(0) != 0;
    Vector v = randomVector(4096, 7);
    const nn::PiecewiseLinear approx(nn::ActKind::Tanh, 64, 8.0);
    for (auto _ : state) {
        Vector copy = v;
        if (pwl)
            approx.apply(copy);
        else
            nn::applyActivation(nn::ActKind::Tanh, copy);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_ActivationExactVsPwl)->Arg(0)->Arg(1);

// --- Fleet layer: artifact cold load and scheduler throughput ---

/** v2 and v3 artifacts of the acceptance-geometry LSTM, written to
 *  the temp dir once per process so every cold-load iteration reads
 *  the same bytes. */
struct ColdLoadFixture
{
    std::string v2;
    std::string v3;

    ColdLoadFixture()
    {
        const nn::ModelSpec spec = servingSpec();
        nn::StackedRnn model = nn::buildModel(spec);
        Rng rng(18);
        model.initXavier(rng);
        // FixedPoint: the deployed int16 datapath, whose packed code
        // blobs the v3 mapping serves in place. (The FFT backend
        // copies its generators into spectra even when mapped, so it
        // cannot show the zero-copy win.)
        runtime::CompileOptions copts;
        copts.backend = runtime::BackendKind::FixedPoint;
        const runtime::CompiledModel compiled =
            runtime::compile(model, copts);
        const std::string dir =
            std::filesystem::temp_directory_path().string();
        v2 = dir + "/ernn_bench_coldload_v2.ernn";
        v3 = dir + "/ernn_bench_coldload_v3.ernn";
        runtime::saveArtifact(compiled, v2, 2);
        runtime::saveArtifact(compiled, v3, 3);
    }
};

const ColdLoadFixture &
coldLoadFixture()
{
    static ColdLoadFixture fixture;
    return fixture;
}

/**
 * Cold load to model-ready on the 2x1024/block-64 LSTM. The
 * PR-gating number: the v3 mmap load (weights served in place from
 * the 64-byte-aligned blob section) must be >= 10x faster than the
 * v2 copy load that parses and heap-copies every weight. The
 * verified variant still streams the bytes once for per-blob
 * checksums; the trusted variant is metadata-only — microseconds to
 * first inference for a store already verified at publish time.
 * range(0): 0 v2 copy, 1 v3 mmap verified, 2 v3 mmap trusted.
 */
void
BM_ArtifactColdLoad(benchmark::State &state)
{
    const ColdLoadFixture &fixture = coldLoadFixture();
    const char *label = "";
    for (auto _ : state) {
        switch (state.range(0)) {
          case 0: {
            auto model = runtime::loadArtifactShared(fixture.v2);
            benchmark::DoNotOptimize(model);
            label = "v2-copy";
            break;
          }
          case 1: {
            auto model = runtime::loadArtifactMapped(fixture.v3);
            benchmark::DoNotOptimize(model);
            label = "v3-mmap-verified";
            break;
          }
          case 2: {
            runtime::MapOptions opts;
            opts.verifyBlobs = false;
            auto model =
                runtime::loadArtifactMapped(fixture.v3, opts);
            benchmark::DoNotOptimize(model);
            label = "v3-mmap-trusted";
            break;
          }
        }
    }
    state.SetLabel(label);
}
BENCHMARK(BM_ArtifactColdLoad)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

/**
 * Continuous batching vs hold-open at equal offered load, one
 * compute thread each (workers=1 isolates the scheduler; more
 * workers would hand hold-open extra cores instead of a better
 * policy). The utterance mix is bimodal — mostly short commands
 * plus a few long dictations, the workload continuous batching was
 * invented for: under hold-open every wave that contains a long
 * utterance decays to one occupied lane until it finishes, while
 * continuous admission refills retired slots from the queue on the
 * very next step. Per BM_SessionBatchSweep the int16 datapath's
 * compute-density curve is steepest between batch 1 and 4 (116 ->
 * 271 frames/s at paper scale), so the occupancy the scheduler
 * preserves maps directly onto frames/s. items_per_second is the
 * PR-gating pair. range(0): 0 hold-open, 1 continuous.
 */
void
BM_ServeScheduler(benchmark::State &state)
{
    const bool continuous = state.range(0) != 0;
    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(18);
    model.initXavier(rng);
    runtime::CompileOptions copts;
    copts.backend = runtime::BackendKind::FixedPoint;
    const runtime::CompiledModel compiled =
        runtime::compile(model, copts);

    Rng lens(7);
    std::vector<nn::Sequence> load(16);
    std::size_t total_frames = 0;
    for (std::size_t u = 0; u < load.size(); ++u) {
        // Every fourth utterance is a long dictation (28..35
        // frames); the rest are short commands (2..5).
        const std::size_t frames =
            u % 4 == 2 ? 28 + lens.index(8) : 2 + lens.index(4);
        total_frames += frames;
        load[u].assign(frames, Vector(spec.inputDim));
        for (auto &frame : load[u])
            lens.fillNormal(frame, 1.0);
    }

    serve::ServerOptions sopts;
    sopts.workers = 1;
    sopts.maxBatch = 4;
    sopts.queueCapacity = load.size();
    sopts.scheduler = continuous ? serve::SchedulerMode::Continuous
                                 : serve::SchedulerMode::HoldOpen;
    serve::InferenceServer server(compiled, sopts);

    for (auto _ : state) {
        std::vector<std::future<serve::InferenceReply>> futs;
        futs.reserve(load.size());
        for (const auto &utt : load)
            futs.push_back(server.submit(utt));
        for (auto &fut : futs)
            fut.get();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(total_frames));
    state.SetLabel(continuous ? "continuous" : "hold-open");
}
// UseRealTime: the submitting thread mostly waits on futures, so CPU
// time would make items_per_second meaningless for a server bench.
BENCHMARK(BM_ServeScheduler)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Acoustic frontend throughput: raw 16 kHz samples -> log-mel frames
 * through the streaming push() path (the per-stream steady state,
 * allocation-free once warm). items_per_second counts emitted
 * frames; one frame represents 10 ms of audio, so frames/s / 100 is
 * the number of real-time streams one core can front-end.
 */
void
BM_Frontend(benchmark::State &state)
{
    speech::FrontendConfig cfg; // 16 kHz / 25 ms / 10 ms / 16 bands
    const speech::AcousticFrontend fe(cfg);
    Rng rng(13);
    Vector samples(cfg.sampleRate); // one second of audio
    rng.fillNormal(samples, 0.25);

    speech::FrontendState st = fe.newState();
    std::size_t frames = 0;
    const auto count = [&](const Vector &) { ++frames; };
    for (auto _ : state) {
        fe.reset(st);
        frames = 0;
        fe.push(st, samples.data(), samples.size(), count);
        benchmark::DoNotOptimize(frames);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(frames));
}
BENCHMARK(BM_Frontend)->Unit(benchmark::kMillisecond);

/**
 * CTC decode cost over one utterance of paper-ish logits (200 frames
 * x 40 classes). Arg = beam width: 0 is the greedy argmax + collapse
 * baseline, 1 the beam decoder's parity point (its overhead over
 * greedy), 4 the accuracy setting `ernn eval --beam 4` serves.
 * items_per_second counts decoded frames.
 */
void
BM_BeamDecode(benchmark::State &state)
{
    const std::size_t beam =
        static_cast<std::size_t>(state.range(0));
    Rng rng(17);
    nn::Sequence logits(200);
    for (auto &frame : logits) {
        frame.resize(40);
        rng.fillNormal(frame, 2.0);
    }

    for (auto _ : state) {
        if (beam == 0) {
            std::vector<int> preds;
            preds.reserve(logits.size());
            for (const auto &frame : logits)
                preds.push_back(static_cast<int>(argmax(frame)));
            benchmark::DoNotOptimize(
                speech::collapseRepeats(preds));
        } else {
            speech::CtcDecodeOptions opts;
            opts.beamWidth = beam;
            benchmark::DoNotOptimize(
                speech::ctcDecode(logits, opts).labels);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(logits.size()));
    state.SetLabel(beam == 0 ? "greedy"
                             : "beam-" + std::to_string(beam));
}
BENCHMARK(BM_BeamDecode)->Arg(0)->Arg(1)->Arg(4);

} // namespace

/**
 * BENCHMARK_MAIN with one addition: unless the caller passes its own
 * --benchmark_out, results are also written to BENCH_microbench.json
 * (JSON reporter) in the working directory — the machine-readable
 * perf trail CI uploads per commit.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        // Exactly --benchmark_out or --benchmark_out=...; a bare
        // --benchmark_out_format must not suppress the default file.
        if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
            std::strncmp(argv[i], "--benchmark_out=",
                         std::strlen("--benchmark_out=")) == 0)
            has_out = true;
    std::string out_flag = "--benchmark_out=BENCH_microbench.json";
    std::string format_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(format_flag.data());
    }

    int patched_argc = static_cast<int>(args.size());
    benchmark::Initialize(&patched_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(patched_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
