/**
 * @file
 * Serving throughput/latency bench: InferenceServer vs a single
 * direct InferenceSession on the paper-scale 2x1024/block-64 LSTM,
 * swept over worker count and dynamic-batching size for the
 * Dense / CirculantFFT / FixedPoint backends.
 *
 * Quick mode uses a reduced utterance set for the slow (time-domain
 * MAC) backends; ERNN_FULL=1 runs the complete sweep everywhere.
 * Worker scaling is bounded by physical cores — the bench prints
 * std::thread::hardware_concurrency() so results off a many-core
 * host are interpretable.
 */

#include <chrono>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "base/strings.hh"
#include "base/table.hh"
#include "bench_util.hh"
#include "serve/inference_server.hh"

using namespace ernn;
using Clock = std::chrono::steady_clock;

namespace
{

/** The acceptance workload: paper-scale 2x1024 LSTM, block-64. */
nn::ModelSpec
servingSpec()
{
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 128;
    spec.numClasses = 39;
    spec.layerSizes = {1024, 1024};
    spec.blockSizes = {64, 64};
    return spec;
}

std::vector<nn::Sequence>
utteranceSet(std::size_t utterances, std::size_t frames,
             std::size_t dim)
{
    Rng rng(29);
    std::vector<nn::Sequence> set(utterances);
    for (auto &utt : set) {
        utt.assign(frames, Vector(dim));
        for (auto &f : utt)
            rng.fillNormal(f, 1.0);
    }
    return set;
}

Real
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<Real>(Clock::now() - t0).count();
}

std::size_t
totalFrames(const std::vector<nn::Sequence> &set)
{
    std::size_t n = 0;
    for (const auto &utt : set)
        n += utt.size();
    return n;
}

/** Single-thread baseline: one session, sequential maxBatch batches. */
Real
directThroughput(const runtime::CompiledModel &model,
                 const std::vector<nn::Sequence> &set,
                 std::size_t max_batch)
{
    runtime::InferenceSession session = model.createSession();
    const auto t0 = Clock::now();
    std::vector<const nn::Sequence *> batch;
    for (std::size_t u = 0; u < set.size();) {
        batch.clear();
        for (; u < set.size() && batch.size() < max_batch; ++u)
            batch.push_back(&set[u]);
        const runtime::BatchResult r = session.run(batch);
        (void)r;
    }
    return static_cast<Real>(totalFrames(set)) / secondsSince(t0);
}

struct ServedRun
{
    Real framesPerSec = 0.0;
    serve::ServerStats stats;
};

ServedRun
servedThroughput(const runtime::CompiledModel &model,
                 const std::vector<nn::Sequence> &set,
                 std::size_t workers, std::size_t max_batch)
{
    serve::ServerOptions opts;
    opts.workers = workers;
    opts.maxBatch = max_batch;
    opts.batchTimeout = std::chrono::microseconds(100);
    serve::InferenceServer server(model, opts);

    const auto t0 = Clock::now();
    std::vector<std::future<serve::InferenceReply>> futures;
    futures.reserve(set.size());
    for (const auto &utt : set)
        futures.push_back(server.submit(utt));
    for (auto &f : futures)
        f.get();
    const Real secs = secondsSince(t0);

    ServedRun run;
    run.framesPerSec = static_cast<Real>(totalFrames(set)) / secs;
    run.stats = server.stats();
    return run;
}

void
sweepBackend(const std::string &name,
             const runtime::CompiledModel &model,
             const std::vector<nn::Sequence> &set,
             const std::vector<std::size_t> &worker_counts,
             std::size_t max_batch)
{
    const Real direct = directThroughput(model, set, max_batch);

    TextTable table(name + ": " + std::to_string(set.size()) +
                    " utterances x " +
                    std::to_string(set.front().size()) +
                    " frames, maxBatch " + std::to_string(max_batch));
    table.setHeader({"mode", "frames/s", "speedup", "mean batch",
                     "mean queue (us)", "mean compute (us)"});
    table.addRow({"direct session (1 thread)", fmtGrouped(
                      static_cast<long long>(direct)),
                  "1.00", "-", "-", "-"});
    for (std::size_t workers : worker_counts) {
        const ServedRun run =
            servedThroughput(model, set, workers, max_batch);
        table.addRow(
            {"server, " + std::to_string(workers) + " workers",
             fmtGrouped(static_cast<long long>(run.framesPerSec)),
             fmtReal(run.framesPerSec / direct, 2),
             fmtReal(run.stats.meanBatchSize(), 1),
             fmtReal(run.stats.queueMicros.mean(), 0),
             fmtReal(run.stats.computeMicros.mean(), 0)});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const bool full = bench::fullMode();
    bench::banner(
        "Serving throughput: InferenceServer vs direct session "
        "(2x1024/block-64 LSTM)");
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency()
              << " (worker scaling is bounded by physical cores)\n";

    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(31);
    model.initXavier(rng);

    const std::vector<std::size_t> workers =
        full ? std::vector<std::size_t>{1, 2, 4, 8}
             : std::vector<std::size_t>{1, 2, 4};

    // The FFT datapath (the paper's production path) gets the full
    // utterance set; the dense / fixed-point reference datapaths do
    // O(rows x cols) MACs per frame and run a reduced set in quick
    // mode.
    const auto fast_set =
        utteranceSet(full ? 32 : 16, full ? 20 : 8, spec.inputDim);
    const auto slow_set =
        utteranceSet(full ? 16 : 6, full ? 12 : 4, spec.inputDim);

    runtime::CompileOptions fft;
    fft.backend = runtime::BackendKind::CirculantFft;
    sweepBackend("CirculantFFT backend", runtime::compile(model, fft),
                 fast_set, workers, 8);

    // Batch-size sweep on the production backend at fixed workers.
    {
        const runtime::CompiledModel compiled =
            runtime::compile(model, fft);
        TextTable table("CirculantFFT: dynamic batch size at 4 "
                        "workers");
        table.setHeader({"maxBatch", "frames/s", "mean batch",
                         "mean queue (us)"});
        for (std::size_t mb : {1u, 4u, 8u, 16u}) {
            const ServedRun run =
                servedThroughput(compiled, fast_set, 4, mb);
            table.addRow(
                {std::to_string(mb),
                 fmtGrouped(
                     static_cast<long long>(run.framesPerSec)),
                 fmtReal(run.stats.meanBatchSize(), 1),
                 fmtReal(run.stats.queueMicros.mean(), 0)});
        }
        table.print(std::cout);
    }

    runtime::CompileOptions dense;
    dense.backend = runtime::BackendKind::Dense;
    sweepBackend("Dense backend", runtime::compile(model, dense),
                 slow_set, workers, 8);

    runtime::CompileOptions fp;
    fp.backend = runtime::BackendKind::FixedPoint;
    fp.fixedPointBits = 12;
    sweepBackend("FixedPoint backend", runtime::compile(model, fp),
                 slow_set, workers, 8);

    if (!full)
        std::cout << "\n(quick mode; set ERNN_FULL=1 for the full "
                     "sweep)\n";
    return 0;
}
