/**
 * @file
 * Serving throughput/latency bench: InferenceServer vs a single
 * direct InferenceSession on the paper-scale 2x1024/block-64 LSTM,
 * swept over worker count and dynamic-batching size for the
 * Dense / CirculantFFT / FixedPoint backends.
 *
 * Quick mode uses a reduced utterance set for the slow (time-domain
 * MAC) backends; ERNN_FULL=1 runs the complete sweep everywhere.
 * Worker scaling is bounded by physical cores — the bench prints
 * std::thread::hardware_concurrency() so results off a many-core
 * host are interpretable.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "base/strings.hh"
#include "base/table.hh"
#include "bench_util.hh"
#include "serve/inference_server.hh"
#include "serve/registry.hh"

using namespace ernn;
using Clock = std::chrono::steady_clock;

namespace
{

/** The acceptance workload: paper-scale 2x1024 LSTM, block-64. */
nn::ModelSpec
servingSpec()
{
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 128;
    spec.numClasses = 39;
    spec.layerSizes = {1024, 1024};
    spec.blockSizes = {64, 64};
    return spec;
}

std::vector<nn::Sequence>
utteranceSet(std::size_t utterances, std::size_t frames,
             std::size_t dim)
{
    Rng rng(29);
    std::vector<nn::Sequence> set(utterances);
    for (auto &utt : set) {
        utt.assign(frames, Vector(dim));
        for (auto &f : utt)
            rng.fillNormal(f, 1.0);
    }
    return set;
}

Real
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<Real>(Clock::now() - t0).count();
}

std::size_t
totalFrames(const std::vector<nn::Sequence> &set)
{
    std::size_t n = 0;
    for (const auto &utt : set)
        n += utt.size();
    return n;
}

/** Single-thread baseline: one session, sequential maxBatch batches. */
Real
directThroughput(const runtime::CompiledModel &model,
                 const std::vector<nn::Sequence> &set,
                 std::size_t max_batch)
{
    runtime::InferenceSession session = model.createSession();
    const auto t0 = Clock::now();
    std::vector<const nn::Sequence *> batch;
    for (std::size_t u = 0; u < set.size();) {
        batch.clear();
        for (; u < set.size() && batch.size() < max_batch; ++u)
            batch.push_back(&set[u]);
        const runtime::BatchResult r = session.run(batch);
        (void)r;
    }
    return static_cast<Real>(totalFrames(set)) / secondsSince(t0);
}

struct ServedRun
{
    Real framesPerSec = 0.0;
    serve::ServerStats stats;
};

ServedRun
servedThroughput(const runtime::CompiledModel &model,
                 const std::vector<nn::Sequence> &set,
                 std::size_t workers, std::size_t max_batch)
{
    serve::ServerOptions opts;
    opts.workers = workers;
    opts.maxBatch = max_batch;
    opts.batchTimeout = std::chrono::microseconds(100);
    serve::InferenceServer server(model, opts);

    const auto t0 = Clock::now();
    std::vector<std::future<serve::InferenceReply>> futures;
    futures.reserve(set.size());
    for (const auto &utt : set)
        futures.push_back(server.submit(utt));
    for (auto &f : futures)
        f.get();
    const Real secs = secondsSince(t0);

    ServedRun run;
    run.framesPerSec = static_cast<Real>(totalFrames(set)) / secs;
    run.stats = server.stats();
    return run;
}

void
sweepBackend(const std::string &name,
             const runtime::CompiledModel &model,
             const std::vector<nn::Sequence> &set,
             const std::vector<std::size_t> &worker_counts,
             std::size_t max_batch)
{
    const Real direct = directThroughput(model, set, max_batch);

    TextTable table(name + ": " + std::to_string(set.size()) +
                    " utterances x " +
                    std::to_string(set.front().size()) +
                    " frames, maxBatch " + std::to_string(max_batch));
    table.setHeader({"mode", "frames/s", "speedup", "mean batch",
                     "mean queue (us)", "mean compute (us)"});
    table.addRow({"direct session (1 thread)", fmtGrouped(
                      static_cast<long long>(direct)),
                  "1.00", "-", "-", "-"});
    for (std::size_t workers : worker_counts) {
        const ServedRun run =
            servedThroughput(model, set, workers, max_batch);
        table.addRow(
            {"server, " + std::to_string(workers) + " workers",
             fmtGrouped(static_cast<long long>(run.framesPerSec)),
             fmtReal(run.framesPerSec / direct, 2),
             fmtReal(run.stats.meanBatchSize(), 1),
             fmtReal(run.stats.queueMicros.mean(), 0),
             fmtReal(run.stats.computeMicros.mean(), 0)});
    }
    table.print(std::cout);
}

// --- Fleet layer: mixed traffic through a ModelRegistry -----------

/** Fleet-bench geometry: the fleet section measures scheduling and
 *  hot-swap latency, not kernel speed, so it runs a reduced LSTM
 *  (2x256, block 32) that keeps both schedulers well off the
 *  compute-bound regime. */
nn::ModelSpec
fleetSpec()
{
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 64;
    spec.numClasses = 16;
    spec.layerSizes = {256, 256};
    spec.blockSizes = {32, 32};
    return spec;
}

std::shared_ptr<const runtime::CompiledModel>
fleetModel(std::uint64_t seed, runtime::BackendKind backend)
{
    nn::StackedRnn model = nn::buildModel(fleetSpec());
    Rng rng(seed);
    model.initXavier(rng);
    runtime::CompileOptions opts;
    opts.backend = backend;
    return runtime::compileShared(model, opts);
}

Real
percentile(std::vector<Real> v, Real p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<Real>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/** Per-model latency samples, filled by every submitter thread. */
struct LatencySamples
{
    std::mutex mu;
    std::vector<Real> queueUs;
    std::vector<Real> computeUs;

    void add(const serve::RequestTiming &t)
    {
        std::lock_guard<std::mutex> lk(mu);
        queueUs.push_back(static_cast<Real>(t.queueMicros));
        computeUs.push_back(static_cast<Real>(t.computeMicros));
    }
};

/**
 * Mixed traffic against a two-model registry: batch submitters and a
 * streaming client per id, with a hot swap of model A mid-run. The
 * table reports per-id p50/p99 queue and compute latency — queue
 * latency is where the scheduler shows (continuous admission refills
 * lanes the moment one retires; hold-open waits for the batch), and
 * the swap must contribute zero rejected submissions.
 */
void
fleetBench(bool continuous, bool full)
{
    const std::size_t requests_per_model = full ? 192 : 64;
    const std::size_t submitters_per_model = 2;

    serve::ServerOptions sopts;
    sopts.workers = 2;
    sopts.maxBatch = 8;
    sopts.queueCapacity = 32;
    sopts.scheduler = continuous ? serve::SchedulerMode::Continuous
                                 : serve::SchedulerMode::HoldOpen;

    serve::ModelRegistry registry;
    registry.publish("asr-a", 1,
                     fleetModel(11, runtime::BackendKind::CirculantFft),
                     sopts);
    registry.publish("asr-b", 1,
                     fleetModel(13, runtime::BackendKind::FixedPoint),
                     sopts);
    const char *ids[2] = {"asr-a", "asr-b"};

    LatencySamples samples[2];
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> rejected{0};
    std::atomic<bool> stop{false};

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;

    // Batch submitters: ragged utterances, blocking admission.
    std::size_t total_frames = 0;
    const std::size_t per_thread =
        requests_per_model / submitters_per_model;
    for (std::size_t m = 0; m < 2; ++m) {
        for (std::size_t s = 0; s < submitters_per_model; ++s) {
            Rng rng(100 * m + s);
            std::vector<nn::Sequence> load(per_thread);
            for (auto &utt : load) {
                utt.assign(4 + rng.index(12),
                           Vector(fleetSpec().inputDim));
                for (auto &f : utt)
                    rng.fillNormal(f, 1.0);
                total_frames += utt.size();
            }
            threads.emplace_back([&, m, load = std::move(load)] {
                for (const auto &utt : load) {
                    std::future<serve::InferenceReply> fut;
                    if (registry.submit(ids[m], utt, fut) !=
                        serve::SubmitStatus::Ok) {
                        rejected.fetch_add(1);
                        continue;
                    }
                    samples[m].add(fut.get().timing);
                    completed.fetch_add(1);
                }
            });
        }
    }

    // One streaming client per id; a hot swap retires its pinned
    // version mid-utterance and it reopens on the new one. Steps are
    // paced at 1 kHz like a real-time feature stream — an unthrottled
    // loop would be an open-loop generator soaking up every spare
    // core and drowning the batch-path comparison.
    std::atomic<std::size_t> streamSteps{0};
    std::atomic<std::size_t> streamReopens{0};
    for (std::size_t m = 0; m < 2; ++m) {
        threads.emplace_back([&, m] {
            Rng rng(50 + m);
            Vector frame(fleetSpec().inputDim);
            serve::ModelStream stream = registry.openStream(ids[m]);
            while (!stop.load()) {
                rng.fillNormal(frame, 1.0);
                try {
                    stream.stepSync(frame);
                    streamSteps.fetch_add(1);
                } catch (const std::exception &) {
                    stream = registry.openStream(ids[m]);
                    streamReopens.fetch_add(1);
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }

    // Swap model A one third of the way through the run; in-flight
    // requests drain on v1 while new submissions land on v2.
    std::thread swapper([&] {
        const std::size_t third = (2 * requests_per_model) / 3;
        while (completed.load() < third && !stop.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        registry.publish(
            "asr-a", 2,
            fleetModel(12, runtime::BackendKind::CirculantFft), sopts);
    });

    for (std::size_t t = 0;
         t < submitters_per_model * 2; ++t)
        threads[t].join();
    stop.store(true);
    swapper.join();
    for (std::size_t t = submitters_per_model * 2;
         t < threads.size(); ++t)
        threads[t].join();
    const Real secs = secondsSince(t0);

    TextTable table(std::string("fleet mixed traffic, ") +
                    (continuous ? "continuous" : "hold-open") +
                    " scheduler: 2 models, " +
                    std::to_string(2 * requests_per_model) +
                    " requests + streams, hot swap mid-run");
    table.setHeader({"model", "version", "requests", "queue p50 (us)",
                     "queue p99 (us)", "compute p50 (us)",
                     "compute p99 (us)"});
    for (std::size_t m = 0; m < 2; ++m) {
        std::lock_guard<std::mutex> lk(samples[m].mu);
        table.addRow(
            {ids[m],
             "v" + std::to_string(registry.activeVersion(ids[m])) +
                 " (gen " +
                 std::to_string(
                     registry.models()[m].generations) + ")",
             std::to_string(samples[m].queueUs.size()),
             fmtReal(percentile(samples[m].queueUs, 0.50), 0),
             fmtReal(percentile(samples[m].queueUs, 0.99), 0),
             fmtReal(percentile(samples[m].computeUs, 0.50), 0),
             fmtReal(percentile(samples[m].computeUs, 0.99), 0)});
    }
    table.print(std::cout);
    std::cout << "  " << fmtGrouped(static_cast<long long>(
                     static_cast<Real>(total_frames) / secs))
              << " frames/s aggregate, " << streamSteps.load()
              << " stream steps (" << streamReopens.load()
              << " reopens across the swap), " << rejected.load()
              << " rejected submissions (must be 0)\n";
    registry.shutdown();
}

} // namespace

int
main()
{
    const bool full = bench::fullMode();
    bench::banner(
        "Serving throughput: InferenceServer vs direct session "
        "(2x1024/block-64 LSTM)");
    std::cout << "hardware threads: "
              << std::thread::hardware_concurrency()
              << " (worker scaling is bounded by physical cores)\n";

    const nn::ModelSpec spec = servingSpec();
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(31);
    model.initXavier(rng);

    const std::vector<std::size_t> workers =
        full ? std::vector<std::size_t>{1, 2, 4, 8}
             : std::vector<std::size_t>{1, 2, 4};

    // The FFT datapath (the paper's production path) gets the full
    // utterance set; the dense / fixed-point reference datapaths do
    // O(rows x cols) MACs per frame and run a reduced set in quick
    // mode.
    const auto fast_set =
        utteranceSet(full ? 32 : 16, full ? 20 : 8, spec.inputDim);
    const auto slow_set =
        utteranceSet(full ? 16 : 6, full ? 12 : 4, spec.inputDim);

    runtime::CompileOptions fft;
    fft.backend = runtime::BackendKind::CirculantFft;
    sweepBackend("CirculantFFT backend", runtime::compile(model, fft),
                 fast_set, workers, 8);

    // Batch-size sweep on the production backend at fixed workers.
    {
        const runtime::CompiledModel compiled =
            runtime::compile(model, fft);
        TextTable table("CirculantFFT: dynamic batch size at 4 "
                        "workers");
        table.setHeader({"maxBatch", "frames/s", "mean batch",
                         "mean queue (us)"});
        for (std::size_t mb : {1u, 4u, 8u, 16u}) {
            const ServedRun run =
                servedThroughput(compiled, fast_set, 4, mb);
            table.addRow(
                {std::to_string(mb),
                 fmtGrouped(
                     static_cast<long long>(run.framesPerSec)),
                 fmtReal(run.stats.meanBatchSize(), 1),
                 fmtReal(run.stats.queueMicros.mean(), 0)});
        }
        table.print(std::cout);
    }

    runtime::CompileOptions dense;
    dense.backend = runtime::BackendKind::Dense;
    sweepBackend("Dense backend", runtime::compile(model, dense),
                 slow_set, workers, 8);

    runtime::CompileOptions fp;
    fp.backend = runtime::BackendKind::FixedPoint;
    fp.fixedPointBits = 12;
    sweepBackend("FixedPoint backend", runtime::compile(model, fp),
                 slow_set, workers, 8);

    bench::banner(
        "Fleet layer: two-model registry, mixed batch+stream "
        "traffic, hot swap mid-bench");
    fleetBench(false, full);
    fleetBench(true, full);

    if (!full)
        std::cout << "\n(quick mode; set ERNN_FULL=1 for the full "
                     "sweep)\n";
    return 0;
}
