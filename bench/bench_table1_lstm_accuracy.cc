/**
 * @file
 * Table I reproduction: PER of LSTM models as a function of layer
 * size and block size.
 *
 * Two parts:
 *  1. the calibrated TIMIT table (the paper's own measurements, via
 *     the oracle, with degradations recomputed from the PERs);
 *  2. a live measured study on the synthetic ASR task: a dense
 *     baseline and ADMM-trained block-circulant models, showing the
 *     same qualitative ordering (block <= 4 nearly free, degradation
 *     grows with block size).
 *
 * Set ERNN_FULL=1 for the extended measured sweep.
 */

#include <iostream>

#include "admm/admm_trainer.hh"
#include "admm/transfer.hh"
#include "base/logging.hh"
#include "bench_util.hh"
#include "runtime/session.hh"
#include "speech/dataset.hh"
#include "speech/per.hh"
#include "speech/timit_oracle.hh"

using namespace ernn;
using namespace ernn::bench;

namespace
{

void
printCalibratedTable(nn::ModelType type, const std::string &title)
{
    TextTable table(title);
    table.setHeader({"ID", "Layer Size", "Block Size", "Peephole",
                     "Projection", "PER (%)", "Degradation (%)"});
    speech::TimitOracle oracle;
    for (const auto &row : speech::TimitOracle::tableRows(type)) {
        const Real base = oracle.baselinePer(type, row.layers);
        table.addRow({std::to_string(row.id),
                      fmtDashList(row.layers),
                      row.blocks.empty() ? "-" : fmtDashList(row.blocks),
                      row.peephole ? "yes" : "no",
                      row.projection ? "512" : "no",
                      fmtReal(row.per, 2),
                      row.blocks.empty() ?
                          "-" : fmtReal(row.per - base, 2)});
    }
    table.print(std::cout);
}

struct MeasuredRow
{
    std::string blocks;
    Real per;
    Real degradation;
};

/** Train (dense or ADMM+project) and measure PER on the synthetic
 *  task. */
Real
measuredPer(nn::ModelType type, std::size_t hidden, std::size_t block,
            const speech::AsrDataset &data)
{
    nn::ModelSpec dense_spec;
    dense_spec.type = type;
    dense_spec.inputDim = data.featureDim;
    dense_spec.numClasses = data.numPhones;
    dense_spec.layerSizes = {hidden};

    nn::StackedRnn model = nn::buildModel(dense_spec);
    Rng rng(1234 + hidden + block);
    model.initXavier(rng);

    nn::TrainConfig tc;
    tc.epochs = fullMode() ? 14 : 8;
    tc.lr = 1e-2;
    nn::Trainer(model, tc).train(data.train);
    if (block <= 1) {
        // Score through the frozen serving artifact, not the
        // training-path forward.
        return speech::evaluatePer(runtime::compile(model),
                                   data.test);
    }

    // ADMM structured training toward the block-circulant format.
    nn::ModelSpec circ_spec = dense_spec;
    circ_spec.blockSizes = {block};
    admm::AdmmConfig acfg;
    acfg.rho = 0.5;
    acfg.rhoGrowth = 1.5;
    acfg.iterations = fullMode() ? 8 : 5;
    acfg.epochsPerIteration = 3;
    acfg.convergenceTol = 0.02;
    acfg.train.lr = 1e-2;
    acfg.train.batchSize = 2;
    admm::AdmmTrainer admm_trainer(model, acfg);
    admm::constrainFromSpec(admm_trainer, model, circ_spec);
    admm_trainer.run(data.train);
    admm_trainer.hardProject();

    nn::StackedRnn compressed = nn::buildModel(circ_spec);
    admm::transferWeights(model, compressed);
    return speech::evaluatePer(runtime::compile(compressed),
                               data.test);
}

void
printMeasuredTable(nn::ModelType type)
{
    speech::AsrDataConfig dcfg;
    dcfg.numPhones = 8;
    dcfg.featureDim = 16;
    dcfg.trainUtterances = fullMode() ? 96 : 40;
    dcfg.testUtterances = 24;
    const auto data = speech::makeSyntheticAsr(dcfg);

    std::vector<std::size_t> hiddens = {32};
    std::vector<std::size_t> blocks = {1, 2, 4, 8};
    if (fullMode()) {
        hiddens = {32, 64};
        blocks = {1, 2, 4, 8, 16};
    }

    TextTable table(
        "Measured on the synthetic ASR task (ADMM-trained "
        "block-circulant " +
        nn::modelTypeName(type) + ", lower PER is better)");
    table.setHeader({"Layer Size", "Block Size", "PER (%)",
                     "Degradation (%)"});
    for (auto hidden : hiddens) {
        Real base_per = 0.0;
        for (auto block : blocks) {
            const Real per = measuredPer(type, hidden, block, data);
            if (block <= 1)
                base_per = per;
            table.addRow({std::to_string(hidden),
                          block <= 1 ? "-" : std::to_string(block),
                          fmtReal(per, 2),
                          block <= 1 ? "-" :
                              fmtReal(per - base_per, 2)});
        }
        table.addSeparator();
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table I: comparison among LSTM based RNN models "
           "(paper-calibrated TIMIT values)");
    printCalibratedTable(nn::ModelType::Lstm,
                         "PERs are the paper's measurements; "
                         "degradations recomputed vs. baselines");
    banner("Table I (live measurement, synthetic ASR substitute)");
    printMeasuredTable(nn::ModelType::Lstm);
    std::cout << "\nObservation (Sec. IV): block size <= 4 is "
                 "essentially free; degradation grows with block "
                 "size and stays small through 8-16.\n";
    return 0;
}
