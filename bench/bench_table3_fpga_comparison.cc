/**
 * @file
 * Table III reproduction: the full FPGA comparison — ESE, C-LSTM,
 * and E-RNN (FFT8/FFT16 x LSTM/GRU) on both platforms. Every cell
 * shows "model (paper)" so the fidelity of the hardware model is
 * visible at a glance; the headline ratios of the paper are printed
 * underneath, computed live from the model.
 */

#include <iostream>

#include "base/logging.hh"
#include "bench_util.hh"
#include "hw/baselines.hh"
#include "speech/timit_oracle.hh"

using namespace ernn;
using namespace ernn::bench;

namespace
{

/** Paper values for one Table III column (KU060 / 7V3 where both
 *  exist; -1 marks cells the paper leaves blank). */
struct PaperColumn
{
    const char *name;
    Real params_m, compression, per_deg;
    Real lat_ku, lat_7v3, fps_ku, fps_7v3;
    Real power_7v3, ee_7v3;
};

const PaperColumn paper_cols[] = {
    {"ESE (KU060)", 0.73, 4.5, 0.30, 57.0, -1, 17544, -1, 41, 428},
    {"C-LSTM FFT8 (7V3)", 0.41, 7.9, 0.32, -1, 16.7, -1, 179687, 22,
     8168},
    {"E-RNN FFT8 LSTM", 0.41, 8.0, 0.14, 13.7, 12.9, 231514, 240389,
     24, 10016},
    {"E-RNN FFT16 LSTM", 0.20, 15.9, 0.31, 7.4, 8.3, 429327, 382510,
     25, 15300},
    {"E-RNN FFT8 GRU", 0.45, 8.0, 0.18, 10.5, 10.5, 284540, 284463,
     22, 12930},
    {"E-RNN FFT16 GRU", 0.23, 15.9, 0.33, 6.7, 6.5, 445167, 464582,
     29, 16020},
};

std::string
grouped(Real v)
{
    return fmtGrouped(static_cast<long long>(v));
}

void
addColumn(TextTable &table, const PaperColumn &p,
          const hw::DesignPoint &ku, const hw::DesignPoint &v7,
          Real per_deg)
{
    table.addRow({p.name,
                  vsPaper(static_cast<Real>(ku.params) / 1e6,
                          p.params_m, 2),
                  vsPaper(ku.compressionRatio, p.compression, 1),
                  std::to_string(ku.weightBits) + "b fixed",
                  vsPaper(per_deg, p.per_deg, 2),
                  p.lat_ku < 0 ? "-" : vsPaper(ku.latencyUs, p.lat_ku),
                  p.lat_7v3 < 0 ? "-" :
                      vsPaper(v7.latencyUs, p.lat_7v3),
                  p.fps_ku < 0 ? "-" :
                      grouped(ku.fps) + " (" + grouped(p.fps_ku) + ")",
                  p.fps_7v3 < 0 ? "-" :
                      grouped(v7.fps) + " (" + grouped(p.fps_7v3) +
                          ")",
                  vsPaper(v7.powerWatts, p.power_7v3, 1),
                  grouped(v7.fpsPerWatt) + " (" + grouped(p.ee_7v3) +
                      ")"});
}

} // namespace

int
main()
{
    setLogQuiet(true);
    banner("Table III: detailed comparison of RNN designs on FPGAs "
           "- every cell is 'model (paper)'");

    speech::TimitOracle oracle;
    auto degradation = [&oracle](nn::ModelSpec spec) {
        // The oracle works on the full network geometry.
        spec.layerSizes = {1024, 1024};
        spec.blockSizes.assign(2, spec.blockSizes.empty() ?
                                      1 : spec.blockSizes[0]);
        if (spec.isDenseBaseline())
            return 0.30; // ESE's published degradation
        return oracle.degradation(spec);
    };

    TextTable table;
    table.setHeader({"Design", "Params top layer (M)", "Compression",
                     "Quant", "PER degr. (%)", "Latency KU060 (us)",
                     "Latency 7V3 (us)", "FPS KU060", "FPS 7V3",
                     "Power 7V3 (W)", "FPS/W 7V3"});

    // ESE: published on KU060 only; reuse its point for both cells.
    const auto ese = hw::eseDesignPoint(paperLstmLayer(1));
    table.addRow({"ESE (KU060)",
                  vsPaper(static_cast<Real>(ese.params) / 1e6, 0.73,
                          2),
                  vsPaper(ese.compressionRatio, 4.5, 1), "12b fixed",
                  vsPaper(0.30, 0.30, 2),
                  vsPaper(ese.latencyUs, 57.0), "-",
                  grouped(ese.fps) + " (17,544)", "-",
                  vsPaper(ese.powerWatts, 41, 0),
                  grouped(ese.fpsPerWatt) + " (428)"});

    // C-LSTM: published on the 7V3.
    const auto clstm = hw::clstmDesignPoint(paperLstmLayer(8));
    table.addRow({"C-LSTM FFT8 (7V3)",
                  vsPaper(static_cast<Real>(clstm.params) / 1e6, 0.41,
                          2),
                  vsPaper(clstm.compressionRatio, 7.9, 1),
                  "16b fixed",
                  vsPaper(0.32, 0.32, 2), "-",
                  vsPaper(clstm.latencyUs, 16.7), "-",
                  grouped(clstm.fps) + " (179,687)",
                  vsPaper(clstm.powerWatts, 22, 1),
                  grouped(clstm.fpsPerWatt) + " (8,168)"});

    // E-RNN rows on both platforms.
    const struct
    {
        std::size_t col;
        nn::ModelSpec spec;
    } rows[] = {
        {2, paperLstmLayer(8)},
        {3, paperLstmLayer(16)},
        {4, paperGruLayer(8)},
        {5, paperGruLayer(16)},
    };
    for (const auto &row : rows) {
        const auto ku = hw::evaluateDesign(row.spec, hw::xcku060());
        const auto v7 = hw::evaluateDesign(row.spec, hw::adm7v3());
        addColumn(table, paper_cols[row.col], ku, v7,
                  degradation(row.spec));
    }
    table.print(std::cout);

    // Resource utilization sub-table (model values).
    TextTable util("Modeled resource utilization (%; paper reports "
                   "54-96% depending on design)");
    util.setHeader({"Design", "Platform", "DSP", "BRAM", "LUT", "FF"});
    for (const auto &row : rows) {
        for (const auto *platform :
             {&hw::xcku060(), &hw::adm7v3()}) {
            const auto d = hw::evaluateDesign(row.spec, *platform);
            util.addRow({paper_cols[row.col].name, platform->name,
                         fmtPercent(d.dspUtil), fmtPercent(d.bramUtil),
                         fmtPercent(d.lutUtil), fmtPercent(d.ffUtil)});
        }
    }
    util.print(std::cout);

    // Headline comparisons, computed live.
    const auto fft8 = hw::evaluateDesign(paperLstmLayer(8),
                                         hw::adm7v3());
    const auto fft16 = hw::evaluateDesign(paperLstmLayer(16),
                                          hw::adm7v3());
    const auto gru16 = hw::evaluateDesign(paperGruLayer(16),
                                          hw::adm7v3());
    std::cout << "\nHeadline ratios (model vs paper):\n"
              << "  E-RNN FFT8  vs ESE:    perf "
              << fmtTimes(fft8.fps / ese.fps) << " (13.2x), energy "
              << fmtTimes(fft8.fpsPerWatt / ese.fpsPerWatt)
              << " (23.4x)\n"
              << "  E-RNN FFT16 vs ESE:    perf "
              << fmtTimes(fft16.fps / ese.fps) << " (24.5x), energy "
              << fmtTimes(fft16.fpsPerWatt / ese.fpsPerWatt)
              << " (35.8x)\n"
              << "  E-RNN GRU16 vs ESE:    energy "
              << fmtTimes(gru16.fpsPerWatt / ese.fpsPerWatt)
              << " (37.4x)\n"
              << "  E-RNN FFT8  vs C-LSTM: perf "
              << fmtTimes(fft8.fps / clstm.fps) << " (1.33x), energy "
              << fmtTimes(fft8.fpsPerWatt / clstm.fpsPerWatt)
              << " (1.22x)\n"
              << "  E-RNN GRU16 vs C-LSTM: energy "
              << fmtTimes(gru16.fpsPerWatt / clstm.fpsPerWatt)
              << " (2.0x)\n";
    return 0;
}
