/**
 * @file
 * Table IV reproduction: the two FPGA platforms, plus the PE
 * capacity each can host per the resource model.
 */

#include <iostream>

#include "bench_util.hh"
#include "hw/resource_model.hh"

using namespace ernn;
using namespace ernn::bench;

int
main()
{
    banner("Table IV: comparison of the two selected FPGA platforms");

    TextTable table;
    table.setHeader({"FPGA Platform", "DSP", "BRAM", "LUT", "FF",
                     "Process"});
    for (const auto *p : hw::allPlatforms()) {
        table.addRow({p->name, fmtGrouped(static_cast<long long>(p->dsp)),
                      fmtGrouped(static_cast<long long>(p->bramBlocks)),
                      fmtGrouped(static_cast<long long>(p->lut)),
                      fmtGrouped(static_cast<long long>(p->ff)),
                      std::to_string(p->processNm) + "nm"});
    }
    table.print(std::cout);

    TextTable pes("Derived PE capacity (resource model, 12-bit)");
    pes.setHeader({"Platform", "PEs @ FFT8", "PEs @ FFT16",
                   "PEs @ FFT32"});
    for (const auto *p : hw::allPlatforms()) {
        pes.addRow({p->name,
                    std::to_string(hw::peCount(*p, 8, 12)),
                    std::to_string(hw::peCount(*p, 16, 12)),
                    std::to_string(hw::peCount(*p, 32, 12))});
    }
    pes.print(std::cout);
    return 0;
}
