/**
 * @file
 * Shared helpers for the paper-reproduction benches: paper-vs-model
 * comparison rows, environment-controlled full sweeps, and common
 * model specs.
 */

#ifndef ERNN_BENCH_BENCH_UTIL_HH
#define ERNN_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "base/strings.hh"
#include "base/table.hh"
#include "nn/model_builder.hh"

namespace ernn::bench
{

/** True when ERNN_FULL=1 requests the complete (slow) sweep. */
inline bool
fullMode()
{
    const char *env = std::getenv("ERNN_FULL");
    return env && std::string(env) == "1";
}

/** "model (paper)" formatted cell, e.g. "13.4 (13.7)". */
inline std::string
vsPaper(Real model, Real paper, int decimals = 1)
{
    return fmtReal(model, decimals) + " (" + fmtReal(paper, decimals) +
           ")";
}

/** The Table III LSTM workload: top layer of LSTM-1024/proj-512. */
inline nn::ModelSpec
paperLstmLayer(std::size_t block)
{
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 153;
    spec.numClasses = 39;
    spec.layerSizes = {1024};
    if (block > 1)
        spec.blockSizes = {block};
    spec.peephole = true;
    spec.projectionSize = 512;
    return spec;
}

/** The Table III GRU workload: top layer of GRU-1024. */
inline nn::ModelSpec
paperGruLayer(std::size_t block)
{
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Gru;
    spec.inputDim = 153;
    spec.numClasses = 39;
    spec.layerSizes = {1024};
    if (block > 1)
        spec.blockSizes = {block};
    return spec;
}

/** Standard bench banner. */
inline void
banner(const std::string &what)
{
    std::cout << "\n================================================"
                 "=============\n"
              << what << "\n"
              << "================================================"
                 "=============\n";
}

} // namespace ernn::bench

#endif // ERNN_BENCH_BENCH_UTIL_HH
