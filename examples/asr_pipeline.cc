/**
 * @file
 * The full E-RNN software pipeline on the synthetic ASR task
 * (TIMIT substitute): dense pretraining -> ADMM structured training
 * -> hard projection -> compressed deployment model -> 12-bit
 * quantization -> PER at every stage -> concurrent multi-utterance
 * serving through an InferenceServer -> FPGA mapping of the
 * paper-scale analogue.
 */

#include <chrono>
#include <future>
#include <iostream>
#include <vector>

#include "admm/admm_trainer.hh"
#include "admm/transfer.hh"
#include "base/logging.hh"
#include "base/strings.hh"
#include "base/table.hh"
#include "hw/accelerator_model.hh"
#include "quant/fixed_point.hh"
#include "runtime/session.hh"
#include "serve/inference_server.hh"
#include "speech/dataset.hh"
#include "speech/per.hh"

using namespace ernn;

int
main()
{
    setLogQuiet(true);

    // --- Data: a seeded synthetic phone-recognition task. ---
    speech::AsrDataConfig dcfg;
    dcfg.numPhones = 8;
    dcfg.featureDim = 16;
    dcfg.trainUtterances = 60;
    dcfg.testUtterances = 20;
    const auto data = speech::makeSyntheticAsr(dcfg);
    std::cout << "synthetic ASR: " << data.train.size()
              << " train / " << data.test.size()
              << " test utterances, " << data.numPhones
              << " phones\n";

    // --- Dense baseline. ---
    nn::ModelSpec dense_spec;
    dense_spec.type = nn::ModelType::Gru;
    dense_spec.inputDim = dcfg.featureDim;
    dense_spec.numClasses = dcfg.numPhones;
    dense_spec.layerSizes = {32};

    nn::StackedRnn dense = nn::buildModel(dense_spec);
    Rng rng(7);
    dense.initXavier(rng);
    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.lr = 1e-2;
    nn::Trainer(dense, tc).train(data.train);
    const Real per_dense = speech::evaluatePer(dense, data.test);

    // --- ADMM structured training to block size 4. ---
    nn::ModelSpec circ_spec = dense_spec;
    circ_spec.blockSizes = {4};
    admm::AdmmConfig acfg;
    acfg.rho = 0.5;
    acfg.rhoGrowth = 1.5;
    acfg.iterations = 8;
    acfg.epochsPerIteration = 3;
    acfg.convergenceTol = 0.02;
    acfg.train.lr = 1e-2;
    acfg.train.batchSize = 2;
    admm::AdmmTrainer admm_trainer(dense, acfg);
    admm::constrainFromSpec(admm_trainer, dense, circ_spec);
    const auto admm_log = admm_trainer.run(data.train);
    admm_trainer.hardProject();

    nn::StackedRnn compressed = nn::buildModel(circ_spec);
    admm::transferWeights(dense, compressed);

    // --- Deployment: freeze the trained model into immutable
    // serving artifacts (train -> compress -> quantize -> deploy).
    // Float serving uses the CirculantFFT backend; the 12-bit
    // artifact uses the FixedPoint backend (quantized weights and
    // values, PWL activation tables — the accelerator's datapath).
    const runtime::CompiledModel serving =
        runtime::compile(compressed);
    const Real per_admm = speech::evaluatePer(serving, data.test);

    runtime::CompileOptions fp;
    fp.backend = runtime::BackendKind::FixedPoint;
    fp.fixedPointBits = 12;
    const runtime::CompiledModel deployed =
        runtime::compile(compressed, fp);
    auto qdata = data.test;
    const auto qreport = quant::quantizeDataset(qdata, 12);
    const Real per_quant = speech::evaluatePer(deployed, qdata);

    TextTable stages("Pipeline stages (phone error rate, lower is "
                     "better)");
    stages.setHeader({"stage", "params", "PER (%)"});
    stages.addRow({"dense baseline",
                   std::to_string(dense.paramCount()),
                   fmtReal(per_dense, 2)});
    stages.addRow({"ADMM + projection (block 4), compiled serving",
                   std::to_string(serving.storedParams()),
                   fmtReal(per_admm, 2)});
    stages.addRow({"12-bit FixedPoint serving artifact",
                   std::to_string(deployed.storedParams()),
                   fmtReal(per_quant, 2)});
    stages.print(std::cout);
    std::cout << "ADMM converged in " << admm_log.log.size()
              << " iterations; feature quantization RMS error "
              << fmtReal(qreport.worstRmsError(), 5) << "\n"
              << "serving artifacts: " << serving.describe()
              << " / " << deployed.describe() << "\n";

    // --- Concurrent serving: the software analogue of the paper's
    // multi-PE utterance overlap. Four workers (one private session
    // each) share the immutable artifact; utterances are coalesced
    // into dynamic batches, and a live stream runs alongside.
    serve::ServerOptions sopts;
    sopts.workers = 4;
    sopts.maxBatch = 8;
    serve::InferenceServer server(serving, sopts);

    const auto serve_t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::InferenceReply>> futures;
    futures.reserve(data.test.size());
    for (const auto &ex : data.test)
        futures.push_back(server.submit(ex.frames));

    // A streaming utterance opened mid-flight, pinned to a worker.
    serve::InferenceServer::Stream live = server.openStream();
    for (const auto &frame : data.test.front().frames)
        live.stepSync(frame);

    std::size_t served_frames = 0;
    for (auto &f : futures)
        served_frames += f.get().logits.size();
    const Real serve_secs =
        std::chrono::duration<Real>(std::chrono::steady_clock::now() -
                                    serve_t0)
            .count();
    const auto sstats = server.stats();
    std::cout << "\nconcurrent serving: " << sstats.requestsCompleted
              << " utterances (" << served_frames << " frames) + "
              << sstats.streamStepsProcessed
              << " live stream frames in " << fmtReal(serve_secs, 3)
              << " s across " << sopts.workers
              << " workers; mean batch "
              << fmtReal(sstats.meanBatchSize(), 1)
              << ", mean queue wait "
              << fmtReal(sstats.queueMicros.mean(), 0) << " us\n";

    // Served results are bit-identical to the serial session path,
    // so the parallel PER reproduces the serial number exactly.
    speech::PerEvalOptions popts;
    popts.workers = 4;
    const Real per_served =
        speech::evaluatePer(serving, data.test, popts);
    std::cout << "server-backed PER " << fmtReal(per_served, 2)
              << " % (serial path: " << fmtReal(per_admm, 2)
              << " %)\n";

    // --- FPGA mapping of the paper-scale analogue. ---
    nn::ModelSpec deploy;
    deploy.type = nn::ModelType::Gru;
    deploy.inputDim = 153;
    deploy.numClasses = 39;
    deploy.layerSizes = {1024};
    deploy.blockSizes = {8};
    const auto design = hw::evaluateDesign(deploy, hw::xcku060());
    std::cout << "\npaper-scale deployment (" << deploy.describe()
              << " on " << design.platformName << "): "
              << fmtReal(design.latencyUs, 1) << " us/frame, "
              << fmtGrouped(static_cast<long long>(design.fps))
              << " FPS, " << fmtReal(design.powerWatts, 1) << " W, "
              << fmtGrouped(static_cast<long long>(design.fpsPerWatt))
              << " FPS/W\n";
    return 0;
}
