/**
 * @file
 * Design-space exploration at paper scale: run the two-phase E-RNN
 * flow (Fig. 2 + Sec. VII) for several accuracy budgets on both
 * FPGA platforms, using the calibrated TIMIT oracle, and print the
 * resulting designs side by side.
 */

#include <chrono>
#include <iostream>

#include "base/logging.hh"
#include "base/strings.hh"
#include "base/table.hh"
#include "ernn/explorer.hh"
#include "runtime/session.hh"

using namespace ernn;

int
main()
{
    setLogQuiet(true);

    nn::ModelSpec baseline;
    baseline.type = nn::ModelType::Lstm;
    baseline.inputDim = 153;
    baseline.numClasses = 39;
    baseline.layerSizes = {1024, 1024};
    baseline.peephole = true;
    baseline.projectionSize = 512;
    std::cout << "baseline: " << baseline.describe()
              << " (the ESE acoustic model)\n";

    TextTable summary("E-RNN designs across accuracy budgets");
    summary.setHeader({"budget (%)", "platform", "final model",
                       "trials", "bits", "latency (us)", "FPS",
                       "FPS/W"});

    for (Real budget : {0.05, 0.15, 0.30}) {
        for (const auto *platform : hw::allPlatforms()) {
            speech::TimitOracle oracle;
            core::Phase1Config p1;
            p1.maxPerDegradation = budget;
            const auto result = core::optimizeDesign(
                oracle, baseline, *platform, p1);
            if (!result.phase1.feasible) {
                summary.addRow({fmtReal(budget, 2), platform->name,
                                "infeasible", "-", "-", "-", "-",
                                "-"});
                continue;
            }
            const auto &d = result.phase2.design;
            summary.addRow(
                {fmtReal(budget, 2), platform->name,
                 result.phase1.finalSpec.describe(),
                 std::to_string(result.phase1.trainingTrials),
                 std::to_string(result.phase2.weightBits),
                 fmtReal(d.latencyUs, 1),
                 fmtGrouped(static_cast<long long>(d.fps)),
                 fmtGrouped(static_cast<long long>(d.fpsPerWatt))});
        }
    }
    summary.print(std::cout);

    // Full report for the paper's setting.
    std::cout << "\nFull report for the 0.30% budget on KU060:\n\n";
    speech::TimitOracle oracle;
    core::Phase1Config p1;
    p1.maxPerDegradation = 0.30;
    const auto result =
        core::optimizeDesign(oracle, baseline, hw::xcku060(), p1);
    std::cout << core::renderReport(result);

    // Software serving check of the chosen design: instantiate the
    // final spec (features padded to the block size, the standard
    // deployment trick), freeze it, and measure batched-session
    // throughput on this host as the CPU-side reference point.
    nn::ModelSpec deploy = result.phase1.finalSpec;
    std::size_t max_block = 1;
    for (std::size_t l = 0; l < deploy.layerSizes.size(); ++l)
        max_block = std::max(max_block, deploy.inputBlockFor(l));
    deploy.inputDim = (deploy.inputDim + max_block - 1) / max_block *
                      max_block;

    nn::StackedRnn model = nn::buildModel(deploy);
    Rng rng(5);
    model.initXavier(rng);
    const runtime::CompiledModel compiled = runtime::compile(model);
    runtime::InferenceSession session = compiled.createSession();

    std::vector<nn::Sequence> batch(2);
    for (auto &utt : batch) {
        utt.assign(16, Vector(deploy.inputDim));
        for (auto &f : utt)
            rng.fillNormal(f, 1.0);
    }
    (void)session.run(batch); // warm caches and workspaces
    const auto t0 = std::chrono::steady_clock::now();
    const auto served = session.run(batch);
    const auto t1 = std::chrono::steady_clock::now();
    std::size_t frames = 0;
    for (const auto &utt : served.predictions)
        frames += utt.size();
    const Real secs = std::chrono::duration<Real>(t1 - t0).count();
    std::cout << "\nsoftware serving check: " << compiled.describe()
              << ", " << frames << " frames in "
              << fmtReal(secs * 1e3, 1) << " ms ("
              << fmtGrouped(static_cast<long long>(frames / secs))
              << " frames/s on this host)\n";
    return 0;
}
