/**
 * @file
 * Design-space exploration at paper scale: run the two-phase E-RNN
 * flow (Fig. 2 + Sec. VII) for several accuracy budgets on both
 * FPGA platforms, using the calibrated TIMIT oracle, and print the
 * resulting designs side by side.
 */

#include <iostream>

#include "base/logging.hh"
#include "base/strings.hh"
#include "base/table.hh"
#include "ernn/explorer.hh"

using namespace ernn;

int
main()
{
    setLogQuiet(true);

    nn::ModelSpec baseline;
    baseline.type = nn::ModelType::Lstm;
    baseline.inputDim = 153;
    baseline.numClasses = 39;
    baseline.layerSizes = {1024, 1024};
    baseline.peephole = true;
    baseline.projectionSize = 512;
    std::cout << "baseline: " << baseline.describe()
              << " (the ESE acoustic model)\n";

    TextTable summary("E-RNN designs across accuracy budgets");
    summary.setHeader({"budget (%)", "platform", "final model",
                       "trials", "bits", "latency (us)", "FPS",
                       "FPS/W"});

    for (Real budget : {0.05, 0.15, 0.30}) {
        for (const auto *platform : hw::allPlatforms()) {
            speech::TimitOracle oracle;
            core::Phase1Config p1;
            p1.maxPerDegradation = budget;
            const auto result = core::optimizeDesign(
                oracle, baseline, *platform, p1);
            if (!result.phase1.feasible) {
                summary.addRow({fmtReal(budget, 2), platform->name,
                                "infeasible", "-", "-", "-", "-",
                                "-"});
                continue;
            }
            const auto &d = result.phase2.design;
            summary.addRow(
                {fmtReal(budget, 2), platform->name,
                 result.phase1.finalSpec.describe(),
                 std::to_string(result.phase1.trainingTrials),
                 std::to_string(result.phase2.weightBits),
                 fmtReal(d.latencyUs, 1),
                 fmtGrouped(static_cast<long long>(d.fps)),
                 fmtGrouped(static_cast<long long>(d.fpsPerWatt))});
        }
    }
    summary.print(std::cout);

    // Full report for the paper's setting.
    std::cout << "\nFull report for the 0.30% budget on KU060:\n\n";
    speech::TimitOracle oracle;
    core::Phase1Config p1;
    p1.maxPerDegradation = 0.30;
    const auto result =
        core::optimizeDesign(oracle, baseline, hw::xcku060(), p1);
    std::cout << core::renderReport(result);
    return 0;
}
