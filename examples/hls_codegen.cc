/**
 * @file
 * HLS design automation (Fig. 13): generate the operation graph of a
 * compressed RNN, schedule it, emit the C-like HLS source to a file,
 * and verify the generated program functionally via the interpreter.
 */

#include <fstream>
#include <iostream>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/strings.hh"
#include "hls/codegen.hh"
#include "hls/interpreter.hh"
#include "hls/scheduler.hh"
#include "hls/weight_store.hh"
#include "runtime/session.hh"

using namespace ernn;

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 16;
    spec.numClasses = 8;
    spec.layerSizes = {32};
    spec.blockSizes = {8};
    spec.peephole = true;
    spec.projectionSize = 16;
    std::cout << "RNN architecture specification: " << spec.describe()
              << "\n";

    // Graph generator.
    const hls::OpGraph graph = hls::buildGraph(spec);
    std::cout << "operation graph: " << graph.size() << " nodes, "
              << graph.count(hls::OpType::MatVec)
              << " matvec templates, critical path complexity "
              << fmtReal(graph.criticalPathComplexity(), 2) << "\n";

    // Operation scheduler.
    const hls::Schedule schedule = hls::scheduleGraph(graph);
    std::cout << "schedule: makespan " << schedule.makespan
              << " cycles, matvec utilization "
              << fmtPercent(schedule.utilization(
                     hls::ResourceClass::MatVec, {}))
              << "%\n";

    // Code generator.
    const std::string code = hls::generateCode(graph, &schedule);
    const std::string path =
        argc > 1 ? argv[1] : "ernn_generated_step.c";
    std::ofstream out(path);
    out << code;
    out.close();
    std::cout << "generated " << code.size() << " bytes of HLS C to "
              << path << "\n";

    // Functional verification through the interpreter, against the
    // serving-path reference (compiled model + inference session).
    nn::StackedRnn model = nn::buildModel(spec);
    Rng rng(99);
    model.initXavier(rng);
    const hls::WeightStore store =
        hls::WeightStore::fromModel(model, spec);
    hls::Interpreter interp(graph, store);

    nn::Sequence xs(8, Vector(16));
    for (auto &x : xs)
        rng.fillNormal(x, 1.0);
    const runtime::CompiledModel compiled = runtime::compile(model);
    runtime::InferenceSession session = compiled.createSession();
    const nn::Sequence expect = session.logits(xs);
    const nn::Sequence got = interp.run(xs);
    Real worst = 0.0;
    for (std::size_t t = 0; t < got.size(); ++t)
        for (std::size_t k = 0; k < got[t].size(); ++k)
            worst = std::max(worst,
                             std::abs(got[t][k] - expect[t][k]));
    std::cout << "interpreted graph vs software model: max |diff| "
              << fmtReal(worst, 12) << "\n";
    return 0;
}
