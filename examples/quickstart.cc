/**
 * @file
 * Quickstart: build a block-circulant LSTM, run FFT-based inference,
 * and inspect the compression — the 30-second tour of the library.
 */

#include <iostream>

#include "base/random.hh"
#include "base/strings.hh"
#include "circulant/block_circulant.hh"
#include "nn/model_builder.hh"

using namespace ernn;

int
main()
{
    // 1. A block-circulant matrix: store one generator row per
    // block, multiply through FFTs (Fig. 4 of the paper).
    circulant::BlockCirculantMatrix w(16, 16, 8);
    Rng rng(1);
    w.initXavier(rng);

    Vector x(16);
    rng.fillNormal(x, 1.0);
    const Vector y_fft = w.matvec(x); // IFFT(conj(FFT(w)) . FFT(x))
    const Vector y_ref = w.toDense().matvec(x);
    std::cout << "block-circulant matvec: " << w.paramCount()
              << " stored params instead of " << w.rows() * w.cols()
              << " (" << fmtTimes(w.compressionRatio(), 0)
              << " compression), max FFT-vs-dense diff "
              << fmtReal(std::abs(y_fft[0] - y_ref[0]), 12) << "\n";

    // 2. A compressed LSTM acoustic model from a declarative spec.
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 16;
    spec.numClasses = 10;
    spec.layerSizes = {64, 64};
    spec.blockSizes = {8, 8};
    spec.peephole = true;
    spec.projectionSize = 32;

    nn::StackedRnn model = nn::buildModel(spec);
    model.initXavier(rng);
    std::cout << "model: " << spec.describe() << " with "
              << model.paramCount() << " stored parameters ("
              << nn::totalDenseParams(spec)
              << " dense-equivalent)\n";

    // 3. Run a 10-frame utterance through it.
    nn::Sequence frames(10, Vector(16));
    for (auto &f : frames)
        rng.fillNormal(f, 1.0);
    const std::vector<int> phones = model.predictFrames(frames);
    std::cout << "predicted phone per frame:";
    for (int p : phones)
        std::cout << " " << p;
    std::cout << "\n";
    return 0;
}
