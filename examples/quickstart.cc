/**
 * @file
 * Quickstart: build a block-circulant LSTM, freeze it into an
 * immutable CompiledModel, serve it through an InferenceSession
 * (batched and streaming), and persist it as a portable artifact —
 * the 30-second tour of the library and of its train-vs-serve API
 * split.
 */

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "base/random.hh"
#include "base/strings.hh"
#include "circulant/block_circulant.hh"
#include "nn/model_builder.hh"
#include "runtime/artifact.hh"
#include "runtime/session.hh"

using namespace ernn;

int
main()
{
    // 1. A block-circulant matrix: store one generator row per
    // block, multiply through FFTs (Fig. 4 of the paper).
    circulant::BlockCirculantMatrix w(16, 16, 8);
    Rng rng(1);
    w.initXavier(rng);

    Vector x(16);
    rng.fillNormal(x, 1.0);
    const Vector y_fft = w.matvec(x); // IFFT(conj(FFT(w)) . FFT(x))
    const Vector y_ref = w.toDense().matvec(x);
    std::cout << "block-circulant matvec: " << w.paramCount()
              << " stored params instead of " << w.rows() * w.cols()
              << " (" << fmtTimes(w.compressionRatio(), 0)
              << " compression), max FFT-vs-dense diff "
              << fmtReal(std::abs(y_fft[0] - y_ref[0]), 12) << "\n";

    // 2. A compressed LSTM acoustic model from a declarative spec.
    // StackedRnn is the *training* surface (forward caches
    // activations for BPTT).
    nn::ModelSpec spec;
    spec.type = nn::ModelType::Lstm;
    spec.inputDim = 16;
    spec.numClasses = 10;
    spec.layerSizes = {64, 64};
    spec.blockSizes = {8, 8};
    spec.peephole = true;
    spec.projectionSize = 32;

    nn::StackedRnn model = nn::buildModel(spec);
    model.initXavier(rng);
    std::cout << "model: " << spec.describe() << " with "
              << model.paramCount() << " stored parameters ("
              << nn::totalDenseParams(spec)
              << " dense-equivalent)\n";

    // 3. Freeze it for serving: per-layer kernels are selected from
    // the backend registry (circulant weights -> the CirculantFFT
    // backend with precomputed generator spectra).
    runtime::CompiledModel compiled = runtime::compile(model);
    std::cout << "frozen:  " << compiled.describe() << ", "
              << compiled.storedParams() << " params; layer-0 kernel "
              << "backend: "
              << compiled.layer(0).kernels()[0]->backendName() << "\n";

    // 4. Batched inference: several utterances, one session, zero
    // steady-state allocation.
    std::vector<nn::Sequence> batch(3);
    for (std::size_t u = 0; u < batch.size(); ++u) {
        batch[u].assign(4 + 3 * u, Vector(16));
        for (auto &f : batch[u])
            rng.fillNormal(f, 1.0);
    }
    runtime::InferenceSession session = compiled.createSession();
    const runtime::BatchResult result = session.run(batch);
    for (std::size_t u = 0; u < batch.size(); ++u) {
        std::cout << "utterance " << u << " phones:";
        for (int p : result.predictions[u])
            std::cout << " " << p;
        std::cout << "\n";
    }

    // 5. Streaming inference: frames arrive one at a time (the
    // paper's real-time ASR setting); state lives in the stream.
    runtime::StreamState stream = session.newStream();
    std::cout << "streamed phones: ";
    for (const Vector &frame : batch[0]) {
        const Vector &logits = session.step(stream, frame);
        std::cout << " " << argmax(logits);
    }
    std::cout << " (" << stream.framesSeen() << " frames)\n";

    // 6. The deployed fixed-point artifact: 12-bit weights/values +
    // PWL activation tables, bit-accurate to the quant:: rounding the
    // accelerator flow uses.
    runtime::CompileOptions fp;
    fp.backend = runtime::BackendKind::FixedPoint;
    runtime::CompiledModel deployed = runtime::compile(model, fp);
    runtime::InferenceSession fp_session = deployed.createSession();
    const std::vector<int> fp_phones =
        fp_session.predictFrames(batch[0]);
    std::size_t agree = 0;
    for (std::size_t t = 0; t < fp_phones.size(); ++t)
        agree += fp_phones[t] == result.predictions[0][t];
    std::cout << deployed.describe() << ": " << agree << "/"
              << fp_phones.size()
              << " frames agree with float serving\n";

    // 7. Persist the deployed model as a portable artifact and load
    // it back — the train-once/deploy-many split as a file. The
    // loaded model serves bit-identically (the `ernn` CLI drives
    // this same path from the shell: train -> compile -> eval).
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "quickstart_model.ernn")
            .string();
    runtime::saveArtifact(deployed, path);
    const runtime::CompiledModel reloaded =
        runtime::loadArtifact(path);
    runtime::InferenceSession art_session = reloaded.createSession();
    const std::vector<int> art_phones =
        art_session.predictFrames(batch[0]);
    std::cout << "artifact round trip ("
              << std::filesystem::file_size(path) << " bytes): "
              << (art_phones == fp_phones ? "bit-identical"
                                          : "MISMATCH")
              << " predictions after save+load\n";
    std::remove(path.c_str());
    return 0;
}
