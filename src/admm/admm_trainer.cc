#include "admm/admm_trainer.hh"

#include <cmath>

#include "base/logging.hh"
#include "nn/gru.hh"
#include "nn/lstm.hh"

namespace ernn::admm
{

using circulant::BlockCirculantMatrix;

AdmmTrainer::AdmmTrainer(nn::StackedRnn &model, const AdmmConfig &cfg)
    : model_(model), cfg_(cfg), rho_(cfg.rho)
{
    ernn_assert(cfg.rho > 0, "ADMM rho must be positive");
    ernn_assert(cfg.iterations > 0, "need at least one iteration");
}

void
AdmmTrainer::constrain(nn::LinearOp &op, std::size_t block_size)
{
    ernn_assert(op.denseWeight() != nullptr,
                "ADMM constrains dense ops (W is unconstrained; "
                "the structure lives in Z)");
    ernn_assert(block_size >= 2, "block size must be >= 2");
    Constraint c;
    c.op = &op;
    c.blockSize = block_size;
    // Z initialized to the projection of the pretrained W
    // ("initialize from pretrained model", Fig. 6).
    c.z = BlockCirculantMatrix::fromDense(*op.denseWeight(),
                                          block_size).toDense();
    c.u = Matrix(op.outDim(), op.inDim());
    constraints_.push_back(std::move(c));
}

void
AdmmTrainer::gradHook(nn::ParamRegistry &)
{
    // Subproblem 1: add rho * (W - Z + U) to the weight gradient.
    for (auto &c : constraints_) {
        const Matrix &w = *c.op->denseWeight();
        Matrix &g = *c.op->denseGrad();
        const std::size_t n = w.size();
        for (std::size_t k = 0; k < n; ++k) {
            g.raw()[k] += rho_ *
                (w.raw()[k] - c.z.raw()[k] + c.u.raw()[k]);
        }
    }
}

void
AdmmTrainer::updateZU()
{
    for (auto &c : constraints_) {
        const Matrix &w = *c.op->denseWeight();
        // Z = Proj(W + U): Euclidean mapping (Eqn. 6).
        Matrix wu = w;
        wu.axpy(1.0, c.u);
        c.z = BlockCirculantMatrix::fromDense(wu,
                                              c.blockSize).toDense();
        // U += W - Z.
        c.u.axpy(1.0, w);
        c.u.axpy(-1.0, c.z);
    }
}

Real
AdmmTrainer::maxRelativeResidual() const
{
    Real worst = 0.0;
    for (const auto &c : constraints_) {
        const Matrix &w = *c.op->denseWeight();
        const Real norm = std::max(w.frobeniusNorm(), 1e-12);
        worst = std::max(worst, w.frobeniusDistance(c.z) / norm);
    }
    return worst;
}

AdmmResult
AdmmTrainer::run(const nn::SequenceDataset &data)
{
    ernn_assert(!constraints_.empty(),
                "no constraints registered; call constrain() first");

    nn::TrainConfig tc = cfg_.train;
    tc.epochs = cfg_.epochsPerIteration;
    // The inner subproblem-1 run is re-entered every ADMM iteration;
    // epoch checkpointing would make iteration k+1 resume past its
    // own epochs and train nothing. Checkpointing an ADMM run is the
    // driver's concern, not the inner trainer's.
    tc.checkpointPath.clear();
    tc.resume = false;
    nn::Trainer trainer(model_, tc);
    trainer.setGradHook(
        [this](nn::ParamRegistry &reg) { gradHook(reg); });

    AdmmResult result;
    for (std::size_t k = 0; k < cfg_.iterations; ++k) {
        const nn::TrainResult tr = trainer.train(data);

        updateZU();

        AdmmIterationLog log;
        log.iteration = k;
        log.trainLoss = tr.finalLoss();
        Real primal = 0.0;
        for (const auto &c : constraints_) {
            primal = std::max(
                primal, c.op->denseWeight()->frobeniusDistance(c.z));
        }
        log.primalResidual = primal;
        log.relativeResidual = maxRelativeResidual();
        result.log.push_back(log);

        if (cfg_.verbose) {
            ernn_inform("ADMM iter " << k << " loss " << log.trainLoss
                        << " rel residual "
                        << log.relativeResidual);
        }
        if (log.relativeResidual < cfg_.convergenceTol) {
            result.converged = true;
            break;
        }
        rho_ *= cfg_.rhoGrowth;
    }
    return result;
}

void
AdmmTrainer::hardProject()
{
    for (auto &c : constraints_) {
        Matrix &w = *c.op->denseWeight();
        w = BlockCirculantMatrix::fromDense(w, c.blockSize).toDense();
    }
}

void
constrainFromSpec(AdmmTrainer &trainer, nn::StackedRnn &model,
                  const nn::ModelSpec &spec)
{
    ernn_assert(model.numLayers() == spec.layerSizes.size(),
                "constrainFromSpec: layer count mismatch");
    for (std::size_t l = 0; l < model.numLayers(); ++l) {
        const std::size_t rec_block = spec.blockFor(l);
        const std::size_t in_block = spec.inputBlockFor(l);
        nn::RnnLayer &layer = model.layer(l);
        if (auto *lstm = dynamic_cast<nn::LstmLayer *>(&layer)) {
            if (in_block >= 2) {
                trainer.constrain(lstm->wix(), in_block);
                trainer.constrain(lstm->wfx(), in_block);
                trainer.constrain(lstm->wcx(), in_block);
                trainer.constrain(lstm->wox(), in_block);
                if (lstm->wym())
                    trainer.constrain(*lstm->wym(), in_block);
            }
            if (rec_block >= 2) {
                trainer.constrain(lstm->wir(), rec_block);
                trainer.constrain(lstm->wfr(), rec_block);
                trainer.constrain(lstm->wcr(), rec_block);
                trainer.constrain(lstm->wor(), rec_block);
            }
        } else if (auto *gru = dynamic_cast<nn::GruLayer *>(&layer)) {
            if (in_block >= 2) {
                trainer.constrain(gru->wzx(), in_block);
                trainer.constrain(gru->wrx(), in_block);
                trainer.constrain(gru->wcx(), in_block);
            }
            if (rec_block >= 2) {
                trainer.constrain(gru->wzc(), rec_block);
                trainer.constrain(gru->wrc(), rec_block);
                trainer.constrain(gru->wcc(), rec_block);
            }
        } else {
            ernn_panic("unknown layer kind " << layer.kindName());
        }
    }
}

} // namespace ernn::admm
