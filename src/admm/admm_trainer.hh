/**
 * @file
 * ADMM-based structured matrix training (Sec. III-B, Figs. 5-6).
 *
 * The block-circulant constraint is handled by decomposing training
 * into two subproblems solved alternately until the weights converge
 * to the structured format:
 *
 *  1. minimize f({W}) + sum_l rho/2 ||W_l - Z_l^k + U_l^k||_F^2 —
 *     ordinary SGD/Adam with a quadratic pull toward the structured
 *     target (implemented as a gradient hook on the base Trainer);
 *  2. Z_l^{k+1} = Proj(W_l^{k+1} + U_l^k) — the closed-form
 *     Euclidean mapping onto the block-circulant set (Eqn. 6);
 *
 * followed by the dual update U_l += W_l - Z_l. Convergence is
 * declared when the worst relative primal residual ||W - Z|| / ||W||
 * falls below the tolerance; hardProject() then snaps the weights
 * onto the constraint set exactly.
 */

#ifndef ERNN_ADMM_ADMM_TRAINER_HH
#define ERNN_ADMM_ADMM_TRAINER_HH

#include <vector>

#include "circulant/block_circulant.hh"
#include "nn/model_builder.hh"
#include "nn/trainer.hh"

namespace ernn::admm
{

/** ADMM hyperparameters. */
struct AdmmConfig
{
    Real rho = 0.5;                   //!< augmented-Lagrangian weight
    /**
     * Continuation schedule: rho is multiplied by this factor after
     * every outer iteration (1.0 disables). Growing rho is the
     * standard way to force the primal residual to zero once the
     * loss has adapted to the structure.
     */
    Real rhoGrowth = 1.3;
    std::size_t iterations = 8;       //!< outer ADMM iterations
    std::size_t epochsPerIteration = 3;
    Real convergenceTol = 0.05;       //!< relative primal residual
    /**
     * Subproblem-1 settings. The datapath/threads/batchLanes fields
     * flow straight through to the inner nn::Trainer, so ADMM Phase
     * I/II run on the batched multicore datapath by default; the
     * gradient hook fires on the master registry after the fixed-
     * order group reduction, so ADMM keeps the trainer's thread-
     * count determinism. Checkpoint fields are ignored (see run()).
     */
    nn::TrainConfig train;
    bool verbose = false;
};

/** Per-iteration convergence record (the Fig. 6 trace). */
struct AdmmIterationLog
{
    std::size_t iteration = 0;
    Real trainLoss = 0.0;
    Real primalResidual = 0.0;   //!< max ||W - Z||_F over constraints
    Real relativeResidual = 0.0; //!< max ||W - Z|| / ||W||
};

/** Aggregate ADMM run result. */
struct AdmmResult
{
    std::vector<AdmmIterationLog> log;
    bool converged = false;
};

class AdmmTrainer
{
  public:
    AdmmTrainer(nn::StackedRnn &model, const AdmmConfig &cfg);

    /**
     * Constrain a dense weight matrix to the block-circulant set
     * with the given block size. The op must be dense (ADMM trains
     * the unconstrained W; the structure lives in Z).
     */
    void constrain(nn::LinearOp &op, std::size_t block_size);

    /** Number of constrained matrices. */
    std::size_t constraintCount() const { return constraints_.size(); }

    /** Run the ADMM iterations on the dataset. */
    AdmmResult run(const nn::SequenceDataset &data);

    /** Snap every constrained W onto its structured format. */
    void hardProject();

    /** Worst relative primal residual across constraints. */
    Real maxRelativeResidual() const;

  private:
    struct Constraint
    {
        nn::LinearOp *op;
        std::size_t blockSize;
        Matrix z; //!< dense materialization of the structured target
        Matrix u; //!< scaled dual variable
    };

    void gradHook(nn::ParamRegistry &reg);
    void updateZU();

    nn::StackedRnn &model_;
    AdmmConfig cfg_;
    Real rho_;
    std::vector<Constraint> constraints_;
};

/**
 * Constrain every weight matrix of @p model to the block sizes the
 * target @p spec prescribes (recurrent matrices at blockFor(l),
 * input/projection matrices at inputBlockFor(l)). The model must
 * have been built dense from the same layer geometry.
 */
void constrainFromSpec(AdmmTrainer &trainer, nn::StackedRnn &model,
                       const nn::ModelSpec &spec);

} // namespace ernn::admm

#endif // ERNN_ADMM_ADMM_TRAINER_HH
