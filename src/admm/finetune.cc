#include "admm/finetune.hh"

#include "nn/loss.hh"

namespace ernn::admm
{

namespace
{

Real
datasetLoss(nn::StackedRnn &model, const nn::SequenceDataset &data)
{
    const nn::EvalResult eval = nn::Trainer::evaluate(model, data);
    return eval.crossEntropy;
}

} // namespace

FinetuneResult
finetuneCirculant(nn::StackedRnn &compressed,
                  const nn::SequenceDataset &data,
                  const nn::TrainConfig &cfg)
{
    FinetuneResult result;
    result.lossBefore = datasetLoss(compressed, data);
    nn::Trainer trainer(compressed, cfg);
    result.training = trainer.train(data);
    result.lossAfter = datasetLoss(compressed, data);
    return result;
}

} // namespace ernn::admm
