/**
 * @file
 * Post-projection fine-tuning: the final step of Fig. 6 ("Retrain to
 * obtain the block circulant model"). After ADMM converges and the
 * weights are hard-projected, the compressed model is retrained
 * directly in its circulant parameterization — gradients accumulate
 * on the generators (one vector per block), which is exactly how the
 * paper describes training in the block-circulant format.
 */

#ifndef ERNN_ADMM_FINETUNE_HH
#define ERNN_ADMM_FINETUNE_HH

#include "nn/trainer.hh"

namespace ernn::admm
{

/** Fine-tuning outcome. */
struct FinetuneResult
{
    Real lossBefore = 0.0;
    Real lossAfter = 0.0;
    nn::TrainResult training;
};

/**
 * Retrain a compressed (block-circulant) model on the task for a few
 * epochs. The model trains through its generator parameters; the
 * structure is preserved by construction.
 */
FinetuneResult finetuneCirculant(nn::StackedRnn &compressed,
                                 const nn::SequenceDataset &data,
                                 const nn::TrainConfig &cfg);

} // namespace ernn::admm

#endif // ERNN_ADMM_FINETUNE_HH
