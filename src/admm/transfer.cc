#include "admm/transfer.hh"

#include "base/logging.hh"
#include "circulant/block_circulant.hh"
#include "nn/gru.hh"
#include "nn/lstm.hh"

namespace ernn::admm
{

namespace
{

/** Project/copy one weight matrix across representations. */
void
copyOp(nn::LinearOp &src, nn::LinearOp &dst)
{
    ernn_assert(src.inDim() == dst.inDim() &&
                src.outDim() == dst.outDim(),
                "transfer: op shape mismatch");
    const Matrix dense = src.denseWeight() ?
        *src.denseWeight() : src.circulantWeight()->toDense();
    if (dst.denseWeight()) {
        *dst.denseWeight() = dense;
    } else {
        *dst.circulantWeight() =
            circulant::BlockCirculantMatrix::fromDense(
                dense, dst.blockSize());
        dst.circulantWeight()->invalidateSpectra();
    }
}

} // namespace

void
transferWeights(nn::StackedRnn &src, nn::StackedRnn &dst)
{
    ernn_assert(src.numLayers() == dst.numLayers(),
                "transfer: layer count mismatch");

    for (std::size_t l = 0; l < src.numLayers(); ++l) {
        nn::RnnLayer &a = src.layer(l);
        nn::RnnLayer &b = dst.layer(l);
        ernn_assert(a.kindName() == b.kindName(),
                    "transfer: layer kind mismatch at " << l);
        if (auto *la = dynamic_cast<nn::LstmLayer *>(&a)) {
            auto *lb = dynamic_cast<nn::LstmLayer *>(&b);
            copyOp(la->wix(), lb->wix());
            copyOp(la->wfx(), lb->wfx());
            copyOp(la->wcx(), lb->wcx());
            copyOp(la->wox(), lb->wox());
            copyOp(la->wir(), lb->wir());
            copyOp(la->wfr(), lb->wfr());
            copyOp(la->wcr(), lb->wcr());
            copyOp(la->wor(), lb->wor());
            if (la->wym()) {
                ernn_assert(lb->wym(), "transfer: projection mismatch");
                copyOp(*la->wym(), *lb->wym());
            }
        } else if (auto *ga = dynamic_cast<nn::GruLayer *>(&a)) {
            auto *gb = dynamic_cast<nn::GruLayer *>(&b);
            copyOp(ga->wzx(), gb->wzx());
            copyOp(ga->wrx(), gb->wrx());
            copyOp(ga->wcx(), gb->wcx());
            copyOp(ga->wzc(), gb->wzc());
            copyOp(ga->wrc(), gb->wrc());
            copyOp(ga->wcc(), gb->wcc());
        } else {
            ernn_panic("transfer: unknown layer kind");
        }
    }

    // Biases, peepholes, and the classifier transfer verbatim via
    // name-matched equal-size registry views. Weight views whose
    // sizes differ across representations were handled above.
    nn::ParamRegistry &ra = src.params();
    nn::ParamRegistry &rb = dst.params();
    for (auto &vb : rb.views()) {
        for (const auto &va : ra.views()) {
            if (va.name == vb.name && va.size == vb.size) {
                std::copy(va.data, va.data + va.size, vb.data);
                break;
            }
        }
    }
    rb.notifyUpdated();
}

} // namespace ernn::admm
