/**
 * @file
 * Weight transfer between model representations: after ADMM training
 * and hard projection, the dense model's (now circulant-valued)
 * weights are moved into a compressed model built from the target
 * spec — the deployable artifact of Phase I.
 */

#ifndef ERNN_ADMM_TRANSFER_HH
#define ERNN_ADMM_TRANSFER_HH

#include "nn/rnn.hh"

namespace ernn::admm
{

/**
 * Copy all weights from @p src into @p dst.
 *
 * The two models must share layer geometry (types and sizes). Weight
 * matrices are projected onto the destination's representation
 * (dense -> circulant uses the Euclidean mapping, which is exact
 * when the source weights are already circulant-valued); biases,
 * peepholes, and the classifier transfer verbatim.
 */
void transferWeights(nn::StackedRnn &src, nn::StackedRnn &dst);

} // namespace ernn::admm

#endif // ERNN_ADMM_TRANSFER_HH
