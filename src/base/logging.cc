#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace ernn
{

namespace
{

std::atomic<std::size_t> warn_counter{0};
std::atomic<bool> quiet{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

namespace detail
{

std::string
location(const char *file, int line)
{
    return std::string(file) + ":" + std::to_string(line);
}

void
log(LogLevel level, const std::string &what)
{
    if (level == LogLevel::Warn)
        warn_counter.fetch_add(1, std::memory_order_relaxed);
    if (quiet.load(std::memory_order_relaxed))
        return;
    std::cerr << levelName(level) << ": " << what << "\n";
}

void
logAndDie(LogLevel level, const std::string &where, const std::string &what)
{
    std::cerr << levelName(level) << ": " << what << " @ " << where << "\n";
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

std::size_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
resetWarnCount()
{
    warn_counter.store(0, std::memory_order_relaxed);
}

void
setLogQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet.load(std::memory_order_relaxed);
}

} // namespace ernn
