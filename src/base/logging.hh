/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (library bugs): it
 * aborts. fatal() is for unrecoverable user errors (bad configuration,
 * impossible design constraints): it exits with an error code. warn()
 * and inform() report conditions without stopping execution.
 */

#ifndef ERNN_BASE_LOGGING_HH
#define ERNN_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace ernn
{

/** Severity levels understood by the logging backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail
{

/** Emit a formatted log record; Fatal exits, Panic aborts. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &where,
                            const std::string &what);

/** Emit a non-fatal log record to stderr. */
void log(LogLevel level, const std::string &what);

/** Build a "file:line" location string. */
std::string location(const char *file, int line);

} // namespace detail

/** Number of warnings emitted so far (useful in tests). */
std::size_t warnCount();

/** Reset the warning counter (useful in tests). */
void resetWarnCount();

/**
 * Enable or disable inform()/warn() output. Benches that print paper
 * tables disable chatter to keep their stdout machine-comparable.
 */
void setLogQuiet(bool quiet);

/** @return whether chatty logging is currently suppressed. */
bool logQuiet();

} // namespace ernn

/** Report an internal library bug and abort. */
#define ernn_panic(msg)                                                     \
    do {                                                                    \
        std::ostringstream ernn_ss_;                                        \
        ernn_ss_ << msg;                                                    \
        ::ernn::detail::logAndDie(::ernn::LogLevel::Panic,                  \
            ::ernn::detail::location(__FILE__, __LINE__), ernn_ss_.str()); \
    } while (0)

/** Report an unrecoverable user/configuration error and exit(1). */
#define ernn_fatal(msg)                                                     \
    do {                                                                    \
        std::ostringstream ernn_ss_;                                        \
        ernn_ss_ << msg;                                                    \
        ::ernn::detail::logAndDie(::ernn::LogLevel::Fatal,                  \
            ::ernn::detail::location(__FILE__, __LINE__), ernn_ss_.str()); \
    } while (0)

/** Report a suspicious-but-survivable condition. */
#define ernn_warn(msg)                                                      \
    do {                                                                    \
        std::ostringstream ernn_ss_;                                        \
        ernn_ss_ << msg;                                                    \
        ::ernn::detail::log(::ernn::LogLevel::Warn, ernn_ss_.str());        \
    } while (0)

/** Report normal operating status. */
#define ernn_inform(msg)                                                    \
    do {                                                                    \
        std::ostringstream ernn_ss_;                                        \
        ernn_ss_ << msg;                                                    \
        ::ernn::detail::log(::ernn::LogLevel::Inform, ernn_ss_.str());      \
    } while (0)

/** panic() unless the given invariant holds. */
#define ernn_assert(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ernn_panic("assertion '" #cond "' failed: " << msg);            \
        }                                                                   \
    } while (0)

#endif // ERNN_BASE_LOGGING_HH
