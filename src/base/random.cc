#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace ernn
{

namespace
{

/** splitmix64: seed expander recommended by the xoshiro authors. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : hasSpare_(false), spare_(0)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Real
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<Real>(nextU64() >> 11) * 0x1.0p-53;
}

Real
Rng::uniform(Real lo, Real hi)
{
    return lo + (hi - lo) * uniform();
}

std::size_t
Rng::index(std::size_t n)
{
    ernn_assert(n > 0, "index() requires a non-empty range");
    return static_cast<std::size_t>(uniform() * static_cast<Real>(n)) % n;
}

Real
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    Real u1 = 0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const Real u2 = uniform();
    const Real mag = std::sqrt(-2.0 * std::log(u1));
    const Real two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

Real
Rng::normal(Real mean, Real stddev)
{
    return mean + stddev * normal();
}

void
Rng::fillNormal(std::vector<Real> &buf, Real stddev)
{
    for (auto &v : buf)
        v = normal(0.0, stddev);
}

void
Rng::fillUniform(std::vector<Real> &buf, Real bound)
{
    for (auto &v : buf)
        v = uniform(-bound, bound);
}

void
Rng::shuffle(std::vector<std::size_t> &idx)
{
    for (std::size_t i = idx.size(); i > 1; --i)
        std::swap(idx[i - 1], idx[index(i)]);
}

Rng
Rng::fork()
{
    return Rng(nextU64());
}

RngState
Rng::saveState() const
{
    RngState st;
    for (std::size_t i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.hasSpare = hasSpare_;
    st.spare = spare_;
    return st;
}

void
Rng::restoreState(const RngState &state)
{
    for (std::size_t i = 0; i < 4; ++i)
        s_[i] = state.s[i];
    hasSpare_ = state.hasSpare;
    spare_ = state.spare;
}

} // namespace ernn
