/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in the library (weight init, dataset
 * synthesis, training shuffles) draws from an explicitly seeded Rng so
 * that experiments and tests are bit-reproducible across runs.
 */

#ifndef ERNN_BASE_RANDOM_HH
#define ERNN_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace ernn
{

/**
 * Complete serialized state of an Rng: the xoshiro256** core plus the
 * Box-Muller spare cache. Restoring it resumes the stream exactly
 * where it was captured — the training checkpoint persists one of
 * these so a resumed run shuffles identically to an uninterrupted one.
 */
struct RngState
{
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool hasSpare = false;
    Real spare = 0.0;
};

/**
 * Small, fast, seedable PRNG (xoshiro256** core).
 *
 * We avoid std::mt19937_64 + std::normal_distribution because their
 * output sequences are not guaranteed identical across standard
 * library implementations; this generator is fully self-contained.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** @return the next raw 64-bit value. */
    std::uint64_t nextU64();

    /** @return uniform Real in [0, 1). */
    Real uniform();

    /** @return uniform Real in [lo, hi). */
    Real uniform(Real lo, Real hi);

    /** @return uniform integer in [0, n). Requires n > 0. */
    std::size_t index(std::size_t n);

    /** @return a standard normal sample (Box-Muller, cached pair). */
    Real normal();

    /** @return normal sample with the given mean and stddev. */
    Real normal(Real mean, Real stddev);

    /** Fill a buffer with N(0, stddev) samples. */
    void fillNormal(std::vector<Real> &buf, Real stddev);

    /** Fill a buffer with U(-bound, bound) samples. */
    void fillUniform(std::vector<Real> &buf, Real bound);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &idx);

    /** Derive an independent child stream (for per-component seeding). */
    Rng fork();

    /** Capture the complete generator state. */
    RngState saveState() const;

    /** Resume the stream exactly where @p state was captured. */
    void restoreState(const RngState &state);

  private:
    std::uint64_t s_[4];
    bool hasSpare_;
    Real spare_;
};

} // namespace ernn

#endif // ERNN_BASE_RANDOM_HH
