#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ernn
{

void
RunningStat::add(Real x)
{
    ++n_;
    sum_ += x;
    const Real delta = x - mean_;
    mean_ += delta / static_cast<Real>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const Real delta = other.mean_ - mean_;
    const std::size_t n = n_ + other.n_;
    const Real na = static_cast<Real>(n_);
    const Real nb = static_cast<Real>(other.n_);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<Real>(n);
    mean_ = (na * mean_ + nb * other.mean_) / static_cast<Real>(n);
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = n;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Real
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<Real>(n_ - 1);
}

Real
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Ema::Ema(Real decay)
    : decay_(decay)
{
    ernn_assert(decay > 0.0 && decay < 1.0, "EMA decay must be in (0,1)");
}

void
Ema::add(Real x)
{
    if (empty_) {
        value_ = x;
        empty_ = false;
    } else {
        value_ = decay_ * value_ + (1.0 - decay_) * x;
    }
}

Histogram::Histogram(Real lo, Real hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    ernn_assert(hi > lo, "histogram range must be non-empty");
    ernn_assert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(Real x)
{
    const Real t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<long>(t * static_cast<Real>(bins_.size()));
    bin = std::clamp<long>(bin, 0, static_cast<long>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(bin)];
    ++total_;
}

std::string
Histogram::sparkline() const
{
    static const char levels[] = " .:-=+*#%@";
    std::size_t peak = 0;
    for (auto b : bins_)
        peak = std::max(peak, b);
    std::string out;
    out.reserve(bins_.size());
    for (auto b : bins_) {
        const std::size_t idx =
            peak ? (b * 9 + peak - 1) / peak : 0;
        out.push_back(levels[std::min<std::size_t>(idx, 9)]);
    }
    return out;
}

} // namespace ernn
