/**
 * @file
 * Lightweight statistics accumulators used by trainers, benches, and
 * the hardware model for reporting.
 */

#ifndef ERNN_BASE_STATS_HH
#define ERNN_BASE_STATS_HH

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ernn
{

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Fold one sample into the accumulator. */
    void add(Real x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Drop all samples. */
    void reset();

    std::size_t count() const { return n_; }
    Real mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    Real variance() const;

    /** Sample standard deviation. */
    Real stddev() const;

    Real min() const { return n_ ? min_ : 0.0; }
    Real max() const { return n_ ? max_ : 0.0; }
    Real sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    Real mean_ = 0.0;
    Real m2_ = 0.0;
    Real sum_ = 0.0;
    Real min_ = std::numeric_limits<Real>::infinity();
    Real max_ = -std::numeric_limits<Real>::infinity();
};

/**
 * Exponential moving average, used for smoothed training-loss
 * reporting.
 */
class Ema
{
  public:
    /** @param decay smoothing factor in (0, 1); higher = smoother. */
    explicit Ema(Real decay = 0.98);

    /** Fold a sample; the first sample initializes the average. */
    void add(Real x);

    Real value() const { return value_; }
    bool empty() const { return empty_; }

  private:
    Real decay_;
    Real value_ = 0.0;
    bool empty_ = true;
};

/**
 * Fixed-bin histogram over a closed range; out-of-range samples clamp
 * to the edge bins.
 */
class Histogram
{
  public:
    Histogram(Real lo, Real hi, std::size_t bins);

    void add(Real x);
    std::size_t count() const { return total_; }
    const std::vector<std::size_t> &bins() const { return bins_; }

    /** Render a compact one-line ASCII sparkline of the histogram. */
    std::string sparkline() const;

  private:
    Real lo_, hi_;
    std::vector<std::size_t> bins_;
    std::size_t total_ = 0;
};

} // namespace ernn

#endif // ERNN_BASE_STATS_HH
