#include "base/strings.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/logging.hh"

namespace ernn
{

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::size_t
parseUnsigned(const std::string &s, const std::string &what)
{
    if (s.empty())
        ernn_fatal(what << ": empty value where a non-negative "
                   "integer was expected");
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            ernn_fatal(what << ": bad value '" << s
                       << "' (expected a non-negative integer)");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || !end || *end != '\0' ||
        v != static_cast<unsigned long long>(
                 static_cast<std::size_t>(v)))
        ernn_fatal(what << ": value '" << s << "' is out of range");
    return static_cast<std::size_t>(v);
}

std::vector<std::size_t>
parseUnsignedList(const std::string &s, const std::string &what)
{
    std::vector<std::size_t> out;
    if (s.empty())
        return out;
    for (const std::string &tok : split(s, ','))
        out.push_back(parseUnsigned(tok, what));
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
fmtReal(Real v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtGrouped(long long v)
{
    const bool neg = v < 0;
    unsigned long long u = neg ?
        static_cast<unsigned long long>(-(v + 1)) + 1ull :
        static_cast<unsigned long long>(v);
    std::string digits = std::to_string(u);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (neg)
        out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

std::string
fmtTimes(Real v, int decimals)
{
    return fmtReal(v, decimals) + "x";
}

std::string
fmtPercent(Real fraction, int decimals)
{
    return fmtReal(fraction * 100.0, decimals);
}

std::string
fmtBytes(double bytes)
{
    if (bytes >= 1024.0 * 1024.0)
        return fmtReal(bytes / (1024.0 * 1024.0), 2) + " MB";
    if (bytes >= 1024.0)
        return fmtReal(bytes / 1024.0, 1) + " KB";
    return fmtReal(bytes, 0) + " B";
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
fmtDashList(const std::vector<std::size_t> &vals)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < vals.size(); ++i) {
        if (i)
            os << "-";
        os << vals[i];
    }
    return os.str();
}

} // namespace ernn
