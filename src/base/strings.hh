/**
 * @file
 * Small string helpers shared by the table printer, the HLS code
 * generator, and the benches.
 */

#ifndef ERNN_BASE_STRINGS_HH
#define ERNN_BASE_STRINGS_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace ernn
{

/** Split a string on a single-character delimiter (keeps empties). */
std::vector<std::string> split(const std::string &s, char delim);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Trim ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/**
 * Parse a non-negative decimal integer. Fatal — naming @p what — on
 * empty input, sign characters, trailing garbage, or overflow, so a
 * value like "-8" can never wrap around to a huge count.
 */
std::size_t parseUnsigned(const std::string &s,
                          const std::string &what);

/** Parse a comma-separated list of non-negative integers (empty
 *  input yields an empty list); fatal on any malformed element. */
std::vector<std::size_t> parseUnsignedList(const std::string &s,
                                           const std::string &what);

/** @return true when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Format a Real with the given number of decimals. */
std::string fmtReal(Real v, int decimals = 2);

/**
 * Format a count with thousands separators, e.g. 179687 -> "179,687",
 * matching the paper's table style.
 */
std::string fmtGrouped(long long v);

/** Format a ratio like "37.4x". */
std::string fmtTimes(Real v, int decimals = 1);

/** Format a percentage like "87.7". */
std::string fmtPercent(Real fraction, int decimals = 1);

/** Format a byte count in human units (KB/MB). */
std::string fmtBytes(double bytes);

/** Left/right pad a string with spaces to the given width. */
std::string padLeft(const std::string &s, std::size_t width);
std::string padRight(const std::string &s, std::size_t width);

/** Render "256-256-256" style layer/block configuration strings. */
std::string fmtDashList(const std::vector<std::size_t> &vals);

} // namespace ernn

#endif // ERNN_BASE_STRINGS_HH
