/**
 * @file
 * Compile-time-checked synchronization primitives: Clang
 * -Wthread-safety capability analysis wired through drop-in wrappers
 * for the std mutex types.
 *
 * The E-RNN paper's stance is that correctness guarantees belong at
 * design time, not in after-the-fact measurement (block-circulant
 * structure is proven, not sampled). This header applies the same
 * philosophy to the serving stack's locking discipline: every lock
 * contract that used to live in a doc comment ("guarded by mu_",
 * "call with the entry lock held") becomes a machine-checked
 * attribute, so a lock-discipline regression is a build failure under
 * `clang++ -Werror=thread-safety`, not a soak-test lottery win.
 *
 * Usage:
 *  - declare lock members as base::Mutex / base::SharedMutex;
 *  - annotate every field a lock protects with ERNN_GUARDED_BY(mu_);
 *  - annotate private methods that assume a held lock with
 *    ERNN_REQUIRES(mu_) (exclusive) or ERNN_REQUIRES_SHARED(mu_);
 *  - take locks through the scoped guards (MutexLock / UniqueLock /
 *    ReaderLock / WriterLock) — never bare lock()/unlock() pairs;
 *  - condition waits go through base::CondVar, which operates on a
 *    relockable UniqueLock. Write predicate waits as explicit loops
 *    (`while (!pred()) cv.wait(lk);`) so the analysis sees the
 *    guarded predicate reads in a context that provably holds the
 *    lock — a lambda predicate would be analyzed as a separate
 *    function without the capability.
 *
 * Everything is a zero-overhead veneer: same footprint as the std
 * type (enforced by static_asserts in tests/test_sync.cc), all
 * methods inline, and a native() escape hatch exposes the underlying
 * std object for the rare interop case (tag such uses with a
 * `// lint: native-sync(<why>)` waiver — tools/ernn_lint.py flags
 * naked std synchronization outside src/base/).
 *
 * On GCC (and anything else without the capability attributes) every
 * macro expands to nothing and the wrappers are plain forwarding
 * shims, so the default build is unchanged; the clang CI leg is where
 * the analysis runs with -Werror=thread-safety.
 */

#ifndef ERNN_BASE_SYNC_HH
#define ERNN_BASE_SYNC_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "base/logging.hh"

// --- Capability attribute macros ---------------------------------------
//
// Thin spellings of Clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Only Clang
// defines them; elsewhere they vanish.

#if defined(__clang__) && !defined(SWIG)
#define ERNN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ERNN_THREAD_ANNOTATION_(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability (argument names its kind). */
#define ERNN_CAPABILITY(x) ERNN_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define ERNN_SCOPED_CAPABILITY ERNN_THREAD_ANNOTATION_(scoped_lockable)

/** Field may only be touched while holding the named capability. */
#define ERNN_GUARDED_BY(x) ERNN_THREAD_ANNOTATION_(guarded_by(x))

/** Pointee may only be touched while holding the named capability. */
#define ERNN_PT_GUARDED_BY(x) ERNN_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Caller must hold the capability exclusively. */
#define ERNN_REQUIRES(...) \
    ERNN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared. */
#define ERNN_REQUIRES_SHARED(...) \
    ERNN_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability exclusively (holds on return). */
#define ERNN_ACQUIRE(...) \
    ERNN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared. */
#define ERNN_ACQUIRE_SHARED(...) \
    ERNN_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/** Function releases the (exclusively held) capability. */
#define ERNN_RELEASE(...) \
    ERNN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function releases the shared-held capability. */
#define ERNN_RELEASE_SHARED(...) \
    ERNN_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/** Function releases a capability held either way (scoped guards). */
#define ERNN_RELEASE_GENERIC(...) \
    ERNN_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/** Function acquires exclusively iff it returns the given value. */
#define ERNN_TRY_ACQUIRE(...) \
    ERNN_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Function acquires shared iff it returns the given value. */
#define ERNN_TRY_ACQUIRE_SHARED(...) \
    ERNN_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (self-deadlock guard). */
#define ERNN_EXCLUDES(...) \
    ERNN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define ERNN_RETURN_CAPABILITY(x) \
    ERNN_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Escape hatch: skip analysis of one function. Reserved for code
 * whose synchronization is real but inexpressible (e.g. adopting a
 * native handle inside base::CondVar); every use outside base/ needs
 * a comment defending it, per the ARCHITECTURE.md waiver policy.
 */
#define ERNN_NO_THREAD_SAFETY_ANALYSIS \
    ERNN_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ernn::base
{

/**
 * Annotated drop-in for std::mutex. Same footprint, all calls
 * inline; prefer the MutexLock / UniqueLock guards over calling
 * lock()/unlock() directly.
 */
class ERNN_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ERNN_ACQUIRE() { mu_.lock(); }
    void unlock() ERNN_RELEASE() { mu_.unlock(); }
    bool try_lock() ERNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** The wrapped std::mutex, for interop the analysis cannot see
     *  (tag call sites with a `// lint: native-sync(...)` waiver). */
    std::mutex &native() ERNN_RETURN_CAPABILITY(this) { return mu_; }

  private:
    std::mutex mu_;
};

/**
 * Annotated drop-in for std::shared_mutex: exclusive writers, shared
 * readers. Take it through WriterLock / ReaderLock.
 */
class ERNN_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;

    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() ERNN_ACQUIRE() { mu_.lock(); }
    void unlock() ERNN_RELEASE() { mu_.unlock(); }
    bool try_lock() ERNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    void lock_shared() ERNN_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() ERNN_RELEASE_SHARED() { mu_.unlock_shared(); }
    bool try_lock_shared() ERNN_TRY_ACQUIRE_SHARED(true)
    {
        return mu_.try_lock_shared();
    }

    /** The wrapped std::shared_mutex (see Mutex::native()). */
    std::shared_mutex &native() ERNN_RETURN_CAPABILITY(this)
    {
        return mu_;
    }

  private:
    std::shared_mutex mu_;
};

/** Scoped exclusive lock on a Mutex (std::lock_guard shape). */
class ERNN_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ERNN_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() ERNN_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Scoped exclusive lock on a Mutex that can be dropped and retaken
 * (std::unique_lock shape) — the form CondVar waits on, and the form
 * to use when a critical section ends before the scope does.
 */
class ERNN_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) ERNN_ACQUIRE(mu)
        : mu_(mu), held_(true)
    {
        mu_.lock();
    }

    ~UniqueLock() ERNN_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** Drop the lock before end of scope. */
    void unlock() ERNN_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    /** Retake the lock after unlock(). */
    void lock() ERNN_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

    bool ownsLock() const { return held_; }

  private:
    friend class CondVar;
    Mutex &mu_;
    bool held_;
};

/** Scoped shared (reader) lock on a SharedMutex. */
class ERNN_SCOPED_CAPABILITY ReaderLock
{
  public:
    explicit ReaderLock(SharedMutex &mu) ERNN_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lock_shared();
    }

    // RELEASE (not RELEASE_SHARED): a scoped guard's destructor
    // releases whatever mode it holds — this is the canonical
    // spelling from the Clang thread-safety docs.
    ~ReaderLock() ERNN_RELEASE() { mu_.unlock_shared(); }

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    SharedMutex &mu_;
};

/** Scoped exclusive (writer) lock on a SharedMutex. */
class ERNN_SCOPED_CAPABILITY WriterLock
{
  public:
    explicit WriterLock(SharedMutex &mu) ERNN_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~WriterLock() ERNN_RELEASE() { mu_.unlock(); }

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    SharedMutex &mu_;
};

/**
 * Condition variable over base::Mutex via a relockable UniqueLock.
 *
 * Deliberately predicate-free: write waits as explicit loops,
 *
 *     base::UniqueLock lk(mu_);
 *     while (!runnable())        // guarded reads, analyzably locked
 *         cv_.wait(lk);
 *
 * which is exactly what std::condition_variable::wait(lk, pred)
 * expands to — but the predicate now lives in the enclosing function
 * body, where the analysis can prove the lock is held. waitUntil /
 * waitFor return std::cv_status so deadline loops keep the same
 * shape (see InferenceServer::workerLoop's hold-open window).
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() noexcept { cv_.notify_one(); }
    void notifyAll() noexcept { cv_.notify_all(); }

    /**
     * Atomically release @p lk's mutex and sleep; the mutex is held
     * again on return. @p lk must be locked (as std requires).
     */
    void wait(UniqueLock &lk) ERNN_NO_THREAD_SAFETY_ANALYSIS
    {
        ernn_assert(lk.ownsLock(), "CondVar::wait on unlocked mutex");
        // Adopt the already-held native mutex for the duration of
        // the wait, then give ownership back to the guard: zero
        // overhead, and the guard's held_ flag stays true throughout
        // (the capability is conceptually held across a wait).
        std::unique_lock<std::mutex> native(lk.mu_.native(),
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    /** wait() with a deadline; std::cv_status::timeout on expiry. */
    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(UniqueLock &lk,
              const std::chrono::time_point<Clock, Duration> &deadline)
        ERNN_NO_THREAD_SAFETY_ANALYSIS
    {
        ernn_assert(lk.ownsLock(),
                    "CondVar::waitUntil on unlocked mutex");
        std::unique_lock<std::mutex> native(lk.mu_.native(),
                                            std::adopt_lock);
        const std::cv_status status = cv_.wait_until(native, deadline);
        native.release();
        return status;
    }

    /** wait() with a timeout; std::cv_status::timeout on expiry. */
    template <typename Rep, typename Period>
    std::cv_status
    waitFor(UniqueLock &lk,
            const std::chrono::duration<Rep, Period> &timeout)
        ERNN_NO_THREAD_SAFETY_ANALYSIS
    {
        ernn_assert(lk.ownsLock(),
                    "CondVar::waitFor on unlocked mutex");
        std::unique_lock<std::mutex> native(lk.mu_.native(),
                                            std::adopt_lock);
        const std::cv_status status = cv_.wait_for(native, timeout);
        native.release();
        return status;
    }

    /** The wrapped std::condition_variable (see Mutex::native()). */
    std::condition_variable &native() { return cv_; }

  private:
    std::condition_variable cv_;
};

} // namespace ernn::base

#endif // ERNN_BASE_SYNC_HH
