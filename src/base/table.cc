#include "base/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "base/strings.hh"

namespace ernn
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{std::move(row), false});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::render() const
{
    // Compute column widths over header and all rows.
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<std::size_t> width(ncols, 0);
    auto measure = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            width[c] = std::max(width[c], cells[c].size());
    };
    measure(header_);
    for (const auto &r : rows_)
        if (!r.separator)
            measure(r.cells);

    std::size_t total = 1;
    for (auto w : width)
        total += w + 3;

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto rule = [&]() { os << std::string(total, '-') << "\n"; };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            os << " " << padRight(cell, width[c]) << " |";
        }
        os << "\n";
    };

    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &r : rows_) {
        if (r.separator)
            rule();
        else
            emit(r.cells);
    }
    rule();
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

} // namespace ernn
