/**
 * @file
 * ASCII table renderer used by the benches to print paper-style
 * tables (Tables I-IV) with aligned columns.
 */

#ifndef ERNN_BASE_TABLE_HH
#define ERNN_BASE_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ernn
{

/**
 * A simple column-aligned table. Rows are added as vectors of cell
 * strings; rendering computes column widths and draws separators.
 */
class TextTable
{
  public:
    /** @param title caption rendered above the table. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; ragged rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator at this position. */
    void addSeparator();

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render into a string. */
    std::string render() const;

    /** Render to an output stream. */
    void print(std::ostream &os) const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace ernn

#endif // ERNN_BASE_TABLE_HH
