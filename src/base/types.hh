/**
 * @file
 * Fundamental scalar types shared across the E-RNN library.
 */

#ifndef ERNN_BASE_TYPES_HH
#define ERNN_BASE_TYPES_HH

#include <complex>
#include <cstddef>
#include <cstdint>

namespace ernn
{

/**
 * Scalar type used throughout the numerical stack.
 *
 * Double precision keeps the FFT round-trip error and the
 * finite-difference gradient checks far away from tolerance cliffs;
 * the quantization module models reduced precision explicitly on top
 * of this type.
 */
using Real = double;

/** Complex companion of Real, used by the FFT and frequency-domain ops. */
using Complex = std::complex<Real>;

/** Unsigned cycle count used by the hardware model and the simulator. */
using Cycles = std::uint64_t;

} // namespace ernn

#endif // ERNN_BASE_TYPES_HH
