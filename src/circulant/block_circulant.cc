#include "circulant/block_circulant.hh"

#include <cmath>

#include "base/logging.hh"
#include "tensor/simd.hh"

namespace ernn::circulant
{

namespace
{

/**
 * acc += w ⊙ x over packed real-spectrum bins (plain product, used by
 * the transposed matvec, which is a circular convolution).
 */
void
accumulatePlainProduct(fft::CVector &acc, const Complex *w,
                       const fft::CVector &x)
{
    simd::plainMacLanesFn()(
        reinterpret_cast<Real *>(acc.data()),
        reinterpret_cast<const Real *>(w),
        reinterpret_cast<const Real *>(x.data()), 1, acc.size());
    if (fft::OpCount::enabled())
        fft::OpCount::addEltwiseMults(2 + 4 * (acc.size() - 2));
}

/**
 * Lane-contiguous form of accumulatePlainProduct: acc and x hold
 * [lane][bin] runs, w is one generator spectrum shared by every lane.
 * Per lane the arithmetic and order match the scalar form exactly.
 */
void
accumulatePlainProductLanes(Complex *acc, const Complex *w,
                            const Complex *x, std::size_t lanes,
                            std::size_t bins)
{
    // std::complex<Real> is layout-compatible with Real[2]; the SIMD
    // core runs the scalar per-bin arithmetic at every level.
    simd::plainMacLanesFn()(reinterpret_cast<Real *>(acc),
                            reinterpret_cast<const Real *>(w),
                            reinterpret_cast<const Real *>(x), lanes,
                            bins);
    if (fft::OpCount::enabled())
        fft::OpCount::addEltwiseMults(lanes * (2 + 4 * (bins - 2)));
}

} // namespace

BlockCirculantMatrix::BlockCirculantMatrix(std::size_t rows,
                                           std::size_t cols,
                                           std::size_t block_size)
    : rows_(rows), cols_(cols), blockSize_(block_size)
{
    ernn_assert(block_size >= 1, "block size must be positive");
    ernn_assert(fft::isPowerOfTwo(block_size),
                "block size " << block_size << " is not a power of two");
    ernn_assert(rows % block_size == 0,
                "rows " << rows << " not divisible by block size "
                        << block_size);
    ernn_assert(cols % block_size == 0,
                "cols " << cols << " not divisible by block size "
                        << block_size);
    blockRows_ = rows / block_size;
    blockCols_ = cols / block_size;
    gen_.assign(blockRows_ * blockCols_ * blockSize_, 0.0);
}

BlockCirculantMatrix
BlockCirculantMatrix::fromDense(const Matrix &dense,
                                std::size_t block_size)
{
    BlockCirculantMatrix out(dense.rows(), dense.cols(), block_size);
    const std::size_t lb = block_size;
    const Real inv = 1.0 / static_cast<Real>(lb);
    for (std::size_t i = 0; i < out.blockRows_; ++i) {
        for (std::size_t j = 0; j < out.blockCols_; ++j) {
            Real *g = out.generator(i, j);
            for (std::size_t d = 0; d < lb; ++d) {
                Real sum = 0.0;
                for (std::size_t r = 0; r < lb; ++r) {
                    sum += dense.at(i * lb + r,
                                    j * lb + (r + d) % lb);
                }
                g[d] = sum * inv;
            }
        }
    }
    return out;
}

Matrix
BlockCirculantMatrix::toDense() const
{
    Matrix out(rows_, cols_);
    const std::size_t lb = blockSize_;
    for (std::size_t i = 0; i < blockRows_; ++i) {
        for (std::size_t j = 0; j < blockCols_; ++j) {
            const Real *g = generator(i, j);
            for (std::size_t r = 0; r < lb; ++r)
                for (std::size_t c = 0; c < lb; ++c)
                    out.at(i * lb + r, j * lb + c) =
                        g[(c + lb - r) % lb];
        }
    }
    return out;
}

Real
BlockCirculantMatrix::compressionRatio() const
{
    if (gen_.empty())
        return 1.0;
    return static_cast<Real>(rows_ * cols_) /
           static_cast<Real>(paramCount());
}

Real *
BlockCirculantMatrix::generator(std::size_t i, std::size_t j)
{
    return gen_.data() + (i * blockCols_ + j) * blockSize_;
}

const Real *
BlockCirculantMatrix::generator(std::size_t i, std::size_t j) const
{
    return gen_.data() + (i * blockCols_ + j) * blockSize_;
}

void
BlockCirculantMatrix::initXavier(Rng &rng)
{
    // Match the dense-equivalent variance: each generator entry is
    // replicated Lb times in the dense matrix, but fan-in/out are
    // those of the dense matrix.
    const Real bound = std::sqrt(6.0 / static_cast<Real>(rows_ + cols_));
    rng.fillUniform(gen_, bound);
    invalidateSpectra();
}

void
BlockCirculantMatrix::invalidateSpectra()
{
    spectraValid_ = false;
}

void
BlockCirculantMatrix::ensureSpectra() const
{
    if (spectraValid_)
        return;
    const std::size_t bins = blockSize_ / 2 + 1;
    spectra_.assign(blockRows_ * blockCols_ * bins, Complex(0, 0));
    Vector tmp(blockSize_);
    for (std::size_t b = 0; b < blockRows_ * blockCols_; ++b) {
        const Real *g = gen_.data() + b * blockSize_;
        tmp.assign(g, g + blockSize_);
        const fft::CVector spec = fft::rfft(tmp);
        std::copy(spec.begin(), spec.end(),
                  spectra_.begin() + b * bins);
    }
    spectraValid_ = true;
}

Vector
BlockCirculantMatrix::matvec(const Vector &x, MatvecMode mode) const
{
    Vector y(rows_, 0.0);
    matvecAcc(x, y, mode);
    return y;
}

void
BlockCirculantMatrix::matvecAcc(const Vector &x, Vector &y,
                                MatvecMode mode) const
{
    // The signature without scratch reuses a thread-local workspace,
    // so repeated matvecs stay allocation-free.
    thread_local FftWorkspace ws;
    matvecAcc(x, y, ws, mode);
}

void
BlockCirculantMatrix::matvecAcc(const Vector &x, Vector &y,
                                FftWorkspace &ws, MatvecMode mode) const
{
    ernn_assert(x.size() == cols_, "matvec: x size " << x.size()
                << " != cols " << cols_);
    ernn_assert(y.size() == rows_, "matvec: y size mismatch");
    const std::size_t lb = blockSize_;

    if (mode == MatvecMode::Naive || lb == 1) {
        for (std::size_t i = 0; i < blockRows_; ++i) {
            for (std::size_t j = 0; j < blockCols_; ++j) {
                const Real *g = generator(i, j);
                for (std::size_t r = 0; r < lb; ++r) {
                    Real s = 0.0;
                    for (std::size_t c = 0; c < lb; ++c)
                        s += g[(c + lb - r) % lb] * x[j * lb + c];
                    y[i * lb + r] += s;
                }
            }
        }
        return;
    }

    // FFT(x_j) once per input segment (decoupling, Fig. 7): q FFTs,
    // then frequency-domain accumulation and p IFFTs.
    computeSegmentSpectra(x, lb, ws);
    matvecAccFromSpectra(ws.segSpectra, y, ws);
}

void
computeSegmentSpectra(const Vector &x, std::size_t block_size,
                      FftWorkspace &ws)
{
    ernn_assert(block_size >= 1 && x.size() % block_size == 0,
                "computeSegmentSpectra: x size " << x.size()
                << " not a multiple of block " << block_size);
    const std::size_t q = x.size() / block_size;
    if (ws.segSpectra.size() < q)
        ws.segSpectra.resize(q);
    for (std::size_t j = 0; j < q; ++j) {
        ws.seg.assign(x.begin() + j * block_size,
                      x.begin() + (j + 1) * block_size);
        fft::rfftInto(ws.seg, ws.segSpectra[j], ws.packed);
    }
}

void
computeSegmentSpectraBatch(const Matrix &x, std::size_t block_size,
                           FftWorkspace &ws)
{
    ernn_assert(block_size >= 1 && x.rows() % block_size == 0,
                "computeSegmentSpectraBatch: " << x.rows()
                << " rows not a multiple of block " << block_size);
    const std::size_t q = x.rows() / block_size;
    const std::size_t lanes = x.cols();
    const std::size_t bins = block_size / 2 + 1;
    ws.laneSpec.resize(q * lanes * bins);
    ws.laneSpecLanes = lanes;
    ws.laneSpecSegs = q;
    ws.laneSpecBins = bins;
    ws.seg.resize(block_size);
    for (std::size_t j = 0; j < q; ++j) {
        for (std::size_t l = 0; l < lanes; ++l) {
            // Gather the lane's segment out of its strided column;
            // the transform itself is the one the solo path runs.
            for (std::size_t r = 0; r < block_size; ++r)
                ws.seg[r] = x.at(j * block_size + r, l);
            fft::rfftInto(ws.seg,
                          ws.laneSpec.data() + (j * lanes + l) * bins,
                          ws.packed);
        }
    }
}

void
BlockCirculantMatrix::matvecAccFromSpectraBatch(Matrix &y,
                                                FftWorkspace &ws) const
{
    const std::size_t lanes = y.cols();
    ernn_assert(y.rows() == rows_,
                "matvecAccFromSpectraBatch: y rows");
    const std::size_t lb = blockSize_;
    const std::size_t bins = lb / 2 + 1;
    ernn_assert(ws.laneSpecLanes == lanes &&
                ws.laneSpecSegs == blockCols_ &&
                ws.laneSpecBins == bins,
                "matvecAccFromSpectraBatch: lane spectra were built "
                "for a different geometry");
    ensureSpectra();

    ws.laneAcc.resize(lanes * bins);

    for (std::size_t i = 0; i < blockRows_; ++i) {
        std::fill(ws.laneAcc.begin(), ws.laneAcc.end(), Complex(0, 0));
        for (std::size_t j = 0; j < blockCols_; ++j) {
            // One pass over the cached generator spectrum serves
            // every lane (generator-major streaming over the
            // lane-contiguous spectra of segment j).
            const Complex *w =
                spectra_.data() + (i * blockCols_ + j) * bins;
            fft::accumulateConjProductLanes(
                ws.laneAcc.data(), w,
                ws.laneSpec.data() + j * lanes * bins, lanes, bins);
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            fft::irfftInto(ws.laneAcc.data() + l * bins, lb, ws.outSeg,
                           ws.packed);
            for (std::size_t r = 0; r < lb; ++r)
                y.at(i * lb + r, l) += ws.outSeg[r];
        }
    }
}

void
BlockCirculantMatrix::matvecAccFromSpectra(
    const std::vector<fft::CVector> &xfft, Vector &y,
    FftWorkspace &ws) const
{
    ernn_assert(y.size() == rows_, "matvecAccFromSpectra: y size");
    ernn_assert(xfft.size() >= blockCols_,
                "matvecAccFromSpectra: expected >= " << blockCols_
                << " segment spectra, got " << xfft.size());
    ensureSpectra();
    const std::size_t lb = blockSize_;
    const std::size_t bins = lb / 2 + 1;

    for (std::size_t i = 0; i < blockRows_; ++i) {
        ws.acc.assign(bins, Complex(0, 0));
        for (std::size_t j = 0; j < blockCols_; ++j) {
            const Complex *w =
                spectra_.data() + (i * blockCols_ + j) * bins;
            fft::accumulateConjProduct(ws.acc, w, xfft[j]);
        }
        fft::irfftInto(ws.acc, lb, ws.outSeg, ws.packed);
        for (std::size_t r = 0; r < lb; ++r)
            y[i * lb + r] += ws.outSeg[r];
    }
}

void
BlockCirculantMatrix::matvecTransposeAcc(const Vector &dy,
                                         Vector &dx) const
{
    ernn_assert(dy.size() == rows_, "matvecT: dy size mismatch");
    ernn_assert(dx.size() == cols_, "matvecT: dx size mismatch");
    const std::size_t lb = blockSize_;

    if (lb == 1) {
        for (std::size_t i = 0; i < blockRows_; ++i)
            for (std::size_t j = 0; j < blockCols_; ++j)
                dx[j] += generator(i, j)[0] * dy[i];
        return;
    }

    ensureSpectra();
    const std::size_t bins = lb / 2 + 1;

    std::vector<fft::CVector> dyfft(blockRows_);
    Vector seg(lb);
    for (std::size_t i = 0; i < blockRows_; ++i) {
        seg.assign(dy.begin() + i * lb, dy.begin() + (i + 1) * lb);
        dyfft[i] = fft::rfft(seg);
    }

    fft::CVector acc(bins);
    for (std::size_t j = 0; j < blockCols_; ++j) {
        std::fill(acc.begin(), acc.end(), Complex(0, 0));
        for (std::size_t i = 0; i < blockRows_; ++i) {
            const Complex *w =
                spectra_.data() + (i * blockCols_ + j) * bins;
            accumulatePlainProduct(acc, w, dyfft[i]);
        }
        const Vector dxj = fft::irfft(acc, lb);
        for (std::size_t c = 0; c < lb; ++c)
            dx[j * lb + c] += dxj[c];
    }
}

void
BlockCirculantMatrix::generatorGradAcc(const Vector &x,
                                       const Vector &dy,
                                       BlockCirculantMatrix &grad) const
{
    ernn_assert(x.size() == cols_ && dy.size() == rows_,
                "generatorGradAcc: size mismatch");
    ernn_assert(grad.rows_ == rows_ && grad.cols_ == cols_ &&
                grad.blockSize_ == blockSize_,
                "generatorGradAcc: grad shape mismatch");
    const std::size_t lb = blockSize_;

    if (lb == 1) {
        for (std::size_t i = 0; i < blockRows_; ++i)
            for (std::size_t j = 0; j < blockCols_; ++j)
                grad.generator(i, j)[0] += dy[i] * x[j];
        return;
    }

    const std::size_t bins = lb / 2 + 1;
    std::vector<fft::CVector> xfft(blockCols_), dyfft(blockRows_);
    Vector seg(lb);
    for (std::size_t j = 0; j < blockCols_; ++j) {
        seg.assign(x.begin() + j * lb, x.begin() + (j + 1) * lb);
        xfft[j] = fft::rfft(seg);
    }
    for (std::size_t i = 0; i < blockRows_; ++i) {
        seg.assign(dy.begin() + i * lb, dy.begin() + (i + 1) * lb);
        dyfft[i] = fft::rfft(seg);
    }

    fft::CVector acc(bins);
    for (std::size_t i = 0; i < blockRows_; ++i) {
        for (std::size_t j = 0; j < blockCols_; ++j) {
            std::fill(acc.begin(), acc.end(), Complex(0, 0));
            fft::accumulateConjProduct(acc, dyfft[i], xfft[j]);
            const Vector g = fft::irfft(acc, lb);
            Real *gptr = grad.generator(i, j);
            for (std::size_t d = 0; d < lb; ++d)
                gptr[d] += g[d];
        }
    }
    grad.invalidateSpectra();
}

void
BlockCirculantMatrix::matvecTransposeAccFromSpectraBatch(
    Matrix &dx, FftWorkspace &ws) const
{
    const std::size_t lanes = dx.cols();
    ernn_assert(blockSize_ > 1,
                "matvecTransposeAccFromSpectraBatch: block size 1 "
                "goes through the direct per-lane path");
    ernn_assert(dx.rows() == cols_,
                "matvecTransposeAccFromSpectraBatch: dx rows");
    const std::size_t lb = blockSize_;
    const std::size_t bins = lb / 2 + 1;
    ernn_assert(ws.laneSpecLanes == lanes &&
                ws.laneSpecSegs == blockRows_ &&
                ws.laneSpecBins == bins,
                "matvecTransposeAccFromSpectraBatch: lane spectra "
                "were built for a different geometry");
    ensureSpectra();

    ws.laneAcc.resize(lanes * bins);

    for (std::size_t j = 0; j < blockCols_; ++j) {
        std::fill(ws.laneAcc.begin(), ws.laneAcc.end(), Complex(0, 0));
        for (std::size_t i = 0; i < blockRows_; ++i) {
            // Generator-major: one pass over the cached spectrum of
            // block (i, j) serves every lane, mirroring the batched
            // forward's weight-traffic amortization.
            const Complex *w =
                spectra_.data() + (i * blockCols_ + j) * bins;
            accumulatePlainProductLanes(
                ws.laneAcc.data(), w,
                ws.laneSpec.data() + i * lanes * bins, lanes, bins);
        }
        for (std::size_t l = 0; l < lanes; ++l) {
            fft::irfftInto(ws.laneAcc.data() + l * bins, lb, ws.outSeg,
                           ws.packed);
            for (std::size_t c = 0; c < lb; ++c)
                dx.at(j * lb + c, l) += ws.outSeg[c];
        }
    }
}

void
BlockCirculantMatrix::generatorGradAccFromSpectraBatch(
    FftWorkspace &wsX, FftWorkspace &wsDy, std::size_t lanes,
    BlockCirculantMatrix &grad) const
{
    ernn_assert(blockSize_ > 1,
                "generatorGradAccFromSpectraBatch: block size 1 "
                "goes through the direct per-lane path");
    ernn_assert(grad.rows_ == rows_ && grad.cols_ == cols_ &&
                grad.blockSize_ == blockSize_,
                "generatorGradAccFromSpectraBatch: grad shape");
    const std::size_t lb = blockSize_;
    const std::size_t bins = lb / 2 + 1;
    ernn_assert(wsX.laneSpecLanes == lanes &&
                wsX.laneSpecSegs == blockCols_ &&
                wsX.laneSpecBins == bins,
                "generatorGradAccFromSpectraBatch: input spectra "
                "were built for a different geometry");
    ernn_assert(wsDy.laneSpecLanes == lanes &&
                wsDy.laneSpecSegs == blockRows_ &&
                wsDy.laneSpecBins == bins,
                "generatorGradAccFromSpectraBatch: gradient spectra "
                "were built for a different geometry");

    for (std::size_t i = 0; i < blockRows_; ++i) {
        const Complex *dyBase =
            wsDy.laneSpec.data() + i * lanes * bins;
        for (std::size_t j = 0; j < blockCols_; ++j) {
            const Complex *xBase =
                wsX.laneSpec.data() + j * lanes * bins;
            wsX.acc.assign(bins, Complex(0, 0));
            for (std::size_t l = 0; l < lanes; ++l)
                fft::accumulateConjProduct(wsX.acc.data(),
                                           dyBase + l * bins,
                                           xBase + l * bins, bins);
            fft::irfftInto(wsX.acc, lb, wsX.outSeg, wsX.packed);
            Real *gptr = grad.generator(i, j);
            for (std::size_t d = 0; d < lb; ++d)
                gptr[d] += wsX.outSeg[d];
        }
    }
    grad.invalidateSpectra();
}

Real
BlockCirculantMatrix::distanceFromDense(const Matrix &dense) const
{
    ernn_assert(dense.rows() == rows_ && dense.cols() == cols_,
                "distanceFromDense: shape mismatch");
    const std::size_t lb = blockSize_;
    Real s = 0.0;
    for (std::size_t i = 0; i < blockRows_; ++i) {
        for (std::size_t j = 0; j < blockCols_; ++j) {
            const Real *g = generator(i, j);
            for (std::size_t r = 0; r < lb; ++r) {
                for (std::size_t c = 0; c < lb; ++c) {
                    const Real d = dense.at(i * lb + r, j * lb + c) -
                                   g[(c + lb - r) % lb];
                    s += d * d;
                }
            }
        }
    }
    return std::sqrt(s);
}

Real
BlockCirculantMatrix::frobeniusNorm() const
{
    // Each generator entry appears Lb times in the dense matrix.
    Real s = 0.0;
    for (auto v : gen_)
        s += v * v;
    return std::sqrt(s * static_cast<Real>(blockSize_));
}

} // namespace ernn::circulant
