/**
 * @file
 * Block-circulant weight matrix (Sec. III of the paper).
 *
 * A rows x cols matrix is partitioned into p x q square blocks of
 * size Lb; each block is a circulant matrix fully described by its
 * first row ("generator"): W[r][c] = w[(c - r) mod Lb]. Storage drops
 * from O(rows*cols) to O(rows*cols/Lb) and the matvec drops to
 * O(n log n) via the FFT (Fig. 4):
 *
 *     a_i = IFFT( sum_j conj(FFT(w_ij)) ∘ FFT(x_j) )
 *
 * The conjugate appears because a first-row circulant matvec is a
 * circular correlation — this is the "Conj" block in the paper's PE
 * (Fig. 10). FFT/IFFT decoupling (Sec. V-A1, Fig. 7) is structural:
 * the q input-segment FFTs are computed once, accumulation happens in
 * the frequency domain, and only p IFFTs run per matvec.
 */

#ifndef ERNN_CIRCULANT_BLOCK_CIRCULANT_HH
#define ERNN_CIRCULANT_BLOCK_CIRCULANT_HH

#include <cstddef>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "tensor/fft.hh"
#include "tensor/matrix.hh"
#include "tensor/vector_ops.hh"

namespace ernn::circulant
{

/** Strategy used by matvec-type entry points. */
enum class MatvecMode
{
    Fft,   //!< decoupled FFT path (production)
    Naive, //!< direct O(rows*cols) evaluation from generators (oracle)
};

/**
 * Reusable FFT scratch for the matvec entry points. One workspace
 * serves matrices of any geometry: every buffer is resized on use and
 * keeps its capacity, so after a warm-up pass over the shapes in play
 * the steady-state matvec performs no heap allocation. The runtime's
 * CirculantFFT inference backend owns one of these per session; the
 * legacy allocation-free entry points share a thread-local one.
 */
struct FftWorkspace
{
    std::vector<fft::CVector> segSpectra; //!< FFT(x_j) per input segment
    fft::CVector acc;                     //!< frequency-domain accumulator
    fft::CVector packed;                  //!< half-size complex FFT scratch
    Vector seg;                           //!< real segment staging
    Vector outSeg;                        //!< IFFT output staging

    /// @{ Batch-major staging (one utterance lane per column of the
    /// activation matrix). laneSpec is one flat seg-major table of
    /// every lane's segment spectra, laid out [seg][lane][bin] so the
    /// generator-major MAC kernels stream lane-contiguous runs while
    /// one cached generator spectrum stays hot; laneAcc holds the
    /// per-lane frequency-domain accumulators as [lane][bin]. Sized
    /// by the batched entry points; like every other buffer here they
    /// keep their capacity, so a warm workspace serves the batch hot
    /// loop allocation-free.
    fft::CVector laneSpec;
    fft::CVector laneAcc;
    std::size_t laneSpecLanes = 0; //!< lanes captured in laneSpec
    std::size_t laneSpecSegs = 0;  //!< segments captured in laneSpec
    std::size_t laneSpecBins = 0;  //!< packed bins per segment
    /// @}
};

/**
 * Stage 1 of the decoupled matvec (Fig. 7): FFT every @p block_size
 * segment of @p x into ws.segSpectra (the q input FFTs).
 */
void computeSegmentSpectra(const Vector &x, std::size_t block_size,
                           FftWorkspace &ws);

/**
 * Batch-major form of computeSegmentSpectra: @p x is a (cols x lanes)
 * activation matrix, one utterance lane per column; every lane's
 * segment spectra land in ws.laneSpectra[lane]. Each lane runs the
 * exact transforms the solo entry point runs, so downstream results
 * stay bit-identical per lane.
 */
void computeSegmentSpectraBatch(const Matrix &x,
                                std::size_t block_size,
                                FftWorkspace &ws);

class BlockCirculantMatrix
{
  public:
    BlockCirculantMatrix() = default;

    /**
     * Construct an all-zero block-circulant matrix.
     *
     * @param rows, cols overall dimensions; both must be divisible by
     *                   @p block_size
     * @param block_size Lb, a power of two (the paper constrains
     *                   block sizes to powers of two)
     */
    BlockCirculantMatrix(std::size_t rows, std::size_t cols,
                         std::size_t block_size);

    /**
     * Euclidean projection of a dense matrix onto the block-circulant
     * set (Eqn. 6 / Fig. 5): each generator entry is the mean of its
     * wrapped block diagonal. This is the optimal (closest in
     * Frobenius norm) circulant approximation, used as the ADMM
     * proximal step.
     */
    static BlockCirculantMatrix fromDense(const Matrix &dense,
                                          std::size_t block_size);

    /** Materialize the dense equivalent. */
    Matrix toDense() const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t blockSize() const { return blockSize_; }
    std::size_t blockRows() const { return blockRows_; } //!< p
    std::size_t blockCols() const { return blockCols_; } //!< q

    /** Number of stored parameters: p * q * Lb. */
    std::size_t paramCount() const { return gen_.size(); }

    /** Dense-to-circulant parameter compression ratio (= Lb). */
    Real compressionRatio() const;

    /** Mutable view of the generator of block (i, j), Lb entries. */
    Real *generator(std::size_t i, std::size_t j);
    const Real *generator(std::size_t i, std::size_t j) const;

    /** Flat generator storage (p*q*Lb entries, trainable params). */
    std::vector<Real> &raw() { return gen_; }
    const std::vector<Real> &raw() const { return gen_; }

    /** Xavier init matching the dense equivalent's fan-in/out. */
    void initXavier(Rng &rng);

    /**
     * Mark cached generator spectra stale. Must be called after any
     * direct mutation of raw()/generator() contents.
     */
    void invalidateSpectra();

    /** y = W x. */
    Vector matvec(const Vector &x, MatvecMode mode = MatvecMode::Fft)
        const;

    /** y += W x. */
    void matvecAcc(const Vector &x, Vector &y,
                   MatvecMode mode = MatvecMode::Fft) const;

    /**
     * y += W x with caller-owned scratch: the hot-loop form, free of
     * heap allocation once @p ws has warmed to this geometry.
     */
    void matvecAcc(const Vector &x, Vector &y, FftWorkspace &ws,
                   MatvecMode mode = MatvecMode::Fft) const;

    /**
     * Stage 2 of the decoupled matvec (Fig. 7): y += W x given the
     * segment spectra of x already in @p xfft (frequency-domain
     * accumulation + p IFFTs; @p ws supplies acc/outSeg/packed).
     * Callers that multiply several matrices of equal geometry by
     * the same vector — the four gate matrices of an LSTM — compute
     * the q input FFTs once via computeSegmentSpectra() and share
     * them, which a per-matrix matvec cannot do.
     */
    void matvecAccFromSpectra(const std::vector<fft::CVector> &xfft,
                              Vector &y, FftWorkspace &ws) const;

    /**
     * Batch-major stage 2: Y += W X for every lane at once, given
     * each lane's segment spectra in ws.laneSpectra (from
     * computeSegmentSpectraBatch). Y is (rows x lanes). The loop
     * order is generator-major: each cached generator spectrum is
     * loaded once per call and accumulated against every lane before
     * moving on — the weight traffic one solo matvec pays, amortized
     * over the whole batch. Per lane the accumulation order matches
     * matvecAccFromSpectra exactly (bit-identical columns).
     */
    void matvecAccFromSpectraBatch(Matrix &y, FftWorkspace &ws) const;

    /**
     * Build the cached generator spectra now (normally lazy). The
     * runtime compiler calls this so that frozen models never pay the
     * FFT precompute on the serving path.
     */
    void warmSpectra() const { ensureSpectra(); }

    /** dx += Wᵀ dy (circular convolution per block, FFT path). */
    void matvecTransposeAcc(const Vector &dy, Vector &dx) const;

    /**
     * grad.gen += dL/dgen given upstream gradient dy and input x.
     * The generator gradient of block (i,j) is the circular
     * correlation of dy_i with x_j.
     */
    void generatorGradAcc(const Vector &x, const Vector &dy,
                          BlockCirculantMatrix &grad) const;

    /**
     * Batch-major transpose backprop: dX += Wᵀ dY for every lane at
     * once, given each lane's dY segment spectra in ws.laneSpectra
     * (from computeSegmentSpectraBatch on the upstream-gradient
     * matrix). dX is (cols x lanes). Generator-major like the batched
     * forward; per lane the block accumulation runs in the exact
     * order matvecTransposeAcc uses. Callers route block size 1
     * through the direct per-lane path (no spectra exist there).
     */
    void matvecTransposeAccFromSpectraBatch(Matrix &dx,
                                            FftWorkspace &ws) const;

    /**
     * Batch-major generator gradient: grad.gen += the lane sum of the
     * circular correlation of dy_i with x_j, with per-lane input
     * spectra in wsX.laneSpectra and upstream-gradient spectra in
     * wsDy.laneSpectra. The lane sum accumulates in the frequency
     * domain (ascending lane order), so each block pays one IFFT per
     * batch instead of one per lane; the IFFT is linear, so this
     * equals the per-lane solo sum up to rounding. wsX also lends the
     * acc/outSeg/packed scratch.
     */
    void generatorGradAccFromSpectraBatch(FftWorkspace &wsX,
                                          FftWorkspace &wsDy,
                                          std::size_t lanes,
                                          BlockCirculantMatrix &grad)
        const;

    /** Frobenius distance ‖this - dense‖_F without materializing. */
    Real distanceFromDense(const Matrix &dense) const;

    /** Frobenius norm of the (implicit) dense matrix. */
    Real frobeniusNorm() const;

  private:
    void ensureSpectra() const;

    std::size_t rows_ = 0, cols_ = 0;
    std::size_t blockSize_ = 0;
    std::size_t blockRows_ = 0, blockCols_ = 0;

    /** Generators, laid out [i][j][d] contiguously. */
    std::vector<Real> gen_;

    /**
     * Cached rfft of every generator, (Lb/2+1) bins per block, laid
     * out [i][j][bin]. Rebuilt lazily after invalidateSpectra().
     */
    mutable std::vector<Complex> spectra_;
    mutable bool spectraValid_ = false;
};

} // namespace ernn::circulant

#endif // ERNN_CIRCULANT_BLOCK_CIRCULANT_HH
