#include "circulant/mult_model.hh"

#include "base/logging.hh"
#include "tensor/fft.hh"

namespace ernn::circulant
{

namespace
{

/** Real multiplications of one forward transform of size Lb. */
std::uint64_t
fftCost(std::size_t lb, FftCostConvention convention)
{
    switch (convention) {
      case FftCostConvention::Optimized:
        return fft::rfftRealMults(lb);
      case FftCostConvention::ConservativeComplex:
        // Full complex radix-2 FFT: (Lb/2)*log2(Lb) butterflies,
        // 4 real multipliers each, no trivial-twiddle pruning.
        return 4 * (lb / 2) * fft::log2Ceil(lb);
    }
    return 0;
}

std::uint64_t
eltwiseCost(std::size_t lb)
{
    return fft::eltwiseRealMults(lb);
}

} // namespace

LayerMultCount
layerMultCount(std::size_t rows, std::size_t cols,
               std::size_t block_size, FftCostConvention convention,
               bool decoupled)
{
    ernn_assert(block_size >= 2, "layerMultCount: block size >= 2");
    ernn_assert(rows % block_size == 0 && cols % block_size == 0,
                "layerMultCount: dimensions not divisible by block");
    const std::uint64_t p = rows / block_size;
    const std::uint64_t q = cols / block_size;

    LayerMultCount out;
    out.fftCalls = decoupled ? q : p * q;
    out.ifftCalls = decoupled ? p : p * q;
    out.fftMults = out.fftCalls * fftCost(block_size, convention);
    out.ifftMults = out.ifftCalls * fftCost(block_size, convention);
    out.eltwiseMults = p * q * eltwiseCost(block_size);
    return out;
}

Real
normalizedMults(std::size_t layer_size, std::size_t block_size,
                FftCostConvention convention)
{
    const auto c =
        layerMultCount(layer_size, layer_size, block_size, convention);
    const Real dense =
        static_cast<Real>(layer_size) * static_cast<Real>(layer_size);
    return static_cast<Real>(c.total()) / dense;
}

std::size_t
blockSizeUpperBound(std::size_t layer_size, Real improvement,
                    std::size_t cap)
{
    std::size_t best = 2;
    Real prev = normalizedMults(layer_size, 2,
                                FftCostConvention::ConservativeComplex);
    for (std::size_t lb = 4; lb <= cap && lb <= layer_size; lb <<= 1) {
        const Real cur = normalizedMults(
            layer_size, lb, FftCostConvention::ConservativeComplex);
        if (prev - cur < improvement * prev)
            return best;
        best = lb;
        prev = cur;
    }
    return best;
}

std::vector<MultSweepPoint>
multSweep(std::size_t layer_size, std::size_t max_block)
{
    std::vector<MultSweepPoint> out;
    for (std::size_t lb = 2; lb <= max_block && lb <= layer_size;
         lb <<= 1) {
        out.push_back(MultSweepPoint{
            lb,
            normalizedMults(layer_size, lb,
                            FftCostConvention::Optimized),
            normalizedMults(layer_size, lb,
                            FftCostConvention::ConservativeComplex)});
    }
    return out;
}

} // namespace ernn::circulant
