/**
 * @file
 * Analytic computation model for the block-circulant matvec
 * (Sec. V of the paper; reproduces Fig. 7 and Fig. 8).
 *
 * Two counting conventions are provided:
 *
 *  - Optimized: an exact mirror of the multiplications this library's
 *    FFT kernels execute (real-FFT packing, trivial-twiddle skipping,
 *    shift-based IFFT scaling). Tests assert it equals the runtime
 *    instrumentation bit-for-bit.
 *
 *  - ConservativeComplex: the hardware-oriented convention in which
 *    the PE instantiates a full complex FFT datapath of size Lb
 *    (4 real multipliers per butterfly, no real-input halving). This
 *    is the convention under which the paper's Sec. V observation —
 *    reduction converges around block size 32-64 and the count rises
 *    again for very large blocks — emerges.
 */

#ifndef ERNN_CIRCULANT_MULT_MODEL_HH
#define ERNN_CIRCULANT_MULT_MODEL_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace ernn::circulant
{

/** FFT cost convention, see file comment. */
enum class FftCostConvention { Optimized, ConservativeComplex };

/** Breakdown of one block-circulant matvec's cost. */
struct LayerMultCount
{
    std::uint64_t fftMults = 0;     //!< input-segment FFTs
    std::uint64_t ifftMults = 0;    //!< output-segment IFFTs
    std::uint64_t eltwiseMults = 0; //!< frequency-domain products
    std::uint64_t fftCalls = 0;     //!< forward transform invocations
    std::uint64_t ifftCalls = 0;    //!< inverse transform invocations

    std::uint64_t total() const
    {
        return fftMults + ifftMults + eltwiseMults;
    }
};

/**
 * Multiplication/transform counts for one rows x cols matvec with
 * block size Lb.
 *
 * @param decoupled apply FFT/IFFT decoupling (Sec. V-A1): q input
 *                  FFTs and p output IFFTs instead of p*q of each
 */
LayerMultCount layerMultCount(std::size_t rows, std::size_t cols,
                              std::size_t block_size,
                              FftCostConvention convention =
                                  FftCostConvention::Optimized,
                              bool decoupled = true);

/**
 * Total real multiplications normalized by the dense baseline
 * (rows * cols), i.e. the y-axis of Fig. 8.
 */
Real normalizedMults(std::size_t layer_size, std::size_t block_size,
                     FftCostConvention convention =
                         FftCostConvention::Optimized);

/**
 * The Sec. V-B observation as a procedure: the largest useful block
 * size, i.e. the smallest Lb at which doubling the block size no
 * longer reduces the (conservative-convention) multiplication count
 * by more than @p improvement, capped at @p cap (64 in the paper).
 */
std::size_t blockSizeUpperBound(std::size_t layer_size,
                                Real improvement = 0.05,
                                std::size_t cap = 64);

/** Sweep of normalized multiplication counts over powers of two. */
struct MultSweepPoint
{
    std::size_t blockSize;
    Real normalizedOptimized;
    Real normalizedConservative;
};

/** Evaluate the Fig. 8 series for block sizes 2 .. max_block. */
std::vector<MultSweepPoint> multSweep(std::size_t layer_size,
                                      std::size_t max_block);

} // namespace ernn::circulant

#endif // ERNN_CIRCULANT_MULT_MODEL_HH
