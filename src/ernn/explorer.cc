#include "ernn/explorer.hh"

#include <sstream>

#include "base/strings.hh"

namespace ernn::core
{

ExplorationResult
optimizeDesign(speech::AccuracyOracle &oracle,
               const nn::ModelSpec &baseline,
               const hw::FpgaPlatform &platform, Phase1Config p1,
               Phase2Config p2)
{
    ExplorationResult result;
    Phase1Optimizer phase1(oracle, platform, p1);
    result.phase1 = phase1.run(baseline);
    if (result.phase1.feasible) {
        Phase2Optimizer phase2(platform, p2);
        result.phase2 = phase2.run(result.phase1.finalSpec);
    }
    return result;
}

std::string
renderReport(const ExplorationResult &result)
{
    std::ostringstream os;
    os << "=== E-RNN Phase I (Fig. 2) ===\n";
    os << "block size bounds: [" << result.phase1.blockLowerBound
       << ", " << result.phase1.blockUpperBound << "]\n";
    for (const auto &step : result.phase1.trace) {
        os << "  " << (step.accepted ? "[ok]  " : "[no]  ")
           << step.description;
        if (step.trainingTrial)
            os << " (training trial, degradation "
               << fmtReal(step.degradation, 2) << "%)";
        os << "\n";
    }
    os << "training trials: " << result.phase1.trainingTrials << "\n";
    if (!result.phase1.feasible) {
        os << "INFEASIBLE under the given constraints\n";
        return os.str();
    }
    os << "final model: " << result.phase1.finalSpec.describe()
       << " (degradation " << fmtReal(result.phase1.finalDegradation, 2)
       << "%)\n\n";

    const Phase2Result &p2 = result.phase2;
    os << "=== E-RNN Phase II ===\n";
    os << "quantization: " << p2.weightBits << "-bit fixed (degradation "
       << fmtReal(p2.quantDegradation, 3) << "%)\n";
    os << "activation: piecewise linear, " << p2.activationSegments
       << " segments (max err sigmoid "
       << fmtReal(p2.sigmoidMaxError, 5) << ", tanh "
       << fmtReal(p2.tanhMaxError, 5) << ")\n";
    const hw::DesignPoint &d = p2.design;
    os << "platform: " << d.platformName << ", " << d.numPe
       << " PEs in " << d.numCu << " CUs\n";
    os << "utilization: DSP " << fmtPercent(d.dspUtil) << "%, BRAM "
       << fmtPercent(d.bramUtil) << "%, LUT "
       << fmtPercent(d.lutUtil) << "%, FF " << fmtPercent(d.ffUtil)
       << "%\n";
    os << "latency " << fmtReal(d.latencyUs, 1) << " us | "
       << fmtGrouped(static_cast<long long>(d.fps)) << " FPS | "
       << fmtReal(d.powerWatts, 1) << " W | "
       << fmtGrouped(static_cast<long long>(d.fpsPerWatt))
       << " FPS/W\n";
    os << "cycle-sim cross-check: "
       << fmtReal(p2.simCrossCheck.latencyUs, 1) << " us, "
       << fmtGrouped(static_cast<long long>(p2.simCrossCheck.fps))
       << " FPS\n";
    return os.str();
}

} // namespace ernn::core
