/**
 * @file
 * The complete E-RNN design-optimization flow: Phase I (model
 * derivation under the accuracy constraint) followed by Phase II
 * (hardware mapping), with human-readable reporting.
 */

#ifndef ERNN_ERNN_EXPLORER_HH
#define ERNN_ERNN_EXPLORER_HH

#include <string>

#include "ernn/phase1.hh"
#include "ernn/phase2.hh"

namespace ernn::core
{

/** Combined Phase I + Phase II outcome. */
struct ExplorationResult
{
    Phase1Result phase1;
    Phase2Result phase2;
};

/**
 * Run the full E-RNN flow for a dense LSTM baseline on a platform.
 */
ExplorationResult optimizeDesign(
    speech::AccuracyOracle &oracle, const nn::ModelSpec &baseline,
    const hw::FpgaPlatform &platform, Phase1Config p1 = {},
    Phase2Config p2 = {});

/** Render the decision trace and final design as text. */
std::string renderReport(const ExplorationResult &result);

} // namespace ernn::core

#endif // ERNN_ERNN_EXPLORER_HH
