#include "ernn/phase1.hh"

#include <algorithm>

#include "base/logging.hh"
#include "circulant/mult_model.hh"
#include "hw/resource_model.hh"

namespace ernn::core
{

Phase1Optimizer::Phase1Optimizer(speech::AccuracyOracle &oracle,
                                 const hw::FpgaPlatform &platform,
                                 Phase1Config cfg)
    : oracle_(oracle), platform_(platform), cfg_(cfg)
{
}

Phase1Result
Phase1Optimizer::run(const nn::ModelSpec &baseline)
{
    ernn_assert(baseline.type == nn::ModelType::Lstm,
                "Phase I starts from the LSTM baseline");
    ernn_assert(baseline.isDenseBaseline(),
                "Phase I starts from a dense baseline");

    Phase1Result result;
    const std::size_t trials_before = oracle_.trialCount();

    auto blockedSpec = [&](std::size_t lb) {
        nn::ModelSpec spec = baseline;
        spec.blockSizes.assign(spec.layerSizes.size(), lb);
        return spec;
    };

    // ------------------------------------------------------------
    // Step 1: sanity check — the smallest block size whose model
    // fits into on-chip BRAM is the lower bound. No training needed.
    // ------------------------------------------------------------
    const std::size_t lb_min = hw::minBlockSizeForBram(
        baseline, cfg_.weightBits, platform_);
    if (lb_min == 0) {
        result.feasible = false;
        result.trace.push_back(
            {"step 1: model cannot fit into BRAM at any block size",
             baseline, 0.0, false, false});
        return result;
    }
    result.blockLowerBound = std::max<std::size_t>(lb_min, 2);
    result.trace.push_back(
        {"step 1: BRAM sanity check -> block size lower bound " +
             std::to_string(result.blockLowerBound),
         blockedSpec(result.blockLowerBound), 0.0, false, true});

    // ------------------------------------------------------------
    // Upper bound from the bottom-up computation model (Sec. V).
    // ------------------------------------------------------------
    std::size_t max_layer = 0;
    for (auto h : baseline.layerSizes)
        max_layer = std::max(max_layer, h);
    result.blockUpperBound = std::min(
        cfg_.maxBlockSize,
        circulant::blockSizeUpperBound(max_layer, 0.05,
                                       cfg_.maxBlockSize));
    result.blockUpperBound =
        std::max(result.blockUpperBound, result.blockLowerBound);
    result.trace.push_back(
        {"bottom-up bound (Sec. V): block size upper bound " +
             std::to_string(result.blockUpperBound),
         blockedSpec(result.blockUpperBound), 0.0, false, true});

    // ------------------------------------------------------------
    // Step 2: block size optimization — the largest block size in
    // [lower, upper] meeting the accuracy budget. Searching from the
    // top keeps the number of training trials at log2(range).
    // ------------------------------------------------------------
    nn::ModelSpec chosen;
    bool found = false;
    for (std::size_t lb = result.blockUpperBound;
         lb >= result.blockLowerBound; lb /= 2) {
        nn::ModelSpec spec = blockedSpec(lb);
        const Real deg = oracle_.degradation(spec);
        const bool ok = deg <= cfg_.maxPerDegradation;
        result.trace.push_back(
            {"step 2: try block size " + std::to_string(lb), spec,
             deg, true, ok});
        if (ok) {
            chosen = spec;
            result.finalDegradation = deg;
            found = true;
            break;
        }
    }
    if (!found) {
        result.feasible = false;
        result.trainingTrials = oracle_.trialCount() - trials_before;
        return result;
    }

    // ------------------------------------------------------------
    // Step 3a: model type — switch to GRU with the block size fixed
    // ("the GRU model will be fitted into BRAM because it is smaller
    // than LSTM"); a single training trial.
    // ------------------------------------------------------------
    if (cfg_.tryGru) {
        nn::ModelSpec gru = chosen;
        gru.type = nn::ModelType::Gru;
        gru.peephole = false;
        gru.projectionSize = 0;
        const Real deg = oracle_.degradation(gru);
        const bool ok = deg <= cfg_.maxPerDegradation;
        result.trace.push_back(
            {"step 3: switch LSTM -> GRU", gru, deg, true, ok});
        if (ok) {
            chosen = gru;
            result.finalDegradation = deg;
        }
    }

    // ------------------------------------------------------------
    // Step 3b: fine tuning — raise the block size of the
    // input/output matrices one step (they do not propagate through
    // time, so they are less accuracy-critical).
    // ------------------------------------------------------------
    if (cfg_.tryInputBlockIncrease) {
        const std::size_t cur = chosen.blockFor(0);
        const std::size_t larger = cur * 2;
        if (larger <= cfg_.maxBlockSize) {
            nn::ModelSpec tuned = chosen;
            tuned.inputBlockSizes.assign(tuned.layerSizes.size(),
                                         larger);
            const Real deg = oracle_.degradation(tuned);
            const bool ok = deg <= cfg_.maxPerDegradation;
            result.trace.push_back(
                {"step 3: input/output matrices at block " +
                     std::to_string(larger),
                 tuned, deg, true, ok});
            if (ok) {
                chosen = tuned;
                result.finalDegradation = deg;
            }
        }
    }

    result.finalSpec = chosen;
    result.feasible = true;
    result.trainingTrials = oracle_.trialCount() - trials_before;
    return result;
}

} // namespace ernn::core
