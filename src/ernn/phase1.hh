/**
 * @file
 * E-RNN Phase I (Sec. VI, Fig. 2): derive the RNN model — type,
 * layer size, block size, and the input/output-matrix fine-tuning —
 * under the overall accuracy constraint, in a handful of training
 * trials.
 *
 * The two design-exploration observations bound the search:
 *  - top-down (Sec. IV): block size is optimized before layer size,
 *    so the layer geometry of the baseline is kept;
 *  - bottom-up (Sec. V): computation reduction converges around
 *    block size 32-64, capping the search from above; the BRAM
 *    sanity check caps it from below.
 */

#ifndef ERNN_ERNN_PHASE1_HH
#define ERNN_ERNN_PHASE1_HH

#include <string>
#include <vector>

#include "hw/platform.hh"
#include "speech/timit_oracle.hh"

namespace ernn::core
{

/** Phase I configuration. */
struct Phase1Config
{
    /** Overall accuracy requirement: max PER degradation (%) vs.
     *  the dense baseline (the paper uses ESE's 0.30%). */
    Real maxPerDegradation = 0.30;

    int weightBits = 12;          //!< storage quantization for BRAM
    std::size_t maxBlockSize = 64; //!< Sec. V cap
    bool tryGru = true;            //!< step 3: LSTM -> GRU switch
    bool tryInputBlockIncrease = true; //!< step 3: fine tuning
};

/** One decision of the Phase I trace. */
struct Phase1Step
{
    std::string description;
    nn::ModelSpec spec;
    Real degradation = 0.0;
    bool trainingTrial = false;
    bool accepted = false;
};

/** Phase I outcome. */
struct Phase1Result
{
    bool feasible = false;
    nn::ModelSpec finalSpec;
    Real finalDegradation = 0.0;
    std::size_t blockLowerBound = 0; //!< from the BRAM sanity check
    std::size_t blockUpperBound = 0; //!< from the computation model
    std::size_t trainingTrials = 0;
    std::vector<Phase1Step> trace;
};

class Phase1Optimizer
{
  public:
    Phase1Optimizer(speech::AccuracyOracle &oracle,
                    const hw::FpgaPlatform &platform,
                    Phase1Config cfg = {});

    /**
     * Run Phase I starting from a dense LSTM baseline spec ("we
     * start from the LSTM RNN baseline model due to its high
     * reliability").
     */
    Phase1Result run(const nn::ModelSpec &baseline);

  private:
    speech::AccuracyOracle &oracle_;
    const hw::FpgaPlatform &platform_;
    Phase1Config cfg_;
};

} // namespace ernn::core

#endif // ERNN_ERNN_PHASE1_HH
