#include "ernn/phase2.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "speech/per.hh"

namespace ernn::core
{

namespace
{

/**
 * Built-in quantization-degradation model: every dropped bit doubles
 * the rounding error; calibrated so that 12 bits sits comfortably
 * under the paper's 0.1% budget and 8 bits does not.
 */
Real
analyticQuantDegradation(int bits)
{
    // Fitted so that 12-bit sits well inside the paper's 0.1%
    // budget, 10-bit misses it, and 16-bit is essentially free.
    return 0.1 * std::pow(2.0, (11.5 - bits) / 1.2);
}

} // namespace

Phase2Optimizer::Phase2Optimizer(const hw::FpgaPlatform &platform,
                                 Phase2Config cfg)
    : platform_(platform), cfg_(std::move(cfg))
{
}

Phase2Result
Phase2Optimizer::run(const nn::ModelSpec &spec,
                     QuantOracle quant_oracle)
{
    spec.validate();
    Phase2Result result;

    // --- Quantization bit-width search (Sec. VII-D). ---
    QuantOracle oracle = quant_oracle ?
        std::move(quant_oracle) : QuantOracle(analyticQuantDegradation);
    const quant::BitSearchResult bits = quant::selectWeightBits(
        oracle, cfg_.bitCandidates, cfg_.maxQuantDegradation);
    result.weightBits = bits.bits;
    result.quantDegradation = bits.degradation;
    result.bitSweep = bits.sweep;

    // --- Activation implementation: the smallest PWL segment count
    // whose error hides under the quantization step. ---
    const quant::FixedPointFormat fmt =
        quant::chooseClampFormat(result.weightBits, 4.0);
    const Real budget = fmt.step();
    result.activationSegments = cfg_.segmentCandidates.back();
    for (std::size_t segs : cfg_.segmentCandidates) {
        const nn::PiecewiseLinear sig(nn::ActKind::Sigmoid, segs,
                                      cfg_.activationRange);
        const nn::PiecewiseLinear th(nn::ActKind::Tanh, segs,
                                     cfg_.activationRange);
        if (sig.maxError() <= budget && th.maxError() <= budget) {
            result.activationSegments = segs;
            result.sigmoidMaxError = sig.maxError();
            result.tanhMaxError = th.maxError();
            break;
        }
        result.sigmoidMaxError = sig.maxError();
        result.tanhMaxError = th.maxError();
    }

    // --- Hardware mapping + cycle-level cross-check. ---
    result.design =
        hw::evaluateDesign(spec, platform_, result.weightBits);
    result.simCrossCheck = sim::simulateAccelerator(
        spec, platform_, result.weightBits);
    return result;
}

Phase2Optimizer::QuantOracle
measuredQuantOracle(const nn::StackedRnn &model,
                    const nn::SequenceDataset &data)
{
    ernn_assert(!data.empty(), "measuredQuantOracle: empty dataset");
    // Float serving PER is the degradation reference point.
    const Real baseline =
        speech::evaluatePer(runtime::compile(model), data);
    return [&model, &data, baseline](int bits) -> Real {
        runtime::CompileOptions opts;
        opts.backend = runtime::BackendKind::FixedPoint;
        opts.fixedPointBits = bits;
        const Real per =
            speech::evaluatePer(runtime::compile(model, opts), data);
        return std::max<Real>(0.0, per - baseline);
    };
}

} // namespace ernn::core
