/**
 * @file
 * E-RNN Phase II (Sec. VII): hardware-oriented optimization given
 * the Phase I model — PE count, quantization bit width, activation
 * implementation, and the resulting design point, cross-checked by
 * the cycle-level simulator.
 */

#ifndef ERNN_ERNN_PHASE2_HH
#define ERNN_ERNN_PHASE2_HH

#include <functional>

#include "hw/accelerator_model.hh"
#include "nn/activation.hh"
#include "quant/fixed_point.hh"
#include "sim/pipeline.hh"

namespace ernn::core
{

/** Phase II configuration. */
struct Phase2Config
{
    std::vector<int> bitCandidates = {8, 10, 12, 16};
    /** Budget for quantization-induced PER degradation (%); the
     *  paper keeps it under 0.1%. */
    Real maxQuantDegradation = 0.10;

    std::vector<std::size_t> segmentCandidates = {16, 32, 64, 128,
                                                  256};
    Real activationRange = 8.0;
};

/** Phase II outcome. */
struct Phase2Result
{
    int weightBits = 12;
    Real quantDegradation = 0.0;
    std::vector<std::pair<int, Real>> bitSweep;

    std::size_t activationSegments = 64;
    Real sigmoidMaxError = 0.0;
    Real tanhMaxError = 0.0;

    hw::DesignPoint design;
    sim::AcceleratorSimResult simCrossCheck;
};

class Phase2Optimizer
{
  public:
    /** Maps a bit width to expected PER degradation (%). */
    using QuantOracle = std::function<Real(int)>;

    explicit Phase2Optimizer(const hw::FpgaPlatform &platform,
                             Phase2Config cfg = {});

    /**
     * Optimize the hardware design for a Phase I model.
     *
     * @param quant_oracle degradation model for the bit-width
     *        search; pass {} for the built-in analytic model (which
     *        reproduces the paper's "12-bit is a safe design").
     */
    Phase2Result run(const nn::ModelSpec &spec,
                     QuantOracle quant_oracle = {});

  private:
    const hw::FpgaPlatform &platform_;
    Phase2Config cfg_;
};

/**
 * Measured alternative to the built-in analytic degradation model:
 * freezes @p model with the runtime FixedPoint backend at each
 * candidate bit width and scores @p data through a batched inference
 * session, so the bit-width search sees the *deployed* datapath
 * (quantized weights, quantized values, PWL activation tables)
 * instead of a fitted curve. The model and dataset must outlive the
 * returned oracle.
 */
Phase2Optimizer::QuantOracle measuredQuantOracle(
    const nn::StackedRnn &model, const nn::SequenceDataset &data);

} // namespace ernn::core

#endif // ERNN_ERNN_PHASE2_HH
