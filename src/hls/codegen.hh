/**
 * @file
 * Code generator of the HLS framework (Fig. 13): turns a scheduled
 * op graph into C/C++ source in the style the paper feeds to the
 * Xilinx SDx backend — one function per time step, HLS pragmas, and
 * calls into the primitive-operation templates
 * ("FFT -> element-wise multiplication -> IFFT", sigma, tanh,
 * point-wise add/mul).
 */

#ifndef ERNN_HLS_CODEGEN_HH
#define ERNN_HLS_CODEGEN_HH

#include <string>

#include "hls/op_graph.hh"
#include "hls/scheduler.hh"

namespace ernn::hls
{

/** Code generation options. */
struct CodegenOptions
{
    std::string functionName = "ernn_step";
    bool emitPragmas = true;  //!< #pragma HLS annotations
    bool emitSchedule = true; //!< per-op start-cycle comments
    int weightBits = 12;
    int fracBits = 8;
};

/**
 * Emit C-like HLS source implementing one time step of the graph.
 * When a schedule is supplied, each statement is annotated with its
 * start cycle and resource binding.
 */
std::string generateCode(const OpGraph &graph,
                         const Schedule *schedule = nullptr,
                         const CodegenOptions &options = {});

} // namespace ernn::hls

#endif // ERNN_HLS_CODEGEN_HH
