#include "hls/interpreter.hh"

#include "base/logging.hh"

namespace ernn::hls
{

Interpreter::Interpreter(const OpGraph &graph,
                         const WeightStore &weights,
                         InterpreterOptions options)
    : graph_(graph), weights_(weights), options_(options)
{
    graph_.validate();
}

void
Interpreter::resetState()
{
    state_.clear();
}

Vector
Interpreter::step(const Vector &input)
{
    std::vector<Vector> values(graph_.size());
    std::map<std::string, Vector> pending_writes;

    auto postprocess = [this](Vector &v) {
        if (options_.valueFormat)
            for (auto &x : v)
                x = options_.valueFormat->quantize(x);
    };

    for (std::size_t id : graph_.topoOrder()) {
        const OpNode &node = graph_.node(id);
        Vector out;
        switch (node.type) {
          case OpType::StateRead:
            if (node.payload == "input") {
                ernn_assert(input.size() == node.dim,
                            "interpreter input dim mismatch");
                out = input;
            } else {
                auto it = state_.find(node.payload);
                out = it != state_.end() ? it->second
                                         : Vector(node.dim, 0.0);
            }
            break;
          case OpType::StateWrite:
            pending_writes[node.payload] = values[node.inputs[0]];
            out = values[node.inputs[0]];
            break;
          case OpType::Concat:
            out = concat(values[node.inputs[0]],
                         values[node.inputs[1]]);
            break;
          case OpType::Slice: {
            const Vector &src = values[node.inputs[0]];
            ernn_assert(node.offset + node.dim <= src.size(),
                        "slice out of range");
            out.assign(src.begin() + static_cast<long>(node.offset),
                       src.begin() +
                           static_cast<long>(node.offset + node.dim));
            break;
          }
          case OpType::MatVec:
            out = weights_.matvec(node.payload)(
                values[node.inputs[0]]);
            postprocess(out);
            break;
          case OpType::DiagMul:
            out = hadamard(values[node.inputs[0]],
                           weights_.vector(node.payload));
            postprocess(out);
            break;
          case OpType::PointwiseMul:
            out = hadamard(values[node.inputs[0]],
                           values[node.inputs[1]]);
            postprocess(out);
            break;
          case OpType::PointwiseAdd:
            out = values[node.inputs[0]];
            addInPlace(out, values[node.inputs[1]]);
            postprocess(out);
            break;
          case OpType::AddBias:
            out = values[node.inputs[0]];
            addInPlace(out, weights_.vector(node.payload));
            postprocess(out);
            break;
          case OpType::OneMinus:
            out = values[node.inputs[0]];
            for (auto &v : out)
                v = 1.0 - v;
            break;
          case OpType::Sigmoid:
            out = values[node.inputs[0]];
            if (options_.sigmoidImpl)
                options_.sigmoidImpl->apply(out);
            else
                nn::applyActivation(nn::ActKind::Sigmoid, out);
            postprocess(out);
            break;
          case OpType::Tanh:
            out = values[node.inputs[0]];
            if (options_.tanhImpl)
                options_.tanhImpl->apply(out);
            else
                nn::applyActivation(nn::ActKind::Tanh, out);
            postprocess(out);
            break;
        }
        ernn_assert(out.size() == node.dim,
                    "node " << node.name << " produced "
                            << out.size() << " values, expected "
                            << node.dim);
        values[id] = std::move(out);
    }

    // Double-buffer commit: state updates become visible only to
    // the next time step.
    for (auto &kv : pending_writes)
        state_[kv.first] = std::move(kv.second);

    auto it = state_.find("logits");
    ernn_assert(it != state_.end(), "graph produced no logits");
    return it->second;
}

nn::Sequence
Interpreter::run(const nn::Sequence &frames)
{
    resetState();
    nn::Sequence out;
    out.reserve(frames.size());
    for (const auto &frame : frames)
        out.push_back(step(frame));
    return out;
}

} // namespace ernn::hls
