/**
 * @file
 * Op-graph interpreter: executes a generated operation graph with
 * double-buffered state semantics (writes commit at the end of each
 * time step). With default options it must agree with the nn/
 * forward pass bit-for-bit in spirit; with hardware options it
 * models the deployed datapath: fixed-point value quantization after
 * every operation and piecewise-linear activations (the Phase II
 * configuration).
 */

#ifndef ERNN_HLS_INTERPRETER_HH
#define ERNN_HLS_INTERPRETER_HH

#include <map>

#include "hls/op_graph.hh"
#include "hls/weight_store.hh"
#include "nn/activation.hh"
#include "quant/fixed_point.hh"

namespace ernn::hls
{

/** Optional hardware-datapath behaviours. */
struct InterpreterOptions
{
    /** Quantize every produced value (nullptr = exact). */
    const quant::FixedPointFormat *valueFormat = nullptr;

    /** PWL activation implementations (nullptr = exact). */
    const nn::PiecewiseLinear *sigmoidImpl = nullptr;
    const nn::PiecewiseLinear *tanhImpl = nullptr;
};

class Interpreter
{
  public:
    Interpreter(const OpGraph &graph, const WeightStore &weights,
                InterpreterOptions options = {});

    /** Clear all state buffers (between utterances). */
    void resetState();

    /** Execute one time step; returns the "logits" buffer. */
    Vector step(const Vector &input);

    /** Reset state and run a whole sequence of frames. */
    nn::Sequence run(const nn::Sequence &frames);

  private:
    const OpGraph &graph_;
    const WeightStore &weights_;
    InterpreterOptions options_;
    std::map<std::string, Vector> state_;
};

} // namespace ernn::hls

#endif // ERNN_HLS_INTERPRETER_HH
