#include "hls/op_graph.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ernn::hls
{

std::string
opTypeName(OpType type)
{
    switch (type) {
      case OpType::StateRead: return "state_read";
      case OpType::StateWrite: return "state_write";
      case OpType::Concat: return "concat";
      case OpType::Slice: return "slice";
      case OpType::MatVec: return "matvec_fft";
      case OpType::DiagMul: return "diag_mul";
      case OpType::PointwiseMul: return "pointwise_mul";
      case OpType::PointwiseAdd: return "pointwise_add";
      case OpType::AddBias: return "add_bias";
      case OpType::OneMinus: return "one_minus";
      case OpType::Sigmoid: return "sigmoid";
      case OpType::Tanh: return "tanh";
    }
    return "?";
}

std::size_t
OpGraph::add(OpNode node)
{
    node.id = nodes_.size();
    for (auto in : node.inputs) {
        ernn_assert(in < node.id,
                    "op graph edge must point backward ("
                        << in << " -> " << node.id << ")");
    }
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

std::size_t
OpGraph::count(OpType type) const
{
    std::size_t n = 0;
    for (const auto &node : nodes_)
        n += node.type == type;
    return n;
}

std::vector<std::size_t>
OpGraph::topoOrder() const
{
    // Append-only construction makes identity order topological.
    std::vector<std::size_t> order(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        order[i] = i;
    return order;
}

Real
OpGraph::criticalPathComplexity() const
{
    std::vector<Real> dist(nodes_.size(), 0.0);
    Real best = 0.0;
    for (const auto &node : nodes_) {
        Real in_dist = 0.0;
        for (auto in : node.inputs)
            in_dist = std::max(in_dist, dist[in]);
        dist[node.id] = in_dist + node.complexity;
        best = std::max(best, dist[node.id]);
    }
    return best;
}

void
OpGraph::validate() const
{
    for (const auto &node : nodes_) {
        for (auto in : node.inputs) {
            ernn_assert(in < node.id, "op graph has a forward edge");
            ernn_assert(nodes_[in].dim > 0, "node with zero dim");
        }
    }
}

namespace
{

/** Matvec abstract complexity: ~rows*cols/blockSize, scaled so a
 *  1024-wide pointwise op is 1.0 (the paper's 128x example). */
Real
matvecComplexity(std::size_t rows, std::size_t cols, std::size_t lb)
{
    return static_cast<Real>(rows) * static_cast<Real>(cols) /
           static_cast<Real>(std::max<std::size_t>(lb, 1)) / 1024.0;
}

struct GraphBuilder
{
    OpGraph graph;

    std::size_t
    read(const std::string &buf, std::size_t dim)
    {
        return graph.add({0, OpType::StateRead, "read " + buf, {},
                          dim, buf, 0, 0.05});
    }

    std::size_t
    write(const std::string &buf, std::size_t src)
    {
        return graph.add({0, OpType::StateWrite, "write " + buf,
                          {src}, graph.node(src).dim, buf, 0, 0.05});
    }

    std::size_t
    unary(OpType type, const std::string &name, std::size_t a,
          const std::string &payload = "")
    {
        return graph.add({0, type, name, {a}, graph.node(a).dim,
                          payload, 0, 1.0});
    }

    std::size_t
    binary(OpType type, const std::string &name, std::size_t a,
           std::size_t b)
    {
        ernn_assert(graph.node(a).dim == graph.node(b).dim,
                    "binary op dim mismatch in " << name);
        return graph.add({0, type, name, {a, b}, graph.node(a).dim,
                          "", 0, 1.0});
    }

    std::size_t
    concat(std::size_t a, std::size_t b)
    {
        return graph.add({0, OpType::Concat, "concat", {a, b},
                          graph.node(a).dim + graph.node(b).dim, "",
                          0, 0.1});
    }

    std::size_t
    slice(std::size_t a, std::size_t offset, std::size_t dim,
          const std::string &name)
    {
        return graph.add({0, OpType::Slice, name, {a}, dim, "",
                          offset, 0.05});
    }

    std::size_t
    matvec(const std::string &weight, std::size_t x,
           std::size_t out_dim, std::size_t lb)
    {
        return graph.add({0, OpType::MatVec, weight, {x}, out_dim,
                          weight, 0,
                          matvecComplexity(out_dim,
                                           graph.node(x).dim, lb)});
    }
};

} // namespace

OpGraph
buildGraph(const nn::ModelSpec &spec)
{
    spec.validate();
    GraphBuilder b;

    std::size_t x = b.read("input", spec.inputDim);

    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l) {
        const std::string tag = "l" + std::to_string(l);
        const std::size_t h = spec.layerSizes[l];
        const std::size_t lb = spec.blockFor(l);

        if (spec.type == nn::ModelType::Lstm) {
            const std::size_t out = spec.layerOutputSize(l);
            const std::size_t y_prev = b.read(tag + ".y", out);
            const std::size_t c_prev = b.read(tag + ".c", h);
            const std::size_t xy = b.concat(x, y_prev);

            // Fused gate matvec W(ifco)(xr) [x; y'], Sec. II-A.
            const std::size_t fused =
                b.matvec(tag + ".W(ifco)(xr)", xy, 4 * h, lb);
            std::size_t ipre = b.slice(fused, 0, h, "i_pre");
            std::size_t fpre = b.slice(fused, h, h, "f_pre");
            std::size_t gpre = b.slice(fused, 2 * h, h, "g_pre");
            std::size_t opre = b.slice(fused, 3 * h, h, "o_pre");

            if (spec.peephole) {
                ipre = b.binary(OpType::PointwiseAdd, "i+peep", ipre,
                                b.unary(OpType::DiagMul, "wic.c'",
                                        c_prev, tag + ".wic"));
                fpre = b.binary(OpType::PointwiseAdd, "f+peep", fpre,
                                b.unary(OpType::DiagMul, "wfc.c'",
                                        c_prev, tag + ".wfc"));
            }
            const std::size_t i = b.unary(
                OpType::Sigmoid, "i",
                b.unary(OpType::AddBias, "i+b", ipre, tag + ".bi"));
            const std::size_t f = b.unary(
                OpType::Sigmoid, "f",
                b.unary(OpType::AddBias, "f+b", fpre, tag + ".bf"));
            const std::size_t g = b.unary(
                OpType::Tanh, "g",
                b.unary(OpType::AddBias, "g+b", gpre, tag + ".bc"));

            // c = f.c' + g.i (Eqn. 1d)
            const std::size_t c = b.binary(
                OpType::PointwiseAdd, "c",
                b.binary(OpType::PointwiseMul, "f.c'", f, c_prev),
                b.binary(OpType::PointwiseMul, "g.i", g, i));

            if (spec.peephole) {
                opre = b.binary(OpType::PointwiseAdd, "o+peep", opre,
                                b.unary(OpType::DiagMul, "woc.c",
                                        c, tag + ".woc"));
            }
            const std::size_t o = b.unary(
                OpType::Sigmoid, "o",
                b.unary(OpType::AddBias, "o+b", opre, tag + ".bo"));

            // m = o . h(c) (Eqn. 1f)
            const std::size_t m = b.binary(
                OpType::PointwiseMul, "m", o,
                b.unary(OpType::Tanh, "h(c)", c));

            std::size_t y = m;
            if (spec.projectionSize) {
                y = b.matvec(tag + ".Wym", m, spec.projectionSize,
                             spec.inputBlockFor(l));
            }
            b.write(tag + ".c", c);
            b.write(tag + ".y", y);
            x = y;
        } else {
            const std::size_t c_prev = b.read(tag + ".c", h);
            const std::size_t xc = b.concat(x, c_prev);

            // Fused W(zr)(xc) [x; c'], Sec. II-B.
            const std::size_t fused =
                b.matvec(tag + ".W(zr)(xc)", xc, 2 * h, lb);
            const std::size_t z = b.unary(
                OpType::Sigmoid, "z",
                b.unary(OpType::AddBias, "z+b",
                        b.slice(fused, 0, h, "z_pre"), tag + ".bz"));
            const std::size_t r = b.unary(
                OpType::Sigmoid, "r",
                b.unary(OpType::AddBias, "r+b",
                        b.slice(fused, h, h, "r_pre"), tag + ".br"));

            // c~ = h(Wcx x + Wcc (r.c') + b) (Eqn. 2c)
            const std::size_t s = b.binary(OpType::PointwiseMul,
                                           "r.c'", r, c_prev);
            const std::size_t cand = b.unary(
                OpType::Tanh, "c~",
                b.unary(OpType::AddBias, "c~+b",
                        b.binary(OpType::PointwiseAdd, "c~_pre",
                                 b.matvec(tag + ".Wcx", x, h,
                                          spec.inputBlockFor(l)),
                                 b.matvec(tag + ".Wcc", s, h, lb)),
                        tag + ".bc"));

            // c = (1-z).c' + z.c~ (Eqn. 2d)
            const std::size_t c = b.binary(
                OpType::PointwiseAdd, "c",
                b.binary(OpType::PointwiseMul, "(1-z).c'",
                         b.unary(OpType::OneMinus, "1-z", z), c_prev),
                b.binary(OpType::PointwiseMul, "z.c~", z, cand));
            b.write(tag + ".c", c);
            x = c;
        }
    }

    // Softmax classifier head (host-side in the paper's deployment,
    // still part of the functional graph).
    const std::size_t logits =
        b.matvec("classifier.W", x, spec.numClasses, 1);
    const std::size_t biased = b.unary(OpType::AddBias, "logits+b",
                                       logits, "classifier.b");
    b.write("logits", biased);

    b.graph.validate();
    return std::move(b.graph);
}

} // namespace ernn::hls
