/**
 * @file
 * Operation graph generator of the HLS framework (Fig. 13): unrolls
 * one RNN time step into a directed acyclic graph of primitive
 * operations. The feedback edges (c_t, y_t) are deliberately removed
 * and replaced by state-buffer reads/writes — "we deliberately
 * remove the feedback edges of ct and yt, which are taken care of by
 * the double-buffer mechanism".
 */

#ifndef ERNN_HLS_OP_GRAPH_HH
#define ERNN_HLS_OP_GRAPH_HH

#include <string>
#include <vector>

#include "nn/model_builder.hh"

namespace ernn::hls
{

/** Primitive operation templates (the Template Generator set). */
enum class OpType
{
    StateRead,    //!< read a state buffer (x, c_{t-1}, y_{t-1})
    StateWrite,   //!< write a state buffer (c_t, y_t, logits)
    Concat,       //!< [a; b]
    Slice,        //!< contiguous sub-vector
    MatVec,       //!< FFT->eltwise->IFFT (or dense) matvec
    DiagMul,      //!< peephole: stored diagonal times vector
    PointwiseMul, //!< a ⊙ b
    PointwiseAdd, //!< a + b
    AddBias,      //!< a + stored bias
    OneMinus,     //!< 1 - a
    Sigmoid,      //!< logistic activation
    Tanh,         //!< hyperbolic tangent activation
};

/** Printable op-type name. */
std::string opTypeName(OpType type);

/** One node of the operation graph. */
struct OpNode
{
    std::size_t id = 0;
    OpType type = OpType::StateRead;
    std::string name;                //!< human-readable label
    std::vector<std::size_t> inputs; //!< producer node ids
    std::size_t dim = 0;             //!< output width
    std::string payload;             //!< weight/buffer key
    std::size_t offset = 0;          //!< Slice offset
    /** Abstract computational weight used by the scheduler (the
     *  paper: matvec is ~128x a pointwise op). */
    Real complexity = 1.0;
};

/** Append-only DAG (inputs always reference earlier nodes). */
class OpGraph
{
  public:
    /** Add a node; returns its id. */
    std::size_t add(OpNode node);

    const std::vector<OpNode> &nodes() const { return nodes_; }
    const OpNode &node(std::size_t id) const { return nodes_[id]; }
    std::size_t size() const { return nodes_.size(); }

    /** Count nodes of one type. */
    std::size_t count(OpType type) const;

    /** Node ids in a valid topological order. */
    std::vector<std::size_t> topoOrder() const;

    /** Longest dependency chain weighted by complexity. */
    Real criticalPathComplexity() const;

    /** Panic if any edge points forward (graph must be a DAG). */
    void validate() const;

  private:
    std::vector<OpNode> nodes_;
};

/**
 * Unroll one time step of the model into an op graph, fusing the
 * gate matrices into single matvecs (W(ifco)(xr), W(rz)(xc)) the
 * way the paper's CU does.
 */
OpGraph buildGraph(const nn::ModelSpec &spec);

} // namespace ernn::hls

#endif // ERNN_HLS_OP_GRAPH_HH
