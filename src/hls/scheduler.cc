#include "hls/scheduler.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/logging.hh"

namespace ernn::hls
{

ResourceClass
resourceOf(OpType type)
{
    switch (type) {
      case OpType::MatVec:
        return ResourceClass::MatVec;
      case OpType::DiagMul:
      case OpType::PointwiseMul:
      case OpType::PointwiseAdd:
      case OpType::AddBias:
      case OpType::OneMinus:
        return ResourceClass::Pointwise;
      case OpType::Sigmoid:
      case OpType::Tanh:
        return ResourceClass::Activation;
      case OpType::StateRead:
      case OpType::StateWrite:
      case OpType::Concat:
      case OpType::Slice:
        return ResourceClass::Buffer;
    }
    return ResourceClass::Buffer;
}

std::string
resourceName(ResourceClass res)
{
    switch (res) {
      case ResourceClass::MatVec: return "matvec";
      case ResourceClass::Pointwise: return "pointwise";
      case ResourceClass::Activation: return "activation";
      case ResourceClass::Buffer: return "buffer";
    }
    return "?";
}

Cycles
opCycles(const OpNode &node, const SchedulerConfig &cfg)
{
    switch (resourceOf(node.type)) {
      case ResourceClass::MatVec:
        return std::max<Cycles>(1, static_cast<Cycles>(std::ceil(
            node.complexity * cfg.matvecCycleFactor)));
      case ResourceClass::Pointwise:
      case ResourceClass::Activation:
        return std::max<Cycles>(1, static_cast<Cycles>(std::ceil(
            static_cast<Real>(node.dim) / cfg.vectorCycleFactor)));
      case ResourceClass::Buffer:
        return 1;
    }
    return 1;
}

Real
Schedule::utilization(ResourceClass res,
                      const SchedulerConfig &cfg) const
{
    std::size_t units = 1;
    switch (res) {
      case ResourceClass::MatVec: units = cfg.matvecUnits; break;
      case ResourceClass::Pointwise:
        units = cfg.pointwiseUnits;
        break;
      case ResourceClass::Activation:
        units = cfg.activationUnits;
        break;
      case ResourceClass::Buffer: units = cfg.bufferUnits; break;
    }
    Cycles busy = 0;
    for (const auto &op : ops)
        if (op.res == res)
            busy += op.finish - op.start;
    if (makespan == 0)
        return 0.0;
    return static_cast<Real>(busy) /
           (static_cast<Real>(makespan) * static_cast<Real>(units));
}

Schedule
scheduleGraph(const OpGraph &graph, const SchedulerConfig &cfg)
{
    graph.validate();

    auto units_of = [&cfg](ResourceClass res) {
        switch (res) {
          case ResourceClass::MatVec: return cfg.matvecUnits;
          case ResourceClass::Pointwise: return cfg.pointwiseUnits;
          case ResourceClass::Activation:
            return cfg.activationUnits;
          case ResourceClass::Buffer: return cfg.bufferUnits;
        }
        return std::size_t{1};
    };

    // Per-resource-class unit free times.
    std::map<ResourceClass, std::vector<Cycles>> unit_free;
    for (auto res : {ResourceClass::MatVec, ResourceClass::Pointwise,
                     ResourceClass::Activation,
                     ResourceClass::Buffer})
        unit_free[res].assign(units_of(res), 0);

    Schedule sched;
    sched.ops.resize(graph.size());

    for (std::size_t id : graph.topoOrder()) {
        const OpNode &node = graph.node(id);
        const ResourceClass res = resourceOf(node.type);
        const Cycles dur = opCycles(node, cfg);

        Cycles ready = 0;
        for (auto in : node.inputs)
            ready = std::max(ready, sched.ops[in].finish);

        // Earliest-available unit of the class.
        auto &frees = unit_free[res];
        std::size_t best_unit = 0;
        for (std::size_t u = 1; u < frees.size(); ++u)
            if (frees[u] < frees[best_unit])
                best_unit = u;

        const Cycles start = std::max(ready, frees[best_unit]);
        const Cycles finish = start + dur;
        frees[best_unit] = finish;

        sched.ops[id] = ScheduledOp{id, res, best_unit, start, finish};
        sched.makespan = std::max(sched.makespan, finish);
    }
    return sched;
}

} // namespace ernn::hls
