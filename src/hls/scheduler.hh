/**
 * @file
 * Operation scheduler of the HLS framework (Fig. 13): maps the op
 * graph onto limited hardware resource classes and produces a
 * pipeline schedule. "The computational complexities of the
 * primitive operations exhibit a highly skewed distribution ...
 * the objective is to maximize throughput under hardware resource
 * constraints."
 */

#ifndef ERNN_HLS_SCHEDULER_HH
#define ERNN_HLS_SCHEDULER_HH

#include "base/types.hh"
#include "hls/op_graph.hh"

namespace ernn::hls
{

/** Hardware resource classes an op can bind to. */
enum class ResourceClass { MatVec, Pointwise, Activation, Buffer };

/** Which resource class executes an op type. */
ResourceClass resourceOf(OpType type);

/** Printable resource-class name. */
std::string resourceName(ResourceClass res);

/** Scheduler resource capacities and timing factors. */
struct SchedulerConfig
{
    std::size_t matvecUnits = 1;   //!< PE arrays
    std::size_t pointwiseUnits = 2;
    std::size_t activationUnits = 2;
    std::size_t bufferUnits = 4;

    /** Cycles per unit of abstract matvec complexity. */
    Real matvecCycleFactor = 128.0;
    /** Cycles per pointwise/activation op (vector-wide lanes). */
    Real vectorCycleFactor = 16.0;
};

/** One scheduled operation. */
struct ScheduledOp
{
    std::size_t node = 0;
    ResourceClass res = ResourceClass::Buffer;
    std::size_t unit = 0;
    Cycles start = 0;
    Cycles finish = 0;
};

/** Complete schedule of a graph. */
struct Schedule
{
    std::vector<ScheduledOp> ops; //!< indexed by node id
    Cycles makespan = 0;

    /** Busy fraction of a resource class over the makespan. */
    Real utilization(ResourceClass res, const SchedulerConfig &cfg)
        const;
};

/** Cycle cost of one op under the config. */
Cycles opCycles(const OpNode &node, const SchedulerConfig &cfg);

/**
 * Dependency- and resource-constrained list scheduling in
 * topological order (ops start as early as their inputs and an idle
 * unit of their class allow).
 */
Schedule scheduleGraph(const OpGraph &graph,
                       const SchedulerConfig &cfg = {});

} // namespace ernn::hls

#endif // ERNN_HLS_SCHEDULER_HH
