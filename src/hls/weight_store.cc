#include "hls/weight_store.hh"

#include "base/logging.hh"
#include "base/strings.hh"
#include "nn/gru.hh"
#include "nn/lstm.hh"

namespace ernn::hls
{

void
WeightStore::addMatVec(const std::string &name, MatVecFn fn)
{
    matvecs_[name] = std::move(fn);
}

void
WeightStore::addVector(const std::string &name, Vector values)
{
    vectors_[name] = std::move(values);
}

bool
WeightStore::hasMatVec(const std::string &name) const
{
    return matvecs_.count(name) > 0;
}

bool
WeightStore::hasVector(const std::string &name) const
{
    return vectors_.count(name) > 0;
}

const WeightStore::MatVecFn &
WeightStore::matvec(const std::string &name) const
{
    auto it = matvecs_.find(name);
    ernn_assert(it != matvecs_.end(), "unknown matvec weight "
                << name);
    return it->second;
}

const Vector &
WeightStore::vector(const std::string &name) const
{
    auto it = vectors_.find(name);
    ernn_assert(it != vectors_.end(), "unknown vector weight "
                << name);
    return it->second;
}

WeightStore
WeightStore::fromModel(nn::StackedRnn &model, const nn::ModelSpec &spec)
{
    ernn_assert(model.numLayers() == spec.layerSizes.size(),
                "weight store: model/spec mismatch");
    WeightStore store;

    for (std::size_t l = 0; l < model.numLayers(); ++l) {
        const std::string tag = "l" + std::to_string(l);
        nn::RnnLayer &layer = model.layer(l);
        if (auto *lstm = dynamic_cast<nn::LstmLayer *>(&layer)) {
            const std::size_t in = lstm->config().inputSize;
            // Fused W(ifco)(xr) over [x; y'] in gate order i,f,c,o.
            store.addMatVec(tag + ".W(ifco)(xr)",
                [lstm, in](const Vector &v) {
                    const Vector x(v.begin(), v.begin() +
                                   static_cast<long>(in));
                    const Vector y(v.begin() + static_cast<long>(in),
                                   v.end());
                    Vector out;
                    Vector part, tmp;
                    for (auto pair :
                         {std::pair<nn::LinearOp *, nn::LinearOp *>
                              {&lstm->wix(), &lstm->wir()},
                          {&lstm->wfx(), &lstm->wfr()},
                          {&lstm->wcx(), &lstm->wcr()},
                          {&lstm->wox(), &lstm->wor()}}) {
                        pair.first->forward(x, part);
                        pair.second->forward(y, tmp);
                        addInPlace(part, tmp);
                        out.insert(out.end(), part.begin(),
                                   part.end());
                    }
                    return out;
                });
            if (lstm->wym()) {
                store.addMatVec(tag + ".Wym",
                    [lstm](const Vector &v) {
                        Vector out;
                        lstm->wym()->forward(v, out);
                        return out;
                    });
            }
        } else if (auto *gru = dynamic_cast<nn::GruLayer *>(&layer)) {
            const std::size_t in = gru->config().inputSize;
            store.addMatVec(tag + ".W(zr)(xc)",
                [gru, in](const Vector &v) {
                    const Vector x(v.begin(), v.begin() +
                                   static_cast<long>(in));
                    const Vector c(v.begin() + static_cast<long>(in),
                                   v.end());
                    Vector out;
                    Vector part, tmp;
                    for (auto pair :
                         {std::pair<nn::LinearOp *, nn::LinearOp *>
                              {&gru->wzx(), &gru->wzc()},
                          {&gru->wrx(), &gru->wrc()}}) {
                        pair.first->forward(x, part);
                        pair.second->forward(c, tmp);
                        addInPlace(part, tmp);
                        out.insert(out.end(), part.begin(),
                                   part.end());
                    }
                    return out;
                });
            store.addMatVec(tag + ".Wcx", [gru](const Vector &v) {
                Vector out;
                gru->wcx().forward(v, out);
                return out;
            });
            store.addMatVec(tag + ".Wcc", [gru](const Vector &v) {
                Vector out;
                gru->wcc().forward(v, out);
                return out;
            });
        } else {
            ernn_panic("weight store: unknown layer kind");
        }
    }

    // Bias / peephole / classifier values via the registry: the
    // registry names them "layerN.bi" etc.; the graph uses "lN.bi".
    for (const auto &view : model.params().views()) {
        if (startsWith(view.name, "classifier.")) {
            if (view.name == "classifier.b")
                store.addVector("classifier.b",
                                Vector(view.data,
                                       view.data + view.size));
            continue;
        }
        if (!startsWith(view.name, "layer"))
            continue;
        const auto parts = split(view.name, '.');
        if (parts.size() != 2)
            continue;
        const std::string &field = parts[1];
        if (field.size() >= 2 &&
            (field[0] == 'b' ||
             (field[0] == 'w' && field.size() == 3))) {
            // biases (bi, bf, ...) and peepholes (wic, wfc, woc).
            const std::string ltag =
                "l" + parts[0].substr(std::string("layer").size());
            store.addVector(ltag + "." + field,
                            Vector(view.data, view.data + view.size));
        }
    }

    store.addMatVec("classifier.W", [&model](const Vector &v) {
        // Reuse the registry-registered classifier weights through a
        // dense matvec snapshot-free path.
        const auto &views = model.params().views();
        for (const auto &view : views) {
            if (view.name == "classifier.w") {
                const std::size_t in = v.size();
                const std::size_t out = view.size / in;
                Vector y(out, 0.0);
                for (std::size_t r = 0; r < out; ++r) {
                    Real s = 0.0;
                    for (std::size_t c = 0; c < in; ++c)
                        s += view.data[r * in + c] * v[c];
                    y[r] = s;
                }
                return y;
            }
        }
        ernn_panic("classifier weights not found");
    });

    return store;
}

} // namespace ernn::hls
