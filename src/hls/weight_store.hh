/**
 * @file
 * Weight binding for the HLS interpreter: maps the op graph's weight
 * keys onto the live model parameters. Matvec entries are callbacks
 * into the model's LinearOps (so the fused W(ifco)(xr) runs through
 * the real FFT-based kernels); bias/peephole entries are value
 * snapshots. Build the store after the weights are final (e.g. after
 * ADMM projection and quantization).
 */

#ifndef ERNN_HLS_WEIGHT_STORE_HH
#define ERNN_HLS_WEIGHT_STORE_HH

#include <functional>
#include <map>
#include <string>

#include "nn/model_builder.hh"

namespace ernn::hls
{

class WeightStore
{
  public:
    using MatVecFn = std::function<Vector(const Vector &)>;

    void addMatVec(const std::string &name, MatVecFn fn);
    void addVector(const std::string &name, Vector values);

    bool hasMatVec(const std::string &name) const;
    bool hasVector(const std::string &name) const;

    const MatVecFn &matvec(const std::string &name) const;
    const Vector &vector(const std::string &name) const;

    /**
     * Bind every weight the graph of @p spec references to the live
     * ops of @p model (which must have been built from the same
     * spec).
     */
    static WeightStore fromModel(nn::StackedRnn &model,
                                 const nn::ModelSpec &spec);

  private:
    std::map<std::string, MatVecFn> matvecs_;
    std::map<std::string, Vector> vectors_;
};

} // namespace ernn::hls

#endif // ERNN_HLS_WEIGHT_STORE_HH
