#include "hw/accelerator_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ernn::hw
{

WorkloadOps
workloadOps(const nn::ModelSpec &spec)
{
    WorkloadOps out;
    for (const auto &w : nn::weightInventory(spec)) {
        if (w.cls == nn::WeightClass::Classifier)
            continue;
        out.params += w.params();
        out.denseParams += w.denseParams();
        const std::size_t lb = std::max<std::size_t>(w.blockSize, 1);
        const Real p = static_cast<Real>(w.rows / lb);
        const Real q = static_cast<Real>(w.cols / lb);
        out.blockOps += p * q;
        out.transformOps += p + q;
    }
    const HwCalibration &cal = defaultCalibration();
    const Real pw_per_elem = spec.type == nn::ModelType::Lstm ?
        cal.lstmPointwiseOpsPerElem : cal.gruPointwiseOpsPerElem;
    for (auto h : spec.layerSizes)
        out.pointwiseElems += pw_per_elem * static_cast<Real>(h);
    return out;
}

DesignPoint
evaluateDesign(const nn::ModelSpec &spec, const FpgaPlatform &platform,
               int bits, const HwCalibration &cal,
               const std::string &label)
{
    spec.validate();
    const WorkloadOps ops = workloadOps(spec);

    std::size_t headline_block = 1;
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l)
        headline_block = std::max({headline_block, spec.blockFor(l),
                                   spec.inputBlockFor(l)});
    ernn_assert(headline_block >= 2,
                "evaluateDesign: dense models are not mapped to the "
                "block-circulant accelerator (use the ESE baseline)");

    DesignPoint d;
    d.label = label;
    d.platformName = platform.name;
    d.weightBits = bits;
    d.blockSize = headline_block;
    d.params = ops.params;
    d.compressionRatio = static_cast<Real>(ops.denseParams) /
                         static_cast<Real>(std::max<std::size_t>(
                             ops.params, 1));

    const PeCost pe = peCost(headline_block, bits, cal);
    d.numPe = peCount(platform, headline_block, bits, cal);
    d.numCu = cal.computeUnits;

    // CGPipe latency: the recurrent dependency serializes frames of
    // one stream, so a frame traverses every stage on its CU's PEs.
    const Real pe_per_cu =
        static_cast<Real>(d.numPe) / static_cast<Real>(d.numCu);
    Real effective_ops =
        (ops.blockOps + ops.transformOps) * cal.cyclesPerBlockOp;
    if (spec.type == nn::ModelType::Gru)
        effective_ops /= cal.gruPipelineBoost;
    const Real matvec_cycles = effective_ops / pe_per_cu;
    const Real pointwise_cycles =
        ops.pointwiseElems / cal.pointwiseLanes;
    d.latencyCycles = static_cast<Cycles>(
        std::ceil(matvec_cycles + pointwise_cycles));
    d.latencyUs = static_cast<Real>(d.latencyCycles) *
                  platform.cyclePeriodUs();

    // One frame in flight per CU.
    d.fps = static_cast<Real>(d.numCu) * platform.clockMhz * 1e6 /
            static_cast<Real>(d.latencyCycles);

    // Resource utilization.
    const Real dsp_used = pe.dsp * static_cast<Real>(d.numPe);
    const Real lut_used = pe.lut * static_cast<Real>(d.numPe) +
                          30000.0; // controller + PCIE + collector
    const Real ff_used = pe.ff * static_cast<Real>(d.numPe) +
                         30000.0 * cal.ffPerLut;
    const BramDemand bram =
        bramDemand(spec, bits, platform, d.numPe, cal);

    d.dspUtil = dsp_used / static_cast<Real>(platform.dsp);
    d.lutUtil = lut_used / static_cast<Real>(platform.lut);
    d.ffUtil = ff_used / static_cast<Real>(platform.ff);
    d.bramUtil = bram.blocks / static_cast<Real>(platform.bramBlocks);

    // Power: static + dynamic per active resource.
    d.powerWatts = platform.staticWatts + dsp_used * cal.wattsPerDsp +
                   lut_used / 1000.0 * cal.wattsPerKiloLut +
                   bram.blocks * cal.wattsPerBramBlock;
    d.fpsPerWatt = d.fps / d.powerWatts;
    return d;
}

} // namespace ernn::hw
