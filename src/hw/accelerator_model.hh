/**
 * @file
 * End-to-end accelerator model (Figs. 9-12): maps a ModelSpec onto a
 * platform and predicts the quantities Table III reports — resource
 * utilization, per-frame latency, throughput (FPS), power, and
 * energy efficiency (FPS/W).
 *
 * Structure of the model:
 *  - operation counts per frame come from the block-circulant
 *    computation model (one block op per (i,j) frequency-domain
 *    product, plus input FFTs / output IFFTs after decoupling);
 *  - the PE count comes from the resource model;
 *  - the accelerator hosts `computeUnits` CUs, each running an
 *    independent voice stream (Fig. 9). The recurrent dependency
 *    (y_t feeds frame t+1) forbids pipelining consecutive frames of
 *    one stream, so per-frame latency covers all CGPipe stages and
 *    FPS = numCU * f_clk / latency_cycles.
 */

#ifndef ERNN_HW_ACCELERATOR_MODEL_HH
#define ERNN_HW_ACCELERATOR_MODEL_HH

#include <string>

#include "hw/resource_model.hh"

namespace ernn::hw
{

/** Per-frame operation counts of a model on the accelerator. */
struct WorkloadOps
{
    Real blockOps = 0.0;     //!< frequency-domain block products
    Real transformOps = 0.0; //!< input FFTs + output IFFTs
    Real pointwiseElems = 0.0;
    std::size_t params = 0;      //!< stored weight parameters
    std::size_t denseParams = 0; //!< dense-equivalent weights
};

/** Count per-frame work (classifier excluded: the softmax layer
 *  runs host-side, as in ESE). */
WorkloadOps workloadOps(const nn::ModelSpec &spec);

/** Everything Table III reports about one design. */
struct DesignPoint
{
    std::string label;
    std::string platformName;
    int weightBits = 0;
    std::size_t blockSize = 1; //!< headline (max) block size

    std::size_t params = 0;
    Real compressionRatio = 1.0;

    std::size_t numPe = 0;
    std::size_t numCu = 0;
    Real dspUtil = 0.0, bramUtil = 0.0, lutUtil = 0.0, ffUtil = 0.0;

    Cycles latencyCycles = 0;
    Real latencyUs = 0.0;
    Real fps = 0.0;
    Real powerWatts = 0.0;
    Real fpsPerWatt = 0.0;
};

/** Evaluate an E-RNN design for a spec on a platform. */
DesignPoint evaluateDesign(
    const nn::ModelSpec &spec, const FpgaPlatform &platform,
    int bits = 12, const HwCalibration &cal = defaultCalibration(),
    const std::string &label = "E-RNN");

} // namespace ernn::hw

#endif // ERNN_HW_ACCELERATOR_MODEL_HH
