#include "hw/baselines.hh"

#include <cmath>

#include "base/logging.hh"

namespace ernn::hw
{

DesignPoint
eseDesignPoint(const nn::ModelSpec &dense_spec,
               const FpgaPlatform &platform, const HwCalibration &cal)
{
    ernn_assert(dense_spec.isDenseBaseline(),
                "ESE prunes a dense model");
    const WorkloadOps ops = workloadOps(dense_spec);

    DesignPoint d;
    d.label = "ESE";
    d.platformName = platform.name;
    d.weightBits = 12;
    d.blockSize = 1;

    // Pruning keeps `density` of the weights, but every survivor
    // needs an index: the effective compression is ~4.5:1.
    const Real nnz =
        static_cast<Real>(ops.denseParams) * cal.eseSparseDensity;
    d.params = static_cast<std::size_t>(nnz * 2.0); // weight + index
    d.compressionRatio = static_cast<Real>(ops.denseParams) /
                         static_cast<Real>(d.params);

    // Sparse matvec on the MAC array: irregularity (one weight
    // indexing another) and off-chip activation LUTs gate the
    // achievable utilization.
    const Real cycles =
        nnz / (cal.eseMacUnits * cal.eseEfficiency);
    d.latencyCycles = static_cast<Cycles>(std::ceil(cycles));
    d.latencyUs = static_cast<Real>(d.latencyCycles) *
                  platform.cyclePeriodUs();

    // Single frame in flight (Table III: FPS = 1 / latency).
    d.numCu = 1;
    d.numPe = static_cast<std::size_t>(cal.eseMacUnits);
    d.fps = 1e6 / d.latencyUs;

    // ESE's published KU060 utilization.
    d.dspUtil = 0.545;
    d.bramUtil = 0.877;
    d.lutUtil = 0.886;
    d.ffUtil = 0.683;

    d.powerWatts = cal.eseMeasuredWatts;
    d.fpsPerWatt = d.fps / d.powerWatts;
    return d;
}

DesignPoint
clstmDesignPoint(const nn::ModelSpec &spec,
                 const FpgaPlatform &platform, const HwCalibration &cal)
{
    // Same structural model as E-RNN, at 16 bits and with the
    // scheduling penalty applied to the matvec pipeline.
    HwCalibration clstm = cal;
    clstm.cyclesPerBlockOp =
        cal.cyclesPerBlockOp * cal.clstmSchedulePenalty;
    DesignPoint d = evaluateDesign(spec, platform, 16, clstm,
                                   "C-LSTM");
    return d;
}

} // namespace ernn::hw
