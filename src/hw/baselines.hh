/**
 * @file
 * Baseline accelerator models the paper compares against:
 *
 *  - ESE (Han et al., FPGA'17): pruned sparse LSTM. Weights compress
 *    4-6x once indices are counted; the irregular structure limits
 *    parallel PE utilization and the LUT-table activations stall the
 *    pipeline — ESE therefore keeps a single frame in flight
 *    (FPS = 1 / latency in Table III).
 *
 *  - C-LSTM (Wang et al., FPGA'18): the same block-circulant
 *    framework at 16-bit quantization, without E-RNN's PE-level
 *    optimization and systematic scheduling (the paper attributes
 *    <10% of the gap to quantization and the rest to the design
 *    framework).
 */

#ifndef ERNN_HW_BASELINES_HH
#define ERNN_HW_BASELINES_HH

#include "hw/accelerator_model.hh"

namespace ernn::hw
{

/**
 * ESE on its published platform (KU060). The workload is the
 * LSTM-1024/proj-512 top layer the paper benchmarks.
 */
DesignPoint eseDesignPoint(
    const nn::ModelSpec &dense_spec,
    const FpgaPlatform &platform = xcku060(),
    const HwCalibration &cal = defaultCalibration());

/** C-LSTM with the given block size on the 7V3 (its published
 *  platform). @p spec must be the block-circulant spec. */
DesignPoint clstmDesignPoint(
    const nn::ModelSpec &spec,
    const FpgaPlatform &platform = adm7v3(),
    const HwCalibration &cal = defaultCalibration());

} // namespace ernn::hw

#endif // ERNN_HW_BASELINES_HH
