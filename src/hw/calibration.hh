/**
 * @file
 * Calibration constants of the hardware model.
 *
 * The model is structural — operation counts come from the
 * block-circulant computation model, PE counts from the paper's
 * #PE = min(DSP/dPE, LUT/dPE) rule, latency from the CGPipe laws —
 * but mapping abstract operations onto a real device needs a small
 * number of technology constants. Each constant below is calibrated
 * once against a single anchor (the E-RNN FFT8 LSTM design point of
 * Table III) or carries the paper's stated cause; everything else in
 * Table III must then *emerge* from the model. See EXPERIMENTS.md
 * for the resulting paper-vs-model deltas.
 */

#ifndef ERNN_HW_CALIBRATION_HH
#define ERNN_HW_CALIBRATION_HH

#include "base/types.hh"

namespace ernn::hw
{

struct HwCalibration
{
    /**
     * Average cycles one PE spends per block operation (one
     * frequency-domain block product plus its share of FFT/IFFT and
     * accumulation work, including TDM switch overhead). Calibrated
     * to the 13.7 us KU060 FFT8 LSTM latency.
     */
    Real cyclesPerBlockOp = 2.15;

    /**
     * Compute units: independent voice streams in flight. Every
     * E-RNN / C-LSTM row of Table III satisfies FPS x latency ~ 3.0
     * (three CUs); ESE processes a single stream (1.0).
     */
    std::size_t computeUnits = 3;

    /**
     * GRU CU efficiency advantage: CGPipe stages 1 and 2 share PE
     * hardware via TDM (Sec. VII-C2), which keeps the multipliers
     * busier than the LSTM's three dedicated stages. Calibrated to
     * the GRU-vs-LSTM FFT8 pair of Table III.
     */
    Real gruPipelineBoost = 1.47;

    /** DSP slices per complex multiplier (Karatsuba, <=18-bit). */
    Real dspPerComplexMult = 3.0;

    /** Extra DSP fabric factor for 16-bit datapaths (C-LSTM). */
    Real dsp16BitFactor = 1.33;

    /** LUTs per PE: bits * (lutPerBitBlock * Lb + lutPerBitBase). */
    Real lutPerBitBlock = 12.0;
    Real lutPerBitBase = 40.0;

    /** FFs track LUTs in these register-rich pipelines. */
    Real ffPerLut = 1.05;

    /** Achievable utilization before routing congestion. */
    Real dspUtilTarget = 0.97;
    Real lutUtilTarget = 0.82;

    /**
     * BRAM banking: each PE needs independent weight/input banks to
     * sustain one block op per cycle, plus global I/O and double
     * buffers. Banking (not raw bits) dominates BRAM utilization.
     */
    Real bramBanksPerPe = 6.5;
    Real bramFixedBlocks = 60.0;

    /**
     * Spectrum-domain weight storage: FFT(w) has Lb/2 + 1 bins, but
     * bins 0 and Lb/2 of a real spectrum are purely real, so the
     * packed storage is exactly Lb reals per Lb-entry generator —
     * pre-transforming the weights costs no extra BRAM.
     */
    Real spectrumStorageFactor(std::size_t) const { return 1.0; }

    /** Pointwise-stage throughput (parallel multiplier lanes). */
    Real pointwiseLanes = 64.0;

    /** Per-element pointwise work (Eqns. 1d-1g / 2c-2d). */
    Real lstmPointwiseOpsPerElem = 8.0;
    Real gruPointwiseOpsPerElem = 6.0;

    /** Dynamic power per active resource (W). */
    Real wattsPerDsp = 3.3e-3;
    Real wattsPerKiloLut = 9.0e-3;
    Real wattsPerBramBlock = 3.0e-3;

    /** C-LSTM's operation scheduler lacks E-RNN's PE-level
     *  optimization; the paper attributes most of the 1.33x gap to
     *  it (quantization covers "less than 10%"). */
    Real clstmSchedulePenalty = 1.18;

    /** ESE: irregular sparse network limits parallel PE utilization
     *  and activations go through off-chip LUTs; calibrated to ESE's
     *  published 57 us / 17,544 FPS KU060 design point. */
    Real eseSparseDensity = 0.10;   //!< nonzeros after pruning
    Real eseMacUnits = 1024.0;      //!< ESE's multiplier array
    Real eseEfficiency = 0.0281;    //!< irregularity + LUT stalls
    Real eseMeasuredWatts = 41.0;   //!< ESE's reported board power
};

/** The library-wide default calibration. */
const HwCalibration &defaultCalibration();

} // namespace ernn::hw

#endif // ERNN_HW_CALIBRATION_HH
