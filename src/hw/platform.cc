#include "hw/platform.hh"

namespace ernn::hw
{

const FpgaPlatform &
adm7v3()
{
    static const FpgaPlatform p{
        "ADM-PCIE-7V3", 3600, 1470, 859200, 429600, 28, 200.0, 7.0};
    return p;
}

const FpgaPlatform &
xcku060()
{
    // 20nm process: lower static power than the 28nm Virtex-7.
    static const FpgaPlatform p{
        "XCKU060", 2760, 1080, 331680, 663360, 20, 200.0, 5.0};
    return p;
}

std::vector<const FpgaPlatform *>
allPlatforms()
{
    return {&adm7v3(), &xcku060()};
}

} // namespace ernn::hw
