/**
 * @file
 * FPGA platform descriptions (Table IV of the paper).
 */

#ifndef ERNN_HW_PLATFORM_HH
#define ERNN_HW_PLATFORM_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace ernn::hw
{

/** Static resources of one FPGA board. */
struct FpgaPlatform
{
    std::string name;
    std::size_t dsp = 0;       //!< DSP slices
    std::size_t bramBlocks = 0; //!< 36Kb BRAM blocks
    std::size_t lut = 0;
    std::size_t ff = 0;
    int processNm = 0;         //!< manufacturing process
    Real clockMhz = 200.0;     //!< the paper runs both at 200 MHz
    Real staticWatts = 7.0;    //!< board static power

    /** Total BRAM capacity in bits (36Kb per block). */
    Real bramBits() const
    {
        return static_cast<Real>(bramBlocks) * 36.0 * 1024.0;
    }

    /** Clock period in microseconds. */
    Real cyclePeriodUs() const { return 1.0 / clockMhz; }
};

/** ADM-PCIE-7V3 (Xilinx Virtex-7 690t), per Table IV. */
const FpgaPlatform &adm7v3();

/** Xilinx Kintex UltraScale KU060, per Table IV. */
const FpgaPlatform &xcku060();

/** Both platforms, in the paper's order. */
std::vector<const FpgaPlatform *> allPlatforms();

} // namespace ernn::hw

#endif // ERNN_HW_PLATFORM_HH
