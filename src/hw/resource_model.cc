#include "hw/resource_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "tensor/fft.hh"

namespace ernn::hw
{

const HwCalibration &
defaultCalibration()
{
    static const HwCalibration cal;
    return cal;
}

PeCost
peCost(std::size_t block_size, int bits, const HwCalibration &cal)
{
    ernn_assert(fft::isPowerOfTwo(block_size) && block_size >= 2,
                "PE block size must be a power of two >= 2");
    // Complex multipliers in the datapath: forward + inverse
    // real-FFT (trivial twiddles pruned, halved by the real-input
    // symmetry) plus the frequency-domain dot product over
    // Lb/2 + 1 bins.
    const Real fft_cmults = static_cast<Real>(
        fft::complexFftRealMults(block_size)) / 4.0 / 2.0;
    const Real dot_cmults =
        static_cast<Real>(block_size / 2 + 1);
    const Real cmults = 2.0 * fft_cmults + dot_cmults;

    PeCost cost;
    cost.dsp = cal.dspPerComplexMult * cmults;
    if (bits > 12)
        cost.dsp *= cal.dsp16BitFactor;
    cost.lut = static_cast<Real>(bits) *
               (cal.lutPerBitBlock * static_cast<Real>(block_size) +
                cal.lutPerBitBase);
    cost.ff = cost.lut * cal.ffPerLut;
    return cost;
}

std::size_t
peCount(const FpgaPlatform &platform, std::size_t block_size, int bits,
        const HwCalibration &cal)
{
    const PeCost cost = peCost(block_size, bits, cal);
    const Real by_dsp =
        static_cast<Real>(platform.dsp) * cal.dspUtilTarget / cost.dsp;
    const Real by_lut =
        static_cast<Real>(platform.lut) * cal.lutUtilTarget / cost.lut;
    const auto n = static_cast<std::size_t>(
        std::floor(std::min(by_dsp, by_lut)));
    ernn_assert(n >= 1, "platform cannot host even one PE");
    return n;
}

BramDemand
bramDemand(const nn::ModelSpec &spec, int bits,
           const FpgaPlatform &platform, std::size_t num_pe,
           const HwCalibration &cal)
{
    BramDemand out;
    for (const auto &w : nn::weightInventory(spec)) {
        const Real factor = w.blockSize > 1 ?
            cal.spectrumStorageFactor(w.blockSize) : 1.0;
        out.weightBits += static_cast<Real>(w.params()) * factor *
                          static_cast<Real>(bits);
    }
    // Biases and peepholes are tiny but on-chip too.
    std::size_t bias_elems = 0;
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l) {
        const std::size_t gates =
            spec.type == nn::ModelType::Lstm ? 4 : 3;
        bias_elems += gates * spec.layerSizes[l];
        if (spec.peephole && spec.type == nn::ModelType::Lstm)
            bias_elems += 3 * spec.layerSizes[l];
    }
    out.weightBits += static_cast<Real>(bias_elems * bits);

    // Input/output and inter-stage double buffers.
    Real buffer_elems = static_cast<Real>(spec.inputDim);
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l)
        buffer_elems += 4.0 * static_cast<Real>(spec.layerSizes[l]);
    out.bufferBits = buffer_elems * static_cast<Real>(bits) * 2.0;

    const Real bits_blocks =
        (out.weightBits + out.bufferBits) / (36.0 * 1024.0);
    const Real banking_blocks =
        cal.bramBanksPerPe * static_cast<Real>(num_pe) +
        cal.bramFixedBlocks;
    out.blocks = std::max(bits_blocks, banking_blocks);
    out.fits = out.blocks <= static_cast<Real>(platform.bramBlocks);
    return out;
}

std::size_t
minBlockSizeForBram(const nn::ModelSpec &dense_spec, int bits,
                    const FpgaPlatform &platform,
                    const HwCalibration &cal)
{
    for (std::size_t lb = 1; lb <= 128; lb <<= 1) {
        nn::ModelSpec spec = dense_spec;
        spec.blockSizes.assign(spec.layerSizes.size(), lb);
        spec.inputBlockSizes.clear();
        // Bit-capacity check only: PE banking is a Phase II concern.
        const BramDemand d = bramDemand(spec, bits, platform, 0, cal);
        const Real capacity =
            static_cast<Real>(platform.bramBlocks) * 36.0 * 1024.0;
        // Keep a margin of BRAM for inputs/outputs (the paper:
        // "a block size 8 will be safer in order to allocate certain
        // portion of BRAM for inputs/outputs").
        if (d.weightBits + d.bufferBits <= 0.85 * capacity)
            return lb;
    }
    return 0;
}

} // namespace ernn::hw
