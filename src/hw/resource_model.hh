/**
 * @file
 * FPGA resource model: PE cost (Fig. 10), PE count
 * (#PE = min(DSP/dDSP, LUT/dLUT), Sec. VII-B), BRAM sizing and the
 * Phase I sanity check ("does the whole RNN model fit into on-chip
 * BRAM?").
 */

#ifndef ERNN_HW_RESOURCE_MODEL_HH
#define ERNN_HW_RESOURCE_MODEL_HH

#include "hw/calibration.hh"
#include "hw/platform.hh"
#include "nn/model_builder.hh"

namespace ernn::hw
{

/** Resource cost of one processing element. */
struct PeCost
{
    Real dsp = 0.0;
    Real lut = 0.0;
    Real ff = 0.0;
};

/**
 * Cost of a PE built for FFT size @p block_size at the given weight
 * bit width: two real-valued FFT datapaths, the conjugate/dot
 * product multipliers, and the accumulator (Fig. 10).
 */
PeCost peCost(std::size_t block_size, int bits,
              const HwCalibration &cal = defaultCalibration());

/** #PE = min over the binding resource (Sec. VII-B). */
std::size_t peCount(const FpgaPlatform &platform,
                    std::size_t block_size, int bits,
                    const HwCalibration &cal = defaultCalibration());

/** BRAM demand of a model (bits and blocks). */
struct BramDemand
{
    Real weightBits = 0.0;  //!< spectrum-domain weights + biases
    Real bufferBits = 0.0;  //!< I/O and double buffers
    Real blocks = 0.0;      //!< 36Kb blocks incl. banking
    bool fits = false;      //!< within the platform's BRAM
};

/**
 * BRAM needed to hold the whole model on-chip with the given number
 * of PEs (banking-aware). This implements Phase I's step-one sanity
 * check.
 */
BramDemand bramDemand(const nn::ModelSpec &spec, int bits,
                      const FpgaPlatform &platform, std::size_t num_pe,
                      const HwCalibration &cal = defaultCalibration());

/**
 * Smallest power-of-two block size whose model fits into the
 * platform's BRAM (the lower bound Phase I step one derives).
 * Returns 0 when even the largest sensible block size does not fit.
 */
std::size_t minBlockSizeForBram(
    const nn::ModelSpec &dense_spec, int bits,
    const FpgaPlatform &platform,
    const HwCalibration &cal = defaultCalibration());

} // namespace ernn::hw

#endif // ERNN_HW_RESOURCE_MODEL_HH
