#include "nn/activation.hh"

#include <cmath>

#include "base/logging.hh"

namespace ernn::nn
{

std::string
actName(ActKind kind)
{
    return kind == ActKind::Sigmoid ? "sigmoid" : "tanh";
}

Real
sigmoid(Real x)
{
    if (x >= 0) {
        const Real z = std::exp(-x);
        return 1.0 / (1.0 + z);
    }
    const Real z = std::exp(x);
    return z / (1.0 + z);
}

Real
tanhAct(Real x)
{
    return std::tanh(x);
}

void
applyActivation(ActKind kind, Vector &v)
{
    if (kind == ActKind::Sigmoid) {
        for (auto &x : v)
            x = sigmoid(x);
    } else {
        for (auto &x : v)
            x = std::tanh(x);
    }
}

Vector
activated(ActKind kind, const Vector &v)
{
    Vector out = v;
    applyActivation(kind, out);
    return out;
}

Real
actDerivFromOutput(ActKind kind, Real y)
{
    if (kind == ActKind::Sigmoid)
        return y * (1.0 - y);
    return 1.0 - y * y;
}

PiecewiseLinear::PiecewiseLinear(ActKind kind, std::size_t segments,
                                 Real range)
    : kind_(kind), range_(range)
{
    ernn_assert(segments >= 2, "PWL needs at least two segments");
    ernn_assert(range > 0, "PWL range must be positive");
    lo_ = -range;
    step_ = 2.0 * range / static_cast<Real>(segments);
    satLo_ = kind == ActKind::Sigmoid ? 0.0 : -1.0;
    satHi_ = 1.0;

    auto exact = [kind](Real x) {
        return kind == ActKind::Sigmoid ? sigmoid(x) : std::tanh(x);
    };

    slopes_.resize(segments);
    intercepts_.resize(segments);
    for (std::size_t s = 0; s < segments; ++s) {
        const Real x0 = lo_ + step_ * static_cast<Real>(s);
        const Real x1 = x0 + step_;
        const Real y0 = exact(x0);
        const Real y1 = exact(x1);
        slopes_[s] = (y1 - y0) / (x1 - x0);
        intercepts_[s] = y0 - slopes_[s] * x0;
    }
}

Real
PiecewiseLinear::eval(Real x) const
{
    if (x <= lo_)
        return satLo_;
    if (x >= -lo_)
        return satHi_;
    auto s = static_cast<std::size_t>((x - lo_) / step_);
    if (s >= slopes_.size())
        s = slopes_.size() - 1;
    return slopes_[s] * x + intercepts_[s];
}

void
PiecewiseLinear::apply(Vector &v) const
{
    for (auto &x : v)
        x = eval(x);
}

Real
PiecewiseLinear::maxError() const
{
    auto exact = [this](Real x) {
        return kind_ == ActKind::Sigmoid ? sigmoid(x) : std::tanh(x);
    };
    Real worst = 0.0;
    const Real span = range_ + 1.0;
    const int grid = 4001;
    for (int i = 0; i < grid; ++i) {
        const Real x = -span + 2.0 * span * static_cast<Real>(i) /
                                   static_cast<Real>(grid - 1);
        worst = std::max(worst, std::abs(eval(x) - exact(x)));
    }
    return worst;
}

} // namespace ernn::nn
