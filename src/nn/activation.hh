/**
 * @file
 * Activation functions: exact sigmoid/tanh for training, and the
 * piecewise-linear (PWL) approximations the paper implements on-chip
 * (Sec. VIII-B1: "piecewise linear approximation method can support
 * activation implementation only using on-chip resources").
 */

#ifndef ERNN_NN_ACTIVATION_HH
#define ERNN_NN_ACTIVATION_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/types.hh"
#include "tensor/vector_ops.hh"

namespace ernn::nn
{

/** Supported scalar nonlinearities. */
enum class ActKind { Sigmoid, Tanh };

/** Human-readable name ("sigmoid" / "tanh"). */
std::string actName(ActKind kind);

/** Exact logistic function. */
Real sigmoid(Real x);

/** Exact hyperbolic tangent. */
Real tanhAct(Real x);

/** Apply the exact activation elementwise. */
void applyActivation(ActKind kind, Vector &v);

/** Elementwise activation returning a new vector. */
Vector activated(ActKind kind, const Vector &v);

/**
 * Derivative expressed through the *output* value y = act(x):
 * sigmoid' = y(1-y), tanh' = 1-y^2. This is the form BPTT uses.
 */
Real actDerivFromOutput(ActKind kind, Real y);

/**
 * Piecewise-linear activation approximation.
 *
 * The input range [-range, range] is cut into uniform segments; each
 * segment stores a (slope, intercept) pair, and inputs beyond the
 * range saturate to the asymptotic values. In hardware one segment
 * costs one multiplier, one adder, and a small LUT entry; the model
 * in hw/resource_model.hh consumes segments() for its cost estimate.
 */
class PiecewiseLinear
{
  public:
    /**
     * Build an approximation by interpolating the exact function at
     * segment endpoints.
     *
     * @param kind     function to approximate
     * @param segments number of linear pieces (>= 2)
     * @param range    half-width of the approximated interval
     */
    PiecewiseLinear(ActKind kind, std::size_t segments, Real range);

    /** Evaluate the approximation. */
    Real eval(Real x) const;

    /** Apply elementwise in place. */
    void apply(Vector &v) const;

    /** Maximum absolute error against the exact function
     *  (measured on a dense grid over [-range-1, range+1]). */
    Real maxError() const;

    ActKind kind() const { return kind_; }
    std::size_t segments() const { return slopes_.size(); }
    Real range() const { return range_; }

  private:
    ActKind kind_;
    Real range_;
    Real lo_, step_;
    Real satLo_, satHi_;
    std::vector<Real> slopes_;
    std::vector<Real> intercepts_;
};

} // namespace ernn::nn

#endif // ERNN_NN_ACTIVATION_HH
