#include "nn/gru.hh"

#include "base/logging.hh"

namespace ernn::nn
{

GruLayer::GruLayer(const GruConfig &cfg)
    : cfg_(cfg)
{
    ernn_assert(cfg.inputSize > 0 && cfg.hiddenSize > 0,
                "GRU needs positive input/hidden sizes");
    const std::size_t in = cfg.inputSize;
    const std::size_t h = cfg.hiddenSize;

    wzx_ = makeLinear(h, in, cfg.blockSizeInput);
    wrx_ = makeLinear(h, in, cfg.blockSizeInput);
    wcx_ = makeLinear(h, in, cfg.blockSizeInput);
    wzc_ = makeLinear(h, h, cfg.blockSizeRecurrent);
    wrc_ = makeLinear(h, h, cfg.blockSizeRecurrent);
    wcc_ = makeLinear(h, h, cfg.blockSizeRecurrent);

    bz_.assign(h, 0.0); br_.assign(h, 0.0); bc_.assign(h, 0.0);
    dbz_.assign(h, 0.0); dbr_.assign(h, 0.0); dbc_.assign(h, 0.0);
}

Sequence
GruLayer::forward(const Sequence &xs)
{
    const std::size_t h = cfg_.hiddenSize;

    cache_.clear();
    cache_.reserve(xs.size());

    Vector c_prev(h, 0.0);
    Sequence ys;
    ys.reserve(xs.size());

    Vector tmp(h);
    for (const Vector &x : xs) {
        ernn_assert(x.size() == cfg_.inputSize,
                    "GRU input dim mismatch");
        StepCache st;
        st.x = x;
        st.cPrev = c_prev;

        // Update gate (Eqn. 2a).
        wzx_->forward(x, st.z);
        wzc_->forward(c_prev, tmp);
        addInPlace(st.z, tmp);
        addInPlace(st.z, bz_);
        applyActivation(ActKind::Sigmoid, st.z);

        // Reset gate (Eqn. 2b).
        wrx_->forward(x, st.r);
        wrc_->forward(c_prev, tmp);
        addInPlace(st.r, tmp);
        addInPlace(st.r, br_);
        applyActivation(ActKind::Sigmoid, st.r);

        // Candidate state from the reset-gated history (Eqn. 2c).
        st.s = hadamard(st.r, c_prev);
        wcx_->forward(x, st.cand);
        wcc_->forward(st.s, tmp);
        addInPlace(st.cand, tmp);
        addInPlace(st.cand, bc_);
        applyActivation(cfg_.candidateAct, st.cand);

        // State blend (Eqn. 2d): c = (1-z).c' + z.c~
        st.c.resize(h);
        for (std::size_t k = 0; k < h; ++k)
            st.c[k] = (1.0 - st.z[k]) * c_prev[k] +
                      st.z[k] * st.cand[k];

        c_prev = st.c;
        ys.push_back(st.c);
        cache_.push_back(std::move(st));
    }
    return ys;
}

Sequence
GruLayer::backward(const Sequence &dys)
{
    ernn_assert(dys.size() == cache_.size(),
                "GRU backward: sequence length mismatch (forward "
                "must precede backward)");
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t t_len = cache_.size();

    Sequence dxs(t_len);
    Vector dc_rec(h, 0.0);

    for (std::size_t ti = t_len; ti-- > 0;) {
        const StepCache &st = cache_[ti];
        ernn_assert(dys[ti].size() == h, "GRU backward: dy mismatch");

        Vector dc = dys[ti];
        addInPlace(dc, dc_rec);

        // c = (1-z).c' + z.c~
        Vector dz(h), dcand(h), dc_prev(h);
        for (std::size_t k = 0; k < h; ++k) {
            dz[k] = dc[k] * (st.cand[k] - st.cPrev[k]);
            dcand[k] = dc[k] * st.z[k];
            dc_prev[k] = dc[k] * (1.0 - st.z[k]);
        }

        // Candidate pre-activation.
        Vector dcand_pre(h);
        for (std::size_t k = 0; k < h; ++k)
            dcand_pre[k] = dcand[k] *
                actDerivFromOutput(cfg_.candidateAct, st.cand[k]);

        Vector dx(cfg_.inputSize, 0.0);
        Vector ds(h, 0.0);
        wcx_->backward(st.x, dcand_pre, &dx);
        wcc_->backward(st.s, dcand_pre, &ds);
        addInPlace(dbc_, dcand_pre);

        // s = r . c'
        Vector dr = hadamard(ds, st.cPrev);
        hadamardAcc(dc_prev, ds, st.r);

        Vector dz_pre(h), dr_pre(h);
        for (std::size_t k = 0; k < h; ++k) {
            dz_pre[k] = dz[k] * st.z[k] * (1.0 - st.z[k]);
            dr_pre[k] = dr[k] * st.r[k] * (1.0 - st.r[k]);
        }

        wzx_->backward(st.x, dz_pre, &dx);
        wzc_->backward(st.cPrev, dz_pre, &dc_prev);
        addInPlace(dbz_, dz_pre);

        wrx_->backward(st.x, dr_pre, &dx);
        wrc_->backward(st.cPrev, dr_pre, &dc_prev);
        addInPlace(dbr_, dr_pre);

        dxs[ti] = std::move(dx);
        dc_rec = std::move(dc_prev);
    }
    return dxs;
}

BatchSequence
GruLayer::forwardBatch(const BatchSequence &xs)
{
    const std::size_t h = cfg_.hiddenSize;

    batchCache_.clear();
    batchCache_.reserve(xs.size());

    BatchSequence ys;
    ys.reserve(xs.size());

    // FFT each distinct activation once per timestep and share the
    // spectra across the gate operators reading it (bit-identical to
    // each operator transforming it itself): x feeds wzx/wrx/wcx and
    // c' feeds wzc/wrc. The reset-gated s feeds only wcc, so it has
    // nothing to share with.
    const bool share_in = wzx_->sharesSpectra() &&
                          wrx_->sharesSpectra() &&
                          wcx_->sharesSpectra();
    const bool share_rec =
        wzc_->sharesSpectra() && wrc_->sharesSpectra();

    for (std::size_t t = 0; t < xs.size(); ++t) {
        const Matrix &x = xs[t];
        ernn_assert(x.rows() == cfg_.inputSize,
                    "GRU batch input dim mismatch");
        const std::size_t lanes = x.cols();
        ernn_assert(t == 0 || lanes <= xs[t - 1].cols(),
                    "GRU batch lanes must be non-increasing "
                    "(longest-first pooling)");
        BatchStepCache st;
        st.x = x;
        if (t == 0)
            st.cPrev.reshape(h, lanes);
        else
            copyLeadingCols(st.cPrev, batchCache_[t - 1].c, lanes);

        if (share_in)
            circulant::computeSegmentSpectraBatch(
                x, wzx_->blockSize(), bwsIn_);
        if (share_rec)
            circulant::computeSegmentSpectraBatch(
                st.cPrev, wzc_->blockSize(), bwsRec_);

        // Update gate (Eqn. 2a). Per lane the gemm accumulation
        // mirrors the solo forward()+addInPlace pairing exactly.
        st.z.reshape(h, lanes);
        if (share_in)
            wzx_->forwardBatchAccFromSpectra(bwsIn_, st.z);
        else
            wzx_->forwardBatchAcc(x, st.z);
        if (share_rec)
            wzc_->forwardBatchAccFromSpectra(bwsRec_, st.z);
        else
            wzc_->forwardBatchAcc(st.cPrev, st.z);
        addBiasRows(st.z, bz_);
        applyActivation(ActKind::Sigmoid, st.z.raw());

        // Reset gate (Eqn. 2b).
        st.r.reshape(h, lanes);
        if (share_in)
            wrx_->forwardBatchAccFromSpectra(bwsIn_, st.r);
        else
            wrx_->forwardBatchAcc(x, st.r);
        if (share_rec)
            wrc_->forwardBatchAccFromSpectra(bwsRec_, st.r);
        else
            wrc_->forwardBatchAcc(st.cPrev, st.r);
        addBiasRows(st.r, br_);
        applyActivation(ActKind::Sigmoid, st.r.raw());

        // Candidate state from the reset-gated history (Eqn. 2c).
        st.s.reshape(h, lanes);
        hadamardAcc(st.s.raw(), st.r.raw(), st.cPrev.raw());
        st.cand.reshape(h, lanes);
        if (share_in)
            wcx_->forwardBatchAccFromSpectra(bwsIn_, st.cand);
        else
            wcx_->forwardBatchAcc(x, st.cand);
        wcc_->forwardBatchAcc(st.s, st.cand);
        addBiasRows(st.cand, bc_);
        applyActivation(cfg_.candidateAct, st.cand.raw());

        // State blend (Eqn. 2d): c = (1-z).c' + z.c~
        st.c.reshape(h, lanes);
        {
            Vector &cv = st.c.raw();
            const Vector &zv = st.z.raw();
            const Vector &pv = st.cPrev.raw();
            const Vector &dv = st.cand.raw();
            for (std::size_t k = 0; k < cv.size(); ++k)
                cv[k] = (1.0 - zv[k]) * pv[k] + zv[k] * dv[k];
        }

        ys.push_back(st.c);
        batchCache_.push_back(std::move(st));
    }
    return ys;
}

BatchSequence
GruLayer::backwardBatch(const BatchSequence &dys)
{
    ernn_assert(dys.size() == batchCache_.size(),
                "GRU backwardBatch: sequence length mismatch "
                "(forwardBatch must precede backwardBatch)");
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t t_len = batchCache_.size();

    BatchSequence dxs(t_len);
    Matrix dc_rec(h, 0);

    // Same spectra-sharing scheme as forwardBatch, plus each gate's
    // pre-activation gradient is read by its W*x / W*c pair: one
    // staging serves both when the two block sizes agree. Statement
    // order is unchanged, so every gradient buffer accumulates its
    // contributions exactly as the un-shared path does.
    const bool share_in = wzx_->sharesSpectra() &&
                          wrx_->sharesSpectra() &&
                          wcx_->sharesSpectra();
    const bool share_rec =
        wzc_->sharesSpectra() && wrc_->sharesSpectra();

    for (std::size_t ti = t_len; ti-- > 0;) {
        const BatchStepCache &st = batchCache_[ti];
        const std::size_t lanes = st.x.cols();
        ernn_assert(dys[ti].rows() == h && dys[ti].cols() == lanes,
                    "GRU backwardBatch: dy shape mismatch");

        Matrix dc = dys[ti];
        addLeadingColsAcc(dc, dc_rec);

        // c = (1-z).c' + z.c~
        Matrix dz(h, lanes), dcand(h, lanes), dc_prev(h, lanes);
        {
            Vector &dzv = dz.raw();
            Vector &dcv = dcand.raw();
            Vector &dpv = dc_prev.raw();
            const Vector &dv = dc.raw();
            const Vector &zv = st.z.raw();
            const Vector &cv = st.cand.raw();
            const Vector &pv = st.cPrev.raw();
            for (std::size_t k = 0; k < dzv.size(); ++k) {
                dzv[k] = dv[k] * (cv[k] - pv[k]);
                dcv[k] = dv[k] * zv[k];
                dpv[k] = dv[k] * (1.0 - zv[k]);
            }
        }

        // Candidate pre-activation.
        Matrix dcand_pre(h, lanes);
        {
            Vector &dov = dcand_pre.raw();
            const Vector &dcv = dcand.raw();
            const Vector &cv = st.cand.raw();
            for (std::size_t k = 0; k < dov.size(); ++k)
                dov[k] = dcv[k] *
                    actDerivFromOutput(cfg_.candidateAct, cv[k]);
        }

        if (share_in)
            circulant::computeSegmentSpectraBatch(
                st.x, wzx_->blockSize(), bwsIn_);
        if (share_rec)
            circulant::computeSegmentSpectraBatch(
                st.cPrev, wzc_->blockSize(), bwsRec_);

        Matrix dx(cfg_.inputSize, lanes);
        Matrix ds(h, lanes);
        if (share_in) {
            circulant::computeSegmentSpectraBatch(
                dcand_pre, wcx_->blockSize(), bwsDy_);
            wcx_->backwardBatchFromSpectra(bwsIn_, bwsDy_, lanes,
                                           &dx);
        } else {
            wcx_->backwardBatch(st.x, dcand_pre, &dx);
        }
        if (share_in && wcc_->sharesSpectra() &&
            wcc_->blockSize() == wcx_->blockSize()) {
            // wcc reads s, which no other operator shares, but its
            // upstream gradient staging can still be reused from the
            // wcx call above.
            circulant::computeSegmentSpectraBatch(
                st.s, wcc_->blockSize(), bwsAux_);
            wcc_->backwardBatchFromSpectra(bwsAux_, bwsDy_, lanes,
                                           &ds);
        } else {
            wcc_->backwardBatch(st.s, dcand_pre, &ds);
        }
        rowSumAcc(dbc_, dcand_pre);

        // s = r . c'
        Matrix dr(h, lanes);
        hadamardAcc(dr.raw(), ds.raw(), st.cPrev.raw());
        hadamardAcc(dc_prev.raw(), ds.raw(), st.r.raw());

        Matrix dz_pre(h, lanes), dr_pre(h, lanes);
        {
            Vector &dzp = dz_pre.raw();
            Vector &drp = dr_pre.raw();
            const Vector &dzv = dz.raw();
            const Vector &drv = dr.raw();
            const Vector &zv = st.z.raw();
            const Vector &rv = st.r.raw();
            for (std::size_t k = 0; k < dzp.size(); ++k) {
                dzp[k] = dzv[k] * zv[k] * (1.0 - zv[k]);
                drp[k] = drv[k] * rv[k] * (1.0 - rv[k]);
            }
        }

        auto gate_bwd = [&](LinearOp &wx, LinearOp &wc,
                            const Matrix &dpre) {
            if (share_in) {
                circulant::computeSegmentSpectraBatch(
                    dpre, wx.blockSize(), bwsDy_);
                wx.backwardBatchFromSpectra(bwsIn_, bwsDy_, lanes,
                                            &dx);
            } else {
                wx.backwardBatch(st.x, dpre, &dx);
            }
            if (share_rec) {
                if (!share_in || wc.blockSize() != wx.blockSize())
                    circulant::computeSegmentSpectraBatch(
                        dpre, wc.blockSize(), bwsDy_);
                wc.backwardBatchFromSpectra(bwsRec_, bwsDy_, lanes,
                                            &dc_prev);
            } else {
                wc.backwardBatch(st.cPrev, dpre, &dc_prev);
            }
        };
        gate_bwd(*wzx_, *wzc_, dz_pre);
        rowSumAcc(dbz_, dz_pre);

        gate_bwd(*wrx_, *wrc_, dr_pre);
        rowSumAcc(dbr_, dr_pre);

        dxs[ti] = std::move(dx);
        dc_rec = std::move(dc_prev);
    }
    return dxs;
}

void
GruLayer::registerParams(ParamRegistry &reg, const std::string &prefix)
{
    wzx_->registerParams(reg, prefix + ".wzx");
    wrx_->registerParams(reg, prefix + ".wrx");
    wcx_->registerParams(reg, prefix + ".wcx");
    wzc_->registerParams(reg, prefix + ".wzc");
    wrc_->registerParams(reg, prefix + ".wrc");
    wcc_->registerParams(reg, prefix + ".wcc");

    auto addVec = [&](const char *name, Vector &v, Vector &g) {
        reg.add(ParamView{prefix + name, v.data(), g.data(), v.size(),
                          {}});
    };
    addVec(".bz", bz_, dbz_);
    addVec(".br", br_, dbr_);
    addVec(".bc", bc_, dbc_);
}

void
GruLayer::initXavier(Rng &rng)
{
    wzx_->initXavier(rng);
    wrx_->initXavier(rng);
    wcx_->initXavier(rng);
    wzc_->initXavier(rng);
    wrc_->initXavier(rng);
    wcc_->initXavier(rng);
}

std::size_t
GruLayer::paramCount() const
{
    return wzx_->paramCount() + wrx_->paramCount() +
           wcx_->paramCount() + wzc_->paramCount() +
           wrc_->paramCount() + wcc_->paramCount() + bz_.size() +
           br_.size() + bc_.size();
}

} // namespace ernn::nn
