#include "nn/gru.hh"

#include "base/logging.hh"

namespace ernn::nn
{

GruLayer::GruLayer(const GruConfig &cfg)
    : cfg_(cfg)
{
    ernn_assert(cfg.inputSize > 0 && cfg.hiddenSize > 0,
                "GRU needs positive input/hidden sizes");
    const std::size_t in = cfg.inputSize;
    const std::size_t h = cfg.hiddenSize;

    wzx_ = makeLinear(h, in, cfg.blockSizeInput);
    wrx_ = makeLinear(h, in, cfg.blockSizeInput);
    wcx_ = makeLinear(h, in, cfg.blockSizeInput);
    wzc_ = makeLinear(h, h, cfg.blockSizeRecurrent);
    wrc_ = makeLinear(h, h, cfg.blockSizeRecurrent);
    wcc_ = makeLinear(h, h, cfg.blockSizeRecurrent);

    bz_.assign(h, 0.0); br_.assign(h, 0.0); bc_.assign(h, 0.0);
    dbz_.assign(h, 0.0); dbr_.assign(h, 0.0); dbc_.assign(h, 0.0);
}

Sequence
GruLayer::forward(const Sequence &xs)
{
    const std::size_t h = cfg_.hiddenSize;

    cache_.clear();
    cache_.reserve(xs.size());

    Vector c_prev(h, 0.0);
    Sequence ys;
    ys.reserve(xs.size());

    Vector tmp(h);
    for (const Vector &x : xs) {
        ernn_assert(x.size() == cfg_.inputSize,
                    "GRU input dim mismatch");
        StepCache st;
        st.x = x;
        st.cPrev = c_prev;

        // Update gate (Eqn. 2a).
        wzx_->forward(x, st.z);
        wzc_->forward(c_prev, tmp);
        addInPlace(st.z, tmp);
        addInPlace(st.z, bz_);
        applyActivation(ActKind::Sigmoid, st.z);

        // Reset gate (Eqn. 2b).
        wrx_->forward(x, st.r);
        wrc_->forward(c_prev, tmp);
        addInPlace(st.r, tmp);
        addInPlace(st.r, br_);
        applyActivation(ActKind::Sigmoid, st.r);

        // Candidate state from the reset-gated history (Eqn. 2c).
        st.s = hadamard(st.r, c_prev);
        wcx_->forward(x, st.cand);
        wcc_->forward(st.s, tmp);
        addInPlace(st.cand, tmp);
        addInPlace(st.cand, bc_);
        applyActivation(cfg_.candidateAct, st.cand);

        // State blend (Eqn. 2d): c = (1-z).c' + z.c~
        st.c.resize(h);
        for (std::size_t k = 0; k < h; ++k)
            st.c[k] = (1.0 - st.z[k]) * c_prev[k] +
                      st.z[k] * st.cand[k];

        c_prev = st.c;
        ys.push_back(st.c);
        cache_.push_back(std::move(st));
    }
    return ys;
}

Sequence
GruLayer::backward(const Sequence &dys)
{
    ernn_assert(dys.size() == cache_.size(),
                "GRU backward: sequence length mismatch (forward "
                "must precede backward)");
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t t_len = cache_.size();

    Sequence dxs(t_len);
    Vector dc_rec(h, 0.0);

    for (std::size_t ti = t_len; ti-- > 0;) {
        const StepCache &st = cache_[ti];
        ernn_assert(dys[ti].size() == h, "GRU backward: dy mismatch");

        Vector dc = dys[ti];
        addInPlace(dc, dc_rec);

        // c = (1-z).c' + z.c~
        Vector dz(h), dcand(h), dc_prev(h);
        for (std::size_t k = 0; k < h; ++k) {
            dz[k] = dc[k] * (st.cand[k] - st.cPrev[k]);
            dcand[k] = dc[k] * st.z[k];
            dc_prev[k] = dc[k] * (1.0 - st.z[k]);
        }

        // Candidate pre-activation.
        Vector dcand_pre(h);
        for (std::size_t k = 0; k < h; ++k)
            dcand_pre[k] = dcand[k] *
                actDerivFromOutput(cfg_.candidateAct, st.cand[k]);

        Vector dx(cfg_.inputSize, 0.0);
        Vector ds(h, 0.0);
        wcx_->backward(st.x, dcand_pre, &dx);
        wcc_->backward(st.s, dcand_pre, &ds);
        addInPlace(dbc_, dcand_pre);

        // s = r . c'
        Vector dr = hadamard(ds, st.cPrev);
        hadamardAcc(dc_prev, ds, st.r);

        Vector dz_pre(h), dr_pre(h);
        for (std::size_t k = 0; k < h; ++k) {
            dz_pre[k] = dz[k] * st.z[k] * (1.0 - st.z[k]);
            dr_pre[k] = dr[k] * st.r[k] * (1.0 - st.r[k]);
        }

        wzx_->backward(st.x, dz_pre, &dx);
        wzc_->backward(st.cPrev, dz_pre, &dc_prev);
        addInPlace(dbz_, dz_pre);

        wrx_->backward(st.x, dr_pre, &dx);
        wrc_->backward(st.cPrev, dr_pre, &dc_prev);
        addInPlace(dbr_, dr_pre);

        dxs[ti] = std::move(dx);
        dc_rec = std::move(dc_prev);
    }
    return dxs;
}

void
GruLayer::registerParams(ParamRegistry &reg, const std::string &prefix)
{
    wzx_->registerParams(reg, prefix + ".wzx");
    wrx_->registerParams(reg, prefix + ".wrx");
    wcx_->registerParams(reg, prefix + ".wcx");
    wzc_->registerParams(reg, prefix + ".wzc");
    wrc_->registerParams(reg, prefix + ".wrc");
    wcc_->registerParams(reg, prefix + ".wcc");

    auto addVec = [&](const char *name, Vector &v, Vector &g) {
        reg.add(ParamView{prefix + name, v.data(), g.data(), v.size(),
                          {}});
    };
    addVec(".bz", bz_, dbz_);
    addVec(".br", br_, dbr_);
    addVec(".bc", bc_, dbc_);
}

void
GruLayer::initXavier(Rng &rng)
{
    wzx_->initXavier(rng);
    wrx_->initXavier(rng);
    wcx_->initXavier(rng);
    wzc_->initXavier(rng);
    wrc_->initXavier(rng);
    wcc_->initXavier(rng);
}

std::size_t
GruLayer::paramCount() const
{
    return wzx_->paramCount() + wrx_->paramCount() +
           wcx_->paramCount() + wzc_->paramCount() +
           wrc_->paramCount() + wcc_->paramCount() + bz_.size() +
           br_.size() + bc_.size();
}

} // namespace ernn::nn
