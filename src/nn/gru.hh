/**
 * @file
 * GRU layer implementing Eqn. (2) of the paper: update gate z, reset
 * gate r, candidate state c~ computed from the reset-gated previous
 * state, and the convex state blend c_t = (1-z).c' + z.c~.
 *
 * The paper's GRU reads the previous *cell state* c_{t-1} in both
 * gates (there is no separate hidden state), and the layer output is
 * c_t itself.
 */

#ifndef ERNN_NN_GRU_HH
#define ERNN_NN_GRU_HH

#include <memory>

#include "nn/activation.hh"
#include "nn/layer.hh"
#include "nn/linear_op.hh"

namespace ernn::nn
{

/** Static configuration of one GRU layer. */
struct GruConfig
{
    std::size_t inputSize = 0;  //!< dim of x_t
    std::size_t hiddenSize = 0; //!< dim of c_t (the "layer size")

    std::size_t blockSizeInput = 1;     //!< W{z,r,c~}x
    std::size_t blockSizeRecurrent = 1; //!< W{z,r}c and Wc~c

    ActKind candidateAct = ActKind::Tanh; //!< h in Eqn. (2c)
};

class GruLayer : public RnnLayer
{
  public:
    explicit GruLayer(const GruConfig &cfg);

    std::size_t inputSize() const override { return cfg_.inputSize; }
    std::size_t outputSize() const override { return cfg_.hiddenSize; }

    Sequence forward(const Sequence &xs) override;
    Sequence backward(const Sequence &dys) override;
    BatchSequence forwardBatch(const BatchSequence &xs) override;
    BatchSequence backwardBatch(const BatchSequence &dys) override;
    std::unique_ptr<RnnLayer> cloneArchitecture() const override
    {
        return std::make_unique<GruLayer>(cfg_);
    }

    void registerParams(ParamRegistry &reg,
                        const std::string &prefix) override;
    void initXavier(Rng &rng) override;
    std::size_t paramCount() const override;
    std::string kindName() const override { return "gru"; }

    const GruConfig &config() const { return cfg_; }

    /// @{ Weight accessors.
    LinearOp &wzx() { return *wzx_; }
    LinearOp &wrx() { return *wrx_; }
    LinearOp &wcx() { return *wcx_; }
    LinearOp &wzc() { return *wzc_; }
    LinearOp &wrc() { return *wrc_; }
    LinearOp &wcc() { return *wcc_; }
    const LinearOp &wzx() const { return *wzx_; }
    const LinearOp &wrx() const { return *wrx_; }
    const LinearOp &wcx() const { return *wcx_; }
    const LinearOp &wzc() const { return *wzc_; }
    const LinearOp &wrc() const { return *wrc_; }
    const LinearOp &wcc() const { return *wcc_; }
    /// @}

    /// @{ Bias accessors (used by the runtime compiler).
    const Vector &bz() const { return bz_; }
    const Vector &br() const { return br_; }
    const Vector &bc() const { return bc_; }
    /// @}

  private:
    struct StepCache
    {
        Vector x, cPrev;
        Vector z, r, s, cand, c;
    };

    /** Batch-major twin of StepCache: (rows x lanes_t) matrices. */
    struct BatchStepCache
    {
        Matrix x, cPrev;
        Matrix z, r, s, cand, c;
    };

    GruConfig cfg_;

    std::unique_ptr<LinearOp> wzx_, wrx_, wcx_;
    std::unique_ptr<LinearOp> wzc_, wrc_, wcc_;

    Vector bz_, br_, bc_;
    Vector dbz_, dbr_, dbc_;

    std::vector<StepCache> cache_;
    std::vector<BatchStepCache> batchCache_;

    /**
     * Batched-path spectra staging, one workspace per distinct
     * activation read by several gate operators in a timestep: the
     * input x (wzx/wrx/wcx), the previous state c' (wzc/wrc), the
     * per-gate upstream gradient (shared by each W*x / W*c pair in
     * backwardBatch), and the reset-gated state s when wcc joins a
     * shared-gradient backward call. Layer-owned so replicated
     * models train in parallel without contending.
     */
    circulant::FftWorkspace bwsIn_, bwsRec_, bwsDy_, bwsAux_;
};

} // namespace ernn::nn

#endif // ERNN_NN_GRU_HH
