/**
 * @file
 * Abstract recurrent layer interface shared by the LSTM and GRU
 * cells. Layers cache their most recent forward pass internally, so a
 * backward() call must follow the matching forward() (the trainer
 * processes one sequence at a time, as the paper's CU does).
 */

#ifndef ERNN_NN_LAYER_HH
#define ERNN_NN_LAYER_HH

#include <string>
#include <vector>

#include "base/random.hh"
#include "nn/param.hh"
#include "tensor/vector_ops.hh"

namespace ernn::nn
{

/** A sequence is a vector of per-frame feature vectors. */
using Sequence = std::vector<Vector>;

class RnnLayer
{
  public:
    virtual ~RnnLayer() = default;

    virtual std::size_t inputSize() const = 0;
    virtual std::size_t outputSize() const = 0;

    /**
     * Run the layer over a sequence starting from zero state,
     * caching activations for backward().
     */
    virtual Sequence forward(const Sequence &xs) = 0;

    /**
     * BPTT through the cached forward pass.
     *
     * @param dys upstream gradient w.r.t. each output frame
     * @return gradient w.r.t. each input frame
     */
    virtual Sequence backward(const Sequence &dys) = 0;

    /** Register every trainable buffer. */
    virtual void registerParams(ParamRegistry &reg,
                                const std::string &prefix) = 0;

    /** Initialize weights. */
    virtual void initXavier(Rng &rng) = 0;

    /** Number of stored (possibly compressed) parameters. */
    virtual std::size_t paramCount() const = 0;

    /** "lstm" or "gru". */
    virtual std::string kindName() const = 0;
};

} // namespace ernn::nn

#endif // ERNN_NN_LAYER_HH
