/**
 * @file
 * Abstract recurrent layer interface shared by the LSTM and GRU
 * cells. Layers cache their most recent forward pass internally, so a
 * backward() call must follow the matching forward() (the trainer
 * processes one sequence at a time, as the paper's CU does).
 */

#ifndef ERNN_NN_LAYER_HH
#define ERNN_NN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "nn/param.hh"
#include "tensor/matrix.hh"
#include "tensor/vector_ops.hh"

namespace ernn::nn
{

/** A sequence is a vector of per-frame feature vectors. */
using Sequence = std::vector<Vector>;

/**
 * Batch-major sequence: one (features x lanes) matrix per timestep,
 * one pooled utterance lane per column. The trainer pools lanes
 * longest-first (mirroring the serving runtime's ragged-tail
 * retirement), so the lane count is non-increasing over time and the
 * lanes alive at step t are the leading columns of step t-1.
 */
using BatchSequence = std::vector<Matrix>;

class RnnLayer
{
  public:
    virtual ~RnnLayer() = default;

    virtual std::size_t inputSize() const = 0;
    virtual std::size_t outputSize() const = 0;

    /**
     * Run the layer over a sequence starting from zero state,
     * caching activations for backward().
     */
    virtual Sequence forward(const Sequence &xs) = 0;

    /**
     * BPTT through the cached forward pass.
     *
     * @param dys upstream gradient w.r.t. each output frame
     * @return gradient w.r.t. each input frame
     */
    virtual Sequence backward(const Sequence &dys) = 0;

    /**
     * Batch-major forward over pooled lanes, caching activations for
     * backwardBatch(). Lane l of every step computes the exact bits
     * forward() computes on the corresponding solo sequence — the
     * vector path stays the oracle. Uses a cache separate from the
     * solo path, so oracle comparisons may interleave the two.
     */
    virtual BatchSequence forwardBatch(const BatchSequence &xs) = 0;

    /**
     * Batch-major BPTT through the cached forwardBatch(). Weight
     * gradients accumulate each step's lane sum in ascending lane
     * order — deterministic for a fixed lane layout, equal to the
     * solo per-sequence sum up to rounding.
     */
    virtual BatchSequence backwardBatch(const BatchSequence &dys) = 0;

    /**
     * A freshly constructed layer of identical architecture
     * (zero-initialized weights, empty caches). The trainer clones
     * one model replica per gradient group and syncs parameters from
     * the master, so groups backprop concurrently without sharing
     * mutable state.
     */
    virtual std::unique_ptr<RnnLayer> cloneArchitecture() const = 0;

    /** Register every trainable buffer. */
    virtual void registerParams(ParamRegistry &reg,
                                const std::string &prefix) = 0;

    /** Initialize weights. */
    virtual void initXavier(Rng &rng) = 0;

    /** Number of stored (possibly compressed) parameters. */
    virtual std::size_t paramCount() const = 0;

    /** "lstm" or "gru". */
    virtual std::string kindName() const = 0;
};

} // namespace ernn::nn

#endif // ERNN_NN_LAYER_HH
