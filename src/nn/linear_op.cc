#include "nn/linear_op.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ernn::nn
{

void
LinearOp::forwardBatchAccFromSpectra(circulant::FftWorkspace &, Matrix &)
{
    ernn_fatal("forwardBatchAccFromSpectra called on an operator "
               "that does not share spectra");
}

void
LinearOp::backwardBatchFromSpectra(circulant::FftWorkspace &,
                                   circulant::FftWorkspace &,
                                   std::size_t, Matrix *)
{
    ernn_fatal("backwardBatchFromSpectra called on an operator that "
               "does not share spectra");
}

DenseLinear::DenseLinear(std::size_t out_dim, std::size_t in_dim)
    : w_(out_dim, in_dim), g_(out_dim, in_dim)
{
}

void
DenseLinear::forward(const Vector &x, Vector &y) const
{
    y.assign(w_.rows(), 0.0);
    w_.matvecAcc(x, y);
}

void
DenseLinear::backward(const Vector &x, const Vector &dy, Vector *dx)
{
    g_.outerAcc(dy, x);
    if (dx)
        w_.matvecTransposeAcc(dy, *dx);
}

void
DenseLinear::forwardBatchAcc(const Matrix &x, Matrix &y)
{
    w_.gemmAcc(x, y);
}

void
DenseLinear::backwardBatch(const Matrix &x, const Matrix &dy,
                           Matrix *dx)
{
    g_.outerAccBatch(dy, x);
    if (dx)
        w_.gemmTransposeAcc(dy, *dx);
}

void
DenseLinear::registerParams(ParamRegistry &reg,
                            const std::string &prefix)
{
    reg.add(ParamView{prefix, w_.data(), g_.data(), w_.size(), {}});
}

CirculantLinear::CirculantLinear(std::size_t out_dim,
                                 std::size_t in_dim,
                                 std::size_t block_size)
    : w_(out_dim, in_dim, block_size), g_(out_dim, in_dim, block_size)
{
}

std::unique_ptr<CirculantLinear>
CirculantLinear::fromDense(const Matrix &dense, std::size_t block_size)
{
    auto op = std::make_unique<CirculantLinear>(
        dense.rows(), dense.cols(), block_size);
    op->w_ = circulant::BlockCirculantMatrix::fromDense(dense,
                                                        block_size);
    op->w_.invalidateSpectra();
    return op;
}

void
CirculantLinear::forward(const Vector &x, Vector &y) const
{
    y.assign(w_.rows(), 0.0);
    w_.matvecAcc(x, y, mode_);
}

void
CirculantLinear::backward(const Vector &x, const Vector &dy, Vector *dx)
{
    w_.generatorGradAcc(x, dy, g_);
    if (dx)
        w_.matvecTransposeAcc(dy, *dx);
}

void
CirculantLinear::forwardBatchAcc(const Matrix &x, Matrix &y)
{
    const std::size_t lb = w_.blockSize();
    if (mode_ == circulant::MatvecMode::Naive || lb == 1) {
        // No spectra at block size 1, and the naive oracle is
        // per-lane by definition: gather each lane, run the solo
        // matvec, scatter back (bit-identical to forward()).
        const std::size_t lanes = x.cols();
        xLane_.resize(x.rows());
        yLane_.resize(y.rows());
        for (std::size_t l = 0; l < lanes; ++l) {
            for (std::size_t r = 0; r < x.rows(); ++r)
                xLane_[r] = x.at(r, l);
            std::fill(yLane_.begin(), yLane_.end(), 0.0);
            w_.matvecAcc(xLane_, yLane_, wsX_, mode_);
            for (std::size_t r = 0; r < y.rows(); ++r)
                y.at(r, l) += yLane_[r];
        }
        return;
    }
    circulant::computeSegmentSpectraBatch(x, lb, wsX_);
    w_.matvecAccFromSpectraBatch(y, wsX_);
}

void
CirculantLinear::backwardBatch(const Matrix &x, const Matrix &dy,
                               Matrix *dx)
{
    const std::size_t lb = w_.blockSize();
    if (lb == 1) {
        // Per-lane solo backward (ascending lane order, so the
        // generator-gradient lane sum stays deterministic).
        const std::size_t lanes = x.cols();
        xLane_.resize(x.rows());
        dyLane_.resize(dy.rows());
        for (std::size_t l = 0; l < lanes; ++l) {
            for (std::size_t r = 0; r < x.rows(); ++r)
                xLane_[r] = x.at(r, l);
            for (std::size_t r = 0; r < dy.rows(); ++r)
                dyLane_[r] = dy.at(r, l);
            w_.generatorGradAcc(xLane_, dyLane_, g_);
            if (dx) {
                dxLane_.assign(dx->rows(), 0.0);
                w_.matvecTransposeAcc(dyLane_, dxLane_);
                for (std::size_t r = 0; r < dx->rows(); ++r)
                    dx->at(r, l) += dxLane_[r];
            }
        }
        return;
    }
    // Like the solo backward, the FFT path serves regardless of
    // mode_ (the naive mode is a forward-only oracle).
    circulant::computeSegmentSpectraBatch(x, lb, wsX_);
    circulant::computeSegmentSpectraBatch(dy, lb, wsDy_);
    if (dx)
        w_.matvecTransposeAccFromSpectraBatch(*dx, wsDy_);
    w_.generatorGradAccFromSpectraBatch(wsX_, wsDy_, x.cols(), g_);
}

void
CirculantLinear::forwardBatchAccFromSpectra(
    circulant::FftWorkspace &xspec, Matrix &y)
{
    w_.matvecAccFromSpectraBatch(y, xspec);
}

void
CirculantLinear::backwardBatchFromSpectra(
    circulant::FftWorkspace &xspec, circulant::FftWorkspace &dyspec,
    std::size_t lanes, Matrix *dx)
{
    // Same operation order as backwardBatch: dX first, then the
    // generator gradient.
    if (dx)
        w_.matvecTransposeAccFromSpectraBatch(*dx, dyspec);
    w_.generatorGradAccFromSpectraBatch(xspec, dyspec, lanes, g_);
}

void
CirculantLinear::registerParams(ParamRegistry &reg,
                                const std::string &prefix)
{
    reg.add(ParamView{prefix, w_.raw().data(), g_.raw().data(),
                      w_.raw().size(),
                      [this]() { w_.invalidateSpectra(); }});
}

std::unique_ptr<LinearOp>
makeLinear(std::size_t out_dim, std::size_t in_dim,
           std::size_t block_size)
{
    if (block_size <= 1)
        return std::make_unique<DenseLinear>(out_dim, in_dim);
    return std::make_unique<CirculantLinear>(out_dim, in_dim,
                                             block_size);
}

} // namespace ernn::nn
