#include "nn/linear_op.hh"

#include "base/logging.hh"

namespace ernn::nn
{

DenseLinear::DenseLinear(std::size_t out_dim, std::size_t in_dim)
    : w_(out_dim, in_dim), g_(out_dim, in_dim)
{
}

void
DenseLinear::forward(const Vector &x, Vector &y) const
{
    y.assign(w_.rows(), 0.0);
    w_.matvecAcc(x, y);
}

void
DenseLinear::backward(const Vector &x, const Vector &dy, Vector *dx)
{
    g_.outerAcc(dy, x);
    if (dx)
        w_.matvecTransposeAcc(dy, *dx);
}

void
DenseLinear::registerParams(ParamRegistry &reg,
                            const std::string &prefix)
{
    reg.add(ParamView{prefix, w_.data(), g_.data(), w_.size(), {}});
}

CirculantLinear::CirculantLinear(std::size_t out_dim,
                                 std::size_t in_dim,
                                 std::size_t block_size)
    : w_(out_dim, in_dim, block_size), g_(out_dim, in_dim, block_size)
{
}

std::unique_ptr<CirculantLinear>
CirculantLinear::fromDense(const Matrix &dense, std::size_t block_size)
{
    auto op = std::make_unique<CirculantLinear>(
        dense.rows(), dense.cols(), block_size);
    op->w_ = circulant::BlockCirculantMatrix::fromDense(dense,
                                                        block_size);
    op->w_.invalidateSpectra();
    return op;
}

void
CirculantLinear::forward(const Vector &x, Vector &y) const
{
    y.assign(w_.rows(), 0.0);
    w_.matvecAcc(x, y, mode_);
}

void
CirculantLinear::backward(const Vector &x, const Vector &dy, Vector *dx)
{
    w_.generatorGradAcc(x, dy, g_);
    if (dx)
        w_.matvecTransposeAcc(dy, *dx);
}

void
CirculantLinear::registerParams(ParamRegistry &reg,
                                const std::string &prefix)
{
    reg.add(ParamView{prefix, w_.raw().data(), g_.raw().data(),
                      w_.raw().size(),
                      [this]() { w_.invalidateSpectra(); }});
}

std::unique_ptr<LinearOp>
makeLinear(std::size_t out_dim, std::size_t in_dim,
           std::size_t block_size)
{
    if (block_size <= 1)
        return std::make_unique<DenseLinear>(out_dim, in_dim);
    return std::make_unique<CirculantLinear>(out_dim, in_dim,
                                             block_size);
}

} // namespace ernn::nn
