/**
 * @file
 * Trainable linear operators. The RNN cells are written against this
 * abstraction so that a weight matrix can be dense (the baseline and
 * the W of ADMM subproblem 1) or block-circulant (the compressed
 * model, trained directly through its generators) without the cell
 * code changing.
 */

#ifndef ERNN_NN_LINEAR_OP_HH
#define ERNN_NN_LINEAR_OP_HH

#include <memory>
#include <string>

#include "base/random.hh"
#include "circulant/block_circulant.hh"
#include "nn/param.hh"
#include "tensor/matrix.hh"
#include "tensor/vector_ops.hh"

namespace ernn::nn
{

/** Abstract y = W x operator with gradient support. */
class LinearOp
{
  public:
    virtual ~LinearOp() = default;

    virtual std::size_t inDim() const = 0;
    virtual std::size_t outDim() const = 0;

    /** y := W x (overwrites y, resizing if needed). */
    virtual void forward(const Vector &x, Vector &y) const = 0;

    /**
     * Backward pass: accumulate the weight gradient from (x, dy) and,
     * when @p dx is non-null, dx += Wᵀ dy.
     */
    virtual void backward(const Vector &x, const Vector &dy,
                          Vector *dx) = 0;

    /**
     * Batch-major forward: Y += W X, one utterance lane per column
     * (X is inDim x lanes, Y outDim x lanes; the caller zeroes Y).
     * Non-const because the circulant form stages per-lane spectra
     * in member workspaces. Column l of Y computes the exact bits
     * forward() computes on column l of X — the training parity
     * contract against the vector-at-a-time oracle rests on this.
     */
    virtual void forwardBatchAcc(const Matrix &x, Matrix &y) = 0;

    /**
     * Batch-major backward: accumulate the weight gradient from
     * (X, dY) — each weight entry sums its lane contributions in
     * ascending lane order, a fixed function of the lane layout — and
     * when @p dx is non-null, dX += Wᵀ dY (per-lane deterministic
     * like forwardBatchAcc).
     */
    virtual void backwardBatch(const Matrix &x, const Matrix &dy,
                               Matrix *dx) = 0;

    /**
     * True when the batched entry points run the circulant FFT path
     * and can therefore consume pre-staged lane spectra of their
     * operands (block size > 1, FFT mode). The RNN cells use this to
     * FFT each distinct activation once per timestep and share the
     * spectra across every gate operator that reads it — the serving
     * runtime's fused-gate idiom, applied to the training datapath.
     * Sharing is bit-identical to each operator transforming the
     * operand itself: the transforms are deterministic, and the
     * downstream accumulation chains don't change.
     */
    virtual bool sharesSpectra() const { return false; }

    /**
     * forwardBatchAcc from shared spectra: Y += W X where the lane
     * spectra of X are already staged in @p xspec by
     * circulant::computeSegmentSpectraBatch. Only callable when
     * sharesSpectra() is true.
     */
    virtual void forwardBatchAccFromSpectra(
        circulant::FftWorkspace &xspec, Matrix &y);

    /**
     * backwardBatch from shared spectra: input spectra in @p xspec,
     * upstream-gradient spectra in @p dyspec, summed over @p lanes
     * lanes. Only callable when sharesSpectra() is true.
     */
    virtual void backwardBatchFromSpectra(
        circulant::FftWorkspace &xspec,
        circulant::FftWorkspace &dyspec, std::size_t lanes,
        Matrix *dx);

    /** Register trainable buffers under the given name prefix. */
    virtual void registerParams(ParamRegistry &reg,
                                const std::string &prefix) = 0;

    /** Number of stored parameters. */
    virtual std::size_t paramCount() const = 0;

    /** Block size of the weight representation (1 for dense). */
    virtual std::size_t blockSize() const = 0;

    /** Dense weight matrix, or nullptr when not dense. */
    virtual Matrix *denseWeight() { return nullptr; }
    virtual const Matrix *denseWeight() const { return nullptr; }
    virtual Matrix *denseGrad() { return nullptr; }

    /** Circulant weight, or nullptr when dense. */
    virtual circulant::BlockCirculantMatrix *circulantWeight()
    {
        return nullptr;
    }
    virtual const circulant::BlockCirculantMatrix *
    circulantWeight() const
    {
        return nullptr;
    }

    /** Xavier-initialize the weights. */
    virtual void initXavier(Rng &rng) = 0;
};

/** Dense (uncompressed) linear operator. */
class DenseLinear : public LinearOp
{
  public:
    DenseLinear(std::size_t out_dim, std::size_t in_dim);

    std::size_t inDim() const override { return w_.cols(); }
    std::size_t outDim() const override { return w_.rows(); }
    void forward(const Vector &x, Vector &y) const override;
    void backward(const Vector &x, const Vector &dy,
                  Vector *dx) override;
    void forwardBatchAcc(const Matrix &x, Matrix &y) override;
    void backwardBatch(const Matrix &x, const Matrix &dy,
                       Matrix *dx) override;
    void registerParams(ParamRegistry &reg,
                        const std::string &prefix) override;
    std::size_t paramCount() const override { return w_.size(); }
    std::size_t blockSize() const override { return 1; }
    Matrix *denseWeight() override { return &w_; }
    const Matrix *denseWeight() const override { return &w_; }
    Matrix *denseGrad() override { return &g_; }
    void initXavier(Rng &rng) override { w_.initXavier(rng); }

  private:
    Matrix w_;
    Matrix g_;
};

/**
 * Block-circulant linear operator: stores only generators, runs the
 * FFT matvec forward, and trains the generators directly (the
 * gradient is the wrapped-diagonal sum of the dense gradient).
 */
class CirculantLinear : public LinearOp
{
  public:
    CirculantLinear(std::size_t out_dim, std::size_t in_dim,
                    std::size_t block_size);

    /** Build from a dense matrix via the Euclidean projection. */
    static std::unique_ptr<CirculantLinear>
    fromDense(const Matrix &dense, std::size_t block_size);

    std::size_t inDim() const override { return w_.cols(); }
    std::size_t outDim() const override { return w_.rows(); }
    void forward(const Vector &x, Vector &y) const override;
    void backward(const Vector &x, const Vector &dy,
                  Vector *dx) override;
    void forwardBatchAcc(const Matrix &x, Matrix &y) override;
    void backwardBatch(const Matrix &x, const Matrix &dy,
                       Matrix *dx) override;
    bool sharesSpectra() const override
    {
        return mode_ == circulant::MatvecMode::Fft &&
               w_.blockSize() > 1;
    }
    void forwardBatchAccFromSpectra(circulant::FftWorkspace &xspec,
                                    Matrix &y) override;
    void backwardBatchFromSpectra(circulant::FftWorkspace &xspec,
                                  circulant::FftWorkspace &dyspec,
                                  std::size_t lanes,
                                  Matrix *dx) override;
    void registerParams(ParamRegistry &reg,
                        const std::string &prefix) override;
    std::size_t paramCount() const override { return w_.paramCount(); }
    std::size_t blockSize() const override { return w_.blockSize(); }
    circulant::BlockCirculantMatrix *circulantWeight() override
    {
        return &w_;
    }
    const circulant::BlockCirculantMatrix *
    circulantWeight() const override
    {
        return &w_;
    }
    void initXavier(Rng &rng) override { w_.initXavier(rng); }

    /** Select the naive matvec (for tests / cross-checks). */
    void setMatvecMode(circulant::MatvecMode mode) { mode_ = mode; }

  private:
    circulant::BlockCirculantMatrix w_;
    circulant::BlockCirculantMatrix g_;
    circulant::MatvecMode mode_ = circulant::MatvecMode::Fft;

    // Batched-path scratch: per-lane segment spectra of the input
    // (wsX_) and of the upstream gradient (wsDy_), plus per-lane
    // vector staging for the block-size-1 / naive fallbacks. Member
    // (not shared) so replicated models train in parallel without
    // contending — each training group owns its op instances.
    circulant::FftWorkspace wsX_;
    circulant::FftWorkspace wsDy_;
    Vector xLane_, yLane_, dyLane_, dxLane_;
};

/**
 * Factory: dense when block_size == 1, circulant otherwise.
 */
std::unique_ptr<LinearOp> makeLinear(std::size_t out_dim,
                                     std::size_t in_dim,
                                     std::size_t block_size);

} // namespace ernn::nn

#endif // ERNN_NN_LINEAR_OP_HH
