#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ernn::nn
{

Vector
softmax(const Vector &logits)
{
    ernn_assert(!logits.empty(), "softmax of empty vector");
    const Real peak = *std::max_element(logits.begin(), logits.end());
    Vector probs(logits.size());
    Real denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        probs[i] = std::exp(logits[i] - peak);
        denom += probs[i];
    }
    for (auto &p : probs)
        p /= denom;
    return probs;
}

LossResult
softmaxCrossEntropy(const Sequence &logits,
                    const std::vector<int> &labels)
{
    ernn_assert(logits.size() == labels.size(),
                "loss: frame/label count mismatch");
    LossResult out;
    out.frames = logits.size();
    out.dlogits.resize(logits.size());

    const Real inv_t = logits.empty() ?
        0.0 : 1.0 / static_cast<Real>(logits.size());

    for (std::size_t t = 0; t < logits.size(); ++t) {
        const int label = labels[t];
        ernn_assert(label >= 0 &&
                    static_cast<std::size_t>(label) < logits[t].size(),
                    "loss: label " << label << " out of range");
        Vector probs = softmax(logits[t]);
        const Real p = std::max(probs[static_cast<std::size_t>(label)],
                                1e-300);
        out.loss += -std::log(p) * inv_t;
        if (argmax(probs) == static_cast<std::size_t>(label))
            ++out.correct;
        // d(mean CE)/dlogits = (probs - onehot) / T
        probs[static_cast<std::size_t>(label)] -= 1.0;
        scaleInPlace(probs, inv_t);
        out.dlogits[t] = std::move(probs);
    }
    return out;
}

} // namespace ernn::nn
