/**
 * @file
 * Framewise softmax cross-entropy: the training objective of the
 * acoustic model (each frame is classified into a phone class).
 */

#ifndef ERNN_NN_LOSS_HH
#define ERNN_NN_LOSS_HH

#include <vector>

#include "base/types.hh"
#include "nn/layer.hh"
#include "tensor/vector_ops.hh"

namespace ernn::nn
{

/** Softmax probabilities of a logit vector (numerically stable). */
Vector softmax(const Vector &logits);

/** Result of a sequence-level loss evaluation. */
struct LossResult
{
    Real loss = 0.0;          //!< mean cross-entropy per frame
    std::size_t correct = 0;  //!< frames whose argmax matches
    std::size_t frames = 0;   //!< total frames
    Sequence dlogits;         //!< gradient w.r.t. each logit frame
};

/**
 * Mean framewise cross-entropy over a sequence, with gradients.
 *
 * @param logits one logit vector per frame
 * @param labels one class index per frame (same length)
 */
LossResult softmaxCrossEntropy(const Sequence &logits,
                               const std::vector<int> &labels);

} // namespace ernn::nn

#endif // ERNN_NN_LOSS_HH
