#include "nn/lstm.hh"

#include "base/logging.hh"

namespace ernn::nn
{

LstmLayer::LstmLayer(const LstmConfig &cfg)
    : cfg_(cfg)
{
    ernn_assert(cfg.inputSize > 0 && cfg.hiddenSize > 0,
                "LSTM needs positive input/hidden sizes");
    const std::size_t in = cfg.inputSize;
    const std::size_t h = cfg.hiddenSize;
    const std::size_t rec = cfg.outputSize();

    wix_ = makeLinear(h, in, cfg.blockSizeInput);
    wfx_ = makeLinear(h, in, cfg.blockSizeInput);
    wcx_ = makeLinear(h, in, cfg.blockSizeInput);
    wox_ = makeLinear(h, in, cfg.blockSizeInput);

    wir_ = makeLinear(h, rec, cfg.blockSizeRecurrent);
    wfr_ = makeLinear(h, rec, cfg.blockSizeRecurrent);
    wcr_ = makeLinear(h, rec, cfg.blockSizeRecurrent);
    wor_ = makeLinear(h, rec, cfg.blockSizeRecurrent);

    if (cfg.projectionSize)
        wym_ = makeLinear(cfg.projectionSize, h,
                          cfg.blockSizeProjection);

    bi_.assign(h, 0.0); bf_.assign(h, 0.0);
    bc_.assign(h, 0.0); bo_.assign(h, 0.0);
    dbi_.assign(h, 0.0); dbf_.assign(h, 0.0);
    dbc_.assign(h, 0.0); dbo_.assign(h, 0.0);

    if (cfg.peephole) {
        wic_.assign(h, 0.0); wfc_.assign(h, 0.0); woc_.assign(h, 0.0);
        dwic_.assign(h, 0.0); dwfc_.assign(h, 0.0);
        dwoc_.assign(h, 0.0);
    }
}

Sequence
LstmLayer::forward(const Sequence &xs)
{
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t out_dim = cfg_.outputSize();

    cache_.clear();
    cache_.reserve(xs.size());

    Vector y_prev(out_dim, 0.0);
    Vector c_prev(h, 0.0);
    Sequence ys;
    ys.reserve(xs.size());

    Vector tmp(h);
    for (const Vector &x : xs) {
        ernn_assert(x.size() == cfg_.inputSize,
                    "LSTM input dim mismatch");
        StepCache st;
        st.x = x;
        st.yPrev = y_prev;
        st.cPrev = c_prev;

        // Input gate: i = sigma(Wix x + Wir y' + wic.c' + bi)
        wix_->forward(x, st.i);
        wir_->forward(y_prev, tmp);
        addInPlace(st.i, tmp);
        if (cfg_.peephole)
            hadamardAcc(st.i, wic_, c_prev);
        addInPlace(st.i, bi_);
        applyActivation(ActKind::Sigmoid, st.i);

        // Forget gate.
        wfx_->forward(x, st.f);
        wfr_->forward(y_prev, tmp);
        addInPlace(st.f, tmp);
        if (cfg_.peephole)
            hadamardAcc(st.f, wfc_, c_prev);
        addInPlace(st.f, bf_);
        applyActivation(ActKind::Sigmoid, st.f);

        // Cell input (no peephole, Eqn. 1c).
        wcx_->forward(x, st.g);
        wcr_->forward(y_prev, tmp);
        addInPlace(st.g, tmp);
        addInPlace(st.g, bc_);
        applyActivation(cfg_.cellInputAct, st.g);

        // Cell state: c = f.c' + g.i (Eqn. 1d).
        st.c.assign(h, 0.0);
        hadamardAcc(st.c, st.f, c_prev);
        hadamardAcc(st.c, st.g, st.i);

        // Output gate (peephole reads the *current* c, Eqn. 1e).
        wox_->forward(x, st.o);
        wor_->forward(y_prev, tmp);
        addInPlace(st.o, tmp);
        if (cfg_.peephole)
            hadamardAcc(st.o, woc_, st.c);
        addInPlace(st.o, bo_);
        applyActivation(ActKind::Sigmoid, st.o);

        // Cell output m = o . h(c) (Eqn. 1f).
        st.hc = activated(cfg_.outputAct, st.c);
        st.m = hadamard(st.o, st.hc);

        // Projected output (Eqn. 1g).
        Vector y;
        if (wym_)
            wym_->forward(st.m, y);
        else
            y = st.m;

        y_prev = y;
        c_prev = st.c;
        ys.push_back(std::move(y));
        cache_.push_back(std::move(st));
    }
    return ys;
}

Sequence
LstmLayer::backward(const Sequence &dys)
{
    ernn_assert(dys.size() == cache_.size(),
                "LSTM backward: sequence length mismatch (forward "
                "must precede backward)");
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t out_dim = cfg_.outputSize();
    const std::size_t t_len = cache_.size();

    Sequence dxs(t_len);
    Vector dy_rec(out_dim, 0.0);
    Vector dc_rec(h, 0.0);

    for (std::size_t ti = t_len; ti-- > 0;) {
        const StepCache &st = cache_[ti];
        ernn_assert(dys[ti].size() == out_dim,
                    "LSTM backward: dy dim mismatch");

        Vector dy = dys[ti];
        addInPlace(dy, dy_rec);

        // Through the projection.
        Vector dm;
        if (wym_) {
            dm.assign(h, 0.0);
            wym_->backward(st.m, dy, &dm);
        } else {
            dm = dy;
        }

        // m = o . h(c)
        Vector do_gate = hadamard(dm, st.hc);
        Vector dc(h, 0.0);
        for (std::size_t k = 0; k < h; ++k)
            dc[k] = dm[k] * st.o[k] *
                    actDerivFromOutput(cfg_.outputAct, st.hc[k]);
        addInPlace(dc, dc_rec);

        // Output gate pre-activation; its peephole feeds back into
        // dc at the *same* timestep (o_t reads c_t).
        Vector do_pre(h);
        for (std::size_t k = 0; k < h; ++k)
            do_pre[k] = do_gate[k] * st.o[k] * (1.0 - st.o[k]);
        if (cfg_.peephole) {
            hadamardAcc(dwoc_, do_pre, st.c);
            hadamardAcc(dc, woc_, do_pre);
        }

        // c = f.c' + g.i
        Vector di = hadamard(dc, st.g);
        Vector dg = hadamard(dc, st.i);
        Vector df = hadamard(dc, st.cPrev);
        Vector dc_prev = hadamard(dc, st.f);

        Vector di_pre(h), df_pre(h), dg_pre(h);
        for (std::size_t k = 0; k < h; ++k) {
            di_pre[k] = di[k] * st.i[k] * (1.0 - st.i[k]);
            df_pre[k] = df[k] * st.f[k] * (1.0 - st.f[k]);
            dg_pre[k] = dg[k] *
                        actDerivFromOutput(cfg_.cellInputAct, st.g[k]);
        }

        if (cfg_.peephole) {
            hadamardAcc(dwic_, di_pre, st.cPrev);
            hadamardAcc(dwfc_, df_pre, st.cPrev);
            hadamardAcc(dc_prev, wic_, di_pre);
            hadamardAcc(dc_prev, wfc_, df_pre);
        }

        addInPlace(dbi_, di_pre);
        addInPlace(dbf_, df_pre);
        addInPlace(dbc_, dg_pre);
        addInPlace(dbo_, do_pre);

        Vector dx(cfg_.inputSize, 0.0);
        wix_->backward(st.x, di_pre, &dx);
        wfx_->backward(st.x, df_pre, &dx);
        wcx_->backward(st.x, dg_pre, &dx);
        wox_->backward(st.x, do_pre, &dx);

        Vector dy_prev(out_dim, 0.0);
        wir_->backward(st.yPrev, di_pre, &dy_prev);
        wfr_->backward(st.yPrev, df_pre, &dy_prev);
        wcr_->backward(st.yPrev, dg_pre, &dy_prev);
        wor_->backward(st.yPrev, do_pre, &dy_prev);

        dxs[ti] = std::move(dx);
        dy_rec = std::move(dy_prev);
        dc_rec = std::move(dc_prev);
    }
    return dxs;
}

void
LstmLayer::registerParams(ParamRegistry &reg, const std::string &prefix)
{
    wix_->registerParams(reg, prefix + ".wix");
    wfx_->registerParams(reg, prefix + ".wfx");
    wcx_->registerParams(reg, prefix + ".wcx");
    wox_->registerParams(reg, prefix + ".wox");
    wir_->registerParams(reg, prefix + ".wir");
    wfr_->registerParams(reg, prefix + ".wfr");
    wcr_->registerParams(reg, prefix + ".wcr");
    wor_->registerParams(reg, prefix + ".wor");
    if (wym_)
        wym_->registerParams(reg, prefix + ".wym");

    auto addVec = [&](const char *name, Vector &v, Vector &g) {
        reg.add(ParamView{prefix + name, v.data(), g.data(), v.size(),
                          {}});
    };
    addVec(".bi", bi_, dbi_);
    addVec(".bf", bf_, dbf_);
    addVec(".bc", bc_, dbc_);
    addVec(".bo", bo_, dbo_);
    if (cfg_.peephole) {
        addVec(".wic", wic_, dwic_);
        addVec(".wfc", wfc_, dwfc_);
        addVec(".woc", woc_, dwoc_);
    }
}

void
LstmLayer::initXavier(Rng &rng)
{
    wix_->initXavier(rng);
    wfx_->initXavier(rng);
    wcx_->initXavier(rng);
    wox_->initXavier(rng);
    wir_->initXavier(rng);
    wfr_->initXavier(rng);
    wcr_->initXavier(rng);
    wor_->initXavier(rng);
    if (wym_)
        wym_->initXavier(rng);
    // Standard trick: bias the forget gate open at init.
    fill(bf_, 1.0);
    if (cfg_.peephole) {
        rng.fillUniform(wic_, 0.1);
        rng.fillUniform(wfc_, 0.1);
        rng.fillUniform(woc_, 0.1);
    }
}

std::size_t
LstmLayer::paramCount() const
{
    std::size_t n = wix_->paramCount() + wfx_->paramCount() +
                    wcx_->paramCount() + wox_->paramCount() +
                    wir_->paramCount() + wfr_->paramCount() +
                    wcr_->paramCount() + wor_->paramCount();
    if (wym_)
        n += wym_->paramCount();
    n += bi_.size() + bf_.size() + bc_.size() + bo_.size();
    if (cfg_.peephole)
        n += wic_.size() + wfc_.size() + woc_.size();
    return n;
}

} // namespace ernn::nn
