#include "nn/lstm.hh"

#include "base/logging.hh"

namespace ernn::nn
{

LstmLayer::LstmLayer(const LstmConfig &cfg)
    : cfg_(cfg)
{
    ernn_assert(cfg.inputSize > 0 && cfg.hiddenSize > 0,
                "LSTM needs positive input/hidden sizes");
    const std::size_t in = cfg.inputSize;
    const std::size_t h = cfg.hiddenSize;
    const std::size_t rec = cfg.outputSize();

    wix_ = makeLinear(h, in, cfg.blockSizeInput);
    wfx_ = makeLinear(h, in, cfg.blockSizeInput);
    wcx_ = makeLinear(h, in, cfg.blockSizeInput);
    wox_ = makeLinear(h, in, cfg.blockSizeInput);

    wir_ = makeLinear(h, rec, cfg.blockSizeRecurrent);
    wfr_ = makeLinear(h, rec, cfg.blockSizeRecurrent);
    wcr_ = makeLinear(h, rec, cfg.blockSizeRecurrent);
    wor_ = makeLinear(h, rec, cfg.blockSizeRecurrent);

    if (cfg.projectionSize)
        wym_ = makeLinear(cfg.projectionSize, h,
                          cfg.blockSizeProjection);

    bi_.assign(h, 0.0); bf_.assign(h, 0.0);
    bc_.assign(h, 0.0); bo_.assign(h, 0.0);
    dbi_.assign(h, 0.0); dbf_.assign(h, 0.0);
    dbc_.assign(h, 0.0); dbo_.assign(h, 0.0);

    if (cfg.peephole) {
        wic_.assign(h, 0.0); wfc_.assign(h, 0.0); woc_.assign(h, 0.0);
        dwic_.assign(h, 0.0); dwfc_.assign(h, 0.0);
        dwoc_.assign(h, 0.0);
    }
}

Sequence
LstmLayer::forward(const Sequence &xs)
{
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t out_dim = cfg_.outputSize();

    cache_.clear();
    cache_.reserve(xs.size());

    Vector y_prev(out_dim, 0.0);
    Vector c_prev(h, 0.0);
    Sequence ys;
    ys.reserve(xs.size());

    Vector tmp(h);
    for (const Vector &x : xs) {
        ernn_assert(x.size() == cfg_.inputSize,
                    "LSTM input dim mismatch");
        StepCache st;
        st.x = x;
        st.yPrev = y_prev;
        st.cPrev = c_prev;

        // Input gate: i = sigma(Wix x + Wir y' + wic.c' + bi)
        wix_->forward(x, st.i);
        wir_->forward(y_prev, tmp);
        addInPlace(st.i, tmp);
        if (cfg_.peephole)
            hadamardAcc(st.i, wic_, c_prev);
        addInPlace(st.i, bi_);
        applyActivation(ActKind::Sigmoid, st.i);

        // Forget gate.
        wfx_->forward(x, st.f);
        wfr_->forward(y_prev, tmp);
        addInPlace(st.f, tmp);
        if (cfg_.peephole)
            hadamardAcc(st.f, wfc_, c_prev);
        addInPlace(st.f, bf_);
        applyActivation(ActKind::Sigmoid, st.f);

        // Cell input (no peephole, Eqn. 1c).
        wcx_->forward(x, st.g);
        wcr_->forward(y_prev, tmp);
        addInPlace(st.g, tmp);
        addInPlace(st.g, bc_);
        applyActivation(cfg_.cellInputAct, st.g);

        // Cell state: c = f.c' + g.i (Eqn. 1d).
        st.c.assign(h, 0.0);
        hadamardAcc(st.c, st.f, c_prev);
        hadamardAcc(st.c, st.g, st.i);

        // Output gate (peephole reads the *current* c, Eqn. 1e).
        wox_->forward(x, st.o);
        wor_->forward(y_prev, tmp);
        addInPlace(st.o, tmp);
        if (cfg_.peephole)
            hadamardAcc(st.o, woc_, st.c);
        addInPlace(st.o, bo_);
        applyActivation(ActKind::Sigmoid, st.o);

        // Cell output m = o . h(c) (Eqn. 1f).
        st.hc = activated(cfg_.outputAct, st.c);
        st.m = hadamard(st.o, st.hc);

        // Projected output (Eqn. 1g).
        Vector y;
        if (wym_)
            wym_->forward(st.m, y);
        else
            y = st.m;

        y_prev = y;
        c_prev = st.c;
        ys.push_back(std::move(y));
        cache_.push_back(std::move(st));
    }
    return ys;
}

Sequence
LstmLayer::backward(const Sequence &dys)
{
    ernn_assert(dys.size() == cache_.size(),
                "LSTM backward: sequence length mismatch (forward "
                "must precede backward)");
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t out_dim = cfg_.outputSize();
    const std::size_t t_len = cache_.size();

    Sequence dxs(t_len);
    Vector dy_rec(out_dim, 0.0);
    Vector dc_rec(h, 0.0);

    for (std::size_t ti = t_len; ti-- > 0;) {
        const StepCache &st = cache_[ti];
        ernn_assert(dys[ti].size() == out_dim,
                    "LSTM backward: dy dim mismatch");

        Vector dy = dys[ti];
        addInPlace(dy, dy_rec);

        // Through the projection.
        Vector dm;
        if (wym_) {
            dm.assign(h, 0.0);
            wym_->backward(st.m, dy, &dm);
        } else {
            dm = dy;
        }

        // m = o . h(c)
        Vector do_gate = hadamard(dm, st.hc);
        Vector dc(h, 0.0);
        for (std::size_t k = 0; k < h; ++k)
            dc[k] = dm[k] * st.o[k] *
                    actDerivFromOutput(cfg_.outputAct, st.hc[k]);
        addInPlace(dc, dc_rec);

        // Output gate pre-activation; its peephole feeds back into
        // dc at the *same* timestep (o_t reads c_t).
        Vector do_pre(h);
        for (std::size_t k = 0; k < h; ++k)
            do_pre[k] = do_gate[k] * st.o[k] * (1.0 - st.o[k]);
        if (cfg_.peephole) {
            hadamardAcc(dwoc_, do_pre, st.c);
            hadamardAcc(dc, woc_, do_pre);
        }

        // c = f.c' + g.i
        Vector di = hadamard(dc, st.g);
        Vector dg = hadamard(dc, st.i);
        Vector df = hadamard(dc, st.cPrev);
        Vector dc_prev = hadamard(dc, st.f);

        Vector di_pre(h), df_pre(h), dg_pre(h);
        for (std::size_t k = 0; k < h; ++k) {
            di_pre[k] = di[k] * st.i[k] * (1.0 - st.i[k]);
            df_pre[k] = df[k] * st.f[k] * (1.0 - st.f[k]);
            dg_pre[k] = dg[k] *
                        actDerivFromOutput(cfg_.cellInputAct, st.g[k]);
        }

        if (cfg_.peephole) {
            hadamardAcc(dwic_, di_pre, st.cPrev);
            hadamardAcc(dwfc_, df_pre, st.cPrev);
            hadamardAcc(dc_prev, wic_, di_pre);
            hadamardAcc(dc_prev, wfc_, df_pre);
        }

        addInPlace(dbi_, di_pre);
        addInPlace(dbf_, df_pre);
        addInPlace(dbc_, dg_pre);
        addInPlace(dbo_, do_pre);

        Vector dx(cfg_.inputSize, 0.0);
        wix_->backward(st.x, di_pre, &dx);
        wfx_->backward(st.x, df_pre, &dx);
        wcx_->backward(st.x, dg_pre, &dx);
        wox_->backward(st.x, do_pre, &dx);

        Vector dy_prev(out_dim, 0.0);
        wir_->backward(st.yPrev, di_pre, &dy_prev);
        wfr_->backward(st.yPrev, df_pre, &dy_prev);
        wcr_->backward(st.yPrev, dg_pre, &dy_prev);
        wor_->backward(st.yPrev, do_pre, &dy_prev);

        dxs[ti] = std::move(dx);
        dy_rec = std::move(dy_prev);
        dc_rec = std::move(dc_prev);
    }
    return dxs;
}

BatchSequence
LstmLayer::forwardBatch(const BatchSequence &xs)
{
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t out_dim = cfg_.outputSize();

    batchCache_.clear();
    batchCache_.reserve(xs.size());

    BatchSequence ys;
    ys.reserve(xs.size());

    // FFT each distinct activation once per timestep and share the
    // spectra across the four gate operators reading it (bit-identical
    // to each operator transforming it: same transforms, same
    // downstream accumulation chains).
    const bool share_in =
        wix_->sharesSpectra() && wfx_->sharesSpectra() &&
        wcx_->sharesSpectra() && wox_->sharesSpectra();
    const bool share_rec =
        wir_->sharesSpectra() && wfr_->sharesSpectra() &&
        wcr_->sharesSpectra() && wor_->sharesSpectra();

    for (std::size_t t = 0; t < xs.size(); ++t) {
        const Matrix &x = xs[t];
        ernn_assert(x.rows() == cfg_.inputSize,
                    "LSTM batch input dim mismatch");
        const std::size_t lanes = x.cols();
        ernn_assert(t == 0 || lanes <= xs[t - 1].cols(),
                    "LSTM batch lanes must be non-increasing "
                    "(longest-first pooling)");
        BatchStepCache st;
        st.x = x;
        if (t == 0) {
            st.yPrev.reshape(out_dim, lanes);
            st.cPrev.reshape(h, lanes);
        } else {
            // Lanes retire longest-first, so the lanes alive now are
            // the leading columns of the previous step's state.
            copyLeadingCols(st.yPrev, ys[t - 1], lanes);
            copyLeadingCols(st.cPrev, batchCache_[t - 1].c, lanes);
        }

        if (share_in)
            circulant::computeSegmentSpectraBatch(
                x, wix_->blockSize(), bwsIn_);
        if (share_rec)
            circulant::computeSegmentSpectraBatch(
                st.yPrev, wir_->blockSize(), bwsRec_);
        auto gate_fwd = [&](LinearOp &wx, LinearOp &wr, Matrix &gate) {
            gate.reshape(h, lanes);
            if (share_in)
                wx.forwardBatchAccFromSpectra(bwsIn_, gate);
            else
                wx.forwardBatchAcc(x, gate);
            if (share_rec)
                wr.forwardBatchAccFromSpectra(bwsRec_, gate);
            else
                wr.forwardBatchAcc(st.yPrev, gate);
        };

        // Input gate: i = sigma(Wix x + Wir y' + wic.c' + bi). Each
        // lane column runs the exact arithmetic forward() runs: the
        // two gemms accumulate onto the zeroed gate in the order the
        // solo path's forward()+addInPlace pairing uses.
        gate_fwd(*wix_, *wir_, st.i);
        if (cfg_.peephole)
            hadamardBroadcastAcc(st.i, wic_, st.cPrev);
        addBiasRows(st.i, bi_);
        applyActivation(ActKind::Sigmoid, st.i.raw());

        // Forget gate.
        gate_fwd(*wfx_, *wfr_, st.f);
        if (cfg_.peephole)
            hadamardBroadcastAcc(st.f, wfc_, st.cPrev);
        addBiasRows(st.f, bf_);
        applyActivation(ActKind::Sigmoid, st.f.raw());

        // Cell input (no peephole, Eqn. 1c).
        gate_fwd(*wcx_, *wcr_, st.g);
        addBiasRows(st.g, bc_);
        applyActivation(cfg_.cellInputAct, st.g.raw());

        // Cell state: c = f.c' + g.i (elementwise on the raw
        // storage, which per entry is the solo hadamardAcc).
        st.c.reshape(h, lanes);
        hadamardAcc(st.c.raw(), st.f.raw(), st.cPrev.raw());
        hadamardAcc(st.c.raw(), st.g.raw(), st.i.raw());

        // Output gate (peephole reads the *current* c, Eqn. 1e).
        gate_fwd(*wox_, *wor_, st.o);
        if (cfg_.peephole)
            hadamardBroadcastAcc(st.o, woc_, st.c);
        addBiasRows(st.o, bo_);
        applyActivation(ActKind::Sigmoid, st.o.raw());

        // Cell output m = o . h(c) (Eqn. 1f).
        st.hc = st.c;
        applyActivation(cfg_.outputAct, st.hc.raw());
        st.m.reshape(h, lanes);
        hadamardAcc(st.m.raw(), st.o.raw(), st.hc.raw());

        // Projected output (Eqn. 1g).
        Matrix y;
        if (wym_) {
            y.reshape(out_dim, lanes);
            wym_->forwardBatchAcc(st.m, y);
        } else {
            y = st.m;
        }
        ys.push_back(std::move(y));
        batchCache_.push_back(std::move(st));
    }
    return ys;
}

BatchSequence
LstmLayer::backwardBatch(const BatchSequence &dys)
{
    ernn_assert(dys.size() == batchCache_.size(),
                "LSTM backwardBatch: sequence length mismatch "
                "(forwardBatch must precede backwardBatch)");
    const std::size_t h = cfg_.hiddenSize;
    const std::size_t out_dim = cfg_.outputSize();
    const std::size_t t_len = batchCache_.size();

    BatchSequence dxs(t_len);
    Matrix dy_rec(out_dim, 0);
    Matrix dc_rec(h, 0);

    // Same spectra-sharing scheme as forwardBatch: x and y' are each
    // read by four gate operators, and each gate's pre-activation
    // gradient is read by its W*x / W*r pair (one staging serves both
    // when the two block sizes agree). Interleaving the pairs keeps
    // dX receiving its contributions in (wix, wfx, wcx, wox) order
    // and dY' in (wir, wfr, wcr, wor) order — the two buffers take
    // disjoint contributions, so this matches the un-shared path
    // bit for bit.
    const bool share_in =
        wix_->sharesSpectra() && wfx_->sharesSpectra() &&
        wcx_->sharesSpectra() && wox_->sharesSpectra();
    const bool share_rec =
        wir_->sharesSpectra() && wfr_->sharesSpectra() &&
        wcr_->sharesSpectra() && wor_->sharesSpectra();

    for (std::size_t ti = t_len; ti-- > 0;) {
        const BatchStepCache &st = batchCache_[ti];
        const std::size_t lanes = st.x.cols();
        ernn_assert(dys[ti].rows() == out_dim &&
                    dys[ti].cols() == lanes,
                    "LSTM backwardBatch: dy shape mismatch");

        // Walking backward the lane count grows; the recurrent
        // gradient of the surviving lanes lands on the leading
        // columns of this wider step.
        Matrix dy = dys[ti];
        addLeadingColsAcc(dy, dy_rec);

        // Through the projection.
        Matrix dm;
        if (wym_) {
            dm.reshape(h, lanes);
            wym_->backwardBatch(st.m, dy, &dm);
        } else {
            dm = std::move(dy);
        }

        // m = o . h(c)
        Matrix do_gate(h, lanes);
        hadamardAcc(do_gate.raw(), dm.raw(), st.hc.raw());
        Matrix dc(h, lanes);
        {
            Vector &dcr = dc.raw();
            const Vector &dmr = dm.raw();
            const Vector &ov = st.o.raw();
            const Vector &hcv = st.hc.raw();
            for (std::size_t k = 0; k < dcr.size(); ++k)
                dcr[k] = dmr[k] * ov[k] *
                         actDerivFromOutput(cfg_.outputAct, hcv[k]);
        }
        addLeadingColsAcc(dc, dc_rec);

        // Output gate pre-activation; its peephole feeds back into
        // dc at the *same* timestep (o_t reads c_t).
        Matrix do_pre(h, lanes);
        {
            Vector &dpv = do_pre.raw();
            const Vector &dgv = do_gate.raw();
            const Vector &ov = st.o.raw();
            for (std::size_t k = 0; k < dpv.size(); ++k)
                dpv[k] = dgv[k] * ov[k] * (1.0 - ov[k]);
        }
        if (cfg_.peephole) {
            hadamardRowSumAcc(dwoc_, do_pre, st.c);
            hadamardBroadcastAcc(dc, woc_, do_pre);
        }

        // c = f.c' + g.i
        Matrix di(h, lanes), dg(h, lanes), df(h, lanes);
        Matrix dc_prev(h, lanes);
        hadamardAcc(di.raw(), dc.raw(), st.g.raw());
        hadamardAcc(dg.raw(), dc.raw(), st.i.raw());
        hadamardAcc(df.raw(), dc.raw(), st.cPrev.raw());
        hadamardAcc(dc_prev.raw(), dc.raw(), st.f.raw());

        Matrix di_pre(h, lanes), df_pre(h, lanes), dg_pre(h, lanes);
        {
            Vector &div = di_pre.raw();
            Vector &dfv = df_pre.raw();
            Vector &dgv = dg_pre.raw();
            const Vector &iv = st.i.raw();
            const Vector &fv = st.f.raw();
            const Vector &gv = st.g.raw();
            const Vector &rdi = di.raw();
            const Vector &rdf = df.raw();
            const Vector &rdg = dg.raw();
            for (std::size_t k = 0; k < div.size(); ++k) {
                div[k] = rdi[k] * iv[k] * (1.0 - iv[k]);
                dfv[k] = rdf[k] * fv[k] * (1.0 - fv[k]);
                dgv[k] = rdg[k] *
                         actDerivFromOutput(cfg_.cellInputAct, gv[k]);
            }
        }

        if (cfg_.peephole) {
            hadamardRowSumAcc(dwic_, di_pre, st.cPrev);
            hadamardRowSumAcc(dwfc_, df_pre, st.cPrev);
            hadamardBroadcastAcc(dc_prev, wic_, di_pre);
            hadamardBroadcastAcc(dc_prev, wfc_, df_pre);
        }

        rowSumAcc(dbi_, di_pre);
        rowSumAcc(dbf_, df_pre);
        rowSumAcc(dbc_, dg_pre);
        rowSumAcc(dbo_, do_pre);

        if (share_in)
            circulant::computeSegmentSpectraBatch(
                st.x, wix_->blockSize(), bwsIn_);
        if (share_rec)
            circulant::computeSegmentSpectraBatch(
                st.yPrev, wir_->blockSize(), bwsRec_);

        Matrix dx(cfg_.inputSize, lanes);
        Matrix dy_prev(out_dim, lanes);
        auto gate_bwd = [&](LinearOp &wx, LinearOp &wr,
                            const Matrix &dpre) {
            if (share_in) {
                circulant::computeSegmentSpectraBatch(
                    dpre, wx.blockSize(), bwsDy_);
                wx.backwardBatchFromSpectra(bwsIn_, bwsDy_, lanes,
                                            &dx);
            } else {
                wx.backwardBatch(st.x, dpre, &dx);
            }
            if (share_rec) {
                if (!share_in || wr.blockSize() != wx.blockSize())
                    circulant::computeSegmentSpectraBatch(
                        dpre, wr.blockSize(), bwsDy_);
                wr.backwardBatchFromSpectra(bwsRec_, bwsDy_, lanes,
                                            &dy_prev);
            } else {
                wr.backwardBatch(st.yPrev, dpre, &dy_prev);
            }
        };
        gate_bwd(*wix_, *wir_, di_pre);
        gate_bwd(*wfx_, *wfr_, df_pre);
        gate_bwd(*wcx_, *wcr_, dg_pre);
        gate_bwd(*wox_, *wor_, do_pre);

        dxs[ti] = std::move(dx);
        dy_rec = std::move(dy_prev);
        dc_rec = std::move(dc_prev);
    }
    return dxs;
}

void
LstmLayer::registerParams(ParamRegistry &reg, const std::string &prefix)
{
    wix_->registerParams(reg, prefix + ".wix");
    wfx_->registerParams(reg, prefix + ".wfx");
    wcx_->registerParams(reg, prefix + ".wcx");
    wox_->registerParams(reg, prefix + ".wox");
    wir_->registerParams(reg, prefix + ".wir");
    wfr_->registerParams(reg, prefix + ".wfr");
    wcr_->registerParams(reg, prefix + ".wcr");
    wor_->registerParams(reg, prefix + ".wor");
    if (wym_)
        wym_->registerParams(reg, prefix + ".wym");

    auto addVec = [&](const char *name, Vector &v, Vector &g) {
        reg.add(ParamView{prefix + name, v.data(), g.data(), v.size(),
                          {}});
    };
    addVec(".bi", bi_, dbi_);
    addVec(".bf", bf_, dbf_);
    addVec(".bc", bc_, dbc_);
    addVec(".bo", bo_, dbo_);
    if (cfg_.peephole) {
        addVec(".wic", wic_, dwic_);
        addVec(".wfc", wfc_, dwfc_);
        addVec(".woc", woc_, dwoc_);
    }
}

void
LstmLayer::initXavier(Rng &rng)
{
    wix_->initXavier(rng);
    wfx_->initXavier(rng);
    wcx_->initXavier(rng);
    wox_->initXavier(rng);
    wir_->initXavier(rng);
    wfr_->initXavier(rng);
    wcr_->initXavier(rng);
    wor_->initXavier(rng);
    if (wym_)
        wym_->initXavier(rng);
    // Standard trick: bias the forget gate open at init.
    fill(bf_, 1.0);
    if (cfg_.peephole) {
        rng.fillUniform(wic_, 0.1);
        rng.fillUniform(wfc_, 0.1);
        rng.fillUniform(woc_, 0.1);
    }
}

std::size_t
LstmLayer::paramCount() const
{
    std::size_t n = wix_->paramCount() + wfx_->paramCount() +
                    wcx_->paramCount() + wox_->paramCount() +
                    wir_->paramCount() + wfr_->paramCount() +
                    wcr_->paramCount() + wor_->paramCount();
    if (wym_)
        n += wym_->paramCount();
    n += bi_.size() + bf_.size() + bc_.size() + bo_.size();
    if (cfg_.peephole)
        n += wic_.size() + wfc_.size() + woc_.size();
    return n;
}

} // namespace ernn::nn
