/**
 * @file
 * LSTM layer implementing Eqn. (1) of the paper: input/forget/output
 * gates, optional diagonal peephole connections (Wic, Wfc, Woc), and
 * an optional output projection Wym (the "LSTM-1024 w/ projection-512"
 * configuration of ESE / Table III).
 *
 * Every weight matrix is a LinearOp, so each matrix class (input,
 * recurrent, projection) can independently be dense or
 * block-circulant with its own block size — this is exactly the
 * degree of freedom Phase I's fine-tuning step exploits (larger block
 * size for input/output matrices).
 */

#ifndef ERNN_NN_LSTM_HH
#define ERNN_NN_LSTM_HH

#include <memory>

#include "nn/activation.hh"
#include "nn/layer.hh"
#include "nn/linear_op.hh"

namespace ernn::nn
{

/** Static configuration of one LSTM layer. */
struct LstmConfig
{
    std::size_t inputSize = 0;      //!< dim of x_t
    std::size_t hiddenSize = 0;     //!< dim of c_t (the "layer size")
    std::size_t projectionSize = 0; //!< dim of y_t; 0 disables Wym
    bool peephole = false;          //!< diagonal Wic/Wfc/Woc

    std::size_t blockSizeInput = 1;      //!< W{i,f,c,o}x
    std::size_t blockSizeRecurrent = 1;  //!< W{i,f,c,o}r
    std::size_t blockSizeProjection = 1; //!< Wym

    /**
     * Activation of the cell input g_t. Eqn. (1c) of the paper
     * prints sigma; the Google LSTM it cites ([22], Sak et al.) uses
     * tanh, which is the default here and trains markedly better.
     */
    ActKind cellInputAct = ActKind::Tanh;
    ActKind outputAct = ActKind::Tanh; //!< h in Eqn. (1f)

    /** Output dimension: projection size if enabled, else hidden. */
    std::size_t outputSize() const
    {
        return projectionSize ? projectionSize : hiddenSize;
    }
};

class LstmLayer : public RnnLayer
{
  public:
    explicit LstmLayer(const LstmConfig &cfg);

    std::size_t inputSize() const override { return cfg_.inputSize; }
    std::size_t outputSize() const override
    {
        return cfg_.outputSize();
    }

    Sequence forward(const Sequence &xs) override;
    Sequence backward(const Sequence &dys) override;
    BatchSequence forwardBatch(const BatchSequence &xs) override;
    BatchSequence backwardBatch(const BatchSequence &dys) override;
    std::unique_ptr<RnnLayer> cloneArchitecture() const override
    {
        return std::make_unique<LstmLayer>(cfg_);
    }

    void registerParams(ParamRegistry &reg,
                        const std::string &prefix) override;
    void initXavier(Rng &rng) override;
    std::size_t paramCount() const override;
    std::string kindName() const override { return "lstm"; }

    const LstmConfig &config() const { return cfg_; }

    /// @{ Weight accessors (used by ADMM and the hardware mapper).
    LinearOp &wix() { return *wix_; }
    LinearOp &wfx() { return *wfx_; }
    LinearOp &wcx() { return *wcx_; }
    LinearOp &wox() { return *wox_; }
    LinearOp &wir() { return *wir_; }
    LinearOp &wfr() { return *wfr_; }
    LinearOp &wcr() { return *wcr_; }
    LinearOp &wor() { return *wor_; }
    LinearOp *wym() { return wym_.get(); }
    const LinearOp &wix() const { return *wix_; }
    const LinearOp &wfx() const { return *wfx_; }
    const LinearOp &wcx() const { return *wcx_; }
    const LinearOp &wox() const { return *wox_; }
    const LinearOp &wir() const { return *wir_; }
    const LinearOp &wfr() const { return *wfr_; }
    const LinearOp &wcr() const { return *wcr_; }
    const LinearOp &wor() const { return *wor_; }
    const LinearOp *wym() const { return wym_.get(); }
    /// @}

    /// @{ Bias / peephole accessors (used by the runtime compiler).
    const Vector &bi() const { return bi_; }
    const Vector &bf() const { return bf_; }
    const Vector &bc() const { return bc_; }
    const Vector &bo() const { return bo_; }
    const Vector &wic() const { return wic_; }
    const Vector &wfc() const { return wfc_; }
    const Vector &woc() const { return woc_; }
    /// @}

  private:
    struct StepCache
    {
        Vector x, yPrev, cPrev;
        Vector i, f, g, o, c, hc, m;
    };

    /** Batch-major twin of StepCache: (rows x lanes_t) matrices. */
    struct BatchStepCache
    {
        Matrix x, yPrev, cPrev;
        Matrix i, f, g, o, c, hc, m;
    };

    LstmConfig cfg_;

    std::unique_ptr<LinearOp> wix_, wfx_, wcx_, wox_;
    std::unique_ptr<LinearOp> wir_, wfr_, wcr_, wor_;
    std::unique_ptr<LinearOp> wym_;

    Vector bi_, bf_, bc_, bo_;
    Vector dbi_, dbf_, dbc_, dbo_;

    Vector wic_, wfc_, woc_;
    Vector dwic_, dwfc_, dwoc_;

    std::vector<StepCache> cache_;
    std::vector<BatchStepCache> batchCache_;

    /**
     * Batched-path spectra staging, one workspace per distinct
     * activation read by several gate operators in a timestep: the
     * input x (four W*x gates), the recurrent y' (four W*r gates),
     * and the per-gate upstream gradient (shared by the W*x / W*r
     * pair in backwardBatch). Layer-owned so replicated models train
     * in parallel without contending.
     */
    circulant::FftWorkspace bwsIn_, bwsRec_, bwsDy_;
};

} // namespace ernn::nn

#endif // ERNN_NN_LSTM_HH
