#include "nn/model_builder.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/strings.hh"
#include "nn/gru.hh"
#include "nn/lstm.hh"

namespace ernn::nn
{

namespace
{

std::size_t
roundUp(std::size_t v, std::size_t multiple)
{
    if (multiple <= 1)
        return v;
    return (v + multiple - 1) / multiple * multiple;
}

} // namespace

std::string
modelTypeName(ModelType type)
{
    return type == ModelType::Lstm ? "LSTM" : "GRU";
}

std::size_t
ModelSpec::blockFor(std::size_t l) const
{
    if (l < blockSizes.size() && blockSizes[l] > 1)
        return blockSizes[l];
    return 1;
}

std::size_t
ModelSpec::inputBlockFor(std::size_t l) const
{
    if (l < inputBlockSizes.size() && inputBlockSizes[l] > 1)
        return inputBlockSizes[l];
    return blockFor(l);
}

std::size_t
ModelSpec::layerOutputSize(std::size_t l) const
{
    ernn_assert(l < layerSizes.size(), "layer index out of range");
    if (type == ModelType::Lstm && projectionSize)
        return projectionSize;
    return layerSizes[l];
}

bool
ModelSpec::isDenseBaseline() const
{
    for (std::size_t l = 0; l < layerSizes.size(); ++l)
        if (blockFor(l) > 1 || inputBlockFor(l) > 1)
            return false;
    return true;
}

void
ModelSpec::validate() const
{
    ernn_assert(inputDim > 0, "spec: inputDim required");
    ernn_assert(numClasses > 1, "spec: numClasses required");
    ernn_assert(!layerSizes.empty(), "spec: at least one layer");
    ernn_assert(blockSizes.empty() ||
                blockSizes.size() == layerSizes.size(),
                "spec: blockSizes must match layer count");
    ernn_assert(inputBlockSizes.empty() ||
                inputBlockSizes.size() == layerSizes.size(),
                "spec: inputBlockSizes must match layer count");
    for (std::size_t l = 0; l < layerSizes.size(); ++l) {
        const std::size_t lb = blockFor(l);
        ernn_assert(layerSizes[l] % lb == 0,
                    "spec: layer " << l << " size " << layerSizes[l]
                    << " not divisible by block " << lb);
        if (projectionSize) {
            ernn_assert(projectionSize % lb == 0,
                        "spec: projection size not divisible by "
                        "block " << lb);
        }
    }
}

std::string
ModelSpec::describe() const
{
    std::ostringstream os;
    os << modelTypeName(type) << " " << fmtDashList(layerSizes);
    if (!isDenseBaseline()) {
        std::vector<std::size_t> blocks;
        for (std::size_t l = 0; l < layerSizes.size(); ++l)
            blocks.push_back(blockFor(l));
        os << " blocks " << fmtDashList(blocks);
        if (!inputBlockSizes.empty()) {
            std::vector<std::size_t> in_blocks;
            for (std::size_t l = 0; l < layerSizes.size(); ++l)
                in_blocks.push_back(inputBlockFor(l));
            if (in_blocks != blocks)
                os << " (input " << fmtDashList(in_blocks) << ")";
        }
    } else {
        os << " dense";
    }
    if (peephole)
        os << " peephole";
    if (projectionSize)
        os << " proj" << projectionSize;
    return os.str();
}

namespace
{

std::string
fmtCommaList(const std::vector<std::size_t> &vals)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < vals.size(); ++i)
        os << (i ? "," : "") << vals[i];
    return os.str();
}

std::vector<std::size_t>
parseCommaList(const std::string &s, const std::string &key)
{
    return parseUnsignedList(s, "spec key " + key);
}

std::size_t
parseSize(const std::string &s, const std::string &key)
{
    return parseUnsigned(s, "spec key " + key);
}

} // namespace

std::string
formatSpec(const ModelSpec &spec)
{
    std::ostringstream os;
    os << "type=" << (spec.type == ModelType::Lstm ? "lstm" : "gru")
       << " input=" << spec.inputDim
       << " classes=" << spec.numClasses
       << " layers=" << fmtCommaList(spec.layerSizes);
    if (!spec.blockSizes.empty())
        os << " blocks=" << fmtCommaList(spec.blockSizes);
    if (!spec.inputBlockSizes.empty())
        os << " input-blocks=" << fmtCommaList(spec.inputBlockSizes);
    if (spec.peephole)
        os << " peephole=1";
    if (spec.projectionSize)
        os << " projection=" << spec.projectionSize;
    return os.str();
}

ModelSpec
parseSpec(const std::string &line)
{
    ModelSpec spec;
    for (const std::string &raw_tok : split(trim(line), ' ')) {
        const std::string tok = trim(raw_tok);
        if (tok.empty())
            continue;
        const auto eq = tok.find('=');
        if (eq == std::string::npos)
            ernn_fatal("spec: expected key=value, got '" << tok
                       << "'");
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "type") {
            if (val == "lstm")
                spec.type = ModelType::Lstm;
            else if (val == "gru")
                spec.type = ModelType::Gru;
            else
                ernn_fatal("spec: unknown model type '" << val
                           << "' (expected lstm or gru)");
        } else if (key == "input") {
            spec.inputDim = parseSize(val, key);
        } else if (key == "classes") {
            spec.numClasses = parseSize(val, key);
        } else if (key == "layers") {
            spec.layerSizes = parseCommaList(val, key);
        } else if (key == "blocks") {
            spec.blockSizes = parseCommaList(val, key);
        } else if (key == "input-blocks") {
            spec.inputBlockSizes = parseCommaList(val, key);
        } else if (key == "peephole") {
            spec.peephole = val == "1" || val == "true";
        } else if (key == "projection") {
            spec.projectionSize = parseSize(val, key);
        } else {
            ernn_fatal("spec: unknown key '" << key << "'");
        }
    }
    spec.validate();
    return spec;
}

StackedRnn
buildModel(const ModelSpec &spec)
{
    spec.validate();
    StackedRnn model;
    std::size_t in_dim = spec.inputDim;
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l) {
        const std::size_t in_block = spec.inputBlockFor(l);
        ernn_assert(in_dim % in_block == 0,
                    "buildModel: input dim " << in_dim
                    << " of layer " << l
                    << " not divisible by block " << in_block
                    << " (pad the features)");
        if (spec.type == ModelType::Lstm) {
            LstmConfig cfg;
            cfg.inputSize = in_dim;
            cfg.hiddenSize = spec.layerSizes[l];
            cfg.projectionSize = spec.projectionSize;
            cfg.peephole = spec.peephole;
            cfg.blockSizeInput = in_block;
            cfg.blockSizeRecurrent = spec.blockFor(l);
            cfg.blockSizeProjection =
                spec.projectionSize ? spec.inputBlockFor(l) : 1;
            model.addLayer(std::make_unique<LstmLayer>(cfg));
            in_dim = cfg.outputSize();
        } else {
            GruConfig cfg;
            cfg.inputSize = in_dim;
            cfg.hiddenSize = spec.layerSizes[l];
            cfg.blockSizeInput = in_block;
            cfg.blockSizeRecurrent = spec.blockFor(l);
            model.addLayer(std::make_unique<GruLayer>(cfg));
            in_dim = cfg.hiddenSize;
        }
    }
    model.setClassifier(spec.numClasses);
    return model;
}

std::vector<WeightMatrixInfo>
weightInventory(const ModelSpec &spec)
{
    spec.validate();
    std::vector<WeightMatrixInfo> out;
    std::size_t in_dim = spec.inputDim;

    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l) {
        const std::size_t h = spec.layerSizes[l];
        const std::size_t rec_dim = spec.layerOutputSize(l);
        const std::size_t lb = spec.blockFor(l);
        const std::size_t in_lb = spec.inputBlockFor(l);
        const std::string ltag = "layer" + std::to_string(l);

        const bool lstm = spec.type == ModelType::Lstm;
        const std::size_t n_gates = lstm ? 4 : 3;

        // Input-side fused matrix W(*)(x): n_gates stacked H x I.
        out.push_back(WeightMatrixInfo{
            ltag + (lstm ? ".W(ifco)x" : ".W(zrc)x"), l,
            WeightClass::Input, n_gates * h, roundUp(in_dim, in_lb),
            in_lb});

        // Recurrent fused matrix.
        out.push_back(WeightMatrixInfo{
            ltag + (lstm ? ".W(ifco)r" : ".W(zrc)c"), l,
            WeightClass::Recurrent, n_gates * h,
            roundUp(rec_dim, lb), lb});

        if (lstm && spec.projectionSize) {
            out.push_back(WeightMatrixInfo{
                ltag + ".Wym", l, WeightClass::Projection,
                spec.projectionSize, roundUp(h, in_lb), in_lb});
        }
        in_dim = rec_dim;
    }

    out.push_back(WeightMatrixInfo{"classifier.W",
                                   spec.layerSizes.size() - 1,
                                   WeightClass::Classifier,
                                   spec.numClasses, in_dim, 1});
    return out;
}

std::size_t
totalWeightParams(const ModelSpec &spec)
{
    std::size_t n = 0;
    for (const auto &w : weightInventory(spec))
        n += w.params();
    return n;
}

std::size_t
totalDenseParams(const ModelSpec &spec)
{
    std::size_t n = 0;
    for (const auto &w : weightInventory(spec))
        n += w.denseParams();
    return n;
}

} // namespace ernn::nn
