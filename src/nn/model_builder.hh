/**
 * @file
 * Declarative RNN model specification and builder. A ModelSpec is the
 * object Phase I optimizes (model type, layer sizes, per-layer block
 * sizes, fine-tuning overrides for the input/output matrices) and the
 * object Phase II maps to hardware; buildModel() turns it into a
 * runnable StackedRnn, and weightInventory() enumerates every weight
 * matrix for the hardware resource model.
 */

#ifndef ERNN_NN_MODEL_BUILDER_HH
#define ERNN_NN_MODEL_BUILDER_HH

#include <string>
#include <vector>

#include "nn/rnn.hh"

namespace ernn::nn
{

/** RNN cell family. */
enum class ModelType { Lstm, Gru };

/** "LSTM" / "GRU". */
std::string modelTypeName(ModelType type);

/** Complete declarative description of an acoustic model. */
struct ModelSpec
{
    ModelType type = ModelType::Lstm;
    std::size_t inputDim = 0;
    std::size_t numClasses = 0;

    /** Hidden size (dim of c_t) per stacked layer. */
    std::vector<std::size_t> layerSizes;

    /**
     * Block size per layer (applies to that layer's weight
     * matrices); empty or 1 entries mean dense (the "-" rows of
     * Tables I/II).
     */
    std::vector<std::size_t> blockSizes;

    /**
     * Optional per-layer override for the input-side matrices (W*x
     * and Wym): Phase I step 3 raises the block size of "relatively
     * unimportant weight matrices ... the input and output matrices".
     * Empty means "same as blockSizes".
     */
    std::vector<std::size_t> inputBlockSizes;

    bool peephole = false;          //!< LSTM diagonal peepholes
    std::size_t projectionSize = 0; //!< LSTM output projection (0=off)

    /** Effective block size of layer @p l 's recurrent matrices. */
    std::size_t blockFor(std::size_t l) const;

    /** Effective block size of layer @p l 's input-side matrices. */
    std::size_t inputBlockFor(std::size_t l) const;

    /** Output dim of layer @p l (projection-aware). */
    std::size_t layerOutputSize(std::size_t l) const;

    /** True when every layer is dense (a baseline row). */
    bool isDenseBaseline() const;

    /** Panic on inconsistent dimensions. */
    void validate() const;

    /** e.g. "LSTM 1024-1024 blocks 8-8 peephole proj512". */
    std::string describe() const;
};

/** Instantiate a runnable model from a spec (weights zeroed). */
StackedRnn buildModel(const ModelSpec &spec);

/**
 * One-line machine-readable encoding of a spec, e.g.
 * "type=lstm input=16 classes=10 layers=64,64 blocks=8,8 peephole=1
 * projection=32". parseSpec() round-trips it exactly; the CLI stores
 * this line next to each checkpoint so `ernn compile` can rebuild
 * the architecture without the training code that produced it.
 */
std::string formatSpec(const ModelSpec &spec);

/**
 * Parse a formatSpec() line (leading/trailing whitespace ignored).
 * Fatal on unknown keys, malformed values, or a spec that fails
 * validate() — a spec file must be usable or rejected loudly.
 */
ModelSpec parseSpec(const std::string &line);

/** The role a weight matrix plays (drives hw mapping and Phase I). */
enum class WeightClass { Input, Recurrent, Projection, Classifier };

/** One weight matrix of the model, as the hardware sees it. */
struct WeightMatrixInfo
{
    std::string name;
    std::size_t layer = 0;
    WeightClass cls = WeightClass::Input;
    std::size_t rows = 0;
    std::size_t cols = 0; //!< padded up to a block-size multiple
    std::size_t blockSize = 1;

    /** Stored parameter count (after circulant compression). */
    std::size_t params() const
    {
        return rows * cols / blockSize;
    }

    /** Dense-equivalent parameter count. */
    std::size_t denseParams() const { return rows * cols; }
};

/**
 * Enumerate every weight matrix of the spec. Input dims that are not
 * multiples of the block size are padded up (the standard deployment
 * trick for e.g. TIMIT's 153-dim features).
 */
std::vector<WeightMatrixInfo> weightInventory(const ModelSpec &spec);

/** Total stored weight parameters across the inventory. */
std::size_t totalWeightParams(const ModelSpec &spec);

/** Dense-equivalent total, for compression-ratio reporting. */
std::size_t totalDenseParams(const ModelSpec &spec);

} // namespace ernn::nn

#endif // ERNN_NN_MODEL_BUILDER_HH
