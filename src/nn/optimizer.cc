#include "nn/optimizer.hh"

#include <cmath>

#include "base/logging.hh"

namespace ernn::nn
{

namespace
{

void
ensureState(std::vector<std::vector<Real>> &state,
            const ParamRegistry &reg)
{
    if (state.size() == reg.views().size())
        return;
    ernn_assert(state.empty(),
                "optimizer reused with a different registry");
    state.resize(reg.views().size());
    for (std::size_t i = 0; i < reg.views().size(); ++i)
        state[i].assign(reg.views()[i].size, 0.0);
}

/** Validate an imported slot block against the registry layout. */
void
checkSlotShapes(const std::vector<std::vector<Real>> &slots,
                std::size_t offset, const ParamRegistry &reg)
{
    for (std::size_t i = 0; i < reg.views().size(); ++i)
        ernn_assert(slots[offset + i].size() == reg.views()[i].size,
                    "optimizer state slot " << offset + i << " has "
                    << slots[offset + i].size() << " entries, registry"
                    " view '" << reg.views()[i].name << "' expects "
                    << reg.views()[i].size);
}

} // namespace

Sgd::Sgd(Real lr, Real momentum)
    : Optimizer(lr), momentum_(momentum)
{
}

void
Sgd::step(ParamRegistry &reg)
{
    ensureState(velocity_, reg);
    for (std::size_t i = 0; i < reg.views().size(); ++i) {
        ParamView &p = reg.views()[i];
        std::vector<Real> &vel = velocity_[i];
        for (std::size_t k = 0; k < p.size; ++k) {
            vel[k] = momentum_ * vel[k] - lr_ * p.grad[k];
            p.data[k] += vel[k];
        }
        if (p.onUpdate)
            p.onUpdate();
    }
}

OptimizerState
Sgd::exportState() const
{
    OptimizerState st;
    st.steps = 0;
    st.slots = velocity_;
    return st;
}

void
Sgd::importState(const OptimizerState &state, const ParamRegistry &reg)
{
    if (state.slots.empty()) {
        velocity_.clear();
        return;
    }
    ernn_assert(state.slots.size() == reg.views().size(),
                "sgd state has " << state.slots.size()
                << " slots, registry has " << reg.views().size()
                << " views");
    checkSlotShapes(state.slots, 0, reg);
    velocity_ = state.slots;
}

Adam::Adam(Real lr, Real beta1, Real beta2, Real eps)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
}

void
Adam::step(ParamRegistry &reg)
{
    ensureState(m_, reg);
    ensureState(v_, reg);
    ++t_;
    const Real bc1 = 1.0 - std::pow(beta1_, static_cast<Real>(t_));
    const Real bc2 = 1.0 - std::pow(beta2_, static_cast<Real>(t_));
    for (std::size_t i = 0; i < reg.views().size(); ++i) {
        ParamView &p = reg.views()[i];
        std::vector<Real> &m = m_[i];
        std::vector<Real> &v = v_[i];
        for (std::size_t k = 0; k < p.size; ++k) {
            const Real g = p.grad[k];
            m[k] = beta1_ * m[k] + (1.0 - beta1_) * g;
            v[k] = beta2_ * v[k] + (1.0 - beta2_) * g * g;
            const Real mhat = m[k] / bc1;
            const Real vhat = v[k] / bc2;
            p.data[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
        if (p.onUpdate)
            p.onUpdate();
    }
}

OptimizerState
Adam::exportState() const
{
    OptimizerState st;
    st.steps = t_;
    st.slots.reserve(m_.size() + v_.size());
    st.slots.insert(st.slots.end(), m_.begin(), m_.end());
    st.slots.insert(st.slots.end(), v_.begin(), v_.end());
    return st;
}

void
Adam::importState(const OptimizerState &state, const ParamRegistry &reg)
{
    if (state.slots.empty()) {
        m_.clear();
        v_.clear();
        t_ = 0;
        return;
    }
    ernn_assert(state.slots.size() == 2 * reg.views().size(),
                "adam state has " << state.slots.size()
                << " slots, expected 2x" << reg.views().size());
    checkSlotShapes(state.slots, 0, reg);
    checkSlotShapes(state.slots, reg.views().size(), reg);
    m_.assign(state.slots.begin(),
              state.slots.begin() + reg.views().size());
    v_.assign(state.slots.begin() + reg.views().size(),
              state.slots.end());
    t_ = state.steps;
}

Real
clipGradNorm(ParamRegistry &reg, Real max_norm)
{
    Real sq = 0.0;
    for (const auto &p : reg.views())
        for (std::size_t k = 0; k < p.size; ++k)
            sq += p.grad[k] * p.grad[k];
    const Real norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0.0) {
        const Real scale = max_norm / norm;
        for (auto &p : reg.views())
            for (std::size_t k = 0; k < p.size; ++k)
                p.grad[k] *= scale;
    }
    return norm;
}

} // namespace ernn::nn
