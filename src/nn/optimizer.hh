/**
 * @file
 * First-order optimizers over a ParamRegistry. ADMM subproblem 1
 * (Eqn. 5) is "solved by stochastic gradient descent" in the paper;
 * Adam is provided because "ADMM-based training is compatible with
 * recent progress in stochastic gradient descent (e.g., ADAM)".
 */

#ifndef ERNN_NN_OPTIMIZER_HH
#define ERNN_NN_OPTIMIZER_HH

#include <memory>
#include <vector>

#include "base/types.hh"
#include "nn/param.hh"

namespace ernn::nn
{

/**
 * Serialized optimizer state: the step counter plus every per-view
 * moment buffer, in registry order (Sgd: velocity; Adam: m then v).
 * Empty slots mean "fresh optimizer, no steps taken". The training
 * checkpoint persists one of these so a resumed run takes bit-wise
 * the same update steps as an uninterrupted one.
 */
struct OptimizerState
{
    std::uint64_t steps = 0;
    std::vector<std::vector<Real>> slots;
};

class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step(ParamRegistry &reg) = 0;

    /** Serialization tag ("sgd" / "adam"), checked on restore. */
    virtual const char *kindName() const = 0;

    /** Capture step counter + moments for checkpointing. */
    virtual OptimizerState exportState() const = 0;

    /**
     * Restore a state captured by exportState(). Slot shapes must
     * match @p reg (which must be the registry this optimizer steps);
     * an empty slot list resets to a fresh optimizer.
     */
    virtual void importState(const OptimizerState &state,
                             const ParamRegistry &reg) = 0;

    Real learningRate() const { return lr_; }
    void setLearningRate(Real lr) { lr_ = lr; }

  protected:
    explicit Optimizer(Real lr) : lr_(lr) {}
    Real lr_;
};

/** SGD with classical momentum. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(Real lr, Real momentum = 0.9);
    void step(ParamRegistry &reg) override;
    const char *kindName() const override { return "sgd"; }
    OptimizerState exportState() const override;
    void importState(const OptimizerState &state,
                     const ParamRegistry &reg) override;

  private:
    Real momentum_;
    std::vector<std::vector<Real>> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    explicit Adam(Real lr, Real beta1 = 0.9, Real beta2 = 0.999,
                  Real eps = 1e-8);
    void step(ParamRegistry &reg) override;
    const char *kindName() const override { return "adam"; }
    OptimizerState exportState() const override;
    void importState(const OptimizerState &state,
                     const ParamRegistry &reg) override;

  private:
    Real beta1_, beta2_, eps_;
    std::uint64_t t_ = 0;
    std::vector<std::vector<Real>> m_, v_;
};

/**
 * Scale all gradients so their global L2 norm is at most
 * @p max_norm (no-op when already below).
 *
 * @return the pre-clipping global norm
 */
Real clipGradNorm(ParamRegistry &reg, Real max_norm);

} // namespace ernn::nn

#endif // ERNN_NN_OPTIMIZER_HH
