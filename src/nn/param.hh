/**
 * @file
 * Parameter registry: a flat, named view over every trainable buffer
 * in a model. Optimizers, gradient clipping, and the ADMM trainer all
 * operate on these views without knowing the owning layer types.
 */

#ifndef ERNN_NN_PARAM_HH
#define ERNN_NN_PARAM_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ernn::nn
{

/** A contiguous trainable buffer and its gradient. */
struct ParamView
{
    std::string name;
    Real *data = nullptr;
    Real *grad = nullptr;
    std::size_t size = 0;
    /** Invoked after the optimizer writes data (e.g. to invalidate
     *  cached generator spectra). May be empty. */
    std::function<void()> onUpdate;
};

/** Ordered collection of parameter views for one model. */
class ParamRegistry
{
  public:
    void add(ParamView view) { views_.push_back(std::move(view)); }

    std::vector<ParamView> &views() { return views_; }
    const std::vector<ParamView> &views() const { return views_; }

    /** Total number of scalars across all views. */
    std::size_t totalParams() const
    {
        std::size_t n = 0;
        for (const auto &v : views_)
            n += v.size;
        return n;
    }

    /** Zero every gradient buffer. */
    void zeroGrad()
    {
        for (auto &v : views_)
            for (std::size_t i = 0; i < v.size; ++i)
                v.grad[i] = 0.0;
    }

    /** Notify all owners that data buffers changed. */
    void notifyUpdated()
    {
        for (auto &v : views_)
            if (v.onUpdate)
                v.onUpdate();
    }

  private:
    std::vector<ParamView> views_;
};

} // namespace ernn::nn

#endif // ERNN_NN_PARAM_HH
