#include "nn/rnn.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ernn::nn
{

void
StackedRnn::addLayer(std::unique_ptr<RnnLayer> layer)
{
    ernn_assert(!registryBuilt_,
                "cannot add layers after params() was built");
    if (!layers_.empty()) {
        ernn_assert(layers_.back()->outputSize() == layer->inputSize(),
                    "layer dim chain broken: "
                        << layers_.back()->outputSize() << " -> "
                        << layer->inputSize());
    }
    layers_.push_back(std::move(layer));
}

void
StackedRnn::setClassifier(std::size_t num_classes)
{
    ernn_assert(!layers_.empty(), "add layers before the classifier");
    ernn_assert(!registryBuilt_,
                "cannot set classifier after params() was built");
    numClasses_ = num_classes;
    classifier_ = std::make_unique<DenseLinear>(
        num_classes, layers_.back()->outputSize());
    classBias_.assign(num_classes, 0.0);
    dClassBias_.assign(num_classes, 0.0);
}

std::size_t
StackedRnn::inputSize() const
{
    ernn_assert(!layers_.empty(), "empty model");
    return layers_.front()->inputSize();
}

std::size_t
StackedRnn::paramCount() const
{
    std::size_t n = 0;
    for (const auto &l : layers_)
        n += l->paramCount();
    if (classifier_)
        n += classifier_->paramCount() + classBias_.size();
    return n;
}

void
StackedRnn::initXavier(Rng &rng)
{
    for (auto &l : layers_)
        l->initXavier(rng);
    if (classifier_)
        classifier_->initXavier(rng);
}

Sequence
StackedRnn::forwardLogits(const Sequence &xs)
{
    ernn_assert(classifier_, "classifier not attached");
    lastInput_ = xs;
    lastOutputs_.clear();
    lastOutputs_.reserve(layers_.size());

    const Sequence *cur = &xs;
    for (auto &l : layers_) {
        lastOutputs_.push_back(l->forward(*cur));
        cur = &lastOutputs_.back();
    }

    Sequence logits(cur->size());
    for (std::size_t t = 0; t < cur->size(); ++t) {
        classifier_->forward((*cur)[t], logits[t]);
        addInPlace(logits[t], classBias_);
    }
    return logits;
}

void
StackedRnn::backwardFromLogits(const Sequence &dlogits)
{
    ernn_assert(classifier_, "classifier not attached");
    ernn_assert(!lastOutputs_.empty() &&
                dlogits.size() == lastOutputs_.back().size(),
                "backwardFromLogits without matching forward");

    const Sequence &top = lastOutputs_.back();
    Sequence dtop(dlogits.size());
    for (std::size_t t = 0; t < dlogits.size(); ++t) {
        dtop[t].assign(top[t].size(), 0.0);
        classifier_->backward(top[t], dlogits[t], &dtop[t]);
        addInPlace(dClassBias_, dlogits[t]);
    }

    Sequence grad = std::move(dtop);
    for (std::size_t li = layers_.size(); li-- > 0;)
        grad = layers_[li]->backward(grad);
}

BatchSequence
StackedRnn::forwardLogitsBatch(const BatchSequence &xs)
{
    ernn_assert(classifier_, "classifier not attached");
    lastBatchOutputs_.clear();
    lastBatchOutputs_.reserve(layers_.size());

    const BatchSequence *cur = &xs;
    for (auto &l : layers_) {
        lastBatchOutputs_.push_back(l->forwardBatch(*cur));
        cur = &lastBatchOutputs_.back();
    }

    BatchSequence logits(cur->size());
    for (std::size_t t = 0; t < cur->size(); ++t) {
        logits[t].reshape(numClasses_, (*cur)[t].cols());
        classifier_->forwardBatchAcc((*cur)[t], logits[t]);
        addBiasRows(logits[t], classBias_);
    }
    return logits;
}

void
StackedRnn::backwardFromLogitsBatch(const BatchSequence &dlogits)
{
    ernn_assert(classifier_, "classifier not attached");
    ernn_assert(!lastBatchOutputs_.empty() &&
                dlogits.size() == lastBatchOutputs_.back().size(),
                "backwardFromLogitsBatch without matching forward");

    const BatchSequence &top = lastBatchOutputs_.back();
    BatchSequence dtop(dlogits.size());
    for (std::size_t t = 0; t < dlogits.size(); ++t) {
        dtop[t].reshape(top[t].rows(), top[t].cols());
        classifier_->backwardBatch(top[t], dlogits[t], &dtop[t]);
        rowSumAcc(dClassBias_, dlogits[t]);
    }

    BatchSequence grad = std::move(dtop);
    for (std::size_t li = layers_.size(); li-- > 0;)
        grad = layers_[li]->backwardBatch(grad);
}

StackedRnn
StackedRnn::cloneArchitecture() const
{
    StackedRnn out;
    for (const auto &l : layers_)
        out.addLayer(l->cloneArchitecture());
    if (classifier_)
        out.setClassifier(numClasses_);
    return out;
}

void
StackedRnn::copyParamsFrom(StackedRnn &src)
{
    auto &dst_views = params().views();
    auto &src_views = src.params().views();
    ernn_assert(dst_views.size() == src_views.size(),
                "copyParamsFrom: registry shape mismatch");
    for (std::size_t i = 0; i < dst_views.size(); ++i) {
        auto &d = dst_views[i];
        const auto &s = src_views[i];
        ernn_assert(d.name == s.name && d.size == s.size,
                    "copyParamsFrom: view mismatch at " << d.name);
        std::copy(s.data, s.data + s.size, d.data);
        if (d.onUpdate)
            d.onUpdate();
    }
}

std::vector<int>
StackedRnn::predictFrames(const Sequence &xs)
{
    const Sequence logits = forwardLogits(xs);
    std::vector<int> out(logits.size());
    for (std::size_t t = 0; t < logits.size(); ++t)
        out[t] = static_cast<int>(argmax(logits[t]));
    return out;
}

const DenseLinear &
StackedRnn::classifier() const
{
    ernn_assert(classifier_, "classifier not attached");
    return *classifier_;
}

ParamRegistry &
StackedRnn::params()
{
    if (!registryBuilt_) {
        for (std::size_t i = 0; i < layers_.size(); ++i)
            layers_[i]->registerParams(registry_,
                                       "layer" + std::to_string(i));
        if (classifier_) {
            classifier_->registerParams(registry_, "classifier.w");
            registry_.add(ParamView{"classifier.b", classBias_.data(),
                                    dClassBias_.data(),
                                    classBias_.size(), {}});
        }
        registryBuilt_ = true;
    }
    return registry_;
}

} // namespace ernn::nn
