/**
 * @file
 * Stacked RNN acoustic model: a pile of LSTM/GRU layers plus a dense
 * softmax classifier, mirroring the paper's "stack multiple RNN
 * layers to build our network" (Sec. IV).
 *
 * This is the *training* surface: forwardLogits() caches every
 * activation for BPTT. For serving, freeze the trained model with
 * runtime::compile() and run it through an InferenceSession (batched
 * or streaming, allocation-free, pluggable backends).
 */

#ifndef ERNN_NN_RNN_HH
#define ERNN_NN_RNN_HH

#include <memory>
#include <vector>

#include "nn/layer.hh"
#include "nn/linear_op.hh"
#include "nn/param.hh"

namespace ernn::nn
{

class StackedRnn
{
  public:
    StackedRnn() = default;

    /** Append a recurrent layer; dims must chain. */
    void addLayer(std::unique_ptr<RnnLayer> layer);

    /** Attach the softmax classifier head (dense). */
    void setClassifier(std::size_t num_classes);

    std::size_t numLayers() const { return layers_.size(); }
    RnnLayer &layer(std::size_t i) { return *layers_[i]; }
    const RnnLayer &layer(std::size_t i) const { return *layers_[i]; }
    std::size_t numClasses() const { return numClasses_; }
    std::size_t inputSize() const;

    /** Total stored parameters (layers + classifier). */
    std::size_t paramCount() const;

    /** Initialize all weights from the given RNG. */
    void initXavier(Rng &rng);

    /**
     * Forward over a sequence, producing one logit frame per input
     * frame; caches everything needed by backward().
     */
    Sequence forwardLogits(const Sequence &xs);

    /** BPTT from logit gradients (after forwardLogits). */
    void backwardFromLogits(const Sequence &dlogits);

    /**
     * Batch-major forward over pooled utterance lanes: one logit
     * matrix per timestep. Lane l computes the exact bits
     * forwardLogits() computes on the corresponding solo sequence.
     * Caches are separate from the solo path's.
     */
    BatchSequence forwardLogitsBatch(const BatchSequence &xs);

    /** Batch-major BPTT (after forwardLogitsBatch). */
    void backwardFromLogitsBatch(const BatchSequence &dlogits);

    /**
     * A freshly constructed model of identical architecture (same
     * layer configs and classifier head, zero weights). The trainer
     * clones one replica per gradient group and syncs weights with
     * copyParamsFrom, so groups backprop concurrently.
     */
    StackedRnn cloneArchitecture() const;

    /**
     * Copy every parameter buffer from @p src (a model of identical
     * architecture) into this model and fire the update hooks.
     */
    void copyParamsFrom(StackedRnn &src);

    /**
     * Greedy per-frame class predictions via the training-path
     * forward (caches every activation for BPTT and allocates per
     * frame). Kept as the legacy reference that runtime:: backends
     * are validated and benchmarked against; serving code should
     * compile the model and use an InferenceSession instead.
     */
    std::vector<int> predictFrames(const Sequence &xs);

    /// @{ Classifier head accessors (used by the runtime compiler).
    const DenseLinear &classifier() const;
    const Vector &classifierBias() const { return classBias_; }
    /// @}

    /**
     * Build (once) and return the parameter registry. The registry
     * holds raw pointers into the layers, so the model must not be
     * structurally modified afterwards.
     */
    ParamRegistry &params();

  private:
    std::vector<std::unique_ptr<RnnLayer>> layers_;
    std::unique_ptr<DenseLinear> classifier_;
    Vector classBias_, dClassBias_;
    std::size_t numClasses_ = 0;

    /** Per-layer outputs of the last forward (inputs to the next). */
    std::vector<Sequence> lastOutputs_;
    Sequence lastInput_;

    /** Batch-major twin of lastOutputs_ (forwardLogitsBatch). */
    std::vector<BatchSequence> lastBatchOutputs_;

    ParamRegistry registry_;
    bool registryBuilt_ = false;
};

} // namespace ernn::nn

#endif // ERNN_NN_RNN_HH
