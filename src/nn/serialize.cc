#include "nn/serialize.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace ernn::nn
{

namespace
{

constexpr const char *magic = "ernn-checkpoint-v1";

} // namespace

void
saveParams(StackedRnn &model, std::ostream &os)
{
    ParamRegistry &reg = model.params();
    os << magic << "\n" << reg.views().size() << "\n";
    os << std::setprecision(17);
    for (const auto &view : reg.views()) {
        os << view.name << " " << view.size << "\n";
        for (std::size_t k = 0; k < view.size; ++k) {
            os << view.data[k]
               << ((k + 1) % 8 == 0 || k + 1 == view.size ?
                       '\n' : ' ');
        }
    }
}

void
saveParams(StackedRnn &model, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        ernn_fatal("cannot open checkpoint file " << path);
    saveParams(model, os);
    if (!os)
        ernn_fatal("failed writing checkpoint " << path);
}

void
loadParams(StackedRnn &model, std::istream &is)
{
    std::string header;
    is >> header;
    if (header != magic)
        ernn_fatal("not an E-RNN checkpoint (bad magic '" << header
                   << "')");
    std::size_t views = 0;
    is >> views;
    ParamRegistry &reg = model.params();
    if (views != reg.views().size())
        ernn_fatal("checkpoint has " << views << " views, model has "
                   << reg.views().size());

    for (std::size_t v = 0; v < views; ++v) {
        std::string name;
        std::size_t size = 0;
        is >> name >> size;
        ParamView *target = nullptr;
        for (auto &view : reg.views()) {
            if (view.name == name) {
                target = &view;
                break;
            }
        }
        if (!target)
            ernn_fatal("checkpoint view '" << name
                       << "' not present in the model");
        if (target->size != size)
            ernn_fatal("checkpoint view '" << name << "' has " << size
                       << " values, model expects " << target->size);
        for (std::size_t k = 0; k < size; ++k) {
            if (!(is >> target->data[k]))
                ernn_fatal("truncated checkpoint at view '" << name
                           << "'");
        }
    }
    reg.notifyUpdated();
}

void
loadParams(StackedRnn &model, const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        ernn_fatal("cannot open checkpoint file " << path);
    loadParams(model, is);
}

} // namespace ernn::nn
