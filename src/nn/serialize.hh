/**
 * @file
 * Model checkpointing: save/load every trainable parameter of a
 * model through its registry. The format is a self-describing text
 * file (name, size, values per view), so checkpoints survive
 * refactors that do not rename parameters and stay diffable.
 */

#ifndef ERNN_NN_SERIALIZE_HH
#define ERNN_NN_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "nn/rnn.hh"

namespace ernn::nn
{

/** Write all parameters to a stream. */
void saveParams(StackedRnn &model, std::ostream &os);

/** Write all parameters to a file; fatal on I/O failure. */
void saveParams(StackedRnn &model, const std::string &path);

/**
 * Load parameters from a stream into a structurally identical model
 * (same registry names and sizes). Unknown or missing views are
 * fatal: a checkpoint must match its architecture.
 */
void loadParams(StackedRnn &model, std::istream &is);

/** Load parameters from a file; fatal on I/O failure. */
void loadParams(StackedRnn &model, const std::string &path);

} // namespace ernn::nn

#endif // ERNN_NN_SERIALIZE_HH
