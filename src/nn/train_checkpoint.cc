#include "nn/train_checkpoint.hh"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"
#include "runtime/wire.hh"

namespace ernn::nn
{

namespace
{

using runtime::detail::fnv1a64;
using runtime::detail::Reader;
using runtime::detail::Writer;

constexpr char kMagic[8] = {'E', 'R', 'N', 'N', 'T', 'R', 'S', 'T'};
constexpr std::uint32_t kFormatVersion = 1;

// magic + version + total bytes; the trailing checksum is 8 more.
constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t);
constexpr std::size_t kChecksumBytes = sizeof(std::uint64_t);

const char *
optKindName(TrainConfig::Opt opt)
{
    return opt == TrainConfig::Opt::Sgd ? "sgd" : "adam";
}

const char *
datapathName(TrainConfig::Datapath dp)
{
    return dp == TrainConfig::Datapath::Batched ? "batched" : "vector";
}

/**
 * Validate @p blob's framing and checksum and return a Reader
 * positioned past the header. Mirrors the stream checkpoint's
 * validation order (magic, version, declared size, checksum) so the
 * two formats fail the same way for the same class of damage.
 */
Reader
openTrainCheckpoint(const std::string &blob)
{
    const char *data = blob.data();
    const std::size_t size = blob.size();
    if (size < kHeaderBytes + kChecksumBytes)
        ernn_fatal("truncated training checkpoint: " << size
                   << " bytes is smaller than the "
                   << kHeaderBytes + kChecksumBytes
                   << "-byte header");
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
        ernn_fatal("not a training checkpoint (bad magic)");

    std::uint32_t version;
    std::memcpy(&version, data + sizeof kMagic, sizeof version);
    if (version != kFormatVersion)
        ernn_fatal("training checkpoint format version " << version
                   << " is not supported by this build (reads "
                   << kFormatVersion << ")");

    std::uint64_t declared;
    std::memcpy(&declared, data + sizeof kMagic + sizeof version,
                sizeof declared);
    if (declared != size) {
        if (size < declared)
            ernn_fatal("truncated training checkpoint: header declares "
                       << declared << " bytes, file has " << size);
        ernn_fatal("training checkpoint has " << size - declared
                   << " trailing bytes past the declared " << declared
                   << "-byte payload");
    }

    std::uint64_t stored;
    std::memcpy(&stored, data + size - kChecksumBytes, sizeof stored);
    const std::uint64_t actual = fnv1a64(data, size - kChecksumBytes);
    if (stored != actual)
        ernn_fatal("training checkpoint checksum mismatch (stored 0x"
                   << std::hex << stored << ", computed 0x" << actual
                   << std::dec << "): the file is corrupted");

    Reader r(data, size - kChecksumBytes, "training checkpoint");
    for (std::size_t i = 0; i < sizeof kMagic; ++i)
        r.u8("magic");
    r.u32("format version");
    r.u64("declared size");
    return r;
}

} // namespace

std::uint64_t
trainingFingerprint(const ParamRegistry &reg, const TrainConfig &cfg)
{
    // Canonical string encoding; any change to a field here is a
    // deliberate compatibility break.
    std::ostringstream os;
    os << "ernn-train-fingerprint-v1;";
    for (const ParamView &v : reg.views())
        os << v.name << ":" << v.size << ";";
    os << "opt=" << optKindName(cfg.optimizer)
       << ";batch=" << cfg.batchSize
       << ";lanes=" << cfg.groupLanes()
       << ";seed=" << cfg.shuffleSeed
       << ";datapath=" << datapathName(cfg.datapath)
       << ";clip=" << std::setprecision(17) << cfg.clipNorm;
    const std::string bytes = os.str();
    return fnv1a64(bytes.data(), bytes.size());
}

void
saveTrainState(const std::string &path, const TrainState &state,
               const ParamRegistry &reg, std::uint64_t fingerprint)
{
    Writer w;
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kFormatVersion);
    const std::size_t totalPatch = w.tell();
    w.u64(0); // total bytes, patched below
    w.u64(fingerprint);

    w.u64(state.nextEpoch);
    w.size(state.epochs.size());
    for (const EpochLog &e : state.epochs) {
        w.f64(e.trainLoss);
        w.f64(e.gradNorm);
        w.f64(e.wallMs);
        w.f64(e.framesPerSec);
        w.size(e.frames);
    }

    for (std::uint64_t s : state.shuffleRng.s)
        w.u64(s);
    w.u8(state.shuffleRng.hasSpare ? 1 : 0);
    w.f64(state.shuffleRng.spare);

    w.bytes(state.optimizerKind);
    w.u64(state.optimizer.steps);
    w.size(state.optimizer.slots.size());
    for (const std::vector<Real> &slot : state.optimizer.slots)
        w.reals(slot);

    w.size(reg.views().size());
    for (const ParamView &v : reg.views()) {
        w.bytes(v.name);
        w.reals(std::vector<Real>(v.data, v.data + v.size));
    }

    w.patchU64(totalPatch, w.tell() + kChecksumBytes);
    // The checksum covers every preceding byte, total-bytes included.
    std::string blob = w.take();
    const std::uint64_t checksum = fnv1a64(blob.data(), blob.size());
    blob.append(reinterpret_cast<const char *>(&checksum),
                sizeof checksum);

    // Write-then-rename so a crash mid-save never clobbers the last
    // good checkpoint with a torn file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        ernn_assert(out.good(),
                    "cannot open '" << tmp << "' for writing");
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        ernn_assert(out.good(), "short write to '" << tmp << "'");
    }
    ernn_assert(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename '" << tmp << "' to '" << path << "'");
}

bool
loadTrainState(const std::string &path, TrainState &state,
               ParamRegistry &reg, std::uint64_t fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false; // no checkpoint yet: fresh start
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string blob = buf.str();

    Reader r = openTrainCheckpoint(blob);

    const std::uint64_t stored = r.u64("training fingerprint");
    if (stored != fingerprint)
        ernn_fatal("training checkpoint '" << path << "' belongs to a "
                   "different model or training setup (fingerprint 0x"
                   << std::hex << stored << ", this run is 0x"
                   << fingerprint << std::dec << "): refusing to "
                   "restore");

    // Decode into a staging area first: a restore either succeeds
    // completely or aborts, never leaving the model half-overwritten.
    TrainState staged;
    staged.nextEpoch = r.u64("epoch cursor");
    const std::size_t epochs = r.size("epoch log count");
    staged.epochs.resize(epochs);
    for (EpochLog &e : staged.epochs) {
        e.trainLoss = r.f64("epoch train loss");
        e.gradNorm = r.f64("epoch grad norm");
        e.wallMs = r.f64("epoch wall ms");
        e.framesPerSec = r.f64("epoch frames/s");
        e.frames = r.size("epoch frame count");
    }

    for (std::uint64_t &s : staged.shuffleRng.s)
        s = r.u64("shuffle rng word");
    staged.shuffleRng.hasSpare = r.u8("shuffle rng spare flag") != 0;
    staged.shuffleRng.spare = r.f64("shuffle rng spare value");

    r.bytesInto(staged.optimizerKind, "optimizer kind");
    staged.optimizer.steps = r.u64("optimizer step counter");
    const std::size_t slots = r.size("optimizer slot count");
    staged.optimizer.slots.resize(slots);
    for (std::vector<Real> &slot : staged.optimizer.slots)
        r.realsInto(slot, "optimizer slot");

    const std::size_t viewCount = r.size("parameter view count");
    if (viewCount != reg.views().size())
        ernn_fatal("training checkpoint carries " << viewCount
                   << " parameter views, model has "
                   << reg.views().size());
    std::vector<std::vector<Real>> params(viewCount);
    for (std::size_t i = 0; i < viewCount; ++i) {
        std::string name;
        r.bytesInto(name, "parameter view name");
        const ParamView &v = reg.views()[i];
        if (name != v.name)
            ernn_fatal("training checkpoint view " << i << " is '"
                       << name << "', model expects '" << v.name
                       << "'");
        r.realsInto(params[i], "parameter values");
        if (params[i].size() != v.size)
            ernn_fatal("training checkpoint view '" << name
                       << "' carries " << params[i].size()
                       << " values, model expects " << v.size);
    }

    if (!r.done())
        ernn_fatal("training checkpoint has " << r.remainingBytes()
                   << " undecoded payload bytes: writer/reader "
                   "version bug");

    // Commit.
    for (std::size_t i = 0; i < viewCount; ++i)
        std::memcpy(reg.views()[i].data, params[i].data(),
                    params[i].size() * sizeof(Real));
    reg.notifyUpdated();
    state = std::move(staged);
    return true;
}

} // namespace ernn::nn
