/**
 * @file
 * Training checkpoint: everything needed to resume an interrupted
 * training run bit-identically to one that never stopped — model
 * parameters, optimizer moments + step counter, the shuffle RNG
 * state, the epoch cursor, and the per-epoch log so far.
 *
 * The on-disk format follows the runtime artifact/checkpoint idiom
 * (runtime/wire.hh): little-endian fixed-width fields framed by an
 * 8-byte magic, a format version, a declared total size, and a
 * trailing FNV-1a checksum. A fingerprint of the model architecture
 * and the arithmetic-relevant training configuration is embedded so
 * a checkpoint can never be restored into a run it does not match.
 */

#ifndef ERNN_NN_TRAIN_CHECKPOINT_HH
#define ERNN_NN_TRAIN_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "base/random.hh"
#include "nn/optimizer.hh"
#include "nn/param.hh"
#include "nn/trainer.hh"

namespace ernn::nn
{

/**
 * Mutable training progress carried by a checkpoint (parameters
 * travel separately, straight from/into the ParamRegistry).
 */
struct TrainState
{
    /** First epoch the resumed run still has to execute. */
    std::uint64_t nextEpoch = 0;

    /** Per-epoch log of the completed epochs. */
    std::vector<EpochLog> epochs;

    /** Shuffle RNG, captured after the last completed epoch. */
    RngState shuffleRng;

    /** Optimizer kind tag ("sgd" / "adam"), checked on restore. */
    std::string optimizerKind;

    /** Optimizer moments + step counter. */
    OptimizerState optimizer;
};

/**
 * Fingerprint of everything a checkpoint's bit-identical continuation
 * depends on: the registry layout (view names and sizes) and the
 * arithmetic-relevant training config (optimizer kind, batch size,
 * group lanes, shuffle seed, datapath, clip norm). The learning rate
 * and the thread count are excluded on purpose: threads never change
 * the arithmetic (groups reduce in fixed index order), and the
 * learning rate is an operator knob that may legitimately change
 * between restarts.
 */
std::uint64_t trainingFingerprint(const ParamRegistry &reg,
                                  const TrainConfig &cfg);

/**
 * Atomically rewrite @p path with the full training checkpoint:
 * @p state plus every parameter view in @p reg. Fatal on I/O errors.
 */
void saveTrainState(const std::string &path, const TrainState &state,
                    const ParamRegistry &reg,
                    std::uint64_t fingerprint);

/**
 * Restore a checkpoint written by saveTrainState().
 *
 * @return false when @p path does not exist (fresh start); true after
 *         a successful restore into @p state and @p reg (owners are
 *         notified so cached spectra refresh). Any malformation —
 *         bad magic/version/size/checksum, a fingerprint that does
 *         not match (checkpoint from a different model or training
 *         setup), or a view mismatch — is a named fatal, never a
 *         silent partial restore.
 */
bool loadTrainState(const std::string &path, TrainState &state,
                    ParamRegistry &reg, std::uint64_t fingerprint);

} // namespace ernn::nn

#endif // ERNN_NN_TRAIN_CHECKPOINT_HH
