#include "nn/trainer.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "base/logging.hh"
#include "nn/loss.hh"
#include "nn/train_checkpoint.hh"
#include "tensor/matrix.hh"

namespace ernn::nn
{

namespace
{

/**
 * Dataset indices of one gradient group, pooled longest-first so the
 * batch-major layers see non-increasing lane counts (the ragged tail
 * retires from the right, mirroring the serving runtime's pooling).
 * Zero-frame sequences are dropped: they still count toward the 1/B
 * batch average but contribute no frames or gradients.
 */
std::vector<std::size_t>
poolLanes(const SequenceDataset &data, const std::size_t *idx,
          std::size_t count)
{
    std::vector<std::size_t> lanes(idx, idx + count);
    std::stable_sort(lanes.begin(), lanes.end(),
                     [&data](std::size_t a, std::size_t b) {
                         return data[a].frames.size() >
                                data[b].frames.size();
                     });
    while (!lanes.empty() && data[lanes.back()].frames.empty())
        lanes.pop_back();
    return lanes;
}

/** Pack the pooled lanes into batch-major per-timestep matrices. */
BatchSequence
packInputs(const SequenceDataset &data,
           const std::vector<std::size_t> &lanes)
{
    BatchSequence xs;
    if (lanes.empty())
        return xs;
    const std::size_t total = data[lanes[0]].frames.size();
    xs.resize(total);
    for (std::size_t t = 0; t < total; ++t) {
        std::size_t width = 0;
        while (width < lanes.size() &&
               data[lanes[width]].frames.size() > t)
            ++width;
        const std::size_t dim = data[lanes[0]].frames[t].size();
        xs[t].reshape(dim, width);
        for (std::size_t l = 0; l < width; ++l) {
            const Vector &frame = data[lanes[l]].frames[t];
            for (std::size_t r = 0; r < dim; ++r)
                xs[t].at(r, l) = frame[r];
        }
    }
    return xs;
}

/** Column @p lane of the first @p frames timesteps, as a Sequence. */
Sequence
extractLane(const BatchSequence &ys, std::size_t lane,
            std::size_t frames)
{
    Sequence out(frames);
    for (std::size_t t = 0; t < frames; ++t) {
        const Matrix &m = ys[t];
        out[t].resize(m.rows());
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[t][r] = m.at(r, lane);
    }
    return out;
}

/** Per-sequence evaluation tallies, indexed by dataset position. */
struct SeqStats
{
    Real lossTimesFrames = 0.0;
    std::size_t correct = 0;
    std::size_t frames = 0;
};

/**
 * Forward-only batched evaluation of sequences idx[0..count) into
 * per-dataset-index slots. Each lane's loss is computed on its
 * extracted logit column, so it matches the solo forward bit for bit.
 */
void
evalGroup(StackedRnn &model, const SequenceDataset &data,
          const std::size_t *idx, std::size_t count,
          std::vector<SeqStats> &per)
{
    const std::vector<std::size_t> lanes = poolLanes(data, idx, count);
    if (lanes.empty())
        return;
    const BatchSequence xs = packInputs(data, lanes);
    const BatchSequence logits = model.forwardLogitsBatch(xs);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
        const SequenceExample &ex = data[lanes[l]];
        const Sequence laneLogits =
            extractLane(logits, l, ex.frames.size());
        const LossResult loss =
            softmaxCrossEntropy(laneLogits, ex.labels);
        SeqStats &s = per[lanes[l]];
        s.lossTimesFrames =
            loss.loss * static_cast<Real>(loss.frames);
        s.correct = loss.correct;
        s.frames = loss.frames;
    }
}

} // namespace

Trainer::Trainer(StackedRnn &model, const TrainConfig &cfg)
    : model_(model), cfg_(cfg), pool_(cfg.threads)
{
    if (cfg.optimizer == TrainConfig::Opt::Adam)
        opt_ = std::make_unique<Adam>(cfg.lr);
    else
        opt_ = std::make_unique<Sgd>(cfg.lr);
}

void
Trainer::ensureReplicas(std::size_t n)
{
    while (replicas_.size() < n)
        replicas_.push_back(model_.cloneArchitecture());
}

Trainer::GroupStats
Trainer::runGroup(StackedRnn &model, const SequenceDataset &data,
                  const std::size_t *idx, std::size_t count,
                  Real inv_batch)
{
    GroupStats stats;
    const std::vector<std::size_t> lanes = poolLanes(data, idx, count);
    if (lanes.empty())
        return stats;
    const BatchSequence xs = packInputs(data, lanes);
    const BatchSequence logits = model.forwardLogitsBatch(xs);

    BatchSequence dlogits(logits.size());
    for (std::size_t t = 0; t < logits.size(); ++t)
        dlogits[t].reshape(logits[t].rows(), logits[t].cols());
    for (std::size_t l = 0; l < lanes.size(); ++l) {
        const SequenceExample &ex = data[lanes[l]];
        const Sequence laneLogits =
            extractLane(logits, l, ex.frames.size());
        const LossResult loss =
            softmaxCrossEntropy(laneLogits, ex.labels);
        stats.loss += loss.loss;
        stats.frames += loss.frames;
        // The 1/B batch average is folded into the logit gradients
        // here, so no O(params) rescale pass runs after backward.
        for (std::size_t t = 0; t < ex.frames.size(); ++t) {
            const Vector &dl = loss.dlogits[t];
            for (std::size_t r = 0; r < dl.size(); ++r)
                dlogits[t].at(r, l) = inv_batch * dl[r];
        }
    }
    model.backwardFromLogitsBatch(dlogits);
    return stats;
}

TrainResult
Trainer::train(const SequenceDataset &data)
{
    ernn_assert(!data.empty(), "training on an empty dataset");
    ParamRegistry &reg = model_.params();
    Rng shuffle_rng(cfg_.shuffleSeed);
    const std::uint64_t fingerprint = trainingFingerprint(reg, cfg_);

    TrainResult result;
    std::size_t start_epoch = 0;
    if (cfg_.resume && !cfg_.checkpointPath.empty()) {
        TrainState st;
        if (loadTrainState(cfg_.checkpointPath, st, reg,
                           fingerprint)) {
            ernn_assert(st.optimizerKind == opt_->kindName(),
                        "training checkpoint optimizer is '"
                        << st.optimizerKind << "', this run uses '"
                        << opt_->kindName() << "'");
            opt_->importState(st.optimizer, reg);
            shuffle_rng.restoreState(st.shuffleRng);
            result.epochs = st.epochs;
            start_epoch = static_cast<std::size_t>(st.nextEpoch);
            if (cfg_.verbose)
                ernn_inform("resumed training at epoch "
                            << start_epoch + 1 << " from '"
                            << cfg_.checkpointPath << "'");
        }
    }

    std::vector<std::size_t> order(data.size());
    const std::size_t gl = cfg_.groupLanes();

    for (std::size_t epoch = start_epoch; epoch < cfg_.epochs;
         ++epoch) {
        const auto wall0 = std::chrono::steady_clock::now();
        // Each epoch's order is a pure function of (seed, epochs
        // completed): reset to identity before shuffling so a
        // resumed run replays the exact same permutation stream.
        std::iota(order.begin(), order.end(), 0);
        shuffle_rng.shuffle(order);

        Real epoch_loss = 0.0;
        Real last_norm = 0.0;
        std::size_t epoch_frames = 0;

        reg.zeroGrad();
        for (std::size_t start = 0; start < data.size();
             start += cfg_.batchSize) {
            const std::size_t b =
                std::min(cfg_.batchSize, data.size() - start);
            const Real inv_batch = 1.0 / static_cast<Real>(b);

            if (cfg_.datapath == TrainConfig::Datapath::Vector) {
                // The retained vector-at-a-time oracle.
                for (std::size_t i = 0; i < b; ++i) {
                    const SequenceExample &ex =
                        data[order[start + i]];
                    const Sequence logits =
                        model_.forwardLogits(ex.frames);
                    LossResult loss =
                        softmaxCrossEntropy(logits, ex.labels);
                    for (Vector &dl : loss.dlogits)
                        scaleInPlace(dl, inv_batch);
                    model_.backwardFromLogits(loss.dlogits);
                    epoch_loss += loss.loss;
                    epoch_frames += loss.frames;
                }
            } else {
                const std::size_t num_groups = (b + gl - 1) / gl;
                if (num_groups == 1) {
                    const GroupStats s =
                        runGroup(model_, data, order.data() + start,
                                 b, inv_batch);
                    epoch_loss += s.loss;
                    epoch_frames += s.frames;
                } else {
                    ensureReplicas(num_groups - 1);
                    for (std::size_t g = 1; g < num_groups; ++g) {
                        replicas_[g - 1].copyParamsFrom(model_);
                        replicas_[g - 1].params().zeroGrad();
                    }
                    std::vector<GroupStats> stats(num_groups);
                    auto task = [&](std::size_t gb, std::size_t ge) {
                        for (std::size_t g = gb; g < ge; ++g) {
                            StackedRnn &m =
                                g == 0 ? model_ : replicas_[g - 1];
                            const std::size_t off = g * gl;
                            stats[g] = runGroup(
                                m, data, order.data() + start + off,
                                std::min(gl, b - off), inv_batch);
                        }
                    };
                    pool_.parallelFor(num_groups, task);
                    // Reduce replica gradients into the master in
                    // ascending group order — fixed regardless of
                    // which thread ran which group, so the final
                    // weights are thread-count invariant.
                    for (std::size_t g = 1; g < num_groups; ++g) {
                        ParamRegistry &rep =
                            replicas_[g - 1].params();
                        for (std::size_t i = 0;
                             i < reg.views().size(); ++i) {
                            ParamView &dst = reg.views()[i];
                            const ParamView &src = rep.views()[i];
                            for (std::size_t k = 0; k < dst.size;
                                 ++k)
                                dst.grad[k] += src.grad[k];
                        }
                    }
                    for (std::size_t g = 0; g < num_groups; ++g) {
                        epoch_loss += stats[g].loss;
                        epoch_frames += stats[g].frames;
                    }
                }
            }

            if (hook_)
                hook_(reg);
            last_norm = clipGradNorm(reg, cfg_.clipNorm);
            opt_->step(reg);
            reg.zeroGrad();
        }

        EpochLog log;
        log.trainLoss = epoch_loss / static_cast<Real>(data.size());
        log.gradNorm = last_norm;
        log.frames = epoch_frames;
        const auto wall1 = std::chrono::steady_clock::now();
        log.wallMs = std::chrono::duration<double, std::milli>(
                         wall1 - wall0)
                         .count();
        log.framesPerSec =
            log.wallMs > 0.0
                ? static_cast<Real>(epoch_frames) /
                      (log.wallMs / 1000.0)
                : 0.0;
        result.epochs.push_back(log);
        if (cfg_.verbose) {
            ernn_inform("epoch " << epoch + 1 << "/" << cfg_.epochs
                        << " loss " << log.trainLoss << " ("
                        << log.framesPerSec << " frames/s)");
        }

        if (!cfg_.checkpointPath.empty()) {
            TrainState st;
            st.nextEpoch = epoch + 1;
            st.epochs = result.epochs;
            st.shuffleRng = shuffle_rng.saveState();
            st.optimizerKind = opt_->kindName();
            st.optimizer = opt_->exportState();
            saveTrainState(cfg_.checkpointPath, st, reg, fingerprint);
        }
    }
    return result;
}

EvalResult
Trainer::evaluate(StackedRnn &model, const SequenceDataset &data)
{
    EvalResult out;
    Real loss_sum = 0.0;
    std::size_t correct = 0;
    for (const auto &ex : data) {
        const Sequence logits = model.forwardLogits(ex.frames);
        const LossResult loss = softmaxCrossEntropy(logits, ex.labels);
        loss_sum += loss.loss * static_cast<Real>(loss.frames);
        correct += loss.correct;
        out.frames += loss.frames;
    }
    if (out.frames) {
        out.frameAccuracy = static_cast<Real>(correct) /
                            static_cast<Real>(out.frames);
        out.crossEntropy = loss_sum / static_cast<Real>(out.frames);
    }
    return out;
}

EvalResult
Trainer::evaluate(const SequenceDataset &data)
{
    std::vector<SeqStats> per(data.size());
    std::vector<std::size_t> ident(data.size());
    std::iota(ident.begin(), ident.end(), 0);

    const std::size_t gl = cfg_.groupLanes() ? cfg_.groupLanes() : 1;
    const std::size_t num_groups = (data.size() + gl - 1) / gl;
    // Strided part scheme: part p owns groups p, p + parts, ... on
    // its own replica, so `parts` replicas cover any group count.
    const std::size_t parts =
        std::max<std::size_t>(
            1, std::min(pool_.threads(), num_groups));
    if (parts > 1) {
        ensureReplicas(parts - 1);
        for (std::size_t p = 1; p < parts; ++p)
            replicas_[p - 1].copyParamsFrom(model_);
    }

    auto task = [&](std::size_t pb, std::size_t pe) {
        for (std::size_t p = pb; p < pe; ++p) {
            StackedRnn &m = p == 0 ? model_ : replicas_[p - 1];
            for (std::size_t g = p; g < num_groups; g += parts) {
                const std::size_t off = g * gl;
                evalGroup(m, data, ident.data() + off,
                          std::min(gl, data.size() - off), per);
            }
        }
    };
    pool_.parallelFor(parts, task);

    // Sum in dataset order: exactly the serial static evaluate.
    EvalResult out;
    Real loss_sum = 0.0;
    std::size_t correct = 0;
    for (const SeqStats &s : per) {
        loss_sum += s.lossTimesFrames;
        correct += s.correct;
        out.frames += s.frames;
    }
    if (out.frames) {
        out.frameAccuracy = static_cast<Real>(correct) /
                            static_cast<Real>(out.frames);
        out.crossEntropy = loss_sum / static_cast<Real>(out.frames);
    }
    return out;
}

} // namespace ernn::nn
