#include "nn/trainer.hh"

#include <numeric>

#include "base/logging.hh"
#include "nn/loss.hh"

namespace ernn::nn
{

Trainer::Trainer(StackedRnn &model, const TrainConfig &cfg)
    : model_(model), cfg_(cfg)
{
    if (cfg.optimizer == TrainConfig::Opt::Adam)
        opt_ = std::make_unique<Adam>(cfg.lr);
    else
        opt_ = std::make_unique<Sgd>(cfg.lr);
}

TrainResult
Trainer::train(const SequenceDataset &data)
{
    ernn_assert(!data.empty(), "training on an empty dataset");
    ParamRegistry &reg = model_.params();
    Rng shuffle_rng(cfg_.shuffleSeed);

    TrainResult result;
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        shuffle_rng.shuffle(order);
        Real epoch_loss = 0.0;
        Real last_norm = 0.0;
        std::size_t seqs = 0;
        std::size_t in_batch = 0;

        reg.zeroGrad();
        for (std::size_t idx : order) {
            const SequenceExample &ex = data[idx];
            const Sequence logits = model_.forwardLogits(ex.frames);
            const LossResult loss =
                softmaxCrossEntropy(logits, ex.labels);
            model_.backwardFromLogits(loss.dlogits);
            epoch_loss += loss.loss;
            ++seqs;
            ++in_batch;

            if (in_batch == cfg_.batchSize || seqs == data.size()) {
                // Average the batch gradient.
                const Real inv =
                    1.0 / static_cast<Real>(in_batch);
                for (auto &p : reg.views())
                    for (std::size_t k = 0; k < p.size; ++k)
                        p.grad[k] *= inv;
                if (hook_)
                    hook_(reg);
                last_norm = clipGradNorm(reg, cfg_.clipNorm);
                opt_->step(reg);
                reg.zeroGrad();
                in_batch = 0;
            }
        }

        EpochLog log;
        log.trainLoss = epoch_loss / static_cast<Real>(seqs);
        log.gradNorm = last_norm;
        result.epochs.push_back(log);
        if (cfg_.verbose) {
            ernn_inform("epoch " << epoch + 1 << "/" << cfg_.epochs
                        << " loss " << log.trainLoss);
        }
    }
    return result;
}

EvalResult
Trainer::evaluate(StackedRnn &model, const SequenceDataset &data)
{
    EvalResult out;
    Real loss_sum = 0.0;
    std::size_t correct = 0;
    for (const auto &ex : data) {
        const Sequence logits = model.forwardLogits(ex.frames);
        const LossResult loss = softmaxCrossEntropy(logits, ex.labels);
        loss_sum += loss.loss * static_cast<Real>(loss.frames);
        correct += loss.correct;
        out.frames += loss.frames;
    }
    if (out.frames) {
        out.frameAccuracy = static_cast<Real>(correct) /
                            static_cast<Real>(out.frames);
        out.crossEntropy = loss_sum / static_cast<Real>(out.frames);
    }
    return out;
}

} // namespace ernn::nn
