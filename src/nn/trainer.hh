/**
 * @file
 * Sequence trainer: mini-batch BPTT with gradient clipping over a
 * dataset of labeled frame sequences, plus evaluation helpers. The
 * ADMM trainer builds on this via the gradient hook (the quadratic
 * regularizer of Eqn. 5 is injected between backward and the
 * optimizer step).
 *
 * Two datapaths share the loop. The batch-major path pools utterance
 * lanes longest-first and runs one GEMM-shaped call per weight per
 * timestep (mirroring the serving runtime's lane pooling), splitting
 * each optimizer batch into fixed gradient groups that backprop on
 * private model replicas and reduce in group-index order — so a
 * given seed produces byte-identical weights at any thread count.
 * The vector-at-a-time path is retained as the parity oracle.
 */

#ifndef ERNN_NN_TRAINER_HH
#define ERNN_NN_TRAINER_HH

#include <functional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "nn/optimizer.hh"
#include "nn/rnn.hh"
#include "runtime/thread_pool.hh"

namespace ernn::nn
{

/** One labeled utterance: per-frame features and phone labels. */
struct SequenceExample
{
    Sequence frames;
    std::vector<int> labels;
};

using SequenceDataset = std::vector<SequenceExample>;

/** Trainer configuration. */
struct TrainConfig
{
    std::size_t epochs = 5;
    Real lr = 1e-2;
    Real clipNorm = 5.0;
    std::size_t batchSize = 4; //!< sequences per optimizer step
    std::uint64_t shuffleSeed = 1;
    enum class Opt { Sgd, Adam };
    Opt optimizer = Opt::Adam;
    bool verbose = false;

    /** Which datapath runs forward/backward. */
    enum class Datapath
    {
        Batched, //!< batch-major pooled lanes, GEMM-shaped (default)
        Vector,  //!< one utterance per pass — the parity oracle
    };
    Datapath datapath = Datapath::Batched;

    /** Execution lanes for gradient groups + parallel evaluation. */
    std::size_t threads = 1;

    /**
     * Utterance lanes pooled per gradient group (0 = the whole
     * optimizer batch in one group). Together with batchSize this
     * fixes the gradient summation order — changing it moves final
     * weights at the last bit; changing threads never does, because
     * groups are reduced in fixed index order regardless of which
     * thread ran them.
     */
    std::size_t batchLanes = 0;

    /** Checkpoint file rewritten after every epoch ("" = disabled). */
    std::string checkpointPath;

    /** Resume from checkpointPath when the file exists. */
    bool resume = false;

    /** Effective lanes per gradient group. */
    std::size_t groupLanes() const
    {
        const std::size_t lanes = batchLanes ? batchLanes : batchSize;
        return lanes < batchSize ? lanes : batchSize;
    }
};

/** Per-epoch training log entry. */
struct EpochLog
{
    Real trainLoss = 0.0;
    Real gradNorm = 0.0;
    Real wallMs = 0.0;       //!< epoch wall-clock time
    Real framesPerSec = 0.0; //!< training throughput
    std::size_t frames = 0;  //!< frames processed this epoch
};

/** Aggregate training result. */
struct TrainResult
{
    std::vector<EpochLog> epochs;
    Real finalLoss() const
    {
        return epochs.empty() ? 0.0 : epochs.back().trainLoss;
    }
};

/** Evaluation metrics on a dataset. */
struct EvalResult
{
    Real frameAccuracy = 0.0;
    Real crossEntropy = 0.0;
    std::size_t frames = 0;
};

class Trainer
{
  public:
    /** Called after gradients are accumulated, before the step. */
    using GradHook = std::function<void(ParamRegistry &)>;

    Trainer(StackedRnn &model, const TrainConfig &cfg);

    /** Install an ADMM-style gradient hook (may be empty). */
    void setGradHook(GradHook hook) { hook_ = std::move(hook); }

    /** Run the configured number of epochs (resuming if configured). */
    TrainResult train(const SequenceDataset &data);

    /** Forward-only evaluation, serial per-utterance (the oracle). */
    static EvalResult evaluate(StackedRnn &model,
                               const SequenceDataset &data);

    /**
     * Forward-only evaluation over the batched datapath, parallel
     * across the pool. Per-sequence results are stored by dataset
     * index and summed in dataset order, so the result is exactly
     * equal — every bit — to the static serial form.
     */
    EvalResult evaluate(const SequenceDataset &data);

  private:
    /** Per-group loss/frame tallies (reduced in group order). */
    struct GroupStats
    {
        Real loss = 0.0;
        std::size_t frames = 0;
    };

    void ensureReplicas(std::size_t n);
    GroupStats runGroup(StackedRnn &model, const SequenceDataset &data,
                        const std::size_t *idx, std::size_t count,
                        Real inv_batch);

    StackedRnn &model_;
    TrainConfig cfg_;
    std::unique_ptr<Optimizer> opt_;
    GradHook hook_;
    runtime::ThreadPool pool_;

    /**
     * Cloned-architecture replicas for gradient groups 1.. (group 0
     * runs on the master model). Each group owns its replica for the
     * whole parallel region, so ranges race on nothing; replicas are
     * param-synced from the master at every batch.
     */
    std::vector<StackedRnn> replicas_;
};

} // namespace ernn::nn

#endif // ERNN_NN_TRAINER_HH
