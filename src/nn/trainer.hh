/**
 * @file
 * Sequence trainer: mini-batch BPTT with gradient clipping over a
 * dataset of labeled frame sequences, plus evaluation helpers. The
 * ADMM trainer builds on this via the gradient hook (the quadratic
 * regularizer of Eqn. 5 is injected between backward and the
 * optimizer step).
 */

#ifndef ERNN_NN_TRAINER_HH
#define ERNN_NN_TRAINER_HH

#include <functional>
#include <vector>

#include "base/random.hh"
#include "nn/optimizer.hh"
#include "nn/rnn.hh"

namespace ernn::nn
{

/** One labeled utterance: per-frame features and phone labels. */
struct SequenceExample
{
    Sequence frames;
    std::vector<int> labels;
};

using SequenceDataset = std::vector<SequenceExample>;

/** Trainer configuration. */
struct TrainConfig
{
    std::size_t epochs = 5;
    Real lr = 1e-2;
    Real clipNorm = 5.0;
    std::size_t batchSize = 4; //!< sequences per optimizer step
    std::uint64_t shuffleSeed = 1;
    enum class Opt { Sgd, Adam };
    Opt optimizer = Opt::Adam;
    bool verbose = false;
};

/** Per-epoch training log entry. */
struct EpochLog
{
    Real trainLoss = 0.0;
    Real gradNorm = 0.0;
};

/** Aggregate training result. */
struct TrainResult
{
    std::vector<EpochLog> epochs;
    Real finalLoss() const
    {
        return epochs.empty() ? 0.0 : epochs.back().trainLoss;
    }
};

/** Evaluation metrics on a dataset. */
struct EvalResult
{
    Real frameAccuracy = 0.0;
    Real crossEntropy = 0.0;
    std::size_t frames = 0;
};

class Trainer
{
  public:
    /** Called after gradients are accumulated, before the step. */
    using GradHook = std::function<void(ParamRegistry &)>;

    Trainer(StackedRnn &model, const TrainConfig &cfg);

    /** Install an ADMM-style gradient hook (may be empty). */
    void setGradHook(GradHook hook) { hook_ = std::move(hook); }

    /** Run the configured number of epochs. */
    TrainResult train(const SequenceDataset &data);

    /** Forward-only evaluation. */
    static EvalResult evaluate(StackedRnn &model,
                               const SequenceDataset &data);

  private:
    StackedRnn &model_;
    TrainConfig cfg_;
    std::unique_ptr<Optimizer> opt_;
    GradHook hook_;
};

} // namespace ernn::nn

#endif // ERNN_NN_TRAINER_HH
