#include "prune/magnitude_pruner.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "nn/gru.hh"
#include "nn/lstm.hh"

namespace ernn::prune
{

MagnitudePruner::MagnitudePruner(nn::StackedRnn &model,
                                 const PruneConfig &cfg)
    : model_(model), cfg_(cfg)
{
    ernn_assert(cfg.sparsity > 0.0 && cfg.sparsity < 1.0,
                "sparsity must be in (0, 1)");
    ernn_assert(cfg.iterations >= 1, "need at least one iteration");
}

void
MagnitudePruner::target(nn::LinearOp &op)
{
    ernn_assert(op.denseWeight() != nullptr,
                "magnitude pruning operates on dense weights");
    Target t;
    t.op = &op;
    t.mask.assign(op.denseWeight()->size(), true);
    targets_.push_back(std::move(t));
}

void
MagnitudePruner::pruneToSparsity(Real sparsity)
{
    // Global threshold across all targeted weights (ESE prunes by
    // magnitude network-wide).
    std::vector<Real> mags;
    for (const auto &t : targets_) {
        const auto &raw = t.op->denseWeight()->raw();
        for (Real w : raw)
            mags.push_back(std::abs(w));
    }
    ernn_assert(!mags.empty(), "no weights targeted");
    const auto k = static_cast<std::size_t>(
        sparsity * static_cast<Real>(mags.size()));
    if (k == 0)
        return;
    std::nth_element(mags.begin(), mags.begin() +
                     static_cast<long>(k - 1), mags.end());
    const Real threshold = mags[k - 1];

    for (auto &t : targets_) {
        const auto &raw = t.op->denseWeight()->raw();
        for (std::size_t i = 0; i < raw.size(); ++i)
            t.mask[i] = std::abs(raw[i]) > threshold;
    }
    applyMasks();
}

void
MagnitudePruner::applyMasks()
{
    for (auto &t : targets_) {
        auto &raw = t.op->denseWeight()->raw();
        for (std::size_t i = 0; i < raw.size(); ++i)
            if (!t.mask[i])
                raw[i] = 0.0;
    }
}

void
MagnitudePruner::gradHook()
{
    // Masked weights receive no gradient, so the optimizer (with
    // zero-initialized moments) leaves them at exactly zero.
    for (auto &t : targets_) {
        auto &grad = t.op->denseGrad()->raw();
        for (std::size_t i = 0; i < grad.size(); ++i)
            if (!t.mask[i])
                grad[i] = 0.0;
    }
}

PruneResult
MagnitudePruner::run(const nn::SequenceDataset &data)
{
    ernn_assert(!targets_.empty(), "no pruning targets registered");

    nn::TrainConfig tc = cfg_.train;
    tc.epochs = cfg_.epochsPerIteration;
    nn::Trainer trainer(model_, tc);
    trainer.setGradHook([this](nn::ParamRegistry &) { gradHook(); });

    PruneResult result;
    for (std::size_t k = 1; k <= cfg_.iterations; ++k) {
        // Gradual schedule: ramp the sparsity toward the target.
        const Real step_sparsity = cfg_.sparsity *
            static_cast<Real>(k) /
            static_cast<Real>(cfg_.iterations);
        pruneToSparsity(step_sparsity);
        const nn::TrainResult tr = trainer.train(data);
        applyMasks(); // guard against any residual drift

        PruneIterationLog log;
        log.iteration = k - 1;
        log.targetSparsity = step_sparsity;
        log.trainLoss = tr.finalLoss();
        result.log.push_back(log);
        if (cfg_.verbose) {
            ernn_inform("prune iter " << k << " sparsity "
                        << step_sparsity << " loss "
                        << log.trainLoss);
        }
    }
    result.achievedSparsity = sparsity();
    return result;
}

Real
MagnitudePruner::sparsity() const
{
    std::size_t zeros = 0, total = 0;
    for (const auto &t : targets_) {
        const auto &raw = t.op->denseWeight()->raw();
        for (Real w : raw) {
            zeros += w == 0.0;
            ++total;
        }
    }
    return total ? static_cast<Real>(zeros) /
                       static_cast<Real>(total) : 0.0;
}

std::size_t
MagnitudePruner::nonzeroCount() const
{
    std::size_t nnz = 0;
    for (const auto &t : targets_) {
        const auto &raw = t.op->denseWeight()->raw();
        for (Real w : raw)
            nnz += w != 0.0;
    }
    return nnz;
}

void
targetAllDense(MagnitudePruner &pruner, nn::StackedRnn &model)
{
    for (std::size_t l = 0; l < model.numLayers(); ++l) {
        nn::RnnLayer &layer = model.layer(l);
        if (auto *lstm = dynamic_cast<nn::LstmLayer *>(&layer)) {
            for (nn::LinearOp *op :
                 {&lstm->wix(), &lstm->wfx(), &lstm->wcx(),
                  &lstm->wox(), &lstm->wir(), &lstm->wfr(),
                  &lstm->wcr(), &lstm->wor()})
                pruner.target(*op);
            if (lstm->wym())
                pruner.target(*lstm->wym());
        } else if (auto *gru = dynamic_cast<nn::GruLayer *>(&layer)) {
            for (nn::LinearOp *op :
                 {&gru->wzx(), &gru->wrx(), &gru->wcx(), &gru->wzc(),
                  &gru->wrc(), &gru->wcc()})
                pruner.target(*op);
        } else {
            ernn_panic("unknown layer kind");
        }
    }
}

} // namespace ernn::prune
