/**
 * @file
 * ESE-style magnitude pruning (Han et al.) — the compression
 * baseline the paper argues against (Sec. I and IV): zero the
 * smallest weights, retrain with the sparsity mask fixed, repeat.
 *
 * The resulting network is unstructured: every surviving weight
 * needs an index, so the *effective* storage is ~2x the nonzero
 * count (the paper's "4-6x when indices are accounted for" against
 * a 9x raw reduction), and the irregularity is what costs ESE its
 * hardware efficiency in Table III.
 */

#ifndef ERNN_PRUNE_MAGNITUDE_PRUNER_HH
#define ERNN_PRUNE_MAGNITUDE_PRUNER_HH

#include <vector>

#include "nn/model_builder.hh"
#include "nn/trainer.hh"

namespace ernn::prune
{

/** Pruning schedule configuration. */
struct PruneConfig
{
    /** Final fraction of weights forced to zero. */
    Real sparsity = 0.9;

    /** Prune -> retrain rounds; sparsity ramps linearly across
     *  rounds (gradual pruning). */
    std::size_t iterations = 3;
    std::size_t epochsPerIteration = 2;

    nn::TrainConfig train;
    bool verbose = false;
};

/** Per-iteration record. */
struct PruneIterationLog
{
    std::size_t iteration = 0;
    Real targetSparsity = 0.0;
    Real trainLoss = 0.0;
};

/** Pruning outcome. */
struct PruneResult
{
    Real achievedSparsity = 0.0;
    std::vector<PruneIterationLog> log;
};

class MagnitudePruner
{
  public:
    MagnitudePruner(nn::StackedRnn &model, const PruneConfig &cfg);

    /** Mark a dense weight matrix for pruning. */
    void target(nn::LinearOp &op);

    /** Number of targeted matrices. */
    std::size_t targetCount() const { return targets_.size(); }

    /** Run the gradual prune -> retrain schedule. */
    PruneResult run(const nn::SequenceDataset &data);

    /** Fraction of zeros across all targeted weights. */
    Real sparsity() const;

    /** Nonzero weights across targets. */
    std::size_t nonzeroCount() const;

    /**
     * Effective stored parameters: one index per surviving weight
     * (ESE's storage model), i.e. 2 * nnz.
     */
    std::size_t effectiveParams() const { return 2 * nonzeroCount(); }

  private:
    struct Target
    {
        nn::LinearOp *op;
        std::vector<bool> mask; //!< true = weight survives
    };

    void applyMasks();
    void pruneToSparsity(Real sparsity);
    void gradHook();

    nn::StackedRnn &model_;
    PruneConfig cfg_;
    std::vector<Target> targets_;
};

/** Target every dense weight matrix of the model's RNN layers. */
void targetAllDense(MagnitudePruner &pruner, nn::StackedRnn &model);

} // namespace ernn::prune

#endif // ERNN_PRUNE_MAGNITUDE_PRUNER_HH
