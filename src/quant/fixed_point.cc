#include "quant/fixed_point.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ernn::quant
{

Real
FixedPointFormat::step() const
{
    return std::ldexp(1.0, -fracBits);
}

Real
FixedPointFormat::maxVal() const
{
    return std::ldexp(1.0, totalBits - 1 - fracBits) - step();
}

Real
FixedPointFormat::minVal() const
{
    return -std::ldexp(1.0, totalBits - 1 - fracBits);
}

Real
FixedPointFormat::quantize(Real x) const
{
    const Real s = step();
    const Real q = std::nearbyint(x / s) * s;
    return std::clamp(q, minVal(), maxVal());
}

std::int64_t
FixedPointFormat::maxQ() const
{
    return (std::int64_t{1} << (totalBits - 1)) - 1;
}

std::int64_t
FixedPointFormat::minQ() const
{
    return -(std::int64_t{1} << (totalBits - 1));
}

std::int64_t
FixedPointFormat::toQ(Real x) const
{
    return std::llrint(std::ldexp(x, fracBits));
}

Real
FixedPointFormat::fromQ(std::int64_t q) const
{
    return std::ldexp(static_cast<Real>(q), -fracBits);
}

std::int64_t
shiftRoundHalfEven(std::int64_t acc, int shift)
{
    ernn_assert(shift >= 0 && shift <= 62,
                "shiftRoundHalfEven: shift " << shift
                << " outside [0, 62]");
    if (shift == 0)
        return acc;
    const std::int64_t unit = std::int64_t{1} << shift;
    const std::int64_t floor = acc >> shift; // arithmetic: floor
    // Remainder in [0, 2^shift); multiplication, not floor << shift,
    // because left-shifting a negative value is UB until C++20.
    const std::int64_t rem = acc - floor * unit;
    const std::int64_t half = unit >> 1;
    if (rem > half)
        return floor + 1;
    if (rem < half)
        return floor;
    return floor + (floor & 1); // exact tie: round to even
}

std::int64_t
FixedPointFormat::requantize(std::int64_t acc, int shift) const
{
    return std::clamp(shiftRoundHalfEven(acc, shift), minQ(), maxQ());
}

std::string
FixedPointFormat::name() const
{
    return "Q" + std::to_string(totalBits - 1 - fracBits) + "." +
           std::to_string(fracBits);
}

FixedPointFormat
chooseClampFormat(int total_bits, Real bound)
{
    ernn_assert(total_bits >= 2 && total_bits <= 32,
                "unsupported bit width " << total_bits);
    // Integer bits for the smallest capacity 2^k >= bound (sign bit
    // excluded).
    int int_bits = 0;
    Real capacity = 1.0;
    while (capacity < bound && int_bits < total_bits - 1) {
        capacity *= 2.0;
        ++int_bits;
    }
    FixedPointFormat fmt;
    fmt.totalBits = total_bits;
    fmt.fracBits = total_bits - 1 - int_bits;
    return fmt;
}

FixedPointFormat
chooseFormat(int total_bits, Real max_abs)
{
    FixedPointFormat fmt = chooseClampFormat(total_bits, max_abs);
    // The largest representable value is capacity - step, so a
    // max_abs exactly at a power of two (capacity == max_abs) still
    // clips; give it one more integer bit when one is available
    // (fracBits > 0 <=> the capacity search stopped short of the
    // width limit).
    if (fmt.maxVal() < max_abs && fmt.fracBits > 0)
        --fmt.fracBits;
    return fmt;
}

Real
quantizeInPlace(std::vector<Real> &buf, const FixedPointFormat &fmt)
{
    Real sq = 0.0;
    for (auto &v : buf) {
        const Real q = fmt.quantize(v);
        const Real e = v - q;
        sq += e * e;
        v = q;
    }
    return buf.empty() ?
        0.0 : std::sqrt(sq / static_cast<Real>(buf.size()));
}

FixedPointFormat
quantizeWithRangeAnalysis(std::vector<Real> &buf, int bits)
{
    Real max_abs = 0.0;
    for (Real v : buf)
        max_abs = std::max(max_abs, std::abs(v));
    const FixedPointFormat fmt = chooseFormat(bits, max_abs);
    quantizeInPlace(buf, fmt);
    return fmt;
}

Real
QuantReport::worstRmsError() const
{
    Real worst = 0.0;
    for (const auto &t : tensors)
        worst = std::max(worst, t.rmsError);
    return worst;
}

Real
QuantReport::totalBytes() const
{
    std::size_t params = 0;
    for (const auto &t : tensors)
        params += t.count;
    return static_cast<Real>(params) * static_cast<Real>(bits) / 8.0;
}

QuantReport
quantizeParams(nn::ParamRegistry &reg, int bits)
{
    QuantReport report;
    report.bits = bits;
    for (auto &view : reg.views()) {
        Real max_abs = 0.0;
        for (std::size_t k = 0; k < view.size; ++k)
            max_abs = std::max(max_abs, std::abs(view.data[k]));

        const FixedPointFormat fmt = chooseFormat(bits, max_abs);
        Real sq = 0.0;
        for (std::size_t k = 0; k < view.size; ++k) {
            const Real q = fmt.quantize(view.data[k]);
            const Real e = view.data[k] - q;
            sq += e * e;
            view.data[k] = q;
        }
        if (view.onUpdate)
            view.onUpdate();

        TensorQuantReport t;
        t.name = view.name;
        t.format = fmt;
        t.maxAbs = max_abs;
        t.count = view.size;
        t.rmsError = view.size ?
            std::sqrt(sq / static_cast<Real>(view.size)) : 0.0;
        report.tensors.push_back(std::move(t));
    }
    return report;
}

QuantReport
quantizeDataset(nn::SequenceDataset &data, int bits)
{
    Real max_abs = 0.0;
    std::size_t count = 0;
    for (const auto &ex : data)
        for (const auto &f : ex.frames)
            for (Real v : f) {
                max_abs = std::max(max_abs, std::abs(v));
                ++count;
            }

    const FixedPointFormat fmt = chooseFormat(bits, max_abs);
    Real sq = 0.0;
    for (auto &ex : data) {
        for (auto &f : ex.frames) {
            for (auto &v : f) {
                const Real q = fmt.quantize(v);
                sq += (v - q) * (v - q);
                v = q;
            }
        }
    }

    QuantReport report;
    report.bits = bits;
    TensorQuantReport t;
    t.name = "features";
    t.format = fmt;
    t.maxAbs = max_abs;
    t.count = count;
    t.rmsError = count ?
        std::sqrt(sq / static_cast<Real>(count)) : 0.0;
    report.tensors.push_back(std::move(t));
    return report;
}

BitSearchResult
selectWeightBits(const std::function<Real(int)> &degradation_of,
                 const std::vector<int> &candidates,
                 Real max_degradation)
{
    ernn_assert(!candidates.empty(), "no candidate bit widths");
    BitSearchResult out;
    out.bits = candidates.back();
    bool chosen = false;
    for (int bits : candidates) {
        const Real deg = degradation_of(bits);
        out.sweep.emplace_back(bits, deg);
        if (!chosen && deg <= max_degradation) {
            out.bits = bits;
            out.degradation = deg;
            chosen = true;
        }
    }
    if (!chosen)
        out.degradation = out.sweep.back().second;
    return out;
}

} // namespace ernn::quant
