/**
 * @file
 * Fixed-point quantization (Sec. VII-D of the paper).
 *
 * E-RNN replaces floating point with fixed-point arithmetic; the
 * number of fractional bits per tensor is chosen from the observed
 * numerical range ("we first analyze the numerical range of inputs
 * and trained weights ... then initialize the integer and fractional
 * part"), which is exactly what chooseFormat() does. Each tensor
 * (layer) carries its own static scaling — its format — matching the
 * paper's per-layer static scaling factor.
 */

#ifndef ERNN_QUANT_FIXED_POINT_HH
#define ERNN_QUANT_FIXED_POINT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "nn/param.hh"
#include "nn/trainer.hh"

namespace ernn::quant
{

/** A signed fixed-point format: totalBits with fracBits fraction. */
struct FixedPointFormat
{
    int totalBits = 12;
    int fracBits = 8;

    /** Quantization step 2^-fracBits. */
    Real step() const;

    /** Largest representable value. */
    Real maxVal() const;

    /** Smallest (most negative) representable value. */
    Real minVal() const;

    /** Round-to-nearest with saturation. */
    Real quantize(Real x) const;

    /// @{ Integer-code view of the grid: a value v on the grid is the
    /// code q = v * 2^fracBits, a totalBits-wide two's-complement
    /// integer in [minQ(), maxQ()]. This is the representation the
    /// native int16 datapath computes in.
    std::int64_t maxQ() const; //!< code of maxVal()
    std::int64_t minQ() const; //!< code of minVal()

    /** Code of an *on-grid, in-range* value (exact; the inverse of
     *  fromQ). Off-grid inputs are rounded to nearest-even. */
    std::int64_t toQ(Real x) const;

    /** Value of a code: q * 2^-fracBits (exact). */
    Real fromQ(std::int64_t q) const;
    /// @}

    /**
     * Scale an integer accumulator onto this grid: round acc * 2^-shift
     * to the nearest integer code (ties to even, matching the default
     * FP rounding nearbyint() uses) and saturate to [minQ, maxQ].
     * With acc = sum of weight-code * value-code products and
     * shift = the weight format's fracBits, this is bit-identical to
     * quantize() applied to the f64 matvec result.
     */
    std::int64_t requantize(std::int64_t acc, int shift) const;

    /** e.g. "Q3.8" (integer.fraction, excluding the sign bit). */
    std::string name() const;
};

/**
 * acc / 2^shift rounded to the nearest integer, ties to even — the
 * shift-based requantization step of the integer datapath, equal to
 * nearbyint(ldexp(acc, -shift)) for every int64 that double represents
 * exactly. shift must be in [0, 62].
 */
std::int64_t shiftRoundHalfEven(std::int64_t acc, int shift);

/**
 * Choose the fractional bit count that covers [-maxAbs, maxAbs]
 * without saturation — the per-tensor static scaling factor. The
 * returned format satisfies maxVal() >= max_abs whenever any format
 * of this width can (in particular at max_abs exactly a power of
 * two, where the naive integer-bit count would clip to 2^k - step).
 * Use for *observed* ranges (trained weights, measured features),
 * where clipping a legitimate extreme value is an error.
 */
FixedPointFormat chooseFormat(int total_bits, Real max_abs);

/**
 * Format for a *clamp bound*: the grid [-2^k, 2^k) with the smallest
 * capacity 2^k >= bound. Unlike chooseFormat, the bound itself need
 * not be representable (maxVal() may be bound - step) — saturating
 * at the bound is the intended behavior, so no fraction bit is spent
 * on covering it. This is the value grid of the fixed-point datapath
 * (bound = CompileOptions::activationRange): pre-activations at the
 * bound are deep in sigmoid/tanh saturation, and the kept fraction
 * bit halves the quantization step of every intermediate value.
 */
FixedPointFormat chooseClampFormat(int total_bits, Real bound);

/** Quantize a buffer in place; @return the RMS rounding error. */
Real quantizeInPlace(std::vector<Real> &buf,
                     const FixedPointFormat &fmt);

/**
 * The per-tensor quantization recipe used on every parameter view:
 * range analysis -> chooseFormat -> round-to-nearest in place.
 * @return the chosen format. Single source of truth for the rounding
 * the runtime FixedPoint backend must reproduce bit-exactly.
 */
FixedPointFormat quantizeWithRangeAnalysis(std::vector<Real> &buf,
                                           int bits);

/** Per-tensor quantization record. */
struct TensorQuantReport
{
    std::string name;
    FixedPointFormat format;
    Real maxAbs = 0.0;
    Real rmsError = 0.0;
    std::size_t count = 0;
};

/** Whole-model quantization record. */
struct QuantReport
{
    int bits = 0;
    std::vector<TensorQuantReport> tensors;

    Real worstRmsError() const;
    Real totalBytes() const; //!< storage at `bits` per parameter
};

/**
 * Quantize every parameter view of a model in place with per-view
 * range analysis (the paper's 12-bit weight quantization).
 */
QuantReport quantizeParams(nn::ParamRegistry &reg, int bits);

/** Quantize every feature frame of a dataset in place. */
QuantReport quantizeDataset(nn::SequenceDataset &data, int bits);

/** Result of the Phase II bit-width search. */
struct BitSearchResult
{
    int bits = 0;             //!< chosen width
    Real degradation = 0.0;   //!< metric at the chosen width
    std::vector<std::pair<int, Real>> sweep; //!< all evaluated pairs
};

/**
 * Smallest bit width whose accuracy degradation stays within budget.
 *
 * @param degradation_of  callback evaluating the degradation at a
 *                        given bit width (e.g. PER delta)
 * @param candidates      widths to try, ascending
 * @param max_degradation acceptance threshold
 */
BitSearchResult selectWeightBits(
    const std::function<Real(int)> &degradation_of,
    const std::vector<int> &candidates, Real max_degradation);

} // namespace ernn::quant

#endif // ERNN_QUANT_FIXED_POINT_HH
