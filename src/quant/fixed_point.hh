/**
 * @file
 * Fixed-point quantization (Sec. VII-D of the paper).
 *
 * E-RNN replaces floating point with fixed-point arithmetic; the
 * number of fractional bits per tensor is chosen from the observed
 * numerical range ("we first analyze the numerical range of inputs
 * and trained weights ... then initialize the integer and fractional
 * part"), which is exactly what chooseFormat() does. Each tensor
 * (layer) carries its own static scaling — its format — matching the
 * paper's per-layer static scaling factor.
 */

#ifndef ERNN_QUANT_FIXED_POINT_HH
#define ERNN_QUANT_FIXED_POINT_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "nn/param.hh"
#include "nn/trainer.hh"

namespace ernn::quant
{

/** A signed fixed-point format: totalBits with fracBits fraction. */
struct FixedPointFormat
{
    int totalBits = 12;
    int fracBits = 8;

    /** Quantization step 2^-fracBits. */
    Real step() const;

    /** Largest representable value. */
    Real maxVal() const;

    /** Smallest (most negative) representable value. */
    Real minVal() const;

    /** Round-to-nearest with saturation. */
    Real quantize(Real x) const;

    /** e.g. "Q3.8" (integer.fraction, excluding the sign bit). */
    std::string name() const;
};

/**
 * Choose the fractional bit count that covers [-maxAbs, maxAbs]
 * without saturation — the per-tensor static scaling factor.
 */
FixedPointFormat chooseFormat(int total_bits, Real max_abs);

/** Quantize a buffer in place; @return the RMS rounding error. */
Real quantizeInPlace(std::vector<Real> &buf,
                     const FixedPointFormat &fmt);

/**
 * The per-tensor quantization recipe used on every parameter view:
 * range analysis -> chooseFormat -> round-to-nearest in place.
 * @return the chosen format. Single source of truth for the rounding
 * the runtime FixedPoint backend must reproduce bit-exactly.
 */
FixedPointFormat quantizeWithRangeAnalysis(std::vector<Real> &buf,
                                           int bits);

/** Per-tensor quantization record. */
struct TensorQuantReport
{
    std::string name;
    FixedPointFormat format;
    Real maxAbs = 0.0;
    Real rmsError = 0.0;
    std::size_t count = 0;
};

/** Whole-model quantization record. */
struct QuantReport
{
    int bits = 0;
    std::vector<TensorQuantReport> tensors;

    Real worstRmsError() const;
    Real totalBytes() const; //!< storage at `bits` per parameter
};

/**
 * Quantize every parameter view of a model in place with per-view
 * range analysis (the paper's 12-bit weight quantization).
 */
QuantReport quantizeParams(nn::ParamRegistry &reg, int bits);

/** Quantize every feature frame of a dataset in place. */
QuantReport quantizeDataset(nn::SequenceDataset &data, int bits);

/** Result of the Phase II bit-width search. */
struct BitSearchResult
{
    int bits = 0;             //!< chosen width
    Real degradation = 0.0;   //!< metric at the chosen width
    std::vector<std::pair<int, Real>> sweep; //!< all evaluated pairs
};

/**
 * Smallest bit width whose accuracy degradation stays within budget.
 *
 * @param degradation_of  callback evaluating the degradation at a
 *                        given bit width (e.g. PER delta)
 * @param candidates      widths to try, ascending
 * @param max_degradation acceptance threshold
 */
BitSearchResult selectWeightBits(
    const std::function<Real(int)> &degradation_of,
    const std::vector<int> &candidates, Real max_degradation);

} // namespace ernn::quant

#endif // ERNN_QUANT_FIXED_POINT_HH
