#include "runtime/artifact.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "base/strings.hh"
#include "runtime/compiled_layers.hh"

namespace ernn::runtime
{

namespace
{

constexpr char kMagic[8] = {'E', 'R', 'N', 'N', 'A', 'R', 'T', 'F'};

// Concrete kernel encodings. The tag pins the exact class that will
// be rehydrated, so a loaded model runs the same datapath code. The
// *Q16 tags (v2) carry int16 grid codes instead of f64 weights; the
// f64 tags remain the encoding for fixed-point widths above 16 bits
// and for every kernel of a v1 file.
enum KernelTag : std::uint8_t
{
    kDense = 0,
    kCirculantFft = 1,
    kFixedPointDense = 2,
    kFixedPointCirculant = 3,
    kFixedPointDenseQ16 = 4,
    kFixedPointCirculantQ16 = 5,
};

enum LayerTag : std::uint8_t
{
    kLstm = 0,
    kGru = 1,
};

std::uint64_t
fnv1a64(const char *data, std::size_t n)
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Append-only byte sink for the fixed-width artifact encoding. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i32(std::int32_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }

    void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

    void reals(const std::vector<Real> &v)
    {
        size(v.size());
        if (!v.empty())
            raw(v.data(), v.size() * sizeof(Real));
    }

    void codes(const std::int16_t *p, std::size_t n)
    {
        size(n);
        if (n)
            raw(p, n * sizeof(std::int16_t));
    }

    void patchU64(std::size_t offset, std::uint64_t v)
    {
        std::memcpy(&buf_[offset], &v, sizeof v);
    }

    std::size_t tell() const { return buf_.size(); }
    std::string take() { return std::move(buf_); }

  private:
    void raw(const void *p, std::size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    std::string buf_;
};

/**
 * Bounds-checked cursor over artifact bytes. Overruns are fatal and
 * name what was being read — with a valid checksum they indicate a
 * writer/reader version bug, not bit rot.
 */
class Reader
{
  public:
    Reader(const std::string &buf, std::size_t payload_end)
        : buf_(buf), end_(payload_end)
    {
    }

    std::uint8_t u8(const char *what)
    {
        std::uint8_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::uint32_t u32(const char *what)
    {
        std::uint32_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::uint64_t u64(const char *what)
    {
        std::uint64_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::int32_t i32(const char *what)
    {
        std::int32_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    double f64(const char *what)
    {
        double v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::size_t size(const char *what)
    {
        return static_cast<std::size_t>(u64(what));
    }

    void realsInto(std::vector<Real> &out, const char *what)
    {
        const std::size_t n = size(what);
        ernn_assert(n <= (end_ - pos_) / sizeof(Real),
                    "artifact payload: " << what << " claims " << n
                    << " values past the end of the file");
        out.resize(n);
        if (n)
            raw(out.data(), n * sizeof(Real), what);
    }

    void codesInto(std::vector<std::int16_t> &out, const char *what)
    {
        const std::size_t n = size(what);
        ernn_assert(n <= (end_ - pos_) / sizeof(std::int16_t),
                    "artifact payload: " << what << " claims " << n
                    << " codes past the end of the file");
        out.resize(n);
        if (n)
            raw(out.data(), n * sizeof(std::int16_t), what);
    }

    std::size_t pos() const { return pos_; }
    bool done() const { return pos_ == end_; }
    std::size_t remainingBytes() const { return end_ - pos_; }

  private:
    void raw(void *p, std::size_t n, const char *what)
    {
        if (end_ - pos_ < n)
            ernn_fatal("artifact payload ends while reading " << what
                       << " (offset " << pos_ << " of " << end_
                       << " payload bytes)");
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }

    const std::string &buf_;
    std::size_t pos_ = 0;
    std::size_t end_;
};

// --- kernels -----------------------------------------------------------

void
writeFormat(Writer &w, const quant::FixedPointFormat &fmt)
{
    w.i32(fmt.totalBits);
    w.i32(fmt.fracBits);
}

quant::FixedPointFormat
readFormat(Reader &r)
{
    quant::FixedPointFormat fmt;
    fmt.totalBits = r.i32("fixed-point total bits");
    fmt.fracBits = r.i32("fixed-point fraction bits");
    // Bound the format before any arithmetic on it: a crafted
    // (checksum-valid) file must die with a named fatal, not drive
    // ldexp/llrint into undefined territory while rehydrating.
    if (fmt.totalBits < 2 || fmt.totalBits > 32 ||
        fmt.fracBits < 0 || fmt.fracBits > 62)
        ernn_fatal("artifact payload: implausible fixed-point format Q"
                   << fmt.totalBits << "/" << fmt.fracBits);
    return fmt;
}

void
writeDense(Writer &w, const Matrix &m)
{
    w.size(m.rows());
    w.size(m.cols());
    w.reals(m.raw());
}

/**
 * Dimension sanity bound: far beyond any RNN weight matrix, small
 * enough that products of checked dimensions cannot overflow and
 * that a crafted (checksum-valid) payload cannot trigger a giant
 * allocation — it dies with a named fatal instead of bad_alloc.
 */
constexpr std::size_t kMaxDim = std::size_t{1} << 24;

void
checkGeometry(const Reader &r, std::size_t params,
              std::size_t rows, std::size_t cols, const char *what,
              std::size_t elem_bytes = sizeof(Real))
{
    if (rows == 0 || cols == 0 || rows > kMaxDim || cols > kMaxDim)
        ernn_fatal("artifact payload: implausible " << what
                   << " geometry " << rows << "x" << cols);
    if (params > r.remainingBytes() / elem_bytes)
        ernn_fatal("artifact payload: " << what << " (" << rows
                   << "x" << cols << ") needs " << params
                   << " weights but only " << r.remainingBytes()
                   << " payload bytes remain");
}

Matrix
readDense(Reader &r)
{
    const std::size_t rows = r.size("dense kernel rows");
    const std::size_t cols = r.size("dense kernel cols");
    checkGeometry(r, rows * cols, rows, cols, "dense kernel");
    Matrix m(rows, cols);
    std::vector<Real> vals;
    r.realsInto(vals, "dense kernel weights");
    ernn_assert(vals.size() == rows * cols,
                "artifact payload: dense kernel is " << rows << "x"
                << cols << " but carries " << vals.size()
                << " weights");
    m.raw() = std::move(vals);
    return m;
}

void
writeCirculant(Writer &w, const circulant::BlockCirculantMatrix &m)
{
    w.size(m.rows());
    w.size(m.cols());
    w.size(m.blockSize());
    w.reals(m.raw());
}

circulant::BlockCirculantMatrix
readCirculant(Reader &r)
{
    const std::size_t rows = r.size("circulant kernel rows");
    const std::size_t cols = r.size("circulant kernel cols");
    const std::size_t block = r.size("circulant kernel block size");
    if (block == 0 || rows % block != 0 || cols % block != 0)
        ernn_fatal("artifact payload: circulant kernel " << rows
                   << "x" << cols << " not divisible by block "
                   << block);
    checkGeometry(r, rows / block * cols, rows, cols,
                  "circulant kernel");
    circulant::BlockCirculantMatrix m(rows, cols, block);
    std::vector<Real> gens;
    r.realsInto(gens, "circulant kernel generators");
    ernn_assert(gens.size() == m.paramCount(),
                "artifact payload: circulant kernel expects "
                << m.paramCount() << " generators, file carries "
                << gens.size());
    m.raw() = std::move(gens);
    m.invalidateSpectra();
    return m;
}

/**
 * Storage-order int16 codes of a packed kernel's weights (dense
 * entries or circulant generators). integerPacked() guarantees the
 * f64 values are on-grid and in-range, so toQ is exact — and the
 * serializer stays independent of the kernel's internal compute
 * layout (doubled generators).
 */
std::vector<std::int16_t>
weightCodes(const FixedPointKernel &f)
{
    const std::vector<Real> &vals = f.quantizedWeights();
    const quant::FixedPointFormat &fmt = f.weightFormat();
    std::vector<std::int16_t> codes(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
        codes[i] = static_cast<std::int16_t>(fmt.toQ(vals[i]));
    return codes;
}

void
writeKernel(Writer &w, const LinearKernel &kernel,
            std::uint32_t version)
{
    if (const auto *d = dynamic_cast<const DenseKernel *>(&kernel)) {
        w.u8(kDense);
        writeDense(w, d->weight());
        return;
    }
    if (const auto *c =
            dynamic_cast<const CirculantFftKernel *>(&kernel)) {
        w.u8(kCirculantFft);
        writeCirculant(w, c->weight());
        return;
    }
    if (const auto *f =
            dynamic_cast<const FixedPointKernel *>(&kernel)) {
        // v2 stores int16 grid codes when the kernel is packed (width
        // <= 16); v1 — and unpacked widths — store the f64 grid values.
        const bool q16 = version >= 2 && f->integerPacked();
        if (f->isCirculant()) {
            w.u8(q16 ? kFixedPointCirculantQ16 : kFixedPointCirculant);
            writeFormat(w, f->weightFormat());
            if (q16) {
                const circulant::BlockCirculantMatrix &m =
                    f->circulantWeight();
                w.size(m.rows());
                w.size(m.cols());
                w.size(m.blockSize());
                const auto codes = weightCodes(*f);
                w.codes(codes.data(), codes.size());
            } else {
                writeCirculant(w, f->circulantWeight());
            }
        } else {
            w.u8(q16 ? kFixedPointDenseQ16 : kFixedPointDense);
            writeFormat(w, f->weightFormat());
            if (q16) {
                const Matrix &m = f->denseWeight();
                w.size(m.rows());
                w.size(m.cols());
                const auto codes = weightCodes(*f);
                w.codes(codes.data(), codes.size());
            } else {
                writeDense(w, f->denseWeight());
            }
        }
        return;
    }
    // Registry extensions can add serving kernels, but the artifact
    // format only encodes the built-in family.
    ernn_fatal("saveArtifact: kernel backend '" << kernel.backendName()
               << "' has no artifact encoding");
}

/**
 * Decode int16 grid codes into their exact f64 grid values. The
 * FixedPointKernel constructor will re-verify these while packing
 * its compute layout; that second (cold-path) pass is deliberate —
 * packWeights() is the one authoritative gate on the on-grid
 * invariant, and it must hold for every construction route (compile,
 * v1 f64 payloads, these codes), not just this one.
 */
void
decodeCodes(Reader &r, const quant::FixedPointFormat &fmt,
            std::vector<Real> &out, std::size_t expected,
            const char *what)
{
    if (fmt.totalBits > 16)
        ernn_fatal("artifact payload: " << what << " stores int16 "
                   "codes for a " << fmt.totalBits << "-bit format");
    std::vector<std::int16_t> codes;
    r.codesInto(codes, what);
    ernn_assert(codes.size() == expected,
                "artifact payload: " << what << " expects " << expected
                << " codes, file carries " << codes.size());
    const std::int64_t lo = fmt.minQ(), hi = fmt.maxQ();
    out.resize(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
        const std::int64_t q = codes[i];
        if (q < lo || q > hi)
            ernn_fatal("artifact payload: " << what << " code " << q
                       << " outside [" << lo << ", " << hi << "] of "
                       << fmt.name());
        out[i] = fmt.fromQ(q);
    }
}

Matrix
readDenseQ16(Reader &r, const quant::FixedPointFormat &fmt)
{
    const std::size_t rows = r.size("dense kernel rows");
    const std::size_t cols = r.size("dense kernel cols");
    checkGeometry(r, rows * cols, rows, cols, "dense kernel",
                  sizeof(std::int16_t));
    Matrix m(rows, cols);
    decodeCodes(r, fmt, m.raw(), rows * cols,
                "dense kernel weight codes");
    return m;
}

circulant::BlockCirculantMatrix
readCirculantQ16(Reader &r, const quant::FixedPointFormat &fmt)
{
    const std::size_t rows = r.size("circulant kernel rows");
    const std::size_t cols = r.size("circulant kernel cols");
    const std::size_t block = r.size("circulant kernel block size");
    if (block == 0 || rows % block != 0 || cols % block != 0)
        ernn_fatal("artifact payload: circulant kernel " << rows
                   << "x" << cols << " not divisible by block "
                   << block);
    checkGeometry(r, rows / block * cols, rows, cols,
                  "circulant kernel", sizeof(std::int16_t));
    circulant::BlockCirculantMatrix m(rows, cols, block);
    decodeCodes(r, fmt, m.raw(), m.paramCount(),
                "circulant kernel generator codes");
    m.invalidateSpectra();
    return m;
}

std::unique_ptr<LinearKernel>
readKernel(Reader &r)
{
    const std::uint8_t tag = r.u8("kernel tag");
    switch (tag) {
      case kDense:
        return std::make_unique<DenseKernel>(readDense(r));
      case kCirculantFft:
        // The CirculantFftKernel constructor re-derives the generator
        // spectra (warmSpectra), so they are never stored.
        return std::make_unique<CirculantFftKernel>(readCirculant(r));
      case kFixedPointDense: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(readDense(r), fmt);
      }
      case kFixedPointCirculant: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(readCirculant(r),
                                                  fmt);
      }
      case kFixedPointDenseQ16: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(
            readDenseQ16(r, fmt), fmt);
      }
      case kFixedPointCirculantQ16: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(
            readCirculantQ16(r, fmt), fmt);
      }
      default:
        ernn_fatal("artifact payload: unknown kernel tag "
                   << static_cast<int>(tag) << " at offset "
                   << r.pos());
    }
}

// --- vectors and activations -------------------------------------------

void
writeVector(Writer &w, const Vector &v)
{
    w.reals(v);
}

Vector
readVector(Reader &r, const char *what)
{
    Vector v;
    r.realsInto(v, what);
    return v;
}

std::uint8_t
actTag(nn::ActKind kind)
{
    return kind == nn::ActKind::Sigmoid ? 0 : 1;
}

nn::ActKind
readAct(Reader &r, const char *what)
{
    const std::uint8_t tag = r.u8(what);
    ernn_assert(tag <= 1, "artifact payload: bad activation tag "
                << static_cast<int>(tag) << " for " << what);
    return tag == 0 ? nn::ActKind::Sigmoid : nn::ActKind::Tanh;
}

// --- layers ------------------------------------------------------------

void
writeLstm(Writer &w, const detail::LstmParts &p,
          std::uint32_t version)
{
    w.u8(kLstm);
    w.size(p.cfg.inputSize);
    w.size(p.cfg.hiddenSize);
    w.size(p.cfg.projectionSize);
    w.u8(p.cfg.peephole ? 1 : 0);
    w.size(p.cfg.blockSizeInput);
    w.size(p.cfg.blockSizeRecurrent);
    w.size(p.cfg.blockSizeProjection);
    w.u8(actTag(p.cfg.cellInputAct));
    w.u8(actTag(p.cfg.outputAct));

    const LinearKernel *order[8] = {
        p.wix.get(), p.wfx.get(), p.wcx.get(), p.wox.get(),
        p.wir.get(), p.wfr.get(), p.wcr.get(), p.wor.get()};
    for (const LinearKernel *k : order)
        writeKernel(w, *k, version);
    w.u8(p.wym ? 1 : 0);
    if (p.wym)
        writeKernel(w, *p.wym, version);

    writeVector(w, p.bi);
    writeVector(w, p.bf);
    writeVector(w, p.bc);
    writeVector(w, p.bo);
    writeVector(w, p.wic);
    writeVector(w, p.wfc);
    writeVector(w, p.woc);
}

std::unique_ptr<CompiledLayer>
readLstm(Reader &r)
{
    detail::LstmParts p;
    p.cfg.inputSize = r.size("lstm input size");
    p.cfg.hiddenSize = r.size("lstm hidden size");
    p.cfg.projectionSize = r.size("lstm projection size");
    p.cfg.peephole = r.u8("lstm peephole flag") != 0;
    p.cfg.blockSizeInput = r.size("lstm input block size");
    p.cfg.blockSizeRecurrent = r.size("lstm recurrent block size");
    p.cfg.blockSizeProjection = r.size("lstm projection block size");
    p.cfg.cellInputAct = readAct(r, "lstm cell-input activation");
    p.cfg.outputAct = readAct(r, "lstm output activation");

    std::unique_ptr<LinearKernel> *order[8] = {
        &p.wix, &p.wfx, &p.wcx, &p.wox,
        &p.wir, &p.wfr, &p.wcr, &p.wor};
    for (auto *slot : order)
        *slot = readKernel(r);
    if (r.u8("lstm projection flag"))
        p.wym = readKernel(r);

    p.bi = readVector(r, "lstm bias bi");
    p.bf = readVector(r, "lstm bias bf");
    p.bc = readVector(r, "lstm bias bc");
    p.bo = readVector(r, "lstm bias bo");
    p.wic = readVector(r, "lstm peephole wic");
    p.wfc = readVector(r, "lstm peephole wfc");
    p.woc = readVector(r, "lstm peephole woc");

    // The parts constructor re-validates every shape, so a crafted
    // payload that passes the checksum still cannot build a model
    // with inconsistent geometry.
    return std::make_unique<detail::CompiledLstmLayer>(std::move(p));
}

void
writeGru(Writer &w, const detail::GruParts &p, std::uint32_t version)
{
    w.u8(kGru);
    w.size(p.cfg.inputSize);
    w.size(p.cfg.hiddenSize);
    w.size(p.cfg.blockSizeInput);
    w.size(p.cfg.blockSizeRecurrent);
    w.u8(actTag(p.cfg.candidateAct));

    const LinearKernel *order[6] = {p.wzx.get(), p.wrx.get(),
                                    p.wcx.get(), p.wzc.get(),
                                    p.wrc.get(), p.wcc.get()};
    for (const LinearKernel *k : order)
        writeKernel(w, *k, version);

    writeVector(w, p.bz);
    writeVector(w, p.br);
    writeVector(w, p.bc);
}

std::unique_ptr<CompiledLayer>
readGru(Reader &r)
{
    detail::GruParts p;
    p.cfg.inputSize = r.size("gru input size");
    p.cfg.hiddenSize = r.size("gru hidden size");
    p.cfg.blockSizeInput = r.size("gru input block size");
    p.cfg.blockSizeRecurrent = r.size("gru recurrent block size");
    p.cfg.candidateAct = readAct(r, "gru candidate activation");

    std::unique_ptr<LinearKernel> *order[6] = {
        &p.wzx, &p.wrx, &p.wcx, &p.wzc, &p.wrc, &p.wcc};
    for (auto *slot : order)
        *slot = readKernel(r);

    p.bz = readVector(r, "gru bias bz");
    p.br = readVector(r, "gru bias br");
    p.bc = readVector(r, "gru bias bc");
    return std::make_unique<detail::CompiledGruLayer>(std::move(p));
}

// --- file helpers ------------------------------------------------------

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ernn_fatal("cannot open artifact file " << path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is && !is.eof())
        ernn_fatal("failed reading artifact file " << path);
    return buf.str();
}

/** Header size up to and including totalFileBytes. */
constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t);

constexpr std::size_t kChecksumBytes = sizeof(std::uint64_t);

} // namespace

std::string
serializeArtifact(const CompiledModel &model, std::uint32_t version)
{
    ernn_assert(version >= kMinArtifactFormatVersion &&
                    version <= kArtifactFormatVersion,
                "serializeArtifact: cannot write format version "
                << version << " (this build writes "
                << kMinArtifactFormatVersion << ".."
                << kArtifactFormatVersion << ")");
    Writer w;
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(version);
    const std::size_t size_field = w.tell();
    w.u64(0); // total file bytes, patched below

    const CompileOptions &opts = model.options();
    w.u32(static_cast<std::uint32_t>(opts.backend));
    w.i32(opts.fixedPointBits);
    w.size(opts.activationSegments);
    w.f64(opts.activationRange);
    if (version >= 2)
        w.u8(opts.fixedPointEmulation ? 1 : 0);

    w.u32(static_cast<std::uint32_t>(model.numLayers()));
    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const CompiledLayer &layer = model.layer(i);
        if (const auto *lstm =
                dynamic_cast<const detail::CompiledLstmLayer *>(
                    &layer)) {
            writeLstm(w, lstm->parts(), version);
        } else if (const auto *gru =
                       dynamic_cast<const detail::CompiledGruLayer *>(
                           &layer)) {
            writeGru(w, gru->parts(), version);
        } else {
            ernn_fatal("saveArtifact: layer kind '"
                       << layer.kindName()
                       << "' has no artifact encoding");
        }
    }

    writeKernel(w, model.classifier(), version);
    writeVector(w, model.classifierBias());

    w.patchU64(size_field, w.tell() + kChecksumBytes);
    std::string bytes = w.take();
    const std::uint64_t sum = fnv1a64(bytes.data(), bytes.size());
    bytes.append(reinterpret_cast<const char *>(&sum), sizeof sum);
    return bytes;
}

void
saveArtifact(const CompiledModel &model, const std::string &path)
{
    const std::string bytes = serializeArtifact(model);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        ernn_fatal("cannot open artifact file " << path
                   << " for writing");
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    if (!os)
        ernn_fatal("failed writing artifact " << path);
}

CompiledModel
loadArtifactBytes(const std::string &bytes)
{
    // Validation order is part of the error contract: magic first
    // (is this an artifact at all?), then version (can this build
    // read it?), then declared size (was it truncated?), and only
    // then the checksum (was it corrupted?).
    if (bytes.size() < kHeaderBytes + kChecksumBytes)
        ernn_fatal("truncated artifact: " << bytes.size()
                   << " bytes is smaller than the "
                   << kHeaderBytes + kChecksumBytes
                   << "-byte header");
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        ernn_fatal("not an E-RNN artifact (bad magic)");

    std::uint32_t version;
    std::memcpy(&version, bytes.data() + sizeof kMagic,
                sizeof version);
    if (version < kMinArtifactFormatVersion ||
        version > kArtifactFormatVersion)
        ernn_fatal("artifact format version " << version
                   << " is not supported by this build (reads "
                   << kMinArtifactFormatVersion << ".."
                   << kArtifactFormatVersion << ")");

    std::uint64_t declared;
    std::memcpy(&declared,
                bytes.data() + sizeof kMagic + sizeof version,
                sizeof declared);
    if (declared != bytes.size()) {
        if (bytes.size() < declared)
            ernn_fatal("truncated artifact: header declares "
                       << declared << " bytes, file has "
                       << bytes.size());
        ernn_fatal("artifact has " << bytes.size() - declared
                   << " trailing bytes past the declared "
                   << declared << "-byte payload");
    }

    std::uint64_t stored;
    std::memcpy(&stored,
                bytes.data() + bytes.size() - kChecksumBytes,
                sizeof stored);
    const std::uint64_t actual =
        fnv1a64(bytes.data(), bytes.size() - kChecksumBytes);
    if (stored != actual)
        ernn_fatal("artifact checksum mismatch (stored 0x" << std::hex
                   << stored << ", computed 0x" << actual << std::dec
                   << "): the file is corrupted");

    Reader r(bytes, bytes.size() - kChecksumBytes);
    // Skip the already-validated header.
    for (std::size_t i = 0; i < sizeof kMagic; ++i)
        r.u8("magic");
    r.u32("format version");
    r.u64("declared size");

    CompiledModel out;
    const std::uint32_t backend = r.u32("backend kind");
    ernn_assert(backend <=
                    static_cast<std::uint32_t>(
                        BackendKind::FixedPoint),
                "artifact payload: unknown backend kind " << backend);
    out.options_.backend = static_cast<BackendKind>(backend);
    out.options_.fixedPointBits = r.i32("fixed-point bits");
    out.options_.activationSegments = r.size("activation segments");
    out.options_.activationRange = r.f64("activation range");
    // v1 predates the emulation knob: its models take the native
    // integer datapath, which serves them bit-identically anyway.
    out.options_.fixedPointEmulation =
        version >= 2 && r.u8("fixed-point emulation flag") != 0;
    // The datapath is re-derived from these options, so bound them
    // before makeDatapath can act on them: a crafted checksum-valid
    // file must die with a named fatal, not a giant PWL allocation.
    if (out.options_.backend == BackendKind::FixedPoint) {
        if (out.options_.fixedPointBits < 2 ||
            out.options_.fixedPointBits > 32)
            ernn_fatal("artifact payload: fixed-point bit width "
                       << out.options_.fixedPointBits
                       << " outside [2, 32]");
        if (out.options_.activationSegments > (std::size_t{1} << 20))
            ernn_fatal("artifact payload: implausible PWL segment "
                       "count " << out.options_.activationSegments);
        if (!std::isfinite(out.options_.activationRange) ||
            out.options_.activationRange <= 0.0)
            ernn_fatal("artifact payload: bad activation range "
                       << out.options_.activationRange);
    }
    // PWL tables and the value format are deterministic functions of
    // the options; re-derive instead of storing them.
    out.datapath_ = detail::makeDatapath(out.options_);

    const std::uint32_t layers = r.u32("layer count");
    ernn_assert(layers > 0, "artifact payload: zero layers");
    for (std::uint32_t i = 0; i < layers; ++i) {
        const std::uint8_t tag = r.u8("layer kind tag");
        std::unique_ptr<CompiledLayer> layer;
        switch (tag) {
          case kLstm:
            layer = readLstm(r);
            break;
          case kGru:
            layer = readGru(r);
            break;
          default:
            ernn_fatal("artifact payload: unknown layer tag "
                       << static_cast<int>(tag));
        }
        if (!out.layers_.empty())
            ernn_assert(layer->inputSize() ==
                            out.layers_.back()->outputSize(),
                        "artifact payload: layer " << i
                        << " input dim " << layer->inputSize()
                        << " does not chain from previous output "
                        << out.layers_.back()->outputSize());
        out.layers_.push_back(std::move(layer));
    }

    out.classifier_ = readKernel(r);
    out.classifierBias_ = readVector(r, "classifier bias");
    ernn_assert(out.classifier_->outDim() ==
                    out.classifierBias_.size(),
                "artifact payload: classifier emits "
                << out.classifier_->outDim() << " logits but bias has "
                << out.classifierBias_.size());
    ernn_assert(out.classifier_->inDim() ==
                    out.layers_.back()->outputSize(),
                "artifact payload: classifier consumes "
                << out.classifier_->inDim()
                << " features, last layer emits "
                << out.layers_.back()->outputSize());
    ernn_assert(r.done(),
                "artifact payload: " << (bytes.size() - kChecksumBytes
                                         - r.pos())
                << " unread bytes after the classifier");
    return out;
}

CompiledModel
loadArtifact(const std::string &path)
{
    return loadArtifactBytes(readFileBytes(path));
}

std::shared_ptr<const CompiledModel>
loadArtifactShared(const std::string &path)
{
    return std::shared_ptr<const CompiledModel>(
        new CompiledModel(loadArtifact(path)));
}

std::string
describeArtifact(const std::string &path)
{
    const std::string bytes = readFileBytes(path);
    const CompiledModel model = loadArtifactBytes(bytes);

    // loadArtifactBytes validated the header; re-read the version it
    // accepted so the summary reports the *file's* format, not the
    // build's default.
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof kMagic,
                sizeof version);

    std::ostringstream os;
    os << path << ": " << model.describe() << "\n";
    os << "  format v" << version << ", "
       << fmtBytes(static_cast<double>(bytes.size()))
       << ", checksum ok\n";
    os << "  backend " << backendKindName(model.options().backend)
       << ", " << fmtGrouped(static_cast<long long>(
                     model.storedParams()))
       << " stored params, input dim " << model.inputSize()
       << ", " << model.numClasses() << " classes\n";
    if (model.datapath().fixedPoint) {
        os << "  datapath: "
           << (model.datapath().integerDatapath
                   ? "native int16"
                   : "f64 emulation")
           << ", " << model.options().fixedPointBits
           << "-bit values (" << model.datapath().valueFormat.name()
           << "), PWL tables "
           << model.options().activationSegments << " segments over [-"
           << model.options().activationRange << ", "
           << model.options().activationRange << "]\n";
    }
    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const CompiledLayer &layer = model.layer(i);
        os << "  layer " << i << ": " << layer.kindName() << " "
           << layer.inputSize() << " -> " << layer.outputSize()
           << ", " << fmtGrouped(static_cast<long long>(
                         layer.storedParams()))
           << " params";
        const auto kernels = layer.kernels();
        os << ", kernels";
        for (const LinearKernel *k : kernels) {
            os << " " << k->backendName();
            if (const auto *fp =
                    dynamic_cast<const FixedPointKernel *>(k))
                os << "(" << fp->weightFormat().name() << ")";
        }
        os << "\n";
    }
    os << "  classifier: " << model.classifier().backendName() << " "
       << model.classifier().inDim() << " -> "
       << model.classifier().outDim();
    if (const auto *fp = dynamic_cast<const FixedPointKernel *>(
            &model.classifier()))
        os << " (" << fp->weightFormat().name() << ")";
    os << "\n";
    return os.str();
}

} // namespace ernn::runtime
