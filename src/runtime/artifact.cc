#include "runtime/artifact.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "base/logging.hh"
#include "base/strings.hh"
#include "runtime/compiled_layers.hh"
#include "runtime/wire.hh"

namespace ernn::runtime
{

namespace detail
{

/**
 * Private-access key (friended by CompiledModel) that lets the
 * loaders in this translation unit assemble models in place — the
 * mmap path needs to construct into shared ownership and attach the
 * mapping that owns its borrowed weight blobs.
 */
struct ArtifactAccess
{
    static std::shared_ptr<CompiledModel> makeShared()
    {
        return std::shared_ptr<CompiledModel>(new CompiledModel());
    }

    static std::vector<std::unique_ptr<CompiledLayer>> &
    layers(CompiledModel &m)
    {
        return m.layers_;
    }

    static std::unique_ptr<LinearKernel> &classifier(CompiledModel &m)
    {
        return m.classifier_;
    }

    static Vector &classifierBias(CompiledModel &m)
    {
        return m.classifierBias_;
    }

    static Datapath &datapath(CompiledModel &m)
    {
        return m.datapath_;
    }

    static CompileOptions &options(CompiledModel &m)
    {
        return m.options_;
    }

    static std::shared_ptr<const void> &mapping(CompiledModel &m)
    {
        return m.mapping_;
    }
};

} // namespace detail

namespace
{

constexpr char kMagic[8] = {'E', 'R', 'N', 'N', 'A', 'R', 'T', 'F'};

// Concrete kernel encodings. The tag pins the exact class that will
// be rehydrated, so a loaded model runs the same datapath code. The
// *Q16 tags (v2) carry int16 grid codes instead of f64 weights; the
// f64 tags remain the encoding for fixed-point widths above 16 bits
// and for every kernel of a v1 file.
enum KernelTag : std::uint8_t
{
    kDense = 0,
    kCirculantFft = 1,
    kFixedPointDense = 2,
    kFixedPointCirculant = 3,
    kFixedPointDenseQ16 = 4,
    kFixedPointCirculantQ16 = 5,
};

enum LayerTag : std::uint8_t
{
    kLstm = 0,
    kGru = 1,
};

// Byte-level helpers (fnv1a64, Writer, Reader) are shared with the
// stream checkpoint encoder — see runtime/wire.hh.
using detail::fnv1a64;
using detail::Reader;
using detail::Writer;

/** Next multiple of the v3 blob alignment at or past @p off. */
constexpr std::size_t
align64(std::size_t off)
{
    return (off + kArtifactBlobAlign - 1) & ~(kArtifactBlobAlign - 1);
}

/**
 * v3 writer side: kernels register their weight payloads here and
 * write a placeholder descriptor into the metadata stream; once the
 * metadata is complete the blob section is laid out, every
 * descriptor is patched (offset, byte count, FNV-1a of the blob),
 * and the blobs are appended 64-byte aligned.
 */
class V3BlobTable
{
  public:
    struct Entry
    {
        const void *data;
        std::size_t bytes;
        std::size_t patch;  //!< descriptor position in the metadata
        std::size_t offset; //!< assigned blob offset (layout pass)
    };

    /** Register @p bytes of payload; writes the placeholder
     *  descriptor. @p data must stay valid until serialization
     *  finishes (it points into the kernel being saved). */
    void add(Writer &w, const void *data, std::size_t bytes)
    {
        entries_.push_back(Entry{data, bytes, w.tell(), 0});
        w.u64(0); // offset
        w.u64(0); // bytes
        w.u64(0); // fnv1a
    }

    std::vector<Entry> &entries() { return entries_; }

  private:
    std::vector<Entry> entries_;
};

// --- kernels -----------------------------------------------------------

void
writeFormat(Writer &w, const quant::FixedPointFormat &fmt)
{
    w.i32(fmt.totalBits);
    w.i32(fmt.fracBits);
}

quant::FixedPointFormat
readFormat(Reader &r)
{
    quant::FixedPointFormat fmt;
    fmt.totalBits = r.i32("fixed-point total bits");
    fmt.fracBits = r.i32("fixed-point fraction bits");
    // Bound the format before any arithmetic on it: a crafted
    // (checksum-valid) file must die with a named fatal, not drive
    // ldexp/llrint into undefined territory while rehydrating.
    if (fmt.totalBits < 2 || fmt.totalBits > 32 ||
        fmt.fracBits < 0 || fmt.fracBits > 62)
        ernn_fatal("artifact payload: implausible fixed-point format Q"
                   << fmt.totalBits << "/" << fmt.fracBits);
    return fmt;
}

void
writeDense(Writer &w, const Matrix &m)
{
    w.size(m.rows());
    w.size(m.cols());
    w.reals(m.raw());
}

/**
 * Dimension sanity bound: far beyond any RNN weight matrix, small
 * enough that products of checked dimensions cannot overflow and
 * that a crafted (checksum-valid) payload cannot trigger a giant
 * allocation — it dies with a named fatal instead of bad_alloc.
 */
constexpr std::size_t kMaxDim = std::size_t{1} << 24;

void
checkGeometry(const Reader &r, std::size_t params,
              std::size_t rows, std::size_t cols, const char *what,
              std::size_t elem_bytes = sizeof(Real))
{
    if (rows == 0 || cols == 0 || rows > kMaxDim || cols > kMaxDim)
        ernn_fatal("artifact payload: implausible " << what
                   << " geometry " << rows << "x" << cols);
    if (params > r.remainingBytes() / elem_bytes)
        ernn_fatal("artifact payload: " << what << " (" << rows
                   << "x" << cols << ") needs " << params
                   << " weights but only " << r.remainingBytes()
                   << " payload bytes remain");
}

Matrix
readDense(Reader &r)
{
    const std::size_t rows = r.size("dense kernel rows");
    const std::size_t cols = r.size("dense kernel cols");
    checkGeometry(r, rows * cols, rows, cols, "dense kernel");
    Matrix m(rows, cols);
    std::vector<Real> vals;
    r.realsInto(vals, "dense kernel weights");
    ernn_assert(vals.size() == rows * cols,
                "artifact payload: dense kernel is " << rows << "x"
                << cols << " but carries " << vals.size()
                << " weights");
    m.raw() = std::move(vals);
    return m;
}

void
writeCirculant(Writer &w, const circulant::BlockCirculantMatrix &m)
{
    w.size(m.rows());
    w.size(m.cols());
    w.size(m.blockSize());
    w.reals(m.raw());
}

circulant::BlockCirculantMatrix
readCirculant(Reader &r)
{
    const std::size_t rows = r.size("circulant kernel rows");
    const std::size_t cols = r.size("circulant kernel cols");
    const std::size_t block = r.size("circulant kernel block size");
    if (block == 0 || rows % block != 0 || cols % block != 0)
        ernn_fatal("artifact payload: circulant kernel " << rows
                   << "x" << cols << " not divisible by block "
                   << block);
    checkGeometry(r, rows / block * cols, rows, cols,
                  "circulant kernel");
    circulant::BlockCirculantMatrix m(rows, cols, block);
    std::vector<Real> gens;
    r.realsInto(gens, "circulant kernel generators");
    ernn_assert(gens.size() == m.paramCount(),
                "artifact payload: circulant kernel expects "
                << m.paramCount() << " generators, file carries "
                << gens.size());
    m.raw() = std::move(gens);
    m.invalidateSpectra();
    return m;
}

/**
 * Storage-order int16 codes of a packed kernel's weights (dense
 * entries or circulant generators). integerPacked() guarantees the
 * f64 values are on-grid and in-range, so toQ is exact — and the
 * serializer stays independent of the kernel's internal compute
 * layout (doubled generators).
 */
std::vector<std::int16_t>
weightCodes(const FixedPointKernel &f)
{
    const std::vector<Real> &vals = f.quantizedWeights();
    const quant::FixedPointFormat &fmt = f.weightFormat();
    std::vector<std::int16_t> codes(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
        codes[i] = static_cast<std::int16_t>(fmt.toQ(vals[i]));
    return codes;
}

void
writeKernel(Writer &w, const LinearKernel &kernel,
            std::uint32_t version, V3BlobTable *blobs)
{
    if (const auto *d = dynamic_cast<const DenseKernel *>(&kernel)) {
        w.u8(kDense);
        if (blobs) {
            w.size(d->outDim());
            w.size(d->inDim());
            blobs->add(w, d->weightData(),
                       d->outDim() * d->inDim() * sizeof(Real));
        } else {
            writeDense(w, d->weight());
        }
        return;
    }
    if (const auto *c =
            dynamic_cast<const CirculantFftKernel *>(&kernel)) {
        w.u8(kCirculantFft);
        if (blobs) {
            const circulant::BlockCirculantMatrix &m = c->weight();
            w.size(m.rows());
            w.size(m.cols());
            w.size(m.blockSize());
            blobs->add(w, m.raw().data(),
                       m.raw().size() * sizeof(Real));
        } else {
            writeCirculant(w, c->weight());
        }
        return;
    }
    if (const auto *f =
            dynamic_cast<const FixedPointKernel *>(&kernel)) {
        // v2+ stores int16 grid codes when the kernel is packed (width
        // <= 16); v1 — and unpacked widths — store the f64 grid values.
        const bool q16 = version >= 2 && f->integerPacked();
        if (f->isCirculant()) {
            w.u8(q16 ? kFixedPointCirculantQ16 : kFixedPointCirculant);
            writeFormat(w, f->weightFormat());
            if (blobs) {
                w.size(f->outDim());
                w.size(f->inDim());
                w.size(f->circulantBlockSize());
                if (q16) {
                    // v3 stores the *compute layout* (doubled
                    // generators) so a mapped kernel serves the blob
                    // in place without repacking.
                    blobs->add(w, f->packedCodes(),
                               f->packedCodeCount() *
                                   sizeof(std::int16_t));
                } else {
                    const std::vector<Real> &gens =
                        f->quantizedWeights();
                    blobs->add(w, gens.data(),
                               gens.size() * sizeof(Real));
                }
            } else if (q16) {
                const circulant::BlockCirculantMatrix &m =
                    f->circulantWeight();
                w.size(m.rows());
                w.size(m.cols());
                w.size(m.blockSize());
                const auto codes = weightCodes(*f);
                w.codes(codes.data(), codes.size());
            } else {
                writeCirculant(w, f->circulantWeight());
            }
        } else {
            w.u8(q16 ? kFixedPointDenseQ16 : kFixedPointDense);
            writeFormat(w, f->weightFormat());
            if (blobs) {
                w.size(f->outDim());
                w.size(f->inDim());
                if (q16) {
                    blobs->add(w, f->packedCodes(),
                               f->packedCodeCount() *
                                   sizeof(std::int16_t));
                } else {
                    const std::vector<Real> &vals =
                        f->quantizedWeights();
                    blobs->add(w, vals.data(),
                               vals.size() * sizeof(Real));
                }
            } else if (q16) {
                const Matrix &m = f->denseWeight();
                w.size(m.rows());
                w.size(m.cols());
                const auto codes = weightCodes(*f);
                w.codes(codes.data(), codes.size());
            } else {
                writeDense(w, f->denseWeight());
            }
        }
        return;
    }
    // Registry extensions can add serving kernels, but the artifact
    // format only encodes the built-in family.
    ernn_fatal("saveArtifact: kernel backend '" << kernel.backendName()
               << "' has no artifact encoding");
}

/**
 * Decode int16 grid codes into their exact f64 grid values. The
 * FixedPointKernel constructor will re-verify these while packing
 * its compute layout; that second (cold-path) pass is deliberate —
 * packWeights() is the one authoritative gate on the on-grid
 * invariant, and it must hold for every construction route (compile,
 * v1 f64 payloads, these codes), not just this one.
 */
void
decodeCodes(Reader &r, const quant::FixedPointFormat &fmt,
            std::vector<Real> &out, std::size_t expected,
            const char *what)
{
    if (fmt.totalBits > 16)
        ernn_fatal("artifact payload: " << what << " stores int16 "
                   "codes for a " << fmt.totalBits << "-bit format");
    std::vector<std::int16_t> codes;
    r.codesInto(codes, what);
    ernn_assert(codes.size() == expected,
                "artifact payload: " << what << " expects " << expected
                << " codes, file carries " << codes.size());
    const std::int64_t lo = fmt.minQ(), hi = fmt.maxQ();
    out.resize(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
        const std::int64_t q = codes[i];
        if (q < lo || q > hi)
            ernn_fatal("artifact payload: " << what << " code " << q
                       << " outside [" << lo << ", " << hi << "] of "
                       << fmt.name());
        out[i] = fmt.fromQ(q);
    }
}

Matrix
readDenseQ16(Reader &r, const quant::FixedPointFormat &fmt)
{
    const std::size_t rows = r.size("dense kernel rows");
    const std::size_t cols = r.size("dense kernel cols");
    checkGeometry(r, rows * cols, rows, cols, "dense kernel",
                  sizeof(std::int16_t));
    Matrix m(rows, cols);
    decodeCodes(r, fmt, m.raw(), rows * cols,
                "dense kernel weight codes");
    return m;
}

circulant::BlockCirculantMatrix
readCirculantQ16(Reader &r, const quant::FixedPointFormat &fmt)
{
    const std::size_t rows = r.size("circulant kernel rows");
    const std::size_t cols = r.size("circulant kernel cols");
    const std::size_t block = r.size("circulant kernel block size");
    if (block == 0 || rows % block != 0 || cols % block != 0)
        ernn_fatal("artifact payload: circulant kernel " << rows
                   << "x" << cols << " not divisible by block "
                   << block);
    checkGeometry(r, rows / block * cols, rows, cols,
                  "circulant kernel", sizeof(std::int16_t));
    circulant::BlockCirculantMatrix m(rows, cols, block);
    decodeCodes(r, fmt, m.raw(), m.paramCount(),
                "circulant kernel generator codes");
    m.invalidateSpectra();
    return m;
}

/**
 * v3 reader side: resolves blob descriptors against the file bytes.
 * Every fetch validates the descriptor (byte count against the
 * metadata geometry, 64-byte alignment, file bounds, and — unless
 * verification is off — the blob's FNV-1a checksum), then returns a
 * pointer into the file. In zero-copy mode the caller hands that
 * pointer straight to a borrowing kernel; in copy mode it memcpys.
 */
struct V3Resolver
{
    const char *base = nullptr;
    std::size_t fileSize = 0;
    std::size_t blobStart = 0; //!< first legal blob offset
    bool zeroCopy = false;
    bool verify = true;

    /** Layout record per blob, in metadata order (`ernn info`). */
    struct BlobInfo
    {
        const char *what;
        std::uint64_t offset;
        std::uint64_t bytes;
        bool inPlace; //!< served zero-copy under loadArtifactMapped
    };
    std::vector<BlobInfo> report;

    const char *fetch(Reader &r, std::size_t expect_bytes,
                      const char *what, bool in_place_eligible)
    {
        const std::uint64_t off = r.u64("blob offset");
        const std::uint64_t len = r.u64("blob byte count");
        const std::uint64_t sum = r.u64("blob checksum");
        if (len != expect_bytes)
            ernn_fatal("artifact blob: " << what << " declares "
                       << len << " bytes but the metadata geometry "
                       "needs " << expect_bytes);
        if (off % kArtifactBlobAlign != 0)
            ernn_fatal("artifact blob: " << what << " at offset "
                       << off << " is misaligned (every v3 blob "
                       "starts " << kArtifactBlobAlign
                       << "-byte aligned)");
        if (off < blobStart || off > fileSize ||
            len > fileSize - off)
            ernn_fatal("artifact blob: " << what << " at [" << off
                       << ", +" << len << ") lies outside the blob "
                       "section of the " << fileSize << "-byte file "
                       "(truncated?)");
        const char *p = base + off;
        if (verify) {
            const std::uint64_t actual = fnv1a64(p, len);
            if (actual != sum)
                ernn_fatal("artifact blob: " << what
                           << " checksum mismatch (stored 0x"
                           << std::hex << sum << ", computed 0x"
                           << actual << std::dec
                           << "): the file is corrupted");
        }
        report.push_back(BlobInfo{what, off, len, in_place_eligible});
        return p;
    }
};

/** Die if any code lies outside the format's representable range. */
void
checkCodeRange(const std::int16_t *codes, std::size_t n,
               const quant::FixedPointFormat &fmt, const char *what)
{
    const std::int64_t lo = fmt.minQ(), hi = fmt.maxQ();
    for (std::size_t i = 0; i < n; ++i)
        if (codes[i] < lo || codes[i] > hi)
            ernn_fatal("artifact blob: " << what << " code "
                       << codes[i] << " outside [" << lo << ", "
                       << hi << "] of " << fmt.name());
}

void
checkDims(std::size_t rows, std::size_t cols, const char *what)
{
    if (rows == 0 || cols == 0 || rows > kMaxDim || cols > kMaxDim)
        ernn_fatal("artifact payload: implausible " << what
                   << " geometry " << rows << "x" << cols);
}

std::unique_ptr<LinearKernel>
readKernelV3(Reader &r, V3Resolver &v3)
{
    const std::uint8_t tag = r.u8("kernel tag");
    switch (tag) {
      case kDense: {
        const std::size_t rows = r.size("dense kernel rows");
        const std::size_t cols = r.size("dense kernel cols");
        checkDims(rows, cols, "dense kernel");
        const char *p = v3.fetch(r, rows * cols * sizeof(Real),
                                 "dense f64 weights", true);
        if (v3.zeroCopy)
            return std::make_unique<DenseKernel>(
                reinterpret_cast<const Real *>(p), rows, cols);
        Matrix m(rows, cols);
        std::memcpy(m.data(), p, rows * cols * sizeof(Real));
        return std::make_unique<DenseKernel>(std::move(m));
      }
      case kCirculantFft: {
        const std::size_t rows = r.size("circulant kernel rows");
        const std::size_t cols = r.size("circulant kernel cols");
        const std::size_t block =
            r.size("circulant kernel block size");
        checkDims(rows, cols, "circulant kernel");
        if (block == 0 || rows % block != 0 || cols % block != 0)
            ernn_fatal("artifact payload: circulant kernel " << rows
                       << "x" << cols << " not divisible by block "
                       << block);
        const std::size_t gens = rows / block * cols;
        // Generator spectra must be re-derived on load regardless,
        // so the FFT backend copies its generators even when mapped.
        const char *p = v3.fetch(r, gens * sizeof(Real),
                                 "circulant f64 generators", false);
        circulant::BlockCirculantMatrix m(rows, cols, block);
        std::memcpy(m.raw().data(), p, gens * sizeof(Real));
        m.invalidateSpectra();
        return std::make_unique<CirculantFftKernel>(std::move(m));
      }
      case kFixedPointDense: {
        const quant::FixedPointFormat fmt = readFormat(r);
        const std::size_t rows = r.size("dense kernel rows");
        const std::size_t cols = r.size("dense kernel cols");
        checkDims(rows, cols, "dense kernel");
        const char *p =
            v3.fetch(r, rows * cols * sizeof(Real),
                     "fixed-point f64 weights (unpacked)", false);
        Matrix m(rows, cols);
        std::memcpy(m.data(), p, rows * cols * sizeof(Real));
        return std::make_unique<FixedPointKernel>(std::move(m), fmt);
      }
      case kFixedPointCirculant: {
        const quant::FixedPointFormat fmt = readFormat(r);
        const std::size_t rows = r.size("circulant kernel rows");
        const std::size_t cols = r.size("circulant kernel cols");
        const std::size_t block =
            r.size("circulant kernel block size");
        checkDims(rows, cols, "circulant kernel");
        if (block == 0 || rows % block != 0 || cols % block != 0)
            ernn_fatal("artifact payload: circulant kernel " << rows
                       << "x" << cols << " not divisible by block "
                       << block);
        const std::size_t gens = rows / block * cols;
        const char *p =
            v3.fetch(r, gens * sizeof(Real),
                     "fixed-point f64 generators (unpacked)", false);
        circulant::BlockCirculantMatrix m(rows, cols, block);
        std::memcpy(m.raw().data(), p, gens * sizeof(Real));
        m.invalidateSpectra();
        return std::make_unique<FixedPointKernel>(std::move(m), fmt);
      }
      case kFixedPointDenseQ16: {
        const quant::FixedPointFormat fmt = readFormat(r);
        if (fmt.totalBits > 16)
            ernn_fatal("artifact payload: dense kernel stores int16 "
                       "codes for a " << fmt.totalBits
                       << "-bit format");
        const std::size_t rows = r.size("dense kernel rows");
        const std::size_t cols = r.size("dense kernel cols");
        checkDims(rows, cols, "dense kernel");
        const std::size_t n = rows * cols;
        const char *p = v3.fetch(r, n * sizeof(std::int16_t),
                                 "dense int16 weight codes", true);
        const auto *codes = reinterpret_cast<const std::int16_t *>(p);
        if (v3.verify || !v3.zeroCopy)
            checkCodeRange(codes, n, fmt,
                           "dense int16 weight codes");
        if (v3.zeroCopy)
            return std::make_unique<FixedPointKernel>(
                FixedPointKernel::Borrowed{}, codes, rows, cols, fmt);
        // Copy load: decode onto the grid; the rehydrating
        // constructor re-verifies while packing its compute layout.
        Matrix m(rows, cols);
        for (std::size_t i = 0; i < n; ++i)
            m.data()[i] = fmt.fromQ(codes[i]);
        return std::make_unique<FixedPointKernel>(std::move(m), fmt);
      }
      case kFixedPointCirculantQ16: {
        const quant::FixedPointFormat fmt = readFormat(r);
        if (fmt.totalBits > 16)
            ernn_fatal("artifact payload: circulant kernel stores "
                       "int16 codes for a " << fmt.totalBits
                       << "-bit format");
        const std::size_t rows = r.size("circulant kernel rows");
        const std::size_t cols = r.size("circulant kernel cols");
        const std::size_t block =
            r.size("circulant kernel block size");
        checkDims(rows, cols, "circulant kernel");
        if (block == 0 || rows % block != 0 || cols % block != 0)
            ernn_fatal("artifact payload: circulant kernel " << rows
                       << "x" << cols << " not divisible by block "
                       << block);
        const std::size_t blocks = rows / block * (cols / block);
        const std::size_t n = blocks * 2 * block;
        const char *p =
            v3.fetch(r, n * sizeof(std::int16_t),
                     "circulant int16 generator codes", true);
        const auto *codes = reinterpret_cast<const std::int16_t *>(p);
        if (v3.verify || !v3.zeroCopy) {
            checkCodeRange(codes, n, fmt,
                           "circulant int16 generator codes");
            // The blob is the doubled compute layout; both halves of
            // every generator must agree or the blob was tampered
            // with (the second half would silently win for some rows).
            for (std::size_t b = 0; b < blocks; ++b)
                for (std::size_t j = 0; j < block; ++j)
                    if (codes[b * 2 * block + j] !=
                        codes[b * 2 * block + block + j])
                        ernn_fatal("artifact blob: inconsistent "
                                   "doubled generator codes in block "
                                   << b);
        }
        if (v3.zeroCopy)
            return std::make_unique<FixedPointKernel>(
                FixedPointKernel::Borrowed{}, codes, rows, cols,
                block, fmt);
        circulant::BlockCirculantMatrix m(rows, cols, block);
        for (std::size_t b = 0; b < blocks; ++b)
            for (std::size_t j = 0; j < block; ++j)
                m.raw()[b * block + j] =
                    fmt.fromQ(codes[b * 2 * block + j]);
        m.invalidateSpectra();
        return std::make_unique<FixedPointKernel>(std::move(m), fmt);
      }
      default:
        ernn_fatal("artifact payload: unknown kernel tag "
                   << static_cast<int>(tag) << " at offset "
                   << r.pos());
    }
}

std::unique_ptr<LinearKernel>
readKernel(Reader &r, V3Resolver *v3)
{
    if (v3)
        return readKernelV3(r, *v3);
    const std::uint8_t tag = r.u8("kernel tag");
    switch (tag) {
      case kDense:
        return std::make_unique<DenseKernel>(readDense(r));
      case kCirculantFft:
        // The CirculantFftKernel constructor re-derives the generator
        // spectra (warmSpectra), so they are never stored.
        return std::make_unique<CirculantFftKernel>(readCirculant(r));
      case kFixedPointDense: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(readDense(r), fmt);
      }
      case kFixedPointCirculant: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(readCirculant(r),
                                                  fmt);
      }
      case kFixedPointDenseQ16: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(
            readDenseQ16(r, fmt), fmt);
      }
      case kFixedPointCirculantQ16: {
        const quant::FixedPointFormat fmt = readFormat(r);
        return std::make_unique<FixedPointKernel>(
            readCirculantQ16(r, fmt), fmt);
      }
      default:
        ernn_fatal("artifact payload: unknown kernel tag "
                   << static_cast<int>(tag) << " at offset "
                   << r.pos());
    }
}

// --- vectors and activations -------------------------------------------

void
writeVector(Writer &w, const Vector &v)
{
    w.reals(v);
}

Vector
readVector(Reader &r, const char *what)
{
    Vector v;
    r.realsInto(v, what);
    return v;
}

std::uint8_t
actTag(nn::ActKind kind)
{
    return kind == nn::ActKind::Sigmoid ? 0 : 1;
}

nn::ActKind
readAct(Reader &r, const char *what)
{
    const std::uint8_t tag = r.u8(what);
    ernn_assert(tag <= 1, "artifact payload: bad activation tag "
                << static_cast<int>(tag) << " for " << what);
    return tag == 0 ? nn::ActKind::Sigmoid : nn::ActKind::Tanh;
}

// --- layers ------------------------------------------------------------

void
writeLstm(Writer &w, const detail::LstmParts &p,
          std::uint32_t version, V3BlobTable *blobs)
{
    w.u8(kLstm);
    w.size(p.cfg.inputSize);
    w.size(p.cfg.hiddenSize);
    w.size(p.cfg.projectionSize);
    w.u8(p.cfg.peephole ? 1 : 0);
    w.size(p.cfg.blockSizeInput);
    w.size(p.cfg.blockSizeRecurrent);
    w.size(p.cfg.blockSizeProjection);
    w.u8(actTag(p.cfg.cellInputAct));
    w.u8(actTag(p.cfg.outputAct));

    const LinearKernel *order[8] = {
        p.wix.get(), p.wfx.get(), p.wcx.get(), p.wox.get(),
        p.wir.get(), p.wfr.get(), p.wcr.get(), p.wor.get()};
    for (const LinearKernel *k : order)
        writeKernel(w, *k, version, blobs);
    w.u8(p.wym ? 1 : 0);
    if (p.wym)
        writeKernel(w, *p.wym, version, blobs);

    writeVector(w, p.bi);
    writeVector(w, p.bf);
    writeVector(w, p.bc);
    writeVector(w, p.bo);
    writeVector(w, p.wic);
    writeVector(w, p.wfc);
    writeVector(w, p.woc);
}

std::unique_ptr<CompiledLayer>
readLstm(Reader &r, V3Resolver *v3)
{
    detail::LstmParts p;
    p.cfg.inputSize = r.size("lstm input size");
    p.cfg.hiddenSize = r.size("lstm hidden size");
    p.cfg.projectionSize = r.size("lstm projection size");
    p.cfg.peephole = r.u8("lstm peephole flag") != 0;
    p.cfg.blockSizeInput = r.size("lstm input block size");
    p.cfg.blockSizeRecurrent = r.size("lstm recurrent block size");
    p.cfg.blockSizeProjection = r.size("lstm projection block size");
    p.cfg.cellInputAct = readAct(r, "lstm cell-input activation");
    p.cfg.outputAct = readAct(r, "lstm output activation");

    std::unique_ptr<LinearKernel> *order[8] = {
        &p.wix, &p.wfx, &p.wcx, &p.wox,
        &p.wir, &p.wfr, &p.wcr, &p.wor};
    for (auto *slot : order)
        *slot = readKernel(r, v3);
    if (r.u8("lstm projection flag"))
        p.wym = readKernel(r, v3);

    p.bi = readVector(r, "lstm bias bi");
    p.bf = readVector(r, "lstm bias bf");
    p.bc = readVector(r, "lstm bias bc");
    p.bo = readVector(r, "lstm bias bo");
    p.wic = readVector(r, "lstm peephole wic");
    p.wfc = readVector(r, "lstm peephole wfc");
    p.woc = readVector(r, "lstm peephole woc");

    // The parts constructor re-validates every shape, so a crafted
    // payload that passes the checksum still cannot build a model
    // with inconsistent geometry.
    return std::make_unique<detail::CompiledLstmLayer>(std::move(p));
}

void
writeGru(Writer &w, const detail::GruParts &p, std::uint32_t version,
         V3BlobTable *blobs)
{
    w.u8(kGru);
    w.size(p.cfg.inputSize);
    w.size(p.cfg.hiddenSize);
    w.size(p.cfg.blockSizeInput);
    w.size(p.cfg.blockSizeRecurrent);
    w.u8(actTag(p.cfg.candidateAct));

    const LinearKernel *order[6] = {p.wzx.get(), p.wrx.get(),
                                    p.wcx.get(), p.wzc.get(),
                                    p.wrc.get(), p.wcc.get()};
    for (const LinearKernel *k : order)
        writeKernel(w, *k, version, blobs);

    writeVector(w, p.bz);
    writeVector(w, p.br);
    writeVector(w, p.bc);
}

std::unique_ptr<CompiledLayer>
readGru(Reader &r, V3Resolver *v3)
{
    detail::GruParts p;
    p.cfg.inputSize = r.size("gru input size");
    p.cfg.hiddenSize = r.size("gru hidden size");
    p.cfg.blockSizeInput = r.size("gru input block size");
    p.cfg.blockSizeRecurrent = r.size("gru recurrent block size");
    p.cfg.candidateAct = readAct(r, "gru candidate activation");

    std::unique_ptr<LinearKernel> *order[6] = {
        &p.wzx, &p.wrx, &p.wcx, &p.wzc, &p.wrc, &p.wcc};
    for (auto *slot : order)
        *slot = readKernel(r, v3);

    p.bz = readVector(r, "gru bias bz");
    p.br = readVector(r, "gru bias br");
    p.bc = readVector(r, "gru bias bc");
    return std::make_unique<detail::CompiledGruLayer>(std::move(p));
}

// --- file helpers ------------------------------------------------------

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ernn_fatal("cannot open artifact file " << path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (!is && !is.eof())
        ernn_fatal("failed reading artifact file " << path);
    return buf.str();
}

/** Header size up to and including totalFileBytes. */
constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t);

constexpr std::size_t kChecksumBytes = sizeof(std::uint64_t);

// --- shared parse path -------------------------------------------------

/**
 * Parse the model payload (options, layers, classifier) out of @p r.
 * Shared by every format version: a v3 caller passes @p v3 so kernel
 * reads resolve blob descriptors; legacy callers pass nullptr and the
 * kernels read their inline weight payloads.
 */
void
parseModel(CompiledModel &out, Reader &r, std::uint32_t version,
           V3Resolver *v3)
{
    CompileOptions &options = detail::ArtifactAccess::options(out);
    const std::uint32_t backend = r.u32("backend kind");
    ernn_assert(backend <=
                    static_cast<std::uint32_t>(
                        BackendKind::FixedPoint),
                "artifact payload: unknown backend kind " << backend);
    options.backend = static_cast<BackendKind>(backend);
    options.fixedPointBits = r.i32("fixed-point bits");
    options.activationSegments = r.size("activation segments");
    options.activationRange = r.f64("activation range");
    // v1 predates the emulation knob: its models take the native
    // integer datapath, which serves them bit-identically anyway.
    options.fixedPointEmulation =
        version >= 2 && r.u8("fixed-point emulation flag") != 0;
    // The datapath is re-derived from these options, so bound them
    // before makeDatapath can act on them: a crafted checksum-valid
    // file must die with a named fatal, not a giant PWL allocation.
    if (options.backend == BackendKind::FixedPoint) {
        if (options.fixedPointBits < 2 || options.fixedPointBits > 32)
            ernn_fatal("artifact payload: fixed-point bit width "
                       << options.fixedPointBits << " outside [2, 32]");
        if (options.activationSegments > (std::size_t{1} << 20))
            ernn_fatal("artifact payload: implausible PWL segment "
                       "count " << options.activationSegments);
        if (!std::isfinite(options.activationRange) ||
            options.activationRange <= 0.0)
            ernn_fatal("artifact payload: bad activation range "
                       << options.activationRange);
    }
    // PWL tables and the value format are deterministic functions of
    // the options; re-derive instead of storing them.
    detail::ArtifactAccess::datapath(out) =
        detail::makeDatapath(options);

    auto &outLayers = detail::ArtifactAccess::layers(out);
    const std::uint32_t layers = r.u32("layer count");
    ernn_assert(layers > 0, "artifact payload: zero layers");
    for (std::uint32_t i = 0; i < layers; ++i) {
        const std::uint8_t tag = r.u8("layer kind tag");
        std::unique_ptr<CompiledLayer> layer;
        switch (tag) {
          case kLstm:
            layer = readLstm(r, v3);
            break;
          case kGru:
            layer = readGru(r, v3);
            break;
          default:
            ernn_fatal("artifact payload: unknown layer tag "
                       << static_cast<int>(tag));
        }
        if (!outLayers.empty())
            ernn_assert(layer->inputSize() ==
                            outLayers.back()->outputSize(),
                        "artifact payload: layer " << i
                        << " input dim " << layer->inputSize()
                        << " does not chain from previous output "
                        << outLayers.back()->outputSize());
        outLayers.push_back(std::move(layer));
    }

    auto &classifier = detail::ArtifactAccess::classifier(out);
    Vector &classifierBias =
        detail::ArtifactAccess::classifierBias(out);
    classifier = readKernel(r, v3);
    classifierBias = readVector(r, "classifier bias");
    ernn_assert(classifier->outDim() == classifierBias.size(),
                "artifact payload: classifier emits "
                << classifier->outDim() << " logits but bias has "
                << classifierBias.size());
    ernn_assert(classifier->inDim() ==
                    outLayers.back()->outputSize(),
                "artifact payload: classifier consumes "
                << classifier->inDim()
                << " features, last layer emits "
                << outLayers.back()->outputSize());
    ernn_assert(r.done(),
                "artifact payload: " << r.remainingBytes()
                << " unread bytes after the classifier");
}

/**
 * Validate and parse a complete artifact byte image into @p out.
 * Validation order is part of the error contract: magic first (is
 * this an artifact at all?), then version (can this build read it?),
 * then declared size (was it truncated?), and only then the checksum
 * — the whole file for v1/v2, the metadata stream for v3 (each v3
 * blob carries its own checksum, verified as it is fetched unless
 * @p verifyBlobs is off). Returns the file's format version.
 */
std::uint32_t
parseArtifact(CompiledModel &out, const char *data, std::size_t size,
              bool zeroCopy, bool verifyBlobs,
              std::vector<V3Resolver::BlobInfo> *blobReport = nullptr)
{
    if (size < kHeaderBytes + kChecksumBytes)
        ernn_fatal("truncated artifact: " << size
                   << " bytes is smaller than the "
                   << kHeaderBytes + kChecksumBytes
                   << "-byte header");
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
        ernn_fatal("not an E-RNN artifact (bad magic)");

    std::uint32_t version;
    std::memcpy(&version, data + sizeof kMagic, sizeof version);
    if (version < kMinArtifactFormatVersion ||
        version > kArtifactFormatVersion)
        ernn_fatal("artifact format version " << version
                   << " is not supported by this build (reads "
                   << kMinArtifactFormatVersion << ".."
                   << kArtifactFormatVersion << ")");

    std::uint64_t declared;
    std::memcpy(&declared, data + sizeof kMagic + sizeof version,
                sizeof declared);
    if (declared != size) {
        if (size < declared)
            ernn_fatal("truncated artifact: header declares "
                       << declared << " bytes, file has " << size);
        ernn_fatal("artifact has " << size - declared
                   << " trailing bytes past the declared "
                   << declared << "-byte payload");
    }

    if (version < 3) {
        std::uint64_t stored;
        std::memcpy(&stored, data + size - kChecksumBytes,
                    sizeof stored);
        const std::uint64_t actual =
            fnv1a64(data, size - kChecksumBytes);
        if (stored != actual)
            ernn_fatal("artifact checksum mismatch (stored 0x"
                       << std::hex << stored << ", computed 0x"
                       << actual << std::dec
                       << "): the file is corrupted");

        Reader r(data, size - kChecksumBytes);
        // Skip the already-validated header.
        for (std::size_t i = 0; i < sizeof kMagic; ++i)
            r.u8("magic");
        r.u32("format version");
        r.u64("declared size");
        parseModel(out, r, version, nullptr);
        return version;
    }

    // v3: the metadata stream [0, metaEnd) carries its own checksum
    // at metaEnd; the blob section past it is covered per blob.
    constexpr std::size_t v3Header =
        kHeaderBytes + sizeof(std::uint64_t);
    std::uint64_t metaEnd = 0;
    if (size >= v3Header)
        std::memcpy(&metaEnd, data + kHeaderBytes, sizeof metaEnd);
    if (size < v3Header + kChecksumBytes || metaEnd < v3Header ||
        metaEnd > size - kChecksumBytes)
        ernn_fatal("truncated artifact: metadata end " << metaEnd
                   << " out of range of the " << size
                   << "-byte v3 file");

    std::uint64_t stored;
    std::memcpy(&stored, data + metaEnd, sizeof stored);
    const std::uint64_t actual =
        fnv1a64(data, static_cast<std::size_t>(metaEnd));
    if (stored != actual)
        ernn_fatal("artifact metadata checksum mismatch (stored 0x"
                   << std::hex << stored << ", computed 0x" << actual
                   << std::dec << "): the file is corrupted");

    V3Resolver v3;
    v3.base = data;
    v3.fileSize = size;
    v3.blobStart =
        align64(static_cast<std::size_t>(metaEnd) + kChecksumBytes);
    v3.zeroCopy = zeroCopy;
    v3.verify = verifyBlobs;

    Reader r(data, static_cast<std::size_t>(metaEnd));
    for (std::size_t i = 0; i < sizeof kMagic; ++i)
        r.u8("magic");
    r.u32("format version");
    r.u64("declared size");
    r.u64("metadata end");
    parseModel(out, r, version, &v3);
    if (blobReport)
        *blobReport = std::move(v3.report);
    return version;
}

/**
 * Owns one read-only file mapping — the storage a zero-copy loaded
 * model borrows its weight blobs from. Falls back to a heap read on
 * platforms without mmap (and for empty files, which the parser then
 * rejects with the usual truncation fatal).
 */
class ArtifactMapping
{
  public:
    explicit ArtifactMapping(const std::string &path)
    {
#ifndef _WIN32
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            ernn_fatal("cannot open artifact file " << path);
        struct stat st;
        if (::fstat(fd, &st) != 0) {
            ::close(fd);
            ernn_fatal("cannot stat artifact file " << path);
        }
        size_ = static_cast<std::size_t>(st.st_size);
        if (size_ == 0) {
            ::close(fd);
            return;
        }
        void *p =
            ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (p == MAP_FAILED)
            ernn_fatal("cannot mmap artifact file " << path);
        map_ = p;
        data_ = static_cast<const char *>(p);
#else
        fallback_ = readFileBytes(path);
        data_ = fallback_.data();
        size_ = fallback_.size();
#endif
    }

    ~ArtifactMapping()
    {
#ifndef _WIN32
        if (map_)
            ::munmap(map_, size_);
#endif
    }

    ArtifactMapping(const ArtifactMapping &) = delete;
    ArtifactMapping &operator=(const ArtifactMapping &) = delete;

    const char *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    const char *data_ = nullptr;
    std::size_t size_ = 0;
#ifndef _WIN32
    void *map_ = nullptr;
#else
    std::string fallback_;
#endif
};

} // namespace

std::string
serializeArtifact(const CompiledModel &model, std::uint32_t version)
{
    ernn_assert(version >= kMinArtifactFormatVersion &&
                    version <= kArtifactFormatVersion,
                "serializeArtifact: cannot write format version "
                << version << " (this build writes "
                << kMinArtifactFormatVersion << ".."
                << kArtifactFormatVersion << ")");
    Writer w;
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(version);
    const std::size_t size_field = w.tell();
    w.u64(0); // total file bytes, patched below
    std::size_t meta_end_field = 0;
    if (version >= 3) {
        meta_end_field = w.tell();
        w.u64(0); // metadata end, patched below
    }
    V3BlobTable table;
    V3BlobTable *const blobs = version >= 3 ? &table : nullptr;

    const CompileOptions &opts = model.options();
    w.u32(static_cast<std::uint32_t>(opts.backend));
    w.i32(opts.fixedPointBits);
    w.size(opts.activationSegments);
    w.f64(opts.activationRange);
    if (version >= 2)
        w.u8(opts.fixedPointEmulation ? 1 : 0);

    w.u32(static_cast<std::uint32_t>(model.numLayers()));
    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const CompiledLayer &layer = model.layer(i);
        if (const auto *lstm =
                dynamic_cast<const detail::CompiledLstmLayer *>(
                    &layer)) {
            writeLstm(w, lstm->parts(), version, blobs);
        } else if (const auto *gru =
                       dynamic_cast<const detail::CompiledGruLayer *>(
                           &layer)) {
            writeGru(w, gru->parts(), version, blobs);
        } else {
            ernn_fatal("saveArtifact: layer kind '"
                       << layer.kindName()
                       << "' has no artifact encoding");
        }
    }

    writeKernel(w, model.classifier(), version, blobs);
    writeVector(w, model.classifierBias());

    if (version < 3) {
        w.patchU64(size_field, w.tell() + kChecksumBytes);
        std::string bytes = w.take();
        const std::uint64_t sum =
            fnv1a64(bytes.data(), bytes.size());
        bytes.append(reinterpret_cast<const char *>(&sum),
                     sizeof sum);
        return bytes;
    }

    // v3: the metadata stream ends here; lay out the blob section
    // (every blob 64-byte aligned) and patch each descriptor with
    // its final offset, byte count, and payload checksum.
    const std::size_t meta_end = w.tell();
    w.patchU64(meta_end_field, meta_end);
    std::size_t off = align64(meta_end + kChecksumBytes);
    for (auto &e : table.entries()) {
        e.offset = off;
        w.patchU64(e.patch, e.offset);
        w.patchU64(e.patch + sizeof(std::uint64_t), e.bytes);
        w.patchU64(e.patch + 2 * sizeof(std::uint64_t),
                   fnv1a64(static_cast<const char *>(e.data),
                           e.bytes));
        off = align64(off + e.bytes);
    }
    const std::size_t total =
        table.entries().empty()
            ? meta_end + kChecksumBytes
            : table.entries().back().offset +
                  table.entries().back().bytes;
    w.patchU64(size_field, total);

    std::string bytes = w.take();
    const std::uint64_t sum = fnv1a64(bytes.data(), meta_end);
    bytes.append(reinterpret_cast<const char *>(&sum), sizeof sum);
    bytes.resize(total, '\0'); // alignment padding + blob space
    for (const auto &e : table.entries())
        std::memcpy(&bytes[e.offset], e.data, e.bytes);
    return bytes;
}

void
saveArtifact(const CompiledModel &model, const std::string &path,
             std::uint32_t version)
{
    const std::string bytes = serializeArtifact(model, version);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        ernn_fatal("cannot open artifact file " << path
                   << " for writing");
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    if (!os)
        ernn_fatal("failed writing artifact " << path);
}

CompiledModel
loadArtifactBytes(const std::string &bytes)
{
    CompiledModel out;
    parseArtifact(out, bytes.data(), bytes.size(),
                  /*zeroCopy=*/false, /*verifyBlobs=*/true);
    return out;
}

CompiledModel
loadArtifact(const std::string &path)
{
    return loadArtifactBytes(readFileBytes(path));
}

std::shared_ptr<const CompiledModel>
loadArtifactShared(const std::string &path)
{
    return std::shared_ptr<const CompiledModel>(
        new CompiledModel(loadArtifact(path)));
}

std::shared_ptr<const CompiledModel>
loadArtifactMapped(const std::string &path, MapOptions opts)
{
    auto mapping = std::make_shared<ArtifactMapping>(path);
    std::shared_ptr<CompiledModel> out =
        detail::ArtifactAccess::makeShared();
    const std::uint32_t version =
        parseArtifact(*out, mapping->data(), mapping->size(),
                      /*zeroCopy=*/true, opts.verifyBlobs);
    // Legacy formats parse through the copying path: nothing borrows
    // from the mapping, so it is released right here. A v3 model
    // keeps the mapping alive as long as it lives.
    if (version >= 3)
        detail::ArtifactAccess::mapping(*out) = std::move(mapping);
    return out;
}

std::string
describeArtifact(const std::string &path)
{
    const std::string bytes = readFileBytes(path);
    auto modelPtr = detail::ArtifactAccess::makeShared();
    std::vector<V3Resolver::BlobInfo> blobs;
    const std::uint32_t version =
        parseArtifact(*modelPtr, bytes.data(), bytes.size(),
                      /*zeroCopy=*/false, /*verifyBlobs=*/true,
                      &blobs);
    const CompiledModel &model = *modelPtr;

    std::ostringstream os;
    os << path << ": " << model.describe() << "\n";
    os << "  format v" << version << ", "
       << fmtBytes(static_cast<double>(bytes.size())) << ", "
       << (version >= 3 ? "metadata and blob checksums ok"
                        : "checksum ok")
       << "\n";
    os << "  backend " << backendKindName(model.options().backend)
       << ", " << fmtGrouped(static_cast<long long>(
                     model.storedParams()))
       << " stored params, input dim " << model.inputSize()
       << ", " << model.numClasses() << " classes\n";
    if (model.datapath().fixedPoint) {
        os << "  datapath: "
           << (model.datapath().integerDatapath
                   ? "native int16"
                   : "f64 emulation")
           << ", " << model.options().fixedPointBits
           << "-bit values (" << model.datapath().valueFormat.name()
           << "), PWL tables "
           << model.options().activationSegments << " segments over [-"
           << model.options().activationRange << ", "
           << model.options().activationRange << "]\n";
    }
    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const CompiledLayer &layer = model.layer(i);
        os << "  layer " << i << ": " << layer.kindName() << " "
           << layer.inputSize() << " -> " << layer.outputSize()
           << ", " << fmtGrouped(static_cast<long long>(
                         layer.storedParams()))
           << " params";
        const auto kernels = layer.kernels();
        os << ", kernels";
        for (const LinearKernel *k : kernels) {
            os << " " << k->backendName();
            if (const auto *fp =
                    dynamic_cast<const FixedPointKernel *>(k))
                os << "(" << fp->weightFormat().name() << ")";
        }
        os << "\n";
    }
    os << "  classifier: " << model.classifier().backendName() << " "
       << model.classifier().inDim() << " -> "
       << model.classifier().outDim();
    if (const auto *fp = dynamic_cast<const FixedPointKernel *>(
            &model.classifier()))
        os << " (" << fp->weightFormat().name() << ")";
    os << "\n";
    if (version >= 3) {
        os << "  blob section: " << blobs.size() << " blobs, every "
           << "offset " << kArtifactBlobAlign << "-byte aligned\n";
        for (const auto &b : blobs)
            os << "    [" << std::setw(10) << b.offset << ", +"
               << b.bytes << ") " << b.what << ": "
               << (b.inPlace ? "mapped in place under "
                               "loadArtifactMapped"
                             : "copied on load")
               << "\n";
    }
    return os.str();
}

} // namespace ernn::runtime
