/**
 * @file
 * Portable CompiledModel artifacts: the on-disk form of a deployed
 * model, the persistent half of the paper's train-once / deploy-many
 * split. saveArtifact() serializes a frozen model — backend choice,
 * cell configurations, quantization metadata, and every weight blob —
 * into a single versioned binary file; loadArtifact() rebuilds a
 * CompiledModel that serves *bit-identically* to the original, with
 * no training stack involved.
 *
 * Format (all integers little-endian on every supported platform —
 * host-endian, documented as x86-64/AArch64-little):
 *
 *     offset 0   magic "ERNNARTF"             (8 bytes)
 *             8  u32 formatVersion            (currently 1)
 *            12  u64 totalFileBytes           (incl. trailing checksum)
 *            20  CompileOptions               (backend kind, fixed-point
 *                                              bits, PWL segments/range)
 *               u32 layerCount
 *               per layer: cell kind tag, cell config, kernels in
 *                 canonical gate order, frozen bias/peephole vectors
 *               classifier kernel + frozen classifier bias
 *     end-8      u64 FNV-1a checksum over every preceding byte
 *
 * Each kernel records its concrete backend (dense / circulant-fft /
 * fixed-point dense / fixed-point circulant), its geometry, its
 * quantization format where applicable, and its weight payload as
 * raw f64 — so the round trip is bit-exact by construction. Derived
 * state is never stored: circulant generator spectra and fixed-point
 * PWL activation tables are re-derived deterministically on load.
 *
 * Error contract: every failure is fatal and informative
 * (ernn_fatal): unreadable file, bad magic, format version skew,
 * truncation (declared size vs. actual), checksum mismatch, and
 * structurally inconsistent payloads each name the file and the
 * specific defect. A loaded artifact is therefore either fully
 * usable or the process has already said exactly why not.
 */

#ifndef ERNN_RUNTIME_ARTIFACT_HH
#define ERNN_RUNTIME_ARTIFACT_HH

#include <memory>
#include <string>

#include "runtime/compiled_model.hh"

namespace ernn::runtime
{

/** Artifact format version this build writes and accepts. */
constexpr std::uint32_t kArtifactFormatVersion = 1;

/** Serialize a frozen model to its portable byte representation. */
std::string serializeArtifact(const CompiledModel &model);

/** Write model.serialize bytes to @p path; fatal on I/O failure. */
void saveArtifact(const CompiledModel &model, const std::string &path);

/**
 * Rebuild a CompiledModel from artifact bytes. Fatal (with the
 * specific defect) on bad magic, version skew, truncation, checksum
 * mismatch, or inconsistent payload. The result serves bit-identically
 * to the model that was saved.
 */
CompiledModel loadArtifactBytes(const std::string &bytes);

/** Load an artifact file; fatal on I/O failure or any format error. */
CompiledModel loadArtifact(const std::string &path);

/**
 * Load an artifact into shared ownership — the form a long-lived
 * server wants: the returned model can outlive the loading scope and
 * be shared (immutable) across any number of sessions and threads.
 */
std::shared_ptr<const CompiledModel>
loadArtifactShared(const std::string &path);

/** Human-readable multi-line summary of an artifact file (the CLI's
 *  `ernn info`): backend, layers, kernels, quantization metadata. */
std::string describeArtifact(const std::string &path);

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_ARTIFACT_HH
