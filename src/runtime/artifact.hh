/**
 * @file
 * Portable CompiledModel artifacts: the on-disk form of a deployed
 * model, the persistent half of the paper's train-once / deploy-many
 * split. saveArtifact() serializes a frozen model — backend choice,
 * cell configurations, quantization metadata, and every weight blob —
 * into a single versioned binary file; loadArtifact() rebuilds a
 * CompiledModel that serves *bit-identically* to the original, with
 * no training stack involved.
 *
 * Format (all integers little-endian on every supported platform —
 * host-endian, documented as x86-64/AArch64-little):
 *
 *     offset 0   magic "ERNNARTF"             (8 bytes)
 *             8  u32 formatVersion            (this build writes 2,
 *                                              reads 1 and 2)
 *            12  u64 totalFileBytes           (incl. trailing checksum)
 *            20  CompileOptions               (backend kind, fixed-point
 *                                              bits, PWL segments/range;
 *                                              v2 adds u8 emulation flag)
 *               u32 layerCount
 *               per layer: cell kind tag, cell config, kernels in
 *                 canonical gate order, frozen bias/peephole vectors
 *               classifier kernel + frozen classifier bias
 *     end-8      u64 FNV-1a checksum over every preceding byte
 *
 * Each kernel records its concrete backend (dense / circulant-fft /
 * fixed-point dense / fixed-point circulant), its geometry, its
 * quantization format where applicable, and its weight payload — so
 * the round trip is bit-exact by construction. Version 1 stored every
 * weight as raw f64; version 2 stores fixed-point weights of width
 * <= 16 as their int16 grid codes instead (~4x smaller files at the
 * paper's 12-bit design point — code q means weight q * 2^-fracBits,
 * an exact reconstruction). Derived state is never stored: circulant
 * generator spectra, fixed-point PWL activation tables, and the
 * packed int16 compute layout are re-derived deterministically on
 * load. Version 1 files remain loadable (and serve through the same
 * native integer datapath once loaded).
 *
 * Error contract: every failure is fatal and informative
 * (ernn_fatal): unreadable file, bad magic, format version skew,
 * truncation (declared size vs. actual), checksum mismatch, and
 * structurally inconsistent payloads each name the file and the
 * specific defect. A loaded artifact is therefore either fully
 * usable or the process has already said exactly why not.
 */

#ifndef ERNN_RUNTIME_ARTIFACT_HH
#define ERNN_RUNTIME_ARTIFACT_HH

#include <memory>
#include <string>

#include "runtime/compiled_model.hh"

namespace ernn::runtime
{

/** Artifact format version this build writes by default. */
constexpr std::uint32_t kArtifactFormatVersion = 2;

/** Oldest artifact format version this build still reads. */
constexpr std::uint32_t kMinArtifactFormatVersion = 1;

/**
 * Serialize a frozen model to its portable byte representation.
 * @p version selects the on-disk format: 2 (default) packs
 * fixed-point weights as int16 codes, 1 writes the legacy all-f64
 * layout (kept so compatibility with old readers stays testable and
 * scriptable). Both round-trip bit-exactly.
 */
std::string serializeArtifact(
    const CompiledModel &model,
    std::uint32_t version = kArtifactFormatVersion);

/** Write model.serialize bytes to @p path; fatal on I/O failure. */
void saveArtifact(const CompiledModel &model, const std::string &path);

/**
 * Rebuild a CompiledModel from artifact bytes. Fatal (with the
 * specific defect) on bad magic, version skew, truncation, checksum
 * mismatch, or inconsistent payload. The result serves bit-identically
 * to the model that was saved.
 */
CompiledModel loadArtifactBytes(const std::string &bytes);

/** Load an artifact file; fatal on I/O failure or any format error. */
CompiledModel loadArtifact(const std::string &path);

/**
 * Load an artifact into shared ownership — the form a long-lived
 * server wants: the returned model can outlive the loading scope and
 * be shared (immutable) across any number of sessions and threads.
 */
std::shared_ptr<const CompiledModel>
loadArtifactShared(const std::string &path);

/** Human-readable multi-line summary of an artifact file (the CLI's
 *  `ernn info`): backend, layers, kernels, quantization metadata. */
std::string describeArtifact(const std::string &path);

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_ARTIFACT_HH
