/**
 * @file
 * Portable CompiledModel artifacts: the on-disk form of a deployed
 * model, the persistent half of the paper's train-once / deploy-many
 * split. saveArtifact() serializes a frozen model — backend choice,
 * cell configurations, quantization metadata, and every weight blob —
 * into a single versioned binary file; loadArtifact() rebuilds a
 * CompiledModel that serves *bit-identically* to the original, with
 * no training stack involved.
 *
 * Format (all integers little-endian on every supported platform —
 * host-endian, documented as x86-64/AArch64-little):
 *
 *   v1/v2 (legacy, still read):
 *     offset 0   magic "ERNNARTF"             (8 bytes)
 *             8  u32 formatVersion
 *            12  u64 totalFileBytes           (incl. trailing checksum)
 *            20  CompileOptions               (backend kind, fixed-point
 *                                              bits, PWL segments/range;
 *                                              v2 adds u8 emulation flag)
 *               u32 layerCount
 *               per layer: cell kind tag, cell config, kernels in
 *                 canonical gate order, frozen bias/peephole vectors
 *               classifier kernel + frozen classifier bias
 *     end-8      u64 FNV-1a checksum over every preceding byte
 *
 *   v3 (this build's default) splits metadata from weight payloads
 *   so a model can be served straight out of an mmap with zero copy:
 *     offset 0   magic "ERNNARTF"             (8 bytes)
 *             8  u32 formatVersion = 3
 *            12  u64 totalFileBytes
 *            20  u64 metaEnd                  (offset of metaChecksum)
 *            28  metadata stream: CompileOptions, layerCount, layers
 *               and classifier as in v2 — except every kernel stores
 *               its dims plus a *blob descriptor* {u64 offset, u64
 *               bytes, u64 fnv1a} instead of an inline weight payload
 *               (biases stay inline: they are copied anyway)
 *     metaEnd    u64 FNV-1a checksum over bytes [0, metaEnd)
 *               zero padding to a 64-byte boundary
 *               blob section: each blob starts 64-byte aligned,
 *               zero-padded in between; totalFileBytes ends the last
 *
 *   v3 blob payloads are stored in *compute layout*: dense f64
 *   weights row-major (served in place by a borrowing DenseKernel),
 *   packed fixed-point weights as int16 codes (dense: row-major;
 *   circulant: doubled generators, each block row one contiguous
 *   slice) served in place by a borrowing FixedPointKernel.
 *   Circulant-FFT generators are still copied on load (their spectra
 *   must be re-derived regardless), as are unpacked (> 16-bit)
 *   fixed-point weights.
 *
 * Each kernel records its concrete backend (dense / circulant-fft /
 * fixed-point dense / fixed-point circulant), its geometry, its
 * quantization format where applicable, and its weight payload — so
 * the round trip is bit-exact by construction. Version 1 stored every
 * weight as raw f64; version 2 stores fixed-point weights of width
 * <= 16 as their int16 grid codes instead (~4x smaller files at the
 * paper's 12-bit design point — code q means weight q * 2^-fracBits,
 * an exact reconstruction). Derived state is never stored: circulant
 * generator spectra and fixed-point PWL activation tables are
 * re-derived deterministically on load. Versions 1 and 2 remain
 * loadable (and serve through the same native integer datapath once
 * loaded).
 *
 * Error contract: every failure is fatal and informative
 * (ernn_fatal): unreadable file, bad magic, format version skew,
 * truncation (declared size vs. actual), checksum mismatch, and
 * structurally inconsistent payloads each name the file and the
 * specific defect — v3 adds out-of-bounds, misaligned, and
 * checksum-mismatched blob descriptors to the list. A loaded
 * artifact is therefore either fully usable or the process has
 * already said exactly why not.
 */

#ifndef ERNN_RUNTIME_ARTIFACT_HH
#define ERNN_RUNTIME_ARTIFACT_HH

#include <memory>
#include <string>

#include "runtime/compiled_model.hh"

namespace ernn::runtime
{

/** Artifact format version this build writes by default. */
constexpr std::uint32_t kArtifactFormatVersion = 3;

/** Oldest artifact format version this build still reads. */
constexpr std::uint32_t kMinArtifactFormatVersion = 1;

/** Alignment of every v3 weight blob (cache-line sized, and enough
 *  for any element type the blobs carry). */
constexpr std::size_t kArtifactBlobAlign = 64;

/**
 * Serialize a frozen model to its portable byte representation.
 * @p version selects the on-disk format: 3 (default) appends an
 * aligned zero-copy blob section, 2 packs fixed-point weights as
 * inline int16 codes, 1 writes the legacy all-f64 layout (kept so
 * compatibility with old readers stays testable and scriptable).
 * All round-trip bit-exactly.
 */
std::string serializeArtifact(
    const CompiledModel &model,
    std::uint32_t version = kArtifactFormatVersion);

/** Write serialized bytes to @p path; fatal on I/O failure. */
void saveArtifact(const CompiledModel &model, const std::string &path,
                  std::uint32_t version = kArtifactFormatVersion);

/**
 * Rebuild a CompiledModel from artifact bytes. Fatal (with the
 * specific defect) on bad magic, version skew, truncation, checksum
 * mismatch, or inconsistent payload. The result serves bit-identically
 * to the model that was saved.
 */
CompiledModel loadArtifactBytes(const std::string &bytes);

/** Load an artifact file; fatal on I/O failure or any format error. */
CompiledModel loadArtifact(const std::string &path);

/**
 * Load an artifact into shared ownership — the form a long-lived
 * server wants: the returned model can outlive the loading scope and
 * be shared (immutable) across any number of sessions and threads.
 */
std::shared_ptr<const CompiledModel>
loadArtifactShared(const std::string &path);

/** Knobs for the zero-copy load path. */
struct MapOptions
{
    /**
     * Verify every blob's FNV-1a checksum while mapping (one
     * sequential read of the weight bytes). Off, the load trusts the
     * blob section entirely — microseconds to first inference for a
     * model store that was already verified at publish time.
     */
    bool verifyBlobs = true;
};

/**
 * Memory-map an artifact and serve straight out of the mapping: a v3
 * file's dense f64 and packed int16 weight blobs are *borrowed* by
 * the kernels (zero copy — a cold model is ready to serve in
 * milliseconds), and the returned model owns the mapping for its
 * whole lifetime. v1/v2 files fall back to the copying loader, so
 * callers can use this unconditionally. Fatal on any format error,
 * with the same named-defect contract as loadArtifact.
 */
std::shared_ptr<const CompiledModel>
loadArtifactMapped(const std::string &path, MapOptions opts = {});

/** Human-readable multi-line summary of an artifact file (the CLI's
 *  `ernn info`): backend, layers, kernels, quantization metadata —
 *  and, for v3 files, the blob section layout (offset, size,
 *  alignment, mapped-in-place vs copied-on-load). */
std::string describeArtifact(const std::string &path);

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_ARTIFACT_HH
