#include "runtime/backend.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/logging.hh"
#include "runtime/thread_pool.hh"
#include "tensor/simd.hh"

namespace ernn::runtime
{

std::string
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Auto:
        return "auto";
      case BackendKind::Dense:
        return "dense";
      case BackendKind::CirculantFft:
        return "circulant-fft";
      case BackendKind::FixedPoint:
        return "fixed-point";
    }
    return "unknown";
}

// --- LinearKernel (generic batched fallback) ---------------------------

void
LinearKernel::applyBatch(const Matrix &x, Matrix &y,
                         KernelScratch &scratch) const
{
    ernn_assert(x.rows() == inDim() && y.rows() == outDim() &&
                x.cols() == y.cols(),
                "applyBatch: x is " << x.rows() << "x" << x.cols()
                << ", y is " << y.rows() << "x" << y.cols()
                << " for a " << outDim() << "x" << inDim()
                << " kernel");
    const std::size_t lanes = x.cols();
    scratch.laneIn.resize(inDim());
    scratch.laneOut.resize(outDim());
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t r = 0; r < x.rows(); ++r)
            scratch.laneIn[r] = x.at(r, l);
        // The gather buffer is reused across lanes under a stable
        // address, so any input-code staging from the previous lane
        // must be retired before apply() sees the new contents.
        ++scratch.xqEpoch;
        apply(scratch.laneIn, scratch.laneOut, scratch);
        for (std::size_t r = 0; r < y.rows(); ++r)
            y.at(r, l) = scratch.laneOut[r];
    }
}

namespace
{

/**
 * f32 input staging for dense f32 kernels: the input narrowed to
 * float once, epoch-scoped and address-keyed like the fixed-point
 * code staging, so the gate kernels sharing one step's input convert
 * it once.
 */
const float *
stageInputF32(const Real *src, std::size_t count,
              KernelScratch &scratch)
{
    if (scratch.xfSource != src || scratch.xfSize != count ||
        scratch.xfStampedEpoch != scratch.xqEpoch) {
        scratch.xf.resize(count);
        for (std::size_t i = 0; i < count; ++i)
            scratch.xf[i] = static_cast<float>(src[i]);
        scratch.xfSource = src;
        scratch.xfSize = count;
        scratch.xfStampedEpoch = scratch.xqEpoch;
    }
    return scratch.xf.data();
}

} // namespace

// --- DenseKernel -------------------------------------------------------

DenseKernel::DenseKernel(Matrix w, DensePrecision prec)
    : w_(std::move(w)), wd_(w_.data()), rows_(w_.rows()),
      cols_(w_.cols()), f32_(prec == DensePrecision::F32)
{
    if (f32_) {
        wf_.resize(rows_ * cols_);
        for (std::size_t i = 0; i < wf_.size(); ++i)
            wf_[i] = static_cast<float>(wd_[i]);
    }
}

DenseKernel::DenseKernel(const Real *w, std::size_t rows,
                         std::size_t cols)
    : wd_(w), rows_(rows), cols_(cols), borrowed_(true)
{
    ernn_assert(w != nullptr && rows > 0 && cols > 0,
                "DenseKernel: null or empty borrowed weights");
}

const Matrix &
DenseKernel::weight() const
{
    std::call_once(materialize_, [this] {
        if (!borrowed_)
            return;
        Matrix m(rows_, cols_);
        std::copy(wd_, wd_ + rows_ * cols_, m.data());
        w_ = std::move(m);
    });
    return w_;
}

void
DenseKernel::apply(const Vector &x, Vector &y,
                   KernelScratch &scratch) const
{
    ernn_assert(y.size() == rows_, "DenseKernel: y presize");
    if (f32_) {
        // The one-lane GEMM runs each row as a single ascending
        // float chain — the same chain a batch lane runs, so solo
        // and batch stay bit-identical within f32.
        const float *xf = stageInputF32(x.data(), cols_, scratch);
        simd::gemmF32Fn()(wf_.data(), rows_, cols_, xf, y.data(), 1);
        return;
    }
    std::fill(y.begin(), y.end(), 0.0);
    matvecAccRaw(wd_, rows_, cols_, x, y);
}

void
DenseKernel::applyBatch(const Matrix &x, Matrix &y,
                        KernelScratch &scratch) const
{
    ernn_assert(x.rows() == cols_ && y.rows() == rows_ &&
                x.cols() == y.cols(),
                "DenseKernel: batch shape mismatch");
    const std::size_t lanes = x.cols();
    if (lanes == 1) {
        // A one-column matrix is a vector; the solo matvec avoids
        // the lane-tile overhead.
        apply(x.raw(), y.raw(), scratch);
        return;
    }

    if (f32_) {
        // Stage the float input serially, then split output rows
        // across the pool: every row's chains are untouched by the
        // partition, so 1 thread and N threads agree bitwise.
        const float *xf =
            stageInputF32(x.data(), cols_ * lanes, scratch);
        const simd::GemmF32Fn gemm = simd::gemmF32Fn();
        const float *wf = wf_.data();
        Real *yd = y.data();
        const std::size_t cols = cols_;
        auto rows = [&](std::size_t r0, std::size_t r1) {
            gemm(wf + r0 * cols, r1 - r0, cols, xf,
                 yd + r0 * lanes, lanes);
        };
        if (scratch.pool)
            scratch.pool->parallelFor(rows_, rows);
        else
            rows(0, rows_);
        return;
    }

    y.setZero();
    const simd::GemmF64Fn gemm = simd::gemmAccF64Fn();
    const Real *xd = x.data();
    Real *yd = y.data();
    const std::size_t cols = cols_;
    auto rows = [&](std::size_t r0, std::size_t r1) {
        gemm(wd_ + r0 * cols, r1 - r0, cols, xd, yd + r0 * lanes,
             lanes);
    };
    if (scratch.pool)
        scratch.pool->parallelFor(rows_, rows);
    else
        rows(0, rows_);
}

// --- CirculantFftKernel ------------------------------------------------

CirculantFftKernel::CirculantFftKernel(
    circulant::BlockCirculantMatrix w)
    : w_(std::move(w))
{
    // Generator FFTs are part of the frozen artifact: pay them here,
    // never on the serving path.
    w_.warmSpectra();
}

void
CirculantFftKernel::apply(const Vector &x, Vector &y,
                          KernelScratch &scratch) const
{
    ernn_assert(y.size() == w_.rows(), "CirculantFftKernel: y presize");
    std::fill(y.begin(), y.end(), 0.0);
    w_.matvecAcc(x, y, scratch.fft);
}

void
CirculantFftKernel::applyBatch(const Matrix &x, Matrix &y,
                               KernelScratch &scratch) const
{
    // Block size 1 runs the naive path in apply(); keep the batched
    // form on the same arithmetic via the per-lane fallback.
    if (w_.blockSize() < 2) {
        LinearKernel::applyBatch(x, y, scratch);
        return;
    }
    ernn_assert(x.rows() == w_.cols() && y.rows() == w_.rows() &&
                x.cols() == y.cols(),
                "CirculantFftKernel: batch shape mismatch");
    if (x.cols() == 1) {
        // A one-column matrix is a vector; skip the lane staging.
        apply(x.raw(), y.raw(), scratch);
        return;
    }
    y.setZero();
    circulant::computeSegmentSpectraBatch(x, w_.blockSize(),
                                          scratch.fft);
    w_.matvecAccFromSpectraBatch(y, scratch.fft);
}

// --- FixedPointKernel --------------------------------------------------

FixedPointKernel::FixedPointKernel(const Matrix &w, int bits)
    : dense_(w), rows_(dense_.rows()), cols_(dense_.cols())
{
    format_ = quant::quantizeWithRangeAnalysis(dense_.raw(), bits);
    packWeights();
}

FixedPointKernel::FixedPointKernel(
    const circulant::BlockCirculantMatrix &w, int bits)
    : circulant_(true), circ_(w), rows_(circ_.rows()),
      cols_(circ_.cols()), block_(circ_.blockSize())
{
    format_ = quant::quantizeWithRangeAnalysis(circ_.raw(), bits);
    circ_.invalidateSpectra();
    packWeights();
}

FixedPointKernel::FixedPointKernel(Matrix quantized,
                                   quant::FixedPointFormat fmt)
    : format_(fmt), dense_(std::move(quantized)),
      rows_(dense_.rows()), cols_(dense_.cols())
{
    packWeights();
}

FixedPointKernel::FixedPointKernel(
    circulant::BlockCirculantMatrix quantized,
    quant::FixedPointFormat fmt)
    : format_(fmt), circulant_(true), circ_(std::move(quantized)),
      rows_(circ_.rows()), cols_(circ_.cols()),
      block_(circ_.blockSize())
{
    circ_.invalidateSpectra();
    packWeights();
}

FixedPointKernel::FixedPointKernel(Borrowed,
                                   const std::int16_t *codes,
                                   std::size_t rows,
                                   std::size_t cols,
                                   quant::FixedPointFormat fmt)
    : format_(fmt), qwData_(codes), qwCount_(rows * cols),
      rows_(rows), cols_(cols), packed_(true), borrowed_(true)
{
    ernn_assert(codes != nullptr && rows > 0 && cols > 0,
                "FixedPointKernel: null or empty borrowed codes");
    ernn_assert(format_.totalBits >= 2 && format_.totalBits <= 16,
                "FixedPointKernel: borrowed codes need a packed "
                "width, got " << format_.totalBits << " bits");
}

FixedPointKernel::FixedPointKernel(Borrowed,
                                   const std::int16_t *doubledCodes,
                                   std::size_t rows,
                                   std::size_t cols,
                                   std::size_t block,
                                   quant::FixedPointFormat fmt)
    : format_(fmt), circulant_(true), qwData_(doubledCodes),
      rows_(rows), cols_(cols), block_(block), packed_(true),
      borrowed_(true)
{
    ernn_assert(doubledCodes != nullptr && block > 0 &&
                rows % block == 0 && cols % block == 0,
                "FixedPointKernel: bad borrowed circulant geometry "
                << rows << "x" << cols << " block " << block);
    ernn_assert(format_.totalBits >= 2 && format_.totalBits <= 16,
                "FixedPointKernel: borrowed codes need a packed "
                "width, got " << format_.totalBits << " bits");
    qwCount_ = (rows_ / block_) * (cols_ / block_) * 2 * block_;
}

void
FixedPointKernel::ensureF64() const
{
    std::call_once(materialize_, [this] {
        if (!borrowed_)
            return;
        // Decode the grid values back out of the codes. Exact: every
        // code maps to one grid point, so a materialize -> re-pack
        // round trip reproduces the codes bit-for-bit.
        if (!circulant_) {
            Matrix m(rows_, cols_);
            for (std::size_t i = 0; i < rows_ * cols_; ++i)
                m.data()[i] = format_.fromQ(qwData_[i]);
            dense_ = std::move(m);
            return;
        }
        // The doubled layout repeats each generator twice; the first
        // block_ entries of each 2*block_ slice are the generator.
        circulant::BlockCirculantMatrix c(rows_, cols_, block_);
        const std::size_t blocks =
            (rows_ / block_) * (cols_ / block_);
        for (std::size_t b = 0; b < blocks; ++b)
            for (std::size_t j = 0; j < block_; ++j)
                c.raw()[b * block_ + j] =
                    format_.fromQ(qwData_[b * 2 * block_ + j]);
        c.invalidateSpectra();
        circ_ = std::move(c);
    });
}

void
FixedPointKernel::packWeights()
{
    packed_ = false;
    qw_.clear();
    qwData_ = nullptr;
    qwCount_ = 0;
    if (format_.totalBits < 2 || format_.totalBits > 16 ||
        format_.fracBits < 0 || format_.fracBits > 62)
        return;

    const std::vector<Real> &vals =
        circulant_ ? circ_.raw() : dense_.raw();
    const Real lo = static_cast<Real>(format_.minQ());
    const Real hi = static_cast<Real>(format_.maxQ());

    // Codes in storage order first; verify while converting. The
    // quantizing constructors produce on-grid values by definition;
    // only a crafted artifact can fail here, and it falls back to
    // the emulation instead of dying.
    std::vector<std::int16_t> codes(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i) {
        const Real scaled = std::ldexp(vals[i], format_.fracBits);
        if (!(scaled >= lo && scaled <= hi))
            return;
        const auto q = static_cast<std::int64_t>(std::llrint(scaled));
        if (format_.fromQ(q) != vals[i])
            return; // off the quantization grid
        codes[i] = static_cast<std::int16_t>(q);
    }

    if (!circulant_) {
        qw_ = std::move(codes);
    } else {
        // Doubled generators: gd[k] = gen[k % Lb] for k in [0, 2Lb),
        // so block row r of W (W[r][c] = gen[(c - r) mod Lb]) is the
        // contiguous slice gd[Lb - r .. 2Lb - r).
        const std::size_t lb = circ_.blockSize();
        const std::size_t blocks =
            circ_.blockRows() * circ_.blockCols();
        qw_.resize(blocks * 2 * lb);
        for (std::size_t b = 0; b < blocks; ++b) {
            const std::int16_t *g = codes.data() + b * lb;
            std::int16_t *gd = qw_.data() + b * 2 * lb;
            std::copy(g, g + lb, gd);
            std::copy(g, g + lb, gd + lb);
        }
    }
    qwData_ = qw_.data();
    qwCount_ = qw_.size();
    packed_ = true;
}

const Matrix &
FixedPointKernel::denseWeight() const
{
    ernn_assert(!circulant_,
                "FixedPointKernel: dense view of circulant storage");
    ensureF64();
    return dense_;
}

const circulant::BlockCirculantMatrix &
FixedPointKernel::circulantWeight() const
{
    ernn_assert(circulant_,
                "FixedPointKernel: circulant view of dense storage");
    ensureF64();
    return circ_;
}

std::size_t
FixedPointKernel::inDim() const
{
    return cols_;
}

std::size_t
FixedPointKernel::outDim() const
{
    return rows_;
}

std::size_t
FixedPointKernel::storedParams() const
{
    return circulant_ ? rows_ * cols_ / block_ : rows_ * cols_;
}

const std::vector<Real> &
FixedPointKernel::quantizedWeights() const
{
    ensureF64();
    return circulant_ ? circ_.raw() : dense_.raw();
}

void
FixedPointKernel::apply(const Vector &x, Vector &y,
                        KernelScratch &scratch) const
{
    ernn_assert(y.size() == outDim(), "FixedPointKernel: y presize");
    if (packed_ && scratch.valueFormat.totalBits >= 2 &&
        scratch.valueFormat.totalBits <= 16) {
        applyInteger(x, y, scratch);
        return;
    }
    applyEmulated(x, y);
}

void
FixedPointKernel::applyBatch(const Matrix &x, Matrix &y,
                             KernelScratch &scratch) const
{
    if (packed_ && scratch.valueFormat.totalBits >= 2 &&
        scratch.valueFormat.totalBits <= 16) {
        applyIntegerBatch(x, y, scratch);
        return;
    }
    // Emulation oracle: route each lane through the exact solo f64
    // path (the fallback calls apply(), which lands in applyEmulated
    // whenever the integer path is off).
    LinearKernel::applyBatch(x, y, scratch);
}

void
FixedPointKernel::applyEmulated(const Vector &x, Vector &y) const
{
    ernn_assert(y.size() == outDim(), "FixedPointKernel: y presize");
    ensureF64();
    std::fill(y.begin(), y.end(), 0.0);
    if (circulant_) {
        // Time-domain MACs, as the PE array evaluates a circulant
        // block in fixed point.
        circ_.matvecAcc(x, y, circulant::MatvecMode::Naive);
    } else {
        dense_.matvecAcc(x, y);
    }
}

namespace
{

/**
 * Solo-path input-code staging. The session keeps every kernel
 * input on the value grid (frames included), so the conversion is
 * exact — and the staging is reused when the same vector feeds
 * several kernels within one step (epoch-scoped, see
 * KernelScratch::xq). The batched path stages its own lane-major
 * int16 transpose (KernelScratch::xqh) instead.
 */
const std::int16_t *
stageInputCodes(const Real *src, std::size_t n,
                KernelScratch &scratch)
{
    const quant::FixedPointFormat &vf = scratch.valueFormat;
    if (scratch.xqSource != src || scratch.xqSize != n ||
        scratch.xqStampedEpoch != scratch.xqEpoch) {
        scratch.xq.resize(n);
        // Codes fit int16 because the session pins every kernel
        // input to the <= 16-bit value grid — the same argument the
        // batched staging relies on.
        for (std::size_t i = 0; i < n; ++i)
            scratch.xq[i] = static_cast<std::int16_t>(vf.toQ(src[i]));
        scratch.xqSource = src;
        scratch.xqSize = n;
        scratch.xqStampedEpoch = scratch.xqEpoch;
    }
    return scratch.xq.data();
}

} // namespace

void
FixedPointKernel::applyInteger(const Vector &x, Vector &y,
                               KernelScratch &scratch) const
{
    const quant::FixedPointFormat &vf = scratch.valueFormat;
    const int shift = format_.fracBits;

    const std::size_t n = x.size();
    const std::int16_t *xq = stageInputCodes(x.data(), n, scratch);
    const std::size_t chunk =
        simd::safeChunkLen(format_.totalBits, vf.totalBits);
    const simd::DotCodesFn dot = simd::dotCodesFn();

    if (!circulant_) {
        // Row-blocked matvec: the vector levels share each x load
        // across four weight rows (the single-row dot is load-port
        // bound). Same per-row sums, so same bits at every level.
        scratch.yq.resize(rows_);
        simd::matvecCodesFn()(qwData_, rows_, n, xq,
                              scratch.yq.data(), chunk);
        for (std::size_t r = 0; r < rows_; ++r)
            y[r] = vf.fromQ(vf.requantize(scratch.yq[r], shift));
        return;
    }

    const std::size_t lb = block_;
    const std::size_t p = rows_ / lb;
    const std::size_t q = cols_ / lb;
    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t r = 0; r < lb; ++r) {
            std::int64_t acc = 0;
            for (std::size_t j = 0; j < q; ++j) {
                // Contiguous row slice of the doubled generator.
                const std::int16_t *g =
                    qwData_ + (i * q + j) * 2 * lb + (lb - r);
                acc += dot(g, xq + j * lb, lb, chunk);
            }
            y[i * lb + r] = vf.fromQ(vf.requantize(acc, shift));
        }
    }
}

void
FixedPointKernel::applyIntegerBatch(const Matrix &x, Matrix &y,
                                    KernelScratch &scratch) const
{
    ernn_assert(x.rows() == inDim() && y.rows() == outDim() &&
                x.cols() == y.cols(),
                "FixedPointKernel: batch shape mismatch");
    const quant::FixedPointFormat &vf = scratch.valueFormat;
    const int shift = format_.fracBits;
    const std::size_t n = x.rows();
    const std::size_t lanes = x.cols();

    // A single lane is exactly the solo path; skip the transpose.
    if (lanes == 1) {
        applyInteger(x.raw(), y.raw(), scratch);
        return;
    }

    // Stage the matrix as lane-major int16 codes (epoch-scoped like
    // the solo staging; the gate kernels sharing this input within
    // one step reuse the same transpose). Codes fit int16 because
    // the session pins every input to the <= 16-bit value grid.
    if (scratch.xqhSource != x.data() ||
        scratch.xqhSize != n * lanes ||
        scratch.xqhStampedEpoch != scratch.xqEpoch) {
        scratch.xqh.resize(n * lanes);
        const Real *xd = x.data();
        for (std::size_t l = 0; l < lanes; ++l) {
            std::int16_t *dst = scratch.xqh.data() + l * n;
            for (std::size_t c = 0; c < n; ++c)
                dst[c] = static_cast<std::int16_t>(
                    vf.toQ(xd[c * lanes + l]));
        }
        scratch.xqhSource = x.data();
        scratch.xqhSize = n * lanes;
        scratch.xqhStampedEpoch = scratch.xqEpoch;
    }
    const std::int16_t *xqh = scratch.xqh.data();
    const std::size_t chunk = simd::safeChunkLen(format_.totalBits,
                                                 vf.totalBits);
    const simd::DotCodesFn dot = simd::dotCodesFn();
    Real *yd = y.data();

    if (!circulant_) {
        // Staging done, the rest is embarrassingly parallel over
        // output rows: each row writes its own y slice, so the pool
        // split changes nothing about the arithmetic.
        auto rowRange = [&](std::size_t r0, std::size_t r1) {
            for (std::size_t r = r0; r < r1; ++r) {
                // The weight row stays cache-hot across every lane:
                // the batch streams the weights once per call, not
                // per lane.
                const std::int16_t *row = qwData_ + r * n;
                Real *yr = yd + r * lanes;
                for (std::size_t l = 0; l < lanes; ++l)
                    yr[l] = vf.fromQ(vf.requantize(
                        dot(row, xqh + l * n, n, chunk), shift));
            }
        };
        if (scratch.pool)
            scratch.pool->parallelFor(rows_, rowRange);
        else
            rowRange(0, rows_);
        return;
    }

    const std::size_t lb = block_;
    const std::size_t p = rows_ / lb;
    const std::size_t q = cols_ / lb;
    // Parallel over block rows: block row i owns y rows
    // [i*lb, (i+1)*lb), so ranges of i write disjoint output.
    auto blockRange = [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            for (std::size_t r = 0; r < lb; ++r) {
                Real *yr = yd + (i * lb + r) * lanes;
                for (std::size_t l = 0; l < lanes; ++l) {
                    const std::int16_t *xh = xqh + l * n;
                    std::int64_t acc = 0;
                    for (std::size_t j = 0; j < q; ++j) {
                        // Contiguous row slice of the doubled
                        // generator against the lane's contiguous
                        // segment codes.
                        const std::int16_t *g =
                            qwData_ + (i * q + j) * 2 * lb + (lb - r);
                        acc += dot(g, xh + j * lb, lb, chunk);
                    }
                    yr[l] = vf.fromQ(vf.requantize(acc, shift));
                }
            }
        }
    };
    if (scratch.pool)
        scratch.pool->parallelFor(p, blockRange);
    else
        blockRange(0, p);
}

// --- Registry ----------------------------------------------------------

KernelRegistry::KernelRegistry()
{
    registerFactory(
        "dense",
        [](const nn::LinearOp &op, const CompileOptions &opts)
            -> std::unique_ptr<LinearKernel> {
            if (const auto *circ = op.circulantWeight())
                return std::make_unique<DenseKernel>(
                    circ->toDense(), opts.densePrecision);
            const auto *w = op.denseWeight();
            ernn_assert(w, "dense backend: operator exposes no weight");
            return std::make_unique<DenseKernel>(
                *w, opts.densePrecision);
        });

    registerFactory(
        "circulant-fft",
        [](const nn::LinearOp &op, const CompileOptions &)
            -> std::unique_ptr<LinearKernel> {
            const auto *circ = op.circulantWeight();
            ernn_assert(circ, "circulant-fft backend: operator has "
                              "no circulant weight");
            return std::make_unique<CirculantFftKernel>(*circ);
        });

    registerFactory(
        "fixed-point",
        [](const nn::LinearOp &op, const CompileOptions &opts)
            -> std::unique_ptr<LinearKernel> {
            if (const auto *circ = op.circulantWeight())
                return std::make_unique<FixedPointKernel>(
                    *circ, opts.fixedPointBits);
            const auto *w = op.denseWeight();
            ernn_assert(w, "fixed-point backend: operator exposes no "
                           "weight");
            return std::make_unique<FixedPointKernel>(
                *w, opts.fixedPointBits);
        });
}

KernelRegistry &
KernelRegistry::instance()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::registerFactory(const std::string &name,
                                KernelFactory fn)
{
    ernn_assert(fn, "KernelRegistry: null factory for " << name);
    factories_[name] = std::move(fn);
}

bool
KernelRegistry::has(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
KernelRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &kv : factories_)
        out.push_back(kv.first);
    return out;
}

std::unique_ptr<LinearKernel>
KernelRegistry::make(const std::string &name, const nn::LinearOp &op,
                     const CompileOptions &opts) const
{
    auto it = factories_.find(name);
    ernn_assert(it != factories_.end(),
                "KernelRegistry: unknown backend '" << name << "'");
    auto kernel = it->second(op, opts);
    ernn_assert(kernel, "KernelRegistry: factory '" << name
                << "' returned nothing");
    ernn_assert(kernel->inDim() == op.inDim() &&
                kernel->outDim() == op.outDim(),
                "KernelRegistry: kernel '" << name
                << "' shape mismatch");
    return kernel;
}

std::string
resolveBackend(BackendKind kind, const nn::LinearOp &op)
{
    switch (kind) {
      case BackendKind::Dense:
        return "dense";
      case BackendKind::FixedPoint:
        return "fixed-point";
      case BackendKind::Auto:
      case BackendKind::CirculantFft:
        return op.circulantWeight() ? "circulant-fft" : "dense";
    }
    return "dense";
}

} // namespace ernn::runtime
