#include "runtime/backend.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/logging.hh"

namespace ernn::runtime
{

std::string
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Auto:
        return "auto";
      case BackendKind::Dense:
        return "dense";
      case BackendKind::CirculantFft:
        return "circulant-fft";
      case BackendKind::FixedPoint:
        return "fixed-point";
    }
    return "unknown";
}

// --- DenseKernel -------------------------------------------------------

DenseKernel::DenseKernel(Matrix w)
    : w_(std::move(w))
{
}

void
DenseKernel::apply(const Vector &x, Vector &y, KernelScratch &) const
{
    ernn_assert(y.size() == w_.rows(), "DenseKernel: y presize");
    std::fill(y.begin(), y.end(), 0.0);
    w_.matvecAcc(x, y);
}

// --- CirculantFftKernel ------------------------------------------------

CirculantFftKernel::CirculantFftKernel(
    circulant::BlockCirculantMatrix w)
    : w_(std::move(w))
{
    // Generator FFTs are part of the frozen artifact: pay them here,
    // never on the serving path.
    w_.warmSpectra();
}

void
CirculantFftKernel::apply(const Vector &x, Vector &y,
                          KernelScratch &scratch) const
{
    ernn_assert(y.size() == w_.rows(), "CirculantFftKernel: y presize");
    std::fill(y.begin(), y.end(), 0.0);
    w_.matvecAcc(x, y, scratch.fft);
}

// --- FixedPointKernel --------------------------------------------------

FixedPointKernel::FixedPointKernel(const Matrix &w, int bits)
    : dense_(w)
{
    format_ = quant::quantizeWithRangeAnalysis(dense_.raw(), bits);
}

FixedPointKernel::FixedPointKernel(
    const circulant::BlockCirculantMatrix &w, int bits)
    : circulant_(true), circ_(w)
{
    format_ = quant::quantizeWithRangeAnalysis(circ_.raw(), bits);
    circ_.invalidateSpectra();
}

FixedPointKernel::FixedPointKernel(Matrix quantized,
                                   quant::FixedPointFormat fmt)
    : format_(fmt), dense_(std::move(quantized))
{
}

FixedPointKernel::FixedPointKernel(
    circulant::BlockCirculantMatrix quantized,
    quant::FixedPointFormat fmt)
    : format_(fmt), circulant_(true), circ_(std::move(quantized))
{
    circ_.invalidateSpectra();
}

const Matrix &
FixedPointKernel::denseWeight() const
{
    ernn_assert(!circulant_,
                "FixedPointKernel: dense view of circulant storage");
    return dense_;
}

const circulant::BlockCirculantMatrix &
FixedPointKernel::circulantWeight() const
{
    ernn_assert(circulant_,
                "FixedPointKernel: circulant view of dense storage");
    return circ_;
}

std::size_t
FixedPointKernel::inDim() const
{
    return circulant_ ? circ_.cols() : dense_.cols();
}

std::size_t
FixedPointKernel::outDim() const
{
    return circulant_ ? circ_.rows() : dense_.rows();
}

std::size_t
FixedPointKernel::storedParams() const
{
    return circulant_ ? circ_.paramCount() : dense_.size();
}

const std::vector<Real> &
FixedPointKernel::quantizedWeights() const
{
    return circulant_ ? circ_.raw() : dense_.raw();
}

void
FixedPointKernel::apply(const Vector &x, Vector &y,
                        KernelScratch &) const
{
    ernn_assert(y.size() == outDim(), "FixedPointKernel: y presize");
    std::fill(y.begin(), y.end(), 0.0);
    if (circulant_) {
        // Time-domain MACs, as the PE array evaluates a circulant
        // block in fixed point.
        circ_.matvecAcc(x, y, circulant::MatvecMode::Naive);
    } else {
        dense_.matvecAcc(x, y);
    }
}

// --- Registry ----------------------------------------------------------

KernelRegistry::KernelRegistry()
{
    registerFactory(
        "dense",
        [](const nn::LinearOp &op, const CompileOptions &)
            -> std::unique_ptr<LinearKernel> {
            if (const auto *circ = op.circulantWeight())
                return std::make_unique<DenseKernel>(circ->toDense());
            const auto *w = op.denseWeight();
            ernn_assert(w, "dense backend: operator exposes no weight");
            return std::make_unique<DenseKernel>(*w);
        });

    registerFactory(
        "circulant-fft",
        [](const nn::LinearOp &op, const CompileOptions &)
            -> std::unique_ptr<LinearKernel> {
            const auto *circ = op.circulantWeight();
            ernn_assert(circ, "circulant-fft backend: operator has "
                              "no circulant weight");
            return std::make_unique<CirculantFftKernel>(*circ);
        });

    registerFactory(
        "fixed-point",
        [](const nn::LinearOp &op, const CompileOptions &opts)
            -> std::unique_ptr<LinearKernel> {
            if (const auto *circ = op.circulantWeight())
                return std::make_unique<FixedPointKernel>(
                    *circ, opts.fixedPointBits);
            const auto *w = op.denseWeight();
            ernn_assert(w, "fixed-point backend: operator exposes no "
                           "weight");
            return std::make_unique<FixedPointKernel>(
                *w, opts.fixedPointBits);
        });
}

KernelRegistry &
KernelRegistry::instance()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::registerFactory(const std::string &name,
                                KernelFactory fn)
{
    ernn_assert(fn, "KernelRegistry: null factory for " << name);
    factories_[name] = std::move(fn);
}

bool
KernelRegistry::has(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
KernelRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &kv : factories_)
        out.push_back(kv.first);
    return out;
}

std::unique_ptr<LinearKernel>
KernelRegistry::make(const std::string &name, const nn::LinearOp &op,
                     const CompileOptions &opts) const
{
    auto it = factories_.find(name);
    ernn_assert(it != factories_.end(),
                "KernelRegistry: unknown backend '" << name << "'");
    auto kernel = it->second(op, opts);
    ernn_assert(kernel, "KernelRegistry: factory '" << name
                << "' returned nothing");
    ernn_assert(kernel->inDim() == op.inDim() &&
                kernel->outDim() == op.outDim(),
                "KernelRegistry: kernel '" << name
                << "' shape mismatch");
    return kernel;
}

std::string
resolveBackend(BackendKind kind, const nn::LinearOp &op)
{
    switch (kind) {
      case BackendKind::Dense:
        return "dense";
      case BackendKind::FixedPoint:
        return "fixed-point";
      case BackendKind::Auto:
      case BackendKind::CirculantFft:
        return op.circulantWeight() ? "circulant-fft" : "dense";
    }
    return "dense";
}

} // namespace ernn::runtime
