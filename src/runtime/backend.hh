/**
 * @file
 * Inference kernel backends. A trained nn::LinearOp is *frozen* into
 * an immutable LinearKernel selected from the backend registry:
 *
 *  - Dense        plain row-major matvec (baseline rows, classifier);
 *  - CirculantFFT the paper's production datapath: precomputed
 *                 generator FFTs, frequency-domain accumulation, and
 *                 a reusable per-session workspace so the steady
 *                 state performs no heap allocation (Fig. 4/7);
 *  - FixedPoint   the deployed-accelerator datapath: weights rounded
 *                 bit-exactly as quant::quantizeParams would round
 *                 them, time-domain MACs like the PE array, with
 *                 value quantization and the Phase II activation
 *                 tables applied by the session datapath.
 *
 * Kernels are shared by every session of a CompiledModel and hold no
 * mutable state; all scratch lives in the session's KernelScratch.
 */

#ifndef ERNN_RUNTIME_BACKEND_HH
#define ERNN_RUNTIME_BACKEND_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circulant/block_circulant.hh"
#include "nn/linear_op.hh"
#include "quant/fixed_point.hh"

namespace ernn::runtime
{

/** Backend families a model can be compiled against. */
enum class BackendKind
{
    Auto,         //!< per-weight: CirculantFFT where circulant, else Dense
    Dense,        //!< force dense kernels (circulant weights materialized)
    CirculantFft, //!< FFT path for circulant weights, dense elsewhere
    FixedPoint,   //!< bit-accurate deployed datapath
};

/** Human-readable backend name ("auto", "dense", ...). */
std::string backendKindName(BackendKind kind);

/** Options fixed at compile() time and immutable afterwards. */
struct CompileOptions
{
    BackendKind backend = BackendKind::Auto;

    /** FixedPoint backend: total bits per weight and per value
     *  (the paper's 12-bit design point). */
    int fixedPointBits = 12;

    /** FixedPoint backend: PWL activation table segments and range
     *  (Phase II's activation implementation, Sec. VIII-B1). */
    std::size_t activationSegments = 128;
    Real activationRange = 8.0;
};

/**
 * Per-session mutable scratch handed to every kernel call. Buffers
 * grow to the largest geometry seen and are reused, so the steady
 * state allocates nothing.
 */
struct KernelScratch
{
    circulant::FftWorkspace fft;
};

/** Immutable y = W x kernel, shared across sessions. */
class LinearKernel
{
  public:
    virtual ~LinearKernel() = default;

    virtual std::size_t inDim() const = 0;
    virtual std::size_t outDim() const = 0;

    /**
     * y = W x. @p y must be presized to outDim(); implementations
     * must not allocate once @p scratch is warm.
     */
    virtual void apply(const Vector &x, Vector &y,
                       KernelScratch &scratch) const = 0;

    /** Registry name of the backend that produced this kernel. */
    virtual std::string backendName() const = 0;

    /** Stored parameter count (after compression). */
    virtual std::size_t storedParams() const = 0;
};

/** Dense kernel: an owned weight copy, row-major matvec. */
class DenseKernel : public LinearKernel
{
  public:
    explicit DenseKernel(Matrix w);

    std::size_t inDim() const override { return w_.cols(); }
    std::size_t outDim() const override { return w_.rows(); }
    void apply(const Vector &x, Vector &y,
               KernelScratch &scratch) const override;
    std::string backendName() const override { return "dense"; }
    std::size_t storedParams() const override { return w_.size(); }

    /** The owned weight copy (artifact serialization). */
    const Matrix &weight() const { return w_; }

  private:
    Matrix w_;
};

/**
 * Block-circulant FFT kernel: owns the generators with their spectra
 * precomputed at compile() time; matvecs run the decoupled FFT path
 * through the session's shared workspace.
 */
class CirculantFftKernel : public LinearKernel
{
  public:
    explicit CirculantFftKernel(circulant::BlockCirculantMatrix w);

    std::size_t inDim() const override { return w_.cols(); }
    std::size_t outDim() const override { return w_.rows(); }
    void apply(const Vector &x, Vector &y,
               KernelScratch &scratch) const override;
    std::string backendName() const override { return "circulant-fft"; }
    std::size_t storedParams() const override { return w_.paramCount(); }

    const circulant::BlockCirculantMatrix &weight() const { return w_; }

  private:
    circulant::BlockCirculantMatrix w_;
};

/**
 * Fixed-point kernel: weights quantized per-tensor exactly as
 * quant::quantizeParams rounds them (range analysis -> chooseFormat
 * -> round-to-nearest with saturation), evaluated with time-domain
 * MACs as the PE array computes them. Dense and circulant weights
 * both supported; circulant storage stays compressed (generators).
 */
class FixedPointKernel : public LinearKernel
{
  public:
    /** Quantize a dense operator's weights. */
    FixedPointKernel(const Matrix &w, int bits);

    /** Quantize a circulant operator's generators. */
    FixedPointKernel(const circulant::BlockCirculantMatrix &w,
                     int bits);

    /**
     * Rehydrate from *already-quantized* dense weights and the format
     * range analysis chose for them (artifact load path). No rounding
     * is applied: the values are trusted to be on the quantization
     * grid, so a loaded kernel is bit-identical to the saved one.
     */
    FixedPointKernel(Matrix quantized, quant::FixedPointFormat fmt);

    /** Rehydrate from already-quantized circulant generators. */
    FixedPointKernel(circulant::BlockCirculantMatrix quantized,
                     quant::FixedPointFormat fmt);

    std::size_t inDim() const override;
    std::size_t outDim() const override;
    void apply(const Vector &x, Vector &y,
               KernelScratch &scratch) const override;
    std::string backendName() const override { return "fixed-point"; }
    std::size_t storedParams() const override;

    /** The per-tensor static scaling chosen by range analysis. */
    const quant::FixedPointFormat &weightFormat() const
    {
        return format_;
    }

    /** Flat quantized weight storage (dense entries or generators). */
    const std::vector<Real> &quantizedWeights() const;

    /// @{ Storage introspection (artifact serialization).
    bool isCirculant() const { return circulant_; }
    const Matrix &denseWeight() const;
    const circulant::BlockCirculantMatrix &circulantWeight() const;
    /// @}

  private:
    quant::FixedPointFormat format_;
    bool circulant_ = false;
    Matrix dense_;
    circulant::BlockCirculantMatrix circ_;
};

/** Factory: freeze one trained operator into a kernel. */
using KernelFactory = std::function<std::unique_ptr<LinearKernel>(
    const nn::LinearOp &op, const CompileOptions &opts)>;

/**
 * Name -> factory registry the compiler selects kernels from. The
 * three built-in backends ("dense", "circulant-fft", "fixed-point")
 * are registered on first use; extensions may add their own.
 */
class KernelRegistry
{
  public:
    static KernelRegistry &instance();

    void registerFactory(const std::string &name, KernelFactory fn);
    bool has(const std::string &name) const;
    std::vector<std::string> names() const;

    std::unique_ptr<LinearKernel> make(const std::string &name,
                                       const nn::LinearOp &op,
                                       const CompileOptions &opts) const;

  private:
    KernelRegistry();
    std::map<std::string, KernelFactory> factories_;
};

/**
 * Resolve the registry name for one operator under a backend choice:
 * Auto and CirculantFft pick "circulant-fft" for circulant weights
 * and "dense" otherwise; Dense materializes everything dense;
 * FixedPoint quantizes everything.
 */
std::string resolveBackend(BackendKind kind, const nn::LinearOp &op);

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_BACKEND_HH
