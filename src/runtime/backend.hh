/**
 * @file
 * Inference kernel backends. A trained nn::LinearOp is *frozen* into
 * an immutable LinearKernel selected from the backend registry:
 *
 *  - Dense        plain row-major matvec (baseline rows, classifier);
 *  - CirculantFFT the paper's production datapath: precomputed
 *                 generator FFTs, frequency-domain accumulation, and
 *                 a reusable per-session workspace so the steady
 *                 state performs no heap allocation (Fig. 4/7);
 *  - FixedPoint   the deployed-accelerator datapath: weights rounded
 *                 bit-exactly as quant::quantizeParams would round
 *                 them, then *packed as int16 codes* and evaluated
 *                 with int64-accumulated integer MACs plus
 *                 shift-based requantization — the arithmetic the
 *                 12-bit PE array performs (Sec. VIII). The f64
 *                 emulation is kept as applyEmulated(), the
 *                 bit-exactness oracle; both produce identical bits
 *                 because every product and partial sum is an exact
 *                 integer multiple of the grid step.
 *
 * Kernels are shared by every session of a CompiledModel and hold no
 * mutable state; all scratch lives in the session's KernelScratch.
 */

#ifndef ERNN_RUNTIME_BACKEND_HH
#define ERNN_RUNTIME_BACKEND_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "circulant/block_circulant.hh"
#include "nn/linear_op.hh"
#include "quant/fixed_point.hh"

namespace ernn::runtime
{

/** Backend families a model can be compiled against. */
enum class BackendKind
{
    Auto,         //!< per-weight: CirculantFFT where circulant, else Dense
    Dense,        //!< force dense kernels (circulant weights materialized)
    CirculantFft, //!< FFT path for circulant weights, dense elsewhere
    FixedPoint,   //!< bit-accurate deployed datapath
};

/** Human-readable backend name ("auto", "dense", ...). */
std::string backendKindName(BackendKind kind);

class ThreadPool;

/** Arithmetic width of the Dense backend's kernels. */
enum class DensePrecision
{
    F64, //!< double weights and accumulation (the default)
    F32, //!< float weights and accumulation (opt-in, approximate
         //!< vs F64; scalar and SIMD f32 are bit-identical)
};

/** Options fixed at compile() time and immutable afterwards. */
struct CompileOptions
{
    BackendKind backend = BackendKind::Auto;

    /** FixedPoint backend: total bits per weight and per value
     *  (the paper's 12-bit design point). */
    int fixedPointBits = 12;

    /** FixedPoint backend: PWL activation table segments and range
     *  (Phase II's activation implementation, Sec. VIII-B1). */
    std::size_t activationSegments = 128;
    Real activationRange = 8.0;

    /**
     * FixedPoint backend: run the f64 reference emulation instead of
     * the native int16 datapath. Results are bit-identical by
     * construction (the emulation is the oracle the integer path is
     * tested against); emulation is also what widths above 16 bits
     * fall back to regardless of this flag.
     */
    bool fixedPointEmulation = false;

    /**
     * Dense backend: arithmetic width of owned dense kernels. F32
     * halves the weight footprint and doubles the SIMD lane count;
     * outputs differ from F64 within float rounding. Kernels that
     * *borrow* their weights (mmap artifacts) always serve f64.
     * Runtime-only: NOT serialized into artifacts — a loaded
     * artifact rehydrates with the default (F64).
     */
    DensePrecision densePrecision = DensePrecision::F64;

    /**
     * Default intra-session parallelism: how many threads each
     * InferenceSession splits its per-timestep kernel row blocks
     * across. 1 = serial (today's behavior). Sessions and servers
     * can override per instance (createSession / ServerOptions).
     * Runtime-only: NOT serialized into artifacts.
     */
    std::size_t computeThreads = 1;
};

/**
 * Per-session mutable scratch handed to every kernel call. Buffers
 * grow to the largest geometry seen and are reused, so the steady
 * state allocates nothing.
 */
struct KernelScratch
{
    circulant::FftWorkspace fft;

    /**
     * The session's compute pool (owned by the session, null = run
     * serial). Kernels with independent output-row blocks split them
     * across the pool; outputs are bit-identical either way because
     * every row keeps its own accumulation chain. Kernels must stage
     * shared inputs (xq/xqh/xf) *before* entering the pool — staging
     * is not thread-safe.
     */
    ThreadPool *pool = nullptr;

    /**
     * Armed (totalBits != 0) by sessions over a native-integer
     * FixedPoint model: the value grid every kernel input arrives on
     * and every kernel output is requantized to. Unarmed scratch
     * makes FixedPoint kernels fall back to the f64 emulation, so
     * non-fixed-point backends and the oracle mode pay nothing.
     */
    quant::FixedPointFormat valueFormat{0, 0};

    /**
     * Input value-code staging, reused across the kernels of one
     * step: the four LSTM gate matrices all consume the same x (and
     * the same y_{t-1}), so their conversion is done once. Validity
     * is scoped by xqEpoch — the session bumps it every step(),
     * after which the recurrent state mutates under an unchanged
     * address. Anything driving kernels directly with vectors that
     * may alias must bump xqEpoch between calls the same way.
     */
    std::vector<std::int16_t> xq;
    const Real *xqSource = nullptr;    //!< address the codes came from
    std::size_t xqSize = 0;
    std::uint64_t xqEpoch = 0;         //!< bumped per session step
    std::uint64_t xqStampedEpoch = ~std::uint64_t{0};

    /** Raw int64 row accumulators of one solo integer matvec (the
     *  simd::matvecCodes output, requantized into y right after).
     *  Plain scratch — no staging/epoch semantics. */
    std::vector<std::int64_t> yq;

    /**
     * Batched input value-code staging: the (features x lanes)
     * activation matrix transposed into lane-major int16 codes
     * (lane l's codes at xqh[l * features], contiguous), so the
     * integer GEMM runs int16 x int16 dot products over two
     * contiguous streams — the multiply-accumulate shape compilers
     * turn into widening-multiply SIMD. Epoch-scoped exactly like
     * xq; the four gate kernels of one step share one staging.
     */
    std::vector<std::int16_t> xqh;
    const Real *xqhSource = nullptr;
    std::size_t xqhSize = 0;
    std::uint64_t xqhStampedEpoch = ~std::uint64_t{0};

    /**
     * f32 input staging for the opt-in dense f32 mode: the input
     * narrowed to float once per step (feature-major, the f64
     * layout), shared by the gate kernels exactly like xq/xqh.
     * Epoch-scoped the same way.
     */
    std::vector<float> xf;
    const Real *xfSource = nullptr;
    std::size_t xfSize = 0;
    std::uint64_t xfStampedEpoch = ~std::uint64_t{0};

    /** Per-lane gather/scatter staging for the generic applyBatch
     *  fallback (kernels without a native batched path). */
    Vector laneIn, laneOut;

    /**
     * Release every lane-proportional staging buffer (the batched
     * int16 transpose and the per-lane FFT spectra/accumulators).
     * Called by the session's lane-pool high-water cap so one
     * oversized batch cannot pin per-lane scratch either.
     */
    void releaseLaneStaging()
    {
        xqh.clear();
        xqh.shrink_to_fit();
        xqhSource = nullptr;
        xqhSize = 0;
        xqhStampedEpoch = ~std::uint64_t{0};
        xf.clear();
        xf.shrink_to_fit();
        xfSource = nullptr;
        xfSize = 0;
        xfStampedEpoch = ~std::uint64_t{0};
        fft.laneSpec.clear();
        fft.laneSpec.shrink_to_fit();
        fft.laneSpecLanes = fft.laneSpecSegs = fft.laneSpecBins = 0;
        fft.laneAcc.clear();
        fft.laneAcc.shrink_to_fit();
    }
};

/** Immutable y = W x kernel, shared across sessions. */
class LinearKernel
{
  public:
    virtual ~LinearKernel() = default;

    virtual std::size_t inDim() const = 0;
    virtual std::size_t outDim() const = 0;

    /**
     * y = W x. @p y must be presized to outDim(); implementations
     * must not allocate once @p scratch is warm.
     */
    virtual void apply(const Vector &x, Vector &y,
                       KernelScratch &scratch) const = 0;

    /**
     * Batch-major form: Y = W X over a (inDim x lanes) activation
     * matrix, one utterance lane per column. Every built-in backend
     * overrides this with a GEMM-shaped kernel that streams the
     * weights once per call instead of once per lane; the base-class
     * fallback gathers each lane through apply(), so column l of Y is
     * bit-identical to apply() on column l of X for every
     * implementation. @p y must be presized to outDim() x X.cols();
     * implementations must not allocate once @p scratch is warm.
     */
    virtual void applyBatch(const Matrix &x, Matrix &y,
                            KernelScratch &scratch) const;

    /** Registry name of the backend that produced this kernel. */
    virtual std::string backendName() const = 0;

    /** Stored parameter count (after compression). */
    virtual std::size_t storedParams() const = 0;
};

/**
 * Dense kernel: row-major matvec over weights it either owns or
 * *borrows*. A borrowed kernel points straight into an artifact v3
 * mapping (zero copy; the mapping must outlive the kernel) and runs
 * the exact arithmetic of the owned form — both delegate to the same
 * raw matvec/GEMM cores.
 */
class DenseKernel : public LinearKernel
{
  public:
    /** Own the weights; F32 additionally materializes a float copy
     *  and runs the f32 datapath (see CompileOptions::densePrecision). */
    explicit DenseKernel(Matrix w,
                         DensePrecision prec = DensePrecision::F64);

    /** Borrow a row-major rows x cols weight blob (no copy). Always
     *  f64: the blob is the artifact's, so there is nowhere to put a
     *  float copy without defeating zero-copy. */
    DenseKernel(const Real *w, std::size_t rows, std::size_t cols);

    std::size_t inDim() const override { return cols_; }
    std::size_t outDim() const override { return rows_; }
    void apply(const Vector &x, Vector &y,
               KernelScratch &scratch) const override;

    /** Cache-blocked GEMM: one pass over the weights per call. */
    void applyBatch(const Matrix &x, Matrix &y,
                    KernelScratch &scratch) const override;
    std::string backendName() const override { return "dense"; }
    std::size_t storedParams() const override { return rows_ * cols_; }

    /** The weight matrix; a borrowed kernel materializes a private
     *  copy on first use (serialization/introspection only — the
     *  serving path never calls this). Thread-safe. */
    const Matrix &weight() const;

    /** Row-major weight data, owned or borrowed. */
    const Real *weightData() const { return wd_; }

    /** True when the weights point into an external mapping. */
    bool borrowed() const { return borrowed_; }

    /** True when this kernel runs the f32 datapath. */
    bool f32() const { return f32_; }

  private:
    mutable Matrix w_;
    mutable std::once_flag materialize_;
    const Real *wd_ = nullptr;
    std::size_t rows_ = 0, cols_ = 0;
    bool borrowed_ = false;

    /** f32 mode: float weight copy (row-major) and the flag. */
    std::vector<float> wf_;
    bool f32_ = false;
};

/**
 * Block-circulant FFT kernel: owns the generators with their spectra
 * precomputed at compile() time; matvecs run the decoupled FFT path
 * through the session's shared workspace.
 */
class CirculantFftKernel : public LinearKernel
{
  public:
    explicit CirculantFftKernel(circulant::BlockCirculantMatrix w);

    std::size_t inDim() const override { return w_.cols(); }
    std::size_t outDim() const override { return w_.rows(); }
    void apply(const Vector &x, Vector &y,
               KernelScratch &scratch) const override;

    /** Per-lane segment FFTs, then generator-major frequency-domain
     *  accumulation: each cached generator spectrum is streamed once
     *  per call and reused across every lane. */
    void applyBatch(const Matrix &x, Matrix &y,
                    KernelScratch &scratch) const override;
    std::string backendName() const override { return "circulant-fft"; }
    std::size_t storedParams() const override { return w_.paramCount(); }

    const circulant::BlockCirculantMatrix &weight() const { return w_; }

  private:
    circulant::BlockCirculantMatrix w_;
};

/**
 * Fixed-point kernel: weights quantized per-tensor exactly as
 * quant::quantizeParams rounds them (range analysis -> chooseFormat
 * -> round-to-nearest with saturation), evaluated with time-domain
 * MACs as the PE array computes them. Dense and circulant weights
 * both supported; circulant storage stays compressed (generators).
 *
 * Weights at width <= 16 are additionally packed as contiguous int16
 * codes (dense: row-major; circulant: each generator stored doubled,
 * so every block row is one contiguous 16-bit dot product). apply()
 * through an armed KernelScratch runs the integer datapath: int64
 * accumulation of weight-code x value-code products, then
 * quant::FixedPointFormat::requantize onto the value grid — the
 * exact bits the f64 emulation followed by Datapath::post produces,
 * at int16 memory traffic instead of f64.
 */
class FixedPointKernel : public LinearKernel
{
  public:
    /** Quantize a dense operator's weights. */
    FixedPointKernel(const Matrix &w, int bits);

    /** Quantize a circulant operator's generators. */
    FixedPointKernel(const circulant::BlockCirculantMatrix &w,
                     int bits);

    /**
     * Rehydrate from *already-quantized* dense weights and the format
     * range analysis chose for them (artifact load path). No rounding
     * is applied: the values are trusted to be on the quantization
     * grid, so a loaded kernel is bit-identical to the saved one.
     */
    FixedPointKernel(Matrix quantized, quant::FixedPointFormat fmt);

    /** Rehydrate from already-quantized circulant generators. */
    FixedPointKernel(circulant::BlockCirculantMatrix quantized,
                     quant::FixedPointFormat fmt);

    /** Tag selecting the zero-copy (borrowed-codes) constructors. */
    struct Borrowed
    {
    };

    /**
     * Serve dense int16 weight codes *in place* (artifact v3 blob,
     * row-major, already validated in-range for @p fmt): no copy, no
     * re-verification. The codes must outlive the kernel. The f64
     * grid weights are materialized lazily and only if something
     * asks for them (emulation, re-serialization, introspection).
     */
    FixedPointKernel(Borrowed, const std::int16_t *codes,
                     std::size_t rows, std::size_t cols,
                     quant::FixedPointFormat fmt);

    /**
     * Serve circulant codes in place. @p doubledCodes is the compute
     * layout packWeights builds: per block, the generator codes
     * repeated twice (2*block entries), so each block row is one
     * contiguous slice.
     */
    FixedPointKernel(Borrowed, const std::int16_t *doubledCodes,
                     std::size_t rows, std::size_t cols,
                     std::size_t block, quant::FixedPointFormat fmt);

    std::size_t inDim() const override;
    std::size_t outDim() const override;

    /**
     * Integer datapath when @p scratch is armed with a value format
     * of width <= 16 and the weights are packed; the f64 emulation
     * otherwise. On the integer path @p y comes back already on the
     * value grid (requantized), so the session's Datapath::post is
     * an identity on it; the emulation returns the raw matvec and
     * relies on post for the rounding — bit-identical end to end.
     */
    void apply(const Vector &x, Vector &y,
               KernelScratch &scratch) const override;

    /** int16 x int16 -> int64 GEMM with the same round-half-even
     *  requantization as applyInteger on the armed path; the per-lane
     *  emulation fallback otherwise. Bit-identical per lane to
     *  apply() either way. */
    void applyBatch(const Matrix &x, Matrix &y,
                    KernelScratch &scratch) const override;
    std::string backendName() const override { return "fixed-point"; }
    std::size_t storedParams() const override;

    /**
     * The f64 reference datapath (the bit-exactness oracle): grid
     * weights stored as doubles, double-precision MACs, output NOT
     * requantized. Every product and partial sum is an exact integer
     * multiple of 2^-(wfrac+vfrac), which is what makes the integer
     * path reproduce it bit-for-bit.
     */
    void applyEmulated(const Vector &x, Vector &y) const;

    /** The per-tensor static scaling chosen by range analysis. */
    const quant::FixedPointFormat &weightFormat() const
    {
        return format_;
    }

    /** Flat quantized weight storage (dense entries or generators). */
    const std::vector<Real> &quantizedWeights() const;

    /** True when int16 weight codes are packed (width <= 16 and all
     *  stored weights verified on-grid and in-range). */
    bool integerPacked() const { return packed_; }

    /** True when the codes point into an external mapping. */
    bool borrowed() const { return borrowed_; }

    /** The packed int16 codes in compute layout (dense: row-major;
     *  circulant: doubled generators). Null when not packed. */
    const std::int16_t *packedCodes() const { return qwData_; }
    std::size_t packedCodeCount() const { return qwCount_; }

    /** Circulant block size (0 for dense storage). Available without
     *  materializing the f64 weights. */
    std::size_t circulantBlockSize() const { return block_; }

    /// @{ Storage introspection (artifact serialization). A borrowed
    /// kernel materializes the f64 grid weights on first call
    /// (thread-safe); the serving path never needs them.
    bool isCirculant() const { return circulant_; }
    const Matrix &denseWeight() const;
    const circulant::BlockCirculantMatrix &circulantWeight() const;
    /// @}

  private:
    /** Pack qw_ from the grid f64 storage; clears packed_ instead of
     *  dying when a stored weight is off-grid or out of range (only
     *  possible via a crafted artifact), falling back to emulation. */
    void packWeights();

    /** Borrowed mode: decode the f64 grid weights from the codes. */
    void ensureF64() const;

    void applyInteger(const Vector &x, Vector &y,
                      KernelScratch &scratch) const;

    void applyIntegerBatch(const Matrix &x, Matrix &y,
                           KernelScratch &scratch) const;

    quant::FixedPointFormat format_;
    bool circulant_ = false;
    mutable Matrix dense_;
    mutable circulant::BlockCirculantMatrix circ_;
    mutable std::once_flag materialize_;

    std::vector<std::int16_t> qw_;
    const std::int16_t *qwData_ = nullptr;
    std::size_t qwCount_ = 0;
    std::size_t rows_ = 0, cols_ = 0, block_ = 0;
    bool packed_ = false;
    bool borrowed_ = false;
};

/** Factory: freeze one trained operator into a kernel. */
using KernelFactory = std::function<std::unique_ptr<LinearKernel>(
    const nn::LinearOp &op, const CompileOptions &opts)>;

/**
 * Name -> factory registry the compiler selects kernels from. The
 * three built-in backends ("dense", "circulant-fft", "fixed-point")
 * are registered on first use; extensions may add their own.
 */
class KernelRegistry
{
  public:
    static KernelRegistry &instance();

    void registerFactory(const std::string &name, KernelFactory fn);
    bool has(const std::string &name) const;
    std::vector<std::string> names() const;

    std::unique_ptr<LinearKernel> make(const std::string &name,
                                       const nn::LinearOp &op,
                                       const CompileOptions &opts) const;

  private:
    KernelRegistry();
    std::map<std::string, KernelFactory> factories_;
};

/**
 * Resolve the registry name for one operator under a backend choice:
 * Auto and CirculantFft pick "circulant-fft" for circulant weights
 * and "dense" otherwise; Dense materializes everything dense;
 * FixedPoint quantizes everything.
 */
std::string resolveBackend(BackendKind kind, const nn::LinearOp &op);

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_BACKEND_HH
