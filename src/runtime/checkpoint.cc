#include "runtime/checkpoint.hh"

#include <cstring>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"
#include "runtime/wire.hh"

namespace ernn::runtime
{

namespace detail
{

/**
 * Private-access key (friended by StreamState) that lets the
 * checkpoint codec in this translation unit read and rebuild stream
 * internals without widening the public surface sessions step on.
 */
struct StreamStateAccess
{
    static const std::vector<LayerState> &layers(const StreamState &s)
    {
        return s.layers_;
    }

    static std::vector<LayerState> &layers(StreamState &s)
    {
        return s.layers_;
    }

    static std::size_t frames(const StreamState &s)
    {
        return s.frames_;
    }

    static void stamp(StreamState &s, std::uint64_t fingerprint,
                      std::size_t frames)
    {
        s.model_ = fingerprint;
        s.frames_ = frames;
    }
};

} // namespace detail

namespace
{

using detail::fnv1a64;
using detail::Reader;
using detail::StreamStateAccess;
using detail::Writer;

constexpr char kMagic[8] = {'E', 'R', 'N', 'N', 'C', 'K', 'P', 'T'};

// magic + version + total bytes; the trailing checksum is 8 more.
constexpr std::size_t kHeaderBytes =
    sizeof kMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t);
constexpr std::size_t kChecksumBytes = sizeof(std::uint64_t);

/**
 * Plausibility bound on the per-layer state vectors a blob may
 * declare: far beyond any RNN layer width, small enough that a
 * crafted (checksum-valid) blob dies with a named fatal instead of
 * a giant allocation. Matches the artifact loader's kMaxDim.
 */
constexpr std::size_t kMaxStateDim = std::size_t{1} << 24;

} // namespace

std::uint64_t
modelFingerprint(const CompiledModel &model)
{
    // Canonical byte encoding of everything a stream's continuation
    // depends on structurally: state geometry per layer plus the
    // value-quantization semantics. Weights are values, not shape —
    // excluded on purpose (see the header).
    Writer w;
    w.bytes("ernn-stream-fingerprint-v1");
    w.size(model.inputSize());
    w.size(model.numClasses());
    const Datapath &dp = model.datapath();
    w.u8(dp.fixedPoint ? 1 : 0);
    w.i32(dp.fixedPoint ? dp.valueFormat.totalBits : 0);
    w.i32(dp.fixedPoint ? dp.valueFormat.fracBits : 0);
    w.size(model.numLayers());
    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const CompiledLayer &layer = model.layer(i);
        w.bytes(layer.kindName());
        w.size(layer.inputSize());
        w.size(layer.outputSize());
        LayerState probe;
        layer.initState(probe);
        w.size(probe.h.size());
        w.size(probe.c.size());
    }
    const std::string bytes = w.take();
    return fnv1a64(bytes.data(), bytes.size());
}

std::string
checkpointStream(const CompiledModel &model, const StreamState &state,
                 const std::string &aux)
{
    ernn_assert(StreamStateAccess::layers(state).size() ==
                model.numLayers(),
                "checkpoint: stream belongs to a different model ("
                << StreamStateAccess::layers(state).size()
                << " layers vs " << model.numLayers() << ")");

    Writer w;
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kCheckpointFormatVersion);
    const std::size_t totalPatch = w.tell();
    w.u64(0); // total bytes, patched below
    w.u64(modelFingerprint(model));
    w.u64(StreamStateAccess::frames(state));
    w.u32(static_cast<std::uint32_t>(model.numLayers()));
    for (const LayerState &l : StreamStateAccess::layers(state)) {
        w.reals(l.h);
        w.reals(l.c);
    }
    w.bytes(aux);

    w.patchU64(totalPatch, w.tell() + kChecksumBytes);
    // The checksum covers every preceding byte, total-bytes included.
    std::string blob = w.take();
    const std::uint64_t checksum = fnv1a64(blob.data(), blob.size());
    blob.append(reinterpret_cast<const char *>(&checksum),
                sizeof checksum);
    return blob;
}

namespace
{

/**
 * Validate @p blob's framing and checksum (the model-independent
 * part of the restore contract) and return a Reader positioned past
 * the already-validated header. Fatal with a named diagnostic on
 * any malformation; validation order is part of the error contract:
 * magic first (is this a checkpoint at all?), then version, then
 * declared size (was it truncated?), then the checksum.
 */
Reader
openCheckpoint(const std::string &blob)
{
    const char *data = blob.data();
    const std::size_t size = blob.size();
    if (size < kHeaderBytes + kChecksumBytes)
        ernn_fatal("truncated stream checkpoint: " << size
                   << " bytes is smaller than the "
                   << kHeaderBytes + kChecksumBytes
                   << "-byte header");
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
        ernn_fatal("not a stream checkpoint (bad magic)");

    std::uint32_t version;
    std::memcpy(&version, data + sizeof kMagic, sizeof version);
    if (version != kCheckpointFormatVersion)
        ernn_fatal("stream checkpoint format version " << version
                   << " is not supported by this build (reads "
                   << kCheckpointFormatVersion << ")");

    std::uint64_t declared;
    std::memcpy(&declared, data + sizeof kMagic + sizeof version,
                sizeof declared);
    if (declared != size) {
        if (size < declared)
            ernn_fatal("truncated stream checkpoint: header declares "
                       << declared << " bytes, blob has " << size);
        ernn_fatal("stream checkpoint has " << size - declared
                   << " trailing bytes past the declared " << declared
                   << "-byte payload");
    }

    std::uint64_t stored;
    std::memcpy(&stored, data + size - kChecksumBytes, sizeof stored);
    const std::uint64_t actual = fnv1a64(data, size - kChecksumBytes);
    if (stored != actual)
        ernn_fatal("stream checkpoint checksum mismatch (stored 0x"
                   << std::hex << stored << ", computed 0x" << actual
                   << std::dec << "): the blob is corrupted");

    Reader r(data, size - kChecksumBytes, "stream checkpoint");
    for (std::size_t i = 0; i < sizeof kMagic; ++i)
        r.u8("magic");
    r.u32("format version");
    r.u64("declared size");
    return r;
}

} // namespace

void
restoreStream(const CompiledModel &model, StreamState &state,
              const std::string &blob, std::string *aux)
{
    Reader r = openCheckpoint(blob);

    const std::uint64_t fingerprint = r.u64("model fingerprint");
    const std::uint64_t expect = modelFingerprint(model);
    if (fingerprint != expect)
        ernn_fatal("stream checkpoint belongs to a different model "
                   "(fingerprint 0x" << std::hex << fingerprint
                   << ", this model is 0x" << expect << std::dec
                   << "): refusing to restore");

    const std::uint64_t frames = r.u64("frame counter");
    const std::size_t layers = r.u32("layer count");
    if (layers != model.numLayers())
        ernn_fatal("stream checkpoint carries " << layers
                   << " layer states, model has " << model.numLayers());

    // Decode into a staging area first: a restore either succeeds
    // completely or aborts, never leaving @p state half-overwritten.
    std::vector<LayerState> staged(layers);
    const Datapath &dp = model.datapath();
    for (std::size_t i = 0; i < layers; ++i) {
        r.realsInto(staged[i].h, "layer state h");
        r.realsInto(staged[i].c, "layer state c");
        // Defense in depth behind the fingerprint: the committed
        // state's geometry must match what the layer would create,
        // or the kernels' inner loops would index out of bounds.
        LayerState probe;
        model.layer(i).initState(probe);
        if (staged[i].h.size() != probe.h.size() ||
            staged[i].c.size() != probe.c.size() ||
            staged[i].h.size() > kMaxStateDim ||
            staged[i].c.size() > kMaxStateDim)
            ernn_fatal("stream checkpoint layer " << i << " state is "
                       << staged[i].h.size() << "/"
                       << staged[i].c.size() << " values, model layer "
                       "needs " << probe.h.size() << "/"
                       << probe.c.size());
        // Pin restored values to the value grid (identity for a
        // legitimate checkpoint): the integer datapath's LUTs index
        // by grid code, and an off-grid value smuggled past the
        // checksum would silently diverge from the f64 oracle.
        dp.post(staged[i].h);
        dp.post(staged[i].c);
    }

    std::string auxBytes;
    r.bytesInto(auxBytes, "aux payload");
    if (!r.done())
        ernn_fatal("stream checkpoint has " << r.remainingBytes()
                   << " undecoded payload bytes: writer/reader "
                   "version bug");

    StreamStateAccess::layers(state) = std::move(staged);
    StreamStateAccess::stamp(state, fingerprint,
                             static_cast<std::size_t>(frames));
    if (aux)
        *aux = std::move(auxBytes);
}

CheckpointInfo
describeCheckpoint(const std::string &blob)
{
    Reader r = openCheckpoint(blob);
    CheckpointInfo info;
    info.version = kCheckpointFormatVersion;
    info.totalBytes = blob.size();
    info.fingerprint = r.u64("model fingerprint");
    info.frames = r.u64("frame counter");
    info.layers = r.u32("layer count");
    if (info.layers > kMaxStateDim)
        ernn_fatal("stream checkpoint declares " << info.layers
                   << " layers: implausible");
    std::vector<Real> scratch;
    for (std::size_t i = 0; i < info.layers; ++i) {
        r.realsInto(scratch, "layer state h");
        info.stateValues += scratch.size();
        r.realsInto(scratch, "layer state c");
        info.stateValues += scratch.size();
    }
    std::string auxBytes;
    r.bytesInto(auxBytes, "aux payload");
    info.auxBytes = auxBytes.size();
    if (!r.done())
        ernn_fatal("stream checkpoint has " << r.remainingBytes()
                   << " undecoded payload bytes: writer/reader "
                   "version bug");
    return info;
}

} // namespace ernn::runtime
