/**
 * @file
 * Stream checkpoint/restore: serialize the live recurrent state of
 * one utterance stream (StreamState) to a versioned, checksummed
 * blob and restore it bit-exactly — into a fresh stream, a fresh
 * session, or a fresh process. This is what makes hour-long
 * utterances cuttable: a serving node can persist a stream
 * mid-utterance, hand it to another node (or survive a restart), and
 * continue producing bit-identical logits to the uninterrupted run.
 *
 * Format (version 1, little-endian, shared Writer/Reader encoding
 * from runtime/wire.hh):
 *
 *     char[8]  magic "ERNNCKPT"
 *     u32      format version (1)
 *     u64      total blob bytes (self-describing truncation check)
 *     u64      model fingerprint (see modelFingerprint())
 *     u64      frames consumed since reset
 *     u32      layer count
 *     per layer: reals h, reals c   (length-prefixed f64 vectors)
 *     bytes    aux payload (length-prefixed, opaque to the runtime —
 *              the speech layer rides its frontend overlap state
 *              here; empty when unused)
 *     u64      FNV-1a checksum over every preceding byte
 *
 * Error contract (mirrors the artifact loader): every malformed blob
 * is rejected with a fatal, named diagnostic — bad magic, unsupported
 * version, truncation, checksum mismatch, fingerprint mismatch, or
 * geometry that disagrees with the model. A restore either succeeds
 * completely or aborts; it never leaves the target stream partially
 * overwritten, and a rejected blob can never reach a kernel (the
 * out-of-bounds hazard a mis-sized recurrent vector would cause).
 *
 * Fixed-point models additionally pin restored values to the value
 * grid (Datapath::post) before committing: a legitimate checkpoint
 * is already on-grid (identity), and a hand-forged blob cannot smuggle
 * off-grid values past the integer LUT indexing discipline.
 */

#ifndef ERNN_RUNTIME_CHECKPOINT_HH
#define ERNN_RUNTIME_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "runtime/session.hh"

namespace ernn::runtime
{

/** Checkpoint blob format version written by checkpointStream(). */
constexpr std::uint32_t kCheckpointFormatVersion = 1;

/**
 * Structural fingerprint of the state geometry + datapath a stream
 * belongs to: per-layer kind and dimensions, model input/class
 * sizes, and the value-quantization semantics (fixed-point flag and
 * format). Weights are deliberately NOT hashed — recurrent state is
 * pure values, so any model with identical geometry and datapath can
 * continue a stream (Dense and CirculantFFT compilations of the same
 * spec share a fingerprint: same f64 value semantics, logits equal to
 * FFT roundoff; FixedPoint differs because its value grid does).
 */
std::uint64_t modelFingerprint(const CompiledModel &model);

/**
 * Serialize @p state (a live stream of @p model) to a checkpoint
 * blob. @p aux is an opaque caller payload carried verbatim (e.g. a
 * serialized speech::FrontendState); it rides inside the checksum.
 */
std::string checkpointStream(const CompiledModel &model,
                             const StreamState &state,
                             const std::string &aux = {});

/**
 * Restore @p blob into @p state, which then continues on @p model
 * bit-identically to the stream that was checkpointed. @p state may
 * be fresh (default-constructed or newStream()) or in use — its
 * previous contents are fully replaced. When @p aux is non-null the
 * blob's aux payload is copied out. Fatal on any malformed or
 * wrong-model blob (see the error contract above).
 */
void restoreStream(const CompiledModel &model, StreamState &state,
                   const std::string &blob,
                   std::string *aux = nullptr);

/** Parsed checkpoint header (validation without a model). */
struct CheckpointInfo
{
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t frames = 0;
    std::size_t layers = 0;
    std::size_t stateValues = 0; //!< total h+c values across layers
    std::size_t auxBytes = 0;
    std::size_t totalBytes = 0;
};

/**
 * Validate @p blob's framing and checksum and return its header.
 * Fatal on malformed blobs; does not check model compatibility.
 */
CheckpointInfo describeCheckpoint(const std::string &blob);

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_CHECKPOINT_HH
