/**
 * @file
 * Concrete compiled layer implementations (runtime-internal).
 *
 * A compiled layer is assembled from a *parts* bundle — the frozen
 * kernels, biases, and static configuration that fully determine its
 * datapath. Two producers build the same bundles:
 *
 *  - runtime::compile() freezes a trained nn:: layer (kernels are
 *    selected from the backend registry, biases rounded per-tensor
 *    for the FixedPoint backend);
 *  - runtime::loadArtifact() rehydrates the bundle from a serialized
 *    artifact (spectra and PWL tables are re-derived, never stored).
 *
 * Keeping construction parts-based is what makes the on-disk artifact
 * format (runtime/artifact.hh) a faithful, bit-exact mirror of the
 * in-memory model: save() walks the parts, load() rebuilds them.
 *
 * This header is internal to src/runtime — user code should only see
 * CompiledLayer through CompiledModel::layer().
 *
 * Threading: stepBatch() runs each gate's batch GEMM through the
 * compute pool the session lends via KernelScratch::pool (null =
 * serial). Layers never spawn threads themselves, and the row/block
 * partition inside each kernel never reorders an accumulation chain,
 * so any thread count produces the serial bits.
 */

#ifndef ERNN_RUNTIME_COMPILED_LAYERS_HH
#define ERNN_RUNTIME_COMPILED_LAYERS_HH

#include <memory>

#include "nn/gru.hh"
#include "nn/lstm.hh"
#include "runtime/compiled_model.hh"

namespace ernn::runtime::detail
{

/**
 * Frozen tensors of one LSTM layer. Kernels must be non-null (except
 * wym, null when the config has no projection); peephole vectors are
 * empty when cfg.peephole is false. Biases and peepholes hold their
 * *frozen* values — already rounded for the FixedPoint backend — so
 * a rehydrated bundle needs no re-quantization.
 */
struct LstmParts
{
    nn::LstmConfig cfg;
    std::unique_ptr<LinearKernel> wix, wfx, wcx, wox; //!< gates on x_t
    std::unique_ptr<LinearKernel> wir, wfr, wcr, wor; //!< gates on y_{t-1}
    std::unique_ptr<LinearKernel> wym;                //!< projection (opt.)
    Vector bi, bf, bc, bo;                            //!< gate biases
    Vector wic, wfc, woc;                             //!< diag. peepholes
};

/** Frozen tensors of one GRU layer (see LstmParts). */
struct GruParts
{
    nn::GruConfig cfg;
    std::unique_ptr<LinearKernel> wzx, wrx, wcx; //!< gates on x_t
    std::unique_ptr<LinearKernel> wzc, wrc, wcc; //!< gates on c_{t-1}
    Vector bz, br, bc;                           //!< gate biases
};

class CompiledLstmLayer : public CompiledLayer
{
  public:
    /** Assemble from frozen parts; panics on inconsistent shapes. */
    explicit CompiledLstmLayer(LstmParts parts);

    std::size_t inputSize() const override;
    std::size_t outputSize() const override;
    std::string kindName() const override { return "lstm"; }
    std::size_t storedParams() const override;

    void initState(LayerState &state) const override;
    void initScratch(LayerScratch &scratch) const override;
    void step(const Vector &x, LayerState &state, Vector &y,
              LayerScratch &scratch, KernelScratch &kernels,
              const Datapath &dp) const override;
    void initBatchState(LayerBatchState &state,
                        std::size_t lanes) const override;
    void initBatchScratch(LayerBatchScratch &scratch,
                          std::size_t lanes) const override;
    void stepBatch(const Matrix &x, LayerBatchState &state, Matrix &y,
                   LayerBatchScratch &scratch, KernelScratch &kernels,
                   const Datapath &dp) const override;
    std::vector<const LinearKernel *> kernels() const override;

    /** Read-only view of the frozen parts (artifact serialization). */
    const LstmParts &parts() const { return p_; }

  private:
    LstmParts p_;

    /** Shared-operand gate groups (empty = unfused fallback). */
    std::vector<const circulant::BlockCirculantMatrix *> fusedInput_;
    std::vector<const circulant::BlockCirculantMatrix *> fusedRec_;
};

class CompiledGruLayer : public CompiledLayer
{
  public:
    /** Assemble from frozen parts; panics on inconsistent shapes. */
    explicit CompiledGruLayer(GruParts parts);

    std::size_t inputSize() const override;
    std::size_t outputSize() const override;
    std::string kindName() const override { return "gru"; }
    std::size_t storedParams() const override;

    void initState(LayerState &state) const override;
    void initScratch(LayerScratch &scratch) const override;
    void step(const Vector &x, LayerState &state, Vector &y,
              LayerScratch &scratch, KernelScratch &kernels,
              const Datapath &dp) const override;
    void initBatchState(LayerBatchState &state,
                        std::size_t lanes) const override;
    void initBatchScratch(LayerBatchScratch &scratch,
                          std::size_t lanes) const override;
    void stepBatch(const Matrix &x, LayerBatchState &state, Matrix &y,
                   LayerBatchScratch &scratch, KernelScratch &kernels,
                   const Datapath &dp) const override;
    std::vector<const LinearKernel *> kernels() const override;

    /** Read-only view of the frozen parts (artifact serialization). */
    const GruParts &parts() const { return p_; }

  private:
    GruParts p_;

    /** Shared-operand gate groups (empty = unfused fallback). */
    std::vector<const circulant::BlockCirculantMatrix *> fusedInput_;
    std::vector<const circulant::BlockCirculantMatrix *> fusedRec_;
};

/**
 * Rebuild the frozen datapath (value format + PWL activation tables)
 * from compile options. Deterministic: compile() and loadArtifact()
 * both call this, so a loaded artifact's tables are bit-identical to
 * the originals without ever being stored.
 */
Datapath makeDatapath(const CompileOptions &opts);

} // namespace ernn::runtime::detail

#endif // ERNN_RUNTIME_COMPILED_LAYERS_HH
