#include "runtime/compiled_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "runtime/compiled_layers.hh"

namespace ernn::runtime
{

void
Datapath::activate(nn::ActKind kind, Vector &v) const
{
    if (fixedPoint) {
        if (integerDatapath) {
            // Folded activate+post: inputs are on the value grid
            // (every activate call site posts first), so one lookup
            // per element replaces the segment search and the
            // follow-up post becomes an identity.
            const Vector &lut = kind == nn::ActKind::Sigmoid
                                    ? *sigmoidLut
                                    : *tanhLut;
            const std::int64_t off = -valueFormat.minQ();
            const auto last =
                static_cast<std::int64_t>(lut.size()) - 1;
            for (auto &x : v) {
                const std::int64_t idx =
                    std::clamp(valueFormat.toQ(x) + off,
                               std::int64_t{0}, last);
                x = lut[static_cast<std::size_t>(idx)];
            }
            return;
        }
        const nn::PiecewiseLinear *table =
            kind == nn::ActKind::Sigmoid ? sigmoidTable.get()
                                         : tanhTable.get();
        if (table) {
            table->apply(v);
            return;
        }
    }
    nn::applyActivation(kind, v);
}

namespace detail
{

namespace
{

/**
 * The circulant weights of a kernel group when every member runs the
 * CirculantFFT backend with identical input geometry, else empty.
 * Such a group multiplies one shared operand (e.g. the four LSTM
 * gate matrices on x_t), so its segment FFTs are computed once and
 * shared — extending the paper's FFT decoupling across gates, which
 * the per-matrix training path cannot do.
 */
std::vector<const circulant::BlockCirculantMatrix *>
fusableGroup(std::initializer_list<const LinearKernel *> group)
{
    std::vector<const circulant::BlockCirculantMatrix *> out;
    for (const LinearKernel *k : group) {
        const auto *fft = dynamic_cast<const CirculantFftKernel *>(k);
        if (!fft)
            return {};
        const auto &w = fft->weight();
        if (!out.empty() &&
            (w.cols() != out.front()->cols() ||
             w.blockSize() != out.front()->blockSize()))
            return {};
        out.push_back(&w);
    }
    return out;
}

void
checkKernel(const LinearKernel *k, const char *name,
            std::size_t in_dim, std::size_t out_dim)
{
    ernn_assert(k, "compiled layer: missing kernel " << name);
    ernn_assert(k->inDim() == in_dim && k->outDim() == out_dim,
                "compiled layer: kernel " << name << " is "
                << k->outDim() << "x" << k->inDim() << ", expected "
                << out_dim << "x" << in_dim);
}

} // namespace

Datapath
makeDatapath(const CompileOptions &opts)
{
    Datapath dp;
    if (opts.backend != BackendKind::FixedPoint)
        return dp;
    dp.fixedPoint = true;
    // activationRange is a clamp bound, not an observed maximum:
    // values at the bound saturate by design, so the grid spends its
    // bits on resolution (Q3.8 at the 12-bit/range-8 design point,
    // not Q4.7).
    dp.valueFormat = quant::chooseClampFormat(opts.fixedPointBits,
                                              opts.activationRange);
    if (opts.activationSegments >= 2) {
        dp.sigmoidTable = std::make_shared<const nn::PiecewiseLinear>(
            nn::ActKind::Sigmoid, opts.activationSegments,
            opts.activationRange);
        dp.tanhTable = std::make_shared<const nn::PiecewiseLinear>(
            nn::ActKind::Tanh, opts.activationSegments,
            opts.activationRange);
    }

    dp.integerDatapath = !opts.fixedPointEmulation &&
                         opts.fixedPointBits >= 2 &&
                         opts.fixedPointBits <= 16;
    if (dp.integerDatapath) {
        // One folded activate+post output per value-grid code,
        // computed through the very objects the emulation evaluates —
        // equality with the oracle is by construction, not by proof.
        const auto build = [&dp](nn::ActKind kind,
                                 const nn::PiecewiseLinear *table) {
            const quant::FixedPointFormat &vf = dp.valueFormat;
            auto lut = std::make_shared<Vector>();
            lut->reserve(
                static_cast<std::size_t>(vf.maxQ() - vf.minQ() + 1));
            for (std::int64_t q = vf.minQ(); q <= vf.maxQ(); ++q) {
                const Real x = vf.fromQ(q);
                const Real a =
                    table ? table->eval(x)
                          : (kind == nn::ActKind::Sigmoid
                                 ? nn::sigmoid(x)
                                 : std::tanh(x));
                lut->push_back(vf.quantize(a));
            }
            return lut;
        };
        dp.sigmoidLut = build(nn::ActKind::Sigmoid,
                              dp.sigmoidTable.get());
        dp.tanhLut = build(nn::ActKind::Tanh, dp.tanhTable.get());
    }
    return dp;
}

// --- CompiledLstmLayer -------------------------------------------------

CompiledLstmLayer::CompiledLstmLayer(LstmParts parts)
    : p_(std::move(parts))
{
    const std::size_t in = p_.cfg.inputSize;
    const std::size_t h = p_.cfg.hiddenSize;
    const std::size_t out = p_.cfg.outputSize();
    checkKernel(p_.wix.get(), "wix", in, h);
    checkKernel(p_.wfx.get(), "wfx", in, h);
    checkKernel(p_.wcx.get(), "wcx", in, h);
    checkKernel(p_.wox.get(), "wox", in, h);
    checkKernel(p_.wir.get(), "wir", out, h);
    checkKernel(p_.wfr.get(), "wfr", out, h);
    checkKernel(p_.wcr.get(), "wcr", out, h);
    checkKernel(p_.wor.get(), "wor", out, h);
    if (p_.cfg.projectionSize) {
        checkKernel(p_.wym.get(), "wym", h, out);
    } else {
        ernn_assert(!p_.wym,
                    "compiled lstm: projection kernel without "
                    "projectionSize");
    }
    ernn_assert(p_.bi.size() == h && p_.bf.size() == h &&
                p_.bc.size() == h && p_.bo.size() == h,
                "compiled lstm: bias size mismatch");
    if (p_.cfg.peephole)
        ernn_assert(p_.wic.size() == h && p_.wfc.size() == h &&
                    p_.woc.size() == h,
                    "compiled lstm: peephole size mismatch");

    fusedInput_ = fusableGroup(
        {p_.wix.get(), p_.wfx.get(), p_.wcx.get(), p_.wox.get()});
    fusedRec_ = fusableGroup(
        {p_.wir.get(), p_.wfr.get(), p_.wcr.get(), p_.wor.get()});
}

std::size_t
CompiledLstmLayer::inputSize() const
{
    return p_.cfg.inputSize;
}

std::size_t
CompiledLstmLayer::outputSize() const
{
    return p_.cfg.outputSize();
}

std::size_t
CompiledLstmLayer::storedParams() const
{
    std::size_t n = p_.wix->storedParams() + p_.wfx->storedParams() +
                    p_.wcx->storedParams() + p_.wox->storedParams() +
                    p_.wir->storedParams() + p_.wfr->storedParams() +
                    p_.wcr->storedParams() + p_.wor->storedParams();
    if (p_.wym)
        n += p_.wym->storedParams();
    n += p_.bi.size() + p_.bf.size() + p_.bc.size() + p_.bo.size();
    n += p_.wic.size() + p_.wfc.size() + p_.woc.size();
    return n;
}

void
CompiledLstmLayer::initState(LayerState &state) const
{
    state.h.assign(p_.cfg.outputSize(), 0.0);
    state.c.assign(p_.cfg.hiddenSize, 0.0);
}

void
CompiledLstmLayer::initScratch(LayerScratch &s) const
{
    const std::size_t h = p_.cfg.hiddenSize;
    s.g1.assign(h, 0.0);
    s.g2.assign(h, 0.0);
    s.g3.assign(h, 0.0);
    s.g4.assign(h, 0.0);
    s.t1.assign(h, 0.0);
    s.t2.assign(h, 0.0);
    s.t3.assign(h, 0.0);
}

void
CompiledLstmLayer::step(const Vector &x, LayerState &state, Vector &y,
                        LayerScratch &s, KernelScratch &ks,
                        const Datapath &dp) const
{
    // Gate matvec contributions first: i/f/g/o share x (and
    // y_{t-1}), so the fused CirculantFFT path computes each
    // operand's segment FFTs once for all four gates (q FFTs
    // instead of 4q).
    Vector *gates[4] = {&s.g1, &s.g2, &s.g3, &s.g4};
    if (!fusedInput_.empty()) {
        for (Vector *g : gates)
            std::fill(g->begin(), g->end(), 0.0);
        circulant::computeSegmentSpectra(
            x, fusedInput_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 4; ++k)
            fusedInput_[k]->matvecAccFromSpectra(
                ks.fft.segSpectra, *gates[k], ks.fft);
    } else {
        p_.wix->apply(x, s.g1, ks);
        dp.post(s.g1);
        p_.wfx->apply(x, s.g2, ks);
        dp.post(s.g2);
        p_.wcx->apply(x, s.g3, ks);
        dp.post(s.g3);
        p_.wox->apply(x, s.g4, ks);
        dp.post(s.g4);
    }
    if (!fusedRec_.empty()) {
        circulant::computeSegmentSpectra(
            state.h, fusedRec_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 4; ++k)
            fusedRec_[k]->matvecAccFromSpectra(
                ks.fft.segSpectra, *gates[k], ks.fft);
    } else {
        const LinearKernel *recs[4] = {p_.wir.get(), p_.wfr.get(),
                                       p_.wcr.get(), p_.wor.get()};
        for (std::size_t k = 0; k < 4; ++k) {
            recs[k]->apply(state.h, s.t1, ks);
            dp.post(s.t1);
            addInPlace(*gates[k], s.t1);
        }
    }

    // Input gate: i = sigma(Wix x + Wir y' + wic.c' + bi).
    if (p_.cfg.peephole)
        hadamardAcc(s.g1, p_.wic, state.c);
    addInPlace(s.g1, p_.bi);
    dp.post(s.g1);
    dp.activate(nn::ActKind::Sigmoid, s.g1);
    dp.post(s.g1);

    // Forget gate.
    if (p_.cfg.peephole)
        hadamardAcc(s.g2, p_.wfc, state.c);
    addInPlace(s.g2, p_.bf);
    dp.post(s.g2);
    dp.activate(nn::ActKind::Sigmoid, s.g2);
    dp.post(s.g2);

    // Cell input (no peephole, Eqn. 1c).
    addInPlace(s.g3, p_.bc);
    dp.post(s.g3);
    dp.activate(p_.cfg.cellInputAct, s.g3);
    dp.post(s.g3);

    // Cell state: c = f.c' + g.i (Eqn. 1d) into t2.
    std::fill(s.t2.begin(), s.t2.end(), 0.0);
    hadamardAcc(s.t2, s.g2, state.c);
    hadamardAcc(s.t2, s.g3, s.g1);
    dp.post(s.t2);

    // Output gate (peephole reads the *current* c, Eqn. 1e).
    if (p_.cfg.peephole)
        hadamardAcc(s.g4, p_.woc, s.t2);
    addInPlace(s.g4, p_.bo);
    dp.post(s.g4);
    dp.activate(nn::ActKind::Sigmoid, s.g4);
    dp.post(s.g4);

    // Cell output m = o . h(c) (Eqn. 1f) into t3.
    std::copy(s.t2.begin(), s.t2.end(), s.t3.begin());
    dp.activate(p_.cfg.outputAct, s.t3);
    dp.post(s.t3);
    hadamardInPlace(s.t3, s.g4);
    dp.post(s.t3);

    // Projected output (Eqn. 1g).
    if (p_.wym) {
        p_.wym->apply(s.t3, y, ks);
        dp.post(y);
    } else {
        std::copy(s.t3.begin(), s.t3.end(), y.begin());
    }

    // Commit state: c_t and y_t become the next step's history.
    std::swap(state.c, s.t2);
    std::copy(y.begin(), y.end(), state.h.begin());
}

void
CompiledLstmLayer::initBatchState(LayerBatchState &state,
                                  std::size_t lanes) const
{
    state.h.reshape(p_.cfg.outputSize(), lanes);
    state.c.reshape(p_.cfg.hiddenSize, lanes);
}

void
CompiledLstmLayer::initBatchScratch(LayerBatchScratch &s,
                                    std::size_t lanes) const
{
    const std::size_t h = p_.cfg.hiddenSize;
    s.g1.reshape(h, lanes);
    s.g2.reshape(h, lanes);
    s.g3.reshape(h, lanes);
    s.g4.reshape(h, lanes);
    s.t1.reshape(h, lanes);
    s.t2.reshape(h, lanes);
    s.t3.reshape(h, lanes);
}

void
CompiledLstmLayer::stepBatch(const Matrix &x, LayerBatchState &state,
                             Matrix &y, LayerBatchScratch &s,
                             KernelScratch &ks,
                             const Datapath &dp) const
{
    // The batched mirror of step(): the same operations in the same
    // order, over feature x lanes matrices instead of vectors, so
    // every lane column computes the exact bits the solo path would.
    // Gate contributions first; each kernel call is one GEMM-shaped
    // pass over the weights shared by every lane.
    Matrix *gates[4] = {&s.g1, &s.g2, &s.g3, &s.g4};
    if (!fusedInput_.empty()) {
        for (Matrix *g : gates)
            g->setZero();
        circulant::computeSegmentSpectraBatch(
            x, fusedInput_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 4; ++k)
            fusedInput_[k]->matvecAccFromSpectraBatch(*gates[k],
                                                      ks.fft);
    } else {
        p_.wix->applyBatch(x, s.g1, ks);
        dp.post(s.g1.raw());
        p_.wfx->applyBatch(x, s.g2, ks);
        dp.post(s.g2.raw());
        p_.wcx->applyBatch(x, s.g3, ks);
        dp.post(s.g3.raw());
        p_.wox->applyBatch(x, s.g4, ks);
        dp.post(s.g4.raw());
    }
    if (!fusedRec_.empty()) {
        circulant::computeSegmentSpectraBatch(
            state.h, fusedRec_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 4; ++k)
            fusedRec_[k]->matvecAccFromSpectraBatch(*gates[k],
                                                    ks.fft);
    } else {
        const LinearKernel *recs[4] = {p_.wir.get(), p_.wfr.get(),
                                       p_.wcr.get(), p_.wor.get()};
        for (std::size_t k = 0; k < 4; ++k) {
            recs[k]->applyBatch(state.h, s.t1, ks);
            dp.post(s.t1.raw());
            addInPlace(gates[k]->raw(), s.t1.raw());
        }
    }

    // Input gate: i = sigma(Wix x + Wir y' + wic.c' + bi).
    if (p_.cfg.peephole)
        hadamardBroadcastAcc(s.g1, p_.wic, state.c);
    addBiasRows(s.g1, p_.bi);
    dp.post(s.g1.raw());
    dp.activate(nn::ActKind::Sigmoid, s.g1.raw());
    dp.post(s.g1.raw());

    // Forget gate.
    if (p_.cfg.peephole)
        hadamardBroadcastAcc(s.g2, p_.wfc, state.c);
    addBiasRows(s.g2, p_.bf);
    dp.post(s.g2.raw());
    dp.activate(nn::ActKind::Sigmoid, s.g2.raw());
    dp.post(s.g2.raw());

    // Cell input (no peephole, Eqn. 1c).
    addBiasRows(s.g3, p_.bc);
    dp.post(s.g3.raw());
    dp.activate(p_.cfg.cellInputAct, s.g3.raw());
    dp.post(s.g3.raw());

    // Cell state: c = f.c' + g.i (Eqn. 1d) into t2.
    s.t2.setZero();
    hadamardAcc(s.t2.raw(), s.g2.raw(), state.c.raw());
    hadamardAcc(s.t2.raw(), s.g3.raw(), s.g1.raw());
    dp.post(s.t2.raw());

    // Output gate (peephole reads the *current* c, Eqn. 1e).
    if (p_.cfg.peephole)
        hadamardBroadcastAcc(s.g4, p_.woc, s.t2);
    addBiasRows(s.g4, p_.bo);
    dp.post(s.g4.raw());
    dp.activate(nn::ActKind::Sigmoid, s.g4.raw());
    dp.post(s.g4.raw());

    // Cell output m = o . h(c) (Eqn. 1f) into t3.
    std::copy(s.t2.raw().begin(), s.t2.raw().end(),
              s.t3.raw().begin());
    dp.activate(p_.cfg.outputAct, s.t3.raw());
    dp.post(s.t3.raw());
    hadamardInPlace(s.t3.raw(), s.g4.raw());
    dp.post(s.t3.raw());

    // Projected output (Eqn. 1g).
    if (p_.wym) {
        p_.wym->applyBatch(s.t3, y, ks);
        dp.post(y.raw());
    } else {
        std::copy(s.t3.raw().begin(), s.t3.raw().end(),
                  y.raw().begin());
    }

    // Commit state: c_t and y_t become the next step's history.
    std::swap(state.c, s.t2);
    std::copy(y.raw().begin(), y.raw().end(),
              state.h.raw().begin());
}

std::vector<const LinearKernel *>
CompiledLstmLayer::kernels() const
{
    std::vector<const LinearKernel *> out{
        p_.wix.get(), p_.wfx.get(), p_.wcx.get(), p_.wox.get(),
        p_.wir.get(), p_.wfr.get(), p_.wcr.get(), p_.wor.get()};
    if (p_.wym)
        out.push_back(p_.wym.get());
    return out;
}

// --- CompiledGruLayer --------------------------------------------------

CompiledGruLayer::CompiledGruLayer(GruParts parts)
    : p_(std::move(parts))
{
    const std::size_t in = p_.cfg.inputSize;
    const std::size_t h = p_.cfg.hiddenSize;
    checkKernel(p_.wzx.get(), "wzx", in, h);
    checkKernel(p_.wrx.get(), "wrx", in, h);
    checkKernel(p_.wcx.get(), "wcx", in, h);
    checkKernel(p_.wzc.get(), "wzc", h, h);
    checkKernel(p_.wrc.get(), "wrc", h, h);
    checkKernel(p_.wcc.get(), "wcc", h, h);
    ernn_assert(p_.bz.size() == h && p_.br.size() == h &&
                p_.bc.size() == h,
                "compiled gru: bias size mismatch");

    fusedInput_ = fusableGroup(
        {p_.wzx.get(), p_.wrx.get(), p_.wcx.get()});
    fusedRec_ = fusableGroup({p_.wzc.get(), p_.wrc.get()});
}

std::size_t
CompiledGruLayer::inputSize() const
{
    return p_.cfg.inputSize;
}

std::size_t
CompiledGruLayer::outputSize() const
{
    return p_.cfg.hiddenSize;
}

std::size_t
CompiledGruLayer::storedParams() const
{
    return p_.wzx->storedParams() + p_.wrx->storedParams() +
           p_.wcx->storedParams() + p_.wzc->storedParams() +
           p_.wrc->storedParams() + p_.wcc->storedParams() +
           p_.bz.size() + p_.br.size() + p_.bc.size();
}

void
CompiledGruLayer::initState(LayerState &state) const
{
    state.h.clear(); // the GRU's output *is* its cell state
    state.c.assign(p_.cfg.hiddenSize, 0.0);
}

void
CompiledGruLayer::initScratch(LayerScratch &s) const
{
    const std::size_t h = p_.cfg.hiddenSize;
    s.g1.assign(h, 0.0);
    s.g2.assign(h, 0.0);
    s.g3.assign(h, 0.0);
    s.g4.clear();
    s.t1.assign(h, 0.0);
    s.t2.assign(h, 0.0);
    s.t3.assign(h, 0.0);
}

void
CompiledGruLayer::step(const Vector &x, LayerState &state, Vector &y,
                       LayerScratch &s, KernelScratch &ks,
                       const Datapath &dp) const
{
    const std::size_t h = p_.cfg.hiddenSize;

    // Gate matvec contributions: z/r/c~ share x, z/r share the
    // previous state, so the fused CirculantFFT path computes
    // each shared operand's segment FFTs once.
    Vector *gates[3] = {&s.g1, &s.g2, &s.g3};
    if (!fusedInput_.empty()) {
        for (Vector *g : gates)
            std::fill(g->begin(), g->end(), 0.0);
        circulant::computeSegmentSpectra(
            x, fusedInput_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 3; ++k)
            fusedInput_[k]->matvecAccFromSpectra(
                ks.fft.segSpectra, *gates[k], ks.fft);
    } else {
        p_.wzx->apply(x, s.g1, ks);
        dp.post(s.g1);
        p_.wrx->apply(x, s.g2, ks);
        dp.post(s.g2);
        p_.wcx->apply(x, s.g3, ks);
        dp.post(s.g3);
    }
    if (!fusedRec_.empty()) {
        circulant::computeSegmentSpectra(
            state.c, fusedRec_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 2; ++k)
            fusedRec_[k]->matvecAccFromSpectra(
                ks.fft.segSpectra, *gates[k], ks.fft);
    } else {
        p_.wzc->apply(state.c, s.t1, ks);
        dp.post(s.t1);
        addInPlace(s.g1, s.t1);
        p_.wrc->apply(state.c, s.t1, ks);
        dp.post(s.t1);
        addInPlace(s.g2, s.t1);
    }

    // Update gate (Eqn. 2a).
    addInPlace(s.g1, p_.bz);
    dp.post(s.g1);
    dp.activate(nn::ActKind::Sigmoid, s.g1);
    dp.post(s.g1);

    // Reset gate (Eqn. 2b).
    addInPlace(s.g2, p_.br);
    dp.post(s.g2);
    dp.activate(nn::ActKind::Sigmoid, s.g2);
    dp.post(s.g2);

    // Candidate from the reset-gated history (Eqn. 2c).
    std::fill(s.t2.begin(), s.t2.end(), 0.0);
    hadamardAcc(s.t2, s.g2, state.c);
    dp.post(s.t2);
    p_.wcc->apply(s.t2, s.t1, ks);
    dp.post(s.t1);
    addInPlace(s.g3, s.t1);
    addInPlace(s.g3, p_.bc);
    dp.post(s.g3);
    dp.activate(p_.cfg.candidateAct, s.g3);
    dp.post(s.g3);

    // State blend (Eqn. 2d): c = (1-z).c' + z.c~ into t3.
    for (std::size_t k = 0; k < h; ++k)
        s.t3[k] = (1.0 - s.g1[k]) * state.c[k] + s.g1[k] * s.g3[k];
    dp.post(s.t3);

    std::copy(s.t3.begin(), s.t3.end(), y.begin());
    std::swap(state.c, s.t3);
}

void
CompiledGruLayer::initBatchState(LayerBatchState &state,
                                 std::size_t lanes) const
{
    state.h.reshape(0, 0); // the GRU's output *is* its cell state
    state.c.reshape(p_.cfg.hiddenSize, lanes);
}

void
CompiledGruLayer::initBatchScratch(LayerBatchScratch &s,
                                   std::size_t lanes) const
{
    const std::size_t h = p_.cfg.hiddenSize;
    s.g1.reshape(h, lanes);
    s.g2.reshape(h, lanes);
    s.g3.reshape(h, lanes);
    s.g4.reshape(0, 0);
    s.t1.reshape(h, lanes);
    s.t2.reshape(h, lanes);
    s.t3.reshape(h, lanes);
}

void
CompiledGruLayer::stepBatch(const Matrix &x, LayerBatchState &state,
                            Matrix &y, LayerBatchScratch &s,
                            KernelScratch &ks, const Datapath &dp) const
{
    // Batched mirror of step(): identical operation order per lane
    // column, GEMM-shaped kernel calls across lanes.
    Matrix *gates[3] = {&s.g1, &s.g2, &s.g3};
    if (!fusedInput_.empty()) {
        for (Matrix *g : gates)
            g->setZero();
        circulant::computeSegmentSpectraBatch(
            x, fusedInput_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 3; ++k)
            fusedInput_[k]->matvecAccFromSpectraBatch(*gates[k],
                                                      ks.fft);
    } else {
        p_.wzx->applyBatch(x, s.g1, ks);
        dp.post(s.g1.raw());
        p_.wrx->applyBatch(x, s.g2, ks);
        dp.post(s.g2.raw());
        p_.wcx->applyBatch(x, s.g3, ks);
        dp.post(s.g3.raw());
    }
    if (!fusedRec_.empty()) {
        circulant::computeSegmentSpectraBatch(
            state.c, fusedRec_.front()->blockSize(), ks.fft);
        for (std::size_t k = 0; k < 2; ++k)
            fusedRec_[k]->matvecAccFromSpectraBatch(*gates[k],
                                                    ks.fft);
    } else {
        p_.wzc->applyBatch(state.c, s.t1, ks);
        dp.post(s.t1.raw());
        addInPlace(s.g1.raw(), s.t1.raw());
        p_.wrc->applyBatch(state.c, s.t1, ks);
        dp.post(s.t1.raw());
        addInPlace(s.g2.raw(), s.t1.raw());
    }

    // Update gate (Eqn. 2a).
    addBiasRows(s.g1, p_.bz);
    dp.post(s.g1.raw());
    dp.activate(nn::ActKind::Sigmoid, s.g1.raw());
    dp.post(s.g1.raw());

    // Reset gate (Eqn. 2b).
    addBiasRows(s.g2, p_.br);
    dp.post(s.g2.raw());
    dp.activate(nn::ActKind::Sigmoid, s.g2.raw());
    dp.post(s.g2.raw());

    // Candidate from the reset-gated history (Eqn. 2c).
    s.t2.setZero();
    hadamardAcc(s.t2.raw(), s.g2.raw(), state.c.raw());
    dp.post(s.t2.raw());
    p_.wcc->applyBatch(s.t2, s.t1, ks);
    dp.post(s.t1.raw());
    addInPlace(s.g3.raw(), s.t1.raw());
    addBiasRows(s.g3, p_.bc);
    dp.post(s.g3.raw());
    dp.activate(p_.cfg.candidateAct, s.g3.raw());
    dp.post(s.g3.raw());

    // State blend (Eqn. 2d): c = (1-z).c' + z.c~ into t3.
    {
        const Vector &z = s.g1.raw();
        const Vector &cand = s.g3.raw();
        const Vector &prev = state.c.raw();
        Vector &out = s.t3.raw();
        for (std::size_t k = 0; k < out.size(); ++k)
            out[k] = (1.0 - z[k]) * prev[k] + z[k] * cand[k];
    }
    dp.post(s.t3.raw());

    std::copy(s.t3.raw().begin(), s.t3.raw().end(),
              y.raw().begin());
    std::swap(state.c, s.t3);
}

std::vector<const LinearKernel *>
CompiledGruLayer::kernels() const
{
    return {p_.wzx.get(), p_.wrx.get(), p_.wcx.get(),
            p_.wzc.get(), p_.wrc.get(), p_.wcc.get()};
}

} // namespace detail

namespace
{

/** Shared compile-time context: kernel selection + tensor freezing. */
struct CompileContext
{
    const CompileOptions &opts;
    bool fixedPoint;

    std::unique_ptr<LinearKernel> kernel(const nn::LinearOp &op) const
    {
        return KernelRegistry::instance().make(
            resolveBackend(opts.backend, op), op, opts);
    }

    /** Copy a bias-like tensor, rounding it per-tensor when the
     *  FixedPoint backend is active (quant::quantizeParams treats
     *  every bias as its own view). */
    Vector freeze(const Vector &v) const
    {
        Vector out = v;
        if (fixedPoint && !out.empty())
            quant::quantizeWithRangeAnalysis(out,
                                             opts.fixedPointBits);
        return out;
    }
};

detail::LstmParts
freezeLstm(const nn::LstmLayer &src, const CompileContext &ctx)
{
    detail::LstmParts p;
    p.cfg = src.config();
    p.wix = ctx.kernel(src.wix());
    p.wfx = ctx.kernel(src.wfx());
    p.wcx = ctx.kernel(src.wcx());
    p.wox = ctx.kernel(src.wox());
    p.wir = ctx.kernel(src.wir());
    p.wfr = ctx.kernel(src.wfr());
    p.wcr = ctx.kernel(src.wcr());
    p.wor = ctx.kernel(src.wor());
    if (src.wym())
        p.wym = ctx.kernel(*src.wym());
    p.bi = ctx.freeze(src.bi());
    p.bf = ctx.freeze(src.bf());
    p.bc = ctx.freeze(src.bc());
    p.bo = ctx.freeze(src.bo());
    if (p.cfg.peephole) {
        p.wic = ctx.freeze(src.wic());
        p.wfc = ctx.freeze(src.wfc());
        p.woc = ctx.freeze(src.woc());
    }
    return p;
}

detail::GruParts
freezeGru(const nn::GruLayer &src, const CompileContext &ctx)
{
    detail::GruParts p;
    p.cfg = src.config();
    p.wzx = ctx.kernel(src.wzx());
    p.wrx = ctx.kernel(src.wrx());
    p.wcx = ctx.kernel(src.wcx());
    p.wzc = ctx.kernel(src.wzc());
    p.wrc = ctx.kernel(src.wrc());
    p.wcc = ctx.kernel(src.wcc());
    p.bz = ctx.freeze(src.bz());
    p.br = ctx.freeze(src.br());
    p.bc = ctx.freeze(src.bc());
    return p;
}

} // namespace

std::size_t
CompiledModel::inputSize() const
{
    ernn_assert(!layers_.empty(), "empty compiled model");
    return layers_.front()->inputSize();
}

std::size_t
CompiledModel::storedParams() const
{
    std::size_t n = 0;
    for (const auto &l : layers_)
        n += l->storedParams();
    if (classifier_)
        n += classifier_->storedParams() + classifierBias_.size();
    return n;
}

std::string
CompiledModel::describe() const
{
    std::ostringstream os;
    os << "compiled[" << backendKindName(options_.backend) << "]";
    for (const auto &l : layers_)
        os << " " << l->kindName() << l->outputSize();
    os << " -> classes" << numClasses();
    if (datapath_.fixedPoint)
        os << " @" << options_.fixedPointBits << "-bit"
           << (datapath_.integerDatapath ? " int16" : " f64-emulated");
    return os.str();
}

CompiledModel
compile(const nn::StackedRnn &model, const CompileOptions &opts)
{
    ernn_assert(model.numLayers() > 0, "compile: empty model");
    ernn_assert(model.numClasses() > 0,
                "compile: classifier not attached");

    CompiledModel out;
    out.options_ = opts;
    out.datapath_ = detail::makeDatapath(opts);

    const CompileContext ctx{opts, out.datapath_.fixedPoint};

    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const nn::RnnLayer &src = model.layer(i);
        if (const auto *lstm =
                dynamic_cast<const nn::LstmLayer *>(&src)) {
            out.layers_.push_back(
                std::make_unique<detail::CompiledLstmLayer>(
                    freezeLstm(*lstm, ctx)));
        } else if (const auto *gru =
                       dynamic_cast<const nn::GruLayer *>(&src)) {
            out.layers_.push_back(
                std::make_unique<detail::CompiledGruLayer>(
                    freezeGru(*gru, ctx)));
        } else {
            ernn_panic("compile: unknown layer kind '"
                       << src.kindName() << "'");
        }
    }

    out.classifier_ = ctx.kernel(model.classifier());
    out.classifierBias_ = ctx.freeze(model.classifierBias());
    ernn_assert(out.classifier_->outDim() == out.numClasses(),
                "compile: classifier shape mismatch");
    return out;
}

std::shared_ptr<const CompiledModel>
compileShared(const nn::StackedRnn &model, const CompileOptions &opts)
{
    // Friend access: the move constructor is private so arbitrary
    // callers cannot scatter half-moved models, but hoisting the
    // freshly compiled value onto the heap is exactly its purpose.
    return std::shared_ptr<const CompiledModel>(
        new CompiledModel(compile(model, opts)));
}

} // namespace ernn::runtime
