#include "runtime/compiled_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "nn/gru.hh"
#include "nn/lstm.hh"

namespace ernn::runtime
{

void
Datapath::activate(nn::ActKind kind, Vector &v) const
{
    if (fixedPoint) {
        const nn::PiecewiseLinear *table =
            kind == nn::ActKind::Sigmoid ? sigmoidTable.get()
                                         : tanhTable.get();
        if (table) {
            table->apply(v);
            return;
        }
    }
    nn::applyActivation(kind, v);
}

namespace
{

/** Shared compile-time context: kernel selection + tensor freezing. */
struct CompileContext
{
    const CompileOptions &opts;
    bool fixedPoint;

    std::unique_ptr<LinearKernel> kernel(const nn::LinearOp &op) const
    {
        return KernelRegistry::instance().make(
            resolveBackend(opts.backend, op), op, opts);
    }

    /** Copy a bias-like tensor, rounding it per-tensor when the
     *  FixedPoint backend is active (quant::quantizeParams treats
     *  every bias as its own view). */
    Vector freeze(const Vector &v) const
    {
        Vector out = v;
        if (fixedPoint && !out.empty())
            quant::quantizeWithRangeAnalysis(out,
                                             opts.fixedPointBits);
        return out;
    }
};

/**
 * The circulant weights of a kernel group when every member runs the
 * CirculantFFT backend with identical input geometry, else empty.
 * Such a group multiplies one shared operand (e.g. the four LSTM
 * gate matrices on x_t), so its segment FFTs are computed once and
 * shared — extending the paper's FFT decoupling across gates, which
 * the per-matrix training path cannot do.
 */
std::vector<const circulant::BlockCirculantMatrix *>
fusableGroup(std::initializer_list<const LinearKernel *> group)
{
    std::vector<const circulant::BlockCirculantMatrix *> out;
    for (const LinearKernel *k : group) {
        const auto *fft = dynamic_cast<const CirculantFftKernel *>(k);
        if (!fft)
            return {};
        const auto &w = fft->weight();
        if (!out.empty() &&
            (w.cols() != out.front()->cols() ||
             w.blockSize() != out.front()->blockSize()))
            return {};
        out.push_back(&w);
    }
    return out;
}

class CompiledLstmLayer : public CompiledLayer
{
  public:
    CompiledLstmLayer(const nn::LstmLayer &src,
                      const CompileContext &ctx)
        : cfg_(src.config()),
          wix_(ctx.kernel(src.wix())), wfx_(ctx.kernel(src.wfx())),
          wcx_(ctx.kernel(src.wcx())), wox_(ctx.kernel(src.wox())),
          wir_(ctx.kernel(src.wir())), wfr_(ctx.kernel(src.wfr())),
          wcr_(ctx.kernel(src.wcr())), wor_(ctx.kernel(src.wor())),
          bi_(ctx.freeze(src.bi())), bf_(ctx.freeze(src.bf())),
          bc_(ctx.freeze(src.bc())), bo_(ctx.freeze(src.bo()))
    {
        if (src.wym())
            wym_ = ctx.kernel(*src.wym());
        if (cfg_.peephole) {
            wic_ = ctx.freeze(src.wic());
            wfc_ = ctx.freeze(src.wfc());
            woc_ = ctx.freeze(src.woc());
        }
        fusedInput_ = fusableGroup(
            {wix_.get(), wfx_.get(), wcx_.get(), wox_.get()});
        fusedRec_ = fusableGroup(
            {wir_.get(), wfr_.get(), wcr_.get(), wor_.get()});
    }

    std::size_t inputSize() const override { return cfg_.inputSize; }
    std::size_t outputSize() const override
    {
        return cfg_.outputSize();
    }
    std::string kindName() const override { return "lstm"; }

    std::size_t storedParams() const override
    {
        std::size_t n = wix_->storedParams() + wfx_->storedParams() +
                        wcx_->storedParams() + wox_->storedParams() +
                        wir_->storedParams() + wfr_->storedParams() +
                        wcr_->storedParams() + wor_->storedParams();
        if (wym_)
            n += wym_->storedParams();
        n += bi_.size() + bf_.size() + bc_.size() + bo_.size();
        n += wic_.size() + wfc_.size() + woc_.size();
        return n;
    }

    void initState(LayerState &state) const override
    {
        state.h.assign(cfg_.outputSize(), 0.0);
        state.c.assign(cfg_.hiddenSize, 0.0);
    }

    void initScratch(LayerScratch &s) const override
    {
        const std::size_t h = cfg_.hiddenSize;
        s.g1.assign(h, 0.0);
        s.g2.assign(h, 0.0);
        s.g3.assign(h, 0.0);
        s.g4.assign(h, 0.0);
        s.t1.assign(h, 0.0);
        s.t2.assign(h, 0.0);
        s.t3.assign(h, 0.0);
    }

    void step(const Vector &x, LayerState &state, Vector &y,
              LayerScratch &s, KernelScratch &ks,
              const Datapath &dp) const override
    {
        // Gate matvec contributions first: i/f/g/o share x (and
        // y_{t-1}), so the fused CirculantFFT path computes each
        // operand's segment FFTs once for all four gates (q FFTs
        // instead of 4q).
        Vector *gates[4] = {&s.g1, &s.g2, &s.g3, &s.g4};
        if (!fusedInput_.empty()) {
            for (Vector *g : gates)
                std::fill(g->begin(), g->end(), 0.0);
            circulant::computeSegmentSpectra(
                x, fusedInput_.front()->blockSize(), ks.fft);
            for (std::size_t k = 0; k < 4; ++k)
                fusedInput_[k]->matvecAccFromSpectra(
                    ks.fft.segSpectra, *gates[k], ks.fft);
        } else {
            wix_->apply(x, s.g1, ks);
            dp.post(s.g1);
            wfx_->apply(x, s.g2, ks);
            dp.post(s.g2);
            wcx_->apply(x, s.g3, ks);
            dp.post(s.g3);
            wox_->apply(x, s.g4, ks);
            dp.post(s.g4);
        }
        if (!fusedRec_.empty()) {
            circulant::computeSegmentSpectra(
                state.h, fusedRec_.front()->blockSize(), ks.fft);
            for (std::size_t k = 0; k < 4; ++k)
                fusedRec_[k]->matvecAccFromSpectra(
                    ks.fft.segSpectra, *gates[k], ks.fft);
        } else {
            const LinearKernel *recs[4] = {wir_.get(), wfr_.get(),
                                           wcr_.get(), wor_.get()};
            for (std::size_t k = 0; k < 4; ++k) {
                recs[k]->apply(state.h, s.t1, ks);
                dp.post(s.t1);
                addInPlace(*gates[k], s.t1);
            }
        }

        // Input gate: i = sigma(Wix x + Wir y' + wic.c' + bi).
        if (cfg_.peephole)
            hadamardAcc(s.g1, wic_, state.c);
        addInPlace(s.g1, bi_);
        dp.post(s.g1);
        dp.activate(nn::ActKind::Sigmoid, s.g1);
        dp.post(s.g1);

        // Forget gate.
        if (cfg_.peephole)
            hadamardAcc(s.g2, wfc_, state.c);
        addInPlace(s.g2, bf_);
        dp.post(s.g2);
        dp.activate(nn::ActKind::Sigmoid, s.g2);
        dp.post(s.g2);

        // Cell input (no peephole, Eqn. 1c).
        addInPlace(s.g3, bc_);
        dp.post(s.g3);
        dp.activate(cfg_.cellInputAct, s.g3);
        dp.post(s.g3);

        // Cell state: c = f.c' + g.i (Eqn. 1d) into t2.
        std::fill(s.t2.begin(), s.t2.end(), 0.0);
        hadamardAcc(s.t2, s.g2, state.c);
        hadamardAcc(s.t2, s.g3, s.g1);
        dp.post(s.t2);

        // Output gate (peephole reads the *current* c, Eqn. 1e).
        if (cfg_.peephole)
            hadamardAcc(s.g4, woc_, s.t2);
        addInPlace(s.g4, bo_);
        dp.post(s.g4);
        dp.activate(nn::ActKind::Sigmoid, s.g4);
        dp.post(s.g4);

        // Cell output m = o . h(c) (Eqn. 1f) into t3.
        std::copy(s.t2.begin(), s.t2.end(), s.t3.begin());
        dp.activate(cfg_.outputAct, s.t3);
        dp.post(s.t3);
        hadamardInPlace(s.t3, s.g4);
        dp.post(s.t3);

        // Projected output (Eqn. 1g).
        if (wym_) {
            wym_->apply(s.t3, y, ks);
            dp.post(y);
        } else {
            std::copy(s.t3.begin(), s.t3.end(), y.begin());
        }

        // Commit state: c_t and y_t become the next step's history.
        std::swap(state.c, s.t2);
        std::copy(y.begin(), y.end(), state.h.begin());
    }

    std::vector<const LinearKernel *> kernels() const override
    {
        std::vector<const LinearKernel *> out{
            wix_.get(), wfx_.get(), wcx_.get(), wox_.get(),
            wir_.get(), wfr_.get(), wcr_.get(), wor_.get()};
        if (wym_)
            out.push_back(wym_.get());
        return out;
    }

  private:
    nn::LstmConfig cfg_;
    std::unique_ptr<LinearKernel> wix_, wfx_, wcx_, wox_;
    std::unique_ptr<LinearKernel> wir_, wfr_, wcr_, wor_;
    std::unique_ptr<LinearKernel> wym_;
    Vector bi_, bf_, bc_, bo_;
    Vector wic_, wfc_, woc_;

    /** Shared-operand gate groups (empty = unfused fallback). */
    std::vector<const circulant::BlockCirculantMatrix *> fusedInput_;
    std::vector<const circulant::BlockCirculantMatrix *> fusedRec_;
};

class CompiledGruLayer : public CompiledLayer
{
  public:
    CompiledGruLayer(const nn::GruLayer &src, const CompileContext &ctx)
        : cfg_(src.config()),
          wzx_(ctx.kernel(src.wzx())), wrx_(ctx.kernel(src.wrx())),
          wcx_(ctx.kernel(src.wcx())), wzc_(ctx.kernel(src.wzc())),
          wrc_(ctx.kernel(src.wrc())), wcc_(ctx.kernel(src.wcc())),
          bz_(ctx.freeze(src.bz())), br_(ctx.freeze(src.br())),
          bc_(ctx.freeze(src.bc()))
    {
        fusedInput_ = fusableGroup(
            {wzx_.get(), wrx_.get(), wcx_.get()});
        fusedRec_ = fusableGroup({wzc_.get(), wrc_.get()});
    }

    std::size_t inputSize() const override { return cfg_.inputSize; }
    std::size_t outputSize() const override { return cfg_.hiddenSize; }
    std::string kindName() const override { return "gru"; }

    std::size_t storedParams() const override
    {
        return wzx_->storedParams() + wrx_->storedParams() +
               wcx_->storedParams() + wzc_->storedParams() +
               wrc_->storedParams() + wcc_->storedParams() +
               bz_.size() + br_.size() + bc_.size();
    }

    void initState(LayerState &state) const override
    {
        state.h.clear(); // the GRU's output *is* its cell state
        state.c.assign(cfg_.hiddenSize, 0.0);
    }

    void initScratch(LayerScratch &s) const override
    {
        const std::size_t h = cfg_.hiddenSize;
        s.g1.assign(h, 0.0);
        s.g2.assign(h, 0.0);
        s.g3.assign(h, 0.0);
        s.g4.clear();
        s.t1.assign(h, 0.0);
        s.t2.assign(h, 0.0);
        s.t3.assign(h, 0.0);
    }

    void step(const Vector &x, LayerState &state, Vector &y,
              LayerScratch &s, KernelScratch &ks,
              const Datapath &dp) const override
    {
        const std::size_t h = cfg_.hiddenSize;

        // Gate matvec contributions: z/r/c~ share x, z/r share the
        // previous state, so the fused CirculantFFT path computes
        // each shared operand's segment FFTs once.
        Vector *gates[3] = {&s.g1, &s.g2, &s.g3};
        if (!fusedInput_.empty()) {
            for (Vector *g : gates)
                std::fill(g->begin(), g->end(), 0.0);
            circulant::computeSegmentSpectra(
                x, fusedInput_.front()->blockSize(), ks.fft);
            for (std::size_t k = 0; k < 3; ++k)
                fusedInput_[k]->matvecAccFromSpectra(
                    ks.fft.segSpectra, *gates[k], ks.fft);
        } else {
            wzx_->apply(x, s.g1, ks);
            dp.post(s.g1);
            wrx_->apply(x, s.g2, ks);
            dp.post(s.g2);
            wcx_->apply(x, s.g3, ks);
            dp.post(s.g3);
        }
        if (!fusedRec_.empty()) {
            circulant::computeSegmentSpectra(
                state.c, fusedRec_.front()->blockSize(), ks.fft);
            for (std::size_t k = 0; k < 2; ++k)
                fusedRec_[k]->matvecAccFromSpectra(
                    ks.fft.segSpectra, *gates[k], ks.fft);
        } else {
            wzc_->apply(state.c, s.t1, ks);
            dp.post(s.t1);
            addInPlace(s.g1, s.t1);
            wrc_->apply(state.c, s.t1, ks);
            dp.post(s.t1);
            addInPlace(s.g2, s.t1);
        }

        // Update gate (Eqn. 2a).
        addInPlace(s.g1, bz_);
        dp.post(s.g1);
        dp.activate(nn::ActKind::Sigmoid, s.g1);
        dp.post(s.g1);

        // Reset gate (Eqn. 2b).
        addInPlace(s.g2, br_);
        dp.post(s.g2);
        dp.activate(nn::ActKind::Sigmoid, s.g2);
        dp.post(s.g2);

        // Candidate from the reset-gated history (Eqn. 2c).
        std::fill(s.t2.begin(), s.t2.end(), 0.0);
        hadamardAcc(s.t2, s.g2, state.c);
        dp.post(s.t2);
        wcc_->apply(s.t2, s.t1, ks);
        dp.post(s.t1);
        addInPlace(s.g3, s.t1);
        addInPlace(s.g3, bc_);
        dp.post(s.g3);
        dp.activate(cfg_.candidateAct, s.g3);
        dp.post(s.g3);

        // State blend (Eqn. 2d): c = (1-z).c' + z.c~ into t3.
        for (std::size_t k = 0; k < h; ++k)
            s.t3[k] = (1.0 - s.g1[k]) * state.c[k] +
                      s.g1[k] * s.g3[k];
        dp.post(s.t3);

        std::copy(s.t3.begin(), s.t3.end(), y.begin());
        std::swap(state.c, s.t3);
    }

    std::vector<const LinearKernel *> kernels() const override
    {
        return {wzx_.get(), wrx_.get(), wcx_.get(),
                wzc_.get(), wrc_.get(), wcc_.get()};
    }

  private:
    nn::GruConfig cfg_;
    std::unique_ptr<LinearKernel> wzx_, wrx_, wcx_;
    std::unique_ptr<LinearKernel> wzc_, wrc_, wcc_;
    Vector bz_, br_, bc_;

    /** Shared-operand gate groups (empty = unfused fallback). */
    std::vector<const circulant::BlockCirculantMatrix *> fusedInput_;
    std::vector<const circulant::BlockCirculantMatrix *> fusedRec_;
};

} // namespace

std::size_t
CompiledModel::inputSize() const
{
    ernn_assert(!layers_.empty(), "empty compiled model");
    return layers_.front()->inputSize();
}

std::size_t
CompiledModel::storedParams() const
{
    std::size_t n = 0;
    for (const auto &l : layers_)
        n += l->storedParams();
    if (classifier_)
        n += classifier_->storedParams() + classifierBias_.size();
    return n;
}

std::string
CompiledModel::describe() const
{
    std::ostringstream os;
    os << "compiled[" << backendKindName(options_.backend) << "]";
    for (const auto &l : layers_)
        os << " " << l->kindName() << l->outputSize();
    os << " -> classes" << numClasses();
    if (datapath_.fixedPoint)
        os << " @" << options_.fixedPointBits << "-bit";
    return os.str();
}

CompiledModel
compile(const nn::StackedRnn &model, const CompileOptions &opts)
{
    ernn_assert(model.numLayers() > 0, "compile: empty model");
    ernn_assert(model.numClasses() > 0,
                "compile: classifier not attached");

    CompiledModel out;
    out.options_ = opts;

    if (opts.backend == BackendKind::FixedPoint) {
        out.datapath_.fixedPoint = true;
        out.datapath_.valueFormat = quant::chooseFormat(
            opts.fixedPointBits, opts.activationRange);
        if (opts.activationSegments >= 2) {
            out.datapath_.sigmoidTable =
                std::make_shared<const nn::PiecewiseLinear>(
                    nn::ActKind::Sigmoid, opts.activationSegments,
                    opts.activationRange);
            out.datapath_.tanhTable =
                std::make_shared<const nn::PiecewiseLinear>(
                    nn::ActKind::Tanh, opts.activationSegments,
                    opts.activationRange);
        }
    }

    const CompileContext ctx{opts, out.datapath_.fixedPoint};

    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        const nn::RnnLayer &src = model.layer(i);
        if (const auto *lstm =
                dynamic_cast<const nn::LstmLayer *>(&src)) {
            out.layers_.push_back(
                std::make_unique<CompiledLstmLayer>(*lstm, ctx));
        } else if (const auto *gru =
                       dynamic_cast<const nn::GruLayer *>(&src)) {
            out.layers_.push_back(
                std::make_unique<CompiledGruLayer>(*gru, ctx));
        } else {
            ernn_panic("compile: unknown layer kind '"
                       << src.kindName() << "'");
        }
    }

    out.classifier_ = ctx.kernel(model.classifier());
    out.classifierBias_ = ctx.freeze(model.classifierBias());
    ernn_assert(out.classifier_->outDim() == out.numClasses(),
                "compile: classifier shape mismatch");
    return out;
}

} // namespace ernn::runtime
