/**
 * @file
 * Immutable deployed-model artifact. runtime::compile() freezes a
 * trained nn::StackedRnn into a CompiledModel, mirroring the paper's
 * train -> compress -> quantize -> deploy pipeline: per-layer matvec
 * kernels are selected from the backend registry, circulant spectra
 * are precomputed, and (for the FixedPoint backend) weights are
 * rounded to their per-tensor static scaling and activations replaced
 * by the Phase II piecewise-linear tables.
 *
 * A CompiledModel is shared, read-only state. All mutable buffers
 * (recurrent state, gate scratch, FFT workspaces) belong to the
 * InferenceSession objects it creates.
 *
 * A compiled model is also *portable*: runtime/artifact.hh persists
 * it to a versioned, checksummed binary file and loads it back
 * bit-exactly, so serving processes (serve::InferenceServer, the
 * `ernn` CLI) never need the training stack.
 */

#ifndef ERNN_RUNTIME_COMPILED_MODEL_HH
#define ERNN_RUNTIME_COMPILED_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "nn/activation.hh"
#include "nn/rnn.hh"
#include "runtime/backend.hh"

namespace ernn::runtime
{

class InferenceSession;

namespace detail
{
struct ArtifactAccess;
} // namespace detail

/**
 * Frozen datapath semantics shared by every compiled layer: exact
 * arithmetic for the float backends, or value quantization after
 * every operation plus PWL activation tables for FixedPoint (the
 * discipline the HLS interpreter applies in hardware mode).
 */
struct Datapath
{
    bool fixedPoint = false;
    quant::FixedPointFormat valueFormat{}; //!< used when fixedPoint
    std::shared_ptr<const nn::PiecewiseLinear> sigmoidTable;
    std::shared_ptr<const nn::PiecewiseLinear> tanhTable;

    /**
     * Native integer datapath armed: FixedPoint kernels run int16
     * MACs with int64 accumulation and activations resolve through
     * the integer-indexed LUTs below. False in emulation mode
     * (CompileOptions::fixedPointEmulation) and above 16 bits, where
     * the f64 reference semantics run instead — bit-identical either
     * way.
     */
    bool integerDatapath = false;

    /**
     * Folded activate+post lookup tables for the integer datapath:
     * one already-requantized output value per value-grid code
     * (2^totalBits entries, indexed by code - minQ). Precomputed from
     * the exact same PWL/exact activation + post the emulation runs,
     * so equality is by construction.
     */
    std::shared_ptr<const Vector> sigmoidLut;
    std::shared_ptr<const Vector> tanhLut;

    /** Quantize a produced value vector (no-op when exact). */
    void post(Vector &v) const
    {
        if (!fixedPoint)
            return;
        for (auto &x : v)
            x = valueFormat.quantize(x);
    }

    /** Apply an activation through the configured implementation. */
    void activate(nn::ActKind kind, Vector &v) const;
};

/** Per-layer recurrent state: owned by streams, sized by the layer. */
struct LayerState
{
    Vector h; //!< previous output y_{t-1} (empty when unused)
    Vector c; //!< cell state c_{t-1}
};

/** Per-layer preallocated step scratch: owned by sessions. */
struct LayerScratch
{
    Vector g1, g2, g3, g4; //!< gate buffers
    Vector t1, t2, t3;     //!< cell/candidate temporaries
};

/**
 * Batch-major recurrent state of one layer: feature x lanes matrices,
 * one utterance lane per column. Owned by the session's run() pool;
 * lane l's column holds exactly the bits the per-utterance LayerState
 * would hold after the same frames.
 */
struct LayerBatchState
{
    Matrix h; //!< previous outputs y_{t-1} (empty when unused)
    Matrix c; //!< cell states c_{t-1}
};

/** Batch-major per-layer step scratch (see LayerScratch). */
struct LayerBatchScratch
{
    Matrix g1, g2, g3, g4; //!< gate buffers
    Matrix t1, t2, t3;     //!< cell/candidate temporaries
};

/** One frozen recurrent layer: immutable kernels + step semantics. */
class CompiledLayer
{
  public:
    virtual ~CompiledLayer() = default;

    virtual std::size_t inputSize() const = 0;
    virtual std::size_t outputSize() const = 0;
    virtual std::string kindName() const = 0;
    virtual std::size_t storedParams() const = 0;

    /** Size (and zero) a state object for this layer. */
    virtual void initState(LayerState &state) const = 0;

    /** Presize a scratch object for this layer. */
    virtual void initScratch(LayerScratch &scratch) const = 0;

    /**
     * One recurrent step: read @p x and @p state (t-1), write the
     * layer output into the presized @p y, and advance @p state.
     * Must not allocate once scratch and state are warm.
     */
    virtual void step(const Vector &x, LayerState &state, Vector &y,
                      LayerScratch &scratch, KernelScratch &kernels,
                      const Datapath &dp) const = 0;

    /** Size (and zero) batch-major state for @p lanes utterances.
     *  Reuses the matrices' backing storage across calls. */
    virtual void initBatchState(LayerBatchState &state,
                                std::size_t lanes) const = 0;

    /** Presize batch-major scratch for @p lanes utterances. */
    virtual void initBatchScratch(LayerBatchScratch &scratch,
                                  std::size_t lanes) const = 0;

    /**
     * One recurrent step over every lane at once: read the
     * (inputSize x lanes) matrix @p x and @p state (t-1), write the
     * layer outputs into the presized (outputSize x lanes) @p y, and
     * advance @p state. Each kernel runs one GEMM-shaped batched call
     * instead of a matvec per lane; column l of every result is
     * bit-identical to step() on lane l alone. Must not allocate once
     * scratch and state are warm.
     */
    virtual void stepBatch(const Matrix &x, LayerBatchState &state,
                           Matrix &y, LayerBatchScratch &scratch,
                           KernelScratch &kernels,
                           const Datapath &dp) const = 0;

    /** All kernels of this layer (introspection / reporting). */
    virtual std::vector<const LinearKernel *> kernels() const = 0;
};

/**
 * Immutable deployed model; create with runtime::compile(). Pinned
 * in place once constructed (not movable or copyable): sessions hold
 * a reference to their model, so moving one would silently dangle
 * every outstanding session. Wrap in a smart pointer to store in
 * containers.
 */
class CompiledModel
{
  public:
    std::size_t numLayers() const { return layers_.size(); }
    const CompiledLayer &layer(std::size_t i) const
    {
        return *layers_[i];
    }

    std::size_t inputSize() const;
    std::size_t numClasses() const
    {
        return classifierBias_.size();
    }

    const LinearKernel &classifier() const { return *classifier_; }
    const Vector &classifierBias() const { return classifierBias_; }

    const Datapath &datapath() const { return datapath_; }
    const CompileOptions &options() const { return options_; }

    /** Total stored parameters across kernels and biases. */
    std::size_t storedParams() const;

    /** e.g. "compiled[circulant-fft] lstm64->lstm64->classes10". */
    std::string describe() const;

    /**
     * Create an inference session bound to this model. The session
     * borrows the model: keep the model alive while sessions run.
     */
    /** @p computeThreads 0 inherits options().computeThreads; any
     *  other value overrides it for this session alone. */
    InferenceSession createSession(std::size_t computeThreads = 0) const;

    /**
     * True when this model serves weights borrowed from an mmapped
     * artifact (v3 zero-copy load). The model owns the mapping, so
     * no extra caller-side lifetime management is needed.
     */
    bool mapped() const { return mapping_ != nullptr; }

  private:
    friend CompiledModel compile(const nn::StackedRnn &,
                                 const CompileOptions &);
    friend std::shared_ptr<const CompiledModel>
    compileShared(const nn::StackedRnn &, const CompileOptions &);
    /** The artifact loader (runtime/artifact.hh) assembles a model
     *  directly from deserialized kernels. */
    friend CompiledModel loadArtifactBytes(const std::string &);
    /** Private-access key for the mmap loader (runtime/artifact.cc):
     *  assembles a model in place and attaches the mapping that owns
     *  its borrowed weight blobs. */
    friend struct detail::ArtifactAccess;
    CompiledModel() = default;

    /** Only compile() may move its result out (NRVO return path);
     *  callers receive a prvalue, which binds without moving. */
    CompiledModel(CompiledModel &&) = default;
    CompiledModel &operator=(CompiledModel &&) = delete;

    std::vector<std::unique_ptr<CompiledLayer>> layers_;
    std::unique_ptr<LinearKernel> classifier_;
    Vector classifierBias_;
    Datapath datapath_;
    CompileOptions options_;

    /** Keeps an mmapped artifact alive for the life of the model
     *  when kernels borrow their weight blobs from it. */
    std::shared_ptr<const void> mapping_;
};

/**
 * Freeze a trained model into an immutable serving artifact. The
 * model is read, never modified; the result shares nothing with it.
 */
CompiledModel compile(const nn::StackedRnn &model,
                      const CompileOptions &opts = {});

/**
 * compile() onto the heap under shared ownership — the form the
 * fleet layer wants: a serve::ModelRegistry (or InferenceServer)
 * keeps the model alive exactly as long as something serves it.
 */
std::shared_ptr<const CompiledModel>
compileShared(const nn::StackedRnn &model,
              const CompileOptions &opts = {});

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_COMPILED_MODEL_HH
