#include "runtime/continuous_batch.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace ernn::runtime
{

ContinuousBatch::ContinuousBatch(const CompiledModel &model,
                                 std::size_t computeThreads)
    : model_(model)
{
    const std::size_t threads = computeThreads != 0
        ? computeThreads : model.options().computeThreads;
    if (threads > 1) {
        pool_ = std::make_unique<ThreadPool>(threads);
        kernels_.pool = pool_.get();
    }

    const std::size_t n = model.numLayers();
    state_.resize(n);
    scratch_.resize(n);
    out_.resize(n);
    setLaneCount(0);
    laneLogits_.assign(model.numClasses(), 0.0);
    if (model.datapath().integerDatapath)
        kernels_.valueFormat = model.datapath().valueFormat;
}

void
ContinuousBatch::setLaneCount(std::size_t lanes)
{
    const std::size_t n = model_.numLayers();
    for (std::size_t i = 0; i < n; ++i) {
        LayerBatchState &st = state_[i];
        if (st.h.rows() == 0 && st.c.rows() == 0) {
            // First sizing: let the layer pick its state geometry.
            model_.layer(i).initBatchState(st, lanes);
        } else {
            // Live pool: recurrent state must survive, so grow with
            // zeroed columns (start-of-utterance state for the new
            // lane) or shrink to the surviving prefix.
            for (Matrix *m : {&st.h, &st.c})
                if (m->rows() > 0) {
                    if (lanes > m->cols())
                        m->growCols(lanes);
                    else
                        m->shrinkCols(lanes);
                }
        }
        // Scratch and inter-layer buffers are rewritten every step;
        // a zero-filling reshape is enough.
        model_.layer(i).initBatchScratch(scratch_[i], lanes);
        out_[i].reshape(model_.layer(i).outputSize(), lanes);
    }
    in_.reshape(model_.inputSize(), lanes);
    logits_.reshape(model_.numClasses(), lanes);
    poolHighWater_ = std::max(poolHighWater_, lanes);
}

void
ContinuousBatch::releasePool()
{
    state_.clear();
    scratch_.clear();
    out_.clear();
    in_ = Matrix();
    logits_ = Matrix();
    kernels_.releaseLaneStaging();
    const std::size_t n = model_.numLayers();
    state_.resize(n);
    scratch_.resize(n);
    out_.resize(n);
    setLaneCount(0);
    poolHighWater_ = 0;
}

void
ContinuousBatch::admit(const nn::Sequence *frames, FrameSink onFrame,
                       DoneSink onDone)
{
    ernn_assert(frames, "ContinuousBatch::admit: null utterance");
    if (frames->empty()) {
        if (onDone)
            onDone();
        return;
    }
    setLaneCount(lanes_.size() + 1);
    lanes_.push_back(
        Lane{frames, 0, std::move(onFrame), std::move(onDone)});
}

void
ContinuousBatch::stepAll()
{
    if (lanes_.empty())
        return;
    const Datapath &dp = model_.datapath();
    const std::size_t in_dim = model_.inputSize();
    const std::size_t classes = model_.numClasses();
    const std::size_t active = lanes_.size();

    // Gather this step's frames — pinned to the value grid exactly
    // as InferenceSession::step() pins its input frame.
    for (std::size_t l = 0; l < active; ++l) {
        const Lane &lane = lanes_[l];
        const Vector &f = (*lane.frames)[lane.next];
        ernn_assert(f.size() == in_dim,
                    "ContinuousBatch: frame dim " << f.size()
                    << " != input dim " << in_dim);
        for (std::size_t r = 0; r < in_dim; ++r)
            in_.at(r, l) = f[r];
    }
    if (dp.fixedPoint)
        dp.post(in_.raw());

    // New step: recurrent state is about to change under stable
    // addresses, so retire any staged input codes.
    ++kernels_.xqEpoch;
    const Matrix *cur = &in_;
    for (std::size_t i = 0; i < model_.numLayers(); ++i) {
        model_.layer(i).stepBatch(*cur, state_[i], out_[i],
                                  scratch_[i], kernels_, dp);
        cur = &out_[i];
    }

    model_.classifier().applyBatch(*cur, logits_, kernels_);
    dp.post(logits_.raw());
    addBiasRows(logits_, model_.classifierBias());
    dp.post(logits_.raw());

    // Deliver lane columns.
    for (std::size_t l = 0; l < active; ++l) {
        Lane &lane = lanes_[l];
        for (std::size_t r = 0; r < classes; ++r)
            laneLogits_[r] = logits_.at(r, l);
        if (lane.onFrame)
            lane.onFrame(lane.next, laneLogits_,
                         static_cast<int>(argmax(laneLogits_)));
        ++lane.next;
    }

    // Retire completed lanes in place: swap the last live column
    // into the vacated slot, then shrink the pool once at the end.
    finished_.clear();
    std::size_t live = lanes_.size();
    std::size_t l = 0;
    while (l < live) {
        if (lanes_[l].next < lanes_[l].frames->size()) {
            ++l;
            continue;
        }
        finished_.push_back(std::move(lanes_[l].onDone));
        if (l != live - 1) {
            for (LayerBatchState &st : state_)
                for (Matrix *m : {&st.h, &st.c})
                    if (m->rows() > 0)
                        m->swapCols(l, live - 1);
            lanes_[l] = std::move(lanes_[live - 1]);
        }
        --live;
        lanes_.pop_back();
        // Do not advance l: the swapped-in lane needs examining.
    }
    if (live != active)
        setLaneCount(live);

    // One oversized burst must not pin lane-pool memory for the
    // engine's lifetime (mirrors InferenceSession's high-water cap).
    if (lanes_.empty() && poolHighWater_ > kMaxPooledLanes)
        releasePool();

    // Completion callbacks run last, with the pool consistent.
    for (DoneSink &done : finished_)
        if (done)
            done();
    finished_.clear();
}

} // namespace ernn::runtime
