/**
 * @file
 * Continuous batching engine: the admission-side mirror of run()'s
 * ragged retirement. InferenceSession::run() serves one closed batch
 * — every utterance is known up front, lanes only ever *retire* as
 * utterances end. A serving process sees the opposite shape: requests
 * arrive while the batch is in flight, and holding them until the
 * current batch drains wastes the very lanes that just freed up.
 *
 * ContinuousBatch keeps one live batch-major lane pool and lets the
 * scheduler admit a new utterance between any two time steps: the
 * state matrices grow one zeroed column (Matrix::growCols — the
 * start-of-utterance state), the new lane joins the next stepAll(),
 * and when a lane's utterance ends it is retired immediately — the
 * last live column is swapped into its slot (Matrix::swapCols) and
 * the pool shrinks, so the pool never carries a dead lane for even
 * one step.
 *
 * Column independence is what makes this sound: every batched kernel
 * computes column l from column l alone, in the exact arithmetic
 * order of the per-utterance path, so each lane's logits are
 * bit-identical to running its utterance alone through
 * InferenceSession::step() — regardless of what was admitted or
 * retired around it. The engine is single-threaded, like
 * InferenceSession: one scheduler thread drives admit()/stepAll().
 *
 * Concurrency contract: the engine holds no locks of its own — it is
 * externally synchronized by construction. InferenceServer's engine
 * thread is the only caller, and it enters admit() with the server's
 * mu_ held (InferenceServer::admitLane carries ERNN_REQUIRES(mu_),
 * so that discipline is machine-checked on the clang CI leg) and
 * drives stepAll() off-lock. The owned ThreadPool (base/sync.hh
 * primitives) is the one internally-locked component.
 */

#ifndef ERNN_RUNTIME_CONTINUOUS_BATCH_HH
#define ERNN_RUNTIME_CONTINUOUS_BATCH_HH

#include <functional>
#include <memory>
#include <vector>

#include "runtime/compiled_model.hh"
#include "runtime/thread_pool.hh"

namespace ernn::runtime
{

/**
 * Live lane pool with mid-flight admission. Borrow the model (it
 * must outlive the engine) and the admitted frame sequences (each
 * must stay valid until its lane's DoneSink fires).
 */
class ContinuousBatch
{
  public:
    /**
     * Per-frame delivery: frame index within the utterance, that
     * frame's logits, and their argmax. The logits reference is only
     * valid for the duration of the call. Invoked from stepAll(), in
     * lane order; sinks must not call back into the engine.
     */
    using FrameSink = std::function<void(
        std::size_t frame, const Vector &logits, int prediction)>;

    /** Invoked once after a lane's last frame was delivered (or
     *  immediately on admission of an empty utterance). */
    using DoneSink = std::function<void()>;

    /** Lane-pool high-water cap, as InferenceSession::run(): once
     *  the pool drains, storage beyond this is released. */
    static constexpr std::size_t kMaxPooledLanes = 64;

    /** @p computeThreads as InferenceSession: 0 inherits the model's
     *  CompileOptions::computeThreads, N > 1 owns a pool of N lanes. */
    explicit ContinuousBatch(const CompiledModel &model,
                             std::size_t computeThreads = 0);

    const CompiledModel &model() const { return model_; }

    /**
     * Admit one utterance as a fresh lane starting at the all-zero
     * start-of-utterance state. Callable between any two stepAll()
     * calls; the lane serves its first frame on the next stepAll().
     * An empty utterance completes immediately and occupies no lane.
     */
    void admit(const nn::Sequence *frames, FrameSink onFrame,
               DoneSink onDone);

    /** Lanes currently in flight. */
    std::size_t activeLanes() const { return lanes_.size(); }

    bool idle() const { return lanes_.empty(); }

    /**
     * Advance every live lane one time step: one batched kernel call
     * per weight tensor, per-lane logits delivered through each
     * lane's FrameSink, completed lanes retired in place. No-op when
     * idle.
     */
    void stepAll();

  private:
    struct Lane
    {
        const nn::Sequence *frames;
        std::size_t next; //!< next frame index to serve
        FrameSink onFrame;
        DoneSink onDone;
    };

    /** Re-dimension the pool to @p lanes columns. Recurrent state
     *  columns are preserved (grown with zeroed new columns /
     *  shrunk); scratch and I/O matrices are rewritten every step
     *  and simply reshaped. */
    void setLaneCount(std::size_t lanes);

    /** Drop the pool's backing storage (high-water cap). */
    void releasePool();

    const CompiledModel &model_;
    std::unique_ptr<ThreadPool> pool_; //!< compute pool (null = serial)
    KernelScratch kernels_;
    std::vector<LayerBatchState> state_;
    std::vector<LayerBatchScratch> scratch_;
    std::vector<Matrix> out_; //!< inter-layer activation matrices
    Matrix in_;               //!< gathered input frames
    Matrix logits_;           //!< classifier output
    Vector laneLogits_;       //!< per-lane delivery staging
    std::vector<Lane> lanes_; //!< lane l <-> column l
    std::vector<DoneSink> finished_; //!< staged completion callbacks
    std::size_t poolHighWater_ = 0;
};

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_CONTINUOUS_BATCH_HH
