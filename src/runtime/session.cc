#include "runtime/session.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ernn::runtime
{

void
StreamState::reset()
{
    for (auto &l : layers_) {
        std::fill(l.h.begin(), l.h.end(), 0.0);
        std::fill(l.c.begin(), l.c.end(), 0.0);
    }
    frames_ = 0;
}

InferenceSession::InferenceSession(const CompiledModel &model)
    : model_(model)
{
    const std::size_t n = model.numLayers();
    layerScratch_.resize(n);
    layerOut_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        model.layer(i).initScratch(layerScratch_[i]);
        layerOut_[i].assign(model.layer(i).outputSize(), 0.0);
    }
    logits_.assign(model.numClasses(), 0.0);
    frameQ_.assign(model.inputSize(), 0.0);
    // Arm the scratch for the native integer datapath: FixedPoint
    // kernels see the value grid their inputs live on and requantize
    // onto it in integer arithmetic. Left unarmed (emulation mode,
    // widths > 16 bits, other backends), kernels run the f64 path.
    if (model.datapath().integerDatapath)
        kernels_.valueFormat = model.datapath().valueFormat;
}

StreamState
InferenceSession::newStream() const
{
    StreamState state;
    state.layers_.resize(model_.numLayers());
    for (std::size_t i = 0; i < model_.numLayers(); ++i)
        model_.layer(i).initState(state.layers_[i]);
    return state;
}

const Vector &
InferenceSession::step(StreamState &state, const Vector &frame)
{
    ernn_assert(state.layers_.size() == model_.numLayers(),
                "step: stream belongs to a different model");
    ernn_assert(frame.size() == model_.inputSize(),
                "step: frame dim " << frame.size() << " != input dim "
                << model_.inputSize());

    const Datapath &dp = model_.datapath();
    // New step: recurrent state is about to change under stable
    // addresses, so retire any staged input codes.
    ++kernels_.xqEpoch;
    const Vector *cur = &frame;
    if (dp.fixedPoint) {
        // The deployed accelerator consumes fixed-point features
        // (quant::quantizeDataset is the training-side analogue):
        // pin the incoming frame to the value grid so every kernel
        // input — not just recurrent state — lives on it. Applied in
        // native and emulation modes alike; the shared grid is what
        // makes the integer MACs exact.
        std::copy(frame.begin(), frame.end(), frameQ_.begin());
        dp.post(frameQ_);
        cur = &frameQ_;
    }
    for (std::size_t i = 0; i < model_.numLayers(); ++i) {
        model_.layer(i).step(*cur, state.layers_[i], layerOut_[i],
                             layerScratch_[i], kernels_, dp);
        cur = &layerOut_[i];
    }

    model_.classifier().apply(*cur, logits_, kernels_);
    dp.post(logits_);
    addInPlace(logits_, model_.classifierBias());
    dp.post(logits_);

    ++state.frames_;
    return logits_;
}

BatchResult
InferenceSession::run(const std::vector<const nn::Sequence *> &batch)
{
    const std::size_t b = batch.size();
    BatchResult out;
    out.logits.resize(b);
    out.predictions.resize(b);

    std::size_t max_len = 0;
    for (std::size_t u = 0; u < b; ++u) {
        ernn_assert(batch[u], "run: null utterance in batch");
        out.logits[u].resize(batch[u]->size());
        out.predictions[u].resize(batch[u]->size());
        max_len = std::max(max_len, batch[u]->size());
    }

    // Grow (and rewind) the reusable stream pool.
    while (streamPool_.size() < b)
        streamPool_.push_back(newStream());
    for (std::size_t u = 0; u < b; ++u)
        streamPool_[u].reset();

    // Frame-lockstep over the batch: utterance u's recurrence only
    // depends on its own past, so per time step every stream shares
    // the same (cache-hot) weights.
    for (std::size_t t = 0; t < max_len; ++t) {
        for (std::size_t u = 0; u < b; ++u) {
            if (t >= batch[u]->size())
                continue;
            const Vector &lg = step(streamPool_[u], (*batch[u])[t]);
            out.logits[u][t] = lg;
            out.predictions[u][t] = static_cast<int>(argmax(lg));
        }
    }
    return out;
}

BatchResult
InferenceSession::run(const std::vector<nn::Sequence> &batch)
{
    std::vector<const nn::Sequence *> ptrs;
    ptrs.reserve(batch.size());
    for (const auto &seq : batch)
        ptrs.push_back(&seq);
    return run(ptrs);
}

nn::Sequence
InferenceSession::logits(const nn::Sequence &frames)
{
    return std::move(run({&frames}).logits.front());
}

std::vector<int>
InferenceSession::predictFrames(const nn::Sequence &frames)
{
    return std::move(run({&frames}).predictions.front());
}

InferenceSession
CompiledModel::createSession() const
{
    return InferenceSession(*this);
}

} // namespace ernn::runtime
