#include "runtime/session.hh"

#include <algorithm>

#include "base/logging.hh"
#include "runtime/checkpoint.hh"

namespace ernn::runtime
{

void
StreamState::reset()
{
    for (auto &l : layers_) {
        std::fill(l.h.begin(), l.h.end(), 0.0);
        std::fill(l.c.begin(), l.c.end(), 0.0);
    }
    frames_ = 0;
}

InferenceSession::InferenceSession(const CompiledModel &model,
                                   std::size_t computeThreads)
    : model_(model), fingerprint_(modelFingerprint(model))
{
    const std::size_t threads = computeThreads != 0
        ? computeThreads : model.options().computeThreads;
    if (threads > 1) {
        pool_ = std::make_unique<ThreadPool>(threads);
        kernels_.pool = pool_.get();
    }

    const std::size_t n = model.numLayers();
    layerScratch_.resize(n);
    layerOut_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        model.layer(i).initScratch(layerScratch_[i]);
        layerOut_[i].assign(model.layer(i).outputSize(), 0.0);
    }
    logits_.assign(model.numClasses(), 0.0);
    frameQ_.assign(model.inputSize(), 0.0);
    // Arm the scratch for the native integer datapath: FixedPoint
    // kernels see the value grid their inputs live on and requantize
    // onto it in integer arithmetic. Left unarmed (emulation mode,
    // widths > 16 bits, other backends), kernels run the f64 path.
    if (model.datapath().integerDatapath)
        kernels_.valueFormat = model.datapath().valueFormat;
}

StreamState
InferenceSession::newStream() const
{
    StreamState state;
    state.layers_.resize(model_.numLayers());
    for (std::size_t i = 0; i < model_.numLayers(); ++i)
        model_.layer(i).initState(state.layers_[i]);
    state.model_ = fingerprint_;
    return state;
}

const Vector &
InferenceSession::step(StreamState &state, const Vector &frame)
{
    // The fingerprint stamp covers per-layer state geometry and the
    // datapath's value grid: a state created for (or restored into)
    // a structurally different model must never reach the kernels,
    // whose inner loops trust these dimensions.
    ernn_assert(state.model_ == fingerprint_ &&
                state.layers_.size() == model_.numLayers(),
                "step: stream belongs to a different model");
    ernn_assert(frame.size() == model_.inputSize(),
                "step: frame dim " << frame.size() << " != input dim "
                << model_.inputSize());

    const Datapath &dp = model_.datapath();
    // New step: recurrent state is about to change under stable
    // addresses, so retire any staged input codes.
    ++kernels_.xqEpoch;
    const Vector *cur = &frame;
    if (dp.fixedPoint) {
        // The deployed accelerator consumes fixed-point features
        // (quant::quantizeDataset is the training-side analogue):
        // pin the incoming frame to the value grid so every kernel
        // input — not just recurrent state — lives on it. Applied in
        // native and emulation modes alike; the shared grid is what
        // makes the integer MACs exact.
        std::copy(frame.begin(), frame.end(), frameQ_.begin());
        dp.post(frameQ_);
        cur = &frameQ_;
    }
    for (std::size_t i = 0; i < model_.numLayers(); ++i) {
        model_.layer(i).step(*cur, state.layers_[i], layerOut_[i],
                             layerScratch_[i], kernels_, dp);
        cur = &layerOut_[i];
    }

    model_.classifier().apply(*cur, logits_, kernels_);
    dp.post(logits_);
    addInPlace(logits_, model_.classifierBias());
    dp.post(logits_);

    ++state.frames_;
    return logits_;
}

void
InferenceSession::preparePool(std::size_t lanes)
{
    const std::size_t n = model_.numLayers();
    batchState_.resize(n);
    batchScratch_.resize(n);
    batchOut_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        model_.layer(i).initBatchState(batchState_[i], lanes);
        model_.layer(i).initBatchScratch(batchScratch_[i], lanes);
        batchOut_[i].reshape(model_.layer(i).outputSize(), lanes);
    }
    batchIn_.reshape(model_.inputSize(), lanes);
    batchLogits_.reshape(model_.numClasses(), lanes);
    poolHighWater_ = std::max(poolHighWater_, lanes);
}

void
InferenceSession::shrinkPool(std::size_t lanes)
{
    // Recurrent state survives retirement (shrinkCols repacks the
    // leading lanes); scratch and inter-layer buffers are rewritten
    // every step, so a zero-filling reshape is enough.
    for (std::size_t i = 0; i < batchState_.size(); ++i) {
        LayerBatchState &st = batchState_[i];
        if (st.h.rows() > 0)
            st.h.shrinkCols(lanes);
        if (st.c.rows() > 0)
            st.c.shrinkCols(lanes);
        LayerBatchScratch &s = batchScratch_[i];
        for (Matrix *m : {&s.g1, &s.g2, &s.g3, &s.g4, &s.t1, &s.t2,
                          &s.t3})
            if (m->rows() > 0)
                m->reshape(m->rows(), lanes);
        batchOut_[i].reshape(batchOut_[i].rows(), lanes);
    }
    batchIn_.reshape(batchIn_.rows(), lanes);
    batchLogits_.reshape(batchLogits_.rows(), lanes);
}

void
InferenceSession::releasePool()
{
    // Destroying the pooled matrices releases their backing storage;
    // the vectors themselves are tiny and regrown by preparePool().
    batchState_.clear();
    batchScratch_.clear();
    batchOut_.clear();
    batchIn_ = Matrix();
    batchLogits_ = Matrix();
    // The kernel scratch holds lane-proportional staging of its own
    // (int16 transpose, per-lane FFT spectra); drop that too.
    kernels_.releaseLaneStaging();
    poolHighWater_ = 0;
}

BatchResult
InferenceSession::run(const std::vector<const nn::Sequence *> &batch)
{
    const std::size_t b = batch.size();
    const std::size_t classes = model_.numClasses();
    const std::size_t in_dim = model_.inputSize();
    BatchResult out;
    out.logits.resize(b);
    out.predictions.resize(b);

    laneOrder_.clear();
    for (std::size_t u = 0; u < b; ++u) {
        ernn_assert(batch[u], "run: null utterance in batch");
        // Pre-size every frame of the result now: the time loop
        // scatters kernel output straight into this storage and
        // performs no steady-state allocation.
        out.logits[u].assign(batch[u]->size(),
                             Vector(classes, 0.0));
        out.predictions[u].assign(batch[u]->size(), 0);
        if (!batch[u]->empty())
            laneOrder_.push_back(u);
    }
    // Longest utterance first: as t passes each length, lanes retire
    // strictly from the tail, so the active set stays a contiguous
    // prefix and retirement is a pure column shrink — no shuffling,
    // and the lane -> utterance map never changes.
    std::stable_sort(laneOrder_.begin(), laneOrder_.end(),
                     [&](std::size_t lhs, std::size_t rhs) {
                         return batch[lhs]->size() >
                                batch[rhs]->size();
                     });

    std::size_t active = laneOrder_.size();
    if (active == 0)
        return out;
    preparePool(active);

    const Datapath &dp = model_.datapath();
    for (std::size_t t = 0; active > 0; ++t) {
        // Retire lanes whose utterance ended.
        std::size_t still = active;
        while (still > 0 &&
               batch[laneOrder_[still - 1]]->size() <= t)
            --still;
        if (still == 0)
            break;
        if (still != active) {
            shrinkPool(still);
            active = still;
        }

        // Gather this step's frames into the input matrix — and pin
        // them to the value grid, exactly as step() does via frameQ_.
        for (std::size_t l = 0; l < active; ++l) {
            const Vector &f = (*batch[laneOrder_[l]])[t];
            ernn_assert(f.size() == in_dim,
                        "run: frame dim " << f.size()
                        << " != input dim " << in_dim);
            for (std::size_t r = 0; r < in_dim; ++r)
                batchIn_.at(r, l) = f[r];
        }
        if (dp.fixedPoint)
            dp.post(batchIn_.raw());

        // New step: recurrent state is about to change under stable
        // addresses, so retire any staged input codes.
        ++kernels_.xqEpoch;
        const Matrix *cur = &batchIn_;
        for (std::size_t i = 0; i < model_.numLayers(); ++i) {
            model_.layer(i).stepBatch(*cur, batchState_[i],
                                      batchOut_[i], batchScratch_[i],
                                      kernels_, dp);
            cur = &batchOut_[i];
        }

        model_.classifier().applyBatch(*cur, batchLogits_, kernels_);
        dp.post(batchLogits_.raw());
        addBiasRows(batchLogits_, model_.classifierBias());
        dp.post(batchLogits_.raw());

        // Scatter lane columns into the pre-sized per-utterance
        // results.
        for (std::size_t l = 0; l < active; ++l) {
            const std::size_t u = laneOrder_[l];
            Vector &dst = out.logits[u][t];
            for (std::size_t r = 0; r < classes; ++r)
                dst[r] = batchLogits_.at(r, l);
            out.predictions[u][t] = static_cast<int>(argmax(dst));
        }
    }

    // One oversized batch must not pin lane-pool memory for the
    // session's lifetime: past the high-water cap the pool is
    // released outright and regrown (smaller) by the next run().
    if (poolHighWater_ > kMaxPooledLanes)
        releasePool();
    return out;
}

BatchResult
InferenceSession::run(const std::vector<nn::Sequence> &batch)
{
    std::vector<const nn::Sequence *> ptrs;
    ptrs.reserve(batch.size());
    for (const auto &seq : batch)
        ptrs.push_back(&seq);
    return run(ptrs);
}

nn::Sequence
InferenceSession::logits(const nn::Sequence &frames)
{
    return std::move(run({&frames}).logits.front());
}

std::vector<int>
InferenceSession::predictFrames(const nn::Sequence &frames)
{
    return std::move(run({&frames}).predictions.front());
}

InferenceSession
CompiledModel::createSession(std::size_t computeThreads) const
{
    return InferenceSession(*this, computeThreads);
}

} // namespace ernn::runtime
