/**
 * @file
 * Inference sessions over a CompiledModel: batched multi-utterance
 * run() for offline scoring / throughput serving, and incremental
 * StreamState-based step() for streaming ASR. A session owns every
 * mutable buffer (recurrent state pools, gate scratch, the shared
 * FFT workspace), so the compiled model stays immutable and
 * shareable, and the per-frame path performs no heap allocation in
 * the steady state.
 *
 * run() is batch-major: utterances are assigned to lane slots
 * (columns of feature x lanes activation matrices) and advanced in
 * frame-lockstep, so every weight tensor streams through the cache
 * once per time step for the whole batch — one GEMM-shaped kernel
 * call per gate instead of a memory-bound matvec per lane. Lane
 * columns are bit-identical to the per-utterance step() path.
 *
 * Concurrency contract: sessions and StreamStates are deliberately
 * lock-free single-driver objects — all cross-thread discipline
 * lives one layer up in serve::InferenceServer, whose lock ownership
 * is machine-checked via base/sync.hh annotations. A session's one
 * internally-locked component is its optional ThreadPool; its
 * stream bookkeeping (the lane pool, laneOrder_, StreamState
 * stamps) must only ever be touched by the driving thread.
 */

#ifndef ERNN_RUNTIME_SESSION_HH
#define ERNN_RUNTIME_SESSION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/compiled_model.hh"
#include "runtime/thread_pool.hh"

namespace ernn::runtime
{

namespace detail
{
struct StreamStateAccess;
} // namespace detail

/**
 * Recurrent state of one utterance (voice stream). Obtain from
 * InferenceSession::newStream(); feed frames via step(). One session
 * can serve many concurrent streams, one state object each.
 *
 * Every state is stamped with the structural fingerprint of the
 * model that created (or restored) it, and step() refuses a state
 * whose stamp disagrees with its session's model: a mis-sized
 * recurrent vector would otherwise reach the kernels, whose matvec
 * inner loops trust the state dimensions (out-of-bounds reads, or —
 * on the fixed-point grid — silent divergence). States move freely
 * between sessions *of structurally identical models*; see
 * runtime::modelFingerprint() (checkpoint.hh) for what that means.
 */
class StreamState
{
  public:
    /** Rewind to the start-of-utterance (all-zero) state. Keeps the
     *  model stamp: resetting a restored stream yields exactly the
     *  fresh stream newStream() would have produced. */
    void reset();

    /** Frames consumed since the last reset (or carried over from
     *  the checkpoint this state was restored from). */
    std::size_t framesSeen() const { return frames_; }

  private:
    friend class InferenceSession;
    /** Checkpoint/restore (runtime/checkpoint.cc). */
    friend struct detail::StreamStateAccess;
    std::vector<LayerState> layers_;
    std::size_t frames_ = 0;
    std::uint64_t model_ = 0; //!< modelFingerprint() stamp
};

/** Output of one batched run. */
struct BatchResult
{
    /** Per-utterance logit sequences (frame-aligned). */
    std::vector<nn::Sequence> logits;

    /** Per-utterance greedy frame predictions (argmax of logits). */
    std::vector<std::vector<int>> predictions;
};

/**
 * One inference lane over a shared CompiledModel. The session owns
 * every mutable buffer, so any number of sessions can serve the same
 * model concurrently — but a single session is NOT thread-safe and
 * must be driven by one thread at a time. The model is borrowed and
 * must outlive the session.
 */
class InferenceSession
{
  public:
    /**
     * run()'s lane pool (batch-major state and scratch matrices) is
     * kept warm between calls up to this many lanes; a larger batch
     * is served, then its pool is released so one oversized batch
     * cannot pin lane state for the session's lifetime.
     */
    static constexpr std::size_t kMaxPooledLanes = 64;

    /**
     * @p computeThreads: intra-session parallelism for the batched
     * kernel calls — 0 inherits the model's
     * CompileOptions::computeThreads, 1 runs serial, N > 1 owns a
     * ThreadPool of N lanes (including the driving thread). Outputs
     * are bit-identical at any thread count.
     */
    explicit InferenceSession(const CompiledModel &model,
                              std::size_t computeThreads = 0);

    const CompiledModel &model() const { return model_; }

    /** Fresh start-of-utterance state sized for this model. */
    StreamState newStream() const;

    /**
     * Incremental streaming inference: consume one frame of one
     * utterance and return its logits. The returned reference stays
     * valid until the next step()/run() call on this session.
     */
    const Vector &step(StreamState &state, const Vector &frame);

    /**
     * Batched multi-utterance inference. Utterances are independent
     * recurrent streams pooled into batch-major matrices (one lane
     * per column) and advanced frame-lockstep through one batched
     * kernel call per weight tensor per time step. Lanes are ordered
     * longest-utterance-first so ragged batches retire lanes from
     * the tail (a pure shrink, no shuffling); results are
     * bit-identical to running each utterance alone through step().
     */
    BatchResult run(const std::vector<const nn::Sequence *> &batch);
    BatchResult run(const std::vector<nn::Sequence> &batch);

    /// @{ Single-utterance conveniences.
    nn::Sequence logits(const nn::Sequence &frames);
    std::vector<int> predictFrames(const nn::Sequence &frames);
    /// @}

  private:
    /** Size the batch-major pool for @p lanes utterance lanes. */
    void preparePool(std::size_t lanes);

    /** Retire trailing lanes: shrink every pooled matrix to
     *  @p lanes columns, preserving surviving recurrent state. */
    void shrinkPool(std::size_t lanes);

    /** Drop the pool's backing storage (high-water cap). */
    void releasePool();

    const CompiledModel &model_;
    std::uint64_t fingerprint_; //!< modelFingerprint(model_), cached

    /** Compute pool for the batched kernels (null = serial). Owned
     *  here; kernels_.pool borrows it, which survives session moves
     *  because the pool's address is stable under unique_ptr. */
    std::unique_ptr<ThreadPool> pool_;

    KernelScratch kernels_;
    std::vector<LayerScratch> layerScratch_;
    std::vector<Vector> layerOut_; //!< inter-layer activations
    Vector logits_;
    Vector frameQ_; //!< value-grid copy of the input frame (fixed point)

    /// @{ Batch-major lane pool, reused across run() calls (capped at
    /// kMaxPooledLanes; see releasePool()).
    std::vector<LayerBatchState> batchState_;
    std::vector<LayerBatchScratch> batchScratch_;
    std::vector<Matrix> batchOut_; //!< inter-layer activation matrices
    Matrix batchIn_;               //!< gathered input frames
    Matrix batchLogits_;           //!< classifier output
    std::vector<std::size_t> laneOrder_; //!< lane -> utterance index
    std::size_t poolHighWater_ = 0; //!< lanes allocated since release
    /// @}
};

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_SESSION_HH
