/**
 * @file
 * Inference sessions over a CompiledModel: batched multi-utterance
 * run() for offline scoring / throughput serving, and incremental
 * StreamState-based step() for streaming ASR. A session owns every
 * mutable buffer (recurrent state pools, gate scratch, the shared
 * FFT workspace), so the compiled model stays immutable and
 * shareable, and the per-frame path performs no heap allocation in
 * the steady state.
 */

#ifndef ERNN_RUNTIME_SESSION_HH
#define ERNN_RUNTIME_SESSION_HH

#include <vector>

#include "runtime/compiled_model.hh"

namespace ernn::runtime
{

/**
 * Recurrent state of one utterance (voice stream). Obtain from
 * InferenceSession::newStream(); feed frames via step(). One session
 * can serve many concurrent streams, one state object each.
 */
class StreamState
{
  public:
    /** Rewind to the start-of-utterance (all-zero) state. */
    void reset();

    /** Frames consumed since the last reset. */
    std::size_t framesSeen() const { return frames_; }

  private:
    friend class InferenceSession;
    std::vector<LayerState> layers_;
    std::size_t frames_ = 0;
};

/** Output of one batched run. */
struct BatchResult
{
    /** Per-utterance logit sequences (frame-aligned). */
    std::vector<nn::Sequence> logits;

    /** Per-utterance greedy frame predictions (argmax of logits). */
    std::vector<std::vector<int>> predictions;
};

/**
 * One inference lane over a shared CompiledModel. The session owns
 * every mutable buffer, so any number of sessions can serve the same
 * model concurrently — but a single session is NOT thread-safe and
 * must be driven by one thread at a time. The model is borrowed and
 * must outlive the session.
 */
class InferenceSession
{
  public:
    explicit InferenceSession(const CompiledModel &model);

    const CompiledModel &model() const { return model_; }

    /** Fresh start-of-utterance state sized for this model. */
    StreamState newStream() const;

    /**
     * Incremental streaming inference: consume one frame of one
     * utterance and return its logits. The returned reference stays
     * valid until the next step()/run() call on this session.
     */
    const Vector &step(StreamState &state, const Vector &frame);

    /**
     * Batched multi-utterance inference. Utterances are independent
     * recurrent streams; the session advances them frame-lockstep so
     * every weight matrix streams through the cache once per time
     * step instead of once per utterance.
     */
    BatchResult run(const std::vector<const nn::Sequence *> &batch);
    BatchResult run(const std::vector<nn::Sequence> &batch);

    /// @{ Single-utterance conveniences.
    nn::Sequence logits(const nn::Sequence &frames);
    std::vector<int> predictFrames(const nn::Sequence &frames);
    /// @}

  private:
    const CompiledModel &model_;
    KernelScratch kernels_;
    std::vector<LayerScratch> layerScratch_;
    std::vector<Vector> layerOut_; //!< inter-layer activations
    Vector logits_;
    Vector frameQ_; //!< value-grid copy of the input frame (fixed point)
    std::vector<StreamState> streamPool_; //!< reused by run()
};

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_SESSION_HH
