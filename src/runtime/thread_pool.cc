#include "runtime/thread_pool.hh"

#include <algorithm>

namespace ernn::runtime
{

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    jobCv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::run(std::size_t n, RangeFn fn, void *ctx)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        fn(0, n, ctx);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = fn;
        ctx_ = ctx;
        jobN_ = n;
        parts_ = std::min(threads(), n);
        nextPart_.store(0, std::memory_order_relaxed);
        pending_ = workers_.size();
        ++generation_;
    }
    jobCv_.notify_all();
    work();
    std::unique_lock<std::mutex> lock(mu_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::work()
{
    for (;;) {
        const std::size_t part =
            nextPart_.fetch_add(1, std::memory_order_relaxed);
        if (part >= parts_)
            return;
        // Fixed arithmetic split: the first (jobN_ % parts_) ranges
        // take one extra index, so the partition never depends on
        // which thread claims which range.
        const std::size_t base = jobN_ / parts_;
        const std::size_t rem = jobN_ % parts_;
        const std::size_t begin =
            part * base + std::min<std::size_t>(part, rem);
        const std::size_t end = begin + base + (part < rem ? 1 : 0);
        fn_(begin, end, ctx_);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            jobCv_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        work();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                doneCv_.notify_one();
        }
    }
}

} // namespace ernn::runtime
