#include "runtime/thread_pool.hh"

#include <algorithm>

namespace ernn::runtime
{

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        base::MutexLock lock(mu_);
        stop_ = true;
    }
    jobCv_.notifyAll();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::run(std::size_t n, RangeFn fn, void *ctx)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        fn(0, n, ctx);
        return;
    }
    const Job job{fn, ctx, n, std::min(threads(), n)};
    {
        base::MutexLock lock(mu_);
        job_ = job;
        nextPart_.store(0, std::memory_order_relaxed);
        pending_ = workers_.size();
        ++generation_;
    }
    jobCv_.notifyAll();
    work(job);
    base::UniqueLock lock(mu_);
    while (pending_ != 0)
        doneCv_.wait(lock);
}

void
ThreadPool::work(const Job &job)
{
    for (;;) {
        const std::size_t part =
            nextPart_.fetch_add(1, std::memory_order_relaxed);
        if (part >= job.parts)
            return;
        // Fixed arithmetic split: the first (n % parts) ranges take
        // one extra index, so the partition never depends on which
        // thread claims which range.
        const std::size_t base = job.n / job.parts;
        const std::size_t rem = job.n % job.parts;
        const std::size_t begin =
            part * base + std::min<std::size_t>(part, rem);
        const std::size_t end = begin + base + (part < rem ? 1 : 0);
        job.fn(begin, end, job.ctx);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Job job;
        {
            base::UniqueLock lock(mu_);
            while (!stop_ && generation_ == seen)
                jobCv_.wait(lock);
            if (stop_)
                return;
            seen = generation_;
            // Copy the job out under the lock; execution below works
            // from the private copy so job_ itself stays guarded.
            job = job_;
        }
        work(job);
        {
            base::MutexLock lock(mu_);
            if (--pending_ == 0)
                doneCv_.notifyOne();
        }
    }
}

} // namespace ernn::runtime
