/**
 * @file
 * A small work-stealing-free thread pool for intra-session kernel
 * parallelism: one pool per InferenceSession / ContinuousBatch
 * engine (never shared), splitting the row blocks of each timestep
 * GEMM across cores.
 *
 * Design constraints, in order:
 *
 *  - determinism: run() splits [0, n) into at most threads()
 *    contiguous ranges with a fixed arithmetic, so which thread runs
 *    a range can vary but the ranges themselves never do. Kernels
 *    keep bit-identical outputs because each output row is written
 *    by exactly one range.
 *  - zero steady-state allocation: jobs are a raw function pointer
 *    plus a context pointer (parallelFor wraps a lambda without
 *    touching the heap), and range claiming is one atomic counter.
 *  - caller participation: a pool of N threads holds N-1 workers;
 *    the calling thread executes ranges too, so computeThreads = 1
 *    costs no synchronization at all (run() degenerates to a direct
 *    call).
 *
 * The pool is deliberately not work-stealing: kernel row blocks are
 * uniform, so static contiguous partitions lose nothing and keep the
 * claiming logic one fetch_add.
 */

#ifndef ERNN_RUNTIME_THREAD_POOL_HH
#define ERNN_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ernn::runtime
{

class ThreadPool
{
  public:
    /** A pool of @p threads total lanes of execution (including the
     *  caller): threads - 1 workers are spawned. 0 and 1 both mean
     *  "no workers". */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes (workers + the calling thread). */
    std::size_t threads() const { return workers_.size() + 1; }

    /** One contiguous index range of a job. */
    using RangeFn = void (*)(std::size_t begin, std::size_t end,
                             void *ctx);

    /**
     * Split [0, n) into min(threads(), n) contiguous ranges and run
     * @p fn over every range, on the workers plus the calling
     * thread. Blocks until all ranges completed. Not reentrant: one
     * job at a time per pool (sessions are single-threaded drivers,
     * so this never constrains them).
     */
    void run(std::size_t n, RangeFn fn, void *ctx);

    /** run() with a callable (no heap allocation: the callable lives
     *  on the caller's stack for the duration of the job). */
    template <typename F>
    void
    parallelFor(std::size_t n, F &&f)
    {
        using Fn = typename std::remove_reference<F>::type;
        run(n,
            [](std::size_t begin, std::size_t end, void *ctx) {
                (*static_cast<Fn *>(ctx))(begin, end);
            },
            &f);
    }

  private:
    void workerLoop();

    /** Claim and execute ranges of the current job until exhausted. */
    void work();

    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable jobCv_;  //!< a new job was published
    std::condition_variable doneCv_; //!< all workers drained the job
    std::uint64_t generation_ = 0;   //!< job publication counter
    std::size_t pending_ = 0;        //!< workers still on the job
    bool stop_ = false;

    // Current job (written under mu_ before publication; workers
    // observe the write via the generation_ handshake).
    RangeFn fn_ = nullptr;
    void *ctx_ = nullptr;
    std::size_t jobN_ = 0;
    std::size_t parts_ = 0;
    std::atomic<std::size_t> nextPart_{0};
};

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_THREAD_POOL_HH
