/**
 * @file
 * A small work-stealing-free thread pool for intra-session kernel
 * parallelism: one pool per InferenceSession / ContinuousBatch
 * engine (never shared), splitting the row blocks of each timestep
 * GEMM across cores.
 *
 * Design constraints, in order:
 *
 *  - determinism: run() splits [0, n) into at most threads()
 *    contiguous ranges with a fixed arithmetic, so which thread runs
 *    a range can vary but the ranges themselves never do. Kernels
 *    keep bit-identical outputs because each output row is written
 *    by exactly one range.
 *  - zero steady-state allocation: jobs are a raw function pointer
 *    plus a context pointer (parallelFor wraps a lambda without
 *    touching the heap), and range claiming is one atomic counter.
 *  - caller participation: a pool of N threads holds N-1 workers;
 *    the calling thread executes ranges too, so computeThreads = 1
 *    costs no synchronization at all (run() degenerates to a direct
 *    call).
 *
 * The pool is deliberately not work-stealing: kernel row blocks are
 * uniform, so static contiguous partitions lose nothing and keep the
 * claiming logic one fetch_add.
 */

#ifndef ERNN_RUNTIME_THREAD_POOL_HH
#define ERNN_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "base/sync.hh"

namespace ernn::runtime
{

class ThreadPool
{
  public:
    /** A pool of @p threads total lanes of execution (including the
     *  caller): threads - 1 workers are spawned. 0 and 1 both mean
     *  "no workers". */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes (workers + the calling thread). */
    std::size_t threads() const { return workers_.size() + 1; }

    /** One contiguous index range of a job. */
    using RangeFn = void (*)(std::size_t begin, std::size_t end,
                             void *ctx);

    /**
     * Split [0, n) into min(threads(), n) contiguous ranges and run
     * @p fn over every range, on the workers plus the calling
     * thread. Blocks until all ranges completed. Not reentrant: one
     * job at a time per pool (sessions are single-threaded drivers,
     * so this never constrains them).
     */
    void run(std::size_t n, RangeFn fn, void *ctx);

    /** run() with a callable (no heap allocation: the callable lives
     *  on the caller's stack for the duration of the job). */
    template <typename F>
    void
    parallelFor(std::size_t n, F &&f)
    {
        using Fn = typename std::remove_reference<F>::type;
        run(n,
            [](std::size_t begin, std::size_t end, void *ctx) {
                (*static_cast<Fn *>(ctx))(begin, end);
            },
            &f);
    }

  private:
    /** One published job: every worker copies it out under mu_ and
     *  then executes from its private copy, so the shared fields are
     *  only ever touched with the lock held — the publication
     *  protocol is provable by the capability analysis instead of
     *  being a documented convention. */
    struct Job
    {
        RangeFn fn = nullptr;
        void *ctx = nullptr;
        std::size_t n = 0;
        std::size_t parts = 0;
    };

    void workerLoop();

    /** Claim and execute ranges of @p job until exhausted. Reads
     *  only the caller's private copy plus the nextPart_ atomic. */
    void work(const Job &job);

    // Spawned by the constructor, joined by the destructor, sized
    // (threads()) immutably in between — no lock needed.
    std::vector<std::thread> workers_; // lint: thread-spawn(pool workers)

    base::Mutex mu_;
    base::CondVar jobCv_;  //!< a new job was published
    base::CondVar doneCv_; //!< all workers drained the job
    std::uint64_t generation_ ERNN_GUARDED_BY(mu_) = 0; //!< publications
    std::size_t pending_ ERNN_GUARDED_BY(mu_) = 0; //!< workers on job
    bool stop_ ERNN_GUARDED_BY(mu_) = false;
    Job job_ ERNN_GUARDED_BY(mu_); //!< current job (copied out by workers)
    std::atomic<std::size_t> nextPart_{0}; //!< range claim counter
};

} // namespace ernn::runtime

#endif // ERNN_RUNTIME_THREAD_POOL_HH
