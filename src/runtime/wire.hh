/**
 * @file
 * Shared byte-level serialization helpers for the runtime's on-disk
 * and over-the-wire encodings: the model artifact (artifact.cc) and
 * the stream checkpoint blob (checkpoint.cc). Both formats are
 * little-endian fixed-width fields guarded by an FNV-1a checksum;
 * keeping the Writer/Reader pair in one place keeps their error
 * contracts identical — every malformed input is fatal and names
 * what was being read.
 */

#ifndef ERNN_RUNTIME_WIRE_HH
#define ERNN_RUNTIME_WIRE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "tensor/vector_ops.hh"

namespace ernn::runtime::detail
{

/** FNV-1a over @p n bytes — the artifact/checkpoint checksum. */
inline std::uint64_t
fnv1a64(const char *data, std::size_t n)
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
    }
    return h;
}

/** Append-only byte sink for the fixed-width encodings. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i32(std::int32_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }

    void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

    void reals(const std::vector<Real> &v)
    {
        size(v.size());
        if (!v.empty())
            raw(v.data(), v.size() * sizeof(Real));
    }

    void codes(const std::int16_t *p, std::size_t n)
    {
        size(n);
        if (n)
            raw(p, n * sizeof(std::int16_t));
    }

    void bytes(const std::string &v)
    {
        size(v.size());
        if (!v.empty())
            raw(v.data(), v.size());
    }

    void patchU64(std::size_t offset, std::uint64_t v)
    {
        std::memcpy(&buf_[offset], &v, sizeof v);
    }

    std::size_t tell() const { return buf_.size(); }
    std::string take() { return std::move(buf_); }

  private:
    void raw(const void *p, std::size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    std::string buf_;
};

/**
 * Bounds-checked cursor over serialized bytes. Overruns are fatal
 * and name what was being read — with a valid checksum they indicate
 * a writer/reader version bug, not bit rot. @p context prefixes
 * every diagnostic ("artifact payload", "stream checkpoint", ...).
 */
class Reader
{
  public:
    Reader(const char *buf, std::size_t payload_end,
           const char *context = "artifact payload")
        : buf_(buf), end_(payload_end), context_(context)
    {
    }

    std::uint8_t u8(const char *what)
    {
        std::uint8_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::uint32_t u32(const char *what)
    {
        std::uint32_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::uint64_t u64(const char *what)
    {
        std::uint64_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::int32_t i32(const char *what)
    {
        std::int32_t v;
        raw(&v, sizeof v, what);
        return v;
    }

    double f64(const char *what)
    {
        double v;
        raw(&v, sizeof v, what);
        return v;
    }

    std::size_t size(const char *what)
    {
        return static_cast<std::size_t>(u64(what));
    }

    void realsInto(std::vector<Real> &out, const char *what)
    {
        const std::size_t n = size(what);
        ernn_assert(n <= (end_ - pos_) / sizeof(Real),
                    context_ << ": " << what << " claims " << n
                    << " values past the end of the payload");
        out.resize(n);
        if (n)
            raw(out.data(), n * sizeof(Real), what);
    }

    void codesInto(std::vector<std::int16_t> &out, const char *what)
    {
        const std::size_t n = size(what);
        ernn_assert(n <= (end_ - pos_) / sizeof(std::int16_t),
                    context_ << ": " << what << " claims " << n
                    << " codes past the end of the payload");
        out.resize(n);
        if (n)
            raw(out.data(), n * sizeof(std::int16_t), what);
    }

    void bytesInto(std::string &out, const char *what)
    {
        const std::size_t n = size(what);
        ernn_assert(n <= end_ - pos_,
                    context_ << ": " << what << " claims " << n
                    << " bytes past the end of the payload");
        out.resize(n);
        if (n)
            raw(&out[0], n, what);
    }

    std::size_t pos() const { return pos_; }
    bool done() const { return pos_ == end_; }
    std::size_t remainingBytes() const { return end_ - pos_; }

  private:
    void raw(void *p, std::size_t n, const char *what)
    {
        if (end_ - pos_ < n)
            ernn_fatal(context_ << " ends while reading " << what
                       << " (offset " << pos_ << " of " << end_
                       << " payload bytes)");
        std::memcpy(p, buf_ + pos_, n);
        pos_ += n;
    }

    const char *buf_;
    std::size_t pos_ = 0;
    std::size_t end_;
    const char *context_;
};

} // namespace ernn::runtime::detail

#endif // ERNN_RUNTIME_WIRE_HH
