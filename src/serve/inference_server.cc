#include "serve/inference_server.hh"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "base/logging.hh"
#include "runtime/artifact.hh"
#include "runtime/checkpoint.hh"
#include "runtime/continuous_batch.hh"

namespace ernn::serve
{

using Clock = std::chrono::steady_clock;

namespace
{

Real
microsBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<Real, std::micro>(to - from).count();
}

void
jsonStat(std::ostream &os, const char *key, const RunningStat &s)
{
    os << '"' << key << "\":{\"count\":" << s.count()
       << ",\"mean\":" << s.mean() << ",\"min\":" << s.min()
       << ",\"max\":" << s.max() << ",\"stddev\":" << s.stddev()
       << '}';
}

} // namespace

const char *
submitStatusName(SubmitStatus status)
{
    switch (status) {
    case SubmitStatus::Ok: return "ok";
    case SubmitStatus::Shutdown: return "shutdown";
    case SubmitStatus::Overloaded: return "overloaded";
    case SubmitStatus::NoSuchModel: return "no-such-model";
    }
    return "?";
}

void
ServerStats::merge(const ServerStats &other)
{
    requestsCompleted += other.requestsCompleted;
    batchesDispatched += other.batchesDispatched;
    framesProcessed += other.framesProcessed;
    streamStepsProcessed += other.streamStepsProcessed;
    requestsShed += other.requestsShed;
    requestsRejectedShutdown += other.requestsRejectedShutdown;
    queueMicros.merge(other.queueMicros);
    computeMicros.merge(other.computeMicros);
    batchSize.merge(other.batchSize);
    queueDepth.merge(other.queueDepth);
}

std::string
ServerStats::toJson() const
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"requests_completed\":" << requestsCompleted
       << ",\"batches_dispatched\":" << batchesDispatched
       << ",\"frames_processed\":" << framesProcessed
       << ",\"stream_steps_processed\":" << streamStepsProcessed
       << ",\"requests_shed\":" << requestsShed
       << ",\"requests_rejected_shutdown\":" << requestsRejectedShutdown
       << ",\"mean_batch_size\":" << meanBatchSize() << ',';
    jsonStat(os, "queue_micros", queueMicros);
    os << ',';
    jsonStat(os, "compute_micros", computeMicros);
    os << ',';
    jsonStat(os, "batch_size", batchSize);
    os << ',';
    jsonStat(os, "queue_depth", queueDepth);
    os << '}';
    return os.str();
}

/**
 * Shared state of one pinned stream. The worker index is written once
 * at openStream() time; the StreamState itself is created lazily by
 * the pinned worker (from its own session) and only ever touched on
 * that worker's thread, so it needs no lock. The slot is kept alive
 * by the handle and by every queued job referencing it.
 */
struct StreamSlot
{
    std::size_t worker = 0;
    std::optional<runtime::StreamState> state;
};

struct InferenceServer::UtteranceJob
{
    nn::Sequence frames;
    std::promise<InferenceReply> promise;
    Clock::time_point enqueued;
};

struct InferenceServer::StreamJob
{
    /** What the pinned worker does with the slot's state. */
    enum class Op
    {
        Step,       //!< consume frame, reply logits
        Reset,      //!< rewind to start-of-utterance, reply done
        Checkpoint, //!< serialize state (+ aux), reply bytes
        Restore,    //!< replace state from blob, reply done
    };

    std::shared_ptr<StreamSlot> slot;
    Op op = Op::Step;
    Vector frame;     //!< Step payload
    std::string blob; //!< Restore payload (checkpoint bytes)
    std::string aux;  //!< Checkpoint aux payload (carried verbatim)
    std::promise<Vector> logits;     //!< Step reply
    std::promise<void> done;         //!< Reset/Restore acknowledgement
    std::promise<std::string> bytes; //!< Checkpoint reply
};

/**
 * One live continuous-batching lane: owns the request for the
 * lane's whole residency (the engine borrows job.frames by pointer)
 * and accumulates the reply frame by frame. Kept alive by the
 * engine's sink closures until the DoneSink fires.
 */
struct InferenceServer::LaneCtx
{
    UtteranceJob job;
    InferenceReply reply;
    Clock::time_point admitted;
};

namespace
{

const runtime::CompiledModel &
derefModel(const std::shared_ptr<const runtime::CompiledModel> &p)
{
    ernn_assert(p != nullptr, "InferenceServer: null model");
    return *p;
}

} // namespace

InferenceServer::InferenceServer(
    std::shared_ptr<const runtime::CompiledModel> model,
    ServerOptions opts)
    : owned_(std::move(model)), model_(derefModel(owned_)),
      opts_(opts)
{
    startWorkers();
}

InferenceServer::InferenceServer(const std::string &artifactPath,
                                 ServerOptions opts)
    : InferenceServer(runtime::loadArtifactShared(artifactPath), opts)
{
}

InferenceServer::InferenceServer(const runtime::CompiledModel &model,
                                 ServerOptions opts)
    : model_(model), opts_(opts)
{
    startWorkers();
}

void
InferenceServer::startWorkers()
{
    ernn_assert(opts_.workers >= 1, "server needs at least one worker");
    ernn_assert(opts_.maxBatch >= 1, "maxBatch must be positive");
    ernn_assert(opts_.queueCapacity >= 1,
                "queueCapacity must be positive");
    // computeThreads needs no floor: 0 means "model default" and the
    // session clamps 0/1 to serial.

    {
        base::MutexLock lk(mu_);
        streamQueues_.resize(opts_.workers);
    }
    // Uncontended (constructor tail), taken for the capability
    // analysis: workers_ is guarded by joinMu_.
    base::MutexLock join(joinMu_);
    workers_.reserve(opts_.workers);
    for (std::size_t w = 0; w < opts_.workers; ++w) {
        if (opts_.scheduler == SchedulerMode::Continuous && w == 0) {
            // The engine thread: owns the lane pool and the whole
            // request queue (plus its own pinned streams).
            workers_.emplace_back([this] { continuousLoop(0); });
        } else {
            // In Continuous mode the other workers must not race the
            // engine for queued utterances; they serve streams only.
            const bool batches =
                opts_.scheduler == SchedulerMode::HoldOpen;
            workers_.emplace_back(
                [this, w, batches] { workerLoop(w, batches); });
        }
    }
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

std::future<InferenceReply>
InferenceServer::submit(nn::Sequence frames)
{
    std::future<InferenceReply> fut;
    switch (submit(std::move(frames), fut)) {
    case SubmitStatus::Ok:
        return fut;
    case SubmitStatus::Overloaded:
        throw std::runtime_error(
            "InferenceServer::submit: queue at capacity (shed)");
    case SubmitStatus::Shutdown:
    default:
        throw std::runtime_error(
            "InferenceServer::submit after shutdown");
    }
}

SubmitStatus
InferenceServer::submit(nn::Sequence frames,
                        std::future<InferenceReply> &out)
{
    UtteranceJob job;
    job.frames = std::move(frames);
    std::future<InferenceReply> fut = job.promise.get_future();

    std::size_t depth = 0;
    {
        base::UniqueLock lk(mu_);
        if (!shuttingDown_ &&
            opts_.admission == AdmissionPolicy::Shed &&
            queue_.size() >= opts_.queueCapacity) {
            lk.unlock();
            base::MutexLock slk(statsMu_);
            ++stats_.requestsShed;
            return SubmitStatus::Overloaded;
        }
        ++submitWaiters_;
        while (!shuttingDown_ && queue_.size() >= opts_.queueCapacity)
            spaceCv_.wait(lk);
        --submitWaiters_;
        if (shuttingDown_) {
            // Fail fast: a submitter parked on backpressure must
            // never outlive the server's willingness to serve it.
            // Let shutdown() know this thread has left the wait so
            // it can safely proceed to teardown.
            waitersCv_.notifyAll();
            lk.unlock();
            base::MutexLock slk(statsMu_);
            ++stats_.requestsRejectedShutdown;
            return SubmitStatus::Shutdown;
        }
        job.enqueued = Clock::now();
        queue_.push_back(std::move(job));
        depth = queue_.size();
    }
    {
        base::MutexLock lk(statsMu_);
        stats_.queueDepth.add(static_cast<Real>(depth));
    }
    notifyQueueWork();
    out = std::move(fut);
    return SubmitStatus::Ok;
}

void
InferenceServer::notifyQueueWork()
{
    // HoldOpen: any worker can take the job, waking one suffices.
    // Continuous: only the engine thread's predicate watches the
    // queue — notify_one could wake (and be swallowed by) a
    // stream-only worker, leaving queued work unserved forever.
    if (opts_.scheduler == SchedulerMode::Continuous)
        workCv_.notifyAll();
    else
        workCv_.notifyOne();
}

bool
InferenceServer::trySubmit(nn::Sequence frames,
                           std::future<InferenceReply> &out)
{
    UtteranceJob job;
    job.frames = std::move(frames);
    std::future<InferenceReply> fut = job.promise.get_future();

    std::size_t depth = 0;
    {
        base::UniqueLock lk(mu_);
        if (shuttingDown_)
            throw std::runtime_error(
                "InferenceServer::trySubmit after shutdown");
        if (queue_.size() >= opts_.queueCapacity) {
            lk.unlock();
            base::MutexLock slk(statsMu_);
            ++stats_.requestsShed;
            return false;
        }
        job.enqueued = Clock::now();
        queue_.push_back(std::move(job));
        depth = queue_.size();
    }
    {
        base::MutexLock lk(statsMu_);
        stats_.queueDepth.add(static_cast<Real>(depth));
    }
    notifyQueueWork();
    out = std::move(fut);
    return true;
}

InferenceReply
InferenceServer::infer(const nn::Sequence &frames)
{
    return submit(frames).get();
}

InferenceServer::Stream
InferenceServer::openStream()
{
    auto slot = std::make_shared<StreamSlot>();
    {
        base::MutexLock lk(mu_);
        if (shuttingDown_)
            throw std::runtime_error(
                "InferenceServer::openStream after shutdown");
        slot->worker = nextStreamWorker_++ % opts_.workers;
    }
    return Stream(this, std::move(slot));
}

std::size_t
InferenceServer::pendingRequests() const
{
    base::MutexLock lk(mu_);
    return queue_.size();
}

ServerStats
InferenceServer::stats() const
{
    base::MutexLock lk(statsMu_);
    return stats_;
}

bool
InferenceServer::accepting() const
{
    base::MutexLock lk(mu_);
    return !shuttingDown_;
}

void
InferenceServer::shutdown()
{
    {
        base::UniqueLock lk(mu_);
        shuttingDown_ = true;
        workCv_.notifyAll();
        spaceCv_.notifyAll();
        // Wait until every submit() blocked on backpressure has
        // left its condition wait: after that, no caller thread can
        // still be parked on this object's synchronization state, so
        // the destructor may safely tear it down.
        while (submitWaiters_ != 0)
            waitersCv_.wait(lk);
    }

    base::MutexLock join(joinMu_);
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

void
InferenceServer::enqueueStreamJob(
    const std::shared_ptr<StreamSlot> &slot, StreamJob job)
{
    {
        base::MutexLock lk(mu_);
        if (shuttingDown_)
            throw std::runtime_error(
                "InferenceServer: stream use after shutdown");
        streamQueues_[slot->worker].push_back(std::move(job));
    }
    // notify_all: the job is pinned, so the one worker whose
    // predicate became true must be among the woken.
    workCv_.notifyAll();
}

void
InferenceServer::workerLoop(std::size_t index, bool takeBatches)
{
    runtime::InferenceSession session =
        model_.createSession(opts_.computeThreads);
    std::vector<UtteranceJob> batch;

    for (;;) {
        base::UniqueLock lk(mu_);
        while (!(shuttingDown_ || (takeBatches && !queue_.empty()) ||
                 !streamQueues_[index].empty()))
            workCv_.wait(lk);

        // Stream steps first: they are single frames of a live
        // utterance, the latency-critical path.
        if (!streamQueues_[index].empty()) {
            StreamJob job = std::move(streamQueues_[index].front());
            streamQueues_[index].pop_front();
            lk.unlock();
            runStreamJob(session, job);
            continue;
        }

        if (!takeBatches || queue_.empty()) {
            if (shuttingDown_)
                return; // fully drained
            continue;   // woken but another worker took the job
        }

        // Dynamic batching: take what is queued, then hold the
        // partial batch open up to batchTimeout for late arrivals.
        batch.clear();
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        // Clamp the hold-open window so Clock::now() + timeout cannot
        // overflow the clock's representation — an overflowed deadline
        // lands in the past and would silently disable batching.
        constexpr auto kMaxHold =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::hours(1));
        const auto deadline =
            Clock::now() + std::min(opts_.batchTimeout, kMaxHold);
        while (batch.size() < opts_.maxBatch) {
            if (!queue_.empty()) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
                continue;
            }
            if (shuttingDown_ || !streamQueues_[index].empty())
                break;
            if (opts_.batchTimeout.count() <= 0)
                break;
            // Predicated deadline wait, written as the explicit loop
            // std::condition_variable::wait_until(lk, deadline, pred)
            // expands to, so the guarded predicate reads stay in a
            // provably-locked context. A spurious wakeup — or the
            // notify_all a stream job pinned to a *different* worker
            // broadcasts — re-checks here instead of bouncing the
            // outer loop (and its lock hand-off) once per
            // notification until the deadline.
            bool new_work = true;
            while (!(shuttingDown_ || !queue_.empty() ||
                     !streamQueues_[index].empty())) {
                if (workCv_.waitUntil(lk, deadline) ==
                    std::cv_status::timeout) {
                    new_work = shuttingDown_ || !queue_.empty() ||
                               !streamQueues_[index].empty();
                    break;
                }
            }
            if (!new_work)
                break; // deadline hit: dispatch the partial batch
        }
        spaceCv_.notifyAll();
        lk.unlock();
        runBatch(session, batch, index);
    }
}

void
InferenceServer::admitLane(runtime::ContinuousBatch &engine,
                           std::size_t worker)
{
    auto ctx = std::make_shared<LaneCtx>();
    ctx->job = std::move(queue_.front());
    queue_.pop_front();
    ctx->admitted = Clock::now();
    ctx->reply.timing.queueMicros =
        microsBetween(ctx->job.enqueued, ctx->admitted);
    ctx->reply.timing.batchSize = engine.activeLanes() + 1;
    ctx->reply.timing.worker = worker;
    engine.admit(
        &ctx->job.frames,
        [ctx](std::size_t, const Vector &logits, int prediction) {
            ctx->reply.logits.push_back(logits);
            ctx->reply.predictions.push_back(prediction);
        },
        [this, ctx] { finishLane(*ctx); });
}

void
InferenceServer::finishLane(LaneCtx &ctx)
{
    ctx.reply.timing.computeMicros =
        microsBetween(ctx.admitted, Clock::now());
    // Fold counters in before fulfilling the promise, so a caller
    // that waits on its future observes its own request in stats().
    {
        base::MutexLock lk(statsMu_);
        stats_.requestsCompleted += 1;
        stats_.framesProcessed += ctx.job.frames.size();
        stats_.queueMicros.add(ctx.reply.timing.queueMicros);
    }
    ctx.job.promise.set_value(std::move(ctx.reply));
}

void
InferenceServer::continuousLoop(std::size_t index)
{
    runtime::InferenceSession session =
        model_.createSession(opts_.computeThreads);
    runtime::ContinuousBatch engine(model_, opts_.computeThreads);

    for (;;) {
        std::optional<StreamJob> stream;
        {
            base::UniqueLock lk(mu_);
            // A live lane pool is runnable work in itself: with
            // lanes in flight the predicate is already true and the
            // engine steps without sleeping.
            while (!(shuttingDown_ || !queue_.empty() ||
                     !streamQueues_[index].empty() || !engine.idle()))
                workCv_.wait(lk);

            if (!streamQueues_[index].empty()) {
                stream.emplace(
                    std::move(streamQueues_[index].front()));
                streamQueues_[index].pop_front();
            } else {
                // Admit queued utterances into free lanes — the
                // continuous-batching move: between any two time
                // steps, never only at batch boundaries. An empty
                // utterance's DoneSink fires inside admit();
                // finishLane never touches mu_, so that is safe
                // under the lock.
                bool admitted = false;
                while (!queue_.empty() &&
                       engine.activeLanes() < opts_.maxBatch) {
                    admitLane(engine, index);
                    admitted = true;
                }
                if (admitted)
                    spaceCv_.notifyAll();
                if (engine.idle()) {
                    if (shuttingDown_ && queue_.empty())
                        return; // fully drained
                    continue;   // nothing runnable yet
                }
            }
        }

        if (stream) {
            runStreamJob(session, *stream);
            continue;
        }

        // One time step for every live lane, off the lock; completed
        // lanes retire and their futures complete inside stepAll().
        const std::size_t lanes = engine.activeLanes();
        const auto t0 = Clock::now();
        engine.stepAll();
        const Real compute = microsBetween(t0, Clock::now());
        {
            base::MutexLock lk(statsMu_);
            stats_.batchesDispatched += 1;
            stats_.batchSize.add(static_cast<Real>(lanes));
            stats_.computeMicros.add(compute);
        }
    }
}

void
InferenceServer::runBatch(runtime::InferenceSession &session,
                          std::vector<UtteranceJob> &batch,
                          std::size_t worker)
{
    // The coalesced batch goes through run()'s batch-major datapath:
    // every utterance is a lane column and each weight tensor is one
    // GEMM-shaped kernel call per time step, so dynamic batching
    // buys compute density (amortized weight traffic), not just
    // queueing.
    std::vector<const nn::Sequence *> ptrs;
    ptrs.reserve(batch.size());
    for (const auto &job : batch)
        ptrs.push_back(&job.frames);

    const auto t0 = Clock::now();
    runtime::BatchResult result = session.run(ptrs);
    const auto t1 = Clock::now();
    const Real compute = microsBetween(t0, t1);

    std::size_t frames = 0;
    for (const auto &job : batch)
        frames += job.frames.size();

    // Fold counters in before fulfilling the promises, so a caller
    // that waits on its future observes its own request in stats().
    {
        base::MutexLock lk(statsMu_);
        stats_.requestsCompleted += batch.size();
        stats_.batchesDispatched += 1;
        stats_.framesProcessed += frames;
        stats_.computeMicros.add(compute);
        stats_.batchSize.add(static_cast<Real>(batch.size()));
        for (const auto &job : batch)
            stats_.queueMicros.add(microsBetween(job.enqueued, t0));
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
        InferenceReply reply;
        reply.logits = std::move(result.logits[i]);
        reply.predictions = std::move(result.predictions[i]);
        reply.timing.queueMicros = microsBetween(batch[i].enqueued, t0);
        reply.timing.computeMicros = compute;
        reply.timing.batchSize = batch.size();
        reply.timing.worker = worker;
        batch[i].promise.set_value(std::move(reply));
    }
}

void
InferenceServer::runStreamJob(runtime::InferenceSession &session,
                              StreamJob &job)
{
    // Lazily create the recurrent state from this worker's session:
    // every job of a slot runs on its pinned worker, so the state is
    // only ever touched by one thread. Checkpoint/restore before the
    // first step see (or replace) the fresh start-of-utterance state.
    if (!job.slot->state)
        job.slot->state.emplace(session.newStream());

    switch (job.op) {
      case StreamJob::Op::Reset:
        job.slot->state->reset();
        job.done.set_value();
        return;
      case StreamJob::Op::Checkpoint:
        job.bytes.set_value(runtime::checkpointStream(
            model_, *job.slot->state, job.aux));
        return;
      case StreamJob::Op::Restore:
        runtime::restoreStream(model_, *job.slot->state, job.blob);
        job.done.set_value();
        return;
      case StreamJob::Op::Step:
        break;
    }

    const Vector &logits = session.step(*job.slot->state, job.frame);
    {
        base::MutexLock lk(statsMu_);
        stats_.streamStepsProcessed += 1;
    }
    job.logits.set_value(logits);
}

// --- Stream handle -----------------------------------------------------

InferenceServer::Stream::Stream(InferenceServer *server,
                                std::shared_ptr<StreamSlot> slot)
    : server_(server), slot_(std::move(slot))
{
}

InferenceServer::Stream::Stream(Stream &&other) noexcept
    : server_(other.server_), slot_(std::move(other.slot_))
{
    other.server_ = nullptr;
}

InferenceServer::Stream &
InferenceServer::Stream::operator=(Stream &&other) noexcept
{
    if (this != &other) {
        close();
        server_ = other.server_;
        slot_ = std::move(other.slot_);
        other.server_ = nullptr;
    }
    return *this;
}

std::future<Vector>
InferenceServer::Stream::step(Vector frame)
{
    if (!slot_)
        throw std::runtime_error("Stream::step on a closed stream");
    StreamJob job;
    job.slot = slot_;
    job.frame = std::move(frame);
    std::future<Vector> fut = job.logits.get_future();
    server_->enqueueStreamJob(slot_, std::move(job));
    return fut;
}

Vector
InferenceServer::Stream::stepSync(Vector frame)
{
    return step(std::move(frame)).get();
}

std::future<void>
InferenceServer::Stream::reset()
{
    if (!slot_)
        throw std::runtime_error("Stream::reset on a closed stream");
    StreamJob job;
    job.slot = slot_;
    job.op = StreamJob::Op::Reset;
    std::future<void> fut = job.done.get_future();
    server_->enqueueStreamJob(slot_, std::move(job));
    return fut;
}

std::future<std::string>
InferenceServer::Stream::checkpoint(std::string aux)
{
    if (!slot_)
        throw std::runtime_error(
            "Stream::checkpoint on a closed stream");
    StreamJob job;
    job.slot = slot_;
    job.op = StreamJob::Op::Checkpoint;
    job.aux = std::move(aux);
    std::future<std::string> fut = job.bytes.get_future();
    server_->enqueueStreamJob(slot_, std::move(job));
    return fut;
}

std::string
InferenceServer::Stream::checkpointSync(std::string aux)
{
    return checkpoint(std::move(aux)).get();
}

std::future<void>
InferenceServer::Stream::restore(std::string blob)
{
    if (!slot_)
        throw std::runtime_error("Stream::restore on a closed stream");
    StreamJob job;
    job.slot = slot_;
    job.op = StreamJob::Op::Restore;
    job.blob = std::move(blob);
    std::future<void> fut = job.done.get_future();
    server_->enqueueStreamJob(slot_, std::move(job));
    return fut;
}

void
InferenceServer::Stream::restoreSync(std::string blob)
{
    restore(std::move(blob)).get();
}

std::size_t
InferenceServer::Stream::worker() const
{
    if (!slot_)
        throw std::runtime_error("Stream::worker on a closed stream");
    return slot_->worker;
}

void
InferenceServer::Stream::close()
{
    slot_.reset();
    server_ = nullptr;
}

} // namespace ernn::serve
