/**
 * @file
 * Concurrent inference serving over a CompiledModel: a pool of worker
 * threads, each owning a private InferenceSession, fed by a bounded
 * request queue with dynamic batching. Under SchedulerMode::HoldOpen,
 * submitted utterances are coalesced into batches of up to
 * ServerOptions::maxBatch (or until batchTimeout elapses) and
 * dispatched to a free worker; under SchedulerMode::Continuous one
 * engine thread drives a runtime::ContinuousBatch lane pool and
 * admits queued utterances between time steps. Either way results
 * come back through std::future with per-request latency attribution,
 * bit-identical to a solo InferenceSession::run. Admission to the
 * bounded queue is governed by AdmissionPolicy: Block parks the
 * submitter (backpressure), Shed rejects with SubmitStatus::Overloaded
 * and counts the shed in ServerStats.
 *
 * This is the software analogue of the paper's FPGA scheduling: the
 * accelerator overlaps independent utterances across its PE array to
 * keep the (shared, read-only) weights streaming; here the immutable
 * CompiledModel is shared by every worker while all mutable state
 * stays session-private, so the same overlap is safe under threads.
 *
 * Thread-safety contract:
 *  - CompiledModel is immutable and may be read from any thread.
 *  - InferenceSession and StreamState are NOT thread-safe; the server
 *    never shares one across workers.
 *  - InferenceServer's public API (submit / infer / openStream /
 *    stats / shutdown) is safe to call from any number of threads.
 *  - A Stream handle itself must be driven from one thread at a time
 *    (its frames are ordered), but different Streams may be driven
 *    concurrently.
 */

#ifndef ERNN_SERVE_INFERENCE_SERVER_HH
#define ERNN_SERVE_INFERENCE_SERVER_HH

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/stats.hh"
#include "base/sync.hh"
#include "runtime/session.hh"

namespace ernn::runtime
{
class ContinuousBatch;
}

namespace ernn::serve
{

/** Outcome of a status-returning submission. */
enum class SubmitStatus
{
    Ok,          //!< accepted; the reply future will complete
    Shutdown,    //!< server is (or began) shutting down; not enqueued
    Overloaded,  //!< queue at capacity under AdmissionPolicy::Shed
    NoSuchModel, //!< registry routing: no model published under id
};

const char *submitStatusName(SubmitStatus status);

/** What a submission does when the bounded queue is at capacity. */
enum class AdmissionPolicy
{
    Block, //!< backpressure: park the submitter until space frees
    Shed,  //!< load-shed: reject immediately with Overloaded
};

/** How workers turn the request queue into kernel calls. */
enum class SchedulerMode
{
    /** Coalesce up to maxBatch requests (holding a partial batch
     *  open for batchTimeout), then run the batch to completion. */
    HoldOpen,

    /** Continuous batching: one engine thread keeps a live lane
     *  pool (runtime::ContinuousBatch) and admits queued requests
     *  between any two time steps, so a lane freed by a short
     *  utterance is refilled immediately instead of idling until
     *  the whole batch drains. maxBatch bounds the live lanes. */
    Continuous,
};

/** Serving knobs, fixed for the lifetime of a server. */
struct ServerOptions
{
    /** Worker threads; each holds its own InferenceSession. In
     *  Continuous mode worker 0 is the engine thread (it owns the
     *  lane pool and the request queue) and the remaining workers
     *  serve pinned streams only. */
    std::size_t workers = 2;

    /** Largest batch one worker coalesces before dispatching
     *  (HoldOpen), or the live-lane cap (Continuous). */
    std::size_t maxBatch = 8;

    /**
     * How long a worker holding a partial batch waits for more
     * requests before dispatching it anyway. Zero dispatches
     * whatever is instantaneously queued (lowest latency).
     * HoldOpen only; the continuous engine never holds work.
     */
    std::chrono::microseconds batchTimeout{200};

    /**
     * Bounded-queue admission cap: at this depth submissions block
     * (AdmissionPolicy::Block) or shed (AdmissionPolicy::Shed).
     */
    std::size_t queueCapacity = 1024;

    /** Full-queue behavior of the submit paths. */
    AdmissionPolicy admission = AdmissionPolicy::Block;

    /** Batching discipline of the worker pool. */
    SchedulerMode scheduler = SchedulerMode::HoldOpen;

    /**
     * Intra-session parallelism of each worker's session (and the
     * Continuous engine's lane pool): every worker splits its
     * per-timestep kernel row blocks across this many threads.
     * 0 inherits the model's CompileOptions::computeThreads; 1 is
     * serial. Total thread footprint is roughly workers x
     * computeThreads — prefer more workers for many small requests
     * and more computeThreads for few large batches.
     */
    std::size_t computeThreads = 0;
};

/**
 * Latency attribution of one served request. Under HoldOpen,
 * computeMicros is the dispatched batch's compute time and batchSize
 * the coalesced batch. Under Continuous, computeMicros is the wall
 * time the request's lane was live in the engine and batchSize the
 * lane count at admission.
 */
struct RequestTiming
{
    Real queueMicros = 0.0;   //!< submit -> dispatch/lane admission
    Real computeMicros = 0.0; //!< batch compute / lane residency
    std::size_t batchSize = 0; //!< batch (or lane pool) it rode in
    std::size_t worker = 0;    //!< worker that served it
};

/** Completed request: same payload as a solo InferenceSession::run. */
struct InferenceReply
{
    nn::Sequence logits;
    std::vector<int> predictions;
    RequestTiming timing;
};

/** Point-in-time copy of the server's aggregate counters. */
struct ServerStats
{
    std::size_t requestsCompleted = 0;
    std::size_t batchesDispatched = 0;
    std::size_t framesProcessed = 0;
    std::size_t streamStepsProcessed = 0;
    std::size_t requestsShed = 0; //!< rejected: queue at capacity
    std::size_t requestsRejectedShutdown = 0; //!< rejected: shutdown

    RunningStat queueMicros;   //!< per-request time spent queued
    RunningStat computeMicros; //!< per-batch (or per-step) compute
    RunningStat batchSize;     //!< batch sizes / live-lane counts
    RunningStat queueDepth;    //!< depth sampled at each submit

    /** Mean coalesced batch size (0.0 before any dispatch). */
    Real meanBatchSize() const
    {
        return batchesDispatched ? batchSize.mean() : 0.0;
    }

    /** Fold another server's counters in (registry aggregation:
     *  a drained version's final stats merge into its successor's
     *  cumulative view). */
    void merge(const ServerStats &other);

    /** Serialize every counter as one self-contained JSON object
     *  (machine-readable mirror of the bench/CLI text output). */
    std::string toJson() const;
};

/**
 * Multi-threaded inference server over one immutable CompiledModel.
 * The model must outlive the server; the server must outlive (or be
 * shut down after) every outstanding future and Stream.
 */
class InferenceServer
{
  public:
    explicit InferenceServer(const runtime::CompiledModel &model,
                             ServerOptions opts = {});

    /**
     * Own a model outright (e.g. one returned by
     * runtime::loadArtifactShared): the server keeps it alive for
     * its whole lifetime, so no external model scope is needed.
     */
    explicit InferenceServer(
        std::shared_ptr<const runtime::CompiledModel> model,
        ServerOptions opts = {});

    /**
     * Serve straight from an artifact file: load the CompiledModel
     * from @p artifactPath (fatal with the specific defect on any
     * format error) and own it. This is the deployment entry point —
     * a serving process built on it never links the training stack.
     */
    explicit InferenceServer(const std::string &artifactPath,
                             ServerOptions opts = {});

    /** Drains every queued request, then joins the workers. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    const runtime::CompiledModel &model() const { return model_; }
    const ServerOptions &options() const { return opts_; }

    /**
     * Enqueue one utterance. Blocks while the queue is at capacity
     * under AdmissionPolicy::Block; throws std::runtime_error after
     * shutdown() or when AdmissionPolicy::Shed rejects. Futures
     * complete with bit-identical results to a direct
     * InferenceSession::run on the same utterance.
     */
    std::future<InferenceReply> submit(nn::Sequence frames);

    /**
     * Status-returning submit: never throws. On Ok, @p out holds the
     * reply future; on any rejection @p out is untouched. Under
     * AdmissionPolicy::Block a full queue parks the caller, and a
     * shutdown() racing that wait wakes it to return Shutdown
     * immediately — the fail-fast guarantee: no submitter is ever
     * left blocked on a server that will not take its request.
     */
    SubmitStatus submit(nn::Sequence frames,
                        std::future<InferenceReply> &out);

    /**
     * Non-blocking submit: returns false (and leaves @p out empty)
     * instead of blocking when the queue is full.
     */
    bool trySubmit(nn::Sequence frames,
                   std::future<InferenceReply> &out);

    /** Synchronous convenience: submit and wait. */
    InferenceReply infer(const nn::Sequence &frames);

    /**
     * A live utterance pinned to one worker: frames stepped through
     * this handle run on that worker's session in submission order,
     * interleaved with its batch work. Movable, not copyable; the
     * destructor closes the stream.
     */
    class Stream
    {
      public:
        Stream() = default;
        Stream(Stream &&other) noexcept;
        Stream &operator=(Stream &&other) noexcept;
        ~Stream() { close(); }

        Stream(const Stream &) = delete;
        Stream &operator=(const Stream &) = delete;

        /** Logits for the next frame of this utterance. */
        std::future<Vector> step(Vector frame);

        /** Synchronous convenience: step and wait. */
        Vector stepSync(Vector frame);

        /** Rewind to start-of-utterance, ordered after prior steps. */
        std::future<void> reset();

        /**
         * Serialize this stream's live recurrent state to a stream
         * checkpoint blob (runtime/checkpoint.hh), ordered after
         * prior steps — cut an hour-long utterance here, persist the
         * blob, and resume later via restore() on any stream of a
         * structurally identical model. @p aux is an opaque caller
         * payload carried inside the blob (e.g. a serialized
         * speech::FrontendState).
         */
        std::future<std::string> checkpoint(std::string aux = {});

        /** Synchronous convenience: checkpoint and wait. */
        std::string checkpointSync(std::string aux = {});

        /**
         * Replace this stream's state with @p blob's, ordered after
         * prior steps; subsequent steps continue the checkpointed
         * utterance bit-identically to an uninterrupted run. The
         * stream may be fresh or mid-utterance (its previous state
         * is fully discarded). Malformed or wrong-model blobs are
         * rejected fatally (the checkpoint error contract).
         */
        std::future<void> restore(std::string blob);

        /** Synchronous convenience: restore and wait. */
        void restoreSync(std::string blob);

        /** Worker index this stream is pinned to. */
        std::size_t worker() const;

        bool open() const { return slot_ != nullptr; }

        /** Detach from the server; outstanding steps still finish. */
        void close();

      private:
        friend class InferenceServer;
        Stream(InferenceServer *server,
               std::shared_ptr<struct StreamSlot> slot);

        InferenceServer *server_ = nullptr;
        std::shared_ptr<struct StreamSlot> slot_;
    };

    /**
     * Open a streaming utterance, pinned round-robin to a worker.
     * Throws std::runtime_error after shutdown().
     */
    Stream openStream();

    /** Utterances queued but not yet dispatched. */
    std::size_t pendingRequests() const;

    /** Copy of the aggregate serving counters. */
    ServerStats stats() const;

    /**
     * Stop accepting work, drain every queued request and stream
     * step, and join the workers. Every future already obtained
     * completes normally, and any submit() blocked on backpressure
     * is woken (it throws) before this returns — so once shutdown()
     * or the destructor finishes, no caller is left inside the
     * server. Idempotent; called by the destructor.
     */
    void shutdown();

    /** False once shutdown() has begun. */
    bool accepting() const;

  private:
    struct UtteranceJob;
    struct StreamJob;
    struct LaneCtx;

    /** Shared constructor tail: validate options, spawn workers. */
    void startWorkers();

    /** Wake whoever serves queue_ after an enqueue (scheduler-aware:
     *  in Continuous mode only the engine thread watches the queue,
     *  so a targeted notify_one could get lost on a stream worker). */
    void notifyQueueWork();

    void workerLoop(std::size_t index, bool takeBatches);
    void continuousLoop(std::size_t index);
    /** Pop queue_.front() into a fresh engine lane. Called by the
     *  engine thread with mu_ held (machine-checked). */
    void admitLane(runtime::ContinuousBatch &engine, std::size_t worker)
        ERNN_REQUIRES(mu_);
    /** Lane completion: fold stats, fulfill the promise. May run
     *  with mu_ held (empty utterances complete inside admit()), so
     *  it must never take mu_ itself — statsMu_ only. */
    void finishLane(LaneCtx &ctx) ERNN_EXCLUDES(statsMu_);
    void runBatch(runtime::InferenceSession &session,
                  std::vector<UtteranceJob> &batch, std::size_t worker)
        ERNN_EXCLUDES(mu_, statsMu_);
    void runStreamJob(runtime::InferenceSession &session,
                      StreamJob &job) ERNN_EXCLUDES(mu_, statsMu_);
    void enqueueStreamJob(const std::shared_ptr<StreamSlot> &slot,
                          StreamJob job) ERNN_EXCLUDES(mu_);

    /** Set only by the owning constructors; declared before model_
     *  so the reference can bind to *owned_. */
    std::shared_ptr<const runtime::CompiledModel> owned_;
    const runtime::CompiledModel &model_;
    ServerOptions opts_;

    /** Queue/lifecycle lock. Ordering: mu_ is never held while
     *  taking statsMu_ is *allowed* (finishLane under admit), but
     *  statsMu_ is a leaf — nothing is acquired under it. */
    mutable base::Mutex mu_;
    base::CondVar workCv_;  //!< workers wait for jobs
    base::CondVar spaceCv_; //!< submitters wait for space
    std::deque<UtteranceJob> queue_ ERNN_GUARDED_BY(mu_);
    /** Per-worker pinned stream jobs. */
    std::vector<std::deque<StreamJob>> streamQueues_
        ERNN_GUARDED_BY(mu_);
    bool shuttingDown_ ERNN_GUARDED_BY(mu_) = false;
    /** Submitters blocked in backpressure. */
    std::size_t submitWaiters_ ERNN_GUARDED_BY(mu_) = 0;
    base::CondVar waitersCv_; //!< shutdown awaits waiters=0
    std::size_t nextStreamWorker_ ERNN_GUARDED_BY(mu_) = 0;

    /** Leaf lock for the aggregate counters (see mu_ ordering). */
    mutable base::Mutex statsMu_;
    ServerStats stats_ ERNN_GUARDED_BY(statsMu_);

    base::Mutex joinMu_; //!< serializes concurrent shutdown() calls
    /** Spawned in startWorkers() (single-threaded constructor tail),
     *  joined under joinMu_ by shutdown(). */
    // lint: thread-spawn(worker pool; see ARCHITECTURE.md concurrency contract)
    std::vector<std::thread> workers_ ERNN_GUARDED_BY(joinMu_);
};

} // namespace ernn::serve

#endif // ERNN_SERVE_INFERENCE_SERVER_HH
