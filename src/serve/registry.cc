#include "serve/registry.hh"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "base/logging.hh"

namespace ernn::serve
{

namespace
{

/** Minimal JSON string escaping for model ids. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

// --- ModelRegistry ------------------------------------------------------

ModelRegistry::Entry *
ModelRegistry::entryFor(const std::string &id)
{
    base::WriterLock lk(mapMu_);
    if (shutdown_)
        throw std::runtime_error(
            "ModelRegistry::publish after shutdown");
    std::unique_ptr<Entry> &slot = entries_[id];
    if (!slot)
        slot = std::make_unique<Entry>();
    return slot.get();
}

const ModelRegistry::Entry *
ModelRegistry::findEntry(const std::string &id) const
{
    base::ReaderLock lk(mapMu_);
    const auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : it->second.get();
}

void
ModelRegistry::swapIn(Entry &entry, std::uint64_t version,
                      std::shared_ptr<InferenceServer> next)
{
    std::shared_ptr<InferenceServer> old;
    {
        base::WriterLock lk(entry.mu);
        old = std::move(entry.server);
        // Keep the outgoing version visible to stats readers while
        // it drains: without this, its counters disappear from the
        // cumulative view between the retarget and the post-drain
        // merge below, and a periodic dump racing the swap reports
        // totals that go *backwards*.
        entry.draining = old;
        entry.server = std::move(next);
        entry.version = entry.server ? version : 0;
        if (entry.server)
            ++entry.generations;
    }
    // From here every new submission routes to the new version; the
    // old one only has the requests it already accepted.
    if (!old)
        return;
    // Drain: shutdown() completes every accepted future and wakes
    // any submitter parked on the old queue's backpressure (none can
    // exist — registry submitters hold the entry lock across their
    // whole submit call, so the unique lock above waited them out).
    old->shutdown();
    {
        // Fold-and-clear under one unique lock: a reader either sees
        // the drained server (and merges its final counters itself)
        // or sees them inside retiredStats — never both, never
        // neither.
        base::WriterLock lk(entry.mu);
        entry.retiredStats.merge(old->stats());
        entry.draining.reset();
    }
    // `old` — and the CompiledModel it owns — is released here,
    // unless a ModelStream handle still pins it.
}

void
ModelRegistry::publish(
    const std::string &id, std::uint64_t version,
    std::shared_ptr<const runtime::CompiledModel> model,
    ServerOptions opts)
{
    // Build the replacement outside every lock: the old version
    // serves at full rate while the new one spins up.
    auto next =
        std::make_shared<InferenceServer>(std::move(model), opts);
    swapIn(*entryFor(id), version, std::move(next));
}

void
ModelRegistry::publishArtifact(const std::string &id,
                               std::uint64_t version,
                               const std::string &artifactPath,
                               ServerOptions opts,
                               runtime::MapOptions mapOpts)
{
    publish(id, version,
            runtime::loadArtifactMapped(artifactPath, mapOpts),
            opts);
}

SubmitStatus
ModelRegistry::submit(const std::string &id, nn::Sequence frames,
                      std::future<InferenceReply> &out)
{
    const Entry *entry = findEntry(id);
    if (entry) {
        // Hold the entry shared for the whole underlying submit: a
        // concurrent publish cannot begin draining this server until
        // the request is safely in its queue, so a registry
        // submitter never sees SubmitStatus::Shutdown from a swap.
        base::ReaderLock lk(entry->mu);
        if (entry->server)
            return entry->server->submit(std::move(frames), out);
    }
    base::ReaderLock lk(mapMu_);
    return shutdown_ ? SubmitStatus::Shutdown
                     : SubmitStatus::NoSuchModel;
}

InferenceReply
ModelRegistry::infer(const std::string &id, const nn::Sequence &frames)
{
    std::future<InferenceReply> fut;
    const SubmitStatus status = submit(id, frames, fut);
    if (status != SubmitStatus::Ok)
        throw std::runtime_error("ModelRegistry::infer(\"" + id +
                                 "\"): " + submitStatusName(status));
    return fut.get();
}

ModelStream
ModelRegistry::openStream(const std::string &id)
{
    if (const Entry *entry = findEntry(id)) {
        base::ReaderLock lk(entry->mu);
        if (entry->server) {
            std::shared_ptr<InferenceServer> server = entry->server;
            InferenceServer::Stream stream = server->openStream();
            return ModelStream(std::move(server), std::move(stream));
        }
    }
    throw std::runtime_error("ModelRegistry::openStream: \"" + id +
                             "\" is not serving");
}

bool
ModelRegistry::serving(const std::string &id) const
{
    if (const Entry *entry = findEntry(id)) {
        base::ReaderLock lk(entry->mu);
        return entry->server != nullptr;
    }
    return false;
}

std::uint64_t
ModelRegistry::activeVersion(const std::string &id) const
{
    if (const Entry *entry = findEntry(id)) {
        base::ReaderLock lk(entry->mu);
        return entry->version;
    }
    return 0;
}

ServerStats
ModelRegistry::entryStats(const Entry &entry)
{
    base::ReaderLock lk(entry.mu);
    ServerStats out = entry.retiredStats;
    if (entry.draining)
        out.merge(entry.draining->stats());
    if (entry.server)
        out.merge(entry.server->stats());
    return out;
}

ServerStats
ModelRegistry::stats(const std::string &id) const
{
    if (const Entry *entry = findEntry(id))
        return entryStats(*entry);
    return {};
}

std::vector<ModelInfo>
ModelRegistry::models() const
{
    // Entries are never destroyed while the registry lives, so the
    // pointers stay valid after the map lock drops.
    std::vector<std::pair<const std::string *, const Entry *>> items;
    {
        base::ReaderLock lk(mapMu_);
        items.reserve(entries_.size());
        for (const auto &kv : entries_)
            items.emplace_back(&kv.first, kv.second.get());
    }
    std::vector<ModelInfo> out;
    out.reserve(items.size());
    for (const auto &[id, entry] : items) {
        ModelInfo info;
        info.id = *id;
        base::ReaderLock lk(entry->mu);
        info.version = entry->version;
        info.serving = entry->server != nullptr;
        info.generations = entry->generations;
        info.pendingRequests =
            entry->server ? entry->server->pendingRequests() : 0;
        info.stats = entry->retiredStats;
        if (entry->draining)
            info.stats.merge(entry->draining->stats());
        if (entry->server)
            info.stats.merge(entry->server->stats());
        out.push_back(std::move(info));
    }
    return out;
}

std::string
ModelRegistry::statsJson() const
{
    std::ostringstream os;
    os << "{\"models\":[";
    bool first = true;
    for (const ModelInfo &m : models()) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"id\":\"" << jsonEscape(m.id)
           << "\",\"version\":" << m.version << ",\"serving\":"
           << (m.serving ? "true" : "false")
           << ",\"pending\":" << m.pendingRequests
           << ",\"generations\":" << m.generations
           << ",\"stats\":" << m.stats.toJson() << '}';
    }
    os << "]}";
    return os.str();
}

void
ModelRegistry::retire(const std::string &id)
{
    // findEntry, not entryFor: retiring an unknown id must not
    // create a route for it.
    if (const Entry *entry = findEntry(id))
        swapIn(const_cast<Entry &>(*entry), 0, nullptr);
}

void
ModelRegistry::shutdown()
{
    std::vector<Entry *> entries;
    {
        base::WriterLock lk(mapMu_);
        shutdown_ = true;
        entries.reserve(entries_.size());
        for (auto &kv : entries_)
            entries.push_back(kv.second.get());
    }
    for (Entry *entry : entries)
        swapIn(*entry, 0, nullptr);
}

// --- RegistryServer -----------------------------------------------------

RegistryServer::RegistryServer(RegistryServerOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.statsSink)
        opts_.statsSink = [](const std::string &json) {
            ernn_inform("registry stats " << json);
        };
    if (opts_.statsInterval.count() > 0) {
        // lint: thread-spawn(dump thread start; member waived in registry.hh)
        dumper_ = std::thread([this] { dumpLoop(); });
    }
}

RegistryServer::~RegistryServer()
{
    shutdown();
}

void
RegistryServer::dumpLoop()
{
    base::UniqueLock lk(mu_);
    for (;;) {
        // Predicated interval wait, expanded so the stopping_ reads
        // stay in a provably-locked context (see base::CondVar).
        const auto deadline =
            std::chrono::steady_clock::now() + opts_.statsInterval;
        for (;;) {
            if (stopping_)
                return;
            if (cv_.waitUntil(lk, deadline) == std::cv_status::timeout)
                break;
        }
        if (stopping_)
            return;
        lk.unlock();
        opts_.statsSink(registry_.statsJson());
        lk.lock();
    }
}

void
RegistryServer::shutdown()
{
    bool hadDumper = false;
    {
        base::MutexLock lk(mu_);
        stopping_ = true;
    }
    cv_.notifyAll();
    {
        // Serialize concurrent shutdown() calls over the join. Must
        // not hold mu_ here: the waking dump thread needs it to
        // leave its wait.
        base::MutexLock lk(joinMu_);
        if (dumper_.joinable()) {
            dumper_.join();
            hadDumper = true;
        }
    }
    registry_.shutdown();
    // One final dump so the sink records the fleet's end state.
    if (hadDumper)
        opts_.statsSink(registry_.statsJson());
}

} // namespace ernn::serve
