/**
 * @file
 * Fleet layer: a versioned ModelRegistry that owns many
 * CompiledModels keyed by (model id, version) and routes requests by
 * id, plus the RegistryServer façade the CLI serves through.
 *
 * The core operation is the zero-downtime hot swap. publish() of a
 * new version builds the replacement InferenceServer *outside* any
 * lock (model compile / artifact mmap happens while the old version
 * keeps serving), atomically retargets the id so every later
 * submission lands on the new version, then drains the old server —
 * every request it already accepted completes normally — and
 * releases it (and with it the old CompiledModel, once no stream
 * handle pins it). Because a submission holds the entry's shared
 * lock for the whole InferenceServer::submit call and the swap needs
 * the unique lock, no registry submitter can ever observe the old
 * server mid-shutdown: hot swaps lose zero requests and fail zero
 * submissions, by construction.
 *
 * Thread-safety contract:
 *  - Every ModelRegistry / RegistryServer public method is safe to
 *    call concurrently from any number of threads.
 *  - Entry routing state is guarded by a per-id base::SharedMutex
 *    (machine-checked: every routed field carries ERNN_GUARDED_BY):
 *    submissions and stats reads share it, publish/retire take it
 *    exclusively. The id -> entry map has its own SharedMutex;
 *    entries are never destroyed while the registry lives, so an
 *    Entry pointer obtained under the map lock stays valid after it
 *    is released.
 *  - A ModelStream pins the server (and model) it was opened on via
 *    shared_ptr; after that version is retired its steps throw, but
 *    the handle never dangles.
 */

#ifndef ERNN_SERVE_REGISTRY_HH
#define ERNN_SERVE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/sync.hh"
#include "runtime/artifact.hh"
#include "serve/inference_server.hh"

namespace ernn::serve
{

/** Point-in-time view of one published model for models(). */
struct ModelInfo
{
    std::string id;
    std::uint64_t version = 0;  //!< 0 once retired
    bool serving = false;       //!< false once retired
    std::size_t pendingRequests = 0;
    std::size_t generations = 0; //!< versions ever published under id
    ServerStats stats; //!< cumulative across every version of the id
};

/**
 * A streaming utterance opened through the registry. Pinned to the
 * model version current at open time: a hot swap does not disturb
 * frames already submitted, but later steps throw (the caller
 * reopens on the new version). Holding the handle keeps the pinned
 * server — and its model — alive, so it never dangles.
 */
class ModelStream
{
  public:
    ModelStream() = default;

    /** Logits for the next frame (throws after the version retired). */
    std::future<Vector> step(Vector frame)
    {
        return stream_.step(std::move(frame));
    }

    Vector stepSync(Vector frame)
    {
        return stream_.stepSync(std::move(frame));
    }

    std::future<void> reset() { return stream_.reset(); }

    /** Checkpoint this stream's live state (see
     *  InferenceServer::Stream::checkpoint) — the blob restores into
     *  any stream of a structurally identical model, including a
     *  later published version with the same geometry. */
    std::future<std::string> checkpoint(std::string aux = {})
    {
        return stream_.checkpoint(std::move(aux));
    }

    std::string checkpointSync(std::string aux = {})
    {
        return stream_.checkpointSync(std::move(aux));
    }

    /** Restore a checkpoint blob into this stream (see
     *  InferenceServer::Stream::restore). */
    std::future<void> restore(std::string blob)
    {
        return stream_.restore(std::move(blob));
    }

    void restoreSync(std::string blob)
    {
        stream_.restoreSync(std::move(blob));
    }

    bool open() const { return stream_.open(); }

    /** Drop the pin: the retired server may now be released. */
    void close()
    {
        stream_.close();
        server_.reset();
    }

  private:
    friend class ModelRegistry;
    ModelStream(std::shared_ptr<InferenceServer> server,
                InferenceServer::Stream stream)
        : server_(std::move(server)), stream_(std::move(stream))
    {
    }

    std::shared_ptr<InferenceServer> server_; //!< keeps version alive
    InferenceServer::Stream stream_;
};

/**
 * Versioned, hot-swappable model fleet. Each published id serves
 * through its own InferenceServer (own workers, queue, admission
 * policy), so per-model queue caps and load shedding come from
 * ServerOptions::queueCapacity / admission per publish.
 */
class ModelRegistry
{
  public:
    ModelRegistry() = default;
    ~ModelRegistry() { shutdown(); }

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Publish @p model as (id, version): atomically retarget new
     * submissions for @p id, then drain and release the previous
     * version. First publish of an id creates the route. Returns
     * once the old version has fully drained (so a caller can rely
     * on "publish returned => old model released", modulo streams).
     */
    void publish(const std::string &id, std::uint64_t version,
                 std::shared_ptr<const runtime::CompiledModel> model,
                 ServerOptions opts = {});

    /**
     * Deployment fast path: publish straight from an artifact file.
     * v3 artifacts mmap (weights served zero-copy from the page
     * cache); v1/v2 fall back to a copying load. Fatal, with the
     * specific defect named, on any artifact format error.
     */
    void publishArtifact(const std::string &id, std::uint64_t version,
                         const std::string &artifactPath,
                         ServerOptions opts = {},
                         runtime::MapOptions mapOpts = {});

    /**
     * Route one utterance to @p id's current version. Never throws:
     * NoSuchModel if the id was never published (or was retired),
     * Shutdown once the registry shut down, otherwise the underlying
     * server's admission verdict (Ok / Overloaded / Shutdown).
     */
    SubmitStatus submit(const std::string &id, nn::Sequence frames,
                        std::future<InferenceReply> &out);

    /** Synchronous convenience: submit and wait; throws
     *  std::runtime_error naming the status on any rejection. */
    InferenceReply infer(const std::string &id,
                         const nn::Sequence &frames);

    /** Open a stream pinned to @p id's current version; throws
     *  std::runtime_error if the id is not serving. */
    ModelStream openStream(const std::string &id);

    /** @return whether @p id currently routes to a live server. */
    bool serving(const std::string &id) const;

    /** Active version of @p id (0 if not serving). */
    std::uint64_t activeVersion(const std::string &id) const;

    /** Snapshot of every id ever published, with cumulative stats. */
    std::vector<ModelInfo> models() const;

    /** Cumulative stats for @p id across all its versions. */
    ServerStats stats(const std::string &id) const;

    /** The whole fleet's state as one JSON object. */
    std::string statsJson() const;

    /**
     * Unpublish @p id: new submissions get NoSuchModel, accepted
     * work drains, the model is released. No-op if not serving.
     */
    void retire(const std::string &id);

    /** Retire everything and refuse further publishes. Idempotent;
     *  called by the destructor. */
    void shutdown();

  private:
    struct Entry
    {
        /** Readers: submit/stats (shared). Writer: swap (unique). */
        mutable base::SharedMutex mu;
        /** Current version's server; null once retired. */
        std::shared_ptr<InferenceServer> server ERNN_GUARDED_BY(mu);
        std::uint64_t version ERNN_GUARDED_BY(mu) = 0;
        std::size_t generations ERNN_GUARDED_BY(mu) = 0;
        /** Final counters of drained versions, merged. */
        ServerStats retiredStats ERNN_GUARDED_BY(mu);
        /**
         * The version currently draining during a swap. Readers fold
         * its live counters into cumulative views so a stats snapshot
         * taken mid-swap never sees the old version's work vanish
         * (it re-appears in retiredStats only after the drain, and
         * the hand-off happens under one unique lock — no window
         * where the counters are double-counted or missing).
         */
        std::shared_ptr<InferenceServer> draining ERNN_GUARDED_BY(mu);
    };

    /** Find (or create) the entry for @p id. Entries live as long
     *  as the registry, so the returned pointer outlives the lock. */
    Entry *entryFor(const std::string &id);
    const Entry *findEntry(const std::string &id) const;

    /** Swap @p next in as (version) of @p entry, drain the old.
     *  Takes entry.mu exclusively twice: the retarget and the
     *  post-drain stats fold (the drain itself runs unlocked). */
    void swapIn(Entry &entry, std::uint64_t version,
                std::shared_ptr<InferenceServer> next)
        ERNN_EXCLUDES(entry.mu);

    /** Cumulative stats of one entry (caller holds no entry lock). */
    static ServerStats entryStats(const Entry &entry)
        ERNN_EXCLUDES(entry.mu);

    /** Guards entries_ + shutdown_. Ordering: mapMu_ is released
     *  before any entry's mu is taken (entry pointers outlive it). */
    mutable base::SharedMutex mapMu_;
    std::map<std::string, std::unique_ptr<Entry>> entries_
        ERNN_GUARDED_BY(mapMu_);
    bool shutdown_ ERNN_GUARDED_BY(mapMu_) = false;
};

/** Knobs of the RegistryServer façade. */
struct RegistryServerOptions
{
    /** Dump statsJson() to statsSink this often; zero disables the
     *  dump thread. */
    std::chrono::milliseconds statsInterval{0};

    /** Receiver of periodic dumps (default: ernn_inform log line).
     *  Called from the dump thread; must be thread-safe. */
    std::function<void(const std::string &json)> statsSink;
};

/**
 * The process-level serving façade the `ernn` CLI builds on: one
 * ModelRegistry plus an optional periodic stats-dump thread. All of
 * ModelRegistry's API is reachable through registry(); the façade
 * only adds lifecycle (dump thread start/stop with shutdown).
 */
class RegistryServer
{
  public:
    explicit RegistryServer(RegistryServerOptions opts = {});
    ~RegistryServer();

    RegistryServer(const RegistryServer &) = delete;
    RegistryServer &operator=(const RegistryServer &) = delete;

    ModelRegistry &registry() { return registry_; }
    const ModelRegistry &registry() const { return registry_; }

    /** Registry passthroughs for the common call sites. */
    SubmitStatus submit(const std::string &id, nn::Sequence frames,
                        std::future<InferenceReply> &out)
    {
        return registry_.submit(id, std::move(frames), out);
    }

    InferenceReply infer(const std::string &id,
                         const nn::Sequence &frames)
    {
        return registry_.infer(id, frames);
    }

    std::string statsJson() const { return registry_.statsJson(); }

    /** Stop the dump thread (after one final dump) and shut the
     *  registry down. Idempotent; called by the destructor. */
    void shutdown();

  private:
    void dumpLoop() ERNN_EXCLUDES(mu_);

    RegistryServerOptions opts_;
    ModelRegistry registry_;

    base::Mutex mu_;
    base::CondVar cv_;
    bool stopping_ ERNN_GUARDED_BY(mu_) = false;
    base::Mutex joinMu_; //!< serializes concurrent shutdown() joins
    /** Spawned by the constructor, joined under joinMu_. */
    // lint: thread-spawn(periodic stats dump thread)
    std::thread dumper_ ERNN_GUARDED_BY(joinMu_);
};

} // namespace ernn::serve

#endif // ERNN_SERVE_REGISTRY_HH
