#include "sim/pipeline.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/logging.hh"

namespace ernn::sim
{

PipelineResult
simulatePipeline(const std::vector<PipelineStage> &stages,
                 std::size_t frames, bool recurrent_dependency)
{
    ernn_assert(!stages.empty(), "pipeline needs stages");
    ernn_assert(frames >= 1, "pipeline needs frames");

    std::map<std::size_t, Cycles> resource_free;
    PipelineResult result;
    result.frameFinish.resize(frames, 0);

    Cycles prev_frame_done = 0;
    for (std::size_t f = 0; f < frames; ++f) {
        Cycles data_ready = recurrent_dependency ? prev_frame_done : 0;
        for (const auto &st : stages) {
            Cycles &free_at = resource_free[st.resource];
            const Cycles start = std::max(data_ready, free_at);
            const Cycles finish = start + st.duration;
            free_at = finish;
            data_ready = finish;
        }
        result.frameFinish[f] = data_ready;
        prev_frame_done = data_ready;
    }

    result.firstFrameLatency = result.frameFinish[0];
    result.makespan = result.frameFinish.back();
    result.steadyInterval = frames >= 2 ?
        result.frameFinish[frames - 1] - result.frameFinish[frames - 2] :
        result.frameFinish[0];
    return result;
}

Cycles
simulateTdmMatvec(std::size_t block_ops, std::size_t num_pe,
                  Cycles cycles_per_op)
{
    ernn_assert(num_pe >= 1, "need at least one PE");
    // Literal round-robin dispatch over PE free lists.
    std::vector<Cycles> pe_free(num_pe, 0);
    std::size_t next = 0;
    Cycles makespan = 0;
    for (std::size_t op = 0; op < block_ops; ++op) {
        pe_free[next] += cycles_per_op;
        makespan = std::max(makespan, pe_free[next]);
        next = (next + 1) % num_pe;
    }
    return makespan;
}

std::vector<PipelineStage>
buildCuStages(const nn::ModelSpec &spec, std::size_t pe_per_cu,
              const hw::HwCalibration &cal)
{
    ernn_assert(pe_per_cu >= 1, "CU needs PEs");

    // Partition the weight matrices into the CGPipe stages of
    // Figs. 11 (LSTM) and 12 (GRU).
    Real stage1_ops = 0.0, stage2_ops = 0.0;
    for (const auto &w : nn::weightInventory(spec)) {
        if (w.cls == nn::WeightClass::Classifier)
            continue;
        const std::size_t lb = std::max<std::size_t>(w.blockSize, 1);
        const Real p = static_cast<Real>(w.rows / lb);
        const Real q = static_cast<Real>(w.cols / lb);
        const Real ops = p * q + p + q;
        if (spec.type == nn::ModelType::Lstm) {
            // Stage 1: W(ifco)(xr); stage 3: the projection Wym.
            if (w.cls == nn::WeightClass::Projection)
                stage2_ops += ops;
            else
                stage1_ops += ops;
        } else {
            // Stage 1: W(rz)(xc); stage 2: Wc~x and Wc~c (shared
            // hardware, TDM).
            if (w.cls == nn::WeightClass::Recurrent)
                stage1_ops += ops;
            else
                stage2_ops += ops;
        }
    }

    Real scale = cal.cyclesPerBlockOp / static_cast<Real>(pe_per_cu);
    if (spec.type == nn::ModelType::Gru)
        scale /= cal.gruPipelineBoost;

    Real pointwise = 0.0;
    const Real pw_per_elem = spec.type == nn::ModelType::Lstm ?
        cal.lstmPointwiseOpsPerElem : cal.gruPointwiseOpsPerElem;
    for (auto h : spec.layerSizes)
        pointwise += pw_per_elem * static_cast<Real>(h);
    const auto pw_cycles = static_cast<Cycles>(
        std::ceil(pointwise / cal.pointwiseLanes));

    auto cyc = [&](Real ops) {
        return static_cast<Cycles>(std::ceil(ops * scale));
    };

    std::vector<PipelineStage> stages;
    if (spec.type == nn::ModelType::Lstm) {
        stages.push_back({"matvec W(ifco)(xr)", cyc(stage1_ops), 0});
        stages.push_back({"pointwise+activation", pw_cycles, 1});
        stages.push_back({"projection Wym", cyc(stage2_ops), 2});
    } else {
        // GRU stages 1 and 2 share resource 0 (TDM, Sec. VII-C2).
        stages.push_back({"matvec W(rz)(xc)", cyc(stage1_ops), 0});
        stages.push_back({"matvec Wc~x / Wc~c", cyc(stage2_ops), 0});
        stages.push_back({"pointwise+activation", pw_cycles, 1});
    }
    return stages;
}

AcceleratorSimResult
simulateAccelerator(const nn::ModelSpec &spec,
                    const hw::FpgaPlatform &platform, int bits,
                    const hw::HwCalibration &cal, std::size_t frames)
{
    std::size_t headline_block = 1;
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l)
        headline_block = std::max({headline_block, spec.blockFor(l),
                                   spec.inputBlockFor(l)});
    const std::size_t total_pe =
        hw::peCount(platform, headline_block, bits, cal);
    const std::size_t pe_per_cu = std::max<std::size_t>(
        total_pe / cal.computeUnits, 1);

    const auto stages = buildCuStages(spec, pe_per_cu, cal);
    const PipelineResult one_cu =
        simulatePipeline(stages, frames, true);

    AcceleratorSimResult out;
    out.frameLatency = one_cu.steadyInterval;
    out.latencyUs = static_cast<Real>(out.frameLatency) *
                    platform.cyclePeriodUs();
    out.fps = static_cast<Real>(cal.computeUnits) *
              platform.clockMhz * 1e6 /
              static_cast<Real>(out.frameLatency);
    return out;
}

} // namespace ernn::sim
