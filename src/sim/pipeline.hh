/**
 * @file
 * Cycle-level simulation of the CU coarse-grained pipeline
 * (Sec. VII-C): stages with durations and resource bindings, double
 * buffers between stages, TDM sharing of PEs, and the recurrent
 * dependency that serializes consecutive frames of one voice stream.
 *
 * The simulator exists to *validate* the analytic laws the hw model
 * uses (latency = sum of stage cycles per stream; steady interval =
 * bottleneck resource occupancy; TDM matvec = ceil(ops/PE) * c) —
 * tests assert the two agree.
 */

#ifndef ERNN_SIM_PIPELINE_HH
#define ERNN_SIM_PIPELINE_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "hw/accelerator_model.hh"

namespace ernn::sim
{

/** One CGPipe stage: a duration bound to a hardware resource. */
struct PipelineStage
{
    std::string name;
    Cycles duration = 0;
    std::size_t resource = 0; //!< stages sharing a resource TDM it
};

/** Outcome of simulating a stage pipeline over many frames. */
struct PipelineResult
{
    Cycles firstFrameLatency = 0;
    Cycles steadyInterval = 0; //!< completion spacing in steady state
    Cycles makespan = 0;       //!< total cycles for all frames
    std::vector<Cycles> frameFinish;
};

/**
 * Simulate @p frames frames flowing through the stages.
 *
 * @param recurrent_dependency when true, frame f's first stage
 *        cannot start before frame f-1 fully completes (the y_{t-1}
 *        feedback within one voice stream). When false, frames are
 *        independent and double buffering overlaps them subject to
 *        resource conflicts.
 */
PipelineResult simulatePipeline(
    const std::vector<PipelineStage> &stages, std::size_t frames,
    bool recurrent_dependency);

/**
 * Simulate a TDM matvec: @p block_ops block operations round-robined
 * over @p num_pe PEs at @p cycles_per_op each.
 *
 * @return the makespan in cycles (== ceil(ops / PEs) * cycles).
 */
Cycles simulateTdmMatvec(std::size_t block_ops, std::size_t num_pe,
                         Cycles cycles_per_op);

/** Build the CGPipe stage list of one CU for a model spec. */
std::vector<PipelineStage> buildCuStages(
    const nn::ModelSpec &spec, std::size_t pe_per_cu,
    const hw::HwCalibration &cal = hw::defaultCalibration());

/** Simulated accelerator-level numbers (to compare with the model). */
struct AcceleratorSimResult
{
    Cycles frameLatency = 0;
    Real latencyUs = 0.0;
    Real fps = 0.0;
};

/**
 * Simulate `numCu` CUs each running an independent stream and report
 * per-frame latency and aggregate FPS.
 */
AcceleratorSimResult simulateAccelerator(
    const nn::ModelSpec &spec, const hw::FpgaPlatform &platform,
    int bits = 12,
    const hw::HwCalibration &cal = hw::defaultCalibration(),
    std::size_t frames = 32);

} // namespace ernn::sim

#endif // ERNN_SIM_PIPELINE_HH
