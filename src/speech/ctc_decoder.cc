#include "speech/ctc_decoder.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "base/logging.hh"

namespace ernn::speech
{

namespace
{

const Real kNegInf = -std::numeric_limits<Real>::infinity();

/** Search bookkeeping of one live prefix. */
struct Cand
{
    Real pb = kNegInf;  //!< log P(prefix, alignment ends in blank)
    Real pnb = kNegInf; //!< log P(prefix, alignment ends in a label)

    /** Smallest symbol index that contributed probability to this
     *  prefix during the current frame — the deterministic tie-break
     *  (argmax's first-maximum convention at beamWidth 1). */
    int tieSym = std::numeric_limits<int>::max();

    Real score() const { return logAdd(pb, pnb); }

    void addBlankPath(Real lp, int sym)
    {
        pb = logAdd(pb, lp);
        tieSym = std::min(tieSym, sym);
    }

    void addLabelPath(Real lp, int sym)
    {
        pnb = logAdd(pnb, lp);
        tieSym = std::min(tieSym, sym);
    }
};

/** In-place log-softmax: subtract the frame's log-sum-exp. */
void
logSoftmax(const Vector &logits, Vector &lp)
{
    Real m = kNegInf;
    for (Real x : logits)
        m = std::max(m, x);
    Real sum = 0.0;
    for (Real x : logits)
        sum += std::exp(x - m);
    const Real lse = m + std::log(sum);
    lp.resize(logits.size());
    for (std::size_t c = 0; c < logits.size(); ++c)
        lp[c] = logits[c] - lse;
}

} // namespace

Real
logAdd(Real a, Real b)
{
    if (a == kNegInf)
        return b;
    if (b == kNegInf)
        return a;
    const Real hi = std::max(a, b);
    const Real lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

std::vector<CtcHypothesis>
ctcDecodeBeam(const nn::Sequence &logits, const CtcDecodeOptions &opts)
{
    ernn_assert(opts.beamWidth > 0, "ctc decode: beam width must be > 0");

    // std::map keys the beam by prefix, so duplicate prefixes merge
    // by construction, and its deterministic (lexicographic)
    // iteration order makes every log-sum-exp accumulation order —
    // hence every returned bit — a pure function of the input.
    using Beam = std::map<std::vector<int>, Cand>;
    Beam beam;
    Cand root;
    root.pb = 0.0; // empty alignment: probability 1
    beam.emplace(std::vector<int>{}, root);

    Vector lp;
    for (const Vector &frame : logits) {
        ernn_assert(!frame.empty(), "ctc decode: empty logit frame");
        ernn_assert(opts.blank < static_cast<int>(frame.size()),
                    "ctc decode: blank class " << opts.blank
                    << " outside " << frame.size() << " classes");
        logSoftmax(frame, lp);

        Beam next;
        for (const auto &[prefix, cand] : beam) {
            const Real total = cand.score();
            const int last = prefix.empty() ? -1 : prefix.back();
            for (int c = 0; c < static_cast<int>(lp.size()); ++c) {
                if (c == opts.blank) {
                    // Blank extends the alignment, not the prefix.
                    next[prefix].addBlankPath(total + lp[c], c);
                } else if (c == last) {
                    // A repeat merges into the same prefix...
                    if (cand.pnb != kNegInf)
                        next[prefix].addLabelPath(cand.pnb + lp[c], c);
                    // ...unless a blank separated it: then it is a
                    // genuine new token.
                    if (cand.pb != kNegInf) {
                        auto ext = prefix;
                        ext.push_back(c);
                        next[ext].addLabelPath(cand.pb + lp[c], c);
                    }
                } else {
                    auto ext = prefix;
                    ext.push_back(c);
                    next[ext].addLabelPath(total + lp[c], c);
                }
            }
        }

        // Prune to the beam width. Deterministic order: score
        // descending, then smallest contributing symbol, then
        // lexicographic prefix — see the header's parity contract.
        std::vector<std::pair<const std::vector<int> *, const Cand *>>
            order;
        order.reserve(next.size());
        for (const auto &entry : next)
            order.emplace_back(&entry.first, &entry.second);
        std::stable_sort(
            order.begin(), order.end(),
            [](const auto &a, const auto &b) {
                if (a.second->score() != b.second->score())
                    return a.second->score() > b.second->score();
                if (a.second->tieSym != b.second->tieSym)
                    return a.second->tieSym < b.second->tieSym;
                return *a.first < *b.first;
            });
        if (order.size() > opts.beamWidth)
            order.resize(opts.beamWidth);

        Beam pruned;
        for (const auto &[prefix, cand] : order)
            pruned.emplace(*prefix, *cand);
        beam = std::move(pruned);
    }

    std::vector<CtcHypothesis> out;
    out.reserve(beam.size());
    for (const auto &[prefix, cand] : beam)
        out.push_back(CtcHypothesis{prefix, cand.score()});
    std::stable_sort(out.begin(), out.end(),
                     [](const CtcHypothesis &a, const CtcHypothesis &b) {
                         if (a.logProb != b.logProb)
                             return a.logProb > b.logProb;
                         return a.labels < b.labels;
                     });
    return out;
}

CtcHypothesis
ctcDecode(const nn::Sequence &logits, const CtcDecodeOptions &opts)
{
    return ctcDecodeBeam(logits, opts).front();
}

} // namespace ernn::speech
