/**
 * @file
 * CTC-style prefix beam-search decoding over per-frame logits.
 *
 * The decoder searches over *collapsed* label sequences (prefixes),
 * summing — via log-sum-exp — the probability of every frame-level
 * alignment that maps to each prefix: consecutive repeats merge into
 * one token, and (when a blank class is configured) blank frames
 * separate genuine repeats and are dropped from the output. With no
 * blank (blank < 0, the native mode for this repo's framewise
 * models), the alignment model is exactly speech::collapseRepeats.
 *
 * Parity oracle: at beamWidth == 1 the decoder is bit-identical to
 * the existing greedy path — collapseRepeats(argmax per frame) —
 * including tie-breaks. This holds by construction:
 *  - log-softmax is monotone, so per-frame candidate ranking equals
 *    logit ranking;
 *  - with a single surviving prefix, each candidate corresponds to a
 *    distinct symbol c (extend with c, or merge a repeat of the last
 *    token), scored prefixScore + logp[c];
 *  - ties select the smallest contributing symbol index, matching
 *    argmax's first-maximum convention.
 * tests/test_ctc.cc proves the equality on all three backends and
 * fuzzes the search invariants on random logit tensors.
 */

#ifndef ERNN_SPEECH_CTC_DECODER_HH
#define ERNN_SPEECH_CTC_DECODER_HH

#include <vector>

#include "nn/trainer.hh"

namespace ernn::speech
{

/** Decoding knobs. */
struct CtcDecodeOptions
{
    /** Live prefixes kept per frame; 1 == greedy (see file docs). */
    std::size_t beamWidth = 1;

    /** Logit row of the CTC blank class, or -1 when the model has no
     *  blank (this repo's framewise phone models). */
    int blank = -1;
};

/** One decoded hypothesis: a collapsed label sequence + its score. */
struct CtcHypothesis
{
    std::vector<int> labels;

    /** Total log probability mass (log-sum-exp over all frame-level
     *  alignments that map to @p labels). Always <= 0 + rounding. */
    Real logProb = 0.0;
};

/** Numerically stable log(exp(a) + exp(b)). */
Real logAdd(Real a, Real b);

/**
 * Decode the full final beam, best hypothesis first. The per-frame
 * search keeps the opts.beamWidth best prefixes; duplicate prefixes
 * are merged (never listed twice), and the returned scores are a
 * partition of disjoint events, so their probabilities sum to <= 1.
 */
std::vector<CtcHypothesis> ctcDecodeBeam(const nn::Sequence &logits,
                                         const CtcDecodeOptions &opts);

/** Best hypothesis only. Empty input decodes to the empty sequence. */
CtcHypothesis ctcDecode(const nn::Sequence &logits,
                        const CtcDecodeOptions &opts = {});

} // namespace ernn::speech

#endif // ERNN_SPEECH_CTC_DECODER_HH
