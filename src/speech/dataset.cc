#include "speech/dataset.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"

namespace ernn::speech
{

namespace
{

/** Per-phone emission prototypes and the transition structure. */
struct PhoneModel
{
    std::vector<Vector> prototypes; //!< [phone][featureDim]
    std::vector<std::vector<Real>> transitions; //!< row-stochastic

    PhoneModel(const AsrDataConfig &cfg, Rng &rng)
    {
        prototypes.resize(cfg.numPhones);
        for (auto &proto : prototypes) {
            proto.resize(cfg.featureDim);
            rng.fillNormal(proto, 1.2);
        }
        // Random transition preferences with self-transitions
        // forbidden (duration is modeled explicitly).
        transitions.assign(cfg.numPhones,
                           std::vector<Real>(cfg.numPhones, 0.0));
        for (std::size_t a = 0; a < cfg.numPhones; ++a) {
            Real sum = 0.0;
            for (std::size_t b = 0; b < cfg.numPhones; ++b) {
                if (a == b)
                    continue;
                transitions[a][b] = 0.2 + rng.uniform();
                sum += transitions[a][b];
            }
            for (auto &p : transitions[a])
                p /= sum;
        }
    }

    std::size_t
    next(std::size_t phone, Rng &rng) const
    {
        Real u = rng.uniform();
        for (std::size_t b = 0; b < transitions[phone].size(); ++b) {
            u -= transitions[phone][b];
            if (u <= 0.0)
                return b;
        }
        return transitions[phone].size() - 1;
    }
};

nn::SequenceExample
makeUtterance(const AsrDataConfig &cfg, const PhoneModel &model,
              Rng &rng)
{
    const std::size_t frames =
        cfg.minFrames + rng.index(cfg.maxFrames - cfg.minFrames + 1);

    nn::SequenceExample ex;
    ex.frames.reserve(frames);
    ex.labels.reserve(frames);

    std::size_t phone = rng.index(cfg.numPhones);
    std::size_t remaining = 0;
    Vector state(cfg.featureDim, 0.0);

    for (std::size_t t = 0; t < frames; ++t) {
        if (remaining == 0) {
            if (t > 0)
                phone = model.next(phone, rng);
            remaining = cfg.minPhoneLen +
                rng.index(cfg.maxPhoneLen - cfg.minPhoneLen + 1);
        }
        --remaining;

        Vector emission = model.prototypes[phone];
        for (auto &v : emission)
            v += rng.normal(0.0, cfg.emissionNoise);

        // AR(1) smoothing: temporally coherent features.
        for (std::size_t k = 0; k < cfg.featureDim; ++k)
            state[k] = cfg.arCoefficient * state[k] +
                       (1.0 - cfg.arCoefficient) * emission[k];

        ex.frames.push_back(state);
        ex.labels.push_back(static_cast<int>(phone));
    }
    return ex;
}

} // namespace

AsrDataset
makeSyntheticAsr(const AsrDataConfig &cfg)
{
    ernn_assert(cfg.numPhones >= 2, "need at least two phones");
    ernn_assert(cfg.maxFrames >= cfg.minFrames, "bad frame range");
    ernn_assert(cfg.maxPhoneLen >= cfg.minPhoneLen,
                "bad phone length range");

    Rng rng(cfg.seed);
    const PhoneModel model(cfg, rng);

    AsrDataset out;
    out.numPhones = cfg.numPhones;
    out.featureDim = cfg.featureDim;
    out.train.reserve(cfg.trainUtterances);
    out.test.reserve(cfg.testUtterances);
    for (std::size_t i = 0; i < cfg.trainUtterances; ++i)
        out.train.push_back(makeUtterance(cfg, model, rng));
    for (std::size_t i = 0; i < cfg.testUtterances; ++i)
        out.test.push_back(makeUtterance(cfg, model, rng));
    return out;
}

} // namespace ernn::speech
