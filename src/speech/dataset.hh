/**
 * @file
 * Synthetic phone-recognition dataset — the repository's TIMIT
 * substitute (see DESIGN.md §4).
 *
 * Each utterance is generated from a first-order Markov chain over
 * phone classes; a phone occupies a random number of consecutive
 * frames; frames emit a phone-prototype feature vector corrupted by
 * Gaussian noise and smoothed by an AR(1) filter (mimicking the
 * temporal coherence of filterbank features). The task exercises
 * exactly the paper's pipeline: framewise RNN classification, repeat
 * collapsing, and phone-error-rate scoring.
 */

#ifndef ERNN_SPEECH_DATASET_HH
#define ERNN_SPEECH_DATASET_HH

#include <cstdint>

#include "nn/trainer.hh"

namespace ernn::speech
{

/** Generator configuration; defaults give a seconds-scale CPU task. */
struct AsrDataConfig
{
    std::size_t numPhones = 12;       //!< phone classes
    std::size_t featureDim = 16;      //!< feature vector size
    std::size_t trainUtterances = 48;
    std::size_t testUtterances = 16;
    std::size_t minFrames = 30;
    std::size_t maxFrames = 50;
    std::size_t minPhoneLen = 3;      //!< min frames per phone
    std::size_t maxPhoneLen = 7;
    Real emissionNoise = 0.45;        //!< per-frame feature noise
    Real arCoefficient = 0.5;         //!< AR(1) smoothing
    std::uint64_t seed = 20190216;    //!< HPCA'19 :-)
};

/** Generated dataset with a fixed train/test split. */
struct AsrDataset
{
    nn::SequenceDataset train;
    nn::SequenceDataset test;
    std::size_t numPhones = 0;
    std::size_t featureDim = 0;
};

/** Deterministically generate a dataset from the config. */
AsrDataset makeSyntheticAsr(const AsrDataConfig &cfg);

} // namespace ernn::speech

#endif // ERNN_SPEECH_DATASET_HH
