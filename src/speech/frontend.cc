#include "speech/frontend.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "runtime/wire.hh"

namespace ernn::speech
{

namespace
{

using runtime::detail::fnv1a64;
using runtime::detail::Reader;
using runtime::detail::Writer;

constexpr Real kPi = 3.14159265358979323846;

} // namespace

Real
hzToMel(Real hz)
{
    return 2595.0 * std::log10(1.0 + hz / 700.0);
}

Real
melToHz(Real mel)
{
    return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

AcousticFrontend::AcousticFrontend(const FrontendConfig &cfg)
    : cfg_(cfg)
{
    ernn_assert(cfg.sampleRate > 0, "frontend: sample rate must be > 0");
    ernn_assert(cfg.frameLength >= 2,
                "frontend: frame length " << cfg.frameLength
                << " too small");
    ernn_assert(cfg.frameShift > 0 && cfg.frameShift <= cfg.frameLength,
                "frontend: frame shift " << cfg.frameShift
                << " outside (0, " << cfg.frameLength << "]");
    ernn_assert(fft::isPowerOfTwo(cfg.fftSize) &&
                cfg.fftSize >= cfg.frameLength,
                "frontend: FFT size " << cfg.fftSize
                << " must be a power of two >= frame length "
                << cfg.frameLength);
    ernn_assert(cfg.melBands >= 2,
                "frontend: need >= 2 mel bands, got " << cfg.melBands);
    ernn_assert(cfg.numCepstra <= cfg.melBands,
                "frontend: " << cfg.numCepstra << " cepstra exceed "
                << cfg.melBands << " mel bands");
    ernn_assert(cfg.logFloor > 0.0, "frontend: log floor must be > 0");

    // Hamming window — the paper-era default for speech framing.
    window_.resize(cfg.frameLength);
    for (std::size_t n = 0; n < cfg.frameLength; ++n)
        window_[n] = 0.54 - 0.46 * std::cos(2.0 * kPi * Real(n) /
                                            Real(cfg.frameLength - 1));

    // Triangular mel filterbank: melBands + 2 edge points equally
    // spaced on the mel scale between the low and high edges, each
    // filter a triangle over the power-spectrum bins.
    const Real nyquist = Real(cfg.sampleRate) / 2.0;
    const Real highHz = cfg.melHighHz > 0.0 ? cfg.melHighHz : nyquist;
    ernn_assert(cfg.melLowHz >= 0.0 && cfg.melLowHz < highHz &&
                highHz <= nyquist,
                "frontend: mel range [" << cfg.melLowHz << ", "
                << highHz << "] Hz invalid for sample rate "
                << cfg.sampleRate);
    const Real melLo = hzToMel(cfg.melLowHz);
    const Real melHi = hzToMel(highHz);
    const std::size_t bins = numBins();
    const Real hzPerBin = Real(cfg.sampleRate) / Real(cfg.fftSize);
    std::vector<Real> edges(cfg.melBands + 2);
    for (std::size_t i = 0; i < edges.size(); ++i)
        edges[i] = melToHz(melLo + (melHi - melLo) * Real(i) /
                           Real(cfg.melBands + 1));
    mel_.resize(cfg.melBands);
    for (std::size_t b = 0; b < cfg.melBands; ++b) {
        const Real lo = edges[b], mid = edges[b + 1], hi = edges[b + 2];
        MelFilter &f = mel_[b];
        std::size_t first = bins, last = 0;
        for (std::size_t k = 0; k < bins; ++k) {
            const Real hz = Real(k) * hzPerBin;
            if (hz <= lo || hz >= hi)
                continue;
            if (first == bins)
                first = k;
            last = k;
        }
        if (first == bins) {
            // Degenerate (very narrow) filter: keep an explicit
            // zero-weight single-bin triangle so every band exists.
            first = std::min(
                bins - 1,
                static_cast<std::size_t>(mid / hzPerBin));
            last = first;
        }
        f.firstBin = first;
        f.weights.assign(last - first + 1, 0.0);
        for (std::size_t k = first; k <= last; ++k) {
            const Real hz = Real(k) * hzPerBin;
            if (hz <= lo || hz >= hi)
                continue;
            f.weights[k - first] = hz <= mid
                ? (hz - lo) / (mid - lo)
                : (hi - hz) / (hi - mid);
        }
    }

    // DCT-II rows (orthonormal scaling) mapping melBands log energies
    // to numCepstra coefficients.
    if (cfg.numCepstra > 0) {
        const Real m = Real(cfg.melBands);
        dct_.resize(cfg.numCepstra);
        for (std::size_t k = 0; k < cfg.numCepstra; ++k) {
            dct_[k].resize(cfg.melBands);
            const Real scale =
                std::sqrt((k == 0 ? 1.0 : 2.0) / m);
            for (std::size_t j = 0; j < cfg.melBands; ++j)
                dct_[k][j] = scale * std::cos(kPi * Real(k) *
                                              (Real(j) + 0.5) / m);
        }
    }

    // Configuration fingerprint: stamped into serialized states so a
    // payload written under a different framing cannot restore here.
    Writer w;
    w.bytes("ernn-frontend-fingerprint-v1");
    w.size(cfg.sampleRate);
    w.size(cfg.frameLength);
    w.size(cfg.frameShift);
    w.size(cfg.fftSize);
    w.size(cfg.melBands);
    w.size(cfg.numCepstra);
    w.f64(cfg.preEmphasis);
    w.f64(cfg.melLowHz);
    w.f64(cfg.melHighHz);
    w.f64(cfg.logFloor);
    const std::string bytes = w.take();
    fingerprint_ = fnv1a64(bytes.data(), bytes.size());
}

std::size_t
AcousticFrontend::featureDim() const
{
    return cfg_.numCepstra > 0 ? cfg_.numCepstra : cfg_.melBands;
}

std::size_t
AcousticFrontend::framesForSamples(std::size_t n) const
{
    if (n < cfg_.frameLength)
        return 0;
    return 1 + (n - cfg_.frameLength) / cfg_.frameShift;
}

FrontendState
AcousticFrontend::newState() const
{
    FrontendState s;
    s.pending_.reserve(cfg_.frameLength);
    s.windowed_.assign(cfg_.fftSize, 0.0);
    s.power_.assign(numBins(), 0.0);
    s.mel_.assign(cfg_.melBands, 0.0);
    s.feature_.assign(featureDim(), 0.0);
    return s;
}

void
AcousticFrontend::reset(FrontendState &state) const
{
    state.pending_.clear();
    state.preEmphMem_ = 0.0;
    state.samplesSeen_ = 0;
    state.framesEmitted_ = 0;
}

void
AcousticFrontend::emitFrame(FrontendState &state,
                            const FrameSink &sink) const
{
    // Window + zero-pad to the FFT size.
    for (std::size_t n = 0; n < cfg_.frameLength; ++n)
        state.windowed_[n] = state.pending_[n] * window_[n];
    std::fill(state.windowed_.begin() + cfg_.frameLength,
              state.windowed_.end(), 0.0);

    fft::rfftInto(state.windowed_, state.spectrum_, state.fftScratch_);
    state.power_.resize(numBins());
    for (std::size_t k = 0; k < state.power_.size(); ++k) {
        const Complex &b = state.spectrum_[k];
        state.power_[k] = b.real() * b.real() + b.imag() * b.imag();
    }

    for (std::size_t b = 0; b < cfg_.melBands; ++b) {
        const MelFilter &f = mel_[b];
        Real acc = 0.0;
        for (std::size_t j = 0; j < f.weights.size(); ++j)
            acc += f.weights[j] * state.power_[f.firstBin + j];
        state.mel_[b] = std::log(std::max(cfg_.logFloor, acc));
    }

    if (cfg_.numCepstra > 0) {
        for (std::size_t k = 0; k < cfg_.numCepstra; ++k) {
            Real acc = 0.0;
            for (std::size_t j = 0; j < cfg_.melBands; ++j)
                acc += dct_[k][j] * state.mel_[j];
            state.feature_[k] = acc;
        }
        sink(state.feature_);
    } else {
        sink(state.mel_);
    }
    ++state.framesEmitted_;

    // Slide the analysis window: drop frameShift samples, keep the
    // overlap. memmove-style shift keeps pending_'s capacity.
    state.pending_.erase(state.pending_.begin(),
                         state.pending_.begin() +
                         static_cast<std::ptrdiff_t>(cfg_.frameShift));
}

void
AcousticFrontend::push(FrontendState &state, const Real *samples,
                       std::size_t n, const FrameSink &sink) const
{
    for (std::size_t i = 0; i < n; ++i) {
        const Real x = samples[i];
        state.pending_.push_back(x - cfg_.preEmphasis *
                                 state.preEmphMem_);
        state.preEmphMem_ = x;
        ++state.samplesSeen_;
        if (state.pending_.size() == cfg_.frameLength)
            emitFrame(state, sink);
    }
}

void
AcousticFrontend::push(FrontendState &state, const Vector &chunk,
                       nn::Sequence &out) const
{
    push(state, chunk.data(), chunk.size(),
         [&out](const Vector &frame) { out.push_back(frame); });
}

nn::Sequence
AcousticFrontend::process(const Vector &samples) const
{
    FrontendState state = newState();
    nn::Sequence out;
    out.reserve(framesForSamples(samples.size()));
    push(state, samples, out);
    return out;
}

std::string
AcousticFrontend::serializeState(const FrontendState &state) const
{
    Writer w;
    w.bytes("FESTATE1");
    w.u64(fingerprint_);
    w.f64(state.preEmphMem_);
    w.size(state.samplesSeen_);
    w.size(state.framesEmitted_);
    w.reals(state.pending_);
    return w.take();
}

void
AcousticFrontend::restoreState(FrontendState &state,
                               const std::string &payload) const
{
    Reader r(payload.data(), payload.size(), "frontend state");
    std::string tag;
    r.bytesInto(tag, "format tag");
    if (tag != "FESTATE1")
        ernn_fatal("frontend state payload has unknown format tag '"
                   << tag << "'");
    const std::uint64_t fp = r.u64("frontend fingerprint");
    if (fp != fingerprint_)
        ernn_fatal("frontend state belongs to a different frontend "
                   "configuration (fingerprint 0x" << std::hex << fp
                   << ", this frontend is 0x" << fingerprint_
                   << std::dec << "): refusing to restore");
    const Real mem = r.f64("pre-emphasis memory");
    const std::size_t seen = r.size("samples seen");
    const std::size_t emitted = r.size("frames emitted");
    Vector pending;
    r.realsInto(pending, "overlap buffer");
    if (!r.done())
        ernn_fatal("frontend state payload has " << r.remainingBytes()
                   << " undecoded bytes: writer/reader version bug");
    if (pending.size() >= cfg_.frameLength)
        ernn_fatal("frontend state overlap buffer holds "
                   << pending.size() << " samples, must be < frame "
                   "length " << cfg_.frameLength);

    // Commit only after full validation; keep warm scratch, restore
    // the reserve newState() guarantees.
    state.pending_ = std::move(pending);
    state.pending_.reserve(cfg_.frameLength);
    state.preEmphMem_ = mem;
    state.samplesSeen_ = seen;
    state.framesEmitted_ = emitted;
}

// --- synthetic waveform ground truth ------------------------------------

namespace
{

/** Deterministic two-tone signature of a phone class. */
struct PhoneTone
{
    Real f1, f2; //!< "formant" pair, Hz
    Real a1, a2; //!< amplitudes
};

PhoneTone
phoneTone(int phone, std::size_t numPhones, std::size_t sampleRate)
{
    // Spread the first tone low and the second tone high, both well
    // under Nyquist, with per-phone spacing wide enough that mel
    // filters separate neighbouring phones.
    const Real nyquist = Real(sampleRate) / 2.0;
    const Real span = std::min<Real>(nyquist * 0.85, 6800.0);
    const Real lo = 150.0;
    const Real stepHz = (span - lo) / Real(2 * numPhones + 1);
    PhoneTone t;
    t.f1 = lo + stepHz * (Real(phone) + 0.5);
    t.f2 = lo + stepHz * (Real(numPhones + phone) + 1.0);
    t.a1 = 0.6;
    t.a2 = 0.4;
    return t;
}

} // namespace

WaveDataset
makeSyntheticWaves(const WaveAsrConfig &cfg)
{
    ernn_assert(cfg.numPhones >= 2 && cfg.utterances > 0,
                "wave generator: need >= 2 phones and > 0 utterances");
    ernn_assert(cfg.minSegments > 0 &&
                cfg.minSegments <= cfg.maxSegments,
                "wave generator: bad segment count range");
    ernn_assert(cfg.minSegmentMs > 0 &&
                cfg.minSegmentMs <= cfg.maxSegmentMs,
                "wave generator: bad segment duration range");

    Rng rng(cfg.seed);
    WaveDataset data(cfg.utterances);
    for (auto &utt : data) {
        const std::size_t segs =
            cfg.minSegments +
            rng.index(cfg.maxSegments - cfg.minSegments + 1);
        int prev = -1;
        std::size_t at = 0;
        for (std::size_t s = 0; s < segs; ++s) {
            // No immediate repeats: makes collapsed label sequences
            // equal the segment phone sequence.
            int phone =
                static_cast<int>(rng.index(cfg.numPhones - (s > 0)));
            if (s > 0 && phone >= prev)
                ++phone;
            const std::size_t ms =
                cfg.minSegmentMs +
                rng.index(cfg.maxSegmentMs - cfg.minSegmentMs + 1);
            const std::size_t len = ms * cfg.sampleRate / 1000;
            utt.segments.push_back(
                WaveSegment{phone, at, at + len});
            at += len;
            prev = phone;
        }
        utt.samples.resize(at);
        for (const WaveSegment &seg : utt.segments) {
            const PhoneTone t = phoneTone(seg.phone, cfg.numPhones,
                                          cfg.sampleRate);
            for (std::size_t i = seg.begin; i < seg.end; ++i) {
                // Global-time phase keeps the waveform continuous
                // in frequency content across segment boundaries.
                const Real ts = Real(i) / Real(cfg.sampleRate);
                utt.samples[i] =
                    t.a1 * std::sin(2.0 * kPi * t.f1 * ts) +
                    t.a2 * std::sin(2.0 * kPi * t.f2 * ts) +
                    cfg.noise * rng.normal();
            }
        }
    }
    return data;
}

std::vector<int>
frameLabels(const WaveUtterance &utt, const FrontendConfig &cfg)
{
    std::vector<int> labels;
    const std::size_t n = utt.samples.size();
    if (n < cfg.frameLength)
        return labels;
    const std::size_t frames =
        1 + (n - cfg.frameLength) / cfg.frameShift;
    labels.reserve(frames);
    for (std::size_t t = 0; t < frames; ++t) {
        const std::size_t center =
            t * cfg.frameShift + cfg.frameLength / 2;
        int phone = utt.segments.empty() ? 0 : utt.segments.back().phone;
        for (const WaveSegment &seg : utt.segments)
            if (center >= seg.begin && center < seg.end) {
                phone = seg.phone;
                break;
            }
        labels.push_back(phone);
    }
    return labels;
}

nn::SequenceExample
frontendExample(const AcousticFrontend &fe, const WaveUtterance &utt)
{
    nn::SequenceExample ex;
    ex.frames = fe.process(utt.samples);
    ex.labels = frameLabels(utt, fe.config());
    ernn_assert(ex.frames.size() == ex.labels.size(),
                "frontendExample: " << ex.frames.size()
                << " frames vs " << ex.labels.size() << " labels");
    return ex;
}

} // namespace ernn::speech
