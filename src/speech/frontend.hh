/**
 * @file
 * Acoustic frontend: raw f64 waveform samples -> model input frames.
 * This is the stage the synthetic feature datasets (speech/dataset.hh)
 * skip — with it, the serving stack runs the paper's full speech path
 * end to end: samples -> pre-emphasis -> windowed framing -> power
 * spectrum (the repo's own fft:: machinery) -> mel filterbank ->
 * log / MFCC (DCT-II) -> RNN -> CTC decode -> PER.
 *
 * Design rules:
 *  - Deterministic: identical samples produce identical frames, on
 *    any chunking — the streaming push() path and the batch
 *    process() path are bit-identical by construction (process() is
 *    one big push), and tests sweep chunk sizes to prove it.
 *  - Allocation-free in steady state: the frontend itself is
 *    immutable and shareable; every mutable buffer (overlap window,
 *    FFT workspaces, filterbank scratch) lives in the per-stream
 *    FrontendState and is warm after the first frame. The sink-based
 *    push() performs no heap allocation once warm.
 *  - Checkpointable: a FrontendState serializes to an opaque byte
 *    payload that rides in the stream checkpoint's aux section
 *    (runtime/checkpoint.hh), so a long-form stream can be cut and
 *    resumed mid-window bit-identically.
 *
 * The file also hosts the sample-level synthetic waveform generator —
 * the waveform-domain sibling of speech::makeSyntheticAsr and the
 * timit_oracle tables: each phone is a deterministic two-tone
 * "formant" signature, so end-to-end tests have sample-accurate
 * ground-truth segmentations to score against.
 */

#ifndef ERNN_SPEECH_FRONTEND_HH
#define ERNN_SPEECH_FRONTEND_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/trainer.hh"
#include "tensor/fft.hh"

namespace ernn::speech
{

/** Frontend configuration; defaults are the classic 16 kHz / 25 ms /
 *  10 ms log-mel setup scaled to this repo's small feature dims. */
struct FrontendConfig
{
    std::size_t sampleRate = 16000; //!< Hz
    std::size_t frameLength = 400;  //!< samples per window (25 ms)
    std::size_t frameShift = 160;   //!< hop in samples (10 ms)
    std::size_t fftSize = 512;      //!< power of two >= frameLength
    std::size_t melBands = 16;      //!< filterbank size
    /** 0 emits log-mel energies (featureDim = melBands); k > 0 emits
     *  the first k MFCCs via DCT-II (featureDim = k, k <= melBands). */
    std::size_t numCepstra = 0;
    Real preEmphasis = 0.97; //!< y[t] = x[t] - a*x[t-1]; 0 disables
    Real melLowHz = 0.0;     //!< filterbank low edge
    Real melHighHz = 0.0;    //!< filterbank high edge; 0 = Nyquist
    Real logFloor = 1e-10;   //!< clamp before log
};

class AcousticFrontend;

/**
 * Per-stream mutable state: the pre-emphasis memory, the overlap
 * buffer of samples awaiting a full window, and every scratch buffer
 * the per-frame analysis needs. One AcousticFrontend serves any
 * number of concurrent states.
 */
class FrontendState
{
  public:
    /** Raw samples consumed since reset. */
    std::size_t samplesSeen() const { return samplesSeen_; }

    /** Feature frames emitted since reset. */
    std::size_t framesEmitted() const { return framesEmitted_; }

  private:
    friend class AcousticFrontend;

    Vector pending_;         //!< pre-emphasized samples, < frameLength
    Real preEmphMem_ = 0.0;  //!< previous raw sample
    std::size_t samplesSeen_ = 0;
    std::size_t framesEmitted_ = 0;

    /// @{ Analysis scratch (warm after the first frame; never
    /// checkpointed — rebuilt from zero on restore).
    Vector windowed_;        //!< fftSize, zero-padded windowed frame
    fft::CVector spectrum_;  //!< fftSize/2 + 1 bins
    fft::CVector fftScratch_;
    Vector power_;           //!< per-bin |X|^2
    Vector mel_;             //!< filterbank energies
    Vector feature_;         //!< emitted frame (log-mel or MFCC)
    /// @}
};

/** One triangular mel filter: weights over a contiguous bin range. */
struct MelFilter
{
    std::size_t firstBin = 0;
    Vector weights; //!< weight per bin starting at firstBin
};

/**
 * Immutable, shareable frontend: precomputed window, mel filterbank
 * and DCT-II basis. All per-stream mutation lives in FrontendState.
 */
class AcousticFrontend
{
  public:
    /** Receives each completed frame; the reference is valid only
     *  for the duration of the call (it aliases state scratch). */
    using FrameSink = std::function<void(const Vector &)>;

    explicit AcousticFrontend(const FrontendConfig &cfg = {});

    const FrontendConfig &config() const { return cfg_; }

    /** Emitted frame size: numCepstra when set, else melBands. */
    std::size_t featureDim() const;

    /** Non-redundant spectrum bins per frame (fftSize/2 + 1). */
    std::size_t numBins() const { return cfg_.fftSize / 2 + 1; }

    /** Completed frames a run over @p n total samples emits. */
    std::size_t framesForSamples(std::size_t n) const;

    /** Fresh start-of-stream state sized for this frontend. */
    FrontendState newState() const;

    /** Rewind @p state to start-of-stream (keeps warm scratch). */
    void reset(FrontendState &state) const;

    /**
     * Streaming: consume @p n samples and invoke @p sink once per
     * completed frame, in order. Allocation-free once @p state is
     * warm. Any chunking of the same samples yields bit-identical
     * frames.
     */
    void push(FrontendState &state, const Real *samples,
              std::size_t n, const FrameSink &sink) const;

    /** Streaming convenience: append completed frames to @p out. */
    void push(FrontendState &state, const Vector &chunk,
              nn::Sequence &out) const;

    /** Batch convenience: all frames of a whole utterance. Defined
     *  as one push() over a fresh state, so batch == streaming
     *  bit-for-bit by construction. */
    nn::Sequence process(const Vector &samples) const;

    /// @{ Introspection for golden tests.
    const Vector &window() const { return window_; }
    const std::vector<MelFilter> &filterbank() const { return mel_; }
    /** DCT-II basis; row k dots with the log-mel vector. Empty when
     *  numCepstra == 0. */
    const std::vector<Vector> &dctBasis() const { return dct_; }
    /// @}

    /// @{ Checkpoint support: serialize the stream-progress part of
    /// @p state (overlap buffer, pre-emphasis memory, counters) to an
    /// opaque payload for the stream checkpoint's aux section, and
    /// restore it. Restore is fatal on malformed payloads or on a
    /// payload written under a different FrontendConfig.
    std::string serializeState(const FrontendState &state) const;
    void restoreState(FrontendState &state,
                      const std::string &payload) const;
    /// @}

    /** Structural fingerprint of the configuration (stamped into
     *  serialized states; mismatches are rejected by restoreState). */
    std::uint64_t fingerprint() const { return fingerprint_; }

  private:
    void emitFrame(FrontendState &state, const FrameSink &sink) const;

    FrontendConfig cfg_;
    Vector window_;              //!< Hamming, frameLength points
    std::vector<MelFilter> mel_; //!< melBands triangular filters
    std::vector<Vector> dct_;    //!< numCepstra DCT-II rows
    std::uint64_t fingerprint_ = 0;
};

/** Convert frequency in Hz to the mel scale (HTK convention). */
Real hzToMel(Real hz);

/** Inverse of hzToMel. */
Real melToHz(Real mel);

// --- synthetic waveform ground truth ------------------------------------

/** Waveform generator configuration; defaults give sub-second
 *  utterances that frontend + tiny models can score in tests. */
struct WaveAsrConfig
{
    std::size_t numPhones = 8;
    std::size_t utterances = 8;
    std::size_t minSegments = 3; //!< phone segments per utterance
    std::size_t maxSegments = 6;
    std::size_t minSegmentMs = 80; //!< per-segment duration
    std::size_t maxSegmentMs = 200;
    Real noise = 0.02;             //!< additive Gaussian, sample level
    std::size_t sampleRate = 16000;
    std::uint64_t seed = 20190216; //!< HPCA'19 :-)
};

/** Ground-truth phone segment: samples [begin, end) carry @p phone. */
struct WaveSegment
{
    int phone = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** One generated utterance with its sample-accurate segmentation. */
struct WaveUtterance
{
    Vector samples;
    std::vector<WaveSegment> segments;
};

using WaveDataset = std::vector<WaveUtterance>;

/**
 * Deterministically generate waveform utterances. Each phone class
 * is a fixed two-tone signature (distinct "formant" pair, continuous
 * phase across segment boundaries) plus seeded Gaussian noise — so
 * the per-sample phone identity is known exactly and the mel
 * energies of different phones are linearly separable, giving
 * end-to-end frontend tests a ground truth without training.
 */
WaveDataset makeSyntheticWaves(const WaveAsrConfig &cfg);

/**
 * Frame-aligned labels for @p utt under @p cfg's framing: frame t is
 * labeled with the phone active at its center sample. Length equals
 * framesForSamples(utt.samples.size()).
 */
std::vector<int> frameLabels(const WaveUtterance &utt,
                             const FrontendConfig &cfg);

/** Run @p fe over @p utt and pair frames with frame-aligned labels. */
nn::SequenceExample frontendExample(const AcousticFrontend &fe,
                                    const WaveUtterance &utt);

} // namespace ernn::speech

#endif // ERNN_SPEECH_FRONTEND_HH
