#include "speech/per.hh"

#include <algorithm>
#include <future>
#include <vector>

#include "base/logging.hh"
#include "serve/inference_server.hh"
#include "speech/ctc_decoder.hh"

namespace ernn::speech
{

namespace
{

/** Hypothesis labels for one utterance: greedy argmax predictions
 *  (beamWidth == 0) or the CTC beam decode of its logits. Both
 *  return already-collapsed sequences. */
std::vector<int>
hypothesis(const serve::InferenceReply &reply,
           const PerEvalOptions &opts)
{
    if (opts.beamWidth == 0)
        return collapseRepeats(reply.predictions);
    CtcDecodeOptions dopts;
    dopts.beamWidth = opts.beamWidth;
    dopts.blank = opts.blank;
    return ctcDecode(reply.logits, dopts).labels;
}

} // namespace

std::vector<int>
collapseRepeats(const std::vector<int> &labels)
{
    std::vector<int> out;
    for (int v : labels)
        if (out.empty() || out.back() != v)
            out.push_back(v);
    return out;
}

std::size_t
editDistance(const std::vector<int> &a, const std::vector<int> &b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<std::size_t> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

Real
sequencePer(const std::vector<int> &predicted_frames,
            const std::vector<int> &reference_frames)
{
    const auto hyp = collapseRepeats(predicted_frames);
    const auto ref = collapseRepeats(reference_frames);
    ernn_assert(!ref.empty(), "empty reference sequence");
    return static_cast<Real>(editDistance(hyp, ref)) /
           static_cast<Real>(ref.size());
}

Real
evaluatePer(const runtime::CompiledModel &model,
            const nn::SequenceDataset &data)
{
    // One session, scored utterance by utterance: peak memory is one
    // utterance's logits, not the whole test set's.
    runtime::InferenceSession session = model.createSession();
    std::size_t errors = 0;
    std::size_t ref_tokens = 0;
    for (const auto &ex : data) {
        const auto hyp =
            collapseRepeats(session.predictFrames(ex.frames));
        const auto ref = collapseRepeats(ex.labels);
        errors += editDistance(hyp, ref);
        ref_tokens += ref.size();
    }
    ernn_assert(ref_tokens > 0, "PER over empty dataset");
    return 100.0 * static_cast<Real>(errors) /
           static_cast<Real>(ref_tokens);
}

Real
evaluatePer(const runtime::CompiledModel &model,
            const nn::SequenceDataset &data,
            const PerEvalOptions &opts)
{
    if (opts.workers == 0) {
        if (opts.beamWidth == 0)
            return evaluatePer(model, data);
        // Serial beam-decoded path: one session, decode per
        // utterance from its logits.
        CtcDecodeOptions dopts;
        dopts.beamWidth = opts.beamWidth;
        dopts.blank = opts.blank;
        runtime::InferenceSession session =
            model.createSession(opts.computeThreads);
        std::size_t errors = 0;
        std::size_t ref_tokens = 0;
        for (const auto &ex : data) {
            const auto hyp =
                ctcDecode(session.logits(ex.frames), dopts).labels;
            const auto ref = collapseRepeats(ex.labels);
            errors += editDistance(hyp, ref);
            ref_tokens += ref.size();
        }
        ernn_assert(ref_tokens > 0, "PER over empty dataset");
        return 100.0 * static_cast<Real>(errors) /
               static_cast<Real>(ref_tokens);
    }

    serve::ServerOptions sopts;
    sopts.workers = opts.workers;
    sopts.maxBatch = std::max<std::size_t>(1, opts.maxBatch);
    sopts.computeThreads = opts.computeThreads;
    serve::InferenceServer server(model, sopts);

    // Submit everything up front (the bounded queue throttles us),
    // then score replies in dataset order: predictions are
    // bit-identical to the serial path, so the PER is deterministic
    // no matter how the batches were coalesced.
    std::vector<std::future<serve::InferenceReply>> futures;
    futures.reserve(data.size());
    for (const auto &ex : data)
        futures.push_back(server.submit(ex.frames));

    std::size_t errors = 0;
    std::size_t ref_tokens = 0;
    for (std::size_t u = 0; u < data.size(); ++u) {
        const serve::InferenceReply reply = futures[u].get();
        const auto hyp = hypothesis(reply, opts);
        const auto ref = collapseRepeats(data[u].labels);
        errors += editDistance(hyp, ref);
        ref_tokens += ref.size();
    }
    ernn_assert(ref_tokens > 0, "PER over empty dataset");
    return 100.0 * static_cast<Real>(errors) /
           static_cast<Real>(ref_tokens);
}

Real
evaluatePer(const nn::StackedRnn &model,
            const nn::SequenceDataset &data)
{
    return evaluatePer(runtime::compile(model), data);
}

} // namespace ernn::speech
