/**
 * @file
 * Phone error rate (PER): the paper's accuracy metric for TIMIT.
 * Framewise predictions are collapsed (consecutive repeats merged)
 * into phone sequences and scored with Levenshtein edit distance
 * against the collapsed references.
 */

#ifndef ERNN_SPEECH_PER_HH
#define ERNN_SPEECH_PER_HH

#include <vector>

#include "nn/rnn.hh"
#include "nn/trainer.hh"
#include "runtime/session.hh"

namespace ernn::speech
{

/** Merge consecutive duplicate labels into one phone token. */
std::vector<int> collapseRepeats(const std::vector<int> &labels);

/** Levenshtein distance between two token sequences. */
std::size_t editDistance(const std::vector<int> &a,
                         const std::vector<int> &b);

/** PER between two framewise label streams (collapse, then edit). */
Real sequencePer(const std::vector<int> &predicted_frames,
                 const std::vector<int> &reference_frames);

/** Dataset-level PER of a compiled model, as a percentage (0-100),
 *  scored utterance by utterance through one inference session. */
Real evaluatePer(const runtime::CompiledModel &model,
                 const nn::SequenceDataset &data);

/** Knobs for the parallel, server-backed PER evaluation. */
struct PerEvalOptions
{
    std::size_t workers = 2;  //!< 0 falls back to the serial path
    std::size_t maxBatch = 8; //!< dynamic-batching cap per worker
    /** Compute threads per worker session (0 inherits the model's
     *  CompileOptions::computeThreads). Bit-identical at any count. */
    std::size_t computeThreads = 0;

    /**
     * CTC prefix beam width (speech/ctc_decoder.hh). 0 scores the
     * historical greedy argmax path; 1 runs the beam decoder, which
     * is bit-identical to greedy (same PER, same per-utterance label
     * sequences — the parity oracle); N > 1 searches wider.
     */
    std::size_t beamWidth = 0;

    /** Blank class for the beam decoder; -1 = no blank (the native
     *  mode for this repo's framewise models). Ignored when
     *  beamWidth == 0. */
    int blank = -1;
};

/**
 * Dataset-level PER scored through a serve::InferenceServer: the
 * utterances are submitted concurrently and coalesced into batches
 * across @p opts.workers worker sessions. Per-utterance predictions
 * are bit-identical to the serial path, so the returned PER is too.
 */
Real evaluatePer(const runtime::CompiledModel &model,
                 const nn::SequenceDataset &data,
                 const PerEvalOptions &opts);

/**
 * Dataset-level PER of a trained model, as a percentage (0-100).
 * Convenience wrapper: freezes the model with runtime::compile()
 * (Auto backend) and scores through a batched InferenceSession —
 * the training-path forward is no longer involved.
 */
Real evaluatePer(const nn::StackedRnn &model,
                 const nn::SequenceDataset &data);

} // namespace ernn::speech

#endif // ERNN_SPEECH_PER_HH
