/**
 * @file
 * Phone error rate (PER): the paper's accuracy metric for TIMIT.
 * Framewise predictions are collapsed (consecutive repeats merged)
 * into phone sequences and scored with Levenshtein edit distance
 * against the collapsed references.
 */

#ifndef ERNN_SPEECH_PER_HH
#define ERNN_SPEECH_PER_HH

#include <vector>

#include "nn/rnn.hh"
#include "nn/trainer.hh"
#include "runtime/session.hh"

namespace ernn::speech
{

/** Merge consecutive duplicate labels into one phone token. */
std::vector<int> collapseRepeats(const std::vector<int> &labels);

/** Levenshtein distance between two token sequences. */
std::size_t editDistance(const std::vector<int> &a,
                         const std::vector<int> &b);

/** PER between two framewise label streams (collapse, then edit). */
Real sequencePer(const std::vector<int> &predicted_frames,
                 const std::vector<int> &reference_frames);

/** Dataset-level PER of a compiled model, as a percentage (0-100),
 *  scored utterance by utterance through one inference session. */
Real evaluatePer(const runtime::CompiledModel &model,
                 const nn::SequenceDataset &data);

/**
 * Dataset-level PER of a trained model, as a percentage (0-100).
 * Convenience wrapper: freezes the model with runtime::compile()
 * (Auto backend) and scores through a batched InferenceSession —
 * the training-path forward is no longer involved.
 */
Real evaluatePer(const nn::StackedRnn &model,
                 const nn::SequenceDataset &data);

} // namespace ernn::speech

#endif // ERNN_SPEECH_PER_HH
