#include "speech/timit_oracle.hh"

#include <cmath>

#include "base/logging.hh"

namespace ernn::speech
{

namespace
{

using nn::ModelSpec;
using nn::ModelType;

/** Table I of the paper (LSTM on TIMIT), verbatim. */
const std::vector<TimitOracle::Row> lstm_rows = {
    {1, ModelType::Lstm, {256, 256, 256}, {}, false, false, 20.83},
    {2, ModelType::Lstm, {256, 256, 256}, {2, 2, 2}, false, false,
     20.75},
    {3, ModelType::Lstm, {256, 256, 256}, {4, 4, 4}, false, false,
     20.85},
    {4, ModelType::Lstm, {512, 512}, {}, true, false, 20.53},
    {5, ModelType::Lstm, {512, 512}, {4, 4}, true, false, 20.57},
    {6, ModelType::Lstm, {512, 512}, {4, 8}, true, false, 20.85},
    {7, ModelType::Lstm, {512, 512}, {8, 4}, true, false, 20.98},
    {8, ModelType::Lstm, {512, 512}, {8, 8}, true, false, 21.01},
    {9, ModelType::Lstm, {1024, 1024}, {}, true, true, 20.01},
    {10, ModelType::Lstm, {1024, 1024}, {4, 4}, true, true, 20.01},
    {11, ModelType::Lstm, {1024, 1024}, {4, 8}, true, true, 20.05},
    {12, ModelType::Lstm, {1024, 1024}, {8, 4}, true, true, 20.10},
    {13, ModelType::Lstm, {1024, 1024}, {8, 8}, true, true, 20.14},
    {14, ModelType::Lstm, {1024, 1024}, {8, 16}, true, true, 20.22},
    {15, ModelType::Lstm, {1024, 1024}, {16, 8}, true, true, 20.29},
    {16, ModelType::Lstm, {1024, 1024}, {16, 16}, true, true, 20.32},
};

/** Table II of the paper (GRU on TIMIT), verbatim. */
const std::vector<TimitOracle::Row> gru_rows = {
    {1, ModelType::Gru, {256, 256, 256}, {}, false, false, 20.72},
    {2, ModelType::Gru, {256, 256, 256}, {4, 4, 4}, false, false,
     20.81},
    {3, ModelType::Gru, {256, 256, 256}, {8, 8, 8}, false, false,
     20.88},
    {4, ModelType::Gru, {512, 512}, {}, false, false, 20.51},
    {5, ModelType::Gru, {512, 512}, {4, 4}, false, false, 20.55},
    {6, ModelType::Gru, {512, 512}, {4, 8}, false, false, 20.73},
    {7, ModelType::Gru, {512, 512}, {8, 4}, false, false, 20.89},
    {8, ModelType::Gru, {512, 512}, {8, 8}, false, false, 20.95},
    {9, ModelType::Gru, {1024, 1024}, {}, false, false, 20.02},
    {10, ModelType::Gru, {1024, 1024}, {4, 4}, false, false, 20.03},
    {11, ModelType::Gru, {1024, 1024}, {4, 8}, false, false, 20.08},
    {12, ModelType::Gru, {1024, 1024}, {8, 4}, false, false, 20.13},
    {13, ModelType::Gru, {1024, 1024}, {8, 8}, false, false, 20.20},
    {14, ModelType::Gru, {1024, 1024}, {8, 16}, false, false, 20.25},
    {15, ModelType::Gru, {1024, 1024}, {16, 8}, false, false, 20.31},
    {16, ModelType::Gru, {1024, 1024}, {16, 16}, false, false, 20.36},
};

/**
 * Degradation basis function: block sizes of 4 or below are free
 * (the paper's first observation); beyond that the cost grows
 * superlinearly in log2(Lb). The exponent 1.42 reproduces the
 * 16-vs-8 degradation ratios of Tables I/II (about 2.7x).
 */
Real
blockPenalty(std::size_t block)
{
    if (block <= 4)
        return 0.0;
    const Real t = std::log2(static_cast<Real>(block)) - 2.0;
    return std::pow(t, 1.42);
}

/** Per-layer degradation coefficients fitted to the tables. */
std::vector<Real>
layerCoefficients(ModelType type,
                  const std::vector<std::size_t> &layers)
{
    if (type == ModelType::Lstm) {
        if (layers == std::vector<std::size_t>{1024, 1024})
            return {0.09, 0.04};
        if (layers == std::vector<std::size_t>{512, 512})
            return {0.45, 0.32};
        if (layers == std::vector<std::size_t>{256, 256, 256})
            return {0.05, 0.05, 0.05};
    } else {
        if (layers == std::vector<std::size_t>{1024, 1024})
            return {0.11, 0.06};
        if (layers == std::vector<std::size_t>{512, 512})
            return {0.38, 0.22};
        if (layers == std::vector<std::size_t>{256, 256, 256})
            return {0.054, 0.054, 0.053};
    }
    // Generic power law: halving the layer size multiplies the
    // sensitivity by ~4.9 (fitted on the 1024 -> 512 jump).
    std::vector<Real> out;
    const Real lead = type == ModelType::Lstm ? 0.09 : 0.11;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Real scale = std::pow(
            1024.0 / static_cast<Real>(layers[i]), 2.3);
        const Real position = i == 0 ? 1.0 : 0.5;
        out.push_back(lead * scale * position);
    }
    return out;
}

/**
 * Input/output matrices are "relatively unimportant" (Phase I step
 * 3); raising only their block size costs a fraction of the full
 * penalty.
 */
constexpr Real input_matrix_weight = 0.35;

bool
blocksMatch(const ModelSpec &spec, const TimitOracle::Row &row)
{
    // The spec must not use a fine-tuned input block override for an
    // exact table match.
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l)
        if (spec.inputBlockFor(l) != spec.blockFor(l))
            return false;
    if (row.blocks.empty()) {
        return spec.isDenseBaseline();
    }
    if (row.blocks.size() != spec.layerSizes.size())
        return false;
    for (std::size_t l = 0; l < row.blocks.size(); ++l)
        if (spec.blockFor(l) != row.blocks[l])
            return false;
    return true;
}

} // namespace

const std::vector<TimitOracle::Row> &
TimitOracle::tableRows(nn::ModelType type)
{
    return type == nn::ModelType::Lstm ? lstm_rows : gru_rows;
}

Real
TimitOracle::baselinePer(nn::ModelType type,
                         const std::vector<std::size_t> &layers) const
{
    for (const auto &row : tableRows(type))
        if (row.blocks.empty() && row.layers == layers)
            return row.per;
    // Linear fit in log2(layer size) through the table baselines
    // (~0.4% PER per doubling for LSTM, ~0.35% for GRU).
    const Real slope = type == nn::ModelType::Lstm ? 0.41 : 0.35;
    const Real anchor = type == nn::ModelType::Lstm ? 20.01 : 20.02;
    Real mean_log = 0.0;
    for (auto l : layers)
        mean_log += std::log2(static_cast<Real>(l));
    mean_log /= static_cast<Real>(layers.size());
    return anchor + slope * (10.0 - mean_log);
}

Real
TimitOracle::perImpl(const nn::ModelSpec &spec) const
{
    // Exact table rows take priority.
    for (const auto &row : tableRows(spec.type))
        if (row.layers == spec.layerSizes && blocksMatch(spec, row))
            return row.per;

    // Parametric fallback.
    const Real base = baselinePer(spec.type, spec.layerSizes);
    const auto coef = layerCoefficients(spec.type, spec.layerSizes);
    Real deg = 0.0;
    for (std::size_t l = 0; l < spec.layerSizes.size(); ++l) {
        const std::size_t rec_block = spec.blockFor(l);
        const std::size_t in_block = spec.inputBlockFor(l);
        deg += coef[l] * blockPenalty(rec_block);
        if (in_block > rec_block) {
            deg += coef[l] * input_matrix_weight *
                   (blockPenalty(in_block) - blockPenalty(rec_block));
        }
    }
    return base + deg;
}

Real
TimitOracle::per(const nn::ModelSpec &spec)
{
    ++trials_;
    return perImpl(spec);
}

Real
TimitOracle::degradation(const nn::ModelSpec &spec)
{
    ++trials_;
    return perImpl(spec) - baselinePer(spec.type, spec.layerSizes);
}

} // namespace ernn::speech
