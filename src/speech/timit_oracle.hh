/**
 * @file
 * Calibrated TIMIT accuracy oracle.
 *
 * We cannot train 1024-unit LSTMs on the licensed TIMIT corpus in
 * this environment, but Phase I only consumes (model spec -> PER)
 * queries. This oracle returns the paper's own measurements (every
 * row of Tables I and II verbatim) for configurations the paper
 * evaluated, and a smooth parametric degradation model — fitted to
 * those rows — for configurations it did not (e.g. block size 32,
 * or a raised input-matrix block size during Phase I fine-tuning).
 * See DESIGN.md §4 for the substitution rationale.
 */

#ifndef ERNN_SPEECH_TIMIT_ORACLE_HH
#define ERNN_SPEECH_TIMIT_ORACLE_HH

#include <vector>

#include "nn/model_builder.hh"

namespace ernn::speech
{

/** Generic accuracy oracle interface consumed by Phase I. */
class AccuracyOracle
{
  public:
    virtual ~AccuracyOracle() = default;

    /** Absolute PER (%) of the given model spec. */
    virtual Real per(const nn::ModelSpec &spec) = 0;

    /** PER degradation (%) vs. the matching dense baseline. */
    virtual Real degradation(const nn::ModelSpec &spec) = 0;

    /** Number of per() queries made so far ("training trials"). */
    virtual std::size_t trialCount() const = 0;
};

class TimitOracle : public AccuracyOracle
{
  public:
    /** One row of Table I or II. */
    struct Row
    {
        int id;
        nn::ModelType type;
        std::vector<std::size_t> layers;
        std::vector<std::size_t> blocks; //!< empty = dense baseline
        bool peephole;
        bool projection;
        Real per;
    };

    TimitOracle() = default;

    Real per(const nn::ModelSpec &spec) override;
    Real degradation(const nn::ModelSpec &spec) override;
    std::size_t trialCount() const override { return trials_; }

    /** Dense-baseline PER for a given type and layer stack. */
    Real baselinePer(nn::ModelType type,
                     const std::vector<std::size_t> &layers) const;

    /** The verbatim rows of Table I (LSTM) or Table II (GRU). */
    static const std::vector<Row> &tableRows(nn::ModelType type);

    /** Reset the trial counter (between Phase I runs). */
    void resetTrials() { trials_ = 0; }

  private:
    Real perImpl(const nn::ModelSpec &spec) const;
    std::size_t trials_ = 0;
};

} // namespace ernn::speech

#endif // ERNN_SPEECH_TIMIT_ORACLE_HH
