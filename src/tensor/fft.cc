#include "tensor/fft.hh"

#include <cmath>
#include <unordered_map>

#include "base/logging.hh"
#include "tensor/simd.hh"

namespace ernn::fft
{

namespace
{

constexpr Real two_pi = 6.283185307179586476925286766559;

struct CounterState
{
    OpCounters counters;
    bool enabled = false;
};

thread_local CounterState tls_state;

/**
 * Twiddle factor cache: for size n stores exp(-2*pi*i*k/n) for
 * k in [0, n/2). Sizes are powers of two, so the cache stays tiny.
 */
const CVector &
twiddles(std::size_t n)
{
    thread_local std::unordered_map<std::size_t, CVector> cache;
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    CVector tw(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
        const Real ang = -two_pi * static_cast<Real>(k) /
                         static_cast<Real>(n);
        tw[k] = Complex(std::cos(ang), std::sin(ang));
    }
    return cache.emplace(n, std::move(tw)).first->second;
}

void
bitReversePermute(CVector &a)
{
    const std::size_t n = a.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
}

} // namespace

void
OpCount::setEnabled(bool on)
{
    tls_state.enabled = on;
}

bool
OpCount::enabled()
{
    return tls_state.enabled;
}

void
OpCount::reset()
{
    tls_state.counters = OpCounters{};
}

OpCounters
OpCount::snapshot()
{
    return tls_state.counters;
}

void
OpCount::addRealMults(std::uint64_t n)
{
    tls_state.counters.realMults += n;
}

void
OpCount::addComplexMults(std::uint64_t n)
{
    tls_state.counters.cmplxMults += n;
}

void
OpCount::addEltwiseMults(std::uint64_t n)
{
    tls_state.counters.eltwiseMults += n;
    tls_state.counters.realMults += n;
}

void
OpCount::countFft()
{
    ++tls_state.counters.fftCalls;
}

void
OpCount::countIfft()
{
    ++tls_state.counters.ifftCalls;
}

OpCountScope::OpCountScope()
    : prev_(OpCount::enabled())
{
    OpCount::setEnabled(true);
    OpCount::reset();
}

OpCountScope::~OpCountScope()
{
    OpCount::setEnabled(prev_);
}

bool
isPowerOfTwo(std::size_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

std::size_t
log2Ceil(std::size_t n)
{
    ernn_assert(n >= 1, "log2Ceil of zero");
    std::size_t l = 0;
    std::size_t v = 1;
    while (v < n) {
        v <<= 1;
        ++l;
    }
    return l;
}

void
fftInPlace(CVector &a, bool inverse)
{
    const std::size_t n = a.size();
    ernn_assert(isPowerOfTwo(n), "FFT size " << n
                << " is not a power of two");
    if (n == 1)
        return;

    bitReversePermute(a);

    const CVector &tw = twiddles(n);
    const bool counting = OpCount::enabled();
    std::uint64_t cmuls = 0;

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t half = len / 2;
        const std::size_t step = n / len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t j = 0; j < half; ++j) {
                Complex &lo = a[i + j];
                Complex &hi = a[i + j + half];
                Complex t;
                if (j == 0) {
                    // Twiddle is 1: no multiplication.
                    t = hi;
                } else if (len >= 4 && j == len / 4) {
                    // Twiddle is -i (forward) or +i (inverse):
                    // a pure component swap, no multiplication.
                    t = inverse ? Complex(-hi.imag(), hi.real())
                                : Complex(hi.imag(), -hi.real());
                } else {
                    const Complex w = inverse ?
                        std::conj(tw[j * step]) : tw[j * step];
                    t = Complex(
                        w.real() * hi.real() - w.imag() * hi.imag(),
                        w.real() * hi.imag() + w.imag() * hi.real());
                    ++cmuls;
                }
                hi = lo - t;
                lo += t;
            }
        }
    }

    if (inverse) {
        // The 1/n scaling maps to the PE's right-shift registers
        // (Fig. 10); it costs no hardware multiplier.
        const Real inv = 1.0 / static_cast<Real>(n);
        for (auto &v : a)
            v *= inv;
    }

    if (counting) {
        OpCount::addComplexMults(cmuls);
        OpCount::addRealMults(4 * cmuls);
    }
}

CVector
naiveDft(const CVector &a, bool inverse)
{
    const std::size_t n = a.size();
    CVector out(n, Complex(0, 0));
    const Real sign = inverse ? 1.0 : -1.0;
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t t = 0; t < n; ++t) {
            const Real ang = sign * two_pi * static_cast<Real>(k * t) /
                             static_cast<Real>(n);
            out[k] += a[t] * Complex(std::cos(ang), std::sin(ang));
        }
    }
    if (inverse) {
        for (auto &v : out)
            v /= static_cast<Real>(n);
    }
    return out;
}

CVector
rfft(const Vector &x)
{
    CVector out, scratch;
    rfftInto(x, out, scratch);
    return out;
}

void
rfftInto(const Vector &x, CVector &out, CVector &scratch)
{
    out.resize(x.size() / 2 + 1);
    rfftInto(x, out.data(), scratch);
}

void
rfftInto(const Vector &x, Complex *out, CVector &scratch)
{
    const std::size_t n = x.size();
    ernn_assert(isPowerOfTwo(n), "rfft size " << n
                << " is not a power of two");
    if (OpCount::enabled())
        OpCount::countFft();

    if (n == 1) {
        out[0] = Complex(x[0], 0);
        return;
    }
    if (n == 2) {
        out[0] = Complex(x[0] + x[1], 0);
        out[1] = Complex(x[0] - x[1], 0);
        return;
    }

    const std::size_t m = n / 2;

    // Pack adjacent real samples into complex values and run a
    // half-size complex FFT (the real-FFT saving of Sec. V-A2).
    CVector &z = scratch;
    z.resize(m);
    for (std::size_t k = 0; k < m; ++k)
        z[k] = Complex(x[2 * k], x[2 * k + 1]);
    fftInPlace(z, false);

    out[0] = Complex(z[0].real() + z[0].imag(), 0);
    out[m] = Complex(z[0].real() - z[0].imag(), 0);

    const CVector &tw = twiddles(n);
    const bool counting = OpCount::enabled();
    std::uint64_t cmuls = 0;

    for (std::size_t k = 1; k <= m / 2; ++k) {
        const Complex zk = z[k];
        const Complex zmk = std::conj(z[m - k]);
        const Complex xe = 0.5 * (zk + zmk);
        const Complex diff = zk - zmk;
        // xo = (zk - zmk) / (2i) = -0.5i * diff
        const Complex xo(0.5 * diff.imag(), -0.5 * diff.real());
        Complex p;
        if (k == m / 2 && m >= 2) {
            // Twiddle exp(-i*pi/2) = -i: trivial.
            p = Complex(xo.imag(), -xo.real());
        } else {
            const Complex w = tw[k];
            p = Complex(w.real() * xo.real() - w.imag() * xo.imag(),
                        w.real() * xo.imag() + w.imag() * xo.real());
            ++cmuls;
        }
        out[k] = xe + p;
        if (k != m - k)
            out[m - k] = std::conj(xe - p);
    }

    if (counting) {
        OpCount::addComplexMults(cmuls);
        OpCount::addRealMults(4 * cmuls);
    }
}

Vector
irfft(const CVector &spectrum, std::size_t n)
{
    Vector out;
    CVector scratch;
    irfftInto(spectrum, n, out, scratch);
    return out;
}

void
irfftInto(const CVector &spectrum, std::size_t n, Vector &out,
          CVector &scratch)
{
    ernn_assert(spectrum.size() == n / 2 + 1,
                "irfft: expected " << (n / 2 + 1) << " bins, got "
                << spectrum.size());
    irfftInto(spectrum.data(), n, out, scratch);
}

void
irfftInto(const Complex *spectrum, std::size_t n, Vector &out,
          CVector &scratch)
{
    ernn_assert(isPowerOfTwo(n), "irfft size " << n
                << " is not a power of two");
    if (OpCount::enabled())
        OpCount::countIfft();

    if (n == 1) {
        out.assign(1, spectrum[0].real());
        return;
    }
    if (n == 2) {
        out.resize(2);
        out[0] = 0.5 * (spectrum[0].real() + spectrum[1].real());
        out[1] = 0.5 * (spectrum[0].real() - spectrum[1].real());
        return;
    }

    const std::size_t m = n / 2;
    CVector &z = scratch;
    z.resize(m);
    z[0] = Complex(0.5 * (spectrum[0].real() + spectrum[m].real()),
                   0.5 * (spectrum[0].real() - spectrum[m].real()));

    const CVector &tw = twiddles(n);
    const bool counting = OpCount::enabled();
    std::uint64_t cmuls = 0;

    for (std::size_t k = 1; k <= m / 2; ++k) {
        const Complex a = spectrum[k];
        const Complex b = std::conj(spectrum[m - k]);
        const Complex xe = 0.5 * (a + b);
        const Complex q = 0.5 * (a - b); // q = W^k * xo
        Complex xo;
        if (k == m / 2 && m >= 2) {
            // conj(W^{m/2}) = +i: trivial.
            xo = Complex(-q.imag(), q.real());
        } else {
            const Complex w = std::conj(tw[k]);
            xo = Complex(w.real() * q.real() - w.imag() * q.imag(),
                         w.real() * q.imag() + w.imag() * q.real());
            ++cmuls;
        }
        // z[k] = xe + i*xo
        z[k] = Complex(xe.real() - xo.imag(), xe.imag() + xo.real());
        if (k != m - k) {
            z[m - k] = Complex(xe.real() + xo.imag(),
                               -xe.imag() + xo.real());
        }
    }

    fftInPlace(z, true);

    out.resize(n);
    for (std::size_t k = 0; k < m; ++k) {
        out[2 * k] = z[k].real();
        out[2 * k + 1] = z[k].imag();
    }

    if (counting) {
        OpCount::addComplexMults(cmuls);
        OpCount::addRealMults(4 * cmuls);
    }
}

void
accumulateConjProduct(CVector &acc, const CVector &w, const CVector &x)
{
    ernn_assert(acc.size() == w.size(),
                "accumulateConjProduct: bin count mismatch");
    accumulateConjProduct(acc, w.data(), x);
}

void
accumulateConjProduct(CVector &acc, const Complex *w, const CVector &x)
{
    ernn_assert(acc.size() == x.size(),
                "accumulateConjProduct: bin count mismatch");
    const std::size_t bins = acc.size();
    ernn_assert(bins >= 2, "accumulateConjProduct: too few bins");
    const std::size_t m = bins - 1;

    // Bins 0 and m of a real spectrum are purely real.
    acc[0] += Complex(w[0].real() * x[0].real(), 0);
    acc[m] += Complex(w[m].real() * x[m].real(), 0);

    for (std::size_t k = 1; k < m; ++k) {
        const Real wr = w[k].real(), wi = w[k].imag();
        const Real xr = x[k].real(), xi = x[k].imag();
        // conj(w) * x
        acc[k] += Complex(wr * xr + wi * xi, wr * xi - wi * xr);
    }

    if (OpCount::enabled())
        OpCount::addEltwiseMults(2 + 4 * (m - 1));
}

void
accumulateConjProduct(Complex *acc, const Complex *w, const Complex *x,
                      std::size_t bins)
{
    ernn_assert(bins >= 2, "accumulateConjProduct: too few bins");
    // std::complex<Real> is layout-compatible with Real[2], so the
    // SIMD core works on the raw interleaved (re, im) storage. Every
    // level is bit-identical to the scalar oracle (see simd.hh).
    simd::conjMacLanesFn()(reinterpret_cast<Real *>(acc),
                           reinterpret_cast<const Real *>(w),
                           reinterpret_cast<const Real *>(x), 1,
                           bins);

    if (OpCount::enabled())
        OpCount::addEltwiseMults(2 + 4 * (bins - 2));
}

void
accumulateConjProductLanes(Complex *acc, const Complex *w,
                           const Complex *x, std::size_t lanes,
                           std::size_t bins)
{
    ernn_assert(bins >= 2, "accumulateConjProductLanes: too few bins");
    simd::conjMacLanesFn()(reinterpret_cast<Real *>(acc),
                           reinterpret_cast<const Real *>(w),
                           reinterpret_cast<const Real *>(x), lanes,
                           bins);

    if (OpCount::enabled())
        OpCount::addEltwiseMults(lanes * (2 + 4 * (bins - 2)));
}

std::uint64_t
complexFftRealMults(std::size_t n)
{
    ernn_assert(isPowerOfTwo(n), "complexFftRealMults: bad size");
    std::uint64_t cmuls = 0;
    for (std::size_t len = 8; len <= n; len <<= 1) {
        const std::size_t groups = n / len;
        const std::size_t nontrivial = len / 2 - 2;
        cmuls += groups * nontrivial;
    }
    return 4 * cmuls;
}

std::uint64_t
rfftRealMults(std::size_t n)
{
    ernn_assert(isPowerOfTwo(n), "rfftRealMults: bad size");
    if (n <= 2)
        return 0;
    const std::uint64_t merge = n >= 8 ? 4ull * (n / 4 - 1) : 0ull;
    return complexFftRealMults(n / 2) + merge;
}

std::uint64_t
irfftRealMults(std::size_t n)
{
    // The inverse split mirrors the forward merge exactly.
    return rfftRealMults(n);
}

std::uint64_t
eltwiseRealMults(std::size_t n)
{
    ernn_assert(isPowerOfTwo(n) && n >= 2, "eltwiseRealMults: bad size");
    return 2 * n - 2;
}

} // namespace ernn::fft
