/**
 * @file
 * Radix-2 FFT engine with real-input specialization and runtime
 * multiplication accounting.
 *
 * The paper's computation-reduction analysis (Sec. V) relies on three
 * structural properties that this implementation realizes rather than
 * simulates:
 *
 *  - trivial twiddle factors (1, -1, i, -i) perform no multiplication
 *    (the first two butterfly levels are multiplication-free);
 *  - real-input FFTs of size N are computed via a complex FFT of size
 *    N/2 plus a split/merge pass (the "symmetry" saving);
 *  - the IFFT output scaling by 1/N maps to right-shift registers in
 *    the PE (Fig. 10) and therefore costs no multiplier.
 *
 * When counting is enabled (see OpCount), every real multiplication
 * actually executed by the butterflies is tallied, which lets the
 * Fig. 8 bench cross-check the analytic model against reality.
 */

#ifndef ERNN_TENSOR_FFT_HH
#define ERNN_TENSOR_FFT_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "tensor/vector_ops.hh"

namespace ernn::fft
{

/** Snapshot of the multiplication/transform counters. */
struct OpCounters
{
    std::uint64_t realMults = 0; //!< real multiplications in butterflies
    std::uint64_t cmplxMults = 0; //!< non-trivial complex multiplications
    std::uint64_t fftCalls = 0; //!< forward transforms executed
    std::uint64_t ifftCalls = 0; //!< inverse transforms executed
    std::uint64_t eltwiseMults = 0; //!< real mults in frequency products
};

/**
 * Global (thread-local) operation accounting. Disabled by default;
 * enable around a region of interest with OpCountScope.
 */
class OpCount
{
  public:
    static void setEnabled(bool on);
    static bool enabled();
    static void reset();
    static OpCounters snapshot();

    /// @{ Internal hooks used by the transform kernels.
    static void addRealMults(std::uint64_t n);
    static void addComplexMults(std::uint64_t n);
    static void addEltwiseMults(std::uint64_t n);
    static void countFft();
    static void countIfft();
    /// @}
};

/** RAII guard that enables and resets counting within a scope. */
class OpCountScope
{
  public:
    OpCountScope();
    ~OpCountScope();

    /** Counters accumulated since the scope opened. */
    OpCounters counters() const { return OpCount::snapshot(); }

  private:
    bool prev_;
};

/** @return true when n is a power of two (n >= 1). */
bool isPowerOfTwo(std::size_t n);

/** @return ceil(log2(n)) for n >= 1. */
std::size_t log2Ceil(std::size_t n);

/** Vector of complex bins. */
using CVector = std::vector<Complex>;

/**
 * In-place complex FFT (inverse includes the 1/n scaling).
 *
 * @param a buffer of n complex values, n a power of two
 * @param inverse run the inverse transform when true
 */
void fftInPlace(CVector &a, bool inverse);

/** Out-of-place complex DFT by definition; O(n^2), for testing. */
CVector naiveDft(const CVector &a, bool inverse);

/**
 * Real-input FFT. Returns the n/2 + 1 non-redundant bins of the
 * length-n spectrum (bins 0 and n/2 have zero imaginary part).
 * Computed via a complex FFT of size n/2 (packing trick) for n >= 4.
 */
CVector rfft(const Vector &x);

/**
 * rfft into caller-provided buffers: @p out receives the n/2 + 1
 * bins, @p scratch holds the half-size packed complex FFT. Both are
 * resized as needed; once they have seen size n, repeated calls
 * perform no heap allocation (the hot-loop form).
 */
void rfftInto(const Vector &x, CVector &out, CVector &scratch);

/**
 * Raw-pointer form of rfftInto: @p out must provide n/2 + 1 slots
 * (e.g. one segment's bins inside a flat lane-spectra table).
 */
void rfftInto(const Vector &x, Complex *out, CVector &scratch);

/**
 * Inverse of rfft: reconstruct n real samples from n/2 + 1 bins.
 *
 * @param spectrum n/2 + 1 bins as produced by rfft
 * @param n        original (power-of-two) length
 */
Vector irfft(const CVector &spectrum, std::size_t n);

/** irfft into caller-provided buffers (allocation-free once warm). */
void irfftInto(const CVector &spectrum, std::size_t n, Vector &out,
               CVector &scratch);

/**
 * Raw-pointer form of irfftInto: @p spectrum points at n/2 + 1
 * packed bins (e.g. one lane's accumulator inside a flat table).
 */
void irfftInto(const Complex *spectrum, std::size_t n, Vector &out,
               CVector &scratch);

/**
 * acc += conj(w) ⊙ x over packed real-spectrum bins.
 *
 * This is the PE's "dot product after conjugation" (Fig. 10): the
 * block-circulant matvec with first-row generators is a circular
 * correlation, hence the conjugate. Bins 0 and n/2 are real-real
 * products (1 real mult each); interior bins are complex products
 * (4 real mults each).
 */
void accumulateConjProduct(CVector &acc, const CVector &w,
                           const CVector &x);

/**
 * Same as above with @p w pointing at acc.size() packed bins inside a
 * flat spectrum table — the no-copy form used by the block-circulant
 * matvec hot loop.
 */
void accumulateConjProduct(CVector &acc, const Complex *w,
                           const CVector &x);

/** All-raw form over @p bins packed bins (flat-workspace hot loop). */
void accumulateConjProduct(Complex *acc, const Complex *w,
                           const Complex *x, std::size_t bins);

/**
 * acc += conj(w) ⊙ x for @p lanes lanes at once: @p acc and @p x hold
 * lane-contiguous [lane][bin] runs of @p bins packed bins each, and
 * @p w is one generator spectrum shared by every lane. Per lane this
 * runs exactly accumulateConjProduct, in ascending lane order — the
 * batched matvec stays bit-identical per lane while the shared @p w
 * and the contiguous streams keep the hot loop in cache.
 */
void accumulateConjProductLanes(Complex *acc, const Complex *w,
                                const Complex *x, std::size_t lanes,
                                std::size_t bins);

/**
 * Number of real multiplications one complex FFT of size n performs
 * under the trivial-twiddle convention implemented here (analytic
 * mirror of the runtime counter).
 */
std::uint64_t complexFftRealMults(std::size_t n);

/** Analytic real-mult count of rfft (size n), matching the kernels. */
std::uint64_t rfftRealMults(std::size_t n);

/** Analytic real-mult count of irfft (size n), matching the kernels. */
std::uint64_t irfftRealMults(std::size_t n);

/** Analytic real-mult count of accumulateConjProduct for size n. */
std::uint64_t eltwiseRealMults(std::size_t n);

} // namespace ernn::fft

#endif // ERNN_TENSOR_FFT_HH
