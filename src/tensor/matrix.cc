#include "tensor/matrix.hh"

#include <cmath>

#include "base/logging.hh"
#include "tensor/simd.hh"

namespace ernn
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

void
Matrix::setZero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

void
Matrix::reshape(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
}

void
Matrix::shrinkCols(std::size_t new_cols)
{
    ernn_assert(new_cols <= cols_, "shrinkCols: " << new_cols
                << " > current " << cols_);
    if (new_cols == cols_)
        return;
    // Repack rows front-to-back: row r's new home starts before (or
    // at) its old home, so the leading-column payload is never
    // clobbered before it is moved.
    for (std::size_t r = 1; r < rows_; ++r)
        std::copy(data_.begin() + r * cols_,
                  data_.begin() + r * cols_ + new_cols,
                  data_.begin() + r * new_cols);
    cols_ = new_cols;
    data_.resize(rows_ * cols_);
}

void
Matrix::growCols(std::size_t new_cols)
{
    ernn_assert(new_cols >= cols_, "growCols: " << new_cols
                << " < current " << cols_);
    if (new_cols == cols_)
        return;
    data_.resize(rows_ * new_cols);
    // Repack rows back-to-front: row r's new home starts at (or
    // after) its old home, and rows above r have already vacated the
    // region, so no payload is clobbered before it is moved.
    for (std::size_t r = rows_; r-- > 0;) {
        std::copy_backward(data_.begin() + r * cols_,
                           data_.begin() + (r + 1) * cols_,
                           data_.begin() + r * new_cols + cols_);
        std::fill(data_.begin() + r * new_cols + cols_,
                  data_.begin() + r * new_cols + new_cols, 0.0);
    }
    cols_ = new_cols;
}

void
Matrix::swapCols(std::size_t a, std::size_t b)
{
    ernn_assert(a < cols_ && b < cols_, "swapCols: " << a << ", " << b
                << " out of range for " << cols_ << " cols");
    if (a == b)
        return;
    for (std::size_t r = 0; r < rows_; ++r)
        std::swap(data_[r * cols_ + a], data_[r * cols_ + b]);
}

void
Matrix::initXavier(Rng &rng)
{
    const Real bound =
        std::sqrt(6.0 / static_cast<Real>(rows_ + cols_));
    rng.fillUniform(data_, bound);
}

Vector
Matrix::matvec(const Vector &x) const
{
    Vector y(rows_, 0.0);
    matvecAcc(x, y);
    return y;
}

void
Matrix::matvecAcc(const Vector &x, Vector &y) const
{
    matvecAccRaw(data_.data(), rows_, cols_, x, y);
}

void
Matrix::gemmAcc(const Matrix &x, Matrix &y) const
{
    gemmAccRaw(data_.data(), rows_, cols_, x, y);
}

void
matvecAccRaw(const Real *w, std::size_t rows, std::size_t cols,
             const Vector &x, Vector &y)
{
    ernn_assert(x.size() == cols, "matvec: x has " << x.size()
                << " entries, expected " << cols);
    ernn_assert(y.size() == rows, "matvec: y has " << y.size()
                << " entries, expected " << rows);
    for (std::size_t r = 0; r < rows; ++r) {
        const Real *row = w + r * cols;
        Real s = 0.0;
        for (std::size_t c = 0; c < cols; ++c)
            s += row[c] * x[c];
        y[r] += s;
    }
}

void
gemmAccRaw(const Real *w, std::size_t rows, std::size_t cols,
           const Matrix &x, Matrix &y)
{
    ernn_assert(x.rows() == cols, "gemmAcc: x has " << x.rows()
                << " rows, expected " << cols);
    ernn_assert(y.rows() == rows && y.cols() == x.cols(),
                "gemmAcc: y is " << y.rows() << "x" << y.cols()
                << ", expected " << rows << "x" << x.cols());
    // The register-blocked core moved to tensor/simd.cc (where it is
    // the scalar oracle for the vectorized forms); this entry point
    // keeps the shape checks and picks the active dispatch level.
    simd::gemmAccF64Fn()(w, rows, cols, x.data(), y.data(),
                         x.cols());
}

void
Matrix::matvecTransposeAcc(const Vector &dy, Vector &dx) const
{
    ernn_assert(dy.size() == rows_, "matvecT: dy size mismatch");
    ernn_assert(dx.size() == cols_, "matvecT: dx size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        const Real *row = data_.data() + r * cols_;
        const Real g = dy[r];
        if (g == 0.0)
            continue;
        for (std::size_t c = 0; c < cols_; ++c)
            dx[c] += row[c] * g;
    }
}

void
Matrix::gemmTransposeAcc(const Matrix &dy, Matrix &dx) const
{
    ernn_assert(dy.rows() == rows_, "gemmT: dy has " << dy.rows()
                << " rows, expected " << rows_);
    ernn_assert(dx.rows() == cols_ && dx.cols() == dy.cols(),
                "gemmT: dx is " << dx.rows() << "x" << dx.cols()
                << ", expected " << cols_ << "x" << dy.cols());
    const std::size_t lanes = dy.cols();
    const Real *dyd = dy.data();
    Real *dxd = dx.data();
    // Same loop nest as matvecTransposeAcc with the lane loop
    // innermost: per lane, row r's contribution lands on dx in the
    // order the solo path uses, so each lane accumulates row-by-row
    // exactly like matvecTransposeAcc on that lane.
    for (std::size_t r = 0; r < rows_; ++r) {
        const Real *row = data_.data() + r * cols_;
        const Real *dyr = dyd + r * lanes;
        for (std::size_t c = 0; c < cols_; ++c) {
            const Real w = row[c];
            if (w == 0.0)
                continue;
            Real *dxr = dxd + c * lanes;
            for (std::size_t l = 0; l < lanes; ++l)
                dxr[l] += w * dyr[l];
        }
    }
}

void
Matrix::outerAcc(const Vector &dy, const Vector &x)
{
    ernn_assert(dy.size() == rows_, "outerAcc: dy size mismatch");
    ernn_assert(x.size() == cols_, "outerAcc: x size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        Real *row = data_.data() + r * cols_;
        const Real g = dy[r];
        if (g == 0.0)
            continue;
        for (std::size_t c = 0; c < cols_; ++c)
            row[c] += g * x[c];
    }
}

void
Matrix::outerAccBatch(const Matrix &dy, const Matrix &x)
{
    ernn_assert(dy.rows() == rows_, "outerAccBatch: dy has "
                << dy.rows() << " rows, expected " << rows_);
    ernn_assert(x.rows() == cols_, "outerAccBatch: x has " << x.rows()
                << " rows, expected " << cols_);
    ernn_assert(dy.cols() == x.cols(),
                "outerAccBatch: lane mismatch " << dy.cols() << " vs "
                << x.cols());
    const std::size_t lanes = dy.cols();
    const Real *dyd = dy.data();
    const Real *xd = x.data();
    // Each weight entry sums its lane contributions in ascending lane
    // order with the lane loop innermost, so the result depends only
    // on the lane layout, never on tiling or thread count.
    for (std::size_t r = 0; r < rows_; ++r) {
        Real *row = data_.data() + r * cols_;
        const Real *dyr = dyd + r * lanes;
        for (std::size_t c = 0; c < cols_; ++c) {
            const Real *xr = xd + c * lanes;
            Real s = 0.0;
            for (std::size_t l = 0; l < lanes; ++l)
                s += dyr[l] * xr[l];
            row[c] += s;
        }
    }
}

void
Matrix::axpy(Real a, const Matrix &other)
{
    ernn_assert(rows_ == other.rows_ && cols_ == other.cols_,
                "Matrix::axpy shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += a * other.data_[i];
}

Real
Matrix::frobeniusNorm() const
{
    Real s = 0.0;
    for (auto v : data_)
        s += v * v;
    return std::sqrt(s);
}

Real
Matrix::frobeniusDistance(const Matrix &other) const
{
    ernn_assert(rows_ == other.rows_ && cols_ == other.cols_,
                "frobeniusDistance shape mismatch");
    Real s = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const Real d = data_[i] - other.data_[i];
        s += d * d;
    }
    return std::sqrt(s);
}

void
addBiasRows(Matrix &y, const Vector &b)
{
    ernn_assert(b.size() == y.rows(), "addBiasRows: bias has "
                << b.size() << " entries, expected " << y.rows());
    const std::size_t lanes = y.cols();
    Real *yd = y.data();
    for (std::size_t r = 0; r < y.rows(); ++r) {
        const Real v = b[r];
        Real *yr = yd + r * lanes;
        for (std::size_t l = 0; l < lanes; ++l)
            yr[l] += v;
    }
}

void
hadamardBroadcastAcc(Matrix &acc, const Vector &a, const Matrix &m)
{
    ernn_assert(a.size() == acc.rows(),
                "hadamardBroadcastAcc: vector size mismatch");
    ernn_assert(m.rows() == acc.rows() && m.cols() == acc.cols(),
                "hadamardBroadcastAcc: matrix shape mismatch");
    const std::size_t lanes = acc.cols();
    Real *ad = acc.data();
    const Real *md = m.data();
    for (std::size_t r = 0; r < acc.rows(); ++r) {
        const Real v = a[r];
        Real *ar = ad + r * lanes;
        const Real *mr = md + r * lanes;
        for (std::size_t l = 0; l < lanes; ++l)
            ar[l] += v * mr[l];
    }
}

void
rowSumAcc(Vector &acc, const Matrix &m)
{
    ernn_assert(acc.size() == m.rows(), "rowSumAcc: acc has "
                << acc.size() << " entries, expected " << m.rows());
    const std::size_t lanes = m.cols();
    const Real *md = m.data();
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const Real *mr = md + r * lanes;
        Real s = 0.0;
        for (std::size_t l = 0; l < lanes; ++l)
            s += mr[l];
        acc[r] += s;
    }
}

void
hadamardRowSumAcc(Vector &acc, const Matrix &a, const Matrix &b)
{
    ernn_assert(acc.size() == a.rows(),
                "hadamardRowSumAcc: acc size mismatch");
    ernn_assert(a.rows() == b.rows() && a.cols() == b.cols(),
                "hadamardRowSumAcc: shape mismatch");
    const std::size_t lanes = a.cols();
    const Real *ad = a.data();
    const Real *bd = b.data();
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const Real *ar = ad + r * lanes;
        const Real *br = bd + r * lanes;
        Real s = 0.0;
        for (std::size_t l = 0; l < lanes; ++l)
            s += ar[l] * br[l];
        acc[r] += s;
    }
}

void
copyLeadingCols(Matrix &dst, const Matrix &src, std::size_t cols)
{
    ernn_assert(cols <= src.cols(), "copyLeadingCols: " << cols
                << " > source " << src.cols());
    dst.reshape(src.rows(), cols);
    const std::size_t sl = src.cols();
    const Real *sd = src.data();
    Real *dd = dst.data();
    for (std::size_t r = 0; r < src.rows(); ++r)
        for (std::size_t l = 0; l < cols; ++l)
            dd[r * cols + l] = sd[r * sl + l];
}

void
addLeadingColsAcc(Matrix &dst, const Matrix &src)
{
    ernn_assert(dst.rows() == src.rows(),
                "addLeadingColsAcc: row mismatch");
    ernn_assert(src.cols() <= dst.cols(), "addLeadingColsAcc: src has "
                << src.cols() << " lanes, dst only " << dst.cols());
    const std::size_t sl = src.cols();
    const std::size_t dl = dst.cols();
    const Real *sd = src.data();
    Real *dd = dst.data();
    for (std::size_t r = 0; r < src.rows(); ++r)
        for (std::size_t l = 0; l < sl; ++l)
            dd[r * dl + l] += sd[r * sl + l];
}

bool
Matrix::approxEqual(const Matrix &other, Real tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (std::abs(data_[i] - other.data_[i]) > tol)
            return false;
    return true;
}

} // namespace ernn
