#include "tensor/matrix.hh"

#include <cmath>

#include "base/logging.hh"

namespace ernn
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

void
Matrix::setZero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

void
Matrix::initXavier(Rng &rng)
{
    const Real bound =
        std::sqrt(6.0 / static_cast<Real>(rows_ + cols_));
    rng.fillUniform(data_, bound);
}

Vector
Matrix::matvec(const Vector &x) const
{
    Vector y(rows_, 0.0);
    matvecAcc(x, y);
    return y;
}

void
Matrix::matvecAcc(const Vector &x, Vector &y) const
{
    ernn_assert(x.size() == cols_, "matvec: x has " << x.size()
                << " entries, expected " << cols_);
    ernn_assert(y.size() == rows_, "matvec: y has " << y.size()
                << " entries, expected " << rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const Real *row = data_.data() + r * cols_;
        Real s = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            s += row[c] * x[c];
        y[r] += s;
    }
}

void
Matrix::matvecTransposeAcc(const Vector &dy, Vector &dx) const
{
    ernn_assert(dy.size() == rows_, "matvecT: dy size mismatch");
    ernn_assert(dx.size() == cols_, "matvecT: dx size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        const Real *row = data_.data() + r * cols_;
        const Real g = dy[r];
        if (g == 0.0)
            continue;
        for (std::size_t c = 0; c < cols_; ++c)
            dx[c] += row[c] * g;
    }
}

void
Matrix::outerAcc(const Vector &dy, const Vector &x)
{
    ernn_assert(dy.size() == rows_, "outerAcc: dy size mismatch");
    ernn_assert(x.size() == cols_, "outerAcc: x size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        Real *row = data_.data() + r * cols_;
        const Real g = dy[r];
        if (g == 0.0)
            continue;
        for (std::size_t c = 0; c < cols_; ++c)
            row[c] += g * x[c];
    }
}

void
Matrix::axpy(Real a, const Matrix &other)
{
    ernn_assert(rows_ == other.rows_ && cols_ == other.cols_,
                "Matrix::axpy shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += a * other.data_[i];
}

Real
Matrix::frobeniusNorm() const
{
    Real s = 0.0;
    for (auto v : data_)
        s += v * v;
    return std::sqrt(s);
}

Real
Matrix::frobeniusDistance(const Matrix &other) const
{
    ernn_assert(rows_ == other.rows_ && cols_ == other.cols_,
                "frobeniusDistance shape mismatch");
    Real s = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const Real d = data_[i] - other.data_[i];
        s += d * d;
    }
    return std::sqrt(s);
}

bool
Matrix::approxEqual(const Matrix &other, Real tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (std::size_t i = 0; i < data_.size(); ++i)
        if (std::abs(data_[i] - other.data_[i]) > tol)
            return false;
    return true;
}

} // namespace ernn
