/**
 * @file
 * Row-major dense matrix with exactly the operations the RNN stack
 * needs: matvec, transposed matvec accumulation (for backprop),
 * outer-product accumulation (for weight gradients), and the
 * batch-major GEMM the inference runtime streams utterance lanes
 * through (one weight pass per time step, amortized over lanes).
 */

#ifndef ERNN_TENSOR_MATRIX_HH
#define ERNN_TENSOR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "tensor/vector_ops.hh"

namespace ernn
{

/** Dense row-major matrix of Reals. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    Real &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    Real at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    Real *data() { return data_.data(); }
    const Real *data() const { return data_.data(); }
    std::vector<Real> &raw() { return data_; }
    const std::vector<Real> &raw() const { return data_; }

    /** Set every entry to zero. */
    void setZero();

    /**
     * Re-dimension to rows x cols with every entry zeroed. Unlike
     * constructing a fresh matrix, the backing storage is reused, so
     * a buffer cycling through geometries it has already seen (the
     * runtime's lane pools) performs no heap allocation.
     */
    void reshape(std::size_t rows, std::size_t cols);

    /**
     * Drop trailing columns, preserving the leading @p new_cols of
     * every row (the rows are repacked in place). Used by the
     * batch-major runtime to retire finished utterance lanes without
     * disturbing the surviving lanes' recurrent state.
     */
    void shrinkCols(std::size_t new_cols);

    /**
     * Append zeroed trailing columns, preserving every existing
     * entry (the inverse of shrinkCols). Continuous batching admits
     * a new utterance lane mid-flight by growing the state matrices
     * one column without disturbing the live lanes.
     */
    void growCols(std::size_t new_cols);

    /**
     * Exchange columns @p a and @p b in place. Lets the continuous
     * batcher retire an interior lane: swap it with the last column,
     * then shrinkCols by one.
     */
    void swapCols(std::size_t a, std::size_t b);

    /**
     * Glorot/Xavier-style uniform initialization with bound
     * sqrt(6 / (rows + cols)), the init used for all RNN weights.
     */
    void initXavier(Rng &rng);

    /** y = A x. @p x must have cols() entries. */
    Vector matvec(const Vector &x) const;

    /** y += A x. */
    void matvecAcc(const Vector &x, Vector &y) const;

    /**
     * Y += A X (batch-major GEMM): X is cols() x lanes, Y rows() x
     * lanes, one column per utterance lane. Lane-tiled so each weight
     * row streams through the cache once for every lane, and each
     * lane's dot product accumulates in the exact order matvecAcc
     * uses — column l of Y is bit-identical to matvecAcc on column l
     * of X.
     */
    void gemmAcc(const Matrix &x, Matrix &y) const;

    /** dx += Aᵀ dy (backprop through a linear map). */
    void matvecTransposeAcc(const Vector &dy, Vector &dx) const;

    /**
     * dX += Aᵀ dY (batch-major backprop): dY is rows() x lanes, dX
     * cols() x lanes, one utterance lane per column. Per lane the
     * weight rows stream in the order matvecTransposeAcc uses, so
     * the training backward stays deterministic at any batch width.
     */
    void gemmTransposeAcc(const Matrix &dy, Matrix &dx) const;

    /** this += dy xᵀ (gradient of a linear map wrt its weights). */
    void outerAcc(const Vector &dy, const Vector &x);

    /**
     * this += dY Xᵀ (batch-major weight gradient): dY is rows() x
     * lanes, X cols() x lanes. Equivalent to lanes rank-1 outerAcc
     * updates; the lane sum of each weight entry accumulates in lane
     * order, so the result is a fixed function of the lane layout.
     */
    void outerAccBatch(const Matrix &dy, const Matrix &x);

    /** this += a * other (same shape). */
    void axpy(Real a, const Matrix &other);

    /** Frobenius norm. */
    Real frobeniusNorm() const;

    /** Frobenius norm of (this - other). */
    Real frobeniusDistance(const Matrix &other) const;

    /** Elementwise equality within an absolute tolerance. */
    bool approxEqual(const Matrix &other, Real tol) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Real> data_;
};

/// @{ Batch-major (feature x lanes) elementwise helpers. Each mirrors
/// the corresponding per-lane Vector op entry-for-entry, so a lane
/// column computes the exact bits the solo path computes.

/** y[r][l] += b[r] — broadcast a bias over every lane. */
void addBiasRows(Matrix &y, const Vector &b);

/** acc[r][l] += a[r] * m[r][l] — broadcast-Hadamard (peepholes). */
void hadamardBroadcastAcc(Matrix &acc, const Vector &a,
                          const Matrix &m);

/** acc[r] += sum_l m[r][l] — lane reduction (bias gradients). */
void rowSumAcc(Vector &acc, const Matrix &m);

/** acc[r] += sum_l a[r][l] * b[r][l] — Hadamard lane reduction
 *  (diagonal peephole gradients). */
void hadamardRowSumAcc(Vector &acc, const Matrix &a, const Matrix &b);

/** dst := the leading @p cols columns of src (dst is re-dimensioned).
 *  The batched BPTT state hand-off: lanes are pooled longest-first,
 *  so the lanes alive at step t are exactly the leading columns of
 *  the step t-1 state. */
void copyLeadingCols(Matrix &dst, const Matrix &src, std::size_t cols);

/** dst[:, :src.cols()] += src (src has at most dst.cols() lanes).
 *  The reverse-time hand-off: walking backward the lane count grows,
 *  and the recurrent gradient of the surviving lanes lands on the
 *  leading columns of the wider step. */
void addLeadingColsAcc(Matrix &dst, const Matrix &src);

/// @}

/// @{ Raw-pointer cores of matvecAcc / gemmAcc. @p w is a row-major
/// rows x cols weight array. Matrix delegates here, and kernels that
/// *borrow* their weights (e.g. blobs pointing into an mmapped
/// artifact) call these directly — one arithmetic path, so borrowed
/// and owned weights produce bit-identical results.

/** y += W x for a borrowed row-major weight array. */
void matvecAccRaw(const Real *w, std::size_t rows, std::size_t cols,
                  const Vector &x, Vector &y);

/** Y += W X (batch-major) for a borrowed row-major weight array.
 *  Dispatches through tensor/simd.hh: the vectorized cores are
 *  bit-identical to the scalar oracle, so callers never observe the
 *  selected level. */
void gemmAccRaw(const Real *w, std::size_t rows, std::size_t cols,
                const Matrix &x, Matrix &y);

/// @}

} // namespace ernn

#endif // ERNN_TENSOR_MATRIX_HH
