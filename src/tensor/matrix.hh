/**
 * @file
 * Row-major dense matrix with exactly the operations the RNN stack
 * needs: matvec, transposed matvec accumulation (for backprop), and
 * outer-product accumulation (for weight gradients).
 */

#ifndef ERNN_TENSOR_MATRIX_HH
#define ERNN_TENSOR_MATRIX_HH

#include <cstddef>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "tensor/vector_ops.hh"

namespace ernn
{

/** Dense row-major matrix of Reals. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    Real &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    Real at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    Real *data() { return data_.data(); }
    const Real *data() const { return data_.data(); }
    std::vector<Real> &raw() { return data_; }
    const std::vector<Real> &raw() const { return data_; }

    /** Set every entry to zero. */
    void setZero();

    /**
     * Glorot/Xavier-style uniform initialization with bound
     * sqrt(6 / (rows + cols)), the init used for all RNN weights.
     */
    void initXavier(Rng &rng);

    /** y = A x. @p x must have cols() entries. */
    Vector matvec(const Vector &x) const;

    /** y += A x. */
    void matvecAcc(const Vector &x, Vector &y) const;

    /** dx += Aᵀ dy (backprop through a linear map). */
    void matvecTransposeAcc(const Vector &dy, Vector &dx) const;

    /** this += dy xᵀ (gradient of a linear map wrt its weights). */
    void outerAcc(const Vector &dy, const Vector &x);

    /** this += a * other (same shape). */
    void axpy(Real a, const Matrix &other);

    /** Frobenius norm. */
    Real frobeniusNorm() const;

    /** Frobenius norm of (this - other). */
    Real frobeniusDistance(const Matrix &other) const;

    /** Elementwise equality within an absolute tolerance. */
    bool approxEqual(const Matrix &other, Real tol) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Real> data_;
};

} // namespace ernn

#endif // ERNN_TENSOR_MATRIX_HH
