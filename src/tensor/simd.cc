#include "tensor/simd.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "base/logging.hh"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define ERNN_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define ERNN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ernn::simd
{

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
      case Level::Neon:
        return "neon";
    }
    return "unknown";
}

bool
supported(Level level)
{
    switch (level) {
      case Level::Scalar:
        return true;
      case Level::Avx2:
#if ERNN_SIMD_X86
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Level::Neon:
#if ERNN_SIMD_NEON
        return true;
#else
        return false;
#endif
    }
    return false;
}

Level
detect()
{
    if (supported(Level::Avx2))
        return Level::Avx2;
    if (supported(Level::Neon))
        return Level::Neon;
    return Level::Scalar;
}

bool
parseLevel(const std::string &text, Level &out, bool &isAuto)
{
    isAuto = false;
    if (text == "auto") {
        isAuto = true;
        return true;
    }
    if (text == "scalar") {
        out = Level::Scalar;
        return true;
    }
    if (text == "avx2") {
        out = Level::Avx2;
        return true;
    }
    if (text == "neon") {
        out = Level::Neon;
        return true;
    }
    return false;
}

namespace
{

Level
resolveInitial()
{
    const Level best = detect();
    const char *env = std::getenv("ERNN_SIMD");
    if (!env || !*env)
        return best;
    Level requested = best;
    bool isAuto = false;
    if (!parseLevel(env, requested, isAuto)) {
        ernn_warn("ERNN_SIMD=" << env << " not understood "
                  "(scalar|avx2|neon|auto); using "
                  << levelName(best));
        return best;
    }
    if (isAuto)
        return best;
    if (!supported(requested)) {
        ernn_warn("ERNN_SIMD=" << env << " not supported by this "
                  "CPU; using " << levelName(best));
        return best;
    }
    return requested;
}

std::atomic<Level> &
activeSlot()
{
    static std::atomic<Level> slot{resolveInitial()};
    return slot;
}

} // namespace

Level
active()
{
    return activeSlot().load(std::memory_order_relaxed);
}

void
setActive(Level level)
{
    ernn_assert(supported(level), "simd::setActive: level "
                << levelName(level) << " unsupported on this CPU");
    activeSlot().store(level, std::memory_order_relaxed);
}

// --- int16 code dot ----------------------------------------------------

std::int64_t
dotCodesScalar(const std::int16_t *w, const std::int16_t *v,
               std::size_t n, std::size_t chunk)
{
    std::int64_t acc = 0;
    std::size_t c = 0;
    while (c < n) {
        const std::size_t end = std::min(n, c + chunk);
        // Accumulate the chunk partial in uint32 so an out-of-spec
        // chunk (beyond safeChunkLen) wraps modularly — exactly what
        // the vector kernels' epi32 adds do — instead of hitting
        // signed-overflow UB. In-spec the partial never overflows
        // and the bits are identical either way.
        std::uint32_t a = 0;
        for (; c < end; ++c)
            a += static_cast<std::uint32_t>(
                static_cast<std::int32_t>(w[c]) *
                static_cast<std::int32_t>(v[c]));
        acc += static_cast<std::int32_t>(a);
    }
    return acc;
}

void
matvecCodesScalar(const std::int16_t *w, std::size_t rows,
                  std::size_t n, const std::int16_t *x,
                  std::int64_t *out, std::size_t chunk)
{
    for (std::size_t r = 0; r < rows; ++r)
        out[r] = dotCodesScalar(w + r * n, x, n, chunk);
}

std::size_t
safeChunkLen(int wb, int vb)
{
    const int pb = wb + vb - 2; // |w*v| <= 2^(wb-1) * 2^(vb-1)
    if (pb >= 30)
        return 1;
    return std::size_t{1} << (30 - pb);
}

#if ERNN_SIMD_X86

namespace
{

/** Widen the eight int32 lanes of @p a and fold them into the four
 *  int64 lanes of @p acc. */
__attribute__((target("avx2"))) inline __m256i
foldInt32To64(__m256i acc, __m256i a)
{
    acc = _mm256_add_epi64(acc,
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(a)));
    return _mm256_add_epi64(acc,
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(a, 1)));
}

__attribute__((target("avx2"))) std::int64_t
dotCodesAvx2(const std::int16_t *w, const std::int16_t *v,
             std::size_t n, std::size_t chunk)
{
    // chunk == 1 means both formats are 16-bit: a single pmaddwd
    // pair could already overflow int32, so only the one-term-chunk
    // scalar path is provably safe.
    if (chunk < 2)
        return dotCodesScalar(w, v, n, chunk);

    // Each madd lane holds two products (|p| <= 2^pb each), so one
    // madd result is bounded by 2^(pb+1) and chunk/2 of them stay
    // within +-2^30 — the same bound the scalar chunk proves, with
    // the pair folded one level earlier.
    const std::size_t maxMadds = chunk / 2;
    __m256i acc64 = _mm256_setzero_si256();
    // Two independent int32 accumulators hide the madd/add latency
    // chain; each one holds at most maxMadds madd results, so each
    // is bounded exactly as the single-accumulator proof above.
    __m256i accA = _mm256_setzero_si256();
    __m256i accB = _mm256_setzero_si256();
    std::size_t madds = 0;
    std::size_t c = 0;
    for (; c + 32 <= n; c += 32) {
        const __m256i w0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + c));
        const __m256i x0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + c));
        const __m256i w1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + c + 16));
        const __m256i x1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + c + 16));
        accA = _mm256_add_epi32(accA, _mm256_madd_epi16(w0, x0));
        accB = _mm256_add_epi32(accB, _mm256_madd_epi16(w1, x1));
        if (++madds == maxMadds) {
            acc64 = foldInt32To64(acc64, accA);
            acc64 = foldInt32To64(acc64, accB);
            accA = _mm256_setzero_si256();
            accB = _mm256_setzero_si256();
            madds = 0;
        }
    }
    for (; c + 16 <= n; c += 16) {
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(w + c));
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + c));
        accA = _mm256_add_epi32(accA, _mm256_madd_epi16(wv, xv));
        if (++madds == maxMadds) {
            acc64 = foldInt32To64(acc64, accA);
            accA = _mm256_setzero_si256();
            madds = 0;
        }
    }
    acc64 = foldInt32To64(acc64, accA);
    acc64 = foldInt32To64(acc64, accB);

    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc64);
    std::int64_t acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; c < n; ++c)
        acc += static_cast<std::int64_t>(w[c]) * v[c];
    return acc;
}

/**
 * Four weight rows against one x, 16 codes per step: one x load
 * feeds four madds (w comes in as memory operands), so the load
 * ports stop being the bottleneck. Each row keeps its own int32 and
 * int64 accumulator with the standard fold cadence, so each row's
 * sum is the exact integer the scalar per-row chunked loop produces.
 */
__attribute__((target("avx2"))) void
matvecCodes4Avx2(const std::int16_t *w0, const std::int16_t *w1,
                 const std::int16_t *w2, const std::int16_t *w3,
                 const std::int16_t *x, std::size_t n,
                 std::size_t chunk, std::int64_t *out)
{
    const std::size_t maxMadds = chunk / 2;
    __m256i a32[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                      _mm256_setzero_si256(), _mm256_setzero_si256()};
    __m256i a64[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                      _mm256_setzero_si256(), _mm256_setzero_si256()};
    std::size_t madds = 0;
    std::size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + c));
        a32[0] = _mm256_add_epi32(
            a32[0], _mm256_madd_epi16(xv, _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w0 + c))));
        a32[1] = _mm256_add_epi32(
            a32[1], _mm256_madd_epi16(xv, _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w1 + c))));
        a32[2] = _mm256_add_epi32(
            a32[2], _mm256_madd_epi16(xv, _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w2 + c))));
        a32[3] = _mm256_add_epi32(
            a32[3], _mm256_madd_epi16(xv, _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w3 + c))));
        if (++madds == maxMadds) {
            for (int r = 0; r < 4; ++r) {
                a64[r] = foldInt32To64(a64[r], a32[r]);
                a32[r] = _mm256_setzero_si256();
            }
            madds = 0;
        }
    }
    const std::int16_t *rowsPtr[4] = {w0, w1, w2, w3};
    for (int r = 0; r < 4; ++r) {
        a64[r] = foldInt32To64(a64[r], a32[r]);
        alignas(32) std::int64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes),
                           a64[r]);
        std::int64_t acc =
            lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for (std::size_t t = c; t < n; ++t)
            acc += static_cast<std::int64_t>(rowsPtr[r][t]) * x[t];
        out[r] = acc;
    }
}

__attribute__((target("avx2"))) void
matvecCodesAvx2(const std::int16_t *w, std::size_t rows,
                std::size_t n, const std::int16_t *x,
                std::int64_t *out, std::size_t chunk)
{
    if (chunk < 2) {
        matvecCodesScalar(w, rows, n, x, out, chunk);
        return;
    }
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4)
        matvecCodes4Avx2(w + (r + 0) * n, w + (r + 1) * n,
                         w + (r + 2) * n, w + (r + 3) * n, x, n,
                         chunk, out + r);
    for (; r < rows; ++r)
        out[r] = dotCodesAvx2(w + r * n, x, n, chunk);
}

} // namespace

#endif // ERNN_SIMD_X86

#if ERNN_SIMD_NEON

namespace
{

std::int64_t
dotCodesNeon(const std::int16_t *w, const std::int16_t *v,
             std::size_t n, std::size_t chunk)
{
    // vmull_s16 widens to int32 before any accumulation and the
    // pairwise-add folds straight into int64, so no chunk bound is
    // needed: every partial already lives in 64 bits.
    (void)chunk;
    int64x2_t acc64 = vdupq_n_s64(0);
    std::size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        const int16x8_t wv = vld1q_s16(w + c);
        const int16x8_t xv = vld1q_s16(v + c);
        const int32x4_t lo = vmull_s16(vget_low_s16(wv),
                                       vget_low_s16(xv));
        const int32x4_t hi = vmull_s16(vget_high_s16(wv),
                                       vget_high_s16(xv));
        acc64 = vaddq_s64(acc64, vpaddlq_s32(lo));
        acc64 = vaddq_s64(acc64, vpaddlq_s32(hi));
    }
    std::int64_t acc = vgetq_lane_s64(acc64, 0) +
                       vgetq_lane_s64(acc64, 1);
    for (; c < n; ++c)
        acc += static_cast<std::int64_t>(w[c]) * v[c];
    return acc;
}

} // namespace

#endif // ERNN_SIMD_NEON

DotCodesFn
dotCodesFnFor(Level level)
{
#if ERNN_SIMD_X86
    if (level == Level::Avx2)
        return &dotCodesAvx2;
#endif
#if ERNN_SIMD_NEON
    if (level == Level::Neon)
        return &dotCodesNeon;
#endif
    (void)level;
    return &dotCodesScalar;
}

DotCodesFn
dotCodesFn()
{
    return dotCodesFnFor(active());
}

#if ERNN_SIMD_NEON

namespace
{

void
matvecCodesNeon(const std::int16_t *w, std::size_t rows,
                std::size_t n, const std::int16_t *x,
                std::int64_t *out, std::size_t chunk)
{
    for (std::size_t r = 0; r < rows; ++r)
        out[r] = dotCodesNeon(w + r * n, x, n, chunk);
}

} // namespace

#endif // ERNN_SIMD_NEON

MatvecCodesFn
matvecCodesFnFor(Level level)
{
#if ERNN_SIMD_X86
    if (level == Level::Avx2)
        return &matvecCodesAvx2;
#endif
#if ERNN_SIMD_NEON
    if (level == Level::Neon)
        return &matvecCodesNeon;
#endif
    (void)level;
    return &matvecCodesScalar;
}

MatvecCodesFn
matvecCodesFn()
{
    return matvecCodesFnFor(active());
}

// --- f64 GEMM ----------------------------------------------------------

namespace
{

constexpr std::size_t kRowTile = 4;
constexpr std::size_t kLaneTile = 4;

/**
 * Remainder rows/lanes of the tiled f64 GEMM: plain lane-tiled
 * loops, one accumulator chain per (r, l) over ascending c. Shared
 * by the scalar and AVX2 cores so the tails are literally the same
 * code.
 */
void
gemmF64Tail(const Real *w, std::size_t rows, std::size_t cols,
            const Real *xd, Real *yd, std::size_t lanes,
            std::size_t full_r, std::size_t full_l)
{
    Real racc[kLaneTile];
    for (std::size_t r = 0; r < rows; ++r) {
        const Real *row = w + r * cols;
        const std::size_t l_start = r < full_r ? full_l : 0;
        for (std::size_t l0 = l_start; l0 < lanes; l0 += kLaneTile) {
            const std::size_t lt = std::min(kLaneTile, lanes - l0);
            for (std::size_t l = 0; l < lt; ++l)
                racc[l] = 0.0;
            for (std::size_t c = 0; c < cols; ++c) {
                const Real wv = row[c];
                const Real *xr = xd + c * lanes + l0;
                for (std::size_t l = 0; l < lt; ++l)
                    racc[l] += wv * xr[l];
            }
            Real *yr = yd + r * lanes + l0;
            for (std::size_t l = 0; l < lt; ++l)
                yr[l] += racc[l];
        }
    }
}

} // namespace

void
gemmAccF64Scalar(const Real *w, std::size_t rows, std::size_t cols,
                 const Real *xd, Real *yd, std::size_t lanes)
{
    // Register-blocked: a kRowTile x kLaneTile block of accumulators
    // walks the reduction dimension once, so X streams through the
    // cache once per *four* weight rows instead of once per row, and
    // each weight element is reused across every lane in the tile.
    // Every (r, l) accumulator still sums c ascending in its own
    // scalar chain — exactly matvecAcc's order — which is what keeps
    // batched inference bit-identical to the solo path.
    Real acc[kRowTile][kLaneTile];

    const std::size_t full_r = rows - rows % kRowTile;
    const std::size_t full_l = lanes - lanes % kLaneTile;
    for (std::size_t r0 = 0; r0 < full_r; r0 += kRowTile) {
        const Real *w0 = w + (r0 + 0) * cols;
        const Real *w1 = w + (r0 + 1) * cols;
        const Real *w2 = w + (r0 + 2) * cols;
        const Real *w3 = w + (r0 + 3) * cols;
        for (std::size_t l0 = 0; l0 < full_l; l0 += kLaneTile) {
            for (auto &ar : acc)
                for (auto &a : ar)
                    a = 0.0;
            for (std::size_t c = 0; c < cols; ++c) {
                const Real *xr = xd + c * lanes + l0;
                for (std::size_t l = 0; l < kLaneTile; ++l) {
                    const Real v = xr[l];
                    acc[0][l] += w0[c] * v;
                    acc[1][l] += w1[c] * v;
                    acc[2][l] += w2[c] * v;
                    acc[3][l] += w3[c] * v;
                }
            }
            for (std::size_t i = 0; i < kRowTile; ++i) {
                Real *yr = yd + (r0 + i) * lanes + l0;
                for (std::size_t l = 0; l < kLaneTile; ++l)
                    yr[l] += acc[i][l];
            }
        }
    }

    gemmF64Tail(w, rows, cols, xd, yd, lanes, full_r, full_l);
}

#if ERNN_SIMD_X86

namespace
{

__attribute__((target("avx2"))) void
gemmAccF64Avx2(const Real *w, std::size_t rows, std::size_t cols,
               const Real *xd, Real *yd, std::size_t lanes)
{
    // The scalar tile vectorized across its four lanes: one __m256d
    // accumulator per row of the tile, mul then add per c (never
    // fmadd — one rounding per operation, as the scalar chain
    // rounds), so each lane of each register is the scalar (r, l)
    // chain verbatim.
    const std::size_t full_r = rows - rows % kRowTile;
    const std::size_t full_l = lanes - lanes % kLaneTile;
    for (std::size_t r0 = 0; r0 < full_r; r0 += kRowTile) {
        const Real *w0 = w + (r0 + 0) * cols;
        const Real *w1 = w + (r0 + 1) * cols;
        const Real *w2 = w + (r0 + 2) * cols;
        const Real *w3 = w + (r0 + 3) * cols;
        for (std::size_t l0 = 0; l0 < full_l; l0 += kLaneTile) {
            __m256d a0 = _mm256_setzero_pd();
            __m256d a1 = _mm256_setzero_pd();
            __m256d a2 = _mm256_setzero_pd();
            __m256d a3 = _mm256_setzero_pd();
            for (std::size_t c = 0; c < cols; ++c) {
                const __m256d xr =
                    _mm256_loadu_pd(xd + c * lanes + l0);
                a0 = _mm256_add_pd(
                    a0, _mm256_mul_pd(_mm256_set1_pd(w0[c]), xr));
                a1 = _mm256_add_pd(
                    a1, _mm256_mul_pd(_mm256_set1_pd(w1[c]), xr));
                a2 = _mm256_add_pd(
                    a2, _mm256_mul_pd(_mm256_set1_pd(w2[c]), xr));
                a3 = _mm256_add_pd(
                    a3, _mm256_mul_pd(_mm256_set1_pd(w3[c]), xr));
            }
            const __m256d *accs[kRowTile] = {&a0, &a1, &a2, &a3};
            for (std::size_t i = 0; i < kRowTile; ++i) {
                Real *yr = yd + (r0 + i) * lanes + l0;
                _mm256_storeu_pd(
                    yr, _mm256_add_pd(_mm256_loadu_pd(yr), *accs[i]));
            }
        }
    }

    gemmF64Tail(w, rows, cols, xd, yd, lanes, full_r, full_l);
}

} // namespace

#endif // ERNN_SIMD_X86

GemmF64Fn
gemmAccF64Fn()
{
#if ERNN_SIMD_X86
    if (active() == Level::Avx2)
        return &gemmAccF64Avx2;
#endif
    // NEON keeps the scalar GEMM: aarch64 compilers contract FP
    // mul+add by default, so a NEON core could not promise the
    // oracle's two-roundings-per-term chain. Integer dots have no
    // such hazard, which is why only they get a NEON form.
    return &gemmAccF64Scalar;
}

// --- complex spectra MACs ----------------------------------------------

void
conjMacLanesScalar(Real *acc, const Real *w, const Real *x,
                   std::size_t lanes, std::size_t bins)
{
    const std::size_t m = bins - 1;
    const Real w0 = w[0], wm = w[2 * m];
    for (std::size_t l = 0; l < lanes; ++l) {
        Real *a = acc + 2 * l * bins;
        const Real *xs = x + 2 * l * bins;
        a[0] += w0 * xs[0];
        a[1] += 0.0;
        a[2 * m] += wm * xs[2 * m];
        a[2 * m + 1] += 0.0;
        for (std::size_t k = 1; k < m; ++k) {
            const Real wr = w[2 * k], wi = w[2 * k + 1];
            const Real xr = xs[2 * k], xi = xs[2 * k + 1];
            // conj(w) * x
            a[2 * k] += wr * xr + wi * xi;
            a[2 * k + 1] += wr * xi - wi * xr;
        }
    }
}

void
plainMacLanesScalar(Real *acc, const Real *w, const Real *x,
                    std::size_t lanes, std::size_t bins)
{
    const std::size_t m = bins - 1;
    const Real w0 = w[0], wm = w[2 * m];
    for (std::size_t l = 0; l < lanes; ++l) {
        Real *a = acc + 2 * l * bins;
        const Real *xs = x + 2 * l * bins;
        a[0] += w0 * xs[0];
        a[1] += 0.0;
        a[2 * m] += wm * xs[2 * m];
        a[2 * m + 1] += 0.0;
        for (std::size_t k = 1; k < m; ++k) {
            const Real wr = w[2 * k], wi = w[2 * k + 1];
            const Real xr = xs[2 * k], xi = xs[2 * k + 1];
            a[2 * k] += wr * xr - wi * xi;
            a[2 * k + 1] += wr * xi + wi * xr;
        }
    }
}

#if ERNN_SIMD_X86

namespace
{

/**
 * Two complex bins per 256-bit vector: t1 = [wr*xr, wr*xi],
 * t2 = [wi*xi, wi*xr]. The conj result is [t1.re + t2.re,
 * t1.im - t2.im] = addsub(t1, -t2), the plain result
 * [t1.re - t2.re, t1.im + t2.im] = addsub(t1, t2); both keep the
 * scalar's one-mul-one-add chain per component.
 */
__attribute__((target("avx2"))) void
conjMacLanesAvx2(Real *acc, const Real *w, const Real *x,
                 std::size_t lanes, std::size_t bins)
{
    const std::size_t m = bins - 1;
    const Real w0 = w[0], wm = w[2 * m];
    const __m256d sign = _mm256_set1_pd(-0.0);
    for (std::size_t l = 0; l < lanes; ++l) {
        Real *a = acc + 2 * l * bins;
        const Real *xs = x + 2 * l * bins;
        a[0] += w0 * xs[0];
        a[1] += 0.0;
        a[2 * m] += wm * xs[2 * m];
        a[2 * m + 1] += 0.0;
        std::size_t k = 1;
        for (; k + 1 < m; k += 2) {
            const __m256d wv = _mm256_loadu_pd(w + 2 * k);
            const __m256d xv = _mm256_loadu_pd(xs + 2 * k);
            const __m256d t1 =
                _mm256_mul_pd(_mm256_movedup_pd(wv), xv);
            const __m256d t2 =
                _mm256_mul_pd(_mm256_permute_pd(wv, 0xF),
                              _mm256_permute_pd(xv, 0x5));
            const __m256d r =
                _mm256_addsub_pd(t1, _mm256_xor_pd(t2, sign));
            _mm256_storeu_pd(
                a + 2 * k,
                _mm256_add_pd(_mm256_loadu_pd(a + 2 * k), r));
        }
        for (; k < m; ++k) {
            const Real wr = w[2 * k], wi = w[2 * k + 1];
            const Real xr = xs[2 * k], xi = xs[2 * k + 1];
            a[2 * k] += wr * xr + wi * xi;
            a[2 * k + 1] += wr * xi - wi * xr;
        }
    }
}

__attribute__((target("avx2"))) void
plainMacLanesAvx2(Real *acc, const Real *w, const Real *x,
                  std::size_t lanes, std::size_t bins)
{
    const std::size_t m = bins - 1;
    const Real w0 = w[0], wm = w[2 * m];
    for (std::size_t l = 0; l < lanes; ++l) {
        Real *a = acc + 2 * l * bins;
        const Real *xs = x + 2 * l * bins;
        a[0] += w0 * xs[0];
        a[1] += 0.0;
        a[2 * m] += wm * xs[2 * m];
        a[2 * m + 1] += 0.0;
        std::size_t k = 1;
        for (; k + 1 < m; k += 2) {
            const __m256d wv = _mm256_loadu_pd(w + 2 * k);
            const __m256d xv = _mm256_loadu_pd(xs + 2 * k);
            const __m256d t1 =
                _mm256_mul_pd(_mm256_movedup_pd(wv), xv);
            const __m256d t2 =
                _mm256_mul_pd(_mm256_permute_pd(wv, 0xF),
                              _mm256_permute_pd(xv, 0x5));
            const __m256d r = _mm256_addsub_pd(t1, t2);
            _mm256_storeu_pd(
                a + 2 * k,
                _mm256_add_pd(_mm256_loadu_pd(a + 2 * k), r));
        }
        for (; k < m; ++k) {
            const Real wr = w[2 * k], wi = w[2 * k + 1];
            const Real xr = xs[2 * k], xi = xs[2 * k + 1];
            a[2 * k] += wr * xr - wi * xi;
            a[2 * k + 1] += wr * xi + wi * xr;
        }
    }
}

} // namespace

#endif // ERNN_SIMD_X86

CplxMacLanesFn
conjMacLanesFn()
{
#if ERNN_SIMD_X86
    if (active() == Level::Avx2)
        return &conjMacLanesAvx2;
#endif
    return &conjMacLanesScalar;
}

CplxMacLanesFn
plainMacLanesFn()
{
#if ERNN_SIMD_X86
    if (active() == Level::Avx2)
        return &plainMacLanesAvx2;
#endif
    return &plainMacLanesScalar;
}

// --- f32 GEMM ----------------------------------------------------------

namespace
{

constexpr std::size_t kF32LaneTile = 8;

/** Trailing lanes (< 8) of one f32 row: per-lane float chains. */
inline void
gemmF32RowTail(const float *row, std::size_t cols, const float *xd,
               Real *yr, std::size_t lanes, std::size_t l0)
{
    float racc[kF32LaneTile];
    const std::size_t lt = lanes - l0;
    for (std::size_t l = 0; l < lt; ++l)
        racc[l] = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
        const float wv = row[c];
        const float *xr = xd + c * lanes + l0;
        for (std::size_t l = 0; l < lt; ++l)
            racc[l] += wv * xr[l];
    }
    for (std::size_t l = 0; l < lt; ++l)
        yr[l0 + l] = static_cast<Real>(racc[l]);
}

} // namespace

void
gemmF32Scalar(const float *w, std::size_t rows, std::size_t cols,
              const float *xd, Real *yd, std::size_t lanes)
{
    const std::size_t full_l = lanes - lanes % kF32LaneTile;
    float acc[kF32LaneTile];
    for (std::size_t r = 0; r < rows; ++r) {
        const float *row = w + r * cols;
        Real *yr = yd + r * lanes;
        for (std::size_t l0 = 0; l0 < full_l; l0 += kF32LaneTile) {
            for (auto &a : acc)
                a = 0.0f;
            for (std::size_t c = 0; c < cols; ++c) {
                const float wv = row[c];
                const float *xr = xd + c * lanes + l0;
                for (std::size_t l = 0; l < kF32LaneTile; ++l)
                    acc[l] += wv * xr[l];
            }
            for (std::size_t l = 0; l < kF32LaneTile; ++l)
                yr[l0 + l] = static_cast<Real>(acc[l]);
        }
        if (full_l < lanes)
            gemmF32RowTail(row, cols, xd, yr, lanes, full_l);
    }
}

#if ERNN_SIMD_X86

namespace
{

__attribute__((target("avx2"))) void
gemmF32Avx2(const float *w, std::size_t rows, std::size_t cols,
            const float *xd, Real *yd, std::size_t lanes)
{
    const std::size_t full_l = lanes - lanes % kF32LaneTile;
    for (std::size_t r = 0; r < rows; ++r) {
        const float *row = w + r * cols;
        Real *yr = yd + r * lanes;
        for (std::size_t l0 = 0; l0 < full_l; l0 += kF32LaneTile) {
            __m256 a = _mm256_setzero_ps();
            for (std::size_t c = 0; c < cols; ++c) {
                const __m256 xr =
                    _mm256_loadu_ps(xd + c * lanes + l0);
                // mul then add, never fmadd: each float lane is the
                // scalar per-lane chain with its two roundings.
                a = _mm256_add_ps(
                    a, _mm256_mul_ps(_mm256_set1_ps(row[c]), xr));
            }
            _mm256_storeu_pd(yr + l0,
                _mm256_cvtps_pd(_mm256_castps256_ps128(a)));
            _mm256_storeu_pd(yr + l0 + 4,
                _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1)));
        }
        if (full_l < lanes)
            gemmF32RowTail(row, cols, xd, yr, lanes, full_l);
    }
}

} // namespace

#endif // ERNN_SIMD_X86

GemmF32Fn
gemmF32Fn()
{
#if ERNN_SIMD_X86
    if (active() == Level::Avx2)
        return &gemmF32Avx2;
#endif
    return &gemmF32Scalar;
}

} // namespace ernn::simd
