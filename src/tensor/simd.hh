/**
 * @file
 * Runtime-dispatched SIMD kernel cores. One scalar implementation of
 * each core is the *oracle* — kept verbatim from the pre-SIMD code —
 * and every vector implementation must produce bit-identical results:
 *
 *  - int16 dot (dotCodes): exact integer arithmetic, so any
 *    summation order reproduces the scalar bits. The AVX2 form runs
 *    `_mm256_madd_epi16` (two int16 MACs per int32 lane — exactly the
 *    paper's two-MACs-per-DSP packing, mulPerDSP = 2) and widens the
 *    int32 partials to int64 before they can overflow, under the same
 *    chunk bound the scalar path proves safe.
 *  - f64 GEMM (gemmAccF64): the vector form keeps each (row, lane)
 *    accumulator as its own mul-then-add chain over ascending c —
 *    the scalar order — by vectorizing *across lanes*, never inside
 *    a single dot product. No FMA is ever used (a fused multiply-add
 *    rounds once where mul+add rounds twice, which would break the
 *    oracle).
 *  - f32 GEMM (gemmF32): the opt-in dense f32 mode. Scalar and AVX2
 *    forms are bit-identical to each other by the same
 *    across-the-lanes argument; f32 vs f64 is approximate by nature.
 *
 * Dispatch is per-process: detect() probes the CPU once, the
 * ERNN_SIMD environment variable (scalar|avx2|neon|auto) can force a
 * level, and tests/benches flip levels with setActive(). Kernel
 * implementations fetch the function pointer once per call, so a
 * concurrent setActive never tears a half-switched kernel.
 */

#ifndef ERNN_TENSOR_SIMD_HH
#define ERNN_TENSOR_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/types.hh"

namespace ernn::simd
{

/** Instruction-set levels the dispatcher can select. */
enum class Level
{
    Scalar = 0, //!< portable C++ (the bit-exactness oracle)
    Avx2 = 1,   //!< x86-64 AVX2 (256-bit int16/f64/f32 lanes)
    Neon = 2,   //!< aarch64 NEON (int16 dot only; GEMMs stay scalar)
};

/** Human-readable level name ("scalar", "avx2", "neon"). */
const char *levelName(Level level);

/** True when the running CPU can execute @p level. */
bool supported(Level level);

/** Best level the running CPU supports. */
Level detect();

/**
 * Currently selected level. The first call resolves the ERNN_SIMD
 * environment override: "scalar" / "avx2" / "neon" force a level
 * (falling back to detect() with a warning when unsupported), "auto"
 * or unset takes detect().
 */
Level active();

/** Force a dispatch level (tests and benches). Dies when the CPU
 *  cannot execute it — check supported() first. */
void setActive(Level level);

/**
 * Parse an ERNN_SIMD value. @p isAuto comes back true for "auto";
 * returns false (and assigns nothing) on unknown strings.
 */
bool parseLevel(const std::string &text, Level &out, bool &isAuto);

// --- int16 code dot (FixedPoint integer datapath) ----------------------

/**
 * Exact int16 dot product of @p n code pairs, chunked so every int32
 * partial sum is provably overflow-free (see safeChunkLen). All
 * implementations return the exact integer sum, so every level is
 * bit-identical by construction.
 */
using DotCodesFn = std::int64_t (*)(const std::int16_t *w,
                                    const std::int16_t *v,
                                    std::size_t n, std::size_t chunk);

/** The scalar oracle: int32 chunk accumulation, int64 total. */
std::int64_t dotCodesScalar(const std::int16_t *w,
                            const std::int16_t *v, std::size_t n,
                            std::size_t chunk);

/** dotCodes for the active() level. */
DotCodesFn dotCodesFn();

/** dotCodes for an explicit level (parity tests). */
DotCodesFn dotCodesFnFor(Level level);

/**
 * Whole int16 matvec: out[r] = dot(w row r, x) for rows consecutive
 * rows, same chunk bound per row. The solo dense fixed-point kernel
 * calls this instead of a per-row dot so the vector levels can block
 * across rows — one load of x feeds four weight rows, roughly
 * halving load traffic per MAC (the single-row dot is load-port
 * bound, not multiply bound). Row blocking never reorders a row's
 * own accumulation, so every level stays bit-identical to the
 * scalar per-row oracle.
 */
using MatvecCodesFn = void (*)(const std::int16_t *w,
                               std::size_t rows, std::size_t n,
                               const std::int16_t *x,
                               std::int64_t *out, std::size_t chunk);

/** The scalar oracle: dotCodesScalar row by row. */
void matvecCodesScalar(const std::int16_t *w, std::size_t rows,
                       std::size_t n, const std::int16_t *x,
                       std::int64_t *out, std::size_t chunk);

/** matvecCodes for the active() level. */
MatvecCodesFn matvecCodesFn();

/** matvecCodes for an explicit level (parity tests). */
MatvecCodesFn matvecCodesFnFor(Level level);

/**
 * Largest chunk length whose int32 partial sums cannot overflow,
 * given weight/value formats of @p wb and @p vb total bits:
 * |w*v| <= 2^(wb-1) * 2^(vb-1) = 2^pb, so 2^(30-pb) terms stay
 * within +-2^30 < 2^31 - 1. At pb >= 30 (both formats 16-bit) the
 * chunk degenerates to a single product, which still fits: the
 * worst case minQ*minQ = +2^30.
 */
std::size_t safeChunkLen(int wb, int vb);

// --- f64 GEMM (dense batch-major datapath) -----------------------------

/**
 * Y += W X, batch-major: @p w row-major rows x cols, @p x cols x
 * lanes, @p y rows x lanes. Every (r, l) accumulator sums c
 * ascending in its own mul-then-add chain — the solo matvecAcc
 * order — so every level and any row-partitioning of a call are
 * bit-identical.
 */
using GemmF64Fn = void (*)(const Real *w, std::size_t rows,
                           std::size_t cols, const Real *x, Real *y,
                           std::size_t lanes);

/** The scalar oracle: the register-blocked 4x4 tile GEMM. */
void gemmAccF64Scalar(const Real *w, std::size_t rows,
                      std::size_t cols, const Real *x, Real *y,
                      std::size_t lanes);

/** gemmAccF64 for the active() level. */
GemmF64Fn gemmAccF64Fn();

// --- complex spectra MACs (block-circulant FFT datapath) ---------------

/**
 * Per-lane multiply-accumulate over packed real-FFT spectra stored as
 * interleaved (re, im) doubles: @p acc and @p x hold @p lanes
 * lane-contiguous runs of @p bins pairs, @p w is one generator
 * spectrum shared by every lane. The conj form runs
 * acc += conj(w) . x (the circulant matvec / generator gradient), the
 * plain form acc += w . x (the transpose matvec). Bins 0 and bins-1
 * of a real spectrum are purely real and accumulate real-only.
 *
 * Every (lane, bin) accumulator is independent, and each level runs
 * the scalar per-bin products and adds verbatim (mul then add, never
 * fmadd; the AVX2 addsub consumes a negated operand, and IEEE
 * a - (-b) is exactly a + b), so every level is bit-identical to the
 * scalar oracle.
 */
using CplxMacLanesFn = void (*)(Real *acc, const Real *w,
                                const Real *x, std::size_t lanes,
                                std::size_t bins);

/** The scalar conj oracle (kept verbatim from the pre-SIMD code). */
void conjMacLanesScalar(Real *acc, const Real *w, const Real *x,
                        std::size_t lanes, std::size_t bins);

/** The scalar plain oracle. */
void plainMacLanesScalar(Real *acc, const Real *w, const Real *x,
                         std::size_t lanes, std::size_t bins);

/** conjMacLanes for the active() level. */
CplxMacLanesFn conjMacLanesFn();

/** plainMacLanes for the active() level. */
CplxMacLanesFn plainMacLanesFn();

// --- f32 GEMM (opt-in dense f32 mode) ----------------------------------

/**
 * Y = Wf Xf (overwrite), batch-major with f32 weights and inputs and
 * f64 output: each (r, l) entry is one float chain over ascending c,
 * widened to Real on store. Scalar and vector levels bit-identical
 * within f32; f32 vs the f64 path is approximate.
 */
using GemmF32Fn = void (*)(const float *w, std::size_t rows,
                           std::size_t cols, const float *x, Real *y,
                           std::size_t lanes);

/** The scalar f32 core (lane-tiled, per-lane float chains). */
void gemmF32Scalar(const float *w, std::size_t rows, std::size_t cols,
                   const float *x, Real *y, std::size_t lanes);

/** gemmF32 for the active() level. */
GemmF32Fn gemmF32Fn();

} // namespace ernn::simd

#endif // ERNN_TENSOR_SIMD_HH
