#include "tensor/vector_ops.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ernn
{

namespace
{

void
checkSameSize(const Vector &a, const Vector &b, const char *what)
{
    ernn_assert(a.size() == b.size(),
                what << ": size mismatch " << a.size()
                     << " vs " << b.size());
}

} // namespace

void
addInPlace(Vector &y, const Vector &x)
{
    checkSameSize(y, x, "addInPlace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += x[i];
}

void
subInPlace(Vector &y, const Vector &x)
{
    checkSameSize(y, x, "subInPlace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] -= x[i];
}

void
axpy(Vector &y, Real a, const Vector &x)
{
    checkSameSize(y, x, "axpy");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += a * x[i];
}

Vector
hadamard(const Vector &x, const Vector &y)
{
    checkSameSize(x, y, "hadamard");
    Vector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] * y[i];
    return out;
}

void
hadamardInPlace(Vector &y, const Vector &x)
{
    checkSameSize(y, x, "hadamardInPlace");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] *= x[i];
}

void
hadamardAcc(Vector &acc, const Vector &x, const Vector &y)
{
    checkSameSize(acc, x, "hadamardAcc");
    checkSameSize(x, y, "hadamardAcc");
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] += x[i] * y[i];
}

void
scaleInPlace(Vector &x, Real a)
{
    for (auto &v : x)
        v *= a;
}

Real
dot(const Vector &x, const Vector &y)
{
    checkSameSize(x, y, "dot");
    Real s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        s += x[i] * y[i];
    return s;
}

Real
norm2(const Vector &x)
{
    return std::sqrt(dot(x, x));
}

Real
maxAbs(const Vector &x)
{
    Real m = 0.0;
    for (auto v : x)
        m = std::max(m, std::abs(v));
    return m;
}

void
fill(Vector &x, Real v)
{
    std::fill(x.begin(), x.end(), v);
}

Vector
concat(const Vector &x, const Vector &y)
{
    Vector out;
    out.reserve(x.size() + y.size());
    out.insert(out.end(), x.begin(), x.end());
    out.insert(out.end(), y.begin(), y.end());
    return out;
}

std::size_t
argmax(const Vector &x)
{
    ernn_assert(!x.empty(), "argmax of empty vector");
    return static_cast<std::size_t>(
        std::max_element(x.begin(), x.end()) - x.begin());
}

} // namespace ernn
