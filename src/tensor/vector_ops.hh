/**
 * @file
 * Free functions on contiguous Real vectors. These are the pointwise
 * primitives the paper's compute unit implements in hardware
 * (point-wise multiplication, point-wise addition, scaling).
 */

#ifndef ERNN_TENSOR_VECTOR_OPS_HH
#define ERNN_TENSOR_VECTOR_OPS_HH

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace ernn
{

/** Dense vector of Reals. */
using Vector = std::vector<Real>;

/** y += x (sizes must match). */
void addInPlace(Vector &y, const Vector &x);

/** y -= x (sizes must match). */
void subInPlace(Vector &y, const Vector &x);

/** y += a * x. */
void axpy(Vector &y, Real a, const Vector &x);

/** out = x ⊙ y (the paper's point-wise multiplication). */
Vector hadamard(const Vector &x, const Vector &y);

/** y = y ⊙ x in place. */
void hadamardInPlace(Vector &y, const Vector &x);

/** acc += x ⊙ y. */
void hadamardAcc(Vector &acc, const Vector &x, const Vector &y);

/** Scale every element by a. */
void scaleInPlace(Vector &x, Real a);

/** Inner product. */
Real dot(const Vector &x, const Vector &y);

/** Euclidean norm. */
Real norm2(const Vector &x);

/** Largest absolute element (0 for an empty vector). */
Real maxAbs(const Vector &x);

/** Set every element to the given value. */
void fill(Vector &x, Real v);

/** Concatenate two vectors: [x; y] (the paper's [x_t, y_{t-1}]). */
Vector concat(const Vector &x, const Vector &y);

/** Index of the largest element; requires non-empty input. */
std::size_t argmax(const Vector &x);

} // namespace ernn

#endif // ERNN_TENSOR_VECTOR_OPS_HH
