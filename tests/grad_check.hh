/**
 * @file
 * Shared finite-difference gradient checking helpers for the RNN
 * layer tests. A layer's analytic BPTT gradients are compared against
 * central differences of a quadratic tracking loss
 * L = 0.5 * sum_t ||y_t - target_t||^2.
 */

#ifndef ERNN_TESTS_GRAD_CHECK_HH
#define ERNN_TESTS_GRAD_CHECK_HH

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "nn/layer.hh"
#include "nn/param.hh"

namespace ernn::nn::testing
{

/** Quadratic loss of a forward pass against fixed targets. */
inline Real
trackingLoss(RnnLayer &layer, const Sequence &xs,
             const Sequence &targets)
{
    const Sequence ys = layer.forward(xs);
    Real loss = 0.0;
    for (std::size_t t = 0; t < ys.size(); ++t)
        for (std::size_t k = 0; k < ys[t].size(); ++k) {
            const Real d = ys[t][k] - targets[t][k];
            loss += 0.5 * d * d;
        }
    return loss;
}

/** dL/dy_t for the tracking loss. */
inline Sequence
trackingGrad(const Sequence &ys, const Sequence &targets)
{
    Sequence dys(ys.size());
    for (std::size_t t = 0; t < ys.size(); ++t) {
        dys[t].resize(ys[t].size());
        for (std::size_t k = 0; k < ys[t].size(); ++k)
            dys[t][k] = ys[t][k] - targets[t][k];
    }
    return dys;
}

/**
 * Check every parameter's analytic gradient against central
 * differences. Also checks the input gradients dx.
 *
 * @param layer    layer under test (weights already initialized)
 * @param reg      its parameter registry
 * @param xs       input sequence
 * @param seed     RNG seed for the targets
 * @param tol      absolute tolerance on the gradient mismatch
 */
inline void
checkLayerGradients(RnnLayer &layer, ParamRegistry &reg,
                    const Sequence &xs, std::uint64_t seed,
                    Real tol = 2e-6)
{
    Rng rng(seed);
    const Sequence probe = layer.forward(xs);
    Sequence targets(probe.size());
    for (std::size_t t = 0; t < probe.size(); ++t) {
        targets[t].resize(probe[t].size());
        rng.fillNormal(targets[t], 1.0);
    }

    // Analytic gradients.
    reg.zeroGrad();
    const Sequence ys = layer.forward(xs);
    const Sequence dxs = layer.backward(trackingGrad(ys, targets));

    const Real h = 1e-6;
    std::size_t checked = 0;
    for (auto &view : reg.views()) {
        for (std::size_t k = 0; k < view.size; ++k) {
            const Real saved = view.data[k];
            view.data[k] = saved + h;
            reg.notifyUpdated();
            const Real up = trackingLoss(layer, xs, targets);
            view.data[k] = saved - h;
            reg.notifyUpdated();
            const Real down = trackingLoss(layer, xs, targets);
            view.data[k] = saved;
            reg.notifyUpdated();

            const Real numeric = (up - down) / (2.0 * h);
            EXPECT_NEAR(view.grad[k], numeric, tol)
                << view.name << "[" << k << "]";
            ++checked;
        }
    }
    EXPECT_GT(checked, 0u);

    // Input gradients via finite differences.
    Sequence xs_mut = xs;
    for (std::size_t t = 0; t < xs.size(); ++t) {
        for (std::size_t k = 0; k < xs[t].size(); ++k) {
            const Real saved = xs_mut[t][k];
            xs_mut[t][k] = saved + h;
            const Real up = trackingLoss(layer, xs_mut, targets);
            xs_mut[t][k] = saved - h;
            const Real down = trackingLoss(layer, xs_mut, targets);
            xs_mut[t][k] = saved;
            const Real numeric = (up - down) / (2.0 * h);
            EXPECT_NEAR(dxs[t][k], numeric, tol)
                << "dx[" << t << "][" << k << "]";
        }
    }
}

/** Random sequence helper. */
inline Sequence
randomSequence(std::size_t t_len, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    Sequence xs(t_len);
    for (auto &x : xs) {
        x.resize(dim);
        rng.fillNormal(x, 1.0);
    }
    return xs;
}

} // namespace ernn::nn::testing

#endif // ERNN_TESTS_GRAD_CHECK_HH
