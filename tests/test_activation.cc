/**
 * @file
 * Activation tests: exact values, derivative identities, and the
 * piecewise-linear hardware approximation (error bounds, saturation,
 * monotone improvement with segment count).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hh"

using namespace ernn;
using namespace ernn::nn;

TEST(Activation, SigmoidKnownValues)
{
    EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
    EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
    EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
    EXPECT_NEAR(sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
    // Symmetry: sigma(-x) = 1 - sigma(x).
    for (Real x : {0.3, 1.7, 4.2})
        EXPECT_NEAR(sigmoid(-x), 1.0 - sigmoid(x), 1e-15);
}

TEST(Activation, TanhMatchesStd)
{
    for (Real x : {-3.0, -0.5, 0.0, 0.5, 3.0})
        EXPECT_DOUBLE_EQ(tanhAct(x), std::tanh(x));
}

TEST(Activation, DerivativeFromOutputIdentity)
{
    const Real h = 1e-6;
    for (Real x : {-2.0, -0.4, 0.0, 0.9, 2.5}) {
        const Real sy = sigmoid(x);
        const Real numeric_s = (sigmoid(x + h) - sigmoid(x - h)) /
                               (2.0 * h);
        EXPECT_NEAR(actDerivFromOutput(ActKind::Sigmoid, sy),
                    numeric_s, 1e-8);

        const Real ty = std::tanh(x);
        const Real numeric_t = (std::tanh(x + h) - std::tanh(x - h)) /
                               (2.0 * h);
        EXPECT_NEAR(actDerivFromOutput(ActKind::Tanh, ty),
                    numeric_t, 1e-8);
    }
}

TEST(Activation, VectorApplication)
{
    Vector v{-1.0, 0.0, 1.0};
    applyActivation(ActKind::Sigmoid, v);
    EXPECT_NEAR(v[1], 0.5, 1e-15);
    EXPECT_NEAR(v[0] + v[2], 1.0, 1e-15);
    const Vector t = activated(ActKind::Tanh, Vector{0.0});
    EXPECT_DOUBLE_EQ(t[0], 0.0);
}

class PwlSegments : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PwlSegments, ApproximationErrorWithinBound)
{
    const std::size_t segs = GetParam();
    for (ActKind kind : {ActKind::Sigmoid, ActKind::Tanh}) {
        PiecewiseLinear pwl(kind, segs, 8.0);
        // Chord interpolation error of a C2 function on [a,b] is at
        // most max|f''| * (b-a)^2 / 8; |f''| <= 1 for tanh, <= 0.1
        // for sigmoid. Use the tanh bound for both.
        const Real step = 16.0 / static_cast<Real>(segs);
        const Real bound = step * step / 8.0 + 1e-3;
        EXPECT_LE(pwl.maxError(), bound)
            << actName(kind) << " with " << segs << " segments";
    }
}

INSTANTIATE_TEST_SUITE_P(SegmentSweep, PwlSegments,
                         ::testing::Values(8, 16, 32, 64, 128));

TEST(Pwl, ErrorDecreasesMonotonicallyWithSegments)
{
    Real prev = 1e9;
    for (std::size_t segs : {8, 16, 32, 64, 128, 256}) {
        PiecewiseLinear pwl(ActKind::Tanh, segs, 8.0);
        const Real err = pwl.maxError();
        EXPECT_LT(err, prev) << segs << " segments";
        prev = err;
    }
}

TEST(Pwl, SaturatesOutsideRange)
{
    PiecewiseLinear sig(ActKind::Sigmoid, 32, 6.0);
    EXPECT_DOUBLE_EQ(sig.eval(100.0), 1.0);
    EXPECT_DOUBLE_EQ(sig.eval(-100.0), 0.0);
    PiecewiseLinear th(ActKind::Tanh, 32, 6.0);
    EXPECT_DOUBLE_EQ(th.eval(100.0), 1.0);
    EXPECT_DOUBLE_EQ(th.eval(-100.0), -1.0);
}

TEST(Pwl, ExactAtInteriorSegmentEndpoints)
{
    // The extreme endpoints (+-range) saturate by design, so only
    // interior segment boundaries interpolate the exact function.
    PiecewiseLinear pwl(ActKind::Tanh, 16, 4.0);
    for (int s = 1; s < 16; ++s) {
        const Real x = -4.0 + 0.5 * static_cast<Real>(s);
        EXPECT_NEAR(pwl.eval(x), std::tanh(x), 1e-12) << "x=" << x;
    }
}

TEST(Pwl, SixtyFourSegmentsIsHardwareAccurate)
{
    // Phase II uses PWL activations; with 64 segments over [-8, 8]
    // the error is far below the 12-bit quantization step (2^-7).
    PiecewiseLinear sig(ActKind::Sigmoid, 64, 8.0);
    PiecewiseLinear th(ActKind::Tanh, 64, 8.0);
    EXPECT_LT(sig.maxError(), 1.0 / 128.0);
    EXPECT_LT(th.maxError(), 1.0 / 64.0);
}

TEST(Pwl, ApplyMatchesEval)
{
    PiecewiseLinear pwl(ActKind::Sigmoid, 32, 8.0);
    Vector v{-2.0, 0.1, 3.0};
    Vector expect = v;
    for (auto &x : expect)
        x = pwl.eval(x);
    pwl.apply(v);
    EXPECT_EQ(v, expect);
}
