/**
 * @file
 * ADMM structured-training tests: residual convergence (the Fig. 6
 * behaviour), exactness of the hard projection, weight transfer into
 * the compressed model, and the accuracy advantage over direct
 * projection that motivates ADMM in the paper.
 */

#include <gtest/gtest.h>

#include "admm/admm_trainer.hh"
#include "admm/transfer.hh"
#include "circulant/block_circulant.hh"
#include "nn/gru.hh"
#include "nn/model_builder.hh"
#include "speech/dataset.hh"

using namespace ernn;
using namespace ernn::nn;
using namespace ernn::admm;

namespace
{

speech::AsrDataset
tinyDataset()
{
    speech::AsrDataConfig cfg;
    cfg.numPhones = 6;
    cfg.featureDim = 8;
    cfg.trainUtterances = 20;
    cfg.testUtterances = 8;
    cfg.minFrames = 18;
    cfg.maxFrames = 26;
    return speech::makeSyntheticAsr(cfg);
}

ModelSpec
denseSpec()
{
    ModelSpec spec;
    spec.type = ModelType::Gru;
    spec.inputDim = 8;
    spec.numClasses = 6;
    spec.layerSizes = {16};
    return spec;
}

ModelSpec
circulantSpec(std::size_t block)
{
    ModelSpec spec = denseSpec();
    spec.blockSizes = {block};
    return spec;
}

/** Max relative distance of all constrained weights to the
 *  block-circulant set. */
Real
structureGap(StackedRnn &model, std::size_t block)
{
    Real worst = 0.0;
    auto *gru = dynamic_cast<GruLayer *>(&model.layer(0));
    for (LinearOp *op : {&gru->wzx(), &gru->wrx(), &gru->wcx(),
                         &gru->wzc(), &gru->wrc(), &gru->wcc()}) {
        const Matrix &w = *op->denseWeight();
        const auto proj =
            circulant::BlockCirculantMatrix::fromDense(w, block);
        worst = std::max(worst, proj.distanceFromDense(w) /
                                    std::max(w.frobeniusNorm(), 1e-12));
    }
    return worst;
}

} // namespace

TEST(Admm, ResidualShrinksOverIterations)
{
    const auto data = tinyDataset();
    StackedRnn model = buildModel(denseSpec());
    Rng rng(11);
    model.initXavier(rng);

    // Pretrain briefly (ADMM starts from a pretrained model).
    TrainConfig pre;
    pre.epochs = 3;
    pre.lr = 5e-3;
    Trainer(model, pre).train(data.train);

    AdmmConfig cfg;
    cfg.rho = 0.5;
    cfg.rhoGrowth = 1.5;
    cfg.iterations = 6;
    cfg.epochsPerIteration = 3;
    cfg.convergenceTol = 0.0; // run all iterations
    cfg.train.lr = 2e-2;
    cfg.train.batchSize = 2;

    AdmmTrainer admm(model, cfg);
    constrainFromSpec(admm, model, circulantSpec(4));
    EXPECT_EQ(admm.constraintCount(), 6u);

    const AdmmResult result = admm.run(data.train);
    ASSERT_EQ(result.log.size(), 6u);
    // The relative residual must fall substantially from its first
    // value (the weights approach the structured format).
    EXPECT_LT(result.log.back().relativeResidual,
              0.6 * result.log.front().relativeResidual);
}

TEST(Admm, HardProjectionLandsExactlyOnConstraintSet)
{
    const auto data = tinyDataset();
    StackedRnn model = buildModel(denseSpec());
    Rng rng(12);
    model.initXavier(rng);

    AdmmConfig cfg;
    cfg.rho = 2e-2;
    cfg.iterations = 2;
    cfg.epochsPerIteration = 1;
    cfg.train.lr = 5e-3;

    AdmmTrainer admm(model, cfg);
    constrainFromSpec(admm, model, circulantSpec(4));
    admm.run(data.train);

    EXPECT_GT(structureGap(model, 4), 0.0);
    admm.hardProject();
    EXPECT_NEAR(structureGap(model, 4), 0.0, 1e-12);
}

TEST(Admm, AdmmTrainingTightensStructureVsPlainTraining)
{
    const auto data = tinyDataset();

    // Plain training leaves the weights far from circulant.
    StackedRnn plain = buildModel(denseSpec());
    Rng rng1(13);
    plain.initXavier(rng1);
    TrainConfig tc;
    tc.epochs = 8;
    tc.lr = 5e-3;
    Trainer(plain, tc).train(data.train);
    const Real plain_gap = structureGap(plain, 4);

    // ADMM training pulls them close.
    StackedRnn structured = buildModel(denseSpec());
    Rng rng2(13);
    structured.initXavier(rng2);
    AdmmConfig cfg;
    cfg.rho = 0.5;
    cfg.rhoGrowth = 1.5;
    cfg.iterations = 6;
    cfg.epochsPerIteration = 3;
    cfg.convergenceTol = 0.0;
    cfg.train.lr = 2e-2;
    cfg.train.batchSize = 2;
    AdmmTrainer admm(structured, cfg);
    constrainFromSpec(admm, structured, circulantSpec(4));
    admm.run(data.train);
    const Real admm_gap = structureGap(structured, 4);

    EXPECT_LT(admm_gap, 0.5 * plain_gap);
}

TEST(Admm, TransferPreservesOutputsAfterHardProjection)
{
    const auto data = tinyDataset();
    StackedRnn dense = buildModel(denseSpec());
    Rng rng(14);
    dense.initXavier(rng);

    AdmmConfig cfg;
    cfg.rho = 2e-2;
    cfg.iterations = 2;
    cfg.epochsPerIteration = 1;
    cfg.train.lr = 5e-3;
    AdmmTrainer admm(dense, cfg);
    constrainFromSpec(admm, dense, circulantSpec(4));
    admm.run(data.train);
    admm.hardProject();

    StackedRnn compressed = buildModel(circulantSpec(4));
    transferWeights(dense, compressed);
    EXPECT_LT(compressed.paramCount(), dense.paramCount());

    // The projected dense model and the compressed model are the
    // same function.
    const Sequence &probe = data.test[0].frames;
    const Sequence a = dense.forwardLogits(probe);
    const Sequence b = compressed.forwardLogits(probe);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        for (std::size_t k = 0; k < a[t].size(); ++k)
            EXPECT_NEAR(a[t][k], b[t][k], 1e-8);
}

TEST(Admm, ConstrainRejectsCirculantOps)
{
    StackedRnn model = buildModel(circulantSpec(4));
    AdmmConfig cfg;
    AdmmTrainer admm(model, cfg);
    auto *gru = dynamic_cast<GruLayer *>(&model.layer(0));
    EXPECT_DEATH(admm.constrain(gru->wzc(), 4), "dense");
}

TEST(Admm, ConvergenceFlagStopsEarly)
{
    const auto data = tinyDataset();
    StackedRnn model = buildModel(denseSpec());
    Rng rng(15);
    model.initXavier(rng);

    AdmmConfig cfg;
    cfg.rho = 0.5;
    cfg.rhoGrowth = 1.5;
    cfg.iterations = 20;
    cfg.epochsPerIteration = 3;
    cfg.convergenceTol = 0.1;
    cfg.train.lr = 2e-2;
    cfg.train.batchSize = 2;
    AdmmTrainer admm(model, cfg);
    constrainFromSpec(admm, model, circulantSpec(4));
    const AdmmResult result = admm.run(data.train);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.log.size(), 20u);
}
